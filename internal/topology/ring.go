package topology

import "fmt"

// Ring is the N-node bidirectional ring (figure 1.b of the paper): node
// i connects clockwise to (i+1) mod N and counterclockwise to (i-1) mod
// N. Every node has degree 2 and the topology is vertex- and
// edge-transitive. Link count is 2N.
type Ring struct {
	*graph
}

// NewRing builds an N-node ring. N must be at least 3 so that the
// clockwise and counterclockwise neighbours are distinct (N=2 would
// create a doubled link, which the paper's ring model does not have).
func NewRing(n int) (*Ring, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
	}
	g := newGraph(fmt.Sprintf("ring-%d", n), n)
	// One clockwise and one counterclockwise channel per node. Adding
	// per-node (rather than per-link) keeps Out() ordering uniform:
	// [cw, ccw] at every node.
	for i := 0; i < n; i++ {
		g.addChannel(i, (i+1)%n, DirClockwise)
		g.addChannel(i, (i-1+n)%n, DirCounterClockwise)
	}
	return &Ring{graph: g}, nil
}

// MustRing is NewRing that panics on error, for tests and tables.
func MustRing(n int) *Ring {
	r, err := NewRing(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Distance returns the shortest-path hop distance between nodes a and b:
// min(|a-b|, N-|a-b|).
func (r *Ring) Distance(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		return alt
	}
	return d
}

// ClockwiseDistance returns the hop count from a to b moving clockwise
// only.
func (r *Ring) ClockwiseDistance(a, b int) int {
	return ((b-a)%r.n + r.n) % r.n
}

// Diameter returns floor(N/2), the paper's ND for a ring.
func (r *Ring) Diameter() int { return r.n / 2 }
