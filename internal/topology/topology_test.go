package topology

import (
	"testing"
	"testing/quick"
)

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{
		DirClockwise: "cw", DirCounterClockwise: "ccw", DirAcross: "across",
		DirEast: "east", DirWest: "west", DirNorth: "north", DirSouth: "south",
		DirChord: "chord", DirChordBack: "chord-back", DirInvalid: "invalid",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(d), d.String(), want)
		}
	}
	if Direction(99).String() == "" {
		t.Error("unknown direction renders empty")
	}
}

func TestDirectionOpposite(t *testing.T) {
	pairs := [][2]Direction{
		{DirClockwise, DirCounterClockwise},
		{DirEast, DirWest},
		{DirNorth, DirSouth},
		{DirChord, DirChordBack},
	}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Errorf("opposite(%v) mismatch", p[0])
		}
	}
	if DirAcross.Opposite() != DirAcross {
		t.Error("across should be self-opposite")
	}
	if DirInvalid.Opposite() != DirInvalid {
		t.Error("invalid opposite")
	}
}

func TestChannelString(t *testing.T) {
	c := Channel{ID: 0, Src: 1, Dst: 2, Dir: DirEast}
	if c.String() != "1 -east-> 2" {
		t.Errorf("channel string = %q", c.String())
	}
}

func TestRingConstruction(t *testing.T) {
	r := MustRing(8)
	if r.Nodes() != 8 {
		t.Fatalf("nodes = %d", r.Nodes())
	}
	if LinkCount(r) != 16 { // paper: 2N links
		t.Fatalf("links = %d, want 16", LinkCount(r))
	}
	for v := 0; v < 8; v++ {
		if Degree(r, v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, Degree(r, v))
		}
		cw, ok := r.Neighbor(v, DirClockwise)
		if !ok || cw != (v+1)%8 {
			t.Fatalf("cw neighbor of %d = %d", v, cw)
		}
		ccw, ok := r.Neighbor(v, DirCounterClockwise)
		if !ok || ccw != (v+7)%8 {
			t.Fatalf("ccw neighbor of %d = %d", v, ccw)
		}
	}
}

func TestRingTooSmall(t *testing.T) {
	if _, err := NewRing(2); err == nil {
		t.Fatal("ring of 2 accepted")
	}
	if _, err := NewRing(0); err == nil {
		t.Fatal("ring of 0 accepted")
	}
}

func TestRingDistanceMatchesBFS(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 13, 20} {
		r := MustRing(n)
		for a := 0; a < n; a++ {
			bfs := BFS(r, a)
			for b := 0; b < n; b++ {
				if r.Distance(a, b) != bfs[b] {
					t.Fatalf("ring-%d Distance(%d,%d)=%d, BFS=%d", n, a, b, r.Distance(a, b), bfs[b])
				}
			}
		}
	}
}

func TestRingClockwiseDistance(t *testing.T) {
	r := MustRing(10)
	if r.ClockwiseDistance(2, 5) != 3 {
		t.Fatal("cw distance forward")
	}
	if r.ClockwiseDistance(5, 2) != 7 {
		t.Fatal("cw distance wrap")
	}
	if r.ClockwiseDistance(4, 4) != 0 {
		t.Fatal("cw distance self")
	}
}

func TestRingDiameter(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{3, 1}, {4, 2}, {8, 4}, {9, 4}, {16, 8}} {
		r := MustRing(tc.n)
		if r.Diameter() != tc.want {
			t.Errorf("ring-%d analytic diameter = %d, want %d", tc.n, r.Diameter(), tc.want)
		}
		if got := Diameter(r); got != tc.want {
			t.Errorf("ring-%d BFS diameter = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSpidergonConstruction(t *testing.T) {
	s := MustSpidergon(12)
	if LinkCount(s) != 36 { // paper: 3N links
		t.Fatalf("links = %d, want 36", LinkCount(s))
	}
	for v := 0; v < 12; v++ {
		if Degree(s, v) != 3 { // paper: constant node degree 3
			t.Fatalf("degree(%d) = %d, want 3", v, Degree(s, v))
		}
		ac, ok := s.Neighbor(v, DirAcross)
		if !ok || ac != (v+6)%12 {
			t.Fatalf("across neighbor of %d = %d", v, ac)
		}
	}
	if s.Across(3) != 9 || s.Across(9) != 3 {
		t.Fatal("across computation")
	}
}

func TestSpidergonRejectsBadN(t *testing.T) {
	if _, err := NewSpidergon(7); err == nil {
		t.Fatal("odd spidergon accepted")
	}
	if _, err := NewSpidergon(2); err == nil {
		t.Fatal("tiny spidergon accepted")
	}
}

func TestSpidergonDistanceMatchesBFS(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10, 12, 16, 22, 32, 40} {
		s := MustSpidergon(n)
		for a := 0; a < n; a++ {
			bfs := BFS(s, a)
			for b := 0; b < n; b++ {
				if s.Distance(a, b) != bfs[b] {
					t.Fatalf("spidergon-%d Distance(%d,%d)=%d, BFS=%d",
						n, a, b, s.Distance(a, b), bfs[b])
				}
			}
		}
	}
}

func TestSpidergonDiameter(t *testing.T) {
	// Paper: ND = ceiling(N/4).
	for _, tc := range []struct{ n, want int }{
		{8, 2}, {12, 3}, {16, 4}, {20, 5}, {22, 6}, {32, 8},
	} {
		s := MustSpidergon(tc.n)
		if s.Diameter() != tc.want {
			t.Errorf("spidergon-%d analytic ND = %d, want %d", tc.n, s.Diameter(), tc.want)
		}
		if got := Diameter(s); got != tc.want {
			t.Errorf("spidergon-%d BFS ND = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestMeshConstruction(t *testing.T) {
	m := MustMesh(4, 3) // 4 cols, 3 rows
	if m.Nodes() != 12 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	// Paper: 2(m-1)n + 2(n-1)m channels.
	want := 2*(4-1)*3 + 2*(3-1)*4
	if LinkCount(m) != want {
		t.Fatalf("links = %d, want %d", LinkCount(m), want)
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if Degree(m, 0) != 2 {
		t.Fatalf("corner degree = %d", Degree(m, 0))
	}
	if Degree(m, 1) != 3 {
		t.Fatalf("edge degree = %d", Degree(m, 1))
	}
	if Degree(m, 5) != 4 { // (1,1) interior
		t.Fatalf("interior degree = %d", Degree(m, 5))
	}
}

func TestMeshCoords(t *testing.T) {
	m := MustMesh(4, 3)
	x, y := m.Coord(6)
	if x != 2 || y != 1 {
		t.Fatalf("coord(6) = (%d,%d)", x, y)
	}
	id, ok := m.NodeAt(2, 1)
	if !ok || id != 6 {
		t.Fatalf("nodeAt(2,1) = %d,%v", id, ok)
	}
	if _, ok := m.NodeAt(4, 0); ok {
		t.Fatal("out-of-range x accepted")
	}
	if _, ok := m.NodeAt(0, 3); ok {
		t.Fatal("out-of-range y accepted")
	}
	if _, ok := m.NodeAt(-1, 0); ok {
		t.Fatal("negative x accepted")
	}
}

func TestMeshNeighborDirections(t *testing.T) {
	m := MustMesh(3, 3)
	// Center node 4 at (1,1).
	for _, tc := range []struct {
		dir  Direction
		want int
	}{{DirEast, 5}, {DirWest, 3}, {DirNorth, 1}, {DirSouth, 7}} {
		got, ok := m.Neighbor(4, tc.dir)
		if !ok || got != tc.want {
			t.Fatalf("neighbor(4,%v) = %d,%v want %d", tc.dir, got, ok, tc.want)
		}
	}
	// Corner 0 has no west/north.
	if _, ok := m.Neighbor(0, DirWest); ok {
		t.Fatal("corner has west neighbor")
	}
	if _, ok := m.Neighbor(0, DirNorth); ok {
		t.Fatal("corner has north neighbor")
	}
}

func TestMeshDistanceAndDiameter(t *testing.T) {
	m := MustMesh(4, 6)
	if m.Distance(0, 23) != 3+5 {
		t.Fatalf("manhattan distance = %d", m.Distance(0, 23))
	}
	if m.Diameter() != 8 { // paper: ND = m+n-2
		t.Fatalf("diameter = %d", m.Diameter())
	}
	if Diameter(m) != 8 {
		t.Fatalf("BFS diameter = %d", Diameter(m))
	}
	// Full mesh: Manhattan == BFS everywhere.
	for a := 0; a < m.Nodes(); a++ {
		bfs := BFS(m, a)
		for b := 0; b < m.Nodes(); b++ {
			if m.Distance(a, b) != bfs[b] {
				t.Fatalf("mesh distance(%d,%d) mismatch", a, b)
			}
		}
	}
}

func TestMeshInvalid(t *testing.T) {
	if _, err := NewMesh(0, 5); err == nil {
		t.Fatal("0-column mesh accepted")
	}
	if _, err := NewMesh(1, 1); err == nil {
		t.Fatal("1x1 mesh accepted")
	}
}

func TestIrregularMeshCoversExactlyN(t *testing.T) {
	for n := 2; n <= 70; n++ {
		m := MustIrregularMesh(n)
		if m.Nodes() != n {
			t.Fatalf("irregular mesh %d has %d nodes", n, m.Nodes())
		}
		if !IsConnected(m) {
			t.Fatalf("irregular mesh %d disconnected", n)
		}
	}
}

func TestIrregularMeshPerfectSquareIsIdeal(t *testing.T) {
	m := MustIrregularMesh(16)
	if m.Cols() != 4 || m.Rows() != 4 || m.Irregular() {
		t.Fatalf("imesh-16 = %dx%d irregular=%v", m.Cols(), m.Rows(), m.Irregular())
	}
}

func TestIrregularMeshPartialLastRow(t *testing.T) {
	m := MustIrregularMesh(13) // 4 cols: 3 full rows + 1 node
	if m.Cols() != 4 || m.Rows() != 4 || m.LastRowNodes() != 1 || !m.Irregular() {
		t.Fatalf("imesh-13 shape = %dx%d last=%d", m.Cols(), m.Rows(), m.LastRowNodes())
	}
	// Node 12 at (0,3) exists; (1,3) does not.
	if _, ok := m.NodeAt(0, 3); !ok {
		t.Fatal("(0,3) missing")
	}
	if _, ok := m.NodeAt(1, 3); ok {
		t.Fatal("(1,3) should not exist")
	}
	// Node 12 connects only north to node 8.
	if Degree(m, 12) != 1 {
		t.Fatalf("degree(12) = %d", Degree(m, 12))
	}
}

func TestFactorMesh(t *testing.T) {
	m := MustFactorMesh(24)
	if m.Cols() != 4 || m.Rows() != 6 {
		t.Fatalf("factor mesh 24 = %dx%d, want 4x6", m.Cols(), m.Rows())
	}
	m = MustFactorMesh(13) // prime: chain
	if m.Cols() != 1 || m.Rows() != 13 {
		t.Fatalf("factor mesh 13 = %dx%d, want 1x13", m.Cols(), m.Rows())
	}
	if Diameter(m) != 12 {
		t.Fatalf("chain diameter = %d", Diameter(m))
	}
}

func TestTorusConstruction(t *testing.T) {
	tr := MustTorus(4, 4)
	if tr.Nodes() != 16 || LinkCount(tr) != 64 {
		t.Fatalf("torus 4x4: nodes=%d links=%d", tr.Nodes(), LinkCount(tr))
	}
	for v := 0; v < 16; v++ {
		if Degree(tr, v) != 4 {
			t.Fatalf("torus degree(%d) = %d", v, Degree(tr, v))
		}
	}
	// Wraparound: node 0's west neighbor is 3, north neighbor is 12.
	if w, _ := tr.Neighbor(0, DirWest); w != 3 {
		t.Fatalf("torus west wrap = %d", w)
	}
	if nn, _ := tr.Neighbor(0, DirNorth); nn != 12 {
		t.Fatalf("torus north wrap = %d", nn)
	}
}

func TestTorusDistanceMatchesBFS(t *testing.T) {
	tr := MustTorus(5, 3)
	for a := 0; a < tr.Nodes(); a++ {
		bfs := BFS(tr, a)
		for b := 0; b < tr.Nodes(); b++ {
			if tr.Distance(a, b) != bfs[b] {
				t.Fatalf("torus distance(%d,%d)=%d bfs=%d", a, b, tr.Distance(a, b), bfs[b])
			}
		}
	}
	if tr.Diameter() != Diameter(tr) {
		t.Fatal("torus analytic diameter mismatch")
	}
}

func TestTorusRejectsSmall(t *testing.T) {
	if _, err := NewTorus(2, 4); err == nil {
		t.Fatal("2-wide torus accepted")
	}
}

func TestChordalRing(t *testing.T) {
	c := MustChordalRing(10, 3)
	if c.Stride() != 3 {
		t.Fatal("stride")
	}
	// Degree 4: cw, ccw, chord out, chord in-reverse.
	for v := 0; v < 10; v++ {
		if Degree(c, v) != 4 {
			t.Fatalf("chordal degree(%d) = %d", v, Degree(c, v))
		}
	}
	if !IsConnected(c) {
		t.Fatal("chordal ring disconnected")
	}
	// Chords shorten paths: ring-10 diameter 5, chordal must be smaller.
	if Diameter(c) >= 5 {
		t.Fatalf("chordal diameter = %d, want < 5", Diameter(c))
	}
}

func TestChordalRingValidation(t *testing.T) {
	if _, err := NewChordalRing(10, 5); err == nil {
		t.Fatal("stride n/2 accepted (should direct to spidergon)")
	}
	if _, err := NewChordalRing(10, 1); err == nil {
		t.Fatal("stride 1 accepted")
	}
	if _, err := NewChordalRing(10, 9); err == nil {
		t.Fatal("stride n-1 accepted")
	}
	if _, err := NewChordalRing(4, 2); err == nil {
		t.Fatal("n=4 accepted")
	}
}

func TestChannelIDsDense(t *testing.T) {
	for _, top := range []Topology{
		MustRing(8), MustSpidergon(8), MustMesh(3, 3), MustTorus(3, 3),
		MustIrregularMesh(11), MustChordalRing(9, 2),
	} {
		for i, c := range top.Channels() {
			if c.ID != i {
				t.Fatalf("%s: channel %d has id %d", top.Name(), i, c.ID)
			}
		}
	}
}

func TestChannelBetween(t *testing.T) {
	m := MustMesh(3, 3)
	c, ok := ChannelBetween(m, 0, 1)
	if !ok || c.Dir != DirEast {
		t.Fatalf("channel 0->1 = %v,%v", c, ok)
	}
	if _, ok := ChannelBetween(m, 0, 8); ok {
		t.Fatal("non-adjacent channel found")
	}
}

func TestInOutConsistency(t *testing.T) {
	for _, top := range []Topology{
		MustRing(9), MustSpidergon(10), MustMesh(4, 5),
		MustIrregularMesh(14), MustTorus(3, 4), MustChordalRing(11, 3),
	} {
		outSum, inSum := 0, 0
		for v := 0; v < top.Nodes(); v++ {
			outSum += len(top.Out(v))
			inSum += len(top.In(v))
			for _, c := range top.Out(v) {
				if c.Src != v {
					t.Fatalf("%s: out channel of %d has src %d", top.Name(), v, c.Src)
				}
			}
			for _, c := range top.In(v) {
				if c.Dst != v {
					t.Fatalf("%s: in channel of %d has dst %d", top.Name(), v, c.Dst)
				}
			}
		}
		if outSum != LinkCount(top) || inSum != LinkCount(top) {
			t.Fatalf("%s: in/out totals %d/%d != %d", top.Name(), inSum, outSum, LinkCount(top))
		}
	}
}

func TestSymmetricDigraph(t *testing.T) {
	// Every channel has a reverse channel (unidirectional pairs).
	for _, top := range []Topology{
		MustRing(7), MustSpidergon(12), MustMesh(4, 4),
		MustIrregularMesh(10), MustTorus(3, 3), MustChordalRing(9, 2),
	} {
		for _, c := range top.Channels() {
			if _, ok := ChannelBetween(top, c.Dst, c.Src); !ok {
				t.Fatalf("%s: channel %v has no reverse", top.Name(), c)
			}
		}
	}
}

func TestLooksVertexSymmetric(t *testing.T) {
	if !LooksVertexSymmetric(MustRing(10)) {
		t.Error("ring should be vertex symmetric")
	}
	if !LooksVertexSymmetric(MustSpidergon(12)) {
		t.Error("spidergon should be vertex symmetric")
	}
	if !LooksVertexSymmetric(MustTorus(4, 4)) {
		t.Error("torus should be vertex symmetric")
	}
	if LooksVertexSymmetric(MustMesh(3, 3)) {
		t.Error("mesh should not be vertex symmetric")
	}
	if LooksVertexSymmetric(MustIrregularMesh(7)) {
		t.Error("irregular mesh should not be vertex symmetric")
	}
}

func TestMinMaxDegree(t *testing.T) {
	m := MustMesh(4, 4)
	if MinDegree(m) != 2 || MaxDegree(m) != 4 {
		t.Fatalf("mesh degrees = %d..%d", MinDegree(m), MaxDegree(m))
	}
	s := MustSpidergon(8)
	if MinDegree(s) != 3 || MaxDegree(s) != 3 {
		t.Fatalf("spidergon degrees = %d..%d", MinDegree(s), MaxDegree(s))
	}
}

func TestBisectionChannels(t *testing.T) {
	// Ring: 2 links cross the cut, each 2 channels = 4.
	if got := BisectionChannels(MustRing(8)); got != 4 {
		t.Fatalf("ring bisection = %d, want 4", got)
	}
	// Spidergon N: ring cut 4 + N/2 across channels... across links from
	// i<N/2 go to i+N/2 in the other half: N/2 forward + N/2 reverse.
	if got := BisectionChannels(MustSpidergon(8)); got != 4+8 {
		t.Fatalf("spidergon-8 bisection = %d, want 12", got)
	}
	// 4x4 mesh horizontal cut: 4 links * 2 = 8 channels.
	if got := BisectionChannels(MustMesh(4, 4)); got != 8 {
		t.Fatalf("mesh bisection = %d, want 8", got)
	}
}

func TestDistanceHistogram(t *testing.T) {
	r := MustRing(6)
	h := DistanceHistogram(r)
	// Distances from each node: 0,1,1,2,2,3 -> per node: one 0, two 1s,
	// two 2s, one 3. Times 6 nodes.
	want := []int{6, 12, 12, 6}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestEccentricityAndRadius(t *testing.T) {
	m := MustMesh(3, 3)
	if Eccentricity(m, 4) != 2 { // center
		t.Fatalf("center eccentricity = %d", Eccentricity(m, 4))
	}
	if Eccentricity(m, 0) != 4 { // corner
		t.Fatalf("corner eccentricity = %d", Eccentricity(m, 0))
	}
	if Radius(m) != 2 {
		t.Fatalf("radius = %d", Radius(m))
	}
}

func TestShortestPath(t *testing.T) {
	m := MustMesh(3, 3)
	p := ShortestPath(m, 0, 8)
	if len(p) != 5 || p[0] != 0 || p[4] != 8 {
		t.Fatalf("path = %v", p)
	}
	// Consecutive nodes adjacent.
	for i := 0; i+1 < len(p); i++ {
		if _, ok := ChannelBetween(m, p[i], p[i+1]); !ok {
			t.Fatalf("path step %d->%d not a channel", p[i], p[i+1])
		}
	}
	if got := ShortestPath(m, 3, 3); len(got) != 1 || got[0] != 3 {
		t.Fatalf("self path = %v", got)
	}
}

func TestPathExists(t *testing.T) {
	if !PathExists(MustRing(5), 0, 3) {
		t.Fatal("ring path missing")
	}
}

func TestAllPairsDistancesSymmetric(t *testing.T) {
	for _, top := range []Topology{MustSpidergon(10), MustIrregularMesh(11)} {
		d := AllPairsDistances(top)
		n := top.Nodes()
		for i := 0; i < n; i++ {
			if d[i][i] != 0 {
				t.Fatalf("%s: d[%d][%d] = %d", top.Name(), i, i, d[i][i])
			}
			for j := 0; j < n; j++ {
				if d[i][j] != d[j][i] {
					t.Fatalf("%s: asymmetric distances %d,%d", top.Name(), i, j)
				}
			}
		}
	}
}

// Property: triangle inequality holds for BFS distances on spidergons.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(nRaw, aRaw, bRaw, cRaw uint8) bool {
		n := 6 + 2*(int(nRaw)%14) // even 6..32
		s := MustSpidergon(n)
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		return s.Distance(a, c) <= s.Distance(a, b)+s.Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the paper's link-count formulas hold for all sizes.
func TestPropertyLinkCountFormulas(t *testing.T) {
	f := func(raw uint8) bool {
		n := 6 + 2*(int(raw)%20)
		if LinkCount(MustRing(n)) != 2*n {
			return false
		}
		if LinkCount(MustSpidergon(n)) != 3*n {
			return false
		}
		cols, rows := 2+int(raw)%5, 2+int(raw/5)%5
		want := 2*(cols-1)*rows + 2*(rows-1)*cols
		return LinkCount(MustMesh(cols, rows)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: irregular mesh diameter lies between ideal-mesh and
// chain bounds and the graph stays connected.
func TestPropertyIrregularMeshSane(t *testing.T) {
	f := func(raw uint8) bool {
		n := 4 + int(raw)%60
		m := MustIrregularMesh(n)
		if m.Nodes() != n || !IsConnected(m) {
			return false
		}
		d := Diameter(m)
		return d >= 1 && d <= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
