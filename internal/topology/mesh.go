package topology

import (
	"fmt"
	"math"
)

// Mesh is the m×n 2D mesh (figure 1.c of the paper): nodes are laid out
// row-major on a grid of m columns and n rows, with bidirectional links
// between horizontal and vertical neighbours. Corner nodes have degree
// 2, edge nodes 3, interior nodes 4. Link count is 2(m-1)n + 2(n-1)m.
//
// The same type also models the paper's *irregular* ("real") meshes:
// grids whose last row is only partially filled, which arise when N is
// not a product of two balanced factors. Construct those with
// NewIrregularMesh.
type Mesh struct {
	*graph
	cols, rows int
	lastRow    int // nodes present in the final row (== cols when full)
}

// NewMesh builds a full m-column × n-row mesh. Both dimensions must be
// positive and the total node count at least 2.
func NewMesh(cols, rows int) (*Mesh, error) {
	if cols < 1 || rows < 1 || cols*rows < 2 {
		return nil, fmt.Errorf("topology: invalid mesh %dx%d", cols, rows)
	}
	return buildMesh(fmt.Sprintf("mesh-%dx%d", cols, rows), cols, rows, cols)
}

// MustMesh is NewMesh that panics on error.
func MustMesh(cols, rows int) *Mesh {
	m, err := NewMesh(cols, rows)
	if err != nil {
		panic(err)
	}
	return m
}

// NewIrregularMesh builds the paper's "real mesh" on exactly n nodes:
// the most balanced grid that covers n, with the last row partially
// filled. Columns = round(√n) (adjusted so the last row is non-empty),
// rows = ceil(n/columns). For n a perfect square this is the ideal
// √n×√n mesh.
func NewIrregularMesh(n int) (*Mesh, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: irregular mesh needs n >= 2, got %d", n)
	}
	cols := int(math.Round(math.Sqrt(float64(n))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	last := n - cols*(rows-1)
	name := fmt.Sprintf("imesh-%d(%dx%d+%d)", n, cols, rows-1, last)
	if last == cols {
		name = fmt.Sprintf("imesh-%d(%dx%d)", n, cols, rows)
	}
	return buildMesh(name, cols, rows, last)
}

// MustIrregularMesh is NewIrregularMesh that panics on error.
func MustIrregularMesh(n int) *Mesh {
	m, err := NewIrregularMesh(n)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFactorMesh builds the most balanced full m×n mesh with m*n == n
// nodes exactly: cols is the largest divisor of n not exceeding √n.
// Prime n degenerates to a 1×n chain — exactly the unpredictability the
// paper attributes to real mesh implementations.
func NewFactorMesh(n int) (*Mesh, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: factor mesh needs n >= 2, got %d", n)
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return NewMesh(best, n/best)
}

// MustFactorMesh is NewFactorMesh that panics on error.
func MustFactorMesh(n int) *Mesh {
	m, err := NewFactorMesh(n)
	if err != nil {
		panic(err)
	}
	return m
}

// buildMesh constructs a grid with `last` nodes in the final row.
func buildMesh(name string, cols, rows, last int) (*Mesh, error) {
	if last < 1 || last > cols {
		return nil, fmt.Errorf("topology: invalid last row size %d for %d columns", last, cols)
	}
	n := cols*(rows-1) + last
	if n < 2 {
		return nil, fmt.Errorf("topology: mesh with %d nodes is degenerate", n)
	}
	m := &Mesh{graph: newGraph(name, n), cols: cols, rows: rows, lastRow: last}
	// Per-node channel order: [east, west, north, south] with absent
	// directions skipped — deterministic for routing-table indexing.
	for id := 0; id < n; id++ {
		x, y := m.Coord(id)
		if e, ok := m.nodeAt(x+1, y); ok {
			m.addChannel(id, e, DirEast)
		}
		if w, ok := m.nodeAt(x-1, y); ok {
			m.addChannel(id, w, DirWest)
		}
		if nn, ok := m.nodeAt(x, y-1); ok {
			m.addChannel(id, nn, DirNorth)
		}
		if s, ok := m.nodeAt(x, y+1); ok {
			m.addChannel(id, s, DirSouth)
		}
	}
	return m, nil
}

// Cols returns the number of grid columns (m in the paper's m×n).
func (m *Mesh) Cols() int { return m.cols }

// Rows returns the number of grid rows, counting a partial last row.
func (m *Mesh) Rows() int { return m.rows }

// LastRowNodes returns how many nodes the final row holds.
func (m *Mesh) LastRowNodes() int { return m.lastRow }

// Irregular reports whether the last row is partial.
func (m *Mesh) Irregular() bool { return m.lastRow != m.cols }

// Coord returns the (x, y) grid coordinates of a node id. x is the
// column (0-based, increasing east), y the row (0-based, increasing
// south), matching the paper's figure 1.c numbering.
func (m *Mesh) Coord(id int) (x, y int) {
	return id % m.cols, id / m.cols
}

// NodeAt returns the node id at grid position (x, y), with ok=false
// outside the (possibly irregular) grid.
func (m *Mesh) NodeAt(x, y int) (int, bool) { return m.nodeAt(x, y) }

func (m *Mesh) nodeAt(x, y int) (int, bool) {
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return -1, false
	}
	if y == m.rows-1 && x >= m.lastRow {
		return -1, false
	}
	return y*m.cols + x, true
}

// Distance returns the Manhattan distance between two nodes. For a full
// mesh this is the exact shortest-path distance; for an irregular mesh
// it is a lower bound (the true distance may be one or two hops longer
// when a path must detour around the missing corner).
func (m *Mesh) Distance(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Diameter returns (m-1)+(n-1) for a full mesh, the paper's ND=(m+n-2).
// For irregular meshes use the exact BFS metric in this package instead.
func (m *Mesh) Diameter() int { return (m.cols - 1) + (m.rows - 1) }
