package topology

import "fmt"

// Spidergon is the STMicroelectronics Spidergon topology (figure 1.a of
// the paper): an N-node ring (N even) enriched with across links between
// opposite nodes, i.e. node i additionally connects to i + N/2 (mod N).
//
// Properties highlighted by the paper: regular topology, vertex
// symmetry (the topology looks identical from every node),
// edge-transitivity, and constant node degree 3 (clockwise,
// counterclockwise, across), which keeps router hardware simple. Link
// count is 3N.
type Spidergon struct {
	*graph
	half int
}

// NewSpidergon builds an N-node Spidergon. N must be even (so every node
// has an opposite) and at least 4 (below that the across neighbour would
// coincide with a ring neighbour, creating a parallel edge).
func NewSpidergon(n int) (*Spidergon, error) {
	if n < 4 {
		return nil, fmt.Errorf("topology: spidergon needs n >= 4, got %d", n)
	}
	if n%2 != 0 {
		return nil, fmt.Errorf("topology: spidergon needs even n, got %d", n)
	}
	g := newGraph(fmt.Sprintf("spidergon-%d", n), n)
	half := n / 2
	// Out() ordering at every node: [cw, ccw, across].
	for i := 0; i < n; i++ {
		g.addChannel(i, (i+1)%n, DirClockwise)
		g.addChannel(i, (i-1+n)%n, DirCounterClockwise)
		g.addChannel(i, (i+half)%n, DirAcross)
	}
	return &Spidergon{graph: g, half: half}, nil
}

// MustSpidergon is NewSpidergon that panics on error.
func MustSpidergon(n int) *Spidergon {
	s, err := NewSpidergon(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Across returns the node opposite to i on the ring.
func (s *Spidergon) Across(i int) int { return (i + s.half) % s.n }

// RingDistance returns the ring-only shortest distance between a and b,
// ignoring across links.
func (s *Spidergon) RingDistance(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := s.n - d; alt < d {
		return alt
	}
	return d
}

// Distance returns the shortest-path hop distance between a and b using
// the across-first structure: if the ring distance exceeds N/4 the
// shortest route crosses once and then travels the ring, otherwise it
// stays on the ring.
func (s *Spidergon) Distance(a, b int) int {
	ringD := s.RingDistance(a, b)
	crossD := 1 + s.RingDistance(s.Across(a), b)
	if crossD < ringD {
		return crossD
	}
	return ringD
}

// Diameter returns ceiling(N/4), the paper's ND for Spidergon.
func (s *Spidergon) Diameter() int { return (s.n + 3) / 4 }
