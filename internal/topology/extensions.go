package topology

import "fmt"

// The paper's future work calls for "analysis of ... additional NoC
// topologies". This file provides two natural extensions of the studied
// family: the 2D torus (a mesh with wraparound links, removing the mesh's
// edge asymmetry) and the chordal ring (a ring with configurable-stride
// chords, of which Spidergon is the special case stride = N/2).

// Torus is an m×n 2D torus: a full mesh plus wraparound links in both
// dimensions. Every node has degree 4 and the topology is vertex
// symmetric. Dimensions below 3 are rejected to avoid parallel edges
// (a 2-wide wraparound duplicates the mesh link).
type Torus struct {
	*graph
	cols, rows int
}

// NewTorus builds an m-column × n-row torus with m, n >= 3.
func NewTorus(cols, rows int) (*Torus, error) {
	if cols < 3 || rows < 3 {
		return nil, fmt.Errorf("topology: torus needs both dimensions >= 3, got %dx%d", cols, rows)
	}
	t := &Torus{graph: newGraph(fmt.Sprintf("torus-%dx%d", cols, rows), cols*rows), cols: cols, rows: rows}
	for id := 0; id < cols*rows; id++ {
		x, y := id%cols, id/cols
		east := y*cols + (x+1)%cols
		west := y*cols + (x-1+cols)%cols
		north := ((y-1+rows)%rows)*cols + x
		south := ((y+1)%rows)*cols + x
		t.addChannel(id, east, DirEast)
		t.addChannel(id, west, DirWest)
		t.addChannel(id, north, DirNorth)
		t.addChannel(id, south, DirSouth)
	}
	return t, nil
}

// MustTorus is NewTorus that panics on error.
func MustTorus(cols, rows int) *Torus {
	t, err := NewTorus(cols, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Cols returns the number of columns.
func (t *Torus) Cols() int { return t.cols }

// Rows returns the number of rows.
func (t *Torus) Rows() int { return t.rows }

// Coord returns the (x, y) grid coordinates of node id.
func (t *Torus) Coord(id int) (x, y int) { return id % t.cols, id / t.cols }

// Distance returns the shortest-path distance with wraparound:
// min(dx, m-dx) + min(dy, n-dy).
func (t *Torus) Distance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	if w := t.cols - dx; w < dx {
		dx = w
	}
	dy := abs(ay - by)
	if w := t.rows - dy; w < dy {
		dy = w
	}
	return dx + dy
}

// Diameter returns floor(m/2) + floor(n/2).
func (t *Torus) Diameter() int { return t.cols/2 + t.rows/2 }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ChordalRing is an N-node ring augmented with chords of a fixed stride:
// node i additionally links to (i + stride) mod N. Spidergon is the
// chordal ring with stride N/2 (each chord then serves both directions,
// so Spidergon keeps degree 3 where a general chordal ring has degree 4).
type ChordalRing struct {
	*graph
	stride int
}

// NewChordalRing builds an N-node chordal ring with the given stride.
// Requirements: n >= 5, 2 <= stride <= n-2, and stride != n/2 (use
// NewSpidergon for the symmetric case — the construction differs: the
// half-stride chord is a single bidirectional link, not two).
func NewChordalRing(n, stride int) (*ChordalRing, error) {
	if n < 5 {
		return nil, fmt.Errorf("topology: chordal ring needs n >= 5, got %d", n)
	}
	if stride < 2 || stride > n-2 {
		return nil, fmt.Errorf("topology: chord stride %d out of range for n=%d", stride, n)
	}
	if n%2 == 0 && stride == n/2 {
		return nil, fmt.Errorf("topology: stride n/2 is the Spidergon; use NewSpidergon(%d)", n)
	}
	g := newGraph(fmt.Sprintf("chordal-%d+%d", n, stride), n)
	for i := 0; i < n; i++ {
		g.addChannel(i, (i+1)%n, DirClockwise)
		g.addChannel(i, (i-1+n)%n, DirCounterClockwise)
	}
	// Chords as bidirectional links (a forward and a reverse channel per
	// chord), added after ring channels so ring channel ids stay aligned
	// with plain rings of the same size.
	for i := 0; i < n; i++ {
		g.addLink(i, (i+stride)%n, DirChord)
	}
	return &ChordalRing{graph: g, stride: stride}, nil
}

// MustChordalRing is NewChordalRing that panics on error.
func MustChordalRing(n, stride int) *ChordalRing {
	c, err := NewChordalRing(n, stride)
	if err != nil {
		panic(err)
	}
	return c
}

// Stride returns the chord stride.
func (c *ChordalRing) Stride() int { return c.stride }
