// Package topology models the Network-on-Chip interconnect graphs the
// paper compares: Ring, Spidergon and the 2D Mesh family (ideal square,
// factorised rectangular, and irregular meshes with a partially filled
// last row), plus Torus and Chordal-Ring extensions.
//
// A topology is a directed multigraph of unidirectional channels: per the
// paper, "channels as unidirectional pairs of links", so every physical
// bidirectional link contributes two Channel values. Channel identifiers
// are dense and deterministic, so routing tables, buffer arrays and
// dependency graphs can be indexed by them directly.
package topology

import "fmt"

// Direction labels the class of a channel at its source node. Routing
// functions use directions to express decisions ("go clockwise", "take
// the across link") instead of raw neighbour ids.
type Direction int

// Channel direction classes. Ring-like topologies use Clockwise,
// CounterClockwise and Across; meshes use the four compass directions;
// Chord marks the extra links of a chordal ring.
const (
	DirInvalid Direction = iota
	DirClockwise
	DirCounterClockwise
	DirAcross
	DirEast
	DirWest
	DirNorth
	DirSouth
	DirChord
	DirChordBack

	// DirCount bounds the enum for dense per-direction tables.
	DirCount
)

var dirNames = map[Direction]string{
	DirInvalid:          "invalid",
	DirClockwise:        "cw",
	DirCounterClockwise: "ccw",
	DirAcross:           "across",
	DirEast:             "east",
	DirWest:             "west",
	DirNorth:            "north",
	DirSouth:            "south",
	DirChord:            "chord",
	DirChordBack:        "chord-back",
}

// String returns the lowercase conventional name of the direction.
func (d Direction) String() string {
	if s, ok := dirNames[d]; ok {
		return s
	}
	return fmt.Sprintf("direction(%d)", int(d))
}

// Opposite returns the reverse direction class (the direction of the
// paired channel of the same physical link), or DirInvalid when the
// direction has no defined opposite.
func (d Direction) Opposite() Direction {
	switch d {
	case DirClockwise:
		return DirCounterClockwise
	case DirCounterClockwise:
		return DirClockwise
	case DirAcross:
		return DirAcross
	case DirEast:
		return DirWest
	case DirWest:
		return DirEast
	case DirNorth:
		return DirSouth
	case DirSouth:
		return DirNorth
	case DirChord:
		return DirChordBack
	case DirChordBack:
		return DirChord
	default:
		return DirInvalid
	}
}

// Channel is one unidirectional link from Src to Dst. ID is the dense
// index of the channel within its topology (stable across runs).
type Channel struct {
	ID  int
	Src int
	Dst int
	Dir Direction
}

// String renders the channel as "src -dir-> dst".
func (c Channel) String() string {
	return fmt.Sprintf("%d -%s-> %d", c.Src, c.Dir, c.Dst)
}

// Topology is the read-only interface all interconnect graphs satisfy.
type Topology interface {
	// Name identifies the instance, e.g. "spidergon-16" or "mesh-4x6".
	Name() string
	// Nodes returns the node count N; nodes are numbered 0..N-1.
	Nodes() int
	// Channels returns all unidirectional channels in ID order. The
	// returned slice is shared; callers must not modify it.
	Channels() []Channel
	// Out returns the channels leaving node, in deterministic order.
	Out(node int) []Channel
	// In returns the channels entering node, in deterministic order.
	In(node int) []Channel
	// Neighbor returns the node reached from node via direction d,
	// with ok=false when no such channel exists.
	Neighbor(node int, d Direction) (int, bool)
}

// graph is the shared storage behind every concrete topology.
type graph struct {
	name     string
	n        int
	channels []Channel
	out      [][]Channel
	in       [][]Channel
}

func newGraph(name string, n int) *graph {
	return &graph{
		name: name,
		n:    n,
		out:  make([][]Channel, n),
		in:   make([][]Channel, n),
	}
}

// addChannel appends a unidirectional channel and returns it.
func (g *graph) addChannel(src, dst int, dir Direction) Channel {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		panic(fmt.Sprintf("topology: channel %d->%d out of range (n=%d)", src, dst, g.n))
	}
	if src == dst {
		panic(fmt.Sprintf("topology: self-loop at node %d", src))
	}
	c := Channel{ID: len(g.channels), Src: src, Dst: dst, Dir: dir}
	g.channels = append(g.channels, c)
	g.out[src] = append(g.out[src], c)
	g.in[dst] = append(g.in[dst], c)
	return c
}

// addLink appends both channels of a bidirectional physical link, with
// the forward channel classed dir and the reverse classed dir.Opposite().
func (g *graph) addLink(a, b int, dir Direction) {
	g.addChannel(a, b, dir)
	g.addChannel(b, a, dir.Opposite())
}

func (g *graph) Name() string        { return g.name }
func (g *graph) Nodes() int          { return g.n }
func (g *graph) Channels() []Channel { return g.channels }

func (g *graph) Out(node int) []Channel { return g.out[node] }
func (g *graph) In(node int) []Channel  { return g.in[node] }

func (g *graph) Neighbor(node int, d Direction) (int, bool) {
	for _, c := range g.out[node] {
		if c.Dir == d {
			return c.Dst, true
		}
	}
	return -1, false
}

// ChannelBetween returns the channel from src to dst on t, with ok=false
// when the nodes are not adjacent in that orientation.
func ChannelBetween(t Topology, src, dst int) (Channel, bool) {
	for _, c := range t.Out(src) {
		if c.Dst == dst {
			return c, true
		}
	}
	return Channel{}, false
}

// Degree returns the out-degree of node (the paper's "node degree",
// counting physical links, which equals out-channels under the
// unidirectional-pair convention).
func Degree(t Topology, node int) int { return len(t.Out(node)) }

// MaxDegree returns the largest node degree in the topology.
func MaxDegree(t Topology) int {
	m := 0
	for v := 0; v < t.Nodes(); v++ {
		if d := Degree(t, v); d > m {
			m = d
		}
	}
	return m
}

// MinDegree returns the smallest node degree in the topology.
func MinDegree(t Topology) int {
	if t.Nodes() == 0 {
		return 0
	}
	m := Degree(t, 0)
	for v := 1; v < t.Nodes(); v++ {
		if d := Degree(t, v); d < m {
			m = d
		}
	}
	return m
}

// LinkCount returns the number of unidirectional channels — the paper's
// "number of network links" (2N for Ring, 3N for Spidergon,
// 2(m-1)n + 2(n-1)m for an m×n mesh).
func LinkCount(t Topology) int { return len(t.Channels()) }
