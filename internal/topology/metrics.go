package topology

import (
	"fmt"
	"sort"
)

// This file computes exact graph-theoretic metrics by breadth-first
// search. They are the ground truth against which the paper's
// closed-form ND and E[D] expressions (package analysis) are validated,
// and they are the only way to evaluate the irregular "real" meshes for
// which no closed form exists.

// BFS returns the shortest-path hop distance from src to every node.
// Unreachable nodes get distance -1.
func BFS(t Topology, src int) []int {
	n := t.Nodes()
	if src < 0 || src >= n {
		panic(fmt.Sprintf("topology: BFS source %d out of range", src))
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Out(v) {
			if dist[c.Dst] < 0 {
				dist[c.Dst] = dist[v] + 1
				queue = append(queue, c.Dst)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the full N×N distance matrix via one BFS per
// node. Entry [i][j] is -1 when j is unreachable from i.
func AllPairsDistances(t Topology) [][]int {
	n := t.Nodes()
	d := make([][]int, n)
	for i := 0; i < n; i++ {
		d[i] = BFS(t, i)
	}
	return d
}

// IsConnected reports whether every node reaches every other node.
func IsConnected(t Topology) bool {
	if t.Nodes() == 0 {
		return true
	}
	for _, d := range BFS(t, 0) {
		if d < 0 {
			return false
		}
	}
	// Directed graphs additionally need the reverse reachability; all
	// topologies here are symmetric digraphs, but check anyway so the
	// function is honest for arbitrary inputs.
	rev := newGraph("rev", t.Nodes())
	for _, c := range t.Channels() {
		rev.addChannel(c.Dst, c.Src, c.Dir)
	}
	for _, d := range BFS(rev, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum shortest-path distance over all ordered
// node pairs — the paper's worst-case index ND. It panics if the
// topology is disconnected (ND is undefined there).
func Diameter(t Topology) int {
	max := 0
	for i := 0; i < t.Nodes(); i++ {
		for j, d := range BFS(t, i) {
			if d < 0 {
				panic(fmt.Sprintf("topology: %s is disconnected (%d unreachable from %d)", t.Name(), j, i))
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AverageDistance returns the mean shortest-path length over all ordered
// pairs of distinct nodes — the paper's E[D]. It panics on a
// disconnected topology.
func AverageDistance(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		for j, d := range BFS(t, i) {
			if d < 0 {
				panic(fmt.Sprintf("topology: %s is disconnected (%d unreachable from %d)", t.Name(), j, i))
			}
			sum += d
		}
	}
	return float64(sum) / float64(n*(n-1))
}

// Eccentricity returns the greatest distance from node v to any node.
func Eccentricity(t Topology, v int) int {
	max := 0
	for _, d := range BFS(t, v) {
		if d < 0 {
			panic(fmt.Sprintf("topology: %s is disconnected", t.Name()))
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Radius returns the minimum eccentricity over all nodes.
func Radius(t Topology) int {
	r := -1
	for v := 0; v < t.Nodes(); v++ {
		e := Eccentricity(t, v)
		if r < 0 || e < r {
			r = e
		}
	}
	return r
}

// DistanceHistogram returns counts[d] = number of ordered pairs at
// distance d, for d in 0..Diameter.
func DistanceHistogram(t Topology) []int {
	var counts []int
	for i := 0; i < t.Nodes(); i++ {
		for _, d := range BFS(t, i) {
			if d < 0 {
				panic(fmt.Sprintf("topology: %s is disconnected", t.Name()))
			}
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d]++
		}
	}
	return counts
}

// distanceProfile is the sorted multiset of distances from one node,
// used as a cheap vertex-symmetry invariant.
func distanceProfile(t Topology, v int) []int {
	d := BFS(t, v)
	p := make([]int, len(d))
	copy(p, d)
	sort.Ints(p)
	return p
}

// LooksVertexSymmetric checks a strong necessary condition for vertex
// transitivity: every node has the same degree and the same sorted
// distance profile. The paper claims this property for Ring and
// Spidergon; meshes fail it (corners differ from interior nodes). The
// check is not a full automorphism test, hence "Looks".
func LooksVertexSymmetric(t Topology) bool {
	n := t.Nodes()
	if n == 0 {
		return true
	}
	deg0 := Degree(t, 0)
	p0 := distanceProfile(t, 0)
	for v := 1; v < n; v++ {
		if Degree(t, v) != deg0 {
			return false
		}
		p := distanceProfile(t, v)
		for i := range p {
			if p[i] != p0[i] {
				return false
			}
		}
	}
	return true
}

// BisectionChannels returns the number of unidirectional channels that
// cross the canonical bisection of the topology (nodes 0..N/2-1 versus
// the rest for ring-like node numberings, top half versus bottom half of
// rows for meshes and tori). For the regular topologies studied here the
// canonical cut is a minimum bisection, so this matches the textbook
// bisection width (in channels; halve for physical links).
func BisectionChannels(t Topology) int {
	n := t.Nodes()
	half := n / 2
	// Node ids are contiguous along rings and row-major on grids, so the
	// id-based cut is the natural diameter cut for rings/Spidergon and
	// the horizontal bisection for meshes and tori.
	inFirst := func(v int) bool { return v < half }
	cross := 0
	for _, c := range t.Channels() {
		if inFirst(c.Src) != inFirst(c.Dst) {
			cross++
		}
	}
	return cross
}

// PathExists reports whether dst is reachable from src.
func PathExists(t Topology, src, dst int) bool {
	return BFS(t, src)[dst] >= 0
}

// ShortestPath returns one shortest path from src to dst as a node
// sequence (inclusive of both endpoints), or nil when unreachable.
// Among equal-length paths the lexicographically first by channel order
// is returned, deterministically.
func ShortestPath(t Topology, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	n := t.Nodes()
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			break
		}
		for _, c := range t.Out(v) {
			if dist[c.Dst] < 0 {
				dist[c.Dst] = dist[v] + 1
				prev[c.Dst] = v
				queue = append(queue, c.Dst)
			}
		}
	}
	if dist[dst] < 0 {
		return nil
	}
	path := []int{dst}
	for v := dst; v != src; v = prev[v] {
		path = append(path, prev[v])
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
