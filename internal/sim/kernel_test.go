package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("new kernel time = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("new kernel pending = %d, want 0", k.Pending())
	}
}

func TestScheduleAndRunOrdersByTime(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, tm := range []Time{5, 1, 3, 2, 4} {
		tm := tm
		k.Schedule(tm, func() { got = append(got, k.Now()) })
	}
	k.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at time %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsRunInInsertionOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got order %v, want insertion order", got)
		}
	}
}

func TestPriorityOrdersSameTimeEvents(t *testing.T) {
	k := NewKernel()
	var got []string
	k.ScheduleWithPriority(1, 5, func() { got = append(got, "low") })
	k.ScheduleWithPriority(1, -5, func() { got = append(got, "high") })
	k.ScheduleWithPriority(1, 0, func() { got = append(got, "mid") })
	k.Run()
	if len(got) != 3 || got[0] != "high" || got[1] != "mid" || got[2] != "low" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	k.Schedule(5, func() {})
}

func TestScheduleNilFnPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event function did not panic")
		}
	}()
	k.Schedule(1, nil)
}

func TestScheduleAfter(t *testing.T) {
	k := NewKernel()
	var at Time = -1
	k.Schedule(3, func() {
		k.ScheduleAfter(4, func() { at = k.Now() })
	})
	k.Run()
	if at != 7 {
		t.Fatalf("ScheduleAfter fired at %v, want 7", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(1, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Scheduled() {
		t.Fatal("cancelled event still reports scheduled")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	k := NewKernel()
	e := k.Schedule(1, func() {})
	k.Cancel(e)
	k.Cancel(e)
	k.Cancel(nil)
	k.Run()
}

func TestCancelDuringRun(t *testing.T) {
	k := NewKernel()
	fired := false
	var victim *Event
	k.Schedule(1, func() { k.Cancel(victim) })
	victim = k.Schedule(2, func() { fired = true })
	k.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestReschedulePending(t *testing.T) {
	k := NewKernel()
	var at Time
	e := k.Schedule(10, func() { at = k.Now() })
	k.Reschedule(e, 3)
	k.Run()
	if at != 3 {
		t.Fatalf("rescheduled event fired at %v, want 3", at)
	}
}

func TestRescheduleFiredEventCreatesNew(t *testing.T) {
	k := NewKernel()
	count := 0
	e := k.Schedule(1, func() { count++ })
	k.Run()
	e2 := k.Reschedule(e, 5)
	if e2 == e {
		t.Fatal("rescheduling a fired event returned the same event")
	}
	k.Run()
	if count != 2 {
		t.Fatalf("event ran %d times, want 2", count)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, tm := range []Time{1, 2, 3, 10} {
		tm := tm
		k.Schedule(tm, func() { fired = append(fired, tm) })
	}
	end := k.RunUntil(5)
	if end != 5 {
		t.Fatalf("RunUntil returned %v, want 5", end)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3 only", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// The remaining event still runs when allowed.
	k.Run()
	if len(fired) != 4 || fired[3] != 10 {
		t.Fatalf("fired = %v, want final event at 10", fired)
	}
}

func TestRunUntilInclusiveOfDeadline(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(5, func() { fired = true })
	k.RunUntil(5)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	var sched func()
	sched = func() {
		count++
		if count == 100 {
			k.Stop()
		}
		k.ScheduleAfter(1, sched)
	}
	k.Schedule(0, sched)
	k.Run()
	if count != 100 {
		t.Fatalf("ran %d events after Stop, want exactly 100", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestNextEventTime(t *testing.T) {
	k := NewKernel()
	if k.NextEventTime() != Infinity {
		t.Fatal("empty kernel NextEventTime != Infinity")
	}
	k.Schedule(42, func() {})
	if k.NextEventTime() != 42 {
		t.Fatalf("NextEventTime = %v, want 42", k.NextEventTime())
	}
}

func TestProcessedCounts(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 17; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.Run()
	if k.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", k.Processed())
	}
}

func TestEventsScheduledDuringExecutionRun(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 50 {
			k.ScheduleAfter(1, recurse)
		}
	}
	k.Schedule(0, recurse)
	k.Run()
	if depth != 50 {
		t.Fatalf("recursion depth = %d, want 50", depth)
	}
	if k.Now() != 49 {
		t.Fatalf("final time = %v, want 49", k.Now())
	}
}

// Property: any multiset of scheduled times is dispatched in
// non-decreasing order.
func TestPropertyDispatchOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		var got []Time
		for _, v := range raw {
			tm := Time(v)
			k.Schedule(tm, func() { got = append(got, k.Now()) })
		}
		k.Run()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(d) never leaves the clock past d when events beyond
// d remain, and dispatches exactly the events with time <= d.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(raw []uint8, dl uint8) bool {
		k := NewKernel()
		deadline := Time(dl)
		want := 0
		for _, v := range raw {
			tm := Time(v)
			if tm <= deadline {
				want++
			}
			k.Schedule(tm, func() {})
		}
		k.RunUntil(deadline)
		return int(k.Processed()) == want && k.Now() <= deadline+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerRunsPhasesInOrder(t *testing.T) {
	k := NewKernel()
	tk := NewTicker(k, 1)
	var trace []string
	tk.OnTick(func(c uint64) { trace = append(trace, "a") })
	tk.OnTick(func(c uint64) { trace = append(trace, "b") })
	tk.Start()
	k.RunUntil(2) // ticks at t=0,1,2
	if tk.Cycle() != 3 {
		t.Fatalf("cycles = %d, want 3", tk.Cycle())
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestTickerStopAndRestart(t *testing.T) {
	k := NewKernel()
	tk := NewTicker(k, 1)
	tk.OnTick(func(c uint64) {})
	tk.Start()
	k.RunUntil(4)
	tk.Stop()
	k.RunUntil(10)
	if tk.Cycle() != 5 {
		t.Fatalf("cycles after stop = %d, want 5", tk.Cycle())
	}
	tk.Start()
	k.RunUntil(12)
	if tk.Cycle() != 8 {
		t.Fatalf("cycles after restart = %d, want 8 (ticks at 10,11,12)", tk.Cycle())
	}
}

func TestTickerSameTimeEventBeforeTick(t *testing.T) {
	// An ordinary event at exactly time t must run before the tick at t,
	// so injections "at cycle c" are visible to pipeline step c.
	k := NewKernel()
	tk := NewTicker(k, 1)
	arrived := false
	var seenAtTick bool
	tk.OnTick(func(c uint64) {
		if c == 3 {
			seenAtTick = arrived
		}
	})
	tk.Start()
	k.Schedule(3, func() { arrived = true })
	k.RunUntil(5)
	if !seenAtTick {
		t.Fatal("same-time ordinary event ran after the tick")
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period did not panic")
		}
	}()
	NewTicker(NewKernel(), 0)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child must not replay the parent's stream.
	p, c := NewRNG(7), child
	_ = p.Uint64() // parent consumed one draw for the split
	same := 0
	for i := 0; i < 64; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent (%d/64 equal draws)", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGIntnRangeAndCoverage(t *testing.T) {
	r := NewRNG(5)
	const n = 7
	seen := make([]int, n)
	for i := 0; i < 7000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Fatalf("Intn never produced %d", v)
		}
		// Expected 1000 each; allow generous slack.
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(%d) frequency of %d = %d, implausibly non-uniform", n, v, c)
		}
	}
}

func TestRNGIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const rate = 0.25
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Fatalf("Exp mean = %v, want ≈ %v", mean, 1/rate)
	}
}

func TestRNGExpInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(3)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.02 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for n := 1; n <= 40; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: Intn is always within bounds for arbitrary seeds and sizes.
func TestPropertyIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonProcessRateViaKernel(t *testing.T) {
	// Integration: exponential interarrivals scheduled on the kernel
	// produce a Poisson process with the requested rate.
	k := NewKernel()
	r := NewRNG(31)
	const lambda = 0.2
	const horizon = 500000.0
	count := 0
	var arrive func()
	arrive = func() {
		count++
		d := Time(r.Exp(lambda))
		if float64(k.Now())+float64(d) < horizon {
			k.ScheduleAfter(d, arrive)
		}
	}
	k.ScheduleAfter(Time(r.Exp(lambda)), arrive)
	k.Run()
	got := float64(count) / horizon
	if math.Abs(got-lambda) > 0.03*lambda {
		t.Fatalf("Poisson process rate = %v, want ≈ %v", got, lambda)
	}
}
