package sim

// Ticker drives synchronous (clocked) components on top of the
// event kernel. The NoC routers in this module are synchronous finite
// state machines: every cycle each router performs one pipeline step.
// Ticker registers those components and schedules one kernel event per
// cycle that walks them in two phases:
//
//  1. Phase funcs registered with OnTick run in registration order.
//     Models use ordered phases to implement the classic two-phase
//     (compute/commit) update so that intra-cycle evaluation order
//     cannot change results.
//  2. After the last phase, the ticker re-schedules itself one Period
//     later, unless stopped.
//
// Events scheduled by non-clocked components (e.g. Poisson packet
// arrivals) interleave naturally: the kernel orders them against tick
// events by time, and tick events use a high priority value so that at
// identical timestamps arrivals are visible to the very next tick.
type Ticker struct {
	kernel *Kernel
	period Time
	phases []func(cycle uint64)
	pace   func(cycle uint64, next Time) Time
	cycle  uint64
	event  *Event
	run    bool
}

// TickPriority orders tick events after same-time ordinary events, so a
// packet injected "at time t" is seen by the router pipeline step of
// cycle t rather than silently waiting a full extra cycle.
const TickPriority = 1 << 10

// NewTicker creates a ticker on the kernel with the given period. The
// ticker is created stopped; call Start.
func NewTicker(k *Kernel, period Time) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{kernel: k, period: period}
}

// OnTick appends a phase function invoked once per cycle, after all
// previously registered phases. The function receives the cycle index
// (0-based).
func (t *Ticker) OnTick(fn func(cycle uint64)) {
	if fn == nil {
		panic("sim: nil tick phase")
	}
	t.phases = append(t.phases, fn)
}

// OnPace installs a wake-scheduling hook consulted after each tick's
// phases for the time of the next tick. It receives the just-completed
// cycle index and the default next tick time (now + period) and
// returns the time to actually schedule. Returning the default keeps
// the ticker periodic; returning a later time skips the intervening
// ticks — the cycle counter advances by the number of whole periods
// skipped, as if the ticks had fired and done nothing. Clocked models
// that can prove their skipped cycles are no-ops (an idle NoC between
// two Poisson arrivals, found via Kernel.NextEventTime) use this to
// fast-forward without paying one kernel event per empty cycle. An
// earlier time than the default is ignored.
func (t *Ticker) OnPace(fn func(cycle uint64, next Time) Time) {
	t.pace = fn
}

// Start schedules the first tick at the current kernel time. Starting a
// running ticker is a no-op.
func (t *Ticker) Start() {
	if t.run {
		return
	}
	t.run = true
	t.event = t.kernel.ScheduleEvent(t.kernel.Now(), TickPriority, t, 0)
}

// Stop cancels the pending tick; the current cycle (if executing) still
// completes all phases.
func (t *Ticker) Stop() {
	if !t.run {
		return
	}
	t.run = false
	t.kernel.Cancel(t.event)
	t.event = nil
}

// Cycle returns the number of completed cycles.
func (t *Ticker) Cycle() uint64 { return t.cycle }

// Fire implements Handler: the ticker schedules itself through the
// kernel's pooled event records, so a clocked simulation pays zero
// allocations per cycle (the seed ticker allocated one event and one
// captured closure per tick).
func (t *Ticker) Fire(int) { t.tick() }

func (t *Ticker) tick() {
	// The record backing t.event just fired and is back on the kernel's
	// freelist; drop the reference so a Stop from within a phase cannot
	// cancel a recycled record.
	t.event = nil
	c := t.cycle
	for _, fn := range t.phases {
		fn(c)
	}
	t.cycle++
	if !t.run {
		return
	}
	next := t.kernel.Now() + t.period
	if t.pace != nil {
		if w := t.pace(c, next); w > next {
			t.cycle += uint64((w-next)/t.period + 0.5)
			next = w
		}
	}
	t.event = t.kernel.ScheduleEvent(next, TickPriority, t, 0)
}
