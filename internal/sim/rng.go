// Package sim provides a small, deterministic discrete-event simulation
// kernel: a future-event list driven by a binary heap, a simulation clock,
// and reproducible random-number streams.
//
// The kernel is the execution substrate for the NoC models in this module,
// playing the role OMNeT++ plays in the paper: components schedule events
// at future times, the kernel dispatches them in (time, priority, FIFO)
// order, and every stochastic component owns an independent seeded stream
// so that simulations are exactly reproducible regardless of scheduling
// interleavings or host parallelism.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator implementing
// xoshiro256** seeded via SplitMix64. It is not safe for concurrent use;
// give each simulation component its own stream via NewRNG or Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next SplitMix64 output.
// It is used only to expand a single 64-bit seed into the 256-bit
// xoshiro state, per the reference initialisation procedure.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given 64-bit seed. Two RNGs
// built from the same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initialises the generator in place, exactly as NewRNG seeds a
// fresh one. It exists so long-lived components (a workspace's traffic
// generator, its per-node streams) can rewind their streams for the
// next run without reallocating one RNG per node.
func (r *RNG) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A theoretically possible all-zero state would make xoshiro
	// degenerate; SplitMix64 cannot produce four zero outputs from any
	// seed, but guard anyway so the invariant is local and checkable.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new, statistically independent stream from this one.
// The parent stream advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SplitInto is Split writing the derived stream into dst instead of
// allocating — the parent stream advances by one draw either way, so
// Split and SplitInto are interchangeable draw for draw.
func (r *RNG) SplitInto(dst *RNG) {
	dst.Seed(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection,
	// giving an exactly uniform result for any n.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Exp returns an exponentially distributed variate with the given rate
// parameter (mean 1/rate). It panics if rate <= 0. Exponential
// interarrivals are what make a packet source Poisson, as in the paper's
// "Poisson interarrival distribution ... with variable parameter Lambda".
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so Log never sees zero.
	return -math.Log(1-u) / rate
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson returns a Poisson-distributed variate with the given mean,
// using inversion by sequential search for small means and the normal
// approximation cut-over for large means.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction; adequate for the
	// bulk-arrival helpers where mean is large.
	n := int(math.Floor(mean + math.Sqrt(mean)*r.normFloat64() + 0.5))
	if n < 0 {
		return 0
	}
	return n
}

// normFloat64 returns a standard normal variate via the polar
// Box–Muller method.
func (r *RNG) normFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
