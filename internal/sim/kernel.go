package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is the simulation time in cycles. The NoC models are synchronous,
// so integer cycle boundaries carry all router activity, but the kernel
// itself supports arbitrary fractional times (Poisson arrivals fall
// between ticks, exactly as in an OMNeT++ model).
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Handler is the closure-free event target of the hot path: instead of
// scheduling a captured func() — one heap allocation per event — a
// component implements Handler once and schedules (handler, arg) pairs
// through ScheduleEvent. The arg is an opaque payload the handler gave
// the kernel at scheduling time, typically a node index, so one handler
// object serves every per-node event stream of a model.
type Handler interface {
	// Fire runs the event. The kernel clock already shows the event's
	// time when Fire is invoked.
	Fire(arg int)
}

// Event is a unit of future work. Events are ordered by (time, priority,
// insertion order); lower priority values run first at equal times and
// insertion order breaks remaining ties so execution is deterministic.
type Event struct {
	time     Time
	priority int
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	h        Handler
	arg      int
	pooled   bool // record owned by the kernel freelist (handler API)
	canceled bool
}

// Time returns the time the event is scheduled for.
func (e *Event) Time() Time { return e.time }

// Scheduled reports whether the event is still pending in a kernel.
func (e *Event) Scheduled() bool { return e.index >= 0 && !e.canceled }

// eventQueue implements heap.Interface ordered by (time, priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive: a clock plus a
// future-event list. A Kernel is not safe for concurrent use; run one
// simulation per goroutine.
type Kernel struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
	stopped   bool

	// free is the recycled-record list of the handler API: events
	// scheduled through ScheduleEvent return here when they fire or are
	// cancelled, so a steady-state simulation schedules events without
	// allocating. Closure events (Schedule) are excluded — their *Event
	// may be retained and re-armed by callers (Reschedule after firing),
	// which a recycled record could not support safely.
	free []*Event
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events waiting in the future-event list.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed returns the total number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Schedule enqueues fn to run at absolute time t with priority 0.
// It panics if t is earlier than the current time: scheduling into the
// past is always a model bug and silently reordering it would corrupt
// causality.
func (k *Kernel) Schedule(t Time, fn func()) *Event {
	return k.ScheduleWithPriority(t, 0, fn)
}

// ScheduleAfter enqueues fn to run delay time units from now.
func (k *Kernel) ScheduleAfter(delay Time, fn func()) *Event {
	return k.Schedule(k.now+delay, fn)
}

// ScheduleWithPriority enqueues fn at absolute time t with the given
// priority. Lower priorities run first among events at the same time.
func (k *Kernel) ScheduleWithPriority(t Time, priority int, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, t=%v)", k.now, t))
	}
	if fn == nil {
		panic("sim: scheduling a nil event function")
	}
	e := &Event{time: t, priority: priority, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// ScheduleEvent enqueues a (handler, arg) pair to fire at absolute time
// t with the given priority — the closure-free, allocation-free
// counterpart of ScheduleWithPriority. The event record is drawn from
// the kernel's freelist and returns there when the event fires, so the
// returned *Event is only valid while the event is pending: Cancel or
// Reschedule it before it fires, never after (the record may already
// describe a different event). Holding it across a firing is the one
// misuse the pool cannot detect; every in-module scheduler drops its
// reference when the event dispatches.
func (k *Kernel) ScheduleEvent(t Time, priority int, h Handler, arg int) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, t=%v)", k.now, t))
	}
	if h == nil {
		panic("sim: scheduling a nil event handler")
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &Event{}
	}
	*e = Event{time: t, priority: priority, seq: k.seq, h: h, arg: arg, pooled: true, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// release returns a pooled record to the freelist. The caller must have
// removed it from the queue already.
func (k *Kernel) release(e *Event) {
	*e = Event{index: -1}
	k.free = append(k.free, e)
}

// Cancel removes a pending event; cancelling an already-cancelled
// event (or a closure event that already fired) is a no-op. A
// cancelled pooled record is deliberately NOT recycled — it is dropped
// to the garbage collector — so double-cancelling a handler event
// stays harmless; the one remaining misuse is cancelling a handler
// event after it fired, when the record may already describe a
// different pending event (see ScheduleEvent).
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
}

// Reschedule moves a pending event to a new time, preserving its
// priority. If the event already fired or was cancelled a fresh event
// is created with the same target — except a handler event that
// already fired, whose record is back on the freelist (possibly
// reused): re-arming it cannot be done safely and panics.
func (k *Kernel) Reschedule(e *Event, t Time) *Event {
	if e == nil {
		panic("sim: rescheduling a nil event")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling into the past (now=%v, t=%v)", k.now, t))
	}
	if e.Scheduled() {
		e.time = t
		heap.Fix(&k.queue, e.index)
		return e
	}
	if e.h != nil {
		// A cancelled handler event: Cancel deliberately does not
		// recycle pooled records, so the target is intact and a fresh
		// event can be armed from it.
		return k.ScheduleEvent(t, e.priority, e.h, e.arg)
	}
	if e.fn == nil {
		panic("sim: rescheduling a handler event that already fired")
	}
	return k.ScheduleWithPriority(t, e.priority, e.fn)
}

// Step dispatches the single earliest event. It returns false when the
// future-event list is empty or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.time
		k.processed++
		if e.h != nil {
			// Copy the target out and recycle the record before firing,
			// so the handler's own rescheduling reuses it immediately.
			h, arg := e.h, e.arg
			k.release(e)
			h.Fire(arg)
		} else {
			e.fn()
		}
		return true
	}
	return false
}

// Run dispatches events until the future-event list drains or Stop is
// called. It returns the final simulation time.
func (k *Kernel) Run() Time {
	k.running = true
	defer func() { k.running = false }()
	for k.Step() {
	}
	return k.now
}

// RunUntil dispatches events with time <= deadline, then advances the
// clock to the deadline (if it is ahead of the last event) and returns.
// Events scheduled exactly at the deadline do run.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped && len(k.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		if k.queue[0].time > deadline {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued; a stopped kernel dispatches nothing further.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// NextEventTime returns the time of the earliest pending event, or
// Infinity when the future-event list is empty.
func (k *Kernel) NextEventTime() Time {
	if len(k.queue) == 0 {
		return Infinity
	}
	return k.queue[0].time
}

// Reset returns the kernel to its just-constructed state — clock at
// zero, empty future-event list, sequence and processed counters
// cleared — while keeping the queue's backing array and the pooled
// event records for reuse. A reset kernel runs a fresh simulation bit
// for bit like a new one; campaign replications reuse one kernel this
// way instead of rebuilding it per run.
func (k *Kernel) Reset() {
	for i, e := range k.queue {
		k.queue[i] = nil
		e.index = -1
		if e.pooled {
			k.release(e)
		}
	}
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.processed = 0
	k.running = false
	k.stopped = false
}
