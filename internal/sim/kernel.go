package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is the simulation time in cycles. The NoC models are synchronous,
// so integer cycle boundaries carry all router activity, but the kernel
// itself supports arbitrary fractional times (Poisson arrivals fall
// between ticks, exactly as in an OMNeT++ model).
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Event is a unit of future work. Events are ordered by (time, priority,
// insertion order); lower priority values run first at equal times and
// insertion order breaks remaining ties so execution is deterministic.
type Event struct {
	time     Time
	priority int
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// Time returns the time the event is scheduled for.
func (e *Event) Time() Time { return e.time }

// Scheduled reports whether the event is still pending in a kernel.
func (e *Event) Scheduled() bool { return e.index >= 0 && !e.canceled }

// eventQueue implements heap.Interface ordered by (time, priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive: a clock plus a
// future-event list. A Kernel is not safe for concurrent use; run one
// simulation per goroutine.
type Kernel struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events waiting in the future-event list.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed returns the total number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Schedule enqueues fn to run at absolute time t with priority 0.
// It panics if t is earlier than the current time: scheduling into the
// past is always a model bug and silently reordering it would corrupt
// causality.
func (k *Kernel) Schedule(t Time, fn func()) *Event {
	return k.ScheduleWithPriority(t, 0, fn)
}

// ScheduleAfter enqueues fn to run delay time units from now.
func (k *Kernel) ScheduleAfter(delay Time, fn func()) *Event {
	return k.Schedule(k.now+delay, fn)
}

// ScheduleWithPriority enqueues fn at absolute time t with the given
// priority. Lower priorities run first among events at the same time.
func (k *Kernel) ScheduleWithPriority(t Time, priority int, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, t=%v)", k.now, t))
	}
	if fn == nil {
		panic("sim: scheduling a nil event function")
	}
	e := &Event{time: t, priority: priority, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Cancel removes a pending event; cancelling an already-fired or
// already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
}

// Reschedule moves a pending event to a new time, preserving its
// priority. If the event already fired or was cancelled a fresh event is
// created with the same function.
func (k *Kernel) Reschedule(e *Event, t Time) *Event {
	if e == nil {
		panic("sim: rescheduling a nil event")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling into the past (now=%v, t=%v)", k.now, t))
	}
	if e.Scheduled() {
		e.time = t
		heap.Fix(&k.queue, e.index)
		return e
	}
	return k.ScheduleWithPriority(t, e.priority, e.fn)
}

// Step dispatches the single earliest event. It returns false when the
// future-event list is empty or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.time
		k.processed++
		e.fn()
		return true
	}
	return false
}

// Run dispatches events until the future-event list drains or Stop is
// called. It returns the final simulation time.
func (k *Kernel) Run() Time {
	k.running = true
	defer func() { k.running = false }()
	for k.Step() {
	}
	return k.now
}

// RunUntil dispatches events with time <= deadline, then advances the
// clock to the deadline (if it is ahead of the last event) and returns.
// Events scheduled exactly at the deadline do run.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped && len(k.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		if k.queue[0].time > deadline {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued; a stopped kernel dispatches nothing further.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// NextEventTime returns the time of the earliest pending event, or
// Infinity when the future-event list is empty.
func (k *Kernel) NextEventTime() Time {
	if len(k.queue) == 0 {
		return Infinity
	}
	return k.queue[0].time
}
