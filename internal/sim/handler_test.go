package sim

import (
	"testing"
)

// recorder is a Handler that logs its fired args and can chain-schedule.
type recorder struct {
	k     *Kernel
	fired []int
	chain int // schedule this many follow-ups, one per firing
}

func (r *recorder) Fire(arg int) {
	r.fired = append(r.fired, arg)
	if r.chain > 0 {
		r.chain--
		r.k.ScheduleEvent(r.k.Now()+1, 0, r, arg+100)
	}
}

func TestScheduleEventDispatchOrder(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	k.ScheduleEvent(3, 0, r, 30)
	k.ScheduleEvent(1, 0, r, 10)
	k.ScheduleEvent(2, 1, r, 21)
	k.ScheduleEvent(2, 0, r, 20)
	k.Run()
	want := []int{10, 20, 21, 30}
	if len(r.fired) != len(want) {
		t.Fatalf("fired %v, want %v", r.fired, want)
	}
	for i, v := range want {
		if r.fired[i] != v {
			t.Fatalf("fired %v, want %v", r.fired, want)
		}
	}
}

func TestScheduleEventInterleavesWithClosures(t *testing.T) {
	k := NewKernel()
	var order []string
	r := &recorder{k: k}
	k.Schedule(1, func() { order = append(order, "fn") })
	k.ScheduleEvent(1, 0, r, 1)
	k.Schedule(2, func() { order = append(order, "fn2") })
	k.Run()
	// Same time, insertion order: closure first, then handler.
	if len(order) != 2 || order[0] != "fn" || len(r.fired) != 1 {
		t.Fatalf("order %v, fired %v", order, r.fired)
	}
}

// A fired handler event's record must be recycled: a self-rescheduling
// chain reaches steady state with zero live allocations per event.
func TestHandlerEventRecordsAreRecycled(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k, chain: 64}
	k.ScheduleEvent(0, 0, r, 0)
	k.Run()
	if len(r.fired) != 65 {
		t.Fatalf("fired %d events, want 65", len(r.fired))
	}
	// The chain reuses one record: after the run exactly one sits free.
	if n := len(k.free); n != 1 {
		t.Fatalf("freelist holds %d records after a self-rescheduling chain, want 1", n)
	}
	// And a fresh scheduling drains it rather than allocating.
	e := k.ScheduleEvent(k.Now()+1, 0, r, 7)
	if len(k.free) != 0 {
		t.Fatal("scheduling did not reuse the pooled record")
	}
	// A cancelled record is dropped, not recycled: that keeps a
	// double-Cancel from poisoning a reused record.
	k.Cancel(e)
	if len(k.free) != 0 {
		t.Fatal("cancel recycled the record; stale handles could then cancel a reused event")
	}
	k.Cancel(e) // must stay a no-op
	if e.Scheduled() {
		t.Fatal("cancelled event still scheduled")
	}
}

func TestCancelPooledEventPreventsFiring(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	e := k.ScheduleEvent(5, 0, r, 1)
	k.ScheduleEvent(6, 0, r, 2)
	k.Cancel(e)
	k.Run()
	if len(r.fired) != 1 || r.fired[0] != 2 {
		t.Fatalf("fired %v, want [2]", r.fired)
	}
}

func TestReschedulePendingHandlerEvent(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	e := k.ScheduleEvent(5, 0, r, 1)
	k.Reschedule(e, 9)
	k.Run()
	if k.Now() != 9 || len(r.fired) != 1 {
		t.Fatalf("now=%v fired=%v", k.Now(), r.fired)
	}
}

// Cancel-then-reschedule is part of Reschedule's contract and must work
// for handler events too (their cancelled records are never recycled,
// so re-arming is safe).
func TestRescheduleCancelledHandlerEvent(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	e := k.ScheduleEvent(5, 0, r, 3)
	k.Cancel(e)
	k.Reschedule(e, 7)
	k.Run()
	if k.Now() != 7 || len(r.fired) != 1 || r.fired[0] != 3 {
		t.Fatalf("now=%v fired=%v, want one firing of arg 3 at t=7", k.Now(), r.fired)
	}
}

func TestRescheduleFiredHandlerEventPanics(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	e := k.ScheduleEvent(1, 0, r, 1)
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a fired handler event did not panic")
		}
	}()
	k.Reschedule(e, 5)
}

func TestScheduleEventNilHandlerPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	k.ScheduleEvent(1, 0, nil, 0)
}

// Reset must return the kernel to a pristine state — clock, counters,
// queue — while keeping pooled records, so a reset kernel replays a
// schedule bit for bit.
func TestKernelResetReplaysIdentically(t *testing.T) {
	k := NewKernel()
	run := func() (Time, uint64, []int) {
		r := &recorder{k: k, chain: 10}
		k.ScheduleEvent(0.5, 0, r, 1)
		k.Schedule(2, func() {})
		k.Run()
		return k.Now(), k.Processed(), r.fired
	}
	t1, p1, f1 := run()
	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 || k.Processed() != 0 || k.Stopped() {
		t.Fatal("Reset left residual state")
	}
	t2, p2, f2 := run()
	if t1 != t2 || p1 != p2 || len(f1) != len(f2) {
		t.Fatalf("replay diverged: (%v,%d,%v) vs (%v,%d,%v)", t1, p1, f1, t2, p2, f2)
	}
}

// Reset with events still pending must recycle their records instead of
// leaking them.
func TestKernelResetRecyclesPendingRecords(t *testing.T) {
	k := NewKernel()
	r := &recorder{k: k}
	for i := 0; i < 8; i++ {
		k.ScheduleEvent(Time(i+1), 0, r, i)
	}
	k.Reset()
	if k.Pending() != 0 {
		t.Fatal("pending events after Reset")
	}
	if len(k.free) != 8 {
		t.Fatalf("freelist holds %d records after Reset, want 8", len(k.free))
	}
}

// A stopped ticker restarted after Reset must tick from zero again —
// the workspace reuse path.
func TestTickerOnResetKernel(t *testing.T) {
	k := NewKernel()
	count := 0
	tk := NewTicker(k, 1)
	tk.OnTick(func(uint64) { count++ })
	tk.Start()
	k.RunUntil(10)
	first := count
	if first == 0 {
		t.Fatal("ticker never ticked")
	}
	k.Reset()
	count = 0
	tk2 := NewTicker(k, 1)
	tk2.OnTick(func(uint64) { count++ })
	tk2.Start()
	k.RunUntil(10)
	if count != first {
		t.Fatalf("ticker on reset kernel ticked %d times, fresh run ticked %d", count, first)
	}
}
