package analysis

import (
	"fmt"

	"gonoc/internal/topology"
)

// The paper motivates Spidergon by "simple management, small energy and
// area requirements for SoCs" and argues node degree drives router
// complexity. This file makes those cost axes quantitative with a
// first-order model: energy proportional to flit movement events, area
// proportional to wiring and buffering. Units are normalised to one
// link traversal by one flit; calibrate against a technology library by
// scaling.

// CostModel carries the per-event energy weights and per-element area
// weights.
type CostModel struct {
	// LinkFlit is the energy of one flit traversing one inter-router
	// link.
	LinkFlit float64
	// RouterFlit is the energy of one flit passing one router (buffer
	// write + read + switch traversal + arbitration amortised).
	RouterFlit float64
	// BufferFlitArea is the area of one flit of buffer storage.
	BufferFlitArea float64
	// LinkArea is the area (wiring) of one unidirectional channel.
	LinkArea float64
	// RouterBaseArea is the fixed per-router overhead; PortArea is the
	// marginal area per physical port (degree term — the paper's
	// "high node degree ... increases complexity").
	RouterBaseArea float64
	PortArea       float64
}

// DefaultCostModel returns weights in the ratio typical of early-2000s
// 0.13-0.18 µm NoC energy models (router pass costs roughly 1.5× a
// link traversal; buffers dominate router area).
func DefaultCostModel() CostModel {
	return CostModel{
		LinkFlit:       1.0,
		RouterFlit:     1.5,
		BufferFlitArea: 1.0,
		LinkArea:       0.5,
		RouterBaseArea: 2.0,
		PortArea:       1.0,
	}
}

// Validate reports the first non-physical weight.
func (c CostModel) Validate() error {
	if c.LinkFlit < 0 || c.RouterFlit < 0 || c.BufferFlitArea < 0 ||
		c.LinkArea < 0 || c.RouterBaseArea < 0 || c.PortArea < 0 {
		return fmt.Errorf("analysis: negative cost weight in %+v", c)
	}
	return nil
}

// PacketEnergy returns the energy to deliver one packet of the given
// flit count over the given hop count: every flit crosses hops links
// and hops+1 routers (source injection and destination ejection pass
// through a router datapath each).
func (c CostModel) PacketEnergy(hops, flits int) float64 {
	return float64(flits) * (float64(hops)*c.LinkFlit + float64(hops+1)*c.RouterFlit)
}

// MeanPacketEnergy is PacketEnergy at a fractional (average) hop count.
func (c CostModel) MeanPacketEnergy(meanHops float64, flits int) float64 {
	return float64(flits) * (meanHops*c.LinkFlit + (meanHops+1)*c.RouterFlit)
}

// TrafficEnergy returns the total energy of a run given the observed
// total link traversals (flit·hops) and total injected flits.
func (c CostModel) TrafficEnergy(linkTraversals, injectedFlits uint64) float64 {
	return float64(linkTraversals)*(c.LinkFlit+c.RouterFlit) + float64(injectedFlits)*c.RouterFlit
}

// NetworkArea estimates the silicon area of a NoC instance: wiring per
// channel, buffer storage per channel (vcs output queues of outCap
// flits at the transmitter plus vcs input slots of inCap flits at the
// receiver), and per-router base + per-port overhead.
func (c CostModel) NetworkArea(t topology.Topology, vcs, outCap, inCap int) float64 {
	channels := float64(topology.LinkCount(t))
	buffers := channels * float64(vcs) * float64(outCap+inCap) * c.BufferFlitArea
	wiring := channels * c.LinkArea
	routers := 0.0
	for v := 0; v < t.Nodes(); v++ {
		routers += c.RouterBaseArea + float64(topology.Degree(t, v))*c.PortArea
	}
	return buffers + wiring + routers
}

// EnergyPerUniformPacket returns the mean delivery energy of one packet
// under uniform traffic on t: MeanPacketEnergy at the topology's exact
// average distance.
func (c CostModel) EnergyPerUniformPacket(t topology.Topology, flits int) float64 {
	return c.MeanPacketEnergy(topology.AverageDistance(t), flits)
}

// CostSummary bundles the paper's three comparison axes for one
// topology instance under one buffer geometry.
type CostSummary struct {
	Name string
	// Area is NetworkArea.
	Area float64
	// EnergyPerPacket is EnergyPerUniformPacket for 6-flit packets.
	EnergyPerPacket float64
	// MaxDegree drives router complexity.
	MaxDegree int
}

// CompareCosts evaluates the model across topology instances with the
// given VC count per instance (parallel slices).
func CompareCosts(c CostModel, tops []topology.Topology, vcs []int, outCap, inCap, flits int) ([]CostSummary, error) {
	if len(tops) != len(vcs) {
		return nil, fmt.Errorf("analysis: %d topologies vs %d vc counts", len(tops), len(vcs))
	}
	out := make([]CostSummary, len(tops))
	for i, t := range tops {
		out[i] = CostSummary{
			Name:            t.Name(),
			Area:            c.NetworkArea(t, vcs[i], outCap, inCap),
			EnergyPerPacket: c.EnergyPerUniformPacket(t, flits),
			MaxDegree:       topology.MaxDegree(t),
		}
	}
	return out, nil
}
