// Package analysis provides the closed-form topology metrics from
// Section 2 of the paper — network diameter ND and average network
// distance E[D] for Ring, Spidergon and 2D Mesh — together with exact
// variants and throughput saturation bounds.
//
// Conventions. The paper's E[D] expressions normalise the per-node path
// length sum by N (the node count), not by the N-1 distinct
// destinations: e.g. for the ring, the per-node sum is N²/4 and the
// paper reports E[D] = N/4. Functions suffixed "Paper" reproduce that
// convention so Figures 2–3 can be regenerated exactly; functions
// suffixed "Exact" divide by N-1, matching the BFS ground truth in
// package topology.
//
// Erratum. For Spidergon the paper prints E[D] = (2x²+4x+1)/N when N=4x
// and (2x²+2x-1)/N when N=4x+2. Deriving the per-node path-length sum
// under across-first routing (which package topology's BFS confirms)
// gives the two expressions swapped: the sum is 2x²+2x-1 when N=4x and
// 2x²+4x+1 when N=4x+2. This package implements the corrected
// assignment; TestSpidergonFormulaMatchesBFS pins it to ground truth.
package analysis

import (
	"fmt"
	"math"

	"gonoc/internal/topology"
)

// RingDiameter returns ND = floor(N/2) for an N-node ring.
func RingDiameter(n int) int { return n / 2 }

// RingAvgDistancePaper returns the paper's E[D] = N/4 for a ring.
func RingAvgDistancePaper(n int) float64 { return float64(n) / 4 }

// RingAvgDistanceExact returns the exact mean shortest-path length over
// ordered pairs of distinct nodes of an N-node ring.
func RingAvgDistanceExact(n int) float64 {
	if n < 2 {
		return 0
	}
	// Per-node distance sum: even N -> N²/4; odd N -> (N²-1)/4.
	var sum float64
	if n%2 == 0 {
		sum = float64(n*n) / 4
	} else {
		sum = float64(n*n-1) / 4
	}
	return sum / float64(n-1)
}

// MeshDiameter returns ND = (m+n-2) for a full m×n mesh.
func MeshDiameter(m, n int) int { return m + n - 2 }

// MeshAvgDistancePaper returns the paper's E[D] = (m+n)/3 for an m×n mesh.
func MeshAvgDistancePaper(m, n int) float64 { return float64(m+n) / 3 }

// MeshAvgDistanceExact returns the exact mean Manhattan distance over
// ordered pairs of distinct nodes of a full m×n mesh:
// [N(m²-1)/(3m) + N(n²-1)/(3n)] · N/(N(N-1)) with N = m·n.
func MeshAvgDistanceExact(m, n int) float64 {
	N := m * n
	if N < 2 {
		return 0
	}
	// Mean |Δ| of two independent uniform draws from 0..k-1 is
	// (k²-1)/(3k); distances add across dimensions. That mean includes
	// the N² ordered pairs with repetition; rescale to exclude self
	// pairs.
	mean := float64(m*m-1)/(3*float64(m)) + float64(n*n-1)/(3*float64(n))
	return mean * float64(N) / float64(N-1)
}

// SpidergonDiameter returns ND = ceiling(N/4) for an N-node Spidergon.
// N must be even; the function panics otherwise, because the topology
// does not exist for odd N.
func SpidergonDiameter(n int) int {
	mustEven(n)
	return (n + 3) / 4
}

// SpidergonPathSum returns the exact sum of across-first path lengths
// from one (any, by vertex symmetry) node to all others: 2x²+2x-1 for
// N=4x and 2x²+4x+1 for N=4x+2 (the corrected assignment; see the
// package erratum note).
func SpidergonPathSum(n int) int {
	mustEven(n)
	x := n / 4
	if n%4 == 0 {
		return 2*x*x + 2*x - 1
	}
	return 2*x*x + 4*x + 1
}

// SpidergonAvgDistancePaper returns E[D] = SpidergonPathSum(N)/N, the
// paper's normalisation.
func SpidergonAvgDistancePaper(n int) float64 {
	return float64(SpidergonPathSum(n)) / float64(n)
}

// SpidergonAvgDistanceExact returns the exact mean over ordered pairs of
// distinct nodes.
func SpidergonAvgDistanceExact(n int) float64 {
	return float64(SpidergonPathSum(n)) / float64(n-1)
}

func mustEven(n int) {
	if n < 4 || n%2 != 0 {
		panic(fmt.Sprintf("analysis: spidergon metrics need even n >= 4, got %d", n))
	}
}

// IdealMeshDims returns the dimensions of the ideal (√N×√N) mesh the
// paper uses as the best-case mesh: the most balanced factor pair when N
// factorises, otherwise the ceiling square (whose node count exceeds N —
// exactly the idealisation the paper contrasts with real meshes).
func IdealMeshDims(n int) (cols, rows int) {
	r := int(math.Sqrt(float64(n)))
	if r*r == n {
		return r, r
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// IdealSquareDiameter returns 2(√N - 1) treating N as a perfect square
// (fractional for other N) — the "ideal mesh" curve of Figure 2.
func IdealSquareDiameter(n int) float64 {
	return 2 * (math.Sqrt(float64(n)) - 1)
}

// IdealSquareAvgDistance returns the paper-convention mesh E[D] of the
// ideal square, 2√N/3.
func IdealSquareAvgDistance(n int) float64 {
	return 2 * math.Sqrt(float64(n)) / 3
}

// LinkCountRing returns 2N, the paper's unidirectional link count.
func LinkCountRing(n int) int { return 2 * n }

// LinkCountSpidergon returns 3N.
func LinkCountSpidergon(n int) int { return 3 * n }

// LinkCountMesh returns 2(m-1)n + 2(n-1)m.
func LinkCountMesh(m, n int) int { return 2*(m-1)*n + 2*(n-1)*m }

// HotspotSaturationThroughput returns the aggregate flit throughput
// ceiling of a hot-spot scenario with k hot-spot destinations each
// consuming at most consumeRate flits/cycle: the bottleneck the paper
// identifies in Figures 6–9 — the destination node, not the NoC.
func HotspotSaturationThroughput(k int, consumeRate float64) float64 {
	return float64(k) * consumeRate
}

// HotspotSaturationLambda returns the per-source packet injection rate λ
// (packets/cycle) at which s sources sending packetLen-flit packets
// saturate k hot-spot sinks: λ_sat = k·consumeRate / (s·packetLen).
func HotspotSaturationLambda(k int, consumeRate float64, sources, packetLen int) float64 {
	if sources <= 0 || packetLen <= 0 {
		return math.Inf(1)
	}
	return float64(k) * consumeRate / float64(sources*packetLen)
}

// BisectionBound returns the uniform-traffic per-node injection ceiling
// (flits/cycle/node) implied by the bisection cut: with uniform random
// destinations half the traffic crosses the bisection, so
// N/2 · injection ≤ B_c and injection ≤ 2·B_c/N, where B_c counts
// unidirectional channels across the cut.
func BisectionBound(t topology.Topology) float64 {
	n := t.Nodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(topology.BisectionChannels(t)) / float64(n)
}

// ChannelLoadBound returns the uniform-traffic per-node injection
// ceiling implied by aggregate channel capacity: every flit consumes
// E[D] channel-cycles, so N · injection · E[D] ≤ C and injection ≤
// C/(N·E[D]), with C the total channel count.
func ChannelLoadBound(t topology.Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	ed := topology.AverageDistance(t)
	if ed <= 0 {
		return math.Inf(1)
	}
	return float64(topology.LinkCount(t)) / (float64(n) * ed)
}

// UniformSaturationBound returns the tighter of the bisection and
// channel-load ceilings — the analytic saturation estimate for the
// homogeneous scenario of Figures 10–11.
func UniformSaturationBound(t topology.Topology) float64 {
	b := BisectionBound(t)
	c := ChannelLoadBound(t)
	if b < c {
		return b
	}
	return c
}
