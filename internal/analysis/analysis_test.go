package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"gonoc/internal/topology"
)

func TestRingDiameterMatchesBFS(t *testing.T) {
	for n := 3; n <= 40; n++ {
		r := topology.MustRing(n)
		if got, want := RingDiameter(n), topology.Diameter(r); got != want {
			t.Fatalf("ring-%d: formula %d, BFS %d", n, got, want)
		}
	}
}

func TestRingAvgDistanceExactMatchesBFS(t *testing.T) {
	for n := 3; n <= 40; n++ {
		r := topology.MustRing(n)
		got := RingAvgDistanceExact(n)
		want := topology.AverageDistance(r)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ring-%d: exact formula %v, BFS %v", n, got, want)
		}
	}
}

func TestRingAvgDistancePaperApproximation(t *testing.T) {
	// The paper's N/4 equals the per-node sum divided by N; it should
	// track the exact value within one hop for the sizes studied.
	for n := 4; n <= 64; n += 2 {
		paper := RingAvgDistancePaper(n)
		exact := RingAvgDistanceExact(n)
		if math.Abs(paper-exact) > 1 {
			t.Fatalf("ring-%d: paper %v too far from exact %v", n, paper, exact)
		}
	}
}

func TestMeshDiameterMatchesBFS(t *testing.T) {
	for _, d := range []struct{ m, n int }{{2, 4}, {4, 6}, {3, 3}, {5, 5}, {1, 9}, {7, 2}} {
		mesh := topology.MustMesh(d.m, d.n)
		if got, want := MeshDiameter(d.m, d.n), topology.Diameter(mesh); got != want {
			t.Fatalf("mesh %dx%d: formula %d, BFS %d", d.m, d.n, got, want)
		}
	}
}

func TestMeshAvgDistanceExactMatchesBFS(t *testing.T) {
	for _, d := range []struct{ m, n int }{{2, 4}, {4, 6}, {3, 3}, {5, 5}, {2, 2}, {1, 8}} {
		mesh := topology.MustMesh(d.m, d.n)
		got := MeshAvgDistanceExact(d.m, d.n)
		want := topology.AverageDistance(mesh)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("mesh %dx%d: exact formula %v, BFS %v", d.m, d.n, got, want)
		}
	}
}

func TestSpidergonDiameterMatchesBFS(t *testing.T) {
	for n := 4; n <= 64; n += 2 {
		s := topology.MustSpidergon(n)
		if got, want := SpidergonDiameter(n), topology.Diameter(s); got != want {
			t.Fatalf("spidergon-%d: formula %d, BFS %d", n, got, want)
		}
	}
}

// Pins the corrected Spidergon E[D] assignment (see package erratum) to
// BFS ground truth for every even size up to 64.
func TestSpidergonFormulaMatchesBFS(t *testing.T) {
	for n := 8; n <= 64; n += 2 {
		s := topology.MustSpidergon(n)
		got := SpidergonAvgDistanceExact(n)
		want := topology.AverageDistance(s)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("spidergon-%d: exact formula %v, BFS %v", n, got, want)
		}
	}
}

func TestSpidergonPathSumSmall(t *testing.T) {
	// Hand-checked: spidergon-8 per-node distances 1,2,2,1,2,2,1 sum 11.
	if got := SpidergonPathSum(8); got != 11 {
		t.Fatalf("path sum(8) = %d, want 11", got)
	}
	// spidergon-6 (x=1, N=4x+2): distances from 0: 1,2,1,1,... n=6:
	// across(0)=3; d(0,1)=1 d(0,2)=2 d(0,3)=1 d(0,4)=2 d(0,5)=1, sum 7
	// = 2+4+1.
	if got := SpidergonPathSum(6); got != 7 {
		t.Fatalf("path sum(6) = %d, want 7", got)
	}
}

func TestSpidergonOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd spidergon did not panic")
		}
	}()
	SpidergonDiameter(9)
}

func TestPaperOrderingFig2(t *testing.T) {
	// Figure 2's qualitative claims: Spidergon ND below real meshes at
	// least up to 40-45 nodes; ring worst (largest) among the three for
	// moderate N.
	for n := 8; n <= 40; n += 2 {
		sd := SpidergonDiameter(n)
		rd := RingDiameter(n)
		real := topology.Diameter(topology.MustIrregularMesh(n))
		if sd > real {
			t.Fatalf("n=%d: spidergon ND %d above real mesh %d", n, sd, real)
		}
		if n >= 10 && sd >= rd {
			t.Fatalf("n=%d: spidergon ND %d not below ring %d", n, sd, rd)
		}
	}
}

func TestPaperOrderingFig3(t *testing.T) {
	// Figure 3: Spidergon outperforms Ring on E[D]; spidergon sits near
	// the real-mesh band.
	for n := 10; n <= 64; n += 2 {
		se := SpidergonAvgDistanceExact(n)
		re := RingAvgDistanceExact(n)
		if se >= re {
			t.Fatalf("n=%d: spidergon E[D] %v not below ring %v", n, se, re)
		}
	}
}

func TestIdealMeshDims(t *testing.T) {
	for _, tc := range []struct{ n, c, r int }{
		{16, 4, 4}, {24, 4, 6}, {8, 2, 4}, {36, 6, 6}, {12, 3, 4},
	} {
		c, r := IdealMeshDims(tc.n)
		if c != tc.c || r != tc.r {
			t.Fatalf("IdealMeshDims(%d) = %dx%d, want %dx%d", tc.n, c, r, tc.c, tc.r)
		}
		if c*r != tc.n {
			t.Fatalf("dims don't cover n")
		}
	}
}

func TestIdealSquareCurves(t *testing.T) {
	if got := IdealSquareDiameter(16); got != 6 {
		t.Fatalf("ideal diameter(16) = %v", got)
	}
	if math.Abs(IdealSquareAvgDistance(16)-8.0/3.0) > 1e-12 {
		t.Fatalf("ideal E[D](16) = %v", IdealSquareAvgDistance(16))
	}
}

func TestLinkCountFormulasMatchTopology(t *testing.T) {
	for n := 4; n <= 32; n += 2 {
		if LinkCountRing(n) != topology.LinkCount(topology.MustRing(n)) {
			t.Fatalf("ring link count n=%d", n)
		}
		if LinkCountSpidergon(n) != topology.LinkCount(topology.MustSpidergon(n)) {
			t.Fatalf("spidergon link count n=%d", n)
		}
	}
	if LinkCountMesh(4, 6) != topology.LinkCount(topology.MustMesh(4, 6)) {
		t.Fatal("mesh link count 4x6")
	}
}

func TestHotspotSaturation(t *testing.T) {
	if got := HotspotSaturationThroughput(1, 1); got != 1 {
		t.Fatalf("single hotspot ceiling = %v", got)
	}
	if got := HotspotSaturationThroughput(2, 1); got != 2 {
		t.Fatalf("double hotspot ceiling = %v", got)
	}
	// 7 sources, 6-flit packets, one sink at 1 flit/cycle:
	// λ_sat = 1/42 packets/cycle/source.
	got := HotspotSaturationLambda(1, 1, 7, 6)
	if math.Abs(got-1.0/42.0) > 1e-12 {
		t.Fatalf("λ_sat = %v", got)
	}
	if !math.IsInf(HotspotSaturationLambda(1, 1, 0, 6), 1) {
		t.Fatal("zero sources should give +Inf")
	}
}

func TestBisectionBoundOrdering(t *testing.T) {
	// Spidergon's across links raise its bisection bound above the
	// ring's for equal N — one structural reason it outperforms the ring
	// in Figure 10.
	for _, n := range []int{8, 16, 24, 32} {
		r := BisectionBound(topology.MustRing(n))
		s := BisectionBound(topology.MustSpidergon(n))
		if s <= r {
			t.Fatalf("n=%d: spidergon bisection bound %v not above ring %v", n, s, r)
		}
	}
}

func TestChannelLoadBound(t *testing.T) {
	// Ring-8: 16 channels, E[D]_exact = (8*8/4)/7 = 16/7.
	// Bound = 16/(8 * 16/7) = 7/8.
	got := ChannelLoadBound(topology.MustRing(8))
	if math.Abs(got-7.0/8.0) > 1e-9 {
		t.Fatalf("ring-8 channel bound = %v, want 0.875", got)
	}
}

func TestUniformSaturationBoundIsMin(t *testing.T) {
	for _, top := range []topology.Topology{
		topology.MustRing(16), topology.MustSpidergon(16), topology.MustMesh(4, 4),
	} {
		u := UniformSaturationBound(top)
		b := BisectionBound(top)
		c := ChannelLoadBound(top)
		if u != math.Min(b, c) {
			t.Fatalf("%s: uniform bound %v != min(%v,%v)", top.Name(), u, b, c)
		}
	}
}

// Property: paper-convention E[D] formulas stay within 15% of exact BFS
// for every topology and size in the studied range — close enough that
// Figures 2-3 shapes are preserved.
func TestPropertyPaperFormulasTrackExact(t *testing.T) {
	f := func(raw uint8) bool {
		n := 8 + 2*(int(raw)%29) // even 8..64
		pairs := []struct{ paper, exact float64 }{
			{RingAvgDistancePaper(n), RingAvgDistanceExact(n)},
			{SpidergonAvgDistancePaper(n), SpidergonAvgDistanceExact(n)},
		}
		for _, p := range pairs {
			if math.Abs(p.paper-p.exact)/p.exact > 0.15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: diameters are monotone non-decreasing in N within each
// family (sampled pairwise).
func TestPropertyDiameterMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		n := 8 + 2*(int(raw)%28)
		return SpidergonDiameter(n+2) >= SpidergonDiameter(n) &&
			RingDiameter(n+2) >= RingDiameter(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
