package analysis

import (
	"math"
	"testing"

	"gonoc/internal/topology"
)

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel()
	bad.LinkFlit = -1
	if bad.Validate() == nil {
		t.Fatal("negative weight validated")
	}
}

func TestPacketEnergy(t *testing.T) {
	c := CostModel{LinkFlit: 1, RouterFlit: 2}
	// 6 flits, 3 hops: 6 * (3*1 + 4*2) = 66.
	if got := c.PacketEnergy(3, 6); got != 66 {
		t.Fatalf("packet energy = %v, want 66", got)
	}
	// Fractional hops consistent with integer version.
	if got := c.MeanPacketEnergy(3, 6); got != 66 {
		t.Fatalf("mean packet energy = %v", got)
	}
	// Zero hops (adjacent-free case does not exist, but the formula
	// degenerates to router-only cost).
	if got := c.PacketEnergy(0, 1); got != 2 {
		t.Fatalf("zero-hop energy = %v", got)
	}
}

func TestTrafficEnergy(t *testing.T) {
	c := CostModel{LinkFlit: 1, RouterFlit: 1}
	// 100 link traversals cost 200; 30 injected flits add 30.
	if got := c.TrafficEnergy(100, 30); got != 230 {
		t.Fatalf("traffic energy = %v", got)
	}
}

func TestNetworkAreaComposition(t *testing.T) {
	c := CostModel{BufferFlitArea: 1, LinkArea: 1, RouterBaseArea: 1, PortArea: 1}
	r := topology.MustRing(8)
	// 16 channels: buffers 16*2vcs*(3+1)=128, wiring 16, routers
	// 8*(1+2)=24. Total 168.
	got := c.NetworkArea(r, 2, 3, 1)
	if got != 168 {
		t.Fatalf("ring area = %v, want 168", got)
	}
}

// The paper's cost ordering: ring cheapest, spidergon in between, the
// (equal-size) mesh family at least as expensive in wiring+ports for
// N where the mesh is square; energy per uniform packet follows average
// distance, so spidergon beats ring.
func TestCostOrderingMatchesPaperNarrative(t *testing.T) {
	c := DefaultCostModel()
	for _, n := range []int{16, 36, 64} {
		ring := topology.MustRing(n)
		sg := topology.MustSpidergon(n)
		cols, rows := IdealMeshDims(n)
		mesh := topology.MustMesh(cols, rows)

		// Areas with the paper's buffer geometry: ring/spidergon 2 VCs,
		// mesh 1 VC.
		aRing := c.NetworkArea(ring, 2, 3, 1)
		aSg := c.NetworkArea(sg, 2, 3, 1)
		if aRing >= aSg {
			t.Fatalf("n=%d: ring area %v not below spidergon %v", n, aRing, aSg)
		}

		// Energy per uniform packet follows E[D]: spidergon < ring.
		eRing := c.EnergyPerUniformPacket(ring, 6)
		eSg := c.EnergyPerUniformPacket(sg, 6)
		eMesh := c.EnergyPerUniformPacket(mesh, 6)
		if eSg >= eRing {
			t.Fatalf("n=%d: spidergon energy %v not below ring %v", n, eSg, eRing)
		}
		// Square meshes have slightly lower E[D] than spidergon at
		// these sizes, hence lower dynamic energy, but pay degree 4
		// routers; check both signs we rely on.
		if topology.MaxDegree(mesh) <= topology.MaxDegree(sg) {
			t.Fatalf("n=%d: mesh max degree not above spidergon", n)
		}
		if eMesh <= 0 {
			t.Fatal("degenerate mesh energy")
		}
	}
}

func TestEnergyMatchesObservedTraversals(t *testing.T) {
	// PacketEnergy over a known path length equals TrafficEnergy with
	// the equivalent traversal counts.
	c := DefaultCostModel()
	hops, flits := 4, 6
	perPacket := c.PacketEnergy(hops, flits)
	traversals := uint64(hops * flits)
	injected := uint64(flits)
	aggregate := c.TrafficEnergy(traversals, injected)
	if math.Abs(perPacket-aggregate) > 1e-9 {
		t.Fatalf("per-packet %v != aggregate %v", perPacket, aggregate)
	}
}

func TestCompareCosts(t *testing.T) {
	c := DefaultCostModel()
	tops := []topology.Topology{topology.MustRing(16), topology.MustSpidergon(16)}
	out, err := CompareCosts(c, tops, []int{2, 2}, 3, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "ring-16" || out[1].MaxDegree != 3 {
		t.Fatalf("summaries = %+v", out)
	}
	if _, err := CompareCosts(c, tops, []int{2}, 3, 1, 6); err == nil {
		t.Fatal("mismatched slices accepted")
	}
}
