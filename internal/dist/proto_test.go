package dist

import (
	"errors"
	"reflect"
	"testing"
)

// Every message type round-trips through Encode/Decode unchanged.
func TestProtoRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Type: MsgHello, PID: 1234},
		{Type: MsgConfig, HeartbeatMS: 500},
		{Type: MsgLease, Shard: 3, Count: 8, Attempt: 1, Out: "/tmp/shard-0003.jsonl"},
		{Type: MsgHeartbeat, Shard: 3, Done: 5, Total: 20},
		{Type: MsgProgress, Shard: 3, Done: 6, Total: 20},
		{Type: MsgDone, Shard: 3, Attempt: 1, Out: "/tmp/s", Bytes: 9999, SHA256: "ab12", Lines: 40},
		{Type: MsgError, Shard: 3, Attempt: 0, Err: "simulation exploded"},
		{Type: MsgShutdown},
	}
	for _, want := range msgs {
		b, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%v): %v", want.Type, err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatalf("Encode(%v) missing trailing newline", want.Type)
		}
		got, err := Decode(b[:len(b)-1])
		if err != nil {
			t.Fatalf("Decode(%v): %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip changed %v: %+v vs %+v", want.Type, got, want)
		}
	}
}

// Malformed and invalid lines map to the typed errors, never panics.
func TestProtoTypedErrors(t *testing.T) {
	cases := []struct {
		line string
		want error
	}{
		{``, ErrMalformed},
		{`not json at all`, ErrMalformed},
		{`{"type":"lease","shard":3}`, ErrBadField},                        // count 0
		{`{"type":"lease","shard":9,"count":4,"out":"x"}`, ErrBadField},    // shard >= count
		{`{"type":"lease","shard":0,"count":4}`, ErrBadField},              // no out path
		{`{"type":"config"}`, ErrBadField},                                 // heartbeat 0
		{`{"type":"heartbeat","shard":-1}`, ErrBadField},                   // negative shard
		{`{"type":"heartbeat","shard":0,"done":9,"total":3}`, ErrBadField}, // done > total
		{`{"type":"done","shard":0,"bytes":-1}`, ErrBadField},
		{`{"type":"warp-core-breach"}`, ErrBadField},
		{`{"type":""}`, ErrBadField},
	}
	for _, c := range cases {
		_, err := Decode([]byte(c.line))
		if !errors.Is(err, c.want) {
			t.Errorf("Decode(%q) = %v, want %v", c.line, err, c.want)
		}
	}
}

// FuzzProtoDecode hammers the wire parser with arbitrary bytes: every
// input must either decode cleanly or fail with one of the typed
// protocol errors — no panics, no untyped failures — and everything
// that decodes must re-encode and decode back to the same message.
func FuzzProtoDecode(f *testing.F) {
	f.Add([]byte(`{"type":"hello","pid":42}`))
	f.Add([]byte(`{"type":"lease","shard":1,"count":4,"attempt":0,"out":"/tmp/x"}`))
	f.Add([]byte(`{"type":"done","shard":1,"bytes":100,"sha256":"ff","lines":3}`))
	f.Add([]byte(`{"type":"heartbeat","shard":`))
	f.Add([]byte(`{"type":"lease","shard":-3,"count":2,"out":"x"}`))
	f.Add([]byte(`{"ty`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, line []byte) {
		m, err := Decode(line)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrBadField) {
				t.Fatalf("Decode(%q): untyped error %v", line, err)
			}
			return
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %+v: %v", m, err)
		}
		m2, err := Decode(b[:len(b)-1])
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %q: %v", b, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("unstable round trip: %+v vs %+v", m, m2)
		}
	})
}

// The chaos spec parser selects the right directive per shard, gates on
// attempt 0, and rejects malformed specs with ErrBadField.
func TestParseChaos(t *testing.T) {
	spec := "1:kill@5; 2:hang@3 ;4:corrupt"
	c, err := ParseChaos(spec, 1, 0)
	if err != nil || c.KillAfter != 5 || c.HangAfter != 0 || c.CorruptOutput {
		t.Fatalf("shard 1: %+v, %v", c, err)
	}
	c, err = ParseChaos(spec, 2, 0)
	if err != nil || c.HangAfter != 3 || c.KillAfter != 0 {
		t.Fatalf("shard 2: %+v, %v", c, err)
	}
	c, err = ParseChaos(spec, 4, 0)
	if err != nil || !c.CorruptOutput {
		t.Fatalf("shard 4: %+v, %v", c, err)
	}
	c, err = ParseChaos(spec, 3, 0)
	if err != nil || c != (Chaos{}) {
		t.Fatalf("unlisted shard: %+v, %v", c, err)
	}
	// Faults fire on attempt 0 only: retries run clean.
	c, err = ParseChaos(spec, 1, 1)
	if err != nil || c != (Chaos{}) {
		t.Fatalf("attempt 1: %+v, %v", c, err)
	}
	if c, err := ParseChaos("", 0, 0); err != nil || c != (Chaos{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"nonsense", "1:kill", "1:hang", "1:corrupt@3", "x:kill@2", "-1:kill@2", "1:kill@0", "1:meteor@2",
	} {
		if _, err := ParseChaos(bad, 0, 0); !errors.Is(err, ErrBadField) {
			t.Errorf("ParseChaos(%q) = %v, want ErrBadField", bad, err)
		}
	}
}
