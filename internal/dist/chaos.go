package dist

import (
	"fmt"
	"strconv"
	"strings"
)

// Chaos is the worker-side fault-injection harness behind the
// integration tests: it perturbs one shard attempt the way real
// failures do, so the supervision paths are exercised against actual
// process deaths, protocol silences and torn files rather than mocks.
// The zero value injects nothing.
type Chaos struct {
	// KillAfter > 0 SIGKILLs the worker process after that many
	// completed shard points — an uncatchable mid-shard crash, exactly
	// what an OOM kill or node loss looks like from the coordinator.
	KillAfter int
	// HangAfter > 0 wedges the worker after that many points: it stops
	// making progress AND stops heartbeating (the protocol writer is
	// held locked), so only the coordinator's deadline can notice.
	HangAfter int
	// CorruptOutput truncates the shard file after the worker has
	// closed it but reports the original size and hash — the on-disk
	// state a crash between write and fsync leaves behind. The
	// coordinator's re-hash of the file must catch it.
	CorruptOutput bool
}

// ChaosEnv is the test-only environment knob: a semicolon-separated
// list of per-shard directives, each "shard:fault" with fault one of
// kill@N, hang@N or corrupt. Example:
//
//	GONOC_DIST_CHAOS="1:kill@5;2:hang@3;4:corrupt"
//
// Directives fire only on attempt 0 of their shard, so the retry or
// steal of a perturbed shard runs clean — the tests prove recovery,
// not perpetual failure.
const ChaosEnv = "GONOC_DIST_CHAOS"

// ParseChaos resolves the env spec for one shard attempt. An empty
// spec, a non-matching shard or any attempt beyond the first yields
// the zero Chaos. The spec format is validated strictly: tests must
// not silently run without their faults.
func ParseChaos(spec string, shard, attempt int) (Chaos, error) {
	var c Chaos
	if spec == "" || attempt != 0 {
		return c, nil
	}
	for _, dir := range strings.Split(spec, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		idx, fault, ok := strings.Cut(dir, ":")
		if !ok {
			return Chaos{}, fmt.Errorf("%w: chaos directive %q: want shard:fault", ErrBadField, dir)
		}
		s, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil || s < 0 {
			return Chaos{}, fmt.Errorf("%w: chaos directive %q: bad shard", ErrBadField, dir)
		}
		kind, arg, hasArg := strings.Cut(strings.TrimSpace(fault), "@")
		n := 0
		if hasArg {
			n, err = strconv.Atoi(arg)
			if err != nil || n < 1 {
				return Chaos{}, fmt.Errorf("%w: chaos directive %q: bad count", ErrBadField, dir)
			}
		}
		switch kind {
		case "kill":
			if !hasArg {
				return Chaos{}, fmt.Errorf("%w: chaos directive %q: kill needs @N", ErrBadField, dir)
			}
			if s == shard {
				c.KillAfter = n
			}
		case "hang":
			if !hasArg {
				return Chaos{}, fmt.Errorf("%w: chaos directive %q: hang needs @N", ErrBadField, dir)
			}
			if s == shard {
				c.HangAfter = n
			}
		case "corrupt":
			if hasArg {
				return Chaos{}, fmt.Errorf("%w: chaos directive %q: corrupt takes no @N", ErrBadField, dir)
			}
			if s == shard {
				c.CorruptOutput = true
			}
		default:
			return Chaos{}, fmt.Errorf("%w: chaos directive %q: unknown fault", ErrBadField, dir)
		}
	}
	return c, nil
}
