package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gonoc/internal/core"
	"gonoc/internal/exp"
)

// The chaos integration suite is the acceptance test of the whole
// subsystem: real subprocess workers (the test binary re-execs itself
// as a protocol worker), a real multi-hundred-point campaign, and real
// faults — one worker SIGKILLed mid-shard, one hung past the heartbeat
// deadline, one shard file torn after the fact. The merged stream must
// still be byte-identical to an unsharded in-process run, with the
// supervision (restarts, deadline kills, steals) visible in the event
// log.

// workerEnv re-execs the test binary as a dist worker when set; see
// TestMain.
const workerEnv = "GONOC_DIST_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// chaosCampaign is the integration campaign: 3 topologies × 9 rates ×
// 8 replications = 216 points at reduced cycle counts.
func chaosCampaign() exp.Campaign {
	return exp.Campaign{
		Name:       "dist-chaos",
		Topologies: []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh},
		Nodes:      []int{16},
		Traffics:   []exp.TrafficSpec{{Kind: core.UniformTraffic}},
		FlitRates:  []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45},
		Reps:       8,
		Seed:       7,
		Warmup:     30,
		Measure:    150,
	}
}

// campaignRunner adapts the exp.Runner to the lease protocol, the same
// way cmd/nocsweep's worker mode does.
func campaignRunner(c exp.Campaign, parallel int) ShardRunner {
	return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
		r := exp.Runner{Parallel: parallel, Shard: exp.Shard{Index: lease.Shard, Count: lease.Count}, Progress: progress}
		_, err := r.Run(ctx, c, exp.NewJSONLWriter(w))
		return err
	}
}

// workerMain is the subprocess entry point: serve leases over
// stdin/stdout with whatever chaos the coordinator's env injected.
func workerMain() int {
	err := ServeWorker(context.Background(), os.Stdin, os.Stdout,
		campaignRunner(chaosCampaign(), 2),
		WorkerOptions{ChaosSpec: os.Getenv(ChaosEnv)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "test worker:", err)
		return 1
	}
	return 0
}

// golden runs the campaign unsharded, in-process — the byte-exact
// reference every distributed run must reproduce.
func golden(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := exp.Runner{Parallel: 4}
	if _, err := r.Run(context.Background(), chaosCampaign(), exp.NewJSONLWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// logDir is where the coordinator event log lands: the DIST_LOG_DIR
// env (CI uploads it as an artifact on failure) or a test temp dir.
func logDir(t *testing.T) string {
	if dir := os.Getenv("DIST_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

func chaosCoordinator(t *testing.T, name, chaosSpec string, out io.Writer, tune func(*Options)) *Coordinator {
	t.Helper()
	dir := logDir(t)
	// Append, not truncate: under -count=2 the second run must not
	// destroy the first run's trail — the failing one is the evidence.
	logfile := func(name string) *os.File {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(f, "=== %s\n", t.Name())
		return f
	}
	evF := logfile(name + "-events.log")
	t.Cleanup(func() { evF.Close() })
	errF := logfile(name + "-worker-stderr.log")
	t.Cleanup(func() { errF.Close() })
	t.Logf("coordinator logs in %s", dir)

	env := append(os.Environ(), workerEnv+"=1")
	if chaosSpec != "" {
		env = append(env, ChaosEnv+"="+chaosSpec)
	}
	o := Options{
		Workers:     4,
		Shards:      12,
		Heartbeat:   50 * time.Millisecond,
		Deadline:    400 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		Launch:      &LocalLauncher{Argv: []string{os.Args[0]}, Env: env, Stderr: errF},
		Out:         out,
		Events:      evF,
	}
	if tune != nil {
		tune(&o)
	}
	co, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// The headline chaos run: 4 subprocess workers over 216 points, one
// worker SIGKILLed mid-shard, one wedged past the heartbeat deadline,
// one shard file torn after close. The merged stream must equal the
// serial golden byte for byte, with the supervision trail in the log.
func TestDistChaosKillHangCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos suite skipped in -short mode")
	}
	want := golden(t)
	var out bytes.Buffer
	co := chaosCoordinator(t, "kill-hang-corrupt", "2:kill@7;5:hang@4;8:corrupt", &out, func(o *Options) {
		o.StealMinDone = 100 // isolate the restart paths; stealing has its own test
	})
	aggs, err := co.Run(context.Background())
	if err != nil {
		t.Fatalf("chaos run failed: %v\nevents:\n%s", err, eventDump(co))
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("merged stream differs from the unsharded golden (%d vs %d bytes)", out.Len(), len(want))
	}
	if len(aggs) != 27 { // 3 topologies × 9 rates
		t.Fatalf("merged %d grid points, want 27", len(aggs))
	}
	if n := co.CountEvents(EventExit); n < 2 {
		t.Fatalf("expected the killed and the hung worker to exit, saw %d exits:\n%s", n, eventDump(co))
	}
	if n := co.CountEvents(EventRestart); n < 1 {
		t.Fatalf("no supervised restart after SIGKILL:\n%s", eventDump(co))
	}
	if n := co.CountEvents(EventMiss); n < 1 {
		t.Fatalf("the hung worker never tripped the heartbeat deadline:\n%s", eventDump(co))
	}
	if n := co.CountEvents(EventBadOutput); n < 1 {
		t.Fatalf("the torn shard file passed validation:\n%s", eventDump(co))
	}
}

// A worker hangs with a generous deadline, so the only way the
// campaign completes promptly is work-stealing: the straggler shard is
// re-leased to an idle worker and the hung process is killed at
// shutdown.
func TestDistStealRecoversHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos suite skipped in -short mode")
	}
	want := golden(t)
	var out bytes.Buffer
	co := chaosCoordinator(t, "steal", "1:hang@3", &out, func(o *Options) {
		o.Workers = 2
		o.Shards = 6
		o.Deadline = 60 * time.Second // the deadline must NOT be the rescuer
		o.StealFactor = 2
		o.StealMinDone = 2
	})
	done := make(chan struct{})
	var aggs []exp.Aggregate
	var err error
	go func() {
		aggs, err = co.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("steal never rescued the campaign:\n%s", eventDump(co))
	}
	if err != nil {
		t.Fatalf("steal run failed: %v\nevents:\n%s", err, eventDump(co))
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("merged stream differs from the unsharded golden after a steal")
	}
	if len(aggs) != 27 {
		t.Fatalf("merged %d grid points, want 27", len(aggs))
	}
	if n := co.CountEvents(EventSteal); n < 1 {
		t.Fatalf("no steal event:\n%s", eventDump(co))
	}
	if n := co.CountEvents(EventMiss); n != 0 {
		t.Fatalf("deadline fired despite being set to 60s:\n%s", eventDump(co))
	}
}
