package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
)

// Proc is one live worker process as the coordinator sees it: a
// protocol channel plus a kill switch. The interface is the seam
// between supervision logic and process transport — the local
// subprocess launcher below is the only production implementation
// today, but an SSH or k8s-Job launcher slots in without touching the
// coordinator, and the tests drive the supervisor through an
// in-process fake.
type Proc interface {
	// Send writes one protocol message to the worker's stdin. Safe for
	// concurrent use.
	Send(m Msg) error
	// Lines streams the worker's stdout line by line (protocol and
	// noise alike; the coordinator sorts them out). The channel closes
	// when the worker's stdout does — on exit or kill.
	Lines() <-chan []byte
	// CloseSend closes the worker's stdin, the polite shutdown signal:
	// a healthy worker drains it and exits on EOF.
	CloseSend() error
	// Kill terminates the worker immediately (SIGKILL locally).
	Kill() error
	// Done yields the worker's exit status once, then closes.
	Done() <-chan error
}

// Launcher spawns workers. Start is called once per worker slot and
// again on every supervised restart.
type Launcher interface {
	Start(ctx context.Context, worker int) (Proc, error)
}

// LocalLauncher runs workers as local subprocesses of the given argv.
type LocalLauncher struct {
	// Argv is the worker command line, Argv[0] the binary.
	Argv []string
	// Env, when non-nil, replaces the child environment (os/exec
	// semantics: nil inherits).
	Env []string
	// Stderr, when set, receives the workers' stderr (interleaved).
	Stderr io.Writer
}

// Start implements Launcher.
func (l *LocalLauncher) Start(ctx context.Context, worker int) (Proc, error) {
	if len(l.Argv) == 0 {
		return nil, fmt.Errorf("dist: local launcher without argv")
	}
	cmd := exec.CommandContext(ctx, l.Argv[0], l.Argv[1:]...)
	cmd.Env = l.Env
	cmd.Stderr = l.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d stdin: %w", worker, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d stdout: %w", worker, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: worker %d start: %w", worker, err)
	}
	p := &localProc{cmd: cmd, stdin: stdin, lines: make(chan []byte, 16), done: make(chan error, 1)}
	go p.pump(stdout)
	return p, nil
}

type localProc struct {
	cmd   *exec.Cmd
	mu    sync.Mutex // guards stdin writes and close
	stdin io.WriteCloser
	lines chan []byte
	done  chan error
}

// pump forwards stdout lines until EOF, then reaps the process.
// cmd.Wait must not run concurrently with pipe reads, so the reap
// strictly follows the pump.
func (p *localProc) pump(stdout io.Reader) {
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<14), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		p.lines <- line
	}
	close(p.lines)
	p.done <- p.cmd.Wait()
	close(p.done)
}

func (p *localProc) Send(m Msg) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err = p.stdin.Write(b)
	return err
}

func (p *localProc) Lines() <-chan []byte { return p.lines }

func (p *localProc) CloseSend() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stdin.Close()
}

func (p *localProc) Kill() error { return p.cmd.Process.Kill() }

func (p *localProc) Done() <-chan error { return p.done }
