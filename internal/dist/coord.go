package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gonoc/internal/exp"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the number of worker slots to supervise.
	Workers int
	// Shards is the campaign partition count. More shards than workers
	// (4× is a good default) keeps the lease queue deep enough for
	// work-stealing to matter.
	Shards int
	// Heartbeat is the interval workers are told to beat at (default
	// 500ms); Deadline is how long a silent worker lives before the
	// coordinator kills and restarts it (default 4×Heartbeat).
	Heartbeat, Deadline time.Duration
	// MaxWorkerRestarts caps supervised restarts per worker slot
	// (default 3); a slot exceeding it is abandoned.
	MaxWorkerRestarts int
	// MaxShardAttempts caps leases per shard (default 4); a shard
	// exceeding it degrades to the Inline fallback.
	MaxShardAttempts int
	// BackoffBase/BackoffMax bound the exponential restart backoff
	// (defaults 100ms, 5s): restart i of a slot waits
	// min(BackoffBase<<i, BackoffMax).
	BackoffBase, BackoffMax time.Duration
	// StealFactor triggers work-stealing: once StealMinDone shards
	// have completed, a running shard whose lease is older than
	// StealFactor × the median completed-shard duration is re-leased
	// to an idle worker (defaults 3.0, 2). First byte-complete result
	// wins; determinism makes the race benign.
	StealFactor  float64
	StealMinDone int
	// Launch spawns workers (required).
	Launch Launcher
	// Inline, when set, is the graceful-degradation path: a shard
	// whose attempts are exhausted (or with no workers left to run it)
	// executes in the coordinator process instead of failing the
	// campaign.
	Inline ShardRunner
	// Out receives the streaming merge: the byte-identical unsharded
	// JSONL, emitted shard by shard as completions allow. May be nil.
	Out io.Writer
	// Events, when set, receives the textual event log.
	Events io.Writer
	// WorkDir holds the per-attempt shard files (default: a fresh temp
	// directory, removed after a successful run).
	WorkDir string
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Deadline <= 0 {
		o.Deadline = 4 * o.Heartbeat
	}
	if o.MaxWorkerRestarts <= 0 {
		o.MaxWorkerRestarts = 3
	}
	if o.MaxShardAttempts <= 0 {
		o.MaxShardAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.StealFactor <= 0 {
		o.StealFactor = 3
	}
	if o.StealMinDone <= 0 {
		o.StealMinDone = 2
	}
	return o
}

// EventKind classifies coordinator events.
type EventKind string

const (
	EventSpawn     EventKind = "spawn"      // worker process started
	EventLease     EventKind = "lease"      // shard leased to a worker
	EventMiss      EventKind = "miss"       // heartbeat deadline exceeded; killing
	EventExit      EventKind = "exit"       // worker process exited
	EventRestart   EventKind = "restart"    // restart scheduled after backoff
	EventGaveUp    EventKind = "gave-up"    // worker slot exhausted its restarts
	EventSteal     EventKind = "steal"      // straggler shard re-leased to an idle worker
	EventDone      EventKind = "done"       // shard attempt completed and validated
	EventDuplicate EventKind = "duplicate"  // completion for an already-done shard (benign)
	EventBadOutput EventKind = "bad-output" // shard file failed size/hash validation
	EventWorkerErr EventKind = "worker-err" // worker reported a shard failure
	EventInline    EventKind = "inline"     // degraded: shard run in-process
	EventMerged    EventKind = "merged"     // shard appended to the merged stream
)

// Event is one entry of the coordinator's supervision log.
type Event struct {
	Kind    EventKind
	Worker  int // -1 when not worker-scoped
	Shard   int // -1 when not shard-scoped
	Attempt int
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("%-10s worker=%d shard=%d attempt=%d %s", e.Kind, e.Worker, e.Shard, e.Attempt, e.Detail)
}

// Coordinator supervises a fleet of shard workers: it leases shards,
// watches heartbeats, restarts crashed or hung workers with capped
// exponential backoff, re-leases straggler shards to idle workers, and
// streams the byte-identical merged output as shards complete.
type Coordinator struct {
	o Options

	mu     sync.Mutex
	events []Event
}

// New validates the options and returns a Coordinator.
func New(o Options) (*Coordinator, error) {
	if o.Workers < 1 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", o.Workers)
	}
	if o.Shards < 1 {
		return nil, fmt.Errorf("dist: need at least one shard, got %d", o.Shards)
	}
	if o.Launch == nil {
		return nil, fmt.Errorf("dist: no launcher")
	}
	return &Coordinator{o: o.withDefaults()}, nil
}

// Events returns a copy of the supervision log so far.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// CountEvents returns how many logged events have the given kind.
func (c *Coordinator) CountEvents(kind EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func (c *Coordinator) event(kind EventKind, worker, shard, attempt int, format string, args ...any) {
	e := Event{Kind: kind, Worker: worker, Shard: shard, Attempt: attempt, Detail: fmt.Sprintf(format, args...)}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
	if c.o.Events != nil {
		fmt.Fprintln(c.o.Events, e.String())
	}
}

// procEvent is one occurrence on the supervision loop's single input
// channel: a worker line, a worker exit, or a restart timer firing.
type procEvent struct {
	slot    int
	line    []byte
	exit    bool
	exitErr error
	respawn bool
}

const (
	slotIdle = iota
	slotBusy
	slotWaiting // backoff timer pending
	slotDead
)

type slotState struct {
	proc     Proc
	state    int
	shard    int // leased shard when busy
	attempt  int
	lastMsg  time.Time
	restarts int
	killed   bool // deadline kill issued; waiting for the exit event
}

const (
	shardPending = iota
	shardRunning
	shardDone
)

type shardState struct {
	state    int
	attempts int // leases issued
	running  int // leases in flight
	file     string
	start    time.Time
	duration time.Duration
	merged   bool
}

// run carries the mutable state of one Coordinator.Run.
type run struct {
	c   *Coordinator
	o   Options
	ctx context.Context

	ch      chan procEvent
	pumps   int // live pump goroutines
	slots   []slotState
	shards  []shardState
	pending []int // shard queue
	durs    []time.Duration

	merger    *exp.StreamMerger
	nextMerge int
	mergeErr  error
	workdir   string
	ownDir    bool
}

// Run executes the campaign: Shards leases across Workers supervised
// processes, merged output streaming to Out. It returns the merged
// aggregates. The error is non-nil when the campaign could not be
// completed — individual worker failures are not errors, they are the
// job.
func (c *Coordinator) Run(ctx context.Context) ([]exp.Aggregate, error) {
	r := &run{
		c: c, o: c.o, ctx: ctx,
		ch:     make(chan procEvent, 256),
		slots:  make([]slotState, c.o.Workers),
		shards: make([]shardState, c.o.Shards),
		merger: exp.NewStreamMerger(c.o.Out),
	}
	r.workdir = c.o.WorkDir
	if r.workdir == "" {
		dir, err := os.MkdirTemp("", "gonoc-dist-*")
		if err != nil {
			return nil, fmt.Errorf("dist: workdir: %w", err)
		}
		r.workdir, r.ownDir = dir, true
	}
	for i := range r.shards {
		r.shards[i].state = shardPending
		r.pending = append(r.pending, i)
	}
	for i := range r.slots {
		r.slots[i].shard = -1
		r.spawn(i)
	}
	err := r.loop()
	r.shutdown(err == nil)
	if err != nil {
		return nil, err
	}
	aggs, err := r.merger.Finish()
	if err != nil {
		return nil, err
	}
	if r.ownDir {
		os.RemoveAll(r.workdir)
	}
	return aggs, nil
}

// spawn starts (or restarts) worker slot i and hooks its output into
// the event channel.
func (r *run) spawn(i int) {
	s := &r.slots[i]
	proc, err := r.o.Launch.Start(r.ctx, i)
	if err != nil {
		r.c.event(EventExit, i, -1, 0, "spawn failed: %v", err)
		r.slotDown(i)
		return
	}
	s.proc = proc
	s.state = slotIdle
	s.lastMsg = time.Now()
	s.killed = false
	r.c.event(EventSpawn, i, -1, 0, "restarts=%d", s.restarts)
	// Config precedes everything; the worker reads sequentially so
	// sending before its hello is fine.
	if err := proc.Send(Msg{Type: MsgConfig, HeartbeatMS: r.o.Heartbeat.Milliseconds()}); err != nil {
		// The exit pump will report the death; nothing else to do.
		r.c.event(EventExit, i, -1, 0, "config send failed: %v", err)
	}
	r.pumps++
	go func(p Proc, slot int) {
		for line := range p.Lines() {
			select {
			case r.ch <- procEvent{slot: slot, line: line}:
			case <-r.ctx.Done():
				// Drain remaining lines so the proc's writer can't
				// block, then fall through to the exit report.
				continue
			}
		}
		err := <-p.Done()
		select {
		case r.ch <- procEvent{slot: slot, exit: true, exitErr: err}:
		case <-r.ctx.Done():
			// loop() already returned; shutdown() drains via pumpExit.
			r.ch <- procEvent{slot: slot, exit: true, exitErr: err}
		}
	}(proc, i)
}

// loop is the supervision main loop; it returns nil once every shard
// is merged.
func (r *run) loop() error {
	tick := r.o.Heartbeat / 2
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		if r.mergeErr != nil {
			return r.mergeErr
		}
		r.assign()
		if r.merged() {
			return nil
		}
		if err := r.maybeDegrade(); err != nil {
			return err
		}
		if r.mergeErr != nil {
			return r.mergeErr
		}
		if r.merged() {
			return nil
		}
		select {
		case <-r.ctx.Done():
			return r.ctx.Err()
		case ev := <-r.ch:
			r.handle(ev)
		case <-ticker.C:
			r.checkDeadlines()
			r.steal()
		}
	}
}

func (r *run) merged() bool { return r.nextMerge == len(r.shards) }

// handle dispatches one channel event.
func (r *run) handle(ev procEvent) {
	if ev.respawn {
		if r.slots[ev.slot].state == slotWaiting {
			r.spawn(ev.slot)
		}
		return
	}
	if ev.exit {
		r.handleExit(ev.slot, ev.exitErr)
		return
	}
	m, err := Decode(ev.line)
	if err != nil {
		return // stdout noise (e.g. test-binary chatter); not protocol
	}
	s := &r.slots[ev.slot]
	s.lastMsg = time.Now()
	switch m.Type {
	case MsgHello, MsgHeartbeat, MsgProgress:
		// Liveness is the timestamp update above; progress feeds the
		// event log implicitly via steal decisions.
	case MsgDone:
		r.handleDone(ev.slot, m)
	case MsgError:
		r.c.event(EventWorkerErr, ev.slot, m.Shard, m.Attempt, "%s", m.Err)
		if s.state == slotBusy && s.shard == m.Shard {
			r.releaseLease(ev.slot)
			r.requeue(m.Shard)
		}
	}
}

// releaseLease returns slot i to idle, decrementing its shard's
// in-flight count.
func (r *run) releaseLease(i int) {
	s := &r.slots[i]
	if s.state == slotBusy && s.shard >= 0 {
		r.shards[s.shard].running--
	}
	s.state = slotIdle
	s.shard = -1
}

// requeue puts an unfinished shard back on the lease queue.
func (r *run) requeue(shard int) {
	sh := &r.shards[shard]
	if sh.state == shardDone {
		return
	}
	sh.state = shardPending
	for _, p := range r.pending {
		if p == shard {
			return
		}
	}
	r.pending = append([]int{shard}, r.pending...)
}

// handleExit supervises a worker death: requeue its shard, then
// restart the slot with capped exponential backoff or abandon it.
func (r *run) handleExit(i int, exitErr error) {
	s := &r.slots[i]
	r.pumps--
	if s.state == slotDead {
		return
	}
	shard := s.shard
	r.c.event(EventExit, i, shard, s.attempt, "err=%v", exitErr)
	if s.state == slotBusy && shard >= 0 {
		r.releaseLease(i)
		r.requeue(shard)
	}
	s.proc = nil
	if r.merged() {
		s.state = slotDead
		return
	}
	s.restarts++
	if s.restarts > r.o.MaxWorkerRestarts {
		r.c.event(EventGaveUp, i, -1, 0, "after %d restarts", s.restarts-1)
		r.slotDown(i)
		return
	}
	backoff := r.o.BackoffBase << (s.restarts - 1)
	if backoff > r.o.BackoffMax {
		backoff = r.o.BackoffMax
	}
	s.state = slotWaiting
	r.c.event(EventRestart, i, -1, 0, "in %s", backoff)
	slot := i
	time.AfterFunc(backoff, func() {
		select {
		case r.ch <- procEvent{slot: slot, respawn: true}:
		case <-r.ctx.Done():
		}
	})
}

func (r *run) slotDown(i int) {
	r.slots[i].state = slotDead
	r.slots[i].proc = nil
}

// handleDone validates a completed shard file and, if it wins, marks
// the shard done.
func (r *run) handleDone(slot int, m Msg) {
	if m.Shard >= len(r.shards) || m.Out == "" {
		return
	}
	s := &r.slots[slot]
	if s.state == slotBusy && s.shard == m.Shard {
		r.releaseLease(slot)
	}
	sh := &r.shards[m.Shard]
	if sh.state == shardDone {
		r.c.event(EventDuplicate, slot, m.Shard, m.Attempt, "loser of a benign steal race")
		os.Remove(m.Out)
		return
	}
	if err := validateFile(m.Out, m.Bytes, m.SHA256); err != nil {
		r.c.event(EventBadOutput, slot, m.Shard, m.Attempt, "%v", err)
		os.Remove(m.Out)
		r.requeue(m.Shard)
		return
	}
	sh.state = shardDone
	sh.file = m.Out
	sh.duration = time.Since(sh.start)
	r.durs = append(r.durs, sh.duration)
	r.c.event(EventDone, slot, m.Shard, m.Attempt, "%d bytes, %d lines, %s", m.Bytes, m.Lines, sh.duration.Round(time.Millisecond))
	r.advanceMerge()
}

// validateFile re-hashes the shard file and compares it against what
// the worker claims to have written: a truncated or corrupted file —
// the CorruptOutput chaos, or a real torn write — fails here and the
// shard is retried.
func validateFile(path string, wantBytes int64, wantSHA string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	if n != wantBytes {
		return fmt.Errorf("size %d, worker wrote %d", n, wantBytes)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != wantSHA {
		return fmt.Errorf("content hash mismatch")
	}
	return nil
}

// advanceMerge streams every ready prefix shard into the merged
// output. A merge failure is fatal — by the time Add fails, part of
// the shard's records may already be on the output stream, so a retry
// could only duplicate them.
func (r *run) advanceMerge() {
	for r.mergeErr == nil && r.nextMerge < len(r.shards) && r.shards[r.nextMerge].state == shardDone {
		sh := &r.shards[r.nextMerge]
		if err := r.mergeShard(r.nextMerge, sh.file); err != nil {
			r.mergeErr = fmt.Errorf("dist: merging shard %d: %w", r.nextMerge, err)
			return
		}
		sh.merged = true
		r.c.event(EventMerged, -1, r.nextMerge, 0, "stream advanced to shard %d", r.nextMerge)
		r.nextMerge++
	}
}

func (r *run) mergeShard(shard int, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.merger.Add(f)
}

// assign leases pending shards to idle workers. Shards past their
// attempt cap stay queued for maybeDegrade's inline fallback instead
// of burning another lease.
func (r *run) assign() {
	var kept []int
	for i, shard := range r.pending {
		if r.shards[shard].state == shardDone {
			continue // won by a still-in-flight duplicate attempt
		}
		if r.shards[shard].attempts >= r.o.MaxShardAttempts {
			kept = append(kept, shard)
			continue
		}
		slot := r.idleSlot()
		if slot < 0 {
			kept = append(kept, r.pending[i:]...)
			break
		}
		r.lease(slot, shard, EventLease)
	}
	r.pending = kept
}

func (r *run) idleSlot() int {
	for i := range r.slots {
		if r.slots[i].state == slotIdle && r.slots[i].proc != nil {
			return i
		}
	}
	return -1
}

// lease sends one shard attempt to a worker.
func (r *run) lease(slot, shard int, kind EventKind) {
	s := &r.slots[slot]
	sh := &r.shards[shard]
	attempt := sh.attempts
	sh.attempts++
	sh.running++
	if sh.state == shardPending {
		sh.state = shardRunning
	}
	if attempt == 0 {
		sh.start = time.Now()
	}
	out := filepath.Join(r.workdir, fmt.Sprintf("shard-%04d-a%d.jsonl", shard, attempt))
	s.state = slotBusy
	s.shard = shard
	s.attempt = attempt
	r.c.event(kind, slot, shard, attempt, "out=%s", filepath.Base(out))
	if err := s.proc.Send(Msg{Type: MsgLease, Shard: shard, Count: len(r.shards), Attempt: attempt, Out: out}); err != nil {
		// Dead pipe: the exit event will requeue the shard.
		r.c.event(EventExit, slot, shard, attempt, "lease send failed: %v", err)
	}
}

// checkDeadlines kills workers whose last message is older than the
// liveness deadline — the hang path: a wedged worker stops
// heartbeating, and only this notices.
func (r *run) checkDeadlines() {
	now := time.Now()
	for i := range r.slots {
		s := &r.slots[i]
		if s.proc == nil || s.killed || (s.state != slotBusy && s.state != slotIdle) {
			continue
		}
		if now.Sub(s.lastMsg) > r.o.Deadline {
			r.c.event(EventMiss, i, s.shard, s.attempt, "silent for %s (deadline %s)", now.Sub(s.lastMsg).Round(time.Millisecond), r.o.Deadline)
			s.killed = true
			s.proc.Kill() // the exit event drives the restart path
		}
	}
}

// steal re-leases a straggler shard to an idle worker: once enough
// shards have completed to estimate a typical duration, any lease
// older than StealFactor × the median is raced by a fresh attempt.
// Whichever attempt reaches byte-complete first wins; determinism
// guarantees both produce identical bytes, so the race is benign.
func (r *run) steal() {
	if len(r.pending) > 0 || len(r.durs) < r.o.StealMinDone {
		return
	}
	slot := r.idleSlot()
	if slot < 0 {
		return
	}
	med := median(r.durs)
	threshold := time.Duration(float64(med) * r.o.StealFactor)
	if threshold <= 0 {
		threshold = r.o.Deadline
	}
	victim, worst := -1, time.Duration(0)
	now := time.Now()
	for i := range r.shards {
		sh := &r.shards[i]
		if sh.state != shardRunning || sh.running != 1 || sh.attempts >= r.o.MaxShardAttempts {
			continue
		}
		if age := now.Sub(sh.start); age > threshold && age > worst {
			victim, worst = i, age
		}
	}
	if victim < 0 {
		return
	}
	r.lease(slot, victim, EventSteal)
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// maybeDegrade runs shards in-process when supervision has run out of
// options: a shard past its attempt cap, or remaining work with no
// startable worker left. With no Inline fallback configured this is a
// campaign failure.
func (r *run) maybeDegrade() error {
	workersLeft := false
	for i := range r.slots {
		if r.slots[i].state != slotDead {
			workersLeft = true
			break
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		if sh.state == shardDone {
			continue
		}
		exhausted := sh.attempts >= r.o.MaxShardAttempts && sh.running == 0
		if !exhausted && workersLeft {
			continue
		}
		if sh.running > 0 && workersLeft {
			continue // an attempt is still in flight; let it finish
		}
		if r.o.Inline == nil {
			return fmt.Errorf("dist: shard %d/%d unrunnable after %d attempts and no inline fallback", i, len(r.shards), sh.attempts)
		}
		if err := r.runInline(i); err != nil {
			return err
		}
	}
	r.advanceMerge()
	return nil
}

// runInline executes one orphaned shard in the coordinator process —
// the graceful floor under all the supervision: the campaign still
// completes, just without the parallelism.
func (r *run) runInline(shard int) error {
	sh := &r.shards[shard]
	attempt := sh.attempts
	sh.attempts++
	out := filepath.Join(r.workdir, fmt.Sprintf("shard-%04d-inline.jsonl", shard))
	r.c.event(EventInline, -1, shard, attempt, "degraded to in-process run")
	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("dist: inline shard %d: %w", shard, err)
	}
	lease := Lease{Shard: shard, Count: len(r.shards), Attempt: attempt, Out: out}
	if err := r.o.Inline(r.ctx, lease, f, func(done, total int) {}); err != nil {
		f.Close()
		return fmt.Errorf("dist: inline shard %d: %w", shard, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dist: inline shard %d: %w", shard, err)
	}
	if sh.state == shardPending {
		// Drop it from the queue so assign() never double-leases it.
		for j, p := range r.pending {
			if p == shard {
				r.pending = append(r.pending[:j], r.pending[j+1:]...)
				break
			}
		}
	}
	sh.state = shardDone
	sh.file = out
	sh.duration = time.Since(sh.start)
	// An inline run after the coordinator blocked for a while must not
	// make healthy workers look silent: refresh their deadlines.
	now := time.Now()
	for i := range r.slots {
		if r.slots[i].proc != nil {
			r.slots[i].lastMsg = now
		}
	}
	return nil
}

// shutdown ends every worker and waits for all pump goroutines so Run
// leaks nothing. Idle workers get the polite EOF (clean exit 0); busy
// ones are killed outright — by the time shutdown runs the loop has
// returned, so any still-running attempt is redundant (a steal loser or
// a cancelled campaign), and a wedged worker would never drain its
// stdin anyway — a blocking farewell Send could hang the coordinator.
func (r *run) shutdown(polite bool) {
	for i := range r.slots {
		s := &r.slots[i]
		if s.proc == nil {
			continue
		}
		if polite && s.state == slotIdle {
			_ = s.proc.CloseSend()
		} else {
			_ = s.proc.Kill()
		}
	}
	deadline := time.After(2 * time.Second)
	for r.pumps > 0 {
		select {
		case ev := <-r.ch:
			if ev.exit {
				r.pumps--
				if s := &r.slots[ev.slot]; s.state != slotDead {
					s.state = slotDead
					s.proc = nil
				}
			}
		case <-deadline:
			for i := range r.slots {
				if r.slots[i].proc != nil {
					_ = r.slots[i].proc.Kill()
				}
			}
			deadline = time.After(2 * time.Second)
		}
	}
}
