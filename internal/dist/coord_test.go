package dist

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gonoc/internal/exp"
)

// The coordinator unit tests drive the real supervision loop against
// in-process fake workers: each fakeProc runs an actual ServeWorker
// over pipes, so the protocol, the heartbeat machinery and the
// supervision paths are all genuine — only the process boundary is
// simulated, which lets a test "crash" or "silence" a worker
// deterministically without SIGKILLing the test binary (the subprocess
// chaos suite in chaos_test.go covers the real thing).

var errFakeKill = errors.New("fake worker killed")

// fakeCtl is handed to each fake worker's shard runner so tests can
// trigger process-level faults from inside a lease.
type fakeCtl struct {
	// die emulates an abrupt process death: the worker's pipes close
	// mid-lease and no further message escapes.
	die func()
	// mute emulates a livelocked process: the worker keeps running but
	// nothing it writes (heartbeats included) reaches the coordinator.
	mute func()
}

type fakeProc struct {
	cancel context.CancelFunc
	inR    *io.PipeReader
	inW    *io.PipeWriter
	outW   *io.PipeWriter

	sendMu sync.Mutex
	muteMu sync.Mutex
	muted  bool

	lines chan []byte
	done  chan error
}

func (p *fakeProc) Send(m Msg) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	_, err = p.inW.Write(b)
	return err
}

func (p *fakeProc) Lines() <-chan []byte { return p.lines }

func (p *fakeProc) CloseSend() error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.inW.Close()
}

func (p *fakeProc) Kill() error {
	p.cancel()
	p.inR.CloseWithError(errFakeKill)
	p.outW.CloseWithError(errFakeKill)
	return nil
}

func (p *fakeProc) Done() <-chan error { return p.done }

// fakeLauncher starts ServeWorker-backed fake processes. run builds the
// shard runner for each spawned worker; chaos is passed through as the
// worker's chaos spec (only corrupt directives are safe in-process).
type fakeLauncher struct {
	run   func(worker int, ctl fakeCtl) ShardRunner
	chaos string
}

func (l *fakeLauncher) Start(ctx context.Context, worker int) (Proc, error) {
	wctx, cancel := context.WithCancel(ctx)
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	p := &fakeProc{cancel: cancel, inR: inR, inW: inW, outW: outW,
		lines: make(chan []byte, 256), done: make(chan error, 1)}
	ctl := fakeCtl{
		die: func() {
			cancel()
			outW.CloseWithError(errFakeKill)
			inR.CloseWithError(errFakeKill)
		},
		mute: func() {
			p.muteMu.Lock()
			p.muted = true
			p.muteMu.Unlock()
		},
	}
	exit := make(chan error, 1)
	go func() {
		err := ServeWorker(wctx, inR, outW, l.run(worker, ctl), WorkerOptions{ChaosSpec: l.chaos})
		outW.Close()
		inR.Close()
		exit <- err
	}()
	go func() {
		sc := bufio.NewScanner(outR)
		for sc.Scan() {
			p.muteMu.Lock()
			muted := p.muted
			p.muteMu.Unlock()
			if muted {
				continue // the bytes vanish, as if the process were wedged
			}
			p.lines <- append([]byte(nil), sc.Bytes()...)
		}
		close(p.lines)
		p.done <- <-exit
		close(p.done)
	}()
	return p, nil
}

// The fake campaign: fakePoints synthetic run records in exp's JSONL
// wire form, tiled over lease.Count shards exactly the way a real
// sharded campaign tiles its global point indexes.
const fakePoints = 60

func fakeRecord(i int) string {
	return fmt.Sprintf(`{"kind":"run","index":%d,"campaign":"fake","topo":"ring","nodes":4,"traffic":"uniform","flit_rate":0.1,"rep":%d,"seed":%d,"throughput":0.5,"accepted":0.1,"latency":5,"p95_latency":9,"hops":2,"injected":100,"ejected":100,"energy_per_packet":1}`, i, i, 1000+i)
}

func writeFakeShard(lease Lease, w io.Writer, progress func(done, total int)) error {
	lo := lease.Shard * fakePoints / lease.Count
	hi := (lease.Shard + 1) * fakePoints / lease.Count
	for g := lo; g < hi; g++ {
		if _, err := fmt.Fprintln(w, fakeRecord(g)); err != nil {
			return err
		}
		progress(g-lo+1, hi-lo)
	}
	return nil
}

func cleanRunner(worker int, ctl fakeCtl) ShardRunner {
	return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
		return writeFakeShard(lease, w, progress)
	}
}

// goldenMerged is what any successful coordinator run must emit: the
// full record stream plus recomputed summaries, built without the
// coordinator.
func goldenMerged(t *testing.T) []byte {
	t.Helper()
	var full bytes.Buffer
	for i := 0; i < fakePoints; i++ {
		full.WriteString(fakeRecord(i) + "\n")
	}
	var want bytes.Buffer
	if _, err := exp.MergeRuns([]io.Reader{bytes.NewReader(full.Bytes())}, &want); err != nil {
		t.Fatal(err)
	}
	return want.Bytes()
}

func testOptions(t *testing.T, launch Launcher, out io.Writer) Options {
	t.Helper()
	return Options{
		Workers:     3,
		Shards:      6,
		Heartbeat:   25 * time.Millisecond,
		Deadline:    2 * time.Second, // no spurious kills on a loaded CI box
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Launch:      launch,
		Out:         out,
		WorkDir:     t.TempDir(),
	}
}

func mustRun(t *testing.T, o Options) (*Coordinator, []exp.Aggregate) {
	t.Helper()
	co, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := co.Run(context.Background())
	if err != nil {
		t.Fatalf("coordinator run failed: %v\nevents:\n%s", err, eventDump(co))
	}
	return co, aggs
}

func eventDump(co *Coordinator) string {
	var b strings.Builder
	for _, e := range co.Events() {
		b.WriteString(e.String() + "\n")
	}
	return b.String()
}

// A fault-free fleet merges the byte-exact golden stream, one done and
// one merge event per shard, no supervision interventions.
func TestCoordinatorCleanRunMatchesGolden(t *testing.T) {
	var out bytes.Buffer
	co, aggs := mustRun(t, testOptions(t, &fakeLauncher{run: cleanRunner}, &out))
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden")
	}
	if len(aggs) != 1 || aggs[0].Reps != fakePoints {
		t.Fatalf("aggregates = %+v", aggs)
	}
	if n := co.CountEvents(EventDone); n != 6 {
		t.Fatalf("%d done events for 6 shards", n)
	}
	if n := co.CountEvents(EventMerged); n != 6 {
		t.Fatalf("%d merged events for 6 shards", n)
	}
	for _, k := range []EventKind{EventRestart, EventMiss, EventBadOutput, EventInline, EventGaveUp} {
		if n := co.CountEvents(k); n != 0 {
			t.Fatalf("clean run logged %d %s events:\n%s", n, k, eventDump(co))
		}
	}
}

// A worker that dies mid-shard (pipes cut, no done message) is
// restarted with backoff and its shard is re-leased; the merged output
// is still byte-exact.
func TestCoordinatorRestartsCrashedWorker(t *testing.T) {
	var crashed atomic.Int32
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			if lease.Shard == 2 && lease.Attempt == 0 && crashed.CompareAndSwap(0, 1) {
				fmt.Fprintln(w, fakeRecord(0)) // torn partial output
				ctl.die()
				<-ctx.Done()
				return ctx.Err()
			}
			return writeFakeShard(lease, w, progress)
		}
	}}
	var out bytes.Buffer
	co, _ := mustRun(t, testOptions(t, launch, &out))
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after a crash")
	}
	if co.CountEvents(EventExit) < 1 || co.CountEvents(EventRestart) < 1 {
		t.Fatalf("crash left no exit/restart trail:\n%s", eventDump(co))
	}
}

// A worker that goes silent (alive but nothing reaches the
// coordinator) trips the heartbeat deadline, is killed and replaced.
func TestCoordinatorKillsSilentWorker(t *testing.T) {
	var wedged atomic.Int32
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			if lease.Shard == 1 && lease.Attempt == 0 && wedged.CompareAndSwap(0, 1) {
				ctl.mute()
				<-ctx.Done() // wedged until the deadline kill
				return ctx.Err()
			}
			return writeFakeShard(lease, w, progress)
		}
	}}
	var out bytes.Buffer
	o := testOptions(t, launch, &out)
	o.Deadline = 150 * time.Millisecond
	o.StealMinDone = 100 // no stealing: the deadline must do the work
	co, _ := mustRun(t, o)
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after a hang")
	}
	if co.CountEvents(EventMiss) < 1 {
		t.Fatalf("no deadline miss logged:\n%s", eventDump(co))
	}
	if co.CountEvents(EventRestart) < 1 {
		t.Fatalf("silent worker was not replaced:\n%s", eventDump(co))
	}
}

// A shard file that fails size/hash validation (the corrupt chaos) is
// discarded and the shard retried; the retry runs clean by design.
func TestCoordinatorRetriesCorruptedOutput(t *testing.T) {
	var out bytes.Buffer
	launch := &fakeLauncher{run: cleanRunner, chaos: "3:corrupt"}
	co, _ := mustRun(t, testOptions(t, launch, &out))
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after output corruption")
	}
	if co.CountEvents(EventBadOutput) != 1 {
		t.Fatalf("bad-output events:\n%s", eventDump(co))
	}
}

// A shard failure reported by a healthy worker (error message, worker
// survives) requeues the shard without restarting anything.
func TestCoordinatorRequeuesFailedShard(t *testing.T) {
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			if lease.Shard == 4 && lease.Attempt == 0 {
				return errors.New("transient shard failure")
			}
			return writeFakeShard(lease, w, progress)
		}
	}}
	var out bytes.Buffer
	co, _ := mustRun(t, testOptions(t, launch, &out))
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after a shard error")
	}
	if co.CountEvents(EventWorkerErr) != 1 || co.CountEvents(EventRestart) != 0 {
		t.Fatalf("events after shard error:\n%s", eventDump(co))
	}
}

// A shard that fails every lease degrades to the inline fallback and
// the campaign still completes byte-exact.
func TestCoordinatorDegradesToInline(t *testing.T) {
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			if lease.Shard == 5 {
				return errors.New("this shard never works in a worker")
			}
			return writeFakeShard(lease, w, progress)
		}
	}}
	var out bytes.Buffer
	o := testOptions(t, launch, &out)
	o.MaxShardAttempts = 2
	o.Inline = func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
		return writeFakeShard(lease, w, progress)
	}
	co, _ := mustRun(t, o)
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after inline degradation")
	}
	if co.CountEvents(EventInline) != 1 {
		t.Fatalf("inline events:\n%s", eventDump(co))
	}
	if co.CountEvents(EventWorkerErr) != 2 {
		t.Fatalf("worker-err events (attempt cap 2):\n%s", eventDump(co))
	}
}

// Without an inline fallback, an exhausted shard is a campaign error —
// never a silently short output file.
func TestCoordinatorExhaustedShardFailsWithoutInline(t *testing.T) {
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			return errors.New("nothing ever works")
		}
	}}
	o := testOptions(t, launch, io.Discard)
	o.MaxShardAttempts = 2
	co, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	_, err = co.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "no inline fallback") {
		t.Fatalf("run error = %v", err)
	}
}

// A straggler lease is re-leased to an idle worker once completed-shard
// durations expose it; the fresh attempt wins and the stream completes
// without waiting out the straggler.
func TestCoordinatorStealsStragglerShard(t *testing.T) {
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			if lease.Shard == 3 && lease.Attempt == 0 {
				select { // straggles, but would eventually finish
				case <-time.After(300 * time.Millisecond):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return writeFakeShard(lease, w, progress)
		}
	}}
	var out bytes.Buffer
	o := testOptions(t, launch, &out)
	o.Workers = 2
	o.Shards = 4
	o.StealFactor = 0.5
	o.StealMinDone = 2
	start := time.Now()
	co, _ := mustRun(t, o)
	if !bytes.Equal(out.Bytes(), goldenMerged(t)) {
		t.Fatal("merged stream differs from golden after a steal")
	}
	if co.CountEvents(EventSteal) < 1 {
		t.Fatalf("no steal in %s:\n%s", time.Since(start), eventDump(co))
	}
}

// A completion for an already-done shard (the loser of a steal race) is
// logged as benign and its file is removed, not merged twice.
func TestCoordinatorDuplicateCompletionIsBenign(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{o: Options{Workers: 2, Shards: 1}.withDefaults()}
	r := &run{
		c: c, o: c.o,
		slots:   make([]slotState, 2),
		shards:  make([]shardState, 1),
		merger:  exp.NewStreamMerger(nil),
		workdir: dir,
	}
	r.slots[0] = slotState{state: slotBusy, shard: 0}
	r.slots[1] = slotState{state: slotBusy, shard: 0}
	r.shards[0] = shardState{state: shardRunning, running: 2, start: time.Now()}

	write := func(name string) (string, int64, string) {
		path := filepath.Join(dir, name)
		data := []byte(fakeRecord(0) + "\n")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		return path, int64(len(data)), hex.EncodeToString(sum[:])
	}
	winner, n, h := write("shard-0000-a0.jsonl")
	r.handleDone(0, Msg{Type: MsgDone, Shard: 0, Attempt: 0, Out: winner, Bytes: n, SHA256: h, Lines: 1})
	if r.shards[0].state != shardDone {
		t.Fatal("winner did not complete the shard")
	}
	loser, n, h := write("shard-0000-a1.jsonl")
	r.handleDone(1, Msg{Type: MsgDone, Shard: 0, Attempt: 1, Out: loser, Bytes: n, SHA256: h, Lines: 1})
	if c.CountEvents(EventDuplicate) != 1 {
		t.Fatalf("duplicate events: %d", c.CountEvents(EventDuplicate))
	}
	if _, err := os.Stat(loser); !os.IsNotExist(err) {
		t.Fatal("loser's file was not removed")
	}
	if r.nextMerge != 1 {
		t.Fatalf("merge advanced to %d", r.nextMerge)
	}
}

// Run leaks nothing: after a clean campaign and after a context
// cancellation mid-sweep, the goroutine count returns to baseline.
func TestCoordinatorShutdownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	var out bytes.Buffer
	mustRun(t, testOptions(t, &fakeLauncher{run: cleanRunner}, &out))
	waitForGoroutines(t, base, "clean run")

	// Cancel mid-sweep: every lease parks until its context dies.
	launch := &fakeLauncher{run: func(worker int, ctl fakeCtl) ShardRunner {
		return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
			fmt.Fprintln(w, fakeRecord(0)) // some bytes in flight
			<-ctx.Done()
			return ctx.Err()
		}
	}}
	co, err := New(testOptions(t, launch, io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := co.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	waitForGoroutines(t, base, "cancelled run")
}

func waitForGoroutines(t *testing.T, base int, phase string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 { // tolerate runtime timers
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked after %s: %d at start, %d now\n%s",
		phase, base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
