// Package dist is the fault-tolerant campaign coordinator: it fans a
// deterministically sharded campaign (exp.Shard) out to supervised
// worker processes and merges their per-shard JSONL streams back into
// the byte-identical unsharded output.
//
// The design leans entirely on determinism. Because shard i/n of a
// campaign always produces the same bytes, every recovery mechanism is
// free of coordination hazards: a crashed worker's shard is simply
// re-leased (the retry reproduces the lost work exactly), a straggler
// shard can be raced by a second lease on an idle worker (whichever
// finishes first wins, and the loser's identical bytes are discarded),
// and a shard file's integrity is checkable against the size and
// SHA-256 the worker reported as it wrote.
//
// The pieces:
//
//   - proto.go — the line-delimited JSON protocol spoken over worker
//     stdin/stdout (config/lease/shutdown down, hello/heartbeat/
//     progress/done/error up), with typed decode errors.
//   - exec.go — the Launcher/Proc seam between supervision and process
//     transport; LocalLauncher spawns local subprocesses, and SSH or
//     k8s launchers can slot in without touching the coordinator.
//   - worker.go — ServeWorker, the worker-side lease loop with
//     periodic heartbeats and hashed shard output.
//   - coord.go — the Coordinator: deadline-based liveness, capped
//     exponential-backoff restarts, percentile-based work-stealing,
//     streaming prefix merge, and graceful degradation to in-process
//     execution when supervision runs out of options.
//   - chaos.go — the test-only fault-injection harness (SIGKILL
//     mid-shard, heartbeat-silent hangs, torn output files) behind the
//     GONOC_DIST_CHAOS env knob.
//
// cmd/noccoord exposes the coordinator over any worker command line;
// nocsweep -workers N is the one-command local case.
package dist
