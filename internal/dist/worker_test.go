package dist

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// workerConn drives one in-process ServeWorker over pipes the way the
// coordinator drives a subprocess over stdin/stdout.
type workerConn struct {
	t    *testing.T
	inW  *io.PipeWriter
	msgs chan Msg
	errc chan error
}

func startWorker(t *testing.T, run ShardRunner, opts WorkerOptions) *workerConn {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	c := &workerConn{t: t, inW: inW, msgs: make(chan Msg, 256), errc: make(chan error, 1)}
	go func() {
		err := ServeWorker(context.Background(), inR, outW, run, opts)
		outW.Close()
		inR.Close()
		c.errc <- err
	}()
	go func() {
		sc := bufio.NewScanner(outR)
		for sc.Scan() {
			m, err := Decode(sc.Bytes())
			if err != nil {
				t.Errorf("worker emitted undecodable line %q: %v", sc.Bytes(), err)
				continue
			}
			c.msgs <- m
		}
		close(c.msgs)
	}()
	return c
}

func (c *workerConn) send(m Msg) {
	c.t.Helper()
	b, err := Encode(m)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.inW.Write(b); err != nil {
		c.t.Fatalf("send %s: %v", m.Type, err)
	}
}

func (c *workerConn) sendRaw(line string) {
	c.t.Helper()
	if _, err := io.WriteString(c.inW, line+"\n"); err != nil {
		c.t.Fatalf("send raw: %v", err)
	}
}

// expect reads messages until one of the wanted type arrives, skipping
// heartbeats (they interleave freely with everything).
func (c *workerConn) expect(typ string) Msg {
	c.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m, ok := <-c.msgs:
			if !ok {
				c.t.Fatalf("worker output closed while waiting for %s", typ)
			}
			if m.Type == typ {
				return m
			}
			if m.Type == MsgHeartbeat || m.Type == MsgProgress || m.Type == MsgHello {
				continue
			}
			c.t.Fatalf("got %s while waiting for %s: %+v", m.Type, typ, m)
		case <-deadline:
			c.t.Fatalf("timed out waiting for %s", typ)
		}
	}
}

func (c *workerConn) wait() error {
	c.t.Helper()
	select {
	case err := <-c.errc:
		return err
	case <-time.After(5 * time.Second):
		c.t.Fatal("worker did not exit")
		return nil
	}
}

// countingRunner writes one line per synthetic point and reports
// progress, so heartbeat payloads and hashes have something to carry.
func countingRunner(points int, perPoint time.Duration) ShardRunner {
	return func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
		for i := 0; i < points; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fmt.Fprintf(w, "{\"kind\":\"run\",\"shard\":%d,\"point\":%d}\n", lease.Shard, i)
			progress(i+1, points)
			if perPoint > 0 {
				time.Sleep(perPoint)
			}
		}
		return nil
	}
}

// A healthy session: hello, config, one lease served with a done whose
// size/hash match the file on disk, then clean shutdown.
func TestServeWorkerLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	c := startWorker(t, countingRunner(7, 0), WorkerOptions{})
	c.expect(MsgHello)
	c.send(Msg{Type: MsgConfig, HeartbeatMS: 50})
	out := filepath.Join(dir, "shard-0002.jsonl")
	c.send(Msg{Type: MsgLease, Shard: 2, Count: 4, Attempt: 0, Out: out})
	done := c.expect(MsgDone)
	if done.Shard != 2 || done.Attempt != 0 || done.Lines != 7 {
		t.Fatalf("done = %+v", done)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != done.Bytes {
		t.Fatalf("file is %d bytes, done claims %d", len(data), done.Bytes)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != done.SHA256 {
		t.Fatalf("file hash %s, done claims %s", got, done.SHA256)
	}
	c.send(Msg{Type: MsgShutdown})
	if err := c.wait(); err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}

// Closing stdin (the polite EOF shutdown) also exits cleanly.
func TestServeWorkerEOFExit(t *testing.T) {
	c := startWorker(t, countingRunner(1, 0), WorkerOptions{})
	c.expect(MsgHello)
	c.inW.Close()
	if err := c.wait(); err != nil {
		t.Fatalf("EOF exit returned %v", err)
	}
}

// A lease before config is a protocol-order violation: the worker exits
// with ErrUnexpected instead of guessing a heartbeat interval.
func TestServeWorkerLeaseBeforeConfig(t *testing.T) {
	c := startWorker(t, countingRunner(1, 0), WorkerOptions{})
	c.send(Msg{Type: MsgLease, Shard: 0, Count: 1, Out: filepath.Join(t.TempDir(), "s.jsonl")})
	if err := c.wait(); !errors.Is(err, ErrUnexpected) {
		t.Fatalf("lease before config returned %v, want ErrUnexpected", err)
	}
}

// Worker-direction message types arriving at the worker are rejected
// with ErrUnexpected, and garbage lines with ErrMalformed.
func TestServeWorkerRejectsBadInput(t *testing.T) {
	c := startWorker(t, countingRunner(1, 0), WorkerOptions{})
	c.send(Msg{Type: MsgDone, Shard: 0})
	if err := c.wait(); !errors.Is(err, ErrUnexpected) {
		t.Fatalf("done at worker returned %v, want ErrUnexpected", err)
	}

	c = startWorker(t, countingRunner(1, 0), WorkerOptions{})
	c.sendRaw("{{{ not a protocol line")
	if err := c.wait(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("garbage at worker returned %v, want ErrMalformed", err)
	}
}

// A failing shard produces an error message, not a worker death: the
// next lease on the same worker still completes.
func TestServeWorkerShardErrorContinues(t *testing.T) {
	dir := t.TempDir()
	run := func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error {
		if lease.Shard == 0 {
			return errors.New("synthetic shard failure")
		}
		return countingRunner(3, 0)(ctx, lease, w, progress)
	}
	c := startWorker(t, run, WorkerOptions{})
	c.expect(MsgHello)
	c.send(Msg{Type: MsgConfig, HeartbeatMS: 50})
	c.send(Msg{Type: MsgLease, Shard: 0, Count: 2, Out: filepath.Join(dir, "a.jsonl")})
	errMsg := c.expect(MsgError)
	if errMsg.Shard != 0 || !strings.Contains(errMsg.Err, "synthetic shard failure") {
		t.Fatalf("error message = %+v", errMsg)
	}
	c.send(Msg{Type: MsgLease, Shard: 1, Count: 2, Out: filepath.Join(dir, "b.jsonl")})
	if done := c.expect(MsgDone); done.Shard != 1 {
		t.Fatalf("done = %+v", done)
	}
	c.send(Msg{Type: MsgShutdown})
	if err := c.wait(); err != nil {
		t.Fatal(err)
	}
}

// Heartbeats flow during a long-running lease and carry its progress.
func TestServeWorkerHeartbeats(t *testing.T) {
	c := startWorker(t, countingRunner(20, 5*time.Millisecond), WorkerOptions{})
	c.expect(MsgHello)
	c.send(Msg{Type: MsgConfig, HeartbeatMS: 10})
	c.send(Msg{Type: MsgLease, Shard: 1, Count: 2, Out: filepath.Join(t.TempDir(), "s.jsonl")})
	beats, sawProgress := 0, false
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-c.msgs:
			switch m.Type {
			case MsgHeartbeat:
				beats++
				if m.Shard == 1 && m.Done > 0 {
					sawProgress = true
				}
			case MsgDone:
				if beats < 2 {
					t.Fatalf("only %d heartbeats across a ~100ms lease", beats)
				}
				if !sawProgress {
					t.Fatal("no heartbeat carried lease progress")
				}
				c.send(Msg{Type: MsgShutdown})
				if err := c.wait(); err != nil {
					t.Fatal(err)
				}
				return
			}
		case <-deadline:
			t.Fatal("lease never completed")
		}
	}
}

// The CorruptOutput chaos truncates the file but reports the original
// size and hash — the seam the coordinator's validation must catch.
func TestServeWorkerCorruptChaos(t *testing.T) {
	dir := t.TempDir()
	c := startWorker(t, countingRunner(6, 0), WorkerOptions{ChaosSpec: "0:corrupt"})
	c.expect(MsgHello)
	c.send(Msg{Type: MsgConfig, HeartbeatMS: 50})
	out := filepath.Join(dir, "s.jsonl")
	c.send(Msg{Type: MsgLease, Shard: 0, Count: 1, Out: out})
	done := c.expect(MsgDone)
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= done.Bytes {
		t.Fatalf("chaos did not truncate: file %d bytes, reported %d", fi.Size(), done.Bytes)
	}
	if err := validateFile(out, done.Bytes, done.SHA256); err == nil {
		t.Fatal("validateFile accepted the torn file")
	}
	c.send(Msg{Type: MsgShutdown})
	if err := c.wait(); err != nil {
		t.Fatal(err)
	}
}
