package dist

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// Lease names one shard attempt handed to a worker: run shard
// Shard/Count and write the run records to Out. Attempt counts
// re-leases of the same shard (restart or steal); determinism makes
// every attempt's output byte-identical, which is why duplicate
// completions are benign.
type Lease struct {
	Shard, Count, Attempt int
	Out                   string
}

// ShardRunner executes one leased shard, writing its JSONL run records
// to w and reporting progress (completed points, planned points) as
// they finish. The records must be a deterministic function of the
// lease — the whole fault-tolerance story (free retries, benign steal
// races) rests on re-runs reproducing identical bytes.
type ShardRunner func(ctx context.Context, lease Lease, w io.Writer, progress func(done, total int)) error

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// ChaosSpec is the test-only fault-injection spec (see ChaosEnv);
	// production callers pass os.Getenv(ChaosEnv), which is empty
	// outside the chaos tests.
	ChaosSpec string
}

// protoWriter serializes protocol sends from the main loop and the
// heartbeat goroutine onto one stream.
type protoWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *protoWriter) send(m Msg) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err = p.w.Write(b)
	return err
}

// ServeWorker runs the worker half of the protocol: it announces
// itself, waits for the coordinator's config, then serves leases one
// at a time until stdin closes, a shutdown message arrives, or ctx is
// cancelled. Protocol violations return typed errors (ErrMalformed /
// ErrBadField / ErrUnexpected wrapped with context) — never panics —
// so a confused coordinator shows up as a supervisable worker exit.
func ServeWorker(ctx context.Context, in io.Reader, out io.Writer, run ShardRunner, opts WorkerOptions) error {
	pw := &protoWriter{w: out}
	if err := pw.send(Msg{Type: MsgHello, PID: os.Getpid()}); err != nil {
		return err
	}

	// Heartbeat state, shared with the sender goroutine.
	var hb struct {
		sync.Mutex
		active      bool
		shard       int
		done, total int
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var hbOnce sync.Once
	startHeartbeats := func(interval time.Duration) {
		hbOnce.Do(func() {
			go func() {
				t := time.NewTicker(interval)
				defer t.Stop()
				for {
					select {
					case <-hbCtx.Done():
						return
					case <-t.C:
						hb.Lock()
						m := Msg{Type: MsgHeartbeat}
						if hb.active {
							m.Shard, m.Done, m.Total = hb.shard, hb.done, hb.total
						}
						hb.Unlock()
						if err := pw.send(m); err != nil {
							return // coordinator gone; main loop will notice too
						}
					}
				}
			}()
		})
	}

	configured := false
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<14), 1<<20)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, err := Decode(sc.Bytes())
		if err != nil {
			return fmt.Errorf("worker: %w", err)
		}
		switch m.Type {
		case MsgConfig:
			configured = true
			startHeartbeats(time.Duration(m.HeartbeatMS) * time.Millisecond)
		case MsgShutdown:
			return nil
		case MsgLease:
			if !configured {
				return fmt.Errorf("%w: lease before config", ErrUnexpected)
			}
			lease := Lease{Shard: m.Shard, Count: m.Count, Attempt: m.Attempt, Out: m.Out}
			chaos, err := ParseChaos(opts.ChaosSpec, lease.Shard, lease.Attempt)
			if err != nil {
				return err
			}
			hb.Lock()
			hb.active, hb.shard, hb.done, hb.total = true, lease.Shard, 0, 0
			hb.Unlock()
			res, err := runLease(ctx, lease, chaos, pw, &hb.Mutex, run, func(done, total int) {
				hb.Lock()
				hb.done, hb.total = done, total
				hb.Unlock()
			})
			hb.Lock()
			hb.active = false
			hb.Unlock()
			if err != nil {
				if sendErr := pw.send(Msg{Type: MsgError, Shard: lease.Shard, Attempt: lease.Attempt, Err: err.Error()}); sendErr != nil {
					return sendErr
				}
				continue
			}
			if err := pw.send(res); err != nil {
				return err
			}
		case MsgHello, MsgHeartbeat, MsgProgress, MsgDone, MsgError:
			return fmt.Errorf("%w: %s on worker side", ErrUnexpected, m.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("worker: reading leases: %w", err)
	}
	return ctx.Err() // EOF: coordinator closed our stdin — clean exit
}

// hashingFile counts and hashes everything written to the shard file,
// so the done message describes exactly what the worker believes it
// wrote — the coordinator re-hashes the file to catch anything lost
// between that write and its read.
type hashingFile struct {
	f     *os.File
	h     hash.Hash
	n     int64
	lines int
}

func (w *hashingFile) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.h.Write(p[:n])
	w.n += int64(n)
	for _, b := range p[:n] {
		if b == '\n' {
			w.lines++
		}
	}
	return n, err
}

// runLease executes one shard attempt with chaos applied and returns
// the done message describing the written file.
func runLease(ctx context.Context, lease Lease, chaos Chaos, pw *protoWriter, hbMu *sync.Mutex, run ShardRunner, onProgress func(done, total int)) (Msg, error) {
	f, err := os.Create(lease.Out)
	if err != nil {
		return Msg{}, fmt.Errorf("worker: shard %d output: %w", lease.Shard, err)
	}
	hf := &hashingFile{f: f, h: sha256.New()}
	points := 0
	progress := func(done, total int) {
		points++
		onProgress(done, total)
		if chaos.KillAfter > 0 && points == chaos.KillAfter {
			// A real SIGKILL: uncatchable, mid-shard, file torn exactly
			// where the buffer happened to be.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; the signal is synchronous enough
		}
		if chaos.HangAfter > 0 && points == chaos.HangAfter {
			// Wedge with the protocol writer held: progress stops AND
			// heartbeats stop, the signature of a livelocked process.
			// Only the coordinator's deadline kill (or a steal racing
			// past us) ends this. A sleep loop, not select{}: with every
			// goroutine parked the runtime would call it a deadlock and
			// crash, which is a different failure than a hang.
			pw.mu.Lock()
			hbMu.Lock()
			for {
				time.Sleep(time.Hour)
			}
		}
	}
	if err := run(ctx, lease, hf, progress); err != nil {
		f.Close()
		return Msg{}, err
	}
	if err := f.Close(); err != nil {
		return Msg{}, fmt.Errorf("worker: closing shard %d output: %w", lease.Shard, err)
	}
	if chaos.CorruptOutput {
		// Tear the file after the fact but report the pre-truncation
		// size and hash: the coordinator must detect the mismatch.
		_ = os.Truncate(lease.Out, hf.n*2/3)
	}
	return Msg{
		Type: MsgDone, Shard: lease.Shard, Attempt: lease.Attempt, Out: lease.Out,
		Bytes: hf.n, SHA256: hex.EncodeToString(hf.h.Sum(nil)), Lines: hf.lines,
	}, nil
}
