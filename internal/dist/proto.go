package dist

import (
	"encoding/json"
	"errors"
	"fmt"
)

// The coordinator and its workers speak a line-delimited JSON protocol
// over the worker's stdin/stdout: one Msg per line, nothing else on
// the wire. The message set is deliberately tiny — the bulk data (the
// shard's JSONL run records) never travels over the pipe; workers
// write it straight to per-attempt files and only the completion
// announcement (byte count plus content hash) crosses the protocol, so
// a corrupted or truncated shard file is detectable without trusting
// the worker.
//
// Coordinator → worker: config (once, before any lease), lease (one
// shard attempt), shutdown. Worker → coordinator: hello (once, at
// start), heartbeat (periodic liveness + progress), progress
// (event-driven progress), done (shard attempt complete), error (shard
// attempt failed but the worker survives).

// Message types.
const (
	MsgHello     = "hello"
	MsgConfig    = "config"
	MsgLease     = "lease"
	MsgHeartbeat = "heartbeat"
	MsgProgress  = "progress"
	MsgDone      = "done"
	MsgError     = "error"
	MsgShutdown  = "shutdown"
)

// Msg is the single wire struct of the protocol; Type selects which
// fields are meaningful (see the per-type validation in Decode).
type Msg struct {
	Type string `json:"type"`

	// PID identifies the worker process (hello).
	PID int `json:"pid,omitempty"`

	// HeartbeatMS is the worker's send interval (config).
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`

	// Shard/Count/Attempt/Out name one shard attempt (lease; echoed by
	// heartbeat/progress/done/error).
	Shard   int    `json:"shard"`
	Count   int    `json:"count,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Out     string `json:"out,omitempty"`

	// Done/Total report shard progress in completed campaign points
	// (heartbeat, progress).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// Bytes/SHA256/Lines describe the completed shard file as the
	// worker wrote it (done). The coordinator re-hashes the file; a
	// mismatch means the output was torn or corrupted after the write.
	Bytes  int64  `json:"bytes,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	Lines  int    `json:"lines,omitempty"`

	// Err carries the failure text (error).
	Err string `json:"err,omitempty"`
}

// Typed protocol errors. Every malformed, truncated or out-of-order
// input maps to one of these (wrapped with context), never to a panic:
// the coordinator treats a protocol violation as a worker fault to
// supervise, not a reason to die.
var (
	// ErrMalformed marks a line that is not a JSON protocol message.
	ErrMalformed = errors.New("dist: malformed protocol message")
	// ErrBadField marks a structurally valid message whose fields are
	// out of range for its type.
	ErrBadField = errors.New("dist: invalid protocol field")
	// ErrUnexpected marks a well-formed message arriving out of order
	// for the receiver's state (e.g. a lease before config, or a done
	// for a shard never leased).
	ErrUnexpected = errors.New("dist: unexpected protocol message")
)

// Decode parses and validates one protocol line. The returned error
// wraps ErrMalformed or ErrBadField.
func Decode(line []byte) (Msg, error) {
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		return Msg{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := m.validate(); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// Encode renders one protocol line, newline included.
func Encode(m Msg) ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return append(b, '\n'), nil
}

// validate applies the per-type field constraints.
func (m Msg) validate() error {
	switch m.Type {
	case MsgHello, MsgShutdown:
		return nil
	case MsgConfig:
		if m.HeartbeatMS <= 0 {
			return fmt.Errorf("%w: config heartbeat_ms %d", ErrBadField, m.HeartbeatMS)
		}
	case MsgLease:
		if m.Count < 1 || m.Shard < 0 || m.Shard >= m.Count {
			return fmt.Errorf("%w: lease shard %d/%d", ErrBadField, m.Shard, m.Count)
		}
		if m.Attempt < 0 {
			return fmt.Errorf("%w: lease attempt %d", ErrBadField, m.Attempt)
		}
		if m.Out == "" {
			return fmt.Errorf("%w: lease without output path", ErrBadField)
		}
	case MsgHeartbeat, MsgProgress:
		if m.Shard < 0 {
			return fmt.Errorf("%w: %s shard %d", ErrBadField, m.Type, m.Shard)
		}
		if m.Done < 0 || m.Total < 0 || (m.Total > 0 && m.Done > m.Total) {
			return fmt.Errorf("%w: %s progress %d/%d", ErrBadField, m.Type, m.Done, m.Total)
		}
	case MsgDone:
		if m.Shard < 0 || m.Attempt < 0 {
			return fmt.Errorf("%w: done shard %d attempt %d", ErrBadField, m.Shard, m.Attempt)
		}
		if m.Bytes < 0 || m.Lines < 0 {
			return fmt.Errorf("%w: done bytes %d lines %d", ErrBadField, m.Bytes, m.Lines)
		}
	case MsgError:
		if m.Shard < 0 {
			return fmt.Errorf("%w: error shard %d", ErrBadField, m.Shard)
		}
	default:
		return fmt.Errorf("%w: unknown type %q", ErrBadField, m.Type)
	}
	return nil
}
