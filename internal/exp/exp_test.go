package exp

import (
	"bytes"
	"context"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"

	"gonoc/internal/core"
)

// testCampaign is a small but real cross-product: 2 topologies × 1
// size × 2 rates × 3 replications = 12 simulations at reduced cycle
// counts.
func testCampaign() Campaign {
	return Campaign{
		Name:       "test",
		Topologies: []core.TopologyKind{core.Ring, core.Spidergon},
		Nodes:      []int{8},
		Traffics:   []TrafficSpec{{Kind: core.UniformTraffic}},
		FlitRates:  []float64{0.05, 0.2},
		Reps:       3,
		Seed:       42,
		Warmup:     200,
		Measure:    2000,
	}
}

// Campaign expansion is deterministic: two expansions agree exactly,
// replication seeds are distinct, and enumeration order is the
// documented nesting.
func TestPointsDeterministic(t *testing.T) {
	c := testCampaign()
	a, err := c.Points()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2*1*1*2*3 {
		t.Fatalf("expanded %d points", len(a))
	}
	seeds := map[uint64]bool{}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("point %d differs between expansions", i)
		}
		if a[i].Index != i {
			t.Fatalf("point %d has Index %d", i, a[i].Index)
		}
		seeds[a[i].Scenario.Seed] = true
	}
	if len(seeds) != len(a) {
		t.Fatalf("only %d distinct seeds for %d points", len(seeds), len(a))
	}
	// Nesting: first all reps of (ring, rate 0.05), then (ring, 0.2)…
	if a[0].Topo != core.Ring || a[0].FlitRate != 0.05 || a[0].Rep != 0 {
		t.Fatalf("unexpected first point %+v", a[0])
	}
	if a[2].Rep != 2 || a[3].FlitRate != 0.2 || a[3].Rep != 0 {
		t.Fatal("replications are not innermost")
	}
	if a[6].Topo != core.Spidergon {
		t.Fatalf("topology is not outermost: %+v", a[6])
	}
}

// The same campaign emits byte-identical JSONL at parallel 1, 4 and
// 16: scheduling must not leak into the output.
func TestJSONLByteIdenticalAcrossParallelism(t *testing.T) {
	c := testCampaign()
	var outs []*bytes.Buffer
	for _, parallel := range []int{1, 4, 16} {
		var buf bytes.Buffer
		r := Runner{Parallel: parallel}
		if _, err := r.Run(context.Background(), c, NewJSONLWriter(&buf)); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, &buf)
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0].Bytes(), outs[i].Bytes()) {
			t.Fatal("JSONL output differs across -parallel 1/4/16")
		}
	}
	// One run record per (scenario, replication), one summary per grid
	// point.
	lines := strings.Split(strings.TrimRight(outs[0].String(), "\n"), "\n")
	runs, summaries := 0, 0
	for _, l := range lines {
		switch {
		case strings.Contains(l, `"kind":"run"`):
			runs++
		case strings.Contains(l, `"kind":"summary"`):
			summaries++
		default:
			t.Fatalf("unclassifiable record: %s", l)
		}
	}
	if runs != 12 || summaries != 4 {
		t.Fatalf("got %d run and %d summary records, want 12 and 4", runs, summaries)
	}
}

// CSV output is deterministic across parallelism too.
func TestCSVByteIdenticalAcrossParallelism(t *testing.T) {
	c := testCampaign()
	var a, b bytes.Buffer
	if _, err := (Runner{Parallel: 1}).Run(context.Background(), c, NewCSVWriter(&a)); err != nil {
		t.Fatal(err)
	}
	if _, err := (Runner{Parallel: 8}).Run(context.Background(), c, NewCSVWriter(&b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV output differs across parallelism")
	}
	if !strings.HasPrefix(a.String(), "kind,campaign,topo,") {
		t.Fatalf("missing header: %q", strings.SplitN(a.String(), "\n", 2)[0])
	}
}

// Aggregates carry cross-replication means and CI95 half-widths with
// the documented semantics: reps counted, CI zero only when degenerate,
// and the mean equal to the arithmetic mean of the per-run records.
func TestAggregationCI95(t *testing.T) {
	agg := newAggregator()
	lat := []float64{10, 12, 14}
	for rep, v := range lat {
		agg.add(Outcome{
			Campaign: "t",
			Point:    Point{GridIndex: 0, Rep: rep, Topo: core.Ring, Nodes: 8, Traffic: "uniform", FlitRate: 0.1},
			Result:   core.Result{MeanLatency: v, Throughput: 0.5},
		})
	}
	aggs := agg.aggregates()
	if len(aggs) != 1 {
		t.Fatalf("%d aggregates", len(aggs))
	}
	a := aggs[0]
	if a.Reps != 3 {
		t.Fatalf("Reps = %d", a.Reps)
	}
	if math.Abs(a.Latency.Mean-12) > 1e-12 {
		t.Fatalf("latency mean = %v", a.Latency.Mean)
	}
	// sd = 2, stderr = 2/sqrt(3); 3 reps → 2 dof → t = 4.303, not the
	// normal 1.96 (which would understate the interval by 2.2×).
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(a.Latency.CI95-want) > 1e-12 {
		t.Fatalf("latency CI95 = %v, want %v", a.Latency.CI95, want)
	}
	// Identical replications collapse the interval to zero.
	if a.Throughput.CI95 != 0 {
		t.Fatalf("constant metric CI95 = %v", a.Throughput.CI95)
	}
}

// A single replication yields CI95 = 0, never NaN, so records always
// marshal.
func TestAggregationSingleRep(t *testing.T) {
	agg := newAggregator()
	agg.add(Outcome{Point: Point{GridIndex: 0}, Result: core.Result{MeanLatency: 5}})
	a := agg.aggregates()[0]
	if a.Reps != 1 || a.Latency.Mean != 5 || a.Latency.CI95 != 0 {
		t.Fatalf("single-rep aggregate: %+v", a)
	}
}

// Replications genuinely vary: distinct seeds must produce a non-zero
// CI95 on latency at a moderate load.
func TestReplicationsVary(t *testing.T) {
	c := testCampaign()
	aggs, err := RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 4 {
		t.Fatalf("%d aggregates", len(aggs))
	}
	varied := false
	for _, a := range aggs {
		if a.Reps != 3 {
			t.Fatalf("aggregate %v has Reps %d", a, a.Reps)
		}
		if a.Latency.CI95 > 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("all replications produced identical latency: seeds are not independent")
	}
}

// A replication that measured nothing (NaN latency) is skipped, not
// folded in: it must not poison the mean of the replications that did
// measure.
func TestAggregationSkipsNaN(t *testing.T) {
	agg := newAggregator()
	for rep, v := range []float64{10, math.NaN(), 14} {
		agg.add(Outcome{
			Point:  Point{GridIndex: 0, Rep: rep},
			Result: core.Result{MeanLatency: v, Throughput: 0.1},
		})
	}
	a := agg.aggregates()[0]
	if a.Reps != 3 {
		t.Fatalf("Reps = %d", a.Reps)
	}
	if a.Latency.Mean != 12 {
		t.Fatalf("latency mean = %v, want 12 from the two finite replications", a.Latency.Mean)
	}
}

// Explicit zero Warmup and Seed survive expansion: zero is a valid
// choice for both, not a request for defaults.
func TestZeroWarmupAndSeedHonored(t *testing.T) {
	c := testCampaign()
	c.Warmup, c.Seed = 0, 0
	pts, err := c.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Scenario.Warmup != 0 {
			t.Fatalf("explicit zero warmup rewritten to %d", p.Scenario.Warmup)
		}
	}
	c2 := testCampaign()
	c2.Warmup, c2.Seed = 0, 1
	pts2, err := c2.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Scenario.Seed == pts2[0].Scenario.Seed {
		t.Fatal("master seeds 0 and 1 derived the same replication seed")
	}
}

// CSV fields with embedded commas are quoted, not column-shifted.
func TestCSVQuotesFreeFormFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	err := w.Run(Outcome{
		Campaign: "ring,baseline",
		Point:    Point{Topo: core.Ring, Nodes: 8, Traffic: "hotspot, center", FlitRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[1]) != len(rows[0]) {
		t.Fatalf("rows misaligned: %v", rows)
	}
	if rows[1][1] != "ring,baseline" || rows[1][4] != "hotspot, center" {
		t.Fatalf("fields corrupted: %v", rows[1])
	}
}

// Cancelling the context aborts the campaign with the context error.
func TestRunnerCancellation(t *testing.T) {
	c := testCampaign()
	c.Reps = 50 // enough work that cancellation lands mid-campaign
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	r := Runner{Parallel: 2, Progress: func(done, total int) {
		n++
		if n == 3 {
			cancel()
		}
	}}
	_, err := r.Run(ctx, c)
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
}

// An unbuildable grid cell surfaces as an expansion error naming the
// point.
func TestCampaignValidation(t *testing.T) {
	c := testCampaign()
	c.Topologies = []core.TopologyKind{"klein-bottle"}
	if _, err := c.Points(); err == nil {
		t.Fatal("bogus topology expanded without error")
	}
	c = testCampaign()
	c.FlitRates = nil
	if _, err := c.Points(); err == nil {
		t.Fatal("rateless campaign expanded without error")
	}
}

// The runner's progress callback counts every run exactly once, in
// order.
func TestRunnerProgress(t *testing.T) {
	c := testCampaign()
	var seen []int
	r := Runner{Parallel: 4, Progress: func(done, total int) {
		if total != 12 {
			t.Fatalf("total = %d", total)
		}
		seen = append(seen, done)
	}}
	if _, err := r.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 || seen[0] != 1 || seen[11] != 12 {
		t.Fatalf("progress sequence %v", seen)
	}
}
