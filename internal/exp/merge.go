package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"gonoc/internal/core"
)

// IndexRange is one contiguous run of global campaign indexes, both
// ends inclusive.
type IndexRange struct{ Lo, Hi int }

func (r IndexRange) String() string {
	if r.Lo == r.Hi {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// CoverageError reports that a set of merged shard streams does not
// tile the campaign's run indexes exactly: Missing are index ranges no
// input covered (a shard file was forgotten or lost), Duplicated are
// ranges more than one input covered (overlapping shard specs).
// Either way the naive concatenation would be silently wrong, so the
// merge fails instead of producing a short or inflated file.
type CoverageError struct {
	Missing    []IndexRange
	Duplicated []IndexRange
}

func (e *CoverageError) Error() string {
	var parts []string
	if len(e.Missing) > 0 {
		parts = append(parts, fmt.Sprintf("missing run indexes %s", formatRanges(e.Missing)))
	}
	if len(e.Duplicated) > 0 {
		parts = append(parts, fmt.Sprintf("overlapping run indexes %s", formatRanges(e.Duplicated)))
	}
	return "exp: shard coverage: " + strings.Join(parts, "; ")
}

func formatRanges(rs []IndexRange) string {
	ss := make([]string, len(rs))
	for i, r := range rs {
		ss[i] = r.String()
	}
	return strings.Join(ss, ",")
}

// StreamMerger merges shard JSONL streams incrementally: Add appends
// one shard's records (in shard order) the moment that shard is
// available, so a coordinator can emit the merged prefix while later
// shards are still running; Finish validates coverage, appends the
// recomputed summary records and returns the aggregates. Merging the N
// shard files of a campaign reproduces the unsharded output file byte
// for byte. Summary records encountered in the input (from non-shard
// streams) are dropped and recomputed.
//
// One caveat: a replication that measured no packet writes its NaN
// metrics as zeros on the wire; the merger restores them from the
// Ejected counter (zero ejections ⇔ NaN latency family), keeping the
// recomputed summaries exact.
type StreamMerger struct {
	w      io.Writer
	agg    *aggregator
	grids  map[string]int
	inputs int

	// Coverage bookkeeping: how often each global run index appeared.
	// Streams written before the index field existed decode nil and
	// are counted as legacy; validation is skipped for purely legacy
	// input (nothing to validate against) but a mix is rejected.
	counts  map[int]int
	maxIdx  int
	indexed int
	legacy  int
}

// NewStreamMerger returns a merger writing merged run records (and, at
// Finish, summaries) to w; a nil w aggregates without copying records.
func NewStreamMerger(w io.Writer) *StreamMerger {
	return &StreamMerger{w: w, agg: newAggregator(), grids: map[string]int{}, counts: map[int]int{}}
}

// Add consumes one shard stream: run records are copied to the output
// verbatim and folded into the aggregates, summary records are
// dropped. Inputs must arrive in shard order for the merged bytes to
// reproduce the unsharded file.
func (m *StreamMerger) Add(r io.Reader) error {
	ri := m.inputs
	m.inputs++
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		var rec runRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("exp: merge input %d line %d: %w", ri, line, err)
		}
		switch rec.Kind {
		case "summary":
			continue // recomputed at Finish
		case "run":
		default:
			return fmt.Errorf("exp: merge input %d line %d: unknown kind %q", ri, line, rec.Kind)
		}
		if rec.Index != nil {
			m.indexed++
			m.counts[*rec.Index]++
			if *rec.Index > m.maxIdx {
				m.maxIdx = *rec.Index
			}
		} else {
			m.legacy++
		}
		if m.w != nil {
			// Two writes, not append: sc.Bytes aliases the scanner's
			// buffer, which an append could scribble on.
			if _, err := m.w.Write(sc.Bytes()); err != nil {
				return err
			}
			if _, err := m.w.Write([]byte{'\n'}); err != nil {
				return err
			}
		}
		key := fmt.Sprintf("%s|%s|%d|%s|%x", rec.Campaign, rec.Topo, rec.Nodes, rec.Traffic, rec.FlitRate)
		grid, ok := m.grids[key]
		if !ok {
			grid = len(m.grids)
			m.grids[key] = grid
		}
		m.agg.add(Outcome{
			Campaign: rec.Campaign,
			Point: Point{
				GridIndex: grid,
				Rep:       rec.Rep,
				Topo:      rec.Topo,
				Nodes:     rec.Nodes,
				Traffic:   rec.Traffic,
				FlitRate:  rec.FlitRate,
			},
			Result: rec.result(),
		})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exp: merge input %d: %w", ri, err)
	}
	return nil
}

// Finish validates shard coverage, writes the recomputed summary
// records and returns the aggregates. A coverage violation (missing or
// overlapping index ranges) fails before any summary is written, so a
// bad merge never masquerades as a complete file.
func (m *StreamMerger) Finish() ([]Aggregate, error) {
	if err := m.coverage(); err != nil {
		return nil, err
	}
	aggs := m.agg.aggregates()
	if m.w != nil {
		jw := NewJSONLWriter(m.w)
		for _, a := range aggs {
			if err := jw.Summary(a); err != nil {
				return nil, err
			}
		}
	}
	return aggs, nil
}

// coverage checks that the merged run indexes tile [0, maxIdx] exactly
// once each.
func (m *StreamMerger) coverage() error {
	if m.indexed == 0 {
		return nil // legacy streams carry no indexes; nothing to check
	}
	if m.legacy > 0 {
		return fmt.Errorf("exp: shard coverage: %d record(s) without index field mixed with %d indexed ones; re-run the shards with one nocsweep version", m.legacy, m.indexed)
	}
	var missing, dup []int
	for i := 0; i <= m.maxIdx; i++ {
		switch n := m.counts[i]; {
		case n == 0:
			missing = append(missing, i)
		case n > 1:
			dup = append(dup, i)
		}
	}
	if len(missing) == 0 && len(dup) == 0 {
		return nil
	}
	return &CoverageError{Missing: toRanges(missing), Duplicated: toRanges(dup)}
}

// toRanges compresses a sorted index list into contiguous ranges.
func toRanges(idx []int) []IndexRange {
	sort.Ints(idx)
	var out []IndexRange
	for _, i := range idx {
		if n := len(out); n > 0 && out[n-1].Hi == i-1 {
			out[n-1].Hi = i
			continue
		}
		out = append(out, IndexRange{Lo: i, Hi: i})
	}
	return out
}

// MergeRuns reads JSONL campaign streams (shard outputs, in shard
// order) from the readers, copies every run record to w verbatim, and
// appends the summary records an unsharded run would have produced —
// so merging the N shard files of a campaign reproduces the unsharded
// output file byte for byte. It fails with a *CoverageError when the
// inputs miss or duplicate shard index ranges instead of silently
// producing a short file. The aggregates are also returned. It is the
// one-shot form of StreamMerger.
func MergeRuns(readers []io.Reader, w io.Writer) ([]Aggregate, error) {
	m := NewStreamMerger(w)
	for _, r := range readers {
		if err := m.Add(r); err != nil {
			return nil, err
		}
	}
	return m.Finish()
}

// result reconstructs the aggregation-relevant slice of a core.Result
// from the wire record, restoring the NaNs the wire form flattened to
// zero: the latency family is NaN exactly when no packet completed
// within the measurement window.
func (r runRecord) result() core.Result {
	res := core.Result{
		Throughput:       r.Throughput,
		AcceptedFlitRate: r.Accepted,
		MeanLatency:      r.Latency,
		P95Latency:       r.P95Latency,
		MeanHops:         r.MeanHops,
		InjectedPackets:  r.Injected,
		EjectedPackets:   r.Ejected,
		EnergyPerPacket:  r.EnergyPerPk,
	}
	if r.Ejected == 0 {
		nan := math.NaN()
		res.MeanLatency, res.P95Latency, res.MeanHops, res.EnergyPerPacket = nan, nan, nan, nan
	}
	return res
}
