package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gonoc/internal/core"
)

// MergeRuns reads JSONL campaign streams (shard outputs, in shard
// order) from the readers, copies every run record to w verbatim, and
// appends the summary records an unsharded run would have produced —
// so merging the N shard files of a campaign reproduces the unsharded
// output file byte for byte. Summary records encountered in the input
// (from non-shard streams) are dropped and recomputed. The aggregates
// are also returned.
//
// One caveat: a replication that measured no packet writes its NaN
// metrics as zeros on the wire; MergeRuns restores them from the
// Ejected counter (zero ejections ⇔ NaN latency family), keeping the
// recomputed summaries exact.
func MergeRuns(readers []io.Reader, w io.Writer) ([]Aggregate, error) {
	agg := newAggregator()
	grids := map[string]int{}
	for ri, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		line := 0
		for sc.Scan() {
			line++
			var rec runRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, fmt.Errorf("exp: merge input %d line %d: %w", ri, line, err)
			}
			switch rec.Kind {
			case "summary":
				continue // recomputed below
			case "run":
			default:
				return nil, fmt.Errorf("exp: merge input %d line %d: unknown kind %q", ri, line, rec.Kind)
			}
			if w != nil {
				// Two writes, not append: sc.Bytes aliases the scanner's
				// buffer, which an append could scribble on.
				if _, err := w.Write(sc.Bytes()); err != nil {
					return nil, err
				}
				if _, err := w.Write([]byte{'\n'}); err != nil {
					return nil, err
				}
			}
			key := fmt.Sprintf("%s|%s|%d|%s|%x", rec.Campaign, rec.Topo, rec.Nodes, rec.Traffic, rec.FlitRate)
			grid, ok := grids[key]
			if !ok {
				grid = len(grids)
				grids[key] = grid
			}
			agg.add(Outcome{
				Campaign: rec.Campaign,
				Point: Point{
					GridIndex: grid,
					Rep:       rec.Rep,
					Topo:      rec.Topo,
					Nodes:     rec.Nodes,
					Traffic:   rec.Traffic,
					FlitRate:  rec.FlitRate,
				},
				Result: rec.result(),
			})
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("exp: merge input %d: %w", ri, err)
		}
	}
	aggs := agg.aggregates()
	if w != nil {
		jw := NewJSONLWriter(w)
		for _, a := range aggs {
			if err := jw.Summary(a); err != nil {
				return nil, err
			}
		}
	}
	return aggs, nil
}

// result reconstructs the aggregation-relevant slice of a core.Result
// from the wire record, restoring the NaNs the wire form flattened to
// zero: the latency family is NaN exactly when no packet completed
// within the measurement window.
func (r runRecord) result() core.Result {
	res := core.Result{
		Throughput:       r.Throughput,
		AcceptedFlitRate: r.Accepted,
		MeanLatency:      r.Latency,
		P95Latency:       r.P95Latency,
		MeanHops:         r.MeanHops,
		InjectedPackets:  r.Injected,
		EjectedPackets:   r.Ejected,
		EnergyPerPacket:  r.EnergyPerPk,
	}
	if r.Ejected == 0 {
		nan := math.NaN()
		res.MeanLatency, res.P95Latency, res.MeanHops, res.EnergyPerPacket = nan, nan, nan, nan
	}
	return res
}
