package exp

import (
	"strconv"

	"gonoc/internal/sqlitefile"
)

// SQLiteSink archives campaign output as a queryable SQLite database:
// a `runs` table with one row per (scenario, replication) and a
// `summaries` table with one row per aggregated grid point — the same
// records the JSONL and CSV sinks stream, but indexed by rowid and
// readable with any stock sqlite3. Rows accumulate in memory and the
// file is written on Close, so a crashed campaign leaves no partial
// archive. Equal campaigns produce byte-identical databases.
type SQLiteSink struct {
	path      string
	db        *sqlitefile.DB
	runs      *sqlitefile.Table
	summaries *sqlitefile.Table
}

// NewSQLiteSink returns a sink that will write path on Close
// (truncating any existing file).
func NewSQLiteSink(path string) *SQLiteSink {
	db := sqlitefile.New()
	return &SQLiteSink{
		path: path,
		db:   db,
		runs: db.CreateTable("runs",
			`CREATE TABLE runs(campaign TEXT, topo TEXT, nodes INTEGER, traffic TEXT, flit_rate REAL, rep INTEGER, seed TEXT, throughput REAL, accepted REAL, latency REAL, p95_latency REAL, hops REAL, injected INTEGER, ejected INTEGER, energy_per_packet REAL)`,
			15),
		summaries: db.CreateTable("summaries",
			`CREATE TABLE summaries(campaign TEXT, topo TEXT, nodes INTEGER, traffic TEXT, flit_rate REAL, reps INTEGER, throughput REAL, throughput_ci95 REAL, accepted REAL, latency REAL, latency_ci95 REAL, p95_latency REAL, hops REAL)`,
			13),
	}
}

// Run implements Sink.
func (s *SQLiteSink) Run(o Outcome) error {
	s.runs.Append(
		o.Campaign, string(o.Point.Topo), int64(o.Point.Nodes), o.Point.Traffic,
		o.Point.FlitRate, int64(o.Point.Rep), strconv.FormatUint(o.Point.Scenario.Seed, 10),
		o.Result.Throughput, o.Result.AcceptedFlitRate,
		nanToZero(o.Result.MeanLatency), nanToZero(o.Result.P95Latency),
		nanToZero(o.Result.MeanHops), o.Result.InjectedPackets,
		o.Result.EjectedPackets, nanToZero(o.Result.EnergyPerPacket),
	)
	return nil
}

// Summary implements Sink.
func (s *SQLiteSink) Summary(a Aggregate) error {
	s.summaries.Append(
		a.Campaign, string(a.Topo), int64(a.Nodes), a.Traffic, a.FlitRate,
		int64(a.Reps), a.Throughput.Mean, a.Throughput.CI95, a.Accepted.Mean,
		a.Latency.Mean, a.Latency.CI95, a.P95Latency.Mean, a.MeanHops.Mean,
	)
	return nil
}

// Close assembles and writes the database file.
func (s *SQLiteSink) Close() error {
	return s.db.WriteFile(s.path)
}
