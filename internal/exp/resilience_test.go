package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"gonoc/internal/core"
)

// A lost shard file cannot silently shorten the merged output: merging
// shards 0 and 2 of 3 fails with a CoverageError naming the missing
// index range, not a plausible-looking short file.
func TestMergeDetectsMissingShard(t *testing.T) {
	c := testCampaign() // 12 points; shard i of 3 covers [4i, 4i+4)
	var shards [][]byte
	for i := 0; i < 3; i++ {
		shards = append(shards, runJSONL(t, Runner{Parallel: 2, Shard: Shard{Index: i, Count: 3}}, c))
	}
	_, err := MergeRuns(byteReaders([][]byte{shards[0], shards[2]}), io.Discard)
	var cov *CoverageError
	if !errors.As(err, &cov) {
		t.Fatalf("merge with a missing shard returned %v, want CoverageError", err)
	}
	if want := []IndexRange{{Lo: 4, Hi: 7}}; !reflect.DeepEqual(cov.Missing, want) {
		t.Fatalf("missing ranges %v, want %v", cov.Missing, want)
	}
	if len(cov.Duplicated) != 0 {
		t.Fatalf("unexpected duplicated ranges %v", cov.Duplicated)
	}
	if !strings.Contains(err.Error(), "missing run indexes 4-7") {
		t.Fatalf("error does not name the hole: %v", err)
	}
}

// Overlapping shard inputs (the same shard merged twice) are named in
// the same way instead of inflating the output.
func TestMergeDetectsOverlappingShards(t *testing.T) {
	c := testCampaign()
	var shards [][]byte
	for i := 0; i < 3; i++ {
		shards = append(shards, runJSONL(t, Runner{Parallel: 2, Shard: Shard{Index: i, Count: 3}}, c))
	}
	_, err := MergeRuns(byteReaders([][]byte{shards[0], shards[1], shards[1], shards[2]}), io.Discard)
	var cov *CoverageError
	if !errors.As(err, &cov) {
		t.Fatalf("merge with a doubled shard returned %v, want CoverageError", err)
	}
	if want := []IndexRange{{Lo: 4, Hi: 7}}; !reflect.DeepEqual(cov.Duplicated, want) {
		t.Fatalf("duplicated ranges %v, want %v", cov.Duplicated, want)
	}
	if !strings.Contains(err.Error(), "overlapping run indexes 4-7") {
		t.Fatalf("error does not name the overlap: %v", err)
	}
}

var indexField = regexp.MustCompile(`"index":\d+,`)

// Streams written before the index field existed (legacy) still merge:
// with nothing to validate against, coverage checking is skipped — but
// mixing legacy and indexed records is rejected, because a partial
// check would claim more than it proves.
func TestMergeLegacyAndMixedStreams(t *testing.T) {
	c := testCampaign()
	var shards, legacy [][]byte
	for i := 0; i < 2; i++ {
		s := runJSONL(t, Runner{Parallel: 2, Shard: Shard{Index: i, Count: 2}}, c)
		shards = append(shards, s)
		legacy = append(legacy, indexField.ReplaceAll(s, nil))
	}
	aggs, err := MergeRuns(byteReaders(legacy), io.Discard)
	if err != nil {
		t.Fatalf("all-legacy merge failed: %v", err)
	}
	if len(aggs) != 4 {
		t.Fatalf("legacy merge produced %d aggregates, want 4", len(aggs))
	}
	_, err = MergeRuns(byteReaders([][]byte{legacy[0], shards[1]}), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "without index") {
		t.Fatalf("mixed legacy/indexed merge returned %v", err)
	}
}

// Concurrent appends from several cache handles (the multi-process
// sharding pattern) are crash-safe: each record is one O_APPEND write,
// so records never interleave and a reopened cache sees every one.
func TestFileCacheConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	const handles, perHandle = 4, 50
	var wg sync.WaitGroup
	for h := 0; h < handles; h++ {
		cache, err := OpenFileCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		wg.Add(1)
		go func(h int, cache *FileCache) {
			defer wg.Done()
			for i := 0; i < perHandle; i++ {
				key := fmt.Sprintf("key-%d-%d", h, i)
				if err := cache.Store(key, core.Result{Throughput: float64(h*perHandle + i)}); err != nil {
					t.Errorf("store %s: %v", key, err)
				}
			}
		}(h, cache)
	}
	wg.Wait()

	// Every line of the shared file must be a whole record.
	data, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != handles*perHandle {
		t.Fatalf("%d lines on disk, want %d", len(lines), handles*perHandle)
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("line %d is torn: %q", i, line)
		}
	}

	reopened, err := OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != handles*perHandle {
		t.Fatalf("reopened cache has %d entries, want %d", reopened.Len(), handles*perHandle)
	}
	for h := 0; h < handles; h++ {
		for i := 0; i < perHandle; i++ {
			got, ok := reopened.Lookup(fmt.Sprintf("key-%d-%d", h, i))
			if !ok || got.Throughput != float64(h*perHandle+i) {
				t.Fatalf("entry %d-%d lost or mangled: %+v ok=%v", h, i, got, ok)
			}
		}
	}
}

// cancelAfter cancels a context after n delivered run records — the
// SIGINT-mid-campaign shape.
type cancelAfter struct {
	inner  Sink
	n      int
	cancel context.CancelFunc
	seen   int
}

func (c *cancelAfter) Run(o Outcome) error {
	if err := c.inner.Run(o); err != nil {
		return err
	}
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	return nil
}

func (c *cancelAfter) Summary(a Aggregate) error { return c.inner.Summary(a) }

// A campaign cancelled mid-run leaves no torn sink record: every JSONL
// line already emitted parses whole, and the SQLite sink closed after
// the cancellation is a structurally valid database of the partial
// results — the guarantee behind nocsweep's graceful SIGINT path.
func TestRunCancelledLeavesCleanSinks(t *testing.T) {
	c := testCampaign()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var jsonl bytes.Buffer
	dbPath := filepath.Join(t.TempDir(), "partial.sqlite")
	sq := NewSQLiteSink(dbPath)
	sink := &cancelAfter{inner: MultiSink{NewJSONLWriter(&jsonl), sq}, n: 3, cancel: cancel}

	_, err := Runner{Parallel: 2}.Run(ctx, c, sink)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if err := sq.Close(); err != nil {
		t.Fatalf("closing the SQLite sink after cancellation: %v", err)
	}

	if jsonl.Len() == 0 {
		t.Fatal("no partial results were flushed")
	}
	if !bytes.HasSuffix(jsonl.Bytes(), []byte("\n")) {
		t.Fatal("JSONL stream ends mid-record")
	}
	lines := bytes.Split(bytes.TrimSuffix(jsonl.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("only %d records before cancellation, want >= 3", len(lines))
	}
	for i, line := range lines {
		var rec runRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind != "run" {
			t.Fatalf("line %d is torn or foreign after cancel: %q (%v)", i, line, err)
		}
	}

	db, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatalf("SQLite file missing after cancelled run: %v", err)
	}
	if !bytes.HasPrefix(db, []byte("SQLite format 3\x00")) {
		t.Fatal("SQLite file has a torn header")
	}
	if bin, err := exec.LookPath("sqlite3"); err == nil {
		out, err := exec.Command(bin, dbPath, "PRAGMA integrity_check;").CombinedOutput()
		if err != nil || strings.TrimSpace(string(out)) != "ok" {
			t.Fatalf("integrity_check after cancellation: %v %q", err, out)
		}
	}
}
