package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Completions are emitted in strict index order even when workers
// finish out of order.
func TestOrderedEmitsInIndexOrder(t *testing.T) {
	const n = 64
	var emitted []int
	err := Ordered(context.Background(), n, 8,
		func(_ context.Context, i int) error {
			// Earlier indices sleep longer, forcing out-of-order completion.
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return nil
		},
		func(i int) error {
			emitted = append(emitted, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d of %d", len(emitted), n)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emitted[%d] = %d", i, v)
		}
	}
}

// Emission streams: index 0 is emitted while later jobs are still
// pending, not after the whole batch completes. Later jobs block until
// the first emission has been observed; a batch-then-emit
// implementation would deadlock here (bounded by the timeout).
func TestOrderedStreams(t *testing.T) {
	firstEmit := make(chan struct{})
	var once sync.Once
	err := Ordered(context.Background(), 16, 2,
		func(_ context.Context, i int) error {
			if i >= 2 {
				select {
				case <-firstEmit:
				case <-time.After(5 * time.Second):
					return errors.New("no emission while jobs pending: results are not streamed")
				}
			}
			return nil
		},
		func(i int) error {
			once.Do(func() { close(firstEmit) })
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// The first run error by index is returned and emission halts before
// the failed index's successors.
func TestOrderedErrorHaltsEmission(t *testing.T) {
	boom := errors.New("boom")
	var emitted []int
	err := Ordered(context.Background(), 8, 4,
		func(_ context.Context, i int) error {
			if i == 3 {
				return fmt.Errorf("job %d: %w", i, boom)
			}
			return nil
		},
		func(i int) error {
			emitted = append(emitted, i)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	for _, i := range emitted {
		if i >= 3 {
			t.Fatalf("emitted index %d after failure at 3", i)
		}
	}
}

// An emit error propagates and cancels outstanding work.
func TestOrderedEmitError(t *testing.T) {
	sink := errors.New("sink full")
	var ran atomic.Int64
	err := Ordered(context.Background(), 100, 2,
		func(_ context.Context, i int) error {
			ran.Add(1)
			return nil
		},
		func(i int) error {
			if i == 1 {
				return sink
			}
			return nil
		})
	if !errors.Is(err, sink) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 100 {
		t.Error("emit error did not cancel scheduling")
	}
}

// A cancelled context stops scheduling and is reported.
func TestOrderedContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Ordered(ctx, 1000, 2,
		func(_ context.Context, i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Error("cancel did not stop scheduling")
	}
}

// Zero jobs is a no-op; nil emit is allowed; Map mirrors Ordered.
func TestOrderedDegenerate(t *testing.T) {
	if err := Ordered(context.Background(), 0, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := Map(context.Background(), 10, 0, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
