// Package pool provides the shared parallel-execution engine of the
// experiment layer: a bounded worker pool that runs independent jobs
// concurrently while delivering their completions to a single consumer
// in strict index order. Both core's scenario sweeps and exp's campaign
// runner delegate to it, so every batch of simulations in the module
// shares one scheduling and cancellation discipline.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Ordered executes run(ctx, 0) … run(ctx, n-1) with at most parallel
// concurrent workers (parallel <= 0 selects GOMAXPROCS), then calls
// emit(i) for each successfully completed index, sequentially and in
// strict ascending order, from a single goroutine. emit(i) is invoked
// as soon as jobs 0..i have all completed, so results stream to the
// consumer while later jobs are still running — with identical emission
// order at any parallelism.
//
// The first run error (by index), the first emit error, or the context
// cancellation — in that priority — is returned, and any of them stops
// new work from being scheduled. emit may be nil when only the side
// effects of run matter.
func Ordered(ctx context.Context, n, parallel int, run func(ctx context.Context, i int) error, emit func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	outer := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	feed := make(chan int)
	done := make(chan int)

	go func() {
		defer close(feed)
		for i := 0; i < n; i++ {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				errs[i] = run(ctx, i)
				if errs[i] != nil {
					cancel()
				}
				select {
				case done <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Reorder completions into ascending index order and emit greedily.
	// Emission halts at the first failed index: a consumer never sees a
	// gap in the stream.
	var emitErr error
	halted := false
	completed := make(map[int]bool)
	next := 0
	for i := range done {
		completed[i] = true
		for completed[next] {
			delete(completed, next)
			if errs[next] != nil {
				halted = true
			}
			if emit != nil && !halted && emitErr == nil {
				if err := emit(next); err != nil {
					emitErr = err
					cancel()
				}
			}
			next++
		}
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if emitErr != nil {
		return emitErr
	}
	return outer.Err()
}

// Map is the barrier form of Ordered: it runs all jobs and returns only
// after every worker has finished, with no streaming consumer.
func Map(ctx context.Context, n, parallel int, run func(ctx context.Context, i int) error) error {
	return Ordered(ctx, n, parallel, run, nil)
}
