package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"gonoc/internal/core"
)

// Outcome couples one campaign point with its measured result. Sinks
// receive outcomes in campaign enumeration order regardless of how the
// runs were scheduled.
type Outcome struct {
	// Campaign echoes the campaign name.
	Campaign string
	// Point is the expanded cell that produced the result.
	Point Point
	// Result holds the measured performance indexes.
	Result core.Result
}

// Sink consumes a campaign's output: one Run call per (scenario,
// replication) in enumeration order, then one Summary call per grid
// point, also in enumeration order. Sinks are driven from a single
// goroutine and need no internal locking.
type Sink interface {
	Run(Outcome) error
	Summary(Aggregate) error
}

// MultiSink fans every record out to each member in order.
type MultiSink []Sink

// Run implements Sink.
func (m MultiSink) Run(o Outcome) error {
	for _, s := range m {
		if err := s.Run(o); err != nil {
			return err
		}
	}
	return nil
}

// Summary implements Sink.
func (m MultiSink) Summary(a Aggregate) error {
	for _, s := range m {
		if err := s.Summary(a); err != nil {
			return err
		}
	}
	return nil
}

// runRecord is the JSONL wire form of one replication. Index is the
// global campaign enumeration position (Point.Index), carried on the
// wire so shard-merge coverage validation can prove that a set of
// shard files tiles the campaign exactly; it is a pointer so streams
// written before the field existed decode as nil (legacy) rather than
// as a false position 0.
type runRecord struct {
	Kind     string            `json:"kind"`
	Index    *int              `json:"index,omitempty"`
	Campaign string            `json:"campaign,omitempty"`
	Topo     core.TopologyKind `json:"topo"`
	Nodes    int               `json:"nodes"`
	Traffic  string            `json:"traffic"`
	FlitRate float64           `json:"flit_rate"`
	Rep      int               `json:"rep"`
	Seed     uint64            `json:"seed"`

	Throughput  float64 `json:"throughput"`
	Accepted    float64 `json:"accepted"`
	Latency     float64 `json:"latency"`
	P95Latency  float64 `json:"p95_latency"`
	MeanHops    float64 `json:"hops"`
	Injected    uint64  `json:"injected"`
	Ejected     uint64  `json:"ejected"`
	EnergyPerPk float64 `json:"energy_per_packet"`
}

// summaryRecord is the JSONL wire form of one aggregated grid point.
type summaryRecord struct {
	Kind string `json:"kind"`
	Aggregate
}

// JSONLWriter streams one compact JSON object per line: a "run" record
// per (scenario, replication) followed by a "summary" record per grid
// point. Identical campaigns produce byte-identical streams at any
// runner parallelism.
type JSONLWriter struct {
	w io.Writer
}

// NewJSONLWriter returns a sink writing to w. The caller owns w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

func (j *JSONLWriter) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exp: encoding record: %w", err)
	}
	b = append(b, '\n')
	_, err = j.w.Write(b)
	return err
}

// Run implements Sink.
func (j *JSONLWriter) Run(o Outcome) error {
	idx := o.Point.Index
	return j.writeLine(runRecord{
		Kind:        "run",
		Index:       &idx,
		Campaign:    o.Campaign,
		Topo:        o.Point.Topo,
		Nodes:       o.Point.Nodes,
		Traffic:     o.Point.Traffic,
		FlitRate:    o.Point.FlitRate,
		Rep:         o.Point.Rep,
		Seed:        o.Point.Scenario.Seed,
		Throughput:  o.Result.Throughput,
		Accepted:    o.Result.AcceptedFlitRate,
		Latency:     nanToZero(o.Result.MeanLatency),
		P95Latency:  nanToZero(o.Result.P95Latency),
		MeanHops:    nanToZero(o.Result.MeanHops),
		Injected:    o.Result.InjectedPackets,
		Ejected:     o.Result.EjectedPackets,
		EnergyPerPk: nanToZero(o.Result.EnergyPerPacket),
	})
}

// Summary implements Sink.
func (j *JSONLWriter) Summary(a Aggregate) error {
	return j.writeLine(summaryRecord{Kind: "summary", Aggregate: a})
}

// CSVWriter streams the same records as JSONLWriter in a flat CSV
// layout: a header, one "run" row per replication, then one "summary"
// row per grid point with the confidence columns filled. Fields are
// quoted by encoding/csv, so free-form campaign names and traffic
// labels cannot shift columns.
type CSVWriter struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter returns a sink writing to w. The caller owns w.
func NewCSVWriter(w io.Writer) *CSVWriter { return &CSVWriter{w: csv.NewWriter(w)} }

func (c *CSVWriter) write(row []string) error {
	if !c.wroteHeader {
		c.wroteHeader = true
		header := []string{"kind", "campaign", "topo", "nodes", "traffic", "flit_rate", "rep", "seed", "reps",
			"throughput", "throughput_ci95", "accepted", "latency", "latency_ci95", "p95_latency", "hops"}
		if err := c.w.Write(header); err != nil {
			return err
		}
	}
	if err := c.w.Write(row); err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

// g renders a float the way %g does, deterministically.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Run implements Sink.
func (c *CSVWriter) Run(o Outcome) error {
	return c.write([]string{
		"run", o.Campaign, string(o.Point.Topo), strconv.Itoa(o.Point.Nodes), o.Point.Traffic,
		g(o.Point.FlitRate), strconv.Itoa(o.Point.Rep), strconv.FormatUint(o.Point.Scenario.Seed, 10), "",
		g(o.Result.Throughput), "", g(o.Result.AcceptedFlitRate),
		g(nanToZero(o.Result.MeanLatency)), "", g(nanToZero(o.Result.P95Latency)),
		g(nanToZero(o.Result.MeanHops)),
	})
}

// Summary implements Sink.
func (c *CSVWriter) Summary(a Aggregate) error {
	return c.write([]string{
		"summary", a.Campaign, string(a.Topo), strconv.Itoa(a.Nodes), a.Traffic,
		g(a.FlitRate), "", "", strconv.Itoa(a.Reps),
		g(a.Throughput.Mean), g(a.Throughput.CI95), g(a.Accepted.Mean),
		g(a.Latency.Mean), g(a.Latency.CI95), g(a.P95Latency.Mean),
		g(a.MeanHops.Mean),
	})
}

// nanToZero maps NaN (no observations, e.g. a zero-rate run) to zero so
// records always encode.
func nanToZero(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}
