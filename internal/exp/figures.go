package exp

import (
	"context"
	"fmt"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/stats"
)

// The simulated paper figures (5 through 11) are regenerated here as
// campaign grids: every curve point is a grid cell replicated Reps
// times under split seeds, so each table value carries a cross-
// replication mean and CI95 half-width. The analytic figures (2, 3)
// stay in internal/core — they need no simulation.

// FigureOpts parameterises the figure regenerators. Zero-value fields
// fall back to the defaults of DefaultFigureOpts, which match the
// paper's ranges (8–32 nodes, loads from well below to well past
// saturation).
type FigureOpts struct {
	// Sizes lists the node counts N simulated for Figures 5-11.
	Sizes []int
	// LoadFractions, for the hot-spot figures, are multiples of the
	// analytic saturation rate λ_sat = k·sink/(sources·flits) at which
	// each curve is sampled.
	LoadFractions []float64
	// UniformFlitRates, for the homogeneous figures, are per-source
	// injection rates in flits/cycle (the paper's x axis) sampled
	// identically for every topology.
	UniformFlitRates []float64
	// Warmup and Measure are the per-run cycle counts.
	Warmup, Measure uint64
	// Seed derives all run seeds.
	Seed uint64
	// Reps is the number of replications behind every figure point;
	// the CI95 columns summarise across them.
	Reps int
	// Parallel bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Parallel int
	// CITarget, when positive, adds replications per point until the
	// CI95 half-width is within CITarget of the mean (see Runner).
	CITarget float64
	// MaxReps caps adaptive replications per point (see Runner).
	MaxReps int
	// Cache, when set, replays previously measured grid points instead
	// of re-simulating them (see Runner).
	Cache Cache
}

// DefaultFigureOpts returns the ranges used by cmd/nocfigs: the paper's
// node counts, a load grid spanning 0.2×–1.6× saturation, and three
// replications per point.
func DefaultFigureOpts() FigureOpts {
	return FigureOpts{
		Sizes:            []int{8, 16, 24, 32},
		LoadFractions:    []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6},
		UniformFlitRates: []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5},
		Warmup:           2000,
		Measure:          20000,
		Seed:             1,
		Reps:             3,
	}
}

func (o FigureOpts) withDefaults() FigureOpts {
	d := DefaultFigureOpts()
	if len(o.Sizes) == 0 {
		o.Sizes = d.Sizes
	}
	if len(o.LoadFractions) == 0 {
		o.LoadFractions = d.LoadFractions
	}
	if len(o.UniformFlitRates) == 0 {
		o.UniformFlitRates = d.UniformFlitRates
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	return o
}

// runner builds the campaign runner the figure's grids execute on.
func (o FigureOpts) runner() Runner {
	return Runner{Parallel: o.Parallel, Cache: o.Cache, CITarget: o.CITarget, MaxReps: o.MaxReps}
}

// campaign seeds a figure campaign with the options' run parameters.
func (o FigureOpts) campaign(name string) Campaign {
	return Campaign{
		Name:    name,
		Reps:    o.Reps,
		Seed:    o.Seed,
		Warmup:  o.Warmup,
		Measure: o.Measure,
	}
}

// topoSet is the trio the paper simulates.
var topoSet = []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh}

// evenSize rounds n up to even (spidergon requires it) so one size list
// serves all topologies.
func evenSize(n int) int {
	if n%2 == 1 {
		return n + 1
	}
	return n
}

// evenSizes normalizes and dedups the option's size list.
func evenSizes(sizes []int) []int {
	var out []int
	seen := map[int]bool{}
	for _, n := range sizes {
		e := evenSize(n)
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// Fig5Validation regenerates Figure 5: the analytically estimated
// average distance against the simulation-measured mean hop count,
// under light uniform traffic, for each topology and size. The
// simulated columns carry CI95 half-widths across replications.
func Fig5Validation(ctx context.Context, o FigureOpts) (*core.Table, error) {
	o = o.withDefaults()
	sizes := evenSizes(o.Sizes)
	c := o.campaign("fig5")
	c.Topologies = topoSet
	c.Nodes = sizes
	c.Traffics = []TrafficSpec{{Kind: core.UniformTraffic}}
	// The seed study samples λ = 0.01 packets/cycle; campaigns speak
	// flits/cycle, so scale by the packet length.
	c.FlitRates = []float64{0.01 * float64(noc.DefaultConfig().PacketLen)}

	aggs, err := o.runner().Run(ctx, c)
	if err != nil {
		return nil, err
	}

	t := &core.Table{Title: "Figure 5: analytical and simulation-based average network distances (hops)", XName: "N"}
	analytic := map[core.TopologyKind]*stats.Series{}
	sim := map[core.TopologyKind]*stats.Series{}
	for _, kind := range topoSet {
		analytic[kind] = &stats.Series{Name: "analytic-" + string(kind)}
		sim[kind] = &stats.Series{Name: "sim-" + string(kind)}
	}
	for _, kind := range topoSet {
		for _, n := range sizes {
			var an float64
			switch kind {
			case core.Ring:
				an = analysis.RingAvgDistanceExact(n)
			case core.Spidergon:
				an = analysis.SpidergonAvgDistanceExact(n)
			case core.Mesh:
				cols, rows := analysis.IdealMeshDims(n)
				an = analysis.MeshAvgDistanceExact(cols, rows)
			}
			analytic[kind].Append(float64(n), an)
		}
	}
	for _, a := range aggs {
		sim[a.Topo].AppendCI(float64(a.Nodes), a.MeanHops.Mean, a.MeanHops.CI95)
	}
	for _, kind := range topoSet {
		t.Add(analytic[kind])
	}
	for _, kind := range topoSet {
		t.Add(sim[kind])
	}
	return t, nil
}

// Fig6HotspotThroughput regenerates Figure 6: aggregate NoC throughput
// versus injection rate with a single hot-spot destination. Mesh curves
// come in corner- and center-target variants, since the paper samples
// "different points on the Mesh topology".
func Fig6HotspotThroughput(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return hotspotFigure(ctx, o, 1, "Figure 6: NoC throughput, one hot-spot destination node", false)
}

// Fig7HotspotLatency regenerates Figure 7: mean packet latency under a
// single hot-spot destination.
func Fig7HotspotLatency(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return hotspotFigure(ctx, o, 1, "Figure 7: NoC latency, one hot-spot destination node", true)
}

// Fig8DoubleHotspotThroughput regenerates Figure 8: throughput with two
// hot-spot destinations across the paper's placements.
func Fig8DoubleHotspotThroughput(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return hotspotFigure(ctx, o, 2, "Figure 8: NoC throughput, two hot-spot destination nodes", false)
}

// Fig9DoubleHotspotLatency regenerates Figure 9: latency with two
// hot-spot destinations.
func Fig9DoubleHotspotLatency(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return hotspotFigure(ctx, o, 2, "Figure 9: NoC latency, two hot-spot destination nodes", true)
}

// hotspotFigure runs the single- or double-hot-spot grid as one
// campaign per curve (each curve's rate grid is a fraction ladder of
// its own analytic saturation rate), executed as a single batch.
func hotspotFigure(ctx context.Context, o FigureOpts, k int, title string, latency bool) (*core.Table, error) {
	o = o.withDefaults()
	plen := noc.DefaultConfig().PacketLen
	var names []string
	var campaigns []Campaign
	for _, n := range evenSizes(o.Sizes) {
		for _, kind := range topoSet {
			for _, v := range hotspotVariants(kind, n, k) {
				lamSat := analysis.HotspotSaturationLambda(len(v.targets), 1, n-len(v.targets), plen)
				rates := make([]float64, len(o.LoadFractions))
				for i, f := range o.LoadFractions {
					rates[i] = f * lamSat * float64(plen)
				}
				name := fmt.Sprintf("%s-%d%s", kind, n, v.suffix)
				c := o.campaign(name)
				c.Topologies = []core.TopologyKind{kind}
				c.Nodes = []int{n}
				c.Traffics = []TrafficSpec{{Kind: core.HotSpotTraffic, HotSpots: v.targets, Label: "hotspot" + v.suffix}}
				c.FlitRates = rates
				names = append(names, name)
				campaigns = append(campaigns, c)
			}
		}
	}
	aggs, err := o.runner().RunAll(ctx, campaigns)
	if err != nil {
		return nil, err
	}
	return curveTable(title, names, aggs, latency), nil
}

// curveTable folds aggregates into one series per campaign name, in
// the given order, carrying the CI95 half-width of each point.
func curveTable(title string, names []string, aggs []Aggregate, latency bool) *core.Table {
	t := &core.Table{Title: title, XName: "injection rate (flits/cycle/source)"}
	series := map[string]*stats.Series{}
	for _, name := range names {
		series[name] = &stats.Series{Name: name}
		t.Add(series[name])
	}
	for _, a := range aggs {
		s, ok := series[a.Campaign]
		if !ok {
			continue
		}
		m := a.Throughput
		if latency {
			m = a.Latency
		}
		s.AppendCI(a.FlitRate, m.Mean, m.CI95)
	}
	return t
}

// hotspotVariant names one target placement for a topology.
type hotspotVariant struct {
	suffix  string
	targets []int
}

// hotspotVariants enumerates the paper's placements: for k=1, ring and
// spidergon use node 0 (symmetric), the mesh is sampled at corner and
// center; for k=2 the §3.1.2 scenarios A/B (and C on meshes).
func hotspotVariants(kind core.TopologyKind, n, k int) []hotspotVariant {
	meshFamily := kind == core.Mesh || kind == core.FactorMesh || kind == core.IrregularMesh || kind == core.Torus
	if k == 1 {
		if meshFamily {
			return []hotspotVariant{
				{suffix: "-corner", targets: []int{core.SingleHotspot(kind, n, false, 0, 0)}},
				{suffix: "-center", targets: []int{core.SingleHotspot(kind, n, true, 0, 0)}},
			}
		}
		return []hotspotVariant{{suffix: "", targets: []int{0}}}
	}
	placements := []core.Placement{core.PlacementA, core.PlacementB}
	if meshFamily {
		placements = append(placements, core.PlacementC)
	}
	var out []hotspotVariant
	for _, p := range placements {
		targets, err := core.DoubleHotspots(kind, n, p, 0, 0)
		if err != nil {
			continue
		}
		out = append(out, hotspotVariant{suffix: fmt.Sprintf("-%c", p), targets: targets})
	}
	return out
}

// Fig10UniformThroughput regenerates Figure 10: aggregate throughput
// under the homogeneous uniform scenario, sampled at identical
// injection rates for every topology.
func Fig10UniformThroughput(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return uniformFigure(ctx, o, "Figure 10: NoC throughput, homogeneous sources and destinations", false)
}

// Fig11UniformLatency regenerates Figure 11: mean latency under the
// homogeneous uniform scenario.
func Fig11UniformLatency(ctx context.Context, o FigureOpts) (*core.Table, error) {
	return uniformFigure(ctx, o, "Figure 11: NoC latency, homogeneous sources and destinations", true)
}

// uniformFigure runs the homogeneous grid as one campaign crossing
// topologies × sizes × rates, then splits the aggregates into one
// curve per (topology, size).
func uniformFigure(ctx context.Context, o FigureOpts, title string, latency bool) (*core.Table, error) {
	o = o.withDefaults()
	sizes := evenSizes(o.Sizes)
	c := o.campaign("uniform")
	c.Topologies = topoSet
	c.Nodes = sizes
	c.Traffics = []TrafficSpec{{Kind: core.UniformTraffic}}
	c.FlitRates = o.UniformFlitRates

	aggs, err := o.runner().Run(ctx, c)
	if err != nil {
		return nil, err
	}

	t := &core.Table{Title: title, XName: "injection rate (flits/cycle/source)"}
	series := map[string]*stats.Series{}
	for _, n := range sizes {
		for _, kind := range topoSet {
			name := fmt.Sprintf("%s-%d", kind, n)
			series[name] = &stats.Series{Name: name}
			t.Add(series[name])
		}
	}
	for _, a := range aggs {
		s, ok := series[fmt.Sprintf("%s-%d", a.Topo, a.Nodes)]
		if !ok {
			continue
		}
		m := a.Throughput
		if latency {
			m = a.Latency
		}
		s.AppendCI(a.FlitRate, m.Mean, m.CI95)
	}
	return t, nil
}
