package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/stats"
)

// smallOpts keeps per-test figure generation fast: two replications
// still exercise the CI95 columns.
func smallOpts() FigureOpts {
	return FigureOpts{
		Sizes:            []int{8},
		LoadFractions:    []float64{0.5, 1.5},
		UniformFlitRates: []float64{0.1, 0.4},
		Warmup:           300,
		Measure:          3000,
		Seed:             1,
		Reps:             2,
	}
}

func seriesNames(tab *core.Table) []string {
	out := make([]string, len(tab.Series))
	for i, s := range tab.Series {
		out[i] = s.Name
	}
	return out
}

func TestFig7LatencyRisesPastSaturation(t *testing.T) {
	tab, err := Fig7HotspotLatency(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		if s.Len() != 2 {
			t.Fatalf("%s: %d points", s.Name, s.Len())
		}
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: latency did not rise past saturation (%v -> %v)",
				s.Name, s.Y[0], s.Y[1])
		}
		// Past saturation the queueing delay dominates: at least 3x.
		if s.Y[1] < 3*s.Y[0] {
			t.Fatalf("%s: latency knee too soft (%v -> %v)", s.Name, s.Y[0], s.Y[1])
		}
		if !s.HasCI() || len(s.CI) != s.Len() {
			t.Fatalf("%s: missing CI column", s.Name)
		}
	}
}

func TestFig8DoubleHotspotCurves(t *testing.T) {
	tab, err := Fig8DoubleHotspotThroughput(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ring A,B + spidergon A,B + mesh A,B,C = 7 curves at N=8.
	if len(tab.Series) != 7 {
		t.Fatalf("series = %d: %v", len(tab.Series), seriesNames(tab))
	}
	// Saturated value ≈ 2 flits/cycle for every placement, except the
	// ring's asymmetric placement B where the low-bisection fabric
	// (not the sinks) caps slightly lower — a real effect the 8-node
	// ring exhibits at ~1.65.
	for _, s := range tab.Series {
		last := s.Y[len(s.Y)-1]
		lo := 1.6 // short measurement window; full-scale runs reach ~1.95
		if s.Name == "ring-8-B" {
			lo = 1.5
		}
		if last < lo || last > 2.01 {
			t.Fatalf("%s: saturated double-hotspot throughput %v", s.Name, last)
		}
	}
}

func TestFig9DoubleHotspotLatencyKnee(t *testing.T) {
	tab, err := Fig9DoubleHotspotLatency(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: no latency rise", s.Name)
		}
	}
}

func TestFig11RingWorstAtHighLoad(t *testing.T) {
	o := smallOpts()
	o.Sizes = []int{16}
	o.UniformFlitRates = []float64{0.4}
	tab, err := Fig11UniformLatency(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	var ring, sg, mesh float64
	for _, s := range tab.Series {
		switch {
		case strings.HasPrefix(s.Name, "ring"):
			ring = s.Y[0]
		case strings.HasPrefix(s.Name, "spidergon"):
			sg = s.Y[0]
		case strings.HasPrefix(s.Name, "mesh"):
			mesh = s.Y[0]
		}
	}
	if ring <= sg || ring <= mesh {
		t.Fatalf("ring latency %v not worst (sg %v, mesh %v)", ring, sg, mesh)
	}
}

func TestFigureOptsDefaults(t *testing.T) {
	var zero FigureOpts
	d := zero.withDefaults()
	if len(d.Sizes) == 0 || len(d.LoadFractions) == 0 || len(d.UniformFlitRates) == 0 {
		t.Fatal("defaults missing")
	}
	if d.Warmup == 0 || d.Measure == 0 || d.Seed == 0 || d.Reps < 2 {
		t.Fatal("default cycles/seed/reps missing")
	}
	// Explicit values survive.
	o := FigureOpts{Sizes: []int{10}, Warmup: 7, Reps: 1}.withDefaults()
	if o.Sizes[0] != 10 || o.Warmup != 7 || o.Reps != 1 {
		t.Fatal("explicit values overwritten")
	}
}

func TestFig5AnalyticColumnsMatchFormulas(t *testing.T) {
	// The analytic columns do not require simulation correctness; they
	// must equal the closed forms exactly.
	o := smallOpts()
	tab, err := Fig5Validation(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	var an *stats.Series
	for _, s := range tab.Series {
		if s.Name == "analytic-spidergon" {
			an = s
		}
	}
	y, ok := an.YAt(8)
	if !ok || math.Abs(y-11.0/7.0) > 1e-9 { // SpidergonPathSum(8)/7
		t.Fatalf("analytic spidergon E[D](8) = %v", y)
	}
}

func TestFig5TableSmall(t *testing.T) {
	o := FigureOpts{Sizes: []int{8}, Warmup: 200, Measure: 3000, Seed: 1, Reps: 2}
	tab, err := Fig5Validation(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 6 {
		t.Fatalf("series = %d", len(tab.Series))
	}
	// Each analytic value is close to its simulated counterpart.
	for _, kind := range []string{"ring", "spidergon", "mesh"} {
		var an, sim *stats.Series
		for _, s := range tab.Series {
			if s.Name == "analytic-"+kind {
				an = s
			}
			if s.Name == "sim-"+kind {
				sim = s
			}
		}
		a, _ := an.YAt(8)
		m, _ := sim.YAt(8)
		if math.Abs(a-m) > 0.2*a {
			t.Fatalf("%s: analytic %v vs sim %v", kind, a, m)
		}
	}
}

func TestFig6TableSmall(t *testing.T) {
	o := FigureOpts{
		Sizes:         []int{8},
		LoadFractions: []float64{0.5, 1.5},
		Warmup:        500,
		Measure:       5000,
		Seed:          1,
		Reps:          2,
	}
	tab, err := Fig6HotspotThroughput(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	// ring, spidergon, mesh-corner, mesh-center = 4 curves.
	if len(tab.Series) != 4 {
		t.Fatalf("series = %d: %v", len(tab.Series), seriesNames(tab))
	}
	// At 1.5x saturation every curve is pinned at ≈ 1 flit/cycle.
	for _, s := range tab.Series {
		if got := s.Y[len(s.Y)-1]; got < 0.9 || got > 1.01 {
			t.Fatalf("%s: saturated throughput %v", s.Name, got)
		}
	}
}

func TestFig10TableSmall(t *testing.T) {
	o := FigureOpts{
		Sizes:            []int{8},
		UniformFlitRates: []float64{0.1, 0.4},
		Warmup:           500,
		Measure:          5000,
		Seed:             1,
		Reps:             2,
	}
	tab, err := Fig10UniformThroughput(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 3 {
		t.Fatalf("series = %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		if s.Len() != 2 {
			t.Fatalf("%s: %d points", s.Name, s.Len())
		}
	}
}

func TestHotspotFigureUsesSaturationGrid(t *testing.T) {
	// x values of a hotspot curve are fractions of λ_sat in flits/cycle:
	// for N=8, k=1: λ_sat = 1/42 pkts/cycle -> 1/7 flits/cycle.
	o := smallOpts()
	tab, err := Fig6HotspotThroughput(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Series[0]
	want0 := 0.5 / 7.0
	if math.Abs(s.X[0]-want0) > 1e-9 {
		t.Fatalf("first x = %v, want %v", s.X[0], want0)
	}
}

func TestEvenSize(t *testing.T) {
	if evenSize(7) != 8 || evenSize(8) != 8 {
		t.Fatal("evenSize")
	}
	sizes := evenSizes([]int{7, 8, 16})
	if len(sizes) != 2 || sizes[0] != 8 || sizes[1] != 16 {
		t.Fatalf("evenSizes = %v", sizes)
	}
}

func TestHotspotVariants(t *testing.T) {
	v := hotspotVariants(core.Mesh, 8, 1)
	if len(v) != 2 {
		t.Fatalf("mesh single variants = %d", len(v))
	}
	v = hotspotVariants(core.Ring, 8, 1)
	if len(v) != 1 || v[0].targets[0] != 0 {
		t.Fatalf("ring single variants = %v", v)
	}
	v = hotspotVariants(core.Mesh, 8, 2)
	if len(v) != 3 {
		t.Fatalf("mesh double variants = %d", len(v))
	}
	v = hotspotVariants(core.Spidergon, 8, 2)
	if len(v) != 2 {
		t.Fatalf("spidergon double variants = %d", len(v))
	}
}

// Figure tables are byte-identical across runner parallelism: the CSV
// rendering (CI columns included) must not depend on scheduling.
func TestFigureTableDeterministicAcrossParallelism(t *testing.T) {
	var outs []string
	for _, parallel := range []int{1, 4, 16} {
		o := smallOpts()
		o.Parallel = parallel
		tab, err := Fig6HotspotThroughput(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, tab.CSV()+"\n"+tab.Text())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatal("figure table differs across -parallel 1/4/16")
	}
}

// Figure generation is cancellable through the plumbed context.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig10UniformThroughput(ctx, smallOpts()); err == nil {
		t.Fatal("cancelled figure generation returned nil error")
	}
}
