package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gonoc/internal/core"
)

// runJSONL runs c with the given runner and returns the JSONL stream.
func runJSONL(t *testing.T, r Runner, c Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.Run(context.Background(), c, NewJSONLWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runLines splits a JSONL stream into its run-record prefix and
// summary-record suffix.
func splitRecords(t *testing.T, stream []byte) (runs, summaries []string) {
	t.Helper()
	for _, l := range strings.Split(strings.TrimRight(string(stream), "\n"), "\n") {
		switch {
		case strings.Contains(l, `"kind":"run"`):
			runs = append(runs, l)
		case strings.Contains(l, `"kind":"summary"`):
			summaries = append(summaries, l)
		default:
			t.Fatalf("unclassifiable record: %s", l)
		}
	}
	return runs, summaries
}

// Shard outputs concatenate byte-identically to the unsharded run: the
// union of shard 0/2 and 1/2 run records equals the unsharded
// run-record stream, and MergeRuns over the two shard streams
// reproduces the entire unsharded file, summaries included.
func TestShardUnionMatchesUnsharded(t *testing.T) {
	c := testCampaign()
	full := runJSONL(t, Runner{Parallel: 4}, c)

	var shards [][]byte
	for i := 0; i < 2; i++ {
		shards = append(shards, runJSONL(t, Runner{Parallel: 2, Shard: Shard{Index: i, Count: 2}}, c))
	}
	for _, s := range shards {
		if bytes.Contains(s, []byte(`"kind":"summary"`)) {
			t.Fatal("shard stream contains summary records")
		}
	}
	concat := append(append([]byte{}, shards[0]...), shards[1]...)
	runs, _ := splitRecords(t, full)
	wantRuns := strings.Join(runs, "\n") + "\n"
	if string(concat) != wantRuns {
		t.Fatalf("shard union differs from unsharded run records:\n%s\nvs\n%s", concat, wantRuns)
	}

	var merged bytes.Buffer
	if _, err := MergeRuns(byteReaders(shards), &merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatal("merged shard streams differ from the unsharded output file")
	}
}

// A zero-rate grid point measures nothing (NaN latency family); the
// shard/merge round trip must still reproduce the unsharded file
// exactly, which exercises the NaN restoration in MergeRuns.
func TestMergeRestoresEmptyReplications(t *testing.T) {
	c := testCampaign()
	c.FlitRates = []float64{0, 0.05}
	full := runJSONL(t, Runner{Parallel: 4}, c)
	var shards [][]byte
	for i := 0; i < 3; i++ {
		shards = append(shards, runJSONL(t, Runner{Parallel: 3, Shard: Shard{Index: i, Count: 3}}, c))
	}
	var merged bytes.Buffer
	if _, err := MergeRuns(byteReaders(shards), &merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatal("merge with empty replications diverges from unsharded output")
	}
}

// byteReaders adapts byte slices to readers.
func byteReaders(bs [][]byte) []io.Reader {
	out := make([]io.Reader, len(bs))
	for i, b := range bs {
		out[i] = bytes.NewReader(b)
	}
	return out
}

// A warm cache replays a campaign with zero simulations: every lookup
// hits, no entry is stored twice, and the emitted stream is identical.
func TestCacheWarmReplayZeroSimulations(t *testing.T) {
	c := testCampaign()
	cache := NewMemCache()
	cold := runJSONL(t, Runner{Parallel: 4, Cache: cache}, c)
	if cache.Hits() != 0 || cache.Misses() != 12 || cache.Len() != 12 {
		t.Fatalf("cold run: %d hits, %d misses, %d entries", cache.Hits(), cache.Misses(), cache.Len())
	}
	warm := runJSONL(t, Runner{Parallel: 1, Cache: cache}, c)
	if cache.Misses() != 12 {
		t.Fatalf("warm run simulated: misses rose to %d", cache.Misses())
	}
	if cache.Hits() != 12 {
		t.Fatalf("warm run: %d hits", cache.Hits())
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cached replay differs from the original stream")
	}
}

// The file cache persists across opens and resumes partial campaigns:
// a run that completed one shard leaves the other shard's simulations
// as the only cache misses of a later full run, and a torn trailing
// line (killed process) is skipped on load.
func TestFileCacheResume(t *testing.T) {
	dir := t.TempDir()
	c := testCampaign()

	cache, err := OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	half := runJSONL(t, Runner{Parallel: 2, Cache: cache, Shard: Shard{Index: 0, Count: 2}}, c)
	if len(half) == 0 || cache.Len() != 6 {
		t.Fatalf("shard run cached %d entries", cache.Len())
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append from a killed process.
	f, err := os.OpenFile(filepath.Join(dir, "results.jsonl"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"truncat`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cache, err = OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	if cache.Len() != 6 {
		t.Fatalf("reloaded %d entries, want 6", cache.Len())
	}
	full := runJSONL(t, Runner{Parallel: 4, Cache: cache}, c)
	if cache.Misses() != 6 {
		t.Fatalf("resume simulated %d points, want 6", cache.Misses())
	}
	uncached := runJSONL(t, Runner{Parallel: 4}, c)
	if !bytes.Equal(full, uncached) {
		t.Fatal("resumed run differs from a fresh run")
	}
}

// Cached results round-trip through the JSONL file bit for bit, NaN
// metrics included.
func TestFileCacheRoundTripsNaN(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScenario(core.Ring, 8, core.UniformTraffic, 0) // zero rate: NaN latency
	s.Warmup, s.Measure = 10, 100
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency == res.MeanLatency {
		t.Fatal("expected NaN latency from an idle run")
	}
	if err := cache.Store(s.CacheKey(), res); err != nil {
		t.Fatal(err)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
	cache, err = OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	got, ok := cache.Lookup(s.CacheKey())
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if got.MeanLatency == got.MeanLatency {
		t.Fatal("NaN latency flattened by the cache round trip")
	}
	if got.Throughput != res.Throughput || got.EjectedPackets != res.EjectedPackets {
		t.Fatalf("cache round trip changed results: %+v vs %+v", got, res)
	}
}

// Adaptive replication keeps adding split-seeded replications until
// the CI95 half-width meets the target or the cap: with an
// unreachable target every grid point lands exactly on the cap, and
// the output stream stays byte-identical at any parallelism.
func TestAdaptiveReplicationCapsAndDeterminism(t *testing.T) {
	c := testCampaign()
	c.Reps = 2
	r := Runner{Parallel: 1, CITarget: 1e-9, MaxReps: 5}
	a := runJSONL(t, r, c)
	r.Parallel = 8
	b := runJSONL(t, r, c)
	if !bytes.Equal(a, b) {
		t.Fatal("adaptive stream differs across parallelism")
	}
	aggs, err := Runner{CITarget: 1e-9, MaxReps: 5}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range aggs {
		if ag.Reps != 5 {
			t.Fatalf("%s-%d@%v: %d reps, want cap 5", ag.Topo, ag.Nodes, ag.FlitRate, ag.Reps)
		}
	}
}

// A loose target stops early: no point needs the cap, and every
// aggregate either satisfies the target or exhausted it.
func TestAdaptiveReplicationStopsWhenSatisfied(t *testing.T) {
	c := testCampaign()
	c.Reps = 2
	aggs, err := Runner{CITarget: 0.5, MaxReps: 64}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range aggs {
		if !satisfied(ag, 0.5) && ag.Reps < 64 {
			t.Fatalf("runner stopped at %d reps with CI %v/%v unsatisfied",
				ag.Reps, ag.Throughput.CI95, ag.Throughput.Mean)
		}
		if ag.Reps >= 64 {
			t.Fatalf("loose target escalated to the cap (%d reps)", ag.Reps)
		}
	}
}

// Extension replications continue each grid point's original seed
// stream: an adaptive run's first Reps replications are bit-identical
// to a fixed run's, and the added ones carry fresh distinct seeds.
func TestAdaptiveSeedsExtendStreams(t *testing.T) {
	c := testCampaign()
	c.Reps = 2
	fixed, err := c.Points()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := c.pointsN(func(int) int { return 4 }, func(int) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != len(fixed) {
		t.Fatalf("extension points = %d", len(ext))
	}
	seeds := map[uint64]bool{}
	for _, p := range fixed {
		seeds[p.Scenario.Seed] = true
	}
	for _, p := range ext {
		if p.Rep < 2 {
			t.Fatalf("extension re-ran replication %d", p.Rep)
		}
		if seeds[p.Scenario.Seed] {
			t.Fatalf("extension reused seed %d", p.Scenario.Seed)
		}
		seeds[p.Scenario.Seed] = true
	}
	// Re-expanding with more reps reproduces the original prefix.
	again, err := c.pointsN(func(int) int { return 4 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range again {
		if p.Rep < 2 {
			want := fixed[p.GridIndex*2+p.Rep]
			if p.Scenario.Seed != want.Scenario.Seed {
				t.Fatalf("point %d: extended expansion changed seed of rep %d", i, p.Rep)
			}
		}
	}
}

// Saturation-knee refinement inserts extra rates where throughput
// flattens: a hot-spot ladder spanning saturation gains midpoint
// aggregates between the original grid rates.
func TestRefineInsertsKneePoints(t *testing.T) {
	c := Campaign{
		Name:       "refine",
		Topologies: []core.TopologyKind{core.Spidergon},
		Nodes:      []int{8},
		Traffics:   []TrafficSpec{{Kind: core.HotSpotTraffic, HotSpots: []int{0}}},
		// λ_sat is 1/7 flits/cycle: the grid spans the knee.
		FlitRates: []float64{0.05, 0.1, 0.15, 0.2},
		Reps:      1,
		Seed:      3,
		Warmup:    300,
		Measure:   3000,
	}
	aggs, err := Runner{Refine: 2}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) <= 4 {
		t.Fatalf("refinement added no points: %d aggregates", len(aggs))
	}
	base := map[float64]bool{0.05: true, 0.1: true, 0.15: true, 0.2: true}
	extra := 0
	for _, a := range aggs[4:] {
		if base[a.FlitRate] {
			t.Fatalf("refined point duplicates grid rate %v", a.FlitRate)
		}
		if a.FlitRate <= 0.05 || a.FlitRate >= 0.2 {
			t.Fatalf("refined rate %v outside the grid span", a.FlitRate)
		}
		extra++
	}
	if extra > 2 {
		t.Fatalf("refinement exceeded its budget: %d extra points", extra)
	}
	// Refinement is deterministic too.
	again, err := Runner{Refine: 2, Parallel: 8}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(aggs) {
		t.Fatal("refined point set differs across parallelism")
	}
}

// Sharding composes with neither adaptive replication nor refinement.
func TestShardRejectsAdaptive(t *testing.T) {
	c := testCampaign()
	if _, err := (Runner{Shard: Shard{0, 2}, CITarget: 0.1}).Run(context.Background(), c); err == nil {
		t.Fatal("shard + ci-target accepted")
	}
	if _, err := (Runner{Shard: Shard{0, 2}, Refine: 1}).Run(context.Background(), c); err == nil {
		t.Fatal("shard + refine accepted")
	}
	if _, err := (Runner{Shard: Shard{5, 2}}).Run(context.Background(), c); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// kneeCandidates drives refinement to a fixed point: on a synthetic
// hockey-stick curve (throughput min(x, knee)), repeated bisection
// converges the knee bracket geometrically and then stops on its own,
// well before an unbounded budget would.
func TestKneeCandidatesConvergeOnSyntheticKnee(t *testing.T) {
	const knee = 0.37
	y := func(x float64) float64 {
		if x < knee {
			return x
		}
		return knee
	}
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = y(x)
	}
	span := xs[len(xs)-1] - xs[0]
	bracket := func() float64 {
		k := kneeInterval(xs, ys)
		if k < 0 {
			t.Fatalf("synthetic knee lost: xs=%v ys=%v", xs, ys)
		}
		return xs[k+1] - xs[k-1+1] // width of the knee interval
	}
	prev := bracket()
	inserted := 0
	for pass := 0; ; pass++ {
		if pass > 40 {
			t.Fatal("refinement failed to reach a fixed point")
		}
		cands := kneeCandidates(xs, ys)
		if len(cands) == 0 {
			break // fixed point
		}
		for _, x := range cands {
			xs = append(xs, x)
			ys = append(ys, y(x))
			inserted++
		}
		sort.Float64s(xs)
		sort.Float64s(ys) // y = min(x, knee) is monotone, so this re-pairs correctly
		if w := bracket(); w > prev {
			t.Fatalf("pass %d: knee bracket widened from %v to %v", pass, prev, w)
		} else {
			prev = w
		}
	}
	if prev > kneeRefineTol*span*2 {
		t.Fatalf("fixed point reached with a loose bracket: %v (span %v)", prev, span)
	}
	if inserted == 0 {
		t.Fatal("no refinement happened at all")
	}
	// The detector brackets the first flattening, i.e. it approaches
	// the true knee from just above; the converged bracket must sit
	// within tolerance of it.
	k := kneeInterval(xs, ys)
	if eps := 2 * kneeRefineTol * span; xs[k] > knee+eps || xs[k+1] < knee-eps {
		t.Fatalf("converged bracket [%v, %v] strayed from the knee %v", xs[k], xs[k+1], knee)
	}
}

// The runner's refinement loop iterates: with budget for more than one
// pass, at least one inserted rate bisects an interval created by an
// earlier insertion, which a single-pass implementation cannot produce.
func TestRefineIteratesPastOnePass(t *testing.T) {
	c := Campaign{
		Name:       "refine-iter",
		Topologies: []core.TopologyKind{core.Spidergon},
		Nodes:      []int{8},
		Traffics:   []TrafficSpec{{Kind: core.HotSpotTraffic, HotSpots: []int{0}}},
		FlitRates:  []float64{0.05, 0.1, 0.15, 0.2},
		Reps:       1,
		Seed:       3,
		Warmup:     300,
		Measure:    3000,
	}
	aggs, err := Runner{Refine: 6}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	base := map[float64]bool{0.05: true, 0.1: true, 0.15: true, 0.2: true}
	var refinedRates []float64
	for _, a := range aggs {
		if !base[a.FlitRate] {
			refinedRates = append(refinedRates, a.FlitRate)
		}
	}
	if len(refinedRates) < 3 {
		t.Fatalf("expected several refinement passes, got rates %v", refinedRates)
	}
	if len(refinedRates) > 6 {
		t.Fatalf("refinement exceeded its budget: %v", refinedRates)
	}
	// Evidence of iteration: some refined rate is the midpoint of two
	// rates at 1/4-grid spacing or finer, which only a second pass over
	// first-pass midpoints can insert (the base grid is 0.05-spaced, so
	// first-pass midpoints sit on the 0.025 lattice; a second pass
	// lands on 0.0125 offsets).
	second := false
	for _, r := range refinedRates {
		if q := r / 0.0125; q != float64(int64(q)) || int64(q)%2 == 1 {
			second = true
		}
	}
	if !second {
		t.Fatalf("no second-pass bisection found in refined rates %v", refinedRates)
	}
	// The iterated refinement stays deterministic at any parallelism.
	again, err := Runner{Refine: 6, Parallel: 8}.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(aggs) {
		t.Fatal("refined point set differs across parallelism")
	}
	for i := range aggs {
		if aggs[i].FlitRate != again[i].FlitRate || aggs[i].Throughput != again[i].Throughput {
			t.Fatalf("aggregate %d differs across parallelism", i)
		}
	}
}

// Compact drops superseded duplicates and torn lines, keeps the
// last-written value of each key in first-appearance order, and leaves
// the cache fully usable (lookups and further appends) afterwards.
func TestFileCacheCompact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	mk := func(key string, tput float64) string {
		b, err := json.Marshal(encodeEntry(key, core.Result{Throughput: tput}))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	lines := []string{
		mk("a", 1),
		mk("b", 2),
		"{\"torn",  // killed writer
		mk("a", 3), // supersedes the first "a"
		"not json at all",
		mk("c", 4),
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dropped, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped %d lines, want 3 (two torn + one superseded)", dropped)
	}
	want := mk("a", 3) + "\n" + mk("b", 2) + "\n" + mk("c", 4) + "\n"
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("compacted file:\n%s\nwant:\n%s", got, want)
	}
	// Compacting a clean file is a no-op, byte for byte.
	if dropped, err = c.Compact(); err != nil || dropped != 0 {
		t.Fatalf("second compaction: dropped %d, err %v", dropped, err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, got) {
		t.Fatal("second compaction changed the file")
	}
	// The cache still serves and appends after compaction.
	if r, ok := c.Lookup("a"); !ok || r.Throughput != 3 {
		t.Fatalf("lookup after compact: %v %v", r, ok)
	}
	if err := c.Store("d", core.Result{Throughput: 5}); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if r, ok := reopened.Lookup("d"); !ok || r.Throughput != 5 {
		t.Fatalf("appended entry lost after compact+reopen: %v %v", r, ok)
	}
}

// Intra-scenario parallelism must be invisible in the output: a runner
// spending its budget on step shards emits the identical byte stream as
// the plain campaign-parallel runner, at several shard widths.
func TestStepShardsStreamIdentical(t *testing.T) {
	c := testCampaign()
	want := runJSONL(t, Runner{Parallel: 4}, c)
	for _, shards := range []int{2, 3, 8} {
		got := runJSONL(t, Runner{Parallel: 4, StepShards: shards}, c)
		if !bytes.Equal(want, got) {
			t.Fatalf("StepShards=%d changed the emitted stream", shards)
		}
	}
}

// The worker budget splits between campaign-level workers and step
// shards: ceil(Parallel / StepShards), never below one.
func TestWorkerBudgetSplit(t *testing.T) {
	cases := []struct {
		parallel, shards, want int
	}{
		{8, 0, 8},  // no shards: full budget to the campaign
		{8, 1, 8},  // single shard is serial
		{8, 4, 2},  // even split
		{8, 3, 3},  // rounding up keeps the budget covered
		{2, 8, 1},  // shards beyond the budget: one campaign worker
		{-1, 0, 0}, // GOMAXPROCS default, checked separately
	}
	for _, tc := range cases {
		r := Runner{Parallel: tc.parallel, StepShards: tc.shards}
		got := r.workerBudget()
		if tc.parallel <= 0 {
			if got < 1 {
				t.Fatalf("default budget %d < 1", got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("workerBudget(Parallel=%d, StepShards=%d) = %d, want %d",
				tc.parallel, tc.shards, got, tc.want)
		}
	}
}
