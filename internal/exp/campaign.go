// Package exp is the experiment-campaign orchestration layer: it
// expands a Campaign — the cross-product of topologies, node counts,
// traffic patterns and injection rates that underlies every figure of
// the paper — into replicated, deterministically seeded scenarios, runs
// them on a cancellable worker pool, and streams the results to
// pluggable sinks (JSONL, CSV, in-memory aggregation with confidence
// intervals). The same campaign spec and seed produce byte-identical
// sink output at any parallelism.
package exp

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/traffic"
)

// TrafficSpec names one destination pattern of a campaign. Hot-spot
// targets may be pinned explicitly, derived from one of the paper's
// double-target placements, or left empty for the default single
// hot-spot of each topology.
type TrafficSpec struct {
	// Kind is the pattern family (uniform, hotspot, permutation).
	Kind core.TrafficKind
	// HotSpots pins explicit target nodes for HotSpotTraffic. When
	// empty and Placement is unset, the single default target of
	// core.SingleHotspot is used.
	HotSpots []int
	// Placement, when non-zero, derives two targets per topology from
	// the paper's double-hot-spot placements (core.DoubleHotspots).
	Placement core.Placement
	// Center selects the mesh-middle default single target instead of
	// the corner.
	Center bool
	// Permutation names the pattern for PermutationTraffic.
	Permutation string
	// Label overrides the derived name used in records and tables.
	Label string
}

// Name returns the spec's display label.
func (t TrafficSpec) Name() string {
	if t.Label != "" {
		return t.Label
	}
	s := string(t.Kind)
	switch {
	case t.Placement != 0:
		s += fmt.Sprintf("-%c", t.Placement)
	case t.Kind == core.HotSpotTraffic && t.Center:
		s += "-center"
	case t.Kind == core.PermutationTraffic && t.Permutation != "":
		s += "-" + t.Permutation
	}
	return s
}

// Campaign is a batch experiment: the cross-product of topology
// families, node counts, traffic patterns and per-source injection
// rates, each point replicated Reps times under independent seeds.
// Zero values whose meaning would be degenerate fall back to the
// paper's defaults (Poisson arrivals, 10000 measured cycles, the
// default node geometry, one replication); Warmup and Seed are taken
// literally, since zero is valid for both.
type Campaign struct {
	// Name tags every emitted record, so merged result files stay
	// attributable.
	Name string

	// Topologies, Nodes, Traffics and FlitRates are the four crossed
	// axes. FlitRates are per-source offered loads in flits/cycle (the
	// paper's x axis); they divide by Config.PacketLen to form the
	// per-source packet rate λ.
	Topologies []core.TopologyKind
	Nodes      []int
	Traffics   []TrafficSpec
	FlitRates  []float64

	// Reps is the number of replications per grid point; each gets an
	// independent seed derived from Seed.
	Reps int
	// Seed is the master seed; all replication seeds derive from it
	// deterministically. Zero is a valid seed (it is not rewritten, so
	// explicit choices always survive).
	Seed uint64

	// Warmup and Measure are the per-run cycle counts. Warmup zero
	// means genuinely no warm-up; only a zero Measure (which the
	// scenario layer rejects outright) falls back to the paper's
	// 10000 cycles.
	Warmup, Measure uint64
	// Routing optionally overrides the mesh-family routing algorithm.
	Routing string
	// Process selects the arrival process (default Poisson).
	Process traffic.Process
	// Config is the node geometry; the zero value selects
	// noc.DefaultConfig.
	Config noc.Config
}

// Point is one expanded (scenario, replication) cell of a campaign.
type Point struct {
	// Index is the position in campaign enumeration order, across all
	// replications; sinks receive outcomes in this order.
	Index int
	// GridIndex identifies the grid point (topology × nodes × traffic
	// × rate) this replication belongs to; replications of the same
	// point share it.
	GridIndex int
	// Rep is the replication number, 0-based.
	Rep int
	// Topo, Nodes, Traffic and FlitRate echo the grid coordinates.
	Topo     core.TopologyKind
	Nodes    int
	Traffic  string
	FlitRate float64
	// Scenario is the fully resolved simulation, seed included.
	Scenario core.Scenario
}

// ID renders a stable, human-readable point identifier.
func (p Point) ID() string {
	return fmt.Sprintf("%s-%d/%s@%.4g#%d", p.Topo, p.Nodes, p.Traffic, p.FlitRate, p.Rep)
}

// withDefaults fills run parameters whose zero value is meaningless
// (zero replications, a zero-cycle measurement window, an empty node
// geometry). Warmup and Seed are left alone: zero is a legitimate
// choice for both, and rewriting it would silently change explicitly
// configured runs.
func (c Campaign) withDefaults() Campaign {
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Measure == 0 {
		c.Measure = 10000
	}
	if c.Config == (noc.Config{}) {
		c.Config = noc.DefaultConfig()
	}
	return c
}

// cell is one grid point of the expanded campaign: the (topology,
// nodes, traffic, rate) coordinates plus the resolved base scenario
// with rate applied and seed still unset.
type cell struct {
	grid     int
	topo     core.TopologyKind
	nodes    int
	spec     TrafficSpec
	flitRate float64
	base     core.Scenario
}

// cells expands the campaign's grid (without replications) in
// deterministic enumeration order: topology, then nodes, then traffic,
// then rate.
func (c Campaign) cells() ([]cell, error) {
	c = c.withDefaults()
	if len(c.Topologies) == 0 {
		return nil, fmt.Errorf("exp: campaign without topologies")
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("exp: campaign without node counts")
	}
	if len(c.Traffics) == 0 {
		return nil, fmt.Errorf("exp: campaign without traffic specs")
	}
	if len(c.FlitRates) == 0 {
		return nil, fmt.Errorf("exp: campaign without injection rates")
	}
	cells := make([]cell, 0, len(c.Topologies)*len(c.Nodes)*len(c.Traffics)*len(c.FlitRates))
	for _, topo := range c.Topologies {
		for _, n := range c.Nodes {
			for _, spec := range c.Traffics {
				base, err := c.scenario(topo, n, spec)
				if err != nil {
					return nil, err
				}
				for _, fr := range c.FlitRates {
					s := base
					s.Lambda = fr / float64(c.Config.PacketLen)
					cells = append(cells, cell{
						grid:     len(cells),
						topo:     topo,
						nodes:    n,
						spec:     spec,
						flitRate: fr,
						base:     s,
					})
				}
			}
		}
	}
	return cells, nil
}

// Points expands the campaign into its full run list, in deterministic
// enumeration order (topology, then nodes, then traffic, then rate,
// then replication). Replication seeds derive from the master seed via
// an RNG split per grid point: the expansion is single-threaded, so the
// assignment never depends on how the points are later scheduled.
func (c Campaign) Points() ([]Point, error) {
	return c.pointsN(nil, nil)
}

// pointsN is the generalized expansion behind Points and the adaptive
// runner: cell g receives reps(g) replications (nil or non-positive
// falls back to Campaign.Reps) of which the first skip(g) are omitted
// from the result. Every cell's seed stream is split off the master in
// enumeration order and then advanced replication by replication, so a
// later expansion with a larger reps(g) reproduces the earlier
// replications bit for bit and merely extends the tail — adaptive
// rounds never reseed completed work.
func (c Campaign) pointsN(reps, skip func(grid int) int) ([]Point, error) {
	cd := c.withDefaults()
	cells, err := c.cells()
	if err != nil {
		return nil, err
	}
	master := sim.NewRNG(cd.Seed)
	var pts []Point
	for _, cl := range cells {
		n := cd.Reps
		if reps != nil {
			if r := reps(cl.grid); r > 0 {
				n = r
			}
		}
		from := 0
		if skip != nil {
			from = skip(cl.grid)
		}
		stream := master.Split()
		s := cl.base
		for rep := 0; rep < n; rep++ {
			s.Seed = stream.Uint64()
			if rep < from {
				continue
			}
			pts = append(pts, Point{
				Index:     len(pts),
				GridIndex: cl.grid,
				Rep:       rep,
				Topo:      cl.topo,
				Nodes:     cl.nodes,
				Traffic:   cl.spec.Name(),
				FlitRate:  cl.flitRate,
				Scenario:  s,
			})
		}
	}
	for i := range pts {
		if err := pts[i].Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("exp: %s: %w", pts[i].ID(), err)
		}
	}
	return pts, nil
}

// scenario resolves one (topology, nodes, traffic) cell into a base
// scenario with rate and seed still unset.
func (c Campaign) scenario(topo core.TopologyKind, n int, spec TrafficSpec) (core.Scenario, error) {
	s := core.NewScenario(topo, n, spec.Kind, 0)
	s.Warmup, s.Measure = c.Warmup, c.Measure
	s.Routing = c.Routing
	s.Process = c.Process
	s.Config = c.Config
	s.Permutation = spec.Permutation
	if spec.Kind == core.HotSpotTraffic {
		switch {
		case len(spec.HotSpots) > 0:
			s.HotSpots = spec.HotSpots
		case spec.Placement != 0:
			hs, err := core.DoubleHotspots(topo, n, spec.Placement, 0, 0)
			if err != nil {
				return core.Scenario{}, fmt.Errorf("exp: %s-%d: %w", topo, n, err)
			}
			s.HotSpots = hs
		default:
			s.HotSpots = []int{core.SingleHotspot(topo, n, spec.Center, 0, 0)}
		}
	}
	return s, nil
}
