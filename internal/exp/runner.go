package exp

import (
	"context"
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/exp/pool"
)

// Runner executes campaigns on a bounded worker pool. Scenario runs are
// fully independent and individually deterministic, so any parallelism
// produces the same results; the runner additionally delivers them to
// sinks in campaign enumeration order, making the emitted byte streams
// independent of scheduling too.
type Runner struct {
	// Parallel bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called after each delivered outcome with
	// the number of completed and total runs. It runs on the emission
	// goroutine, in order.
	Progress func(done, total int)
}

// Run expands the campaign, executes every point, streams outcomes to
// the sinks in enumeration order, and finally delivers one aggregate
// per grid point (mean and CI95 across replications) to both the sinks
// and the caller. Cancelling ctx stops scheduling new runs and returns
// the context error; in-flight simulations finish first.
func (r Runner) Run(ctx context.Context, c Campaign, sinks ...Sink) ([]Aggregate, error) {
	pts, err := c.Points()
	if err != nil {
		return nil, err
	}
	results := make([]core.Result, len(pts))
	agg := newAggregator()
	done := 0

	err = pool.Ordered(ctx, len(pts), r.Parallel,
		func(_ context.Context, i int) error {
			res, err := core.Run(pts[i].Scenario)
			if err != nil {
				return fmt.Errorf("exp: %s: %w", pts[i].ID(), err)
			}
			results[i] = res
			return nil
		},
		func(i int) error {
			o := Outcome{Campaign: c.Name, Point: pts[i], Result: results[i]}
			agg.add(o)
			done++
			if r.Progress != nil {
				r.Progress(done, len(pts))
			}
			for _, s := range sinks {
				if err := s.Run(o); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	aggs := agg.aggregates()
	for _, a := range aggs {
		for _, s := range sinks {
			if err := s.Summary(a); err != nil {
				return nil, err
			}
		}
	}
	return aggs, nil
}

// RunCampaign executes c with default parallelism and no sinks,
// returning only the aggregates — the one-call form for examples and
// tests.
func RunCampaign(c Campaign) ([]Aggregate, error) {
	return Runner{}.Run(context.Background(), c)
}
