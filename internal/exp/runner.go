package exp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gonoc/internal/core"
	"gonoc/internal/exp/pool"
)

// workspaces recycles core.Workspaces across the simulations of a
// campaign (and across campaigns): a worker picking up a task reuses a
// previous run's network, kernel and collector instead of rebuilding
// them, which removes per-replication setup allocations entirely when
// consecutive tasks share a network geometry — the common case, since
// campaign grids enumerate replications and rates innermost. Reuse is
// invisible in the output: a workspace run is bit-identical to a fresh
// one.
var workspaces = sync.Pool{New: func() any { return new(core.Workspace) }}

// Shard names one slice of a campaign partitioned across processes:
// shard Index of Count runs the contiguous Point.Index range
// [Index*total/Count, (Index+1)*total/Count). The zero value (Count 0
// or 1) means unsharded. Because the grid expansion is deterministic,
// every process computes the same partition locally, and concatenating
// the N shard output streams in index order reproduces the unsharded
// run-record stream byte for byte (shards suppress summary records;
// MergeRuns regenerates them from the concatenation).
type Shard struct {
	Index, Count int
}

func (s Shard) active() bool { return s.Count > 1 }

func (s Shard) validate() error {
	if !s.active() {
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("exp: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// Runner executes campaigns on a bounded worker pool. Scenario runs are
// fully independent and individually deterministic, so any parallelism
// produces the same results; the runner additionally delivers them to
// sinks in campaign enumeration order, making the emitted byte streams
// independent of scheduling too.
//
// Beyond plain execution the runner supports a content-addressed result
// cache (Cache), deterministic partitioning across processes (Shard),
// variance-aware adaptive replication (CITarget/MaxReps) and
// saturation-knee grid refinement (Refine). The adaptive features grow
// the executed point set only as a deterministic function of measured
// results, so all output streams stay byte-identical at any
// parallelism.
type Runner struct {
	// Parallel bounds the runner's total worker budget; <= 0 selects
	// GOMAXPROCS. With StepShards set, the budget is split between
	// campaign-level workers and intra-scenario shards (see StepShards).
	Parallel int
	// StepShards, when > 1, runs every simulation's Network.Step
	// domain-decomposed across that many router shards
	// (Scenario.StepParallel) and divides the campaign-level worker
	// count by the same factor, so the machine's parallelism budget is
	// spent inside scenarios instead of across them. Negative requests
	// the automatic shard width per scenario (min(GOMAXPROCS,
	// routers/4), serial when that is 1) WITHOUT dividing the worker
	// budget — useful when scenario sizes vary and only the large ones
	// should decompose. Results and all emitted byte streams are
	// unchanged — the parallel engine is bit-identical and StepParallel
	// is excluded from cache keys and serialization. Prefer
	// campaign-level parallelism (many short points) and reserve
	// StepShards for campaigns dominated by a few long saturation
	// points, where a lone run should use the whole machine.
	StepShards int
	// Progress, when set, is called after each delivered outcome with
	// the number of completed and total planned runs (the total grows
	// when adaptive replication or refinement schedules more). It runs
	// on the emission goroutine, in order.
	Progress func(done, total int)
	// Cache, when set, is consulted before every simulation by scenario
	// cache key and filled with fresh results in emission order. A
	// fully warm cache replays a campaign with zero simulations.
	Cache Cache
	// CITarget, when positive, enables variance-aware stopping: each
	// grid point receives additional replications (beyond the
	// campaign's Reps) until the CI95 half-width of both throughput and
	// mean latency is at most CITarget times the respective mean, or
	// MaxReps is reached.
	CITarget float64
	// MaxReps caps per-point replications under CITarget; <= 0 selects
	// four times the campaign's base replication count (at least 8).
	MaxReps int
	// Refine, when positive, enables saturation-knee refinement: after
	// the base grid completes, extra injection rates are inserted
	// around the first flattening of the measured throughput and
	// simulated like any other grid point. Refinement iterates to a
	// bounded fixed point: each pass re-locates the knee on the
	// enriched curve and bisects around it again, until the knee's
	// bracketing intervals narrow below 0.1% of the curve's rate span
	// or Refine extra rates have been inserted per curve (the bound).
	Refine int
	// Shard selects one deterministic slice of the campaign; see Shard.
	// Sharding composes with Cache but not with the adaptive features.
	Shard Shard
}

// task is one scheduled simulation: a point plus its owning campaign
// name and cache bookkeeping.
type task struct {
	pt       Point
	campaign string
	key      string
	res      core.Result
	cached   bool
}

// gridGroup is one campaign's contiguous block of global grid indices
// [base, base+n).
type gridGroup struct {
	c    Campaign
	base int
	n    int
}

// runState carries the mutable state of one RunAll invocation. Grid
// indices, point indices, and replication bookkeeping are global across
// all campaigns of the batch.
type runState struct {
	r     Runner
	ctx   context.Context
	sinks []Sink
	agg   *aggregator

	done, total int
	nextID      int   // next global Point.Index
	nextGrid    int   // next global grid index
	repsBase    []int // configured replications per global grid
	repsDone    []int // executed replications per global grid
}

// addGroup registers a campaign's cells in the global grid space.
func (st *runState) addGroup(c Campaign, cells int) gridGroup {
	g := gridGroup{c: c, base: st.nextGrid, n: cells}
	st.nextGrid += cells
	base := c.withDefaults().Reps
	for i := 0; i < cells; i++ {
		st.repsBase = append(st.repsBase, base)
		st.repsDone = append(st.repsDone, base)
	}
	return g
}

// Run expands the campaign, executes every point, streams outcomes to
// the sinks in enumeration order, and finally delivers one aggregate
// per grid point (mean and CI95 across replications) to both the sinks
// and the caller. Cancelling ctx stops scheduling new runs and returns
// the context error; in-flight simulations finish first.
func (r Runner) Run(ctx context.Context, c Campaign, sinks ...Sink) ([]Aggregate, error) {
	return r.RunAll(ctx, []Campaign{c}, sinks...)
}

// RunAll executes several campaigns as one batch on a shared worker
// pool: points are enumerated campaign by campaign, outcomes stream to
// the sinks in that global order, and the returned aggregates follow
// it too. One batch means cross-campaign parallelism — the figure
// generators use it to run a figure's many small curves concurrently.
func (r Runner) RunAll(ctx context.Context, cs []Campaign, sinks ...Sink) ([]Aggregate, error) {
	if err := r.Shard.validate(); err != nil {
		return nil, err
	}
	if r.Shard.active() && (r.CITarget > 0 || r.Refine > 0) {
		return nil, fmt.Errorf("exp: sharding is incompatible with adaptive replication and refinement")
	}

	st := &runState{r: r, ctx: ctx, sinks: sinks, agg: newAggregator()}
	var tasks []task
	var groups []gridGroup
	for _, c := range cs {
		cells, err := c.cells()
		if err != nil {
			return nil, err
		}
		pts, err := c.Points()
		if err != nil {
			return nil, err
		}
		g := st.addGroup(c, len(cells))
		groups = append(groups, g)
		for _, p := range pts {
			p.GridIndex += g.base
			p.Index = len(tasks)
			tasks = append(tasks, task{pt: p, campaign: c.Name})
		}
	}
	st.nextID = len(tasks)
	st.total = len(tasks)

	// Sharded execution: run only the local contiguous index range and
	// emit run records; summaries are left to MergeRuns over the
	// concatenated shard streams.
	if r.Shard.active() {
		lo := r.Shard.Index * len(tasks) / r.Shard.Count
		hi := (r.Shard.Index + 1) * len(tasks) / r.Shard.Count
		st.total = hi - lo
		if err := st.runBatch(tasks[lo:hi]); err != nil {
			return nil, err
		}
		return st.agg.aggregates(), ctx.Err()
	}

	if err := st.runBatch(tasks); err != nil {
		return nil, err
	}
	if r.CITarget > 0 {
		if err := st.adapt(groups); err != nil {
			return nil, err
		}
	}
	if r.Refine > 0 {
		refined, err := st.refine(groups)
		if err != nil {
			return nil, err
		}
		if r.CITarget > 0 {
			if err := st.adapt(refined); err != nil {
				return nil, err
			}
		}
	}

	aggs := st.agg.aggregates()
	for _, a := range aggs {
		for _, s := range sinks {
			if err := s.Summary(a); err != nil {
				return nil, err
			}
		}
	}
	return aggs, ctx.Err()
}

// workerBudget resolves the campaign-level worker count: the Parallel
// budget (GOMAXPROCS when unset), divided — rounding up — by the
// per-scenario shard width so campaign workers × step shards stays
// within the configured budget.
func (r Runner) workerBudget() int {
	p := r.Parallel
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if r.StepShards > 1 {
		p = (p + r.StepShards - 1) / r.StepShards
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runBatch executes one slice of tasks on the pool, delivering
// outcomes (and cache stores) in slice order.
func (st *runState) runBatch(batch []task) error {
	if len(batch) == 0 {
		return st.ctx.Err()
	}
	r := st.r
	if r.Cache != nil {
		for i := range batch {
			batch[i].key = batch[i].pt.Scenario.CacheKey()
		}
	}
	return pool.Ordered(st.ctx, len(batch), r.workerBudget(),
		func(_ context.Context, i int) error {
			t := &batch[i]
			if r.StepShards != 0 && t.pt.Scenario.StepParallel == 0 {
				// Intra-scenario parallelism: invisible in cache keys,
				// results and emitted records (StepParallel is
				// result-neutral and never serialized). Negative passes
				// the auto-width request through to the engine.
				t.pt.Scenario.StepParallel = r.StepShards
			}
			if r.Cache != nil {
				if res, ok := r.Cache.Lookup(t.key); ok {
					t.res, t.cached = res, true
					return nil
				}
			}
			ws := workspaces.Get().(*core.Workspace)
			res, err := ws.Run(t.pt.Scenario)
			if err != nil {
				// A failed run (e.g. a conservation violation) may leave
				// the workspace's network in exactly the inconsistent
				// state Reset cannot repair; drop it instead of pooling.
				return fmt.Errorf("exp: %s: %w", t.pt.ID(), err)
			}
			workspaces.Put(ws)
			t.res = res
			return nil
		},
		func(i int) error {
			t := &batch[i]
			if r.Cache != nil && !t.cached {
				if err := r.Cache.Store(t.key, t.res); err != nil {
					return err
				}
			}
			o := Outcome{Campaign: t.campaign, Point: t.pt, Result: t.res}
			st.agg.add(o)
			st.done++
			if r.Progress != nil {
				r.Progress(st.done, st.total)
			}
			for _, s := range st.sinks {
				if err := s.Run(o); err != nil {
					return err
				}
			}
			return nil
		})
}

// satisfied reports whether a grid point's aggregate meets the CI
// target: the 95% half-width of throughput and mean latency each
// within target times the respective mean (metrics with a non-positive
// mean — e.g. a zero-rate point — cannot be normalized and count as
// met).
func satisfied(a Aggregate, target float64) bool {
	for _, m := range []Metric{a.Throughput, a.Latency} {
		if m.Mean > 0 && m.CI95 > target*m.Mean {
			return false
		}
	}
	return true
}

// adapt runs variance-aware stopping rounds over the groups: every
// unsatisfied grid point doubles its replication count (up to the cap)
// per round, with extension seeds continuing each point's original
// stream, until every point is satisfied or capped.
func (st *runState) adapt(groups []gridGroup) error {
	r := st.r
	for {
		var round []task
		for _, grp := range groups {
			target := make([]int, grp.n)
			grew := false
			for l := 0; l < grp.n; l++ {
				g := grp.base + l
				target[l] = st.repsDone[g]
				a, ok := st.agg.get(g)
				if !ok {
					continue
				}
				capReps := r.MaxReps
				if capReps <= 0 {
					capReps = 4 * st.repsBase[g]
					if capReps < 8 {
						capReps = 8
					}
				}
				if st.repsDone[g] >= capReps || satisfied(a, r.CITarget) {
					continue
				}
				next := st.repsDone[g] * 2
				if next > capReps {
					next = capReps
				}
				if next > st.repsDone[g] {
					target[l] = next
					grew = true
				}
			}
			if !grew {
				continue
			}
			pts, err := grp.c.pointsN(
				func(l int) int { return target[l] },
				func(l int) int { return st.repsDone[grp.base+l] })
			if err != nil {
				return err
			}
			for _, p := range pts {
				p.GridIndex += grp.base
				p.Index = st.nextID
				st.nextID++
				round = append(round, task{pt: p, campaign: grp.c.Name})
			}
			for l := 0; l < grp.n; l++ {
				st.repsDone[grp.base+l] = target[l]
			}
		}
		if len(round) == 0 {
			return st.ctx.Err()
		}
		st.total += len(round)
		if err := st.runBatch(round); err != nil {
			return err
		}
	}
}

// ratePoint is one measured injection rate of a refinement curve and
// its global grid index (where the aggregate lives).
type ratePoint struct {
	rate float64
	grid int
}

// refineCurve is the mutable per-curve state of the refinement loop:
// the single-curve campaign template new rates are expanded from, the
// rates measured so far, and the remaining insertion budget.
type refineCurve struct {
	c      Campaign
	pts    []ratePoint
	budget int
}

// refine iterates saturation-knee refinement to a bounded fixed point.
// Each pass locates, on every curve (campaign × topology × nodes ×
// traffic), the first rate interval where the marginal throughput gain
// drops below half the curve's initial slope — the flattening the
// paper's Figures 6, 8 and 10 exhibit at saturation — inserts the
// midpoints of the bracketing intervals, and simulates them like any
// other grid point; the enriched curve then feeds the next pass. A
// curve stops refining when its knee bracket is tighter than
// kneeRefineTol of the rate span, when bisection yields no new rate,
// or when Refine extra rates have been inserted. The synthesized
// single-curve groups are returned so the caller can fold them into
// further adaptive-replication rounds.
func (st *runState) refine(groups []gridGroup) ([]gridGroup, error) {
	var curves []*refineCurve
	for _, grp := range groups {
		cells, err := grp.c.cells()
		if err != nil {
			return nil, err
		}
		type curveKey struct {
			topo    core.TopologyKind
			nodes   int
			traffic string
		}
		byKey := map[curveKey]*refineCurve{}
		var order []curveKey
		for _, cl := range cells {
			k := curveKey{cl.topo, cl.nodes, cl.spec.Name()}
			cv, ok := byKey[k]
			if !ok {
				cc := grp.c
				cc.Topologies = []core.TopologyKind{cl.topo}
				cc.Nodes = []int{cl.nodes}
				cc.Traffics = []TrafficSpec{cl.spec}
				cv = &refineCurve{c: cc, budget: st.r.Refine}
				byKey[k] = cv
				order = append(order, k)
			}
			cv.pts = append(cv.pts, ratePoint{rate: cl.flitRate, grid: cl.grid + grp.base})
		}
		for _, k := range order {
			if cv := byKey[k]; len(cv.pts) >= 3 {
				curves = append(curves, cv)
			}
		}
	}

	var refined []gridGroup
	for {
		var round []task
		for _, cv := range curves {
			if cv.budget <= 0 {
				continue
			}
			sort.SliceStable(cv.pts, func(a, b int) bool { return cv.pts[a].rate < cv.pts[b].rate })
			xs := make([]float64, len(cv.pts))
			ys := make([]float64, len(cv.pts))
			for i, pt := range cv.pts {
				xs[i] = pt.rate
				if a, ok := st.agg.get(pt.grid); ok {
					ys[i] = a.Throughput.Mean
				}
			}
			extra := kneeCandidates(xs, ys)
			if len(extra) > cv.budget {
				extra = extra[:cv.budget]
			}
			if len(extra) == 0 {
				cv.budget = 0 // fixed point reached for this curve
				continue
			}
			cc := cv.c
			cc.FlitRates = extra
			pts, err := cc.Points()
			if err != nil {
				return nil, err
			}
			g := st.addGroup(cc, len(extra))
			refined = append(refined, g)
			for _, p := range pts {
				p.GridIndex += g.base
				p.Index = st.nextID
				st.nextID++
				round = append(round, task{pt: p, campaign: cc.Name})
			}
			for i, rate := range extra {
				cv.pts = append(cv.pts, ratePoint{rate: rate, grid: g.base + i})
			}
			cv.budget -= len(extra)
		}
		if len(round) == 0 {
			break
		}
		st.total += len(round)
		if err := st.runBatch(round); err != nil {
			return nil, err
		}
	}
	if len(refined) == 0 {
		return nil, st.ctx.Err()
	}
	return refined, nil
}

// kneeRefineTol stops bisection once a knee bracket is tighter than
// this fraction of the curve's full rate span: further points would
// refine the knee estimate by less than the measurement noise.
const kneeRefineTol = 1e-3

// kneeCandidates returns the midpoint rates bisecting the knee of the
// measured curve (xs ascending, ys throughput): one in the interval
// entering the knee and one in the interval leaving it, skipping
// intervals already tighter than kneeRefineTol of the span and rates
// already present. An empty result means the curve has no knee or its
// bracket has converged.
func kneeCandidates(xs, ys []float64) []float64 {
	knee := kneeInterval(xs, ys)
	if knee < 0 {
		return nil
	}
	tol := kneeRefineTol * (xs[len(xs)-1] - xs[0])
	var cand []float64
	if knee > 0 && xs[knee]-xs[knee-1] > tol {
		cand = append(cand, (xs[knee-1]+xs[knee])/2)
	}
	if xs[knee+1]-xs[knee] > tol {
		cand = append(cand, (xs[knee]+xs[knee+1])/2)
	}
	return dedupRates(cand, xs)
}

// kneeInterval returns the index i of the first rate interval
// [xs[i], xs[i+1]] whose throughput slope falls below half the initial
// slope, or -1 when the curve never flattens (or is degenerate).
func kneeInterval(xs, ys []float64) int {
	if len(xs) < 3 || xs[1] == xs[0] {
		return -1
	}
	base := (ys[1] - ys[0]) / (xs[1] - xs[0])
	if base <= 0 {
		return -1
	}
	for i := 1; i < len(xs)-1; i++ {
		if xs[i+1] == xs[i] {
			continue
		}
		slope := (ys[i+1] - ys[i]) / (xs[i+1] - xs[i])
		if slope < base/2 {
			return i
		}
	}
	return -1
}

// dedupRates drops candidates that duplicate each other or an existing
// grid rate.
func dedupRates(candidates, existing []float64) []float64 {
	seen := map[float64]bool{}
	for _, x := range existing {
		seen[x] = true
	}
	var out []float64
	for _, x := range candidates {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// RunCampaign executes c with default parallelism and no sinks,
// returning only the aggregates — the one-call form for examples and
// tests.
func RunCampaign(c Campaign) ([]Aggregate, error) {
	return Runner{}.Run(context.Background(), c)
}
