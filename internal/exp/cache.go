package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"gonoc/internal/core"
)

// Source is the read side of a content-addressed result store: Lookup
// resolves a scenario cache key (core.Scenario.CacheKey) to a
// previously measured result. Implementations must be safe for
// concurrent Lookup — the runner consults the source from every worker.
type Source interface {
	Lookup(key string) (core.Result, bool)
}

// Cache is a result store: a Source that also records fresh results.
// The runner calls Store from its single ordered-emission goroutine,
// concurrently with worker Lookups.
type Cache interface {
	Source
	Store(key string, r core.Result) error
}

// MemCache is an in-memory Cache with hit/miss accounting. The zero
// value is not ready; use NewMemCache.
type MemCache struct {
	mu     sync.RWMutex
	m      map[string]core.Result
	hits   int
	misses int
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: make(map[string]core.Result)} }

// Lookup implements Source.
func (c *MemCache) Lookup(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// Store implements Cache.
func (c *MemCache) Store(key string, r core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
	return nil
}

// Len returns the number of cached results.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits returns the number of successful Lookups so far.
func (c *MemCache) Hits() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits
}

// Misses returns the number of failed Lookups so far.
func (c *MemCache) Misses() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.misses
}

// cacheFile is the JSONL store inside a FileCache directory.
const cacheFile = "results.jsonl"

// FileCache is a Cache persisted as one JSONL file in a directory: one
// {"key": ..., "result": ...} object per line, appended (and flushed)
// as each result arrives — one line-sized write per simulation, so an
// interrupt at any point loses nothing already measured. The file is
// append-only during a campaign; Compact rewrites it without the
// superseded lines. Opening the
// cache replays the file, so an interrupted campaign resumes from
// whatever completed — a torn final line (from a killed process) is
// skipped, not fatal. The on-disk order is the runner's emission
// order, hence deterministic for a given campaign.
type FileCache struct {
	mem  *MemCache
	f    *os.File
	path string
}

// cacheEntry is the JSONL wire form of one cached result. Results can
// carry NaN metrics (a replication that measured no packet), which
// encoding/json rejects, so the wire form stores an explicit list of
// the fields that were NaN and zeroes them in the payload.
type cacheEntry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
	NaNs   []string    `json:"nans,omitempty"`
}

// nanFields enumerates the Result metrics that can be NaN, as name +
// accessor pairs shared by encode and decode.
var nanFields = []struct {
	name string
	get  func(*core.Result) *float64
}{
	{"mean_latency", func(r *core.Result) *float64 { return &r.MeanLatency }},
	{"p50_latency", func(r *core.Result) *float64 { return &r.P50Latency }},
	{"p95_latency", func(r *core.Result) *float64 { return &r.P95Latency }},
	{"mean_net_latency", func(r *core.Result) *float64 { return &r.MeanNetLatency }},
	{"mean_hops", func(r *core.Result) *float64 { return &r.MeanHops }},
	{"energy_per_packet", func(r *core.Result) *float64 { return &r.EnergyPerPacket }},
	{"total_energy", func(r *core.Result) *float64 { return &r.TotalEnergy }},
}

func encodeEntry(key string, r core.Result) cacheEntry {
	e := cacheEntry{Key: key, Result: r}
	for _, f := range nanFields {
		if p := f.get(&e.Result); math.IsNaN(*p) {
			*p = 0
			e.NaNs = append(e.NaNs, f.name)
		}
	}
	return e
}

func (e cacheEntry) decode() core.Result {
	r := e.Result
	for _, name := range e.NaNs {
		for _, f := range nanFields {
			if f.name == name {
				*f.get(&r) = math.NaN()
			}
		}
	}
	return r
}

// OpenFileCache opens (creating if needed) the JSONL result cache in
// dir. The caller must Close it to flush buffered appends.
func OpenFileCache(dir string) (*FileCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache dir: %w", err)
	}
	path := filepath.Join(dir, cacheFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: cache file: %w", err)
	}
	c := &FileCache{mem: NewMemCache(), f: f, path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var e cacheEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue // torn or foreign line; resume past it
		}
		_ = c.mem.Store(e.Key, e.decode())
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: reading cache: %w", err)
	}
	return c, nil
}

// Lookup implements Source.
func (c *FileCache) Lookup(key string) (core.Result, bool) { return c.mem.Lookup(key) }

// Store implements Cache, appending the entry to the JSONL file. A key
// already present (e.g. loaded at open) is refreshed in memory but not
// re-appended.
func (c *FileCache) Store(key string, r core.Result) error {
	c.mem.mu.Lock()
	_, dup := c.mem.m[key]
	c.mem.m[key] = r
	c.mem.mu.Unlock()
	if dup {
		return nil
	}
	b, err := json.Marshal(encodeEntry(key, r))
	if err != nil {
		return fmt.Errorf("exp: encoding cache entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("exp: appending cache entry: %w", err)
	}
	return nil
}

// Compact rewrites the JSONL store without its dead weight: torn or
// foreign lines, and superseded duplicates of a key (the last
// occurrence wins, matching what Open loads), which accumulate when
// several shard processes append to a shared cache directory. Entries
// keep their first-appearance order, so compacting a healthy file is
// byte-stable. The rewrite goes through a temp file and an atomic
// rename; a crash mid-compaction leaves the original intact. It
// returns the number of lines dropped.
//
// Compact requires a quiesced cache: it must not run while another
// process is appending to the same directory — a writer holding the
// old inode would lose every line appended after the scan (its handle
// survives the rename but the file it feeds is unlinked). Run it
// between campaigns, as `nocsweep -cache-compact` does.
func (c *FileCache) Compact() (dropped int, err error) {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("exp: compact rewind: %w", err)
	}
	// First pass: latest raw line per key, in first-appearance order.
	latest := make(map[string][]byte)
	var order []string
	lines := 0
	sc := bufio.NewScanner(c.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		lines++
		var e cacheEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue // torn or foreign line: dropped
		}
		if _, ok := latest[e.Key]; !ok {
			order = append(order, e.Key)
		}
		latest[e.Key] = append([]byte(nil), sc.Bytes()...)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("exp: compact scan: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), cacheFile+".compact-*")
	if err != nil {
		return 0, fmt.Errorf("exp: compact temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	// CreateTemp uses 0600; restore the store's usual mode so other
	// users of a shared cache directory can still open it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("exp: compact chmod: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, key := range order {
		w.Write(latest[key])
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("exp: compact write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("exp: compact rename: %w", err)
	}
	// The temp handle now refers to the file living at c.path (the fd
	// follows the inode across the rename) with its offset at the end,
	// so adopt it as the append handle directly: there is no window in
	// which a failed reopen could leave c.f on the unlinked old inode.
	// Prefer a fresh O_APPEND descriptor when available — shared-cache
	// writers from concurrent shard processes rely on append atomicity —
	// but fall back to the temp handle rather than fail.
	c.f.Close()
	if f, err := os.OpenFile(c.path, os.O_RDWR|os.O_APPEND, 0o644); err == nil {
		tmp.Close()
		c.f = f
	} else {
		c.f = tmp
	}
	return lines - len(order), nil
}

// Len returns the number of cached results.
func (c *FileCache) Len() int { return c.mem.Len() }

// Hits returns the number of successful Lookups so far.
func (c *FileCache) Hits() int { return c.mem.Hits() }

// Misses returns the number of failed Lookups so far.
func (c *FileCache) Misses() int { return c.mem.Misses() }

// Close closes the backing file. Entries are durable as soon as Store
// returns; Close only releases the descriptor.
func (c *FileCache) Close() error {
	return c.f.Close()
}

// ReportClose writes the cache's hit/miss counts to w and closes it —
// the shared teardown of every command's -cache flag.
func (c *FileCache) ReportClose(w io.Writer) error {
	fmt.Fprintf(w, "# cache: %d hits, %d misses\n", c.Hits(), c.Misses())
	return c.Close()
}
