package exp

import (
	"math"

	"gonoc/internal/core"
	"gonoc/internal/stats"
)

// Metric summarises one performance index across the replications of a
// grid point.
type Metric struct {
	// Mean is the cross-replication sample mean.
	Mean float64 `json:"mean"`
	// CI95 is the 95% confidence half-width around Mean, from the
	// Student-t quantile (replication counts are small); zero with
	// fewer than two replications.
	CI95 float64 `json:"ci95"`
}

// metricOf converts a summary into the record form, mapping the NaNs of
// degenerate sample counts to zero so aggregates always marshal.
func metricOf(s *stats.Summary) Metric {
	m := Metric{Mean: s.Mean(), CI95: s.CI95T()}
	if math.IsNaN(m.Mean) {
		m.Mean = 0
	}
	if math.IsNaN(m.CI95) {
		m.CI95 = 0
	}
	return m
}

// Aggregate is the cross-replication summary of one campaign grid
// point: mean and 95% confidence half-width for each reported index.
type Aggregate struct {
	Campaign string            `json:"campaign,omitempty"`
	Topo     core.TopologyKind `json:"topo"`
	Nodes    int               `json:"nodes"`
	Traffic  string            `json:"traffic"`
	FlitRate float64           `json:"flit_rate"`
	Reps     int               `json:"reps"`

	Throughput  Metric `json:"throughput"`
	Accepted    Metric `json:"accepted"`
	Latency     Metric `json:"latency"`
	P95Latency  Metric `json:"p95_latency"`
	MeanHops    Metric `json:"hops"`
	EnergyPerPk Metric `json:"energy_per_packet"`
}

// aggregator folds streamed outcomes into per-grid-point summaries. It
// is driven from the runner's single emission goroutine, so it needs no
// locking.
type aggregator struct {
	order []int // grid indices in first-seen (enumeration) order
	cells map[int]*aggCell
}

type aggCell struct {
	campaign string
	topo     core.TopologyKind
	nodes    int
	traffic  string
	flitRate float64

	throughput, accepted, latency, p95, hops, energy stats.Summary
}

func newAggregator() *aggregator {
	return &aggregator{cells: make(map[int]*aggCell)}
}

// add folds one outcome into its grid cell.
func (a *aggregator) add(o Outcome) {
	cell, ok := a.cells[o.Point.GridIndex]
	if !ok {
		cell = &aggCell{
			campaign: o.Campaign,
			topo:     o.Point.Topo,
			nodes:    o.Point.Nodes,
			traffic:  o.Point.Traffic,
			flitRate: o.Point.FlitRate,
		}
		a.cells[o.Point.GridIndex] = cell
		a.order = append(a.order, o.Point.GridIndex)
	}
	cell.throughput.Add(o.Result.Throughput)
	cell.accepted.Add(o.Result.AcceptedFlitRate)
	addFinite(&cell.latency, o.Result.MeanLatency)
	addFinite(&cell.p95, o.Result.P95Latency)
	addFinite(&cell.hops, o.Result.MeanHops)
	addFinite(&cell.energy, o.Result.EnergyPerPacket)
}

// addFinite folds one observation, skipping the NaNs a replication
// reports when no packet completed (e.g. a near-zero rate over a short
// window): one empty replication must not poison the cell's mean for
// the replications that did measure.
func addFinite(s *stats.Summary, v float64) {
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		s.Add(v)
	}
}

// build renders one cell as its aggregate record.
func (c *aggCell) build() Aggregate {
	return Aggregate{
		Campaign:    c.campaign,
		Topo:        c.topo,
		Nodes:       c.nodes,
		Traffic:     c.traffic,
		FlitRate:    c.flitRate,
		Reps:        int(c.throughput.Count()),
		Throughput:  metricOf(&c.throughput),
		Accepted:    metricOf(&c.accepted),
		Latency:     metricOf(&c.latency),
		P95Latency:  metricOf(&c.p95),
		MeanHops:    metricOf(&c.hops),
		EnergyPerPk: metricOf(&c.energy),
	}
}

// get returns the current aggregate of one grid point, with ok=false
// before any of its outcomes arrived. The adaptive runner polls it
// between rounds.
func (a *aggregator) get(grid int) (Aggregate, bool) {
	c, ok := a.cells[grid]
	if !ok {
		return Aggregate{}, false
	}
	return c.build(), true
}

// aggregates returns the summaries in campaign enumeration order.
func (a *aggregator) aggregates() []Aggregate {
	out := make([]Aggregate, 0, len(a.order))
	for _, gi := range a.order {
		out = append(out, a.cells[gi].build())
	}
	return out
}
