// Package stats provides the measurement substrate for the NoC
// simulations: streaming moments (Welford), histograms, time series,
// batch-means confidence intervals, and warm-up aware collectors for the
// two indexes the paper reports — throughput and latency.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming estimator for the mean and variance of a sample
// stream using Welford's numerically stable single-pass update. The zero
// value is ready to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN incorporates the same observation n times (an O(1) batched
// update, exact for mean and variance).
func (s *Summary) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	other := Summary{n: n, mean: x, m2: 0, min: x, max: x}
	s.Merge(&other)
}

// Merge folds another summary into this one (parallel Welford/Chan
// update). The argument is unchanged.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the sample mean, or NaN with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the unbiased sample variance (n-1 denominator), or
// NaN with fewer than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN with no observations.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with no observations.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Reset discards all observations.
func (s *Summary) Reset() { *s = Summary{} }

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean, using the normal quantile (the NoC runs collect thousands of
// samples, where the t correction is negligible).
func (s *Summary) CI95() float64 {
	const z = 1.959963984540054
	return z * s.StdErr()
}

// tQuantile975 holds the two-sided 95% (upper 97.5%) Student-t
// quantiles for 1..30 degrees of freedom; beyond that the normal
// quantile is substituted, understating the width by at most ~4% at
// the 31-dof handoff (t = 2.040 vs z = 1.960) and less as n grows.
var tQuantile975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95T returns the half-width of the 95% confidence interval for the
// mean using the Student-t quantile for n-1 degrees of freedom — the
// right interval for small sample counts such as cross-replication
// aggregates, where the normal quantile of CI95 would understate the
// width badly (by 2.2× at n=3).
func (s *Summary) CI95T() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	df := s.n - 1
	if df <= uint64(len(tQuantile975)) {
		return tQuantile975[df-1] * s.StdErr()
	}
	return s.CI95()
}

// Quantiler collects raw observations for exact quantiles. Intended for
// latency distributions, where the paper-level analysis needs medians
// and tails rather than only means.
type Quantiler struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (q *Quantiler) Add(x float64) {
	q.xs = append(q.xs, x)
	q.sorted = false
}

// Count returns the number of observations.
func (q *Quantiler) Count() int { return len(q.xs) }

// Reset discards all observations, keeping the sample storage for
// reuse.
func (q *Quantiler) Reset() {
	q.xs = q.xs[:0]
	q.sorted = false
}

// Quantile returns the p-quantile (0 <= p <= 1) with linear
// interpolation, or NaN with no observations.
func (q *Quantiler) Quantile(p float64) float64 {
	if len(q.xs) == 0 {
		return math.NaN()
	}
	if !q.sorted {
		sort.Float64s(q.xs)
		q.sorted = true
	}
	if p <= 0 {
		return q.xs[0]
	}
	if p >= 1 {
		return q.xs[len(q.xs)-1]
	}
	pos := p * float64(len(q.xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(q.xs) {
		return q.xs[lo]
	}
	return q.xs[lo]*(1-frac) + q.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (q *Quantiler) Median() float64 { return q.Quantile(0.5) }

// Histogram is a fixed-width bucketed counter over [Lo, Hi); values
// outside the range land in dedicated underflow/overflow buckets.
type Histogram struct {
	Lo, Hi    float64
	buckets   []uint64
	underflow uint64
	overflow  uint64
	count     uint64
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics on a degenerate range or non-positive bucket count.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]uint64, n)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.buckets) { // x infinitesimally below Hi
			i--
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations, including out-of-range.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Underflow returns the count of observations below Lo.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow returns the count of observations at or above Hi.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Mode returns the midpoint of the fullest bucket (ties resolve to the
// lowest), or NaN when every in-range bucket is empty.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, uint64(0)
	for i, c := range h.buckets {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	lo, hi := h.BucketBounds(best)
	return (lo + hi) / 2
}

// BatchMeans estimates a confidence interval for the mean of a correlated
// stationary series (e.g. per-cycle throughput) by the method of
// non-overlapping batch means: the series is divided into batches, each
// batch mean is treated as one approximately independent observation.
type BatchMeans struct {
	batchSize int
	current   Summary
	batches   Summary
}

// NewBatchMeans creates an estimator with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation of the underlying series.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if int(b.current.Count()) == b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() uint64 { return b.batches.Count() }

// Mean returns the grand mean across completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI95 returns the 95% half-width computed over batch means.
func (b *BatchMeans) CI95() float64 { return b.batches.CI95() }

// Series is an append-only time series of (x, y) points, used to build
// the figure curves (throughput or latency versus injection rate). A
// series built from replicated runs additionally carries the 95%
// confidence half-width of each point in CI, parallel to Y; a series
// without replication information leaves CI nil.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	CI   []float64
}

// Append adds one point. Mixing Append with AppendCI on the same series
// would desynchronise CI from Y, so a series sticks to one form.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// AppendCI adds one point with its 95% confidence half-width.
func (s *Series) AppendCI(x, y, ci float64) {
	s.Append(x, y)
	s.CI = append(s.CI, ci)
}

// HasCI reports whether the series carries confidence half-widths.
func (s *Series) HasCI() bool { return s.CI != nil }

// CIAt returns the confidence half-width recorded at x, with ok=false
// when x was never recorded or the series carries no intervals.
func (s *Series) CIAt(x float64) (ci float64, ok bool) {
	if s.CI == nil {
		return 0, false
	}
	for i, v := range s.X {
		if v == x {
			return s.CI[i], true
		}
	}
	return 0, false
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the first y value recorded at x, with ok=false when x was
// never recorded.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	for i, v := range s.X {
		if v == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest y value, or NaN for an empty series.
func (s *Series) MaxY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Knee returns the x position where y first exceeds factor times the
// value at the series start — the standard way of reading the saturation
// point off a latency curve. ok is false when the series never crosses.
func (s *Series) Knee(factor float64) (x float64, ok bool) {
	if len(s.Y) == 0 {
		return 0, false
	}
	base := s.Y[0]
	for i := range s.X {
		if s.Y[i] > base*factor {
			return s.X[i], true
		}
	}
	return 0, false
}
