package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 {
		t.Fatal("empty count != 0")
	}
	for name, v := range map[string]float64{
		"mean": s.Mean(), "var": s.Variance(), "min": s.Min(), "max": s.Max(),
	} {
		if !math.IsNaN(v) {
			t.Fatalf("empty %s = %v, want NaN", name, v)
		}
	}
}

func TestSummaryBasicMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single observation stats wrong")
	}
	if !math.IsNaN(s.Variance()) {
		t.Fatal("variance of one sample should be NaN")
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 5; i++ {
		a.Add(2)
	}
	for i := 0; i < 3; i++ {
		a.Add(7)
	}
	b.AddN(2, 5)
	b.AddN(7, 3)
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-9) {
		t.Fatalf("AddN mismatch: %v vs %v", a, b)
	}
	b.AddN(99, 0)
	if b.Count() != 8 {
		t.Fatal("AddN with n=0 changed count")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2.5, -3, 8, 0, 4.25, 11, -7, 3}
	var whole Summary
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var a, b Summary
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(&b)
		if !almostEqual(a.Mean(), whole.Mean(), 1e-9) ||
			!almostEqual(a.Variance(), whole.Variance(), 1e-9) ||
			a.Min() != whole.Min() || a.Max() != whole.Max() || a.Count() != whole.Count() {
			t.Fatalf("merge at %d diverges: %v vs %v", split, &a, &whole)
		}
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	if s.String() != "n=0" {
		t.Fatalf("empty string = %q", s.String())
	}
	s.Add(1)
	if s.String() == "" {
		t.Fatal("non-empty summary rendered empty string")
	}
}

// Property: merging any split equals sequential accumulation.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % (len(xs) + 1)
		var whole, a, b Summary
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		scale := math.Max(1, math.Abs(whole.Mean()))
		return almostEqual(a.Mean(), whole.Mean(), 1e-6*scale) && a.Count() == whole.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantiler(t *testing.T) {
	var q Quantiler
	if !math.IsNaN(q.Quantile(0.5)) {
		t.Fatal("empty quantiler should return NaN")
	}
	for i := 1; i <= 100; i++ {
		q.Add(float64(i))
	}
	if q.Count() != 100 {
		t.Fatal("count")
	}
	if got := q.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := q.Median(); !almostEqual(got, 50.5, 1e-9) {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := q.Quantile(0.95); math.Abs(got-95.05) > 0.2 {
		t.Fatalf("p95 = %v", got)
	}
	// Adding after querying re-sorts correctly.
	q.Add(-1000)
	if got := q.Quantile(0); got != -1000 {
		t.Fatalf("q0 after add = %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(4) != 1 {
		t.Fatal("bucket placement wrong")
	}
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bounds(2) = [%v,%v)", lo, hi)
	}
	if h.Buckets() != 5 {
		t.Fatal("buckets")
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if !math.IsNaN(h.Mode()) {
		t.Fatal("empty mode should be NaN")
	}
	h.Add(3.2)
	h.Add(3.7)
	h.Add(8.1)
	if got := h.Mode(); got != 3.5 {
		t.Fatalf("mode = %v, want 3.5", got)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(5, 1, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid histogram did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: histogram never loses observations.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-5, 5, 7)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		var inRange uint64
		for i := 0; i < h.Buckets(); i++ {
			inRange += h.Bucket(i)
		}
		return inRange+h.Underflow()+h.Overflow() == h.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 105; i++ {
		b.Add(float64(i % 10)) // each full batch has mean 4.5
	}
	if b.Batches() != 10 {
		t.Fatalf("batches = %d, want 10", b.Batches())
	}
	if !almostEqual(b.Mean(), 4.5, 1e-12) {
		t.Fatalf("grand mean = %v", b.Mean())
	}
	// All batch means identical: CI width 0.
	if !almostEqual(b.CI95(), 0, 1e-12) {
		t.Fatalf("CI = %v, want 0", b.CI95())
	}
}

func TestBatchMeansInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 0 did not panic")
		}
	}()
	NewBatchMeans(0)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "ring"
	if !math.IsNaN(s.MaxY()) {
		t.Fatal("empty MaxY should be NaN")
	}
	s.Append(0.1, 10)
	s.Append(0.2, 30)
	s.Append(0.3, 20)
	if s.Len() != 3 {
		t.Fatal("len")
	}
	if y, ok := s.YAt(0.2); !ok || y != 30 {
		t.Fatalf("YAt(0.2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(0.15); ok {
		t.Fatal("YAt missing x returned ok")
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestSeriesKnee(t *testing.T) {
	var s Series
	s.Append(0.1, 10)
	s.Append(0.2, 11)
	s.Append(0.3, 12)
	s.Append(0.4, 55) // first point > 3x base
	s.Append(0.5, 300)
	if x, ok := s.Knee(3); !ok || x != 0.4 {
		t.Fatalf("knee = %v,%v, want 0.4,true", x, ok)
	}
	var flat Series
	flat.Append(1, 5)
	flat.Append(2, 6)
	if _, ok := flat.Knee(3); ok {
		t.Fatal("flat series reported a knee")
	}
	var empty Series
	if _, ok := empty.Knee(2); ok {
		t.Fatal("empty series reported a knee")
	}
}

func TestCollectorWarmupExcluded(t *testing.T) {
	c := NewCollector(100)
	// During warm-up: ignored.
	c.PacketInjected(50, 6)
	c.PacketEjected(90, 40, 45, 6, 3)
	c.SourceBlocked(10)
	if c.PacketsInjected() != 0 || c.PacketsEjected() != 0 || c.SourceBlockedCycles() != 0 {
		t.Fatal("warm-up events were counted")
	}
	// A packet created during warm-up but ejected after must be excluded.
	c.PacketEjected(120, 95, 97, 6, 3)
	if c.PacketsEjected() != 0 {
		t.Fatal("packet created during warm-up was counted")
	}
	// Post-warm-up events count.
	c.PacketInjected(100, 6)
	c.PacketEjected(130, 100, 102, 6, 3)
	if c.PacketsInjected() != 1 || c.PacketsEjected() != 1 {
		t.Fatal("post-warm-up events missing")
	}
}

func TestCollectorThroughputAndLatency(t *testing.T) {
	c := NewCollector(0)
	// Window: cycles 0..99 (note() sees 0 and 99).
	c.PacketInjected(0, 6)
	for i := 0; i < 10; i++ {
		cycle := uint64(10*i + 9)
		if cycle > 0 {
			c.PacketInjected(cycle-5, 6)
		}
		c.PacketEjected(cycle, cycle-9, cycle-7, 6, 4)
	}
	_ = c.PacketsEjected()
	if c.MeasuredCycles() != 100 {
		t.Fatalf("window = %d, want 100", c.MeasuredCycles())
	}
	if !almostEqual(c.Throughput(), 60.0/100.0, 1e-12) {
		t.Fatalf("throughput = %v", c.Throughput())
	}
	if !almostEqual(c.ThroughputPerNode(10), 0.06, 1e-12) {
		t.Fatalf("per-node throughput = %v", c.ThroughputPerNode(10))
	}
	if !almostEqual(c.PacketThroughput(), 0.1, 1e-12) {
		t.Fatalf("packet throughput = %v", c.PacketThroughput())
	}
	if !almostEqual(c.MeanLatency(), 9, 1e-12) {
		t.Fatalf("latency = %v", c.MeanLatency())
	}
	if !almostEqual(c.MeanNetworkLatency(), 7, 1e-12) {
		t.Fatalf("network latency = %v", c.MeanNetworkLatency())
	}
	if !almostEqual(c.MeanHops(), 4, 1e-12) {
		t.Fatalf("hops = %v", c.MeanHops())
	}
	if !almostEqual(c.LatencyQuantile(0.5), 9, 1e-12) {
		t.Fatalf("median latency = %v", c.LatencyQuantile(0.5))
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(0)
	if c.Throughput() != 0 || c.PacketThroughput() != 0 || c.AcceptedRate() != 0 {
		t.Fatal("empty collector rates nonzero")
	}
	if !math.IsNaN(c.MeanLatency()) {
		t.Fatal("empty latency should be NaN")
	}
	if !math.IsNaN(c.ThroughputPerNode(0)) {
		t.Fatal("per-node with 0 nodes should be NaN")
	}
}

func TestCollectorAcceptedRate(t *testing.T) {
	c := NewCollector(0)
	c.PacketInjected(0, 6)
	c.PacketInjected(49, 6)
	if c.MeasuredCycles() != 50 {
		t.Fatalf("window = %d", c.MeasuredCycles())
	}
	if !almostEqual(c.AcceptedRate(), 12.0/50.0, 1e-12) {
		t.Fatalf("accepted = %v", c.AcceptedRate())
	}
	if c.FlitsInjected() != 12 {
		t.Fatal("flits injected")
	}
}

// CI95T applies the Student-t quantile at small sample counts and
// converges to the normal CI95 for large ones.
func TestCI95T(t *testing.T) {
	var s Summary
	for _, v := range []float64{10, 12, 14} {
		s.Add(v)
	}
	// n=3 → 2 dof → t = 4.303; stderr = 2/sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if got := s.CI95T(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95T = %v, want %v", got, want)
	}
	if !(s.CI95T() > s.CI95()) {
		t.Fatal("t interval not wider than normal interval at n=3")
	}
	var big Summary
	for i := 0; i < 1000; i++ {
		big.Add(float64(i % 10))
	}
	if math.Abs(big.CI95T()-big.CI95()) > 1e-12 {
		t.Fatal("CI95T does not fall back to the normal quantile at large n")
	}
	var one Summary
	one.Add(1)
	if !math.IsNaN(one.CI95T()) {
		t.Fatal("CI95T with one observation should be NaN")
	}
}
