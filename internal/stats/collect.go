package stats

import "math"

// Collector gathers the paper's two performance indexes for one
// simulation run: NoC throughput (flits and packets absorbed per cycle)
// and end-to-end packet latency (creation to tail-flit ejection), with a
// warm-up window excluded from measurement exactly as in steady-state
// simulation practice.
type Collector struct {
	WarmupCycles uint64

	// Offered/accepted accounting (post-warm-up).
	packetsInjected uint64
	flitsInjected   uint64
	packetsEjected  uint64
	flitsEjected    uint64
	sourceBlocked   uint64

	// Latency in cycles, per packet (post-warm-up).
	latency   Summary
	latencyQ  Quantiler
	hopCounts Summary
	netLat    Summary // network latency: injection of head flit -> ejection of tail

	firstMeasured uint64
	lastCycle     uint64
	started       bool
}

// NewCollector returns a collector that discards the first warmup cycles.
func NewCollector(warmup uint64) *Collector {
	return &Collector{WarmupCycles: warmup}
}

// Reset clears every measurement and installs a new warm-up window,
// keeping the allocated latency-sample storage — a reset collector
// observes a fresh run exactly like a new one, which lets campaign
// replications reuse one collector instead of reallocating its sample
// buffers per run.
func (c *Collector) Reset(warmup uint64) {
	c.WarmupCycles = warmup
	c.packetsInjected, c.flitsInjected = 0, 0
	c.packetsEjected, c.flitsEjected = 0, 0
	c.sourceBlocked = 0
	c.latency.Reset()
	c.latencyQ.Reset()
	c.hopCounts.Reset()
	c.netLat.Reset()
	c.firstMeasured, c.lastCycle = 0, 0
	c.started = false
}

// Measuring reports whether the given cycle is past warm-up.
func (c *Collector) Measuring(cycle uint64) bool { return cycle >= c.WarmupCycles }

// note records the cycle bounds of the measurement window.
func (c *Collector) note(cycle uint64) {
	if !c.started {
		c.firstMeasured = cycle
		c.started = true
	}
	if cycle > c.lastCycle {
		c.lastCycle = cycle
	}
}

// PacketInjected records the injection (network acceptance) of a packet
// of the given flit count at the given cycle.
func (c *Collector) PacketInjected(cycle uint64, flits int) {
	if !c.Measuring(cycle) {
		return
	}
	c.note(cycle)
	c.packetsInjected++
	c.flitsInjected += uint64(flits)
}

// SourceBlocked records a cycle in which a source had a flit ready but
// the network refused it (head-of-line blocking at injection).
func (c *Collector) SourceBlocked(cycle uint64) {
	if !c.Measuring(cycle) {
		return
	}
	c.note(cycle)
	c.sourceBlocked++
}

// PacketEjected records the complete ejection of a packet: cycle of the
// tail flit's consumption, the packet's creation and injection cycles,
// its flit count, and the hop count it traversed.
//
// Packets created during warm-up are excluded even if they drain after
// warm-up ends, so latency samples are not censored toward short values.
func (c *Collector) PacketEjected(cycle, createdCycle, injectedCycle uint64, flits, hops int) {
	if !c.Measuring(cycle) || !c.Measuring(createdCycle) {
		return
	}
	c.note(cycle)
	c.packetsEjected++
	c.flitsEjected += uint64(flits)
	lat := float64(cycle - createdCycle)
	c.latency.Add(lat)
	c.latencyQ.Add(lat)
	c.netLat.Add(float64(cycle - injectedCycle))
	c.hopCounts.Add(float64(hops))
}

// MeasuredCycles returns the width of the observed measurement window.
func (c *Collector) MeasuredCycles() uint64 {
	if !c.started {
		return 0
	}
	return c.lastCycle - c.firstMeasured + 1
}

// PacketsInjected returns injected packets post-warm-up.
func (c *Collector) PacketsInjected() uint64 { return c.packetsInjected }

// PacketsEjected returns fully ejected packets post-warm-up.
func (c *Collector) PacketsEjected() uint64 { return c.packetsEjected }

// FlitsEjected returns ejected flits post-warm-up.
func (c *Collector) FlitsEjected() uint64 { return c.flitsEjected }

// FlitsInjected returns injected flits post-warm-up.
func (c *Collector) FlitsInjected() uint64 { return c.flitsInjected }

// SourceBlockedCycles returns the count of blocked injection attempts.
func (c *Collector) SourceBlockedCycles() uint64 { return c.sourceBlocked }

// Throughput returns absorbed flits per cycle over the measurement
// window (the aggregate network throughput index of Figures 6, 8, 10).
func (c *Collector) Throughput() float64 {
	w := c.MeasuredCycles()
	if w == 0 {
		return 0
	}
	return float64(c.flitsEjected) / float64(w)
}

// ThroughputPerNode returns absorbed flits per cycle per node.
func (c *Collector) ThroughputPerNode(nodes int) float64 {
	if nodes <= 0 {
		return math.NaN()
	}
	return c.Throughput() / float64(nodes)
}

// PacketThroughput returns absorbed packets per cycle.
func (c *Collector) PacketThroughput() float64 {
	w := c.MeasuredCycles()
	if w == 0 {
		return 0
	}
	return float64(c.packetsEjected) / float64(w)
}

// AcceptedRate returns injected flits per cycle (the network's accepted
// load, which at saturation falls below the offered load).
func (c *Collector) AcceptedRate() float64 {
	w := c.MeasuredCycles()
	if w == 0 {
		return 0
	}
	return float64(c.flitsInjected) / float64(w)
}

// MeanLatency returns mean end-to-end packet latency in cycles
// (creation to tail ejection, queueing at the source included).
func (c *Collector) MeanLatency() float64 { return c.latency.Mean() }

// LatencySummary exposes the full latency summary.
func (c *Collector) LatencySummary() *Summary { return &c.latency }

// LatencyQuantile returns the p-quantile of packet latency.
func (c *Collector) LatencyQuantile(p float64) float64 { return c.latencyQ.Quantile(p) }

// MeanNetworkLatency returns mean injection-to-ejection latency,
// excluding source queueing.
func (c *Collector) MeanNetworkLatency() float64 { return c.netLat.Mean() }

// MeanHops returns the mean routed hop count of ejected packets — the
// simulation-side estimate of E[D] validated against the analytic value
// in the paper's Figure 5.
func (c *Collector) MeanHops() float64 { return c.hopCounts.Mean() }

// HopsSummary exposes the hop count summary.
func (c *Collector) HopsSummary() *Summary { return &c.hopCounts }
