package telemetry

import "io"

// Options asks a run to capture per-cycle telemetry. It travels on
// core.Scenario but — like the Engine and StepParallel knobs — is
// excluded from the cache key and from serialization: capture observes
// a run, it never changes the result.
type Options struct {
	// W receives the encoded stream. Nil disables capture.
	W io.Writer
	// ChunkLen overrides the samples-per-chunk (DefaultChunkLen if 0).
	ChunkLen int
	// Stats, when non-nil, is filled with the recorder's final
	// counters after the capture is flushed at run end.
	Stats *Stats
}
