// Package telemetry implements an FTDC-style per-cycle capture of the
// network's probe counters: a preallocated ring of sample rows is
// delta-encoded (zigzag varints with zero run-length elision) into
// length-framed chunks on an io.Writer. The design goals, in order:
//
//  1. Allocation-free steady state. The ring, the encode buffer, and
//     the frame header are sized once in NewRecorder; Sample and the
//     chunk flush never allocate, so telemetry-on runs pass the same
//     allocs/packet gate as telemetry-off runs.
//  2. Deterministic bytes. The encoding is a pure function of the
//     sampled values, so emitted bytes/cycle is a gateable counter and
//     parallel/serial captures can be compared byte for byte.
//  3. Independently decodable chunks. Every series restarts from an
//     absolute value at each chunk boundary, so a reader can seek by
//     frame without unwinding the whole file.
//
// One capture is a header followed by zero or more chunks:
//
//	header  = magic "NOCTELE1" | uvarint nodes | uvarint links | uvarint chunkLen
//	chunk   = uvarint len(payload) | payload
//	payload = uvarint count | series[0] | ... | series[M-1]
//	series  = uvarint absolute first value | delta*
//	delta   = uvarint zigzag(v[i]-v[i-1])            // non-zero
//	        | 0x00 | uvarint extraZeros               // run of 1+extraZeros zero deltas
//
// with M = 1 + 3*nodes + links series laid out as
// [cycle][occupancy x nodes][injected x nodes][ejected x nodes][link x links].
// Cumulative counters (injected/ejected/link) delta to small positive
// numbers; occupancy deltas hover around zero; the cycle series encodes
// idle fast-forward gaps as a single large delta. Quiescent stretches
// where nothing changes collapse into zero runs across every series.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic begins every capture stream.
const Magic = "NOCTELE1"

// DefaultChunkLen is the samples-per-chunk used when Options.ChunkLen
// is zero: large enough to amortise framing, small enough that a
// truncated tail loses little.
const DefaultChunkLen = 512

// Spec fixes the shape of a capture: the series count and chunk size
// are pure functions of it, so two captures with equal specs and equal
// samples are byte-identical.
type Spec struct {
	Nodes    int
	Links    int
	ChunkLen int
}

// Series returns the number of parallel series M in a capture row.
func (s Spec) Series() int { return 1 + 3*s.Nodes + s.Links }

func (s Spec) validate() error {
	if s.Nodes <= 0 || s.Links < 0 || s.ChunkLen <= 0 {
		return fmt.Errorf("telemetry: invalid spec %+v", s)
	}
	return nil
}

// Stats are the recorder's cumulative emission counters. Bytes includes
// the header and every frame written so far; it advances only on chunk
// flush, so call Recorder.Flush before reading a final value.
type Stats struct {
	Bytes   uint64 // total bytes written (header + frames)
	Samples uint64 // rows sampled
	Chunks  uint64 // frames emitted
}

// Recorder accumulates sample rows in a preallocated ring and flushes
// them as delta-encoded chunks. Methods are not safe for concurrent
// use; in the parallel engine the single sampling goroutine calls
// Sample between Step calls, which is the supported pattern.
type Recorder struct {
	spec Spec
	m    int // series per row

	ring  []uint64 // m * chunkLen, row-major
	count int      // rows currently buffered

	enc  []byte   // chunk payload scratch, cap = worst case
	head [10]byte // frame-length scratch
	row  []uint64 // Sample's staging row

	w     io.Writer
	err   error
	stats Stats
}

// NewRecorder sizes a recorder for spec. ChunkLen must be positive
// (use DefaultChunkLen). All buffers are allocated here; no later call
// allocates.
func NewRecorder(spec Spec) (*Recorder, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m := spec.Series()
	r := &Recorder{
		spec: spec,
		m:    m,
		ring: make([]uint64, m*spec.ChunkLen),
		row:  make([]uint64, m),
	}
	// Worst case per series: 10-byte absolute plus 11 bytes per delta
	// (a lone zero delta costs a 1-byte token and a 10-byte run
	// length; non-zero deltas cost at most 10). Plus the sample count.
	r.enc = make([]byte, 0, binary.MaxVarintLen64+m*(binary.MaxVarintLen64+(spec.ChunkLen-1)*(binary.MaxVarintLen64+1)))
	return r, nil
}

// Spec returns the shape the recorder was sized for.
func (r *Recorder) Spec() Spec { return r.spec }

// Start binds the recorder to w, writes the capture header, and resets
// the ring and counters. A recorder may be restarted on a new writer;
// equal sample sequences then produce byte-identical streams.
func (r *Recorder) Start(w io.Writer) error {
	r.w = w
	r.err = nil
	r.count = 0
	r.stats = Stats{}
	h := r.enc[:0]
	h = append(h, Magic...)
	h = binary.AppendUvarint(h, uint64(r.spec.Nodes))
	h = binary.AppendUvarint(h, uint64(r.spec.Links))
	h = binary.AppendUvarint(h, uint64(r.spec.ChunkLen))
	n, err := w.Write(h)
	r.stats.Bytes += uint64(n)
	if err != nil {
		r.err = err
	}
	return err
}

// Sample records one row from the network's probe views. Slice lengths
// must match the spec (occ/inj/ej of Nodes, link of Links); a mismatch
// poisons the recorder with a sticky error. Errors (including write
// failures from chunk flushes) surface from Flush or Err.
func (r *Recorder) Sample(cycle uint64, occ []int32, inj, ej, link []uint64) {
	if r.err != nil {
		return
	}
	n, l := r.spec.Nodes, r.spec.Links
	if len(occ) != n || len(inj) != n || len(ej) != n || len(link) != l {
		r.err = fmt.Errorf("telemetry: sample shape (%d,%d,%d,%d) does not match spec (nodes=%d links=%d)",
			len(occ), len(inj), len(ej), len(link), n, l)
		return
	}
	row := r.row
	row[0] = cycle
	for i, v := range occ {
		row[1+i] = uint64(uint32(v)) // occupancy is non-negative; widen without sign noise
	}
	copy(row[1+n:], inj)
	copy(row[1+2*n:], ej)
	copy(row[1+3*n:], link)
	r.Append(row)
}

// Append records one raw row (cycle followed by the series values in
// spec order). It is the low-level path used by Sample and by tools
// that re-encode decoded captures.
func (r *Recorder) Append(row []uint64) {
	if r.err != nil {
		return
	}
	if len(row) != r.m {
		r.err = fmt.Errorf("telemetry: row has %d values, spec has %d series", len(row), r.m)
		return
	}
	// Ring is column-major (series-major): ring[s*chunkLen+i] is
	// series s at buffered sample i, so encoding walks each series
	// contiguously.
	cl := r.spec.ChunkLen
	for s, v := range row {
		r.ring[s*cl+r.count] = v
	}
	r.count++
	r.stats.Samples++
	if r.count == cl {
		r.flushChunk()
	}
}

// Flush encodes any buffered partial chunk and returns the sticky
// error state. Call it once at capture end; chunk-full flushes happen
// automatically inside Append.
func (r *Recorder) Flush() error {
	r.flushChunk()
	return r.err
}

// Err returns the sticky error without flushing.
func (r *Recorder) Err() error { return r.err }

// Stats returns the cumulative emission counters.
func (r *Recorder) Stats() Stats { return r.stats }

func (r *Recorder) flushChunk() {
	if r.err != nil || r.count == 0 {
		return
	}
	if r.w == nil {
		r.err = errors.New("telemetry: Sample before Start")
		return
	}
	cl := r.spec.ChunkLen
	enc := binary.AppendUvarint(r.enc[:0], uint64(r.count))
	for s := 0; s < r.m; s++ {
		col := r.ring[s*cl : s*cl+r.count]
		enc = binary.AppendUvarint(enc, col[0])
		zeros := uint64(0)
		for i := 1; i < len(col); i++ {
			d := col[i] - col[i-1] // wraparound two's complement delta
			if d == 0 {
				zeros++
				continue
			}
			if zeros > 0 {
				enc = append(enc, 0)
				enc = binary.AppendUvarint(enc, zeros-1)
				zeros = 0
			}
			enc = binary.AppendUvarint(enc, zigzag(int64(d)))
		}
		if zeros > 0 {
			enc = append(enc, 0)
			enc = binary.AppendUvarint(enc, zeros-1)
		}
	}
	hn := binary.PutUvarint(r.head[:], uint64(len(enc)))
	n, err := r.w.Write(r.head[:hn])
	r.stats.Bytes += uint64(n)
	if err == nil {
		n, err = r.w.Write(enc)
		r.stats.Bytes += uint64(n)
	}
	if err != nil {
		r.err = err
		return
	}
	r.stats.Chunks++
	r.count = 0
}

// zigzag maps signed deltas to unsigned varint-friendly values:
// 0,-1,1,-2,2... -> 0,1,2,3,4...
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
