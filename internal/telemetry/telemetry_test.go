package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestZigzagRoundtrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
	// The mapping must be small for small magnitudes so varints stay short.
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(-2) != 3 {
		t.Errorf("zigzag order wrong: -1->%d 1->%d -2->%d", zigzag(-1), zigzag(1), zigzag(-2))
	}
}

// record encodes rows (each 1+3*nodes+links long) and returns the raw
// stream plus the recorder's stats.
func record(t *testing.T, spec Spec, rows [][]uint64) ([]byte, Stats) {
	t.Helper()
	r, err := NewRecorder(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Start(&buf); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		r.Append(row)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Bytes != uint64(buf.Len()) {
		t.Fatalf("Stats.Bytes = %d, stream is %d bytes", st.Bytes, buf.Len())
	}
	if st.Samples != uint64(len(rows)) {
		t.Fatalf("Stats.Samples = %d, appended %d", st.Samples, len(rows))
	}
	return buf.Bytes(), st
}

func randomRows(spec Spec, n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	m := spec.Series()
	rows := make([][]uint64, n)
	cum := make([]uint64, m)
	cycle := uint64(0)
	for i := range rows {
		cycle += uint64(1 + rng.Intn(50)) // occasional large gaps, like SkipTo
		row := make([]uint64, m)
		row[0] = cycle
		for s := 1; s < m; s++ {
			if rng.Intn(3) == 0 { // many series idle per cycle
				cum[s] += uint64(rng.Intn(5))
			}
			row[s] = cum[s]
		}
		rows[i] = row
	}
	return rows
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	spec := Spec{Nodes: 5, Links: 7, ChunkLen: 16}
	for _, n := range []int{1, 15, 16, 17, 160, 161} { // partial, exact, wrapping chunks
		rows := randomRows(spec, n, int64(n))
		raw, st := record(t, spec, rows)
		wantChunks := uint64((n + spec.ChunkLen - 1) / spec.ChunkLen)
		if st.Chunks != wantChunks {
			t.Fatalf("n=%d: Chunks = %d, want %d", n, st.Chunks, wantChunks)
		}
		c, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("n=%d: Decode: %v", n, err)
		}
		if c.Spec() != spec {
			t.Fatalf("n=%d: decoded spec %+v", n, c.Spec())
		}
		if c.Samples() != n {
			t.Fatalf("n=%d: decoded %d samples", n, c.Samples())
		}
		for i, want := range rows {
			got := c.Row(i)
			for s := range want {
				if got[s] != want[s] {
					t.Fatalf("n=%d: sample %d series %d = %d, want %d", n, i, s, got[s], want[s])
				}
			}
		}
	}
}

func TestReencodeByteIdentity(t *testing.T) {
	// Decoding a capture and re-appending its rows must reproduce the
	// identical byte stream: chunk boundaries are a pure function of
	// the row sequence. This is what noctsd roundtrip relies on.
	spec := Spec{Nodes: 4, Links: 6, ChunkLen: 8}
	rows := randomRows(spec, 50, 99)
	raw, _ := record(t, spec, rows)
	c, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(c.Spec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Start(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Samples(); i++ {
		r.Append(c.Row(i))
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("re-encoded stream differs: %d vs %d bytes", len(raw), buf.Len())
	}
}

func TestSampleShapeMismatch(t *testing.T) {
	r, err := NewRecorder(Spec{Nodes: 2, Links: 1, ChunkLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Start(&buf); err != nil {
		t.Fatal(err)
	}
	r.Sample(1, make([]int32, 3), make([]uint64, 2), make([]uint64, 2), make([]uint64, 1))
	if r.Err() == nil {
		t.Fatal("shape mismatch not detected")
	}
	if err := r.Flush(); err == nil {
		t.Fatal("sticky error lost by Flush")
	}
}

func TestSampleBeforeStart(t *testing.T) {
	r, err := NewRecorder(Spec{Nodes: 1, Links: 1, ChunkLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Sample(1, []int32{0}, []uint64{0}, []uint64{0}, []uint64{0}) // chunkLen 1: flushes immediately
	if r.Err() == nil {
		t.Fatal("Sample before Start not detected")
	}
}

func TestStartResetsForReuse(t *testing.T) {
	spec := Spec{Nodes: 3, Links: 2, ChunkLen: 4}
	rows := randomRows(spec, 11, 7)
	r, err := NewRecorder(spec)
	if err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	for _, buf := range []*bytes.Buffer{&first, &second} {
		if err := r.Start(buf); err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			r.Append(row)
		}
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("restarted recorder produced a different stream")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	spec := Spec{Nodes: 2, Links: 2, ChunkLen: 4}
	raw, _ := record(t, spec, randomRows(spec, 10, 3))
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated stream decoded without error")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic decoded without error")
	}
	if _, err := Decode(bytes.NewReader(raw[:4])); err == nil {
		t.Error("short header decoded without error")
	}
}

func TestRecorderDoesNotAllocateSteadyState(t *testing.T) {
	spec := Spec{Nodes: 16, Links: 48, ChunkLen: 32}
	r, err := NewRecorder(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Grow(1 << 20) // keep the test writer out of the measurement
	if err := r.Start(&buf); err != nil {
		t.Fatal(err)
	}
	occ := make([]int32, spec.Nodes)
	inj := make([]uint64, spec.Nodes)
	ej := make([]uint64, spec.Nodes)
	link := make([]uint64, spec.Links)
	cycle := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		cycle++
		inj[int(cycle)%spec.Nodes]++
		link[int(cycle)%spec.Links] += 2
		r.Sample(cycle, occ, inj, ej, link)
	})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("Sample allocates %v per call", allocs)
	}
}
