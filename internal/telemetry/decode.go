package telemetry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Capture is a fully materialised telemetry stream: Samples() rows of
// Spec().Series() values each, stored row-major with the cycle number
// at column 0 (the layout Recorder.Append takes, so a capture can be
// re-encoded row by row).
type Capture struct {
	spec Spec
	data []uint64 // samples * m, row-major
}

// Decode reads one complete capture from r. It validates the magic,
// the spec, and every frame; a truncated or corrupt stream is an
// error, not a short result.
func Decode(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("telemetry: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("telemetry: bad magic %q", magic)
	}
	var spec Spec
	for _, dst := range []*int{&spec.Nodes, &spec.Links, &spec.ChunkLen} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("telemetry: reading header: %w", err)
		}
		*dst = int(v)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c := &Capture{spec: spec}
	m := spec.Series()
	payload := make([]byte, 0, 1<<16)
	col := make([]uint64, spec.ChunkLen)
	for {
		plen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: reading frame length: %w", err)
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("telemetry: reading %d-byte frame: %w", plen, err)
		}
		if err := c.decodeChunk(payload, m, col); err != nil {
			return nil, err
		}
	}
}

// decodeChunk appends one frame's rows to c.data. col is scratch for
// one decoded series.
func (c *Capture) decodeChunk(p []byte, m int, col []uint64) error {
	count, n := binary.Uvarint(p)
	if n <= 0 || count == 0 || int(count) > c.spec.ChunkLen {
		return fmt.Errorf("telemetry: bad chunk sample count %d", count)
	}
	p = p[n:]
	cnt := int(count)
	base := len(c.data)
	c.data = append(c.data, make([]uint64, cnt*m)...)
	for s := 0; s < m; s++ {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("telemetry: truncated series %d", s)
		}
		p = p[n:]
		col[0] = v
		for i := 1; i < cnt; {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("telemetry: truncated series %d at sample %d", s, i)
			}
			p = p[n:]
			if u == 0 {
				extra, n := binary.Uvarint(p)
				if n <= 0 {
					return fmt.Errorf("telemetry: truncated zero run in series %d", s)
				}
				p = p[n:]
				run := int(extra) + 1
				if i+run > cnt {
					return fmt.Errorf("telemetry: zero run of %d overflows chunk of %d in series %d", run, cnt, s)
				}
				for k := 0; k < run; k++ {
					col[i] = v
					i++
				}
				continue
			}
			v += uint64(unzigzag(u))
			col[i] = v
			i++
		}
		for i := 0; i < cnt; i++ {
			c.data[base+i*m+s] = col[i]
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("telemetry: %d trailing bytes in chunk", len(p))
	}
	return nil
}

// Spec returns the capture's shape.
func (c *Capture) Spec() Spec { return c.spec }

// Samples returns the number of decoded rows.
func (c *Capture) Samples() int {
	if m := c.spec.Series(); m > 0 {
		return len(c.data) / m
	}
	return 0
}

// Row returns sample i's raw values (cycle at index 0), aliasing the
// capture's backing store.
func (c *Capture) Row(i int) []uint64 {
	m := c.spec.Series()
	return c.data[i*m : (i+1)*m]
}

// Cycle returns the simulation cycle of sample i.
func (c *Capture) Cycle(i int) uint64 { return c.data[i*c.spec.Series()] }

// Occ returns the buffered-flit occupancy of node at sample i.
func (c *Capture) Occ(i, node int) uint64 { return c.Row(i)[1+node] }

// Inj returns node's cumulative injected flits at sample i.
func (c *Capture) Inj(i, node int) uint64 { return c.Row(i)[1+c.spec.Nodes+node] }

// Ej returns node's cumulative ejected flits at sample i.
func (c *Capture) Ej(i, node int) uint64 { return c.Row(i)[1+2*c.spec.Nodes+node] }

// Link returns channel l's cumulative flit traversals at sample i.
func (c *Capture) Link(i, l int) uint64 { return c.Row(i)[1+3*c.spec.Nodes+l] }
