package sqlitefile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVarint(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x00}},
		{0x7f, []byte{0x7f}},
		{0x80, []byte{0x81, 0x00}},
		{0x3fff, []byte{0xff, 0x7f}},
		{0x4000, []byte{0x81, 0x80, 0x00}},
	}
	var b [10]byte
	for _, c := range cases {
		n := putVarint(b[:], c.v)
		if !bytes.Equal(b[:n], c.want) {
			t.Errorf("putVarint(%#x) = % x, want % x", c.v, b[:n], c.want)
		}
	}
	if n := putVarint(b[:], 1<<60); n != 9 {
		t.Errorf("putVarint(1<<60) used %d bytes, want 9", n)
	}
}

func TestHeaderAndStructure(t *testing.T) {
	db := New()
	tab := db.CreateTable("t", "CREATE TABLE t(a INTEGER, b REAL, c TEXT)", 3)
	tab.Append(int64(1), 2.5, "three")
	tab.Append(nil, 0.0, "")
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw)%pageSize != 0 {
		t.Fatalf("file size %d not page aligned", len(raw))
	}
	if !bytes.HasPrefix(raw, []byte("SQLite format 3\x00")) {
		t.Fatal("missing magic header")
	}
	if got := binary.BigEndian.Uint32(raw[28:]); int(got)*pageSize != len(raw) {
		t.Fatalf("header page count %d, file has %d pages", got, len(raw)/pageSize)
	}
	if raw[100] != leafPage {
		t.Fatalf("page 1 b-tree type %d, want leaf %d", raw[100], leafPage)
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() []byte {
		db := New()
		tab := db.CreateTable("runs", "CREATE TABLE runs(x INTEGER, y REAL)", 2)
		for i := 0; i < 5000; i++ { // forces interior pages
			tab.Append(int64(i), float64(i)*0.5)
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical builds produced different bytes")
	}
}

func TestErrorsStick(t *testing.T) {
	db := New()
	tab := db.CreateTable("t", "CREATE TABLE t(a)", 1)
	tab.Append(1, 2) // wrong arity
	tab.Append(3)
	if _, err := db.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("arity error not surfaced")
	}
	db2 := New()
	tab2 := db2.CreateTable("t", "CREATE TABLE t(a)", 1)
	tab2.Append(struct{}{})
	if _, err := db2.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("unsupported type not surfaced")
	}
}

// TestSQLite3Readable round-trips a multi-page database through the
// real sqlite3 shell when one is on PATH (integrity check + queries).
func TestSQLite3Readable(t *testing.T) {
	bin, err := exec.LookPath("sqlite3")
	if err != nil {
		t.Skip("sqlite3 CLI not available")
	}
	db := New()
	runs := db.CreateTable("runs",
		"CREATE TABLE runs(topo TEXT, nodes INTEGER, rate REAL, note TEXT)", 4)
	n := 3000 // several leaf pages + an interior level
	var wantSum int64
	for i := 0; i < n; i++ {
		runs.Append("mesh", int64(i), float64(i)/8, fmt.Sprintf("row-%d", i))
		wantSum += int64(i)
	}
	empty := db.CreateTable("empty", "CREATE TABLE empty(a INTEGER)", 1)
	_ = empty
	path := filepath.Join(t.TempDir(), "t.db")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	query := func(sql string) string {
		out, err := exec.Command(bin, path, sql).CombinedOutput()
		if err != nil {
			t.Fatalf("sqlite3 %q: %v\n%s", sql, err, out)
		}
		return strings.TrimSpace(string(out))
	}
	if got := query("PRAGMA integrity_check;"); got != "ok" {
		t.Fatalf("integrity_check = %q", got)
	}
	if got := query("SELECT count(*), sum(nodes) FROM runs;"); got != fmt.Sprintf("%d|%d", n, wantSum) {
		t.Fatalf("count/sum = %q", got)
	}
	if got := query("SELECT note FROM runs WHERE nodes = 2999;"); got != "row-2999" {
		t.Fatalf("point query = %q", got)
	}
	if got := query("SELECT count(*) FROM empty;"); got != "0" {
		t.Fatalf("empty table count = %q", got)
	}
	if got := query("SELECT rate FROM runs WHERE nodes = 4;"); got != "0.5" {
		t.Fatalf("real column = %q", got)
	}
}
