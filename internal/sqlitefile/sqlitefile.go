// Package sqlitefile writes single-file SQLite databases from scratch —
// no driver, no cgo, no dependency. It implements just enough of the
// file format (https://sqlite.org/fileformat2.html) for an archival
// result store: rowid tables with NULL/integer/real/text columns,
// written once and then queried with any stock sqlite3.
//
// The writer accumulates rows in memory and emits the complete
// database on WriteTo: page 1 holds the header and the sqlite_master
// b-tree, each table becomes a rowid b-tree of leaf pages with
// interior pages layered on top as needed. Byte output is a pure
// function of the tables and rows appended, so equal campaigns produce
// byte-identical archives.
//
// Limits (checked, not silent): a single row's encoded record must fit
// in one leaf page (no overflow chains) — comfortably thousands of
// numeric columns — and the schema must fit on page 1.
package sqlitefile

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

const (
	pageSize = 4096
	// maxLocal is the largest leaf-cell payload stored without
	// overflow pages: usable - 35 per the format spec.
	maxLocal = pageSize - 35

	leafPage     = 13
	interiorPage = 5
)

// DB is an in-memory SQLite database being assembled.
type DB struct {
	tables []*Table
}

// Table is one rowid table; append rows in the order they should get
// rowids 1..n.
type Table struct {
	name string
	sql  string
	cols int
	rows [][]byte // encoded record payloads
	err  error
}

// New returns an empty database.
func New() *DB { return &DB{} }

// CreateTable registers a table. sql is the complete CREATE TABLE
// statement stored in sqlite_master (sqlite parses it to name the
// columns); cols is the column count every appended row must match.
func (d *DB) CreateTable(name, sql string, cols int) *Table {
	t := &Table{name: name, sql: sql, cols: cols}
	d.tables = append(d.tables, t)
	return t
}

// Append adds one row. Supported values: nil, bool, int, int64,
// uint64, float64, string, []byte. The first error sticks and
// surfaces from DB.WriteTo.
func (t *Table) Append(vals ...any) {
	if t.err != nil {
		return
	}
	if len(vals) != t.cols {
		t.err = fmt.Errorf("sqlitefile: table %s: row has %d values, want %d", t.name, len(vals), t.cols)
		return
	}
	rec, err := encodeRecord(vals)
	if err != nil {
		t.err = fmt.Errorf("sqlitefile: table %s: %w", t.name, err)
		return
	}
	if len(rec) > maxLocal {
		t.err = fmt.Errorf("sqlitefile: table %s: %d-byte row exceeds single-page payload %d", t.name, len(rec), maxLocal)
		return
	}
	t.rows = append(t.rows, rec)
}

// WriteFile writes the database to path (truncating).
func (d *DB) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTo assembles the database and writes it to w (io.WriterTo).
func (d *DB) WriteTo(w io.Writer) (int64, error) {
	for _, t := range d.tables {
		if t.err != nil {
			return 0, t.err
		}
	}
	// Build every data table's b-tree, then number pages: the schema
	// root is page 1, data pages follow in table order (leaves first,
	// root last within each table).
	next := 2
	roots := make([]int, len(d.tables))
	var pages []*page // data pages in page-number order, starting at 2
	for i, t := range d.tables {
		tp := buildTree(t.rows)
		for _, p := range tp {
			p.number = next
			next++
		}
		roots[i] = tp[len(tp)-1].number // buildTree returns root last
		// Emit in number order (assignment order).
		pages = append(pages, tp...)
	}
	// sqlite_master: one row per table.
	schemaRows := make([][]byte, len(d.tables))
	for i, t := range d.tables {
		rec, err := encodeRecord([]any{"table", t.name, t.name, int64(roots[i]), t.sql})
		if err != nil {
			return 0, err
		}
		schemaRows[i] = rec
	}
	schema := buildTree(schemaRows)
	if len(schema) != 1 {
		return 0, fmt.Errorf("sqlitefile: %d tables overflow the page-1 schema", len(d.tables))
	}
	schema[0].number = 1

	npages := next - 1
	buf := make([]byte, pageSize*npages)
	writeHeader(buf, npages)
	schema[0].serialize(buf[:pageSize], 100)
	for _, p := range pages {
		off := (p.number - 1) * pageSize
		p.serialize(buf[off:off+pageSize], 0)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// page is one b-tree page under construction. Leaves carry fully
// encoded cells; interiors carry child references resolved to page
// numbers just before serialization.
type page struct {
	leaf     bool
	cells    [][]byte // leaf: varint(len) varint(rowid) payload
	children []*page  // interior: cell children + rightmost (last)
	keys     []uint64 // interior: max rowid per child
	maxRowid uint64
	number   int
}

// buildTree packs rows into leaves (rowids 1..n) and layers interior
// pages until a single root remains. The root is the LAST page of the
// returned slice; all child links are by *page, resolved to numbers
// later.
func buildTree(rows [][]byte) []*page {
	var all, level []*page
	var scratch [20]byte
	cur := &page{leaf: true}
	free := pageSize - 8
	for i, rec := range rows {
		rowid := uint64(i + 1)
		n := putVarint(scratch[:], uint64(len(rec)))
		n += putVarint(scratch[n:], rowid)
		cell := make([]byte, n+len(rec))
		copy(cell, scratch[:n])
		copy(cell[n:], rec)
		if cost := len(cell) + 2; cost > free {
			all = append(all, cur)
			level = append(level, cur)
			cur = &page{leaf: true}
			free = pageSize - 8
		}
		cur.cells = append(cur.cells, cell)
		cur.maxRowid = rowid
		free -= len(cell) + 2
	}
	all = append(all, cur) // empty table => one empty leaf root
	level = append(level, cur)
	for len(level) > 1 {
		var parents []*page
		p := &page{}
		// Conservative per-child cost: 2-byte pointer + 4-byte child
		// page + up-to-9-byte key varint.
		const childCost = 2 + 4 + 9
		free := pageSize - 12
		for _, ch := range level {
			if childCost > free && len(p.children) > 0 {
				parents = append(parents, p)
				p = &page{}
				free = pageSize - 12
			}
			p.children = append(p.children, ch)
			p.keys = append(p.keys, ch.maxRowid)
			p.maxRowid = ch.maxRowid
			free -= childCost
		}
		parents = append(parents, p)
		all = append(all, parents...)
		level = parents
	}
	return all
}

// serialize renders the page into buf (one full page) with the b-tree
// header at hdrOff (100 on page 1, 0 elsewhere).
func (p *page) serialize(buf []byte, hdrOff int) {
	hdrLen := 8
	typ := byte(leafPage)
	ncells := len(p.cells)
	if !p.leaf {
		hdrLen = 12
		typ = interiorPage
		ncells = len(p.children) - 1
	}
	// Interior cells: 4-byte child page + varint key, for all children
	// but the last (which becomes the rightmost pointer).
	cells := p.cells
	if !p.leaf {
		cells = make([][]byte, ncells)
		for i := 0; i < ncells; i++ {
			var c [13]byte
			binary.BigEndian.PutUint32(c[:4], uint32(p.children[i].number))
			n := 4 + putVarint(c[4:], p.keys[i])
			cells[i] = append([]byte(nil), c[:n]...)
		}
	}
	total := 0
	for _, c := range cells {
		total += len(c)
	}
	content := pageSize - total
	buf[hdrOff] = typ
	binary.BigEndian.PutUint16(buf[hdrOff+3:], uint16(ncells))
	binary.BigEndian.PutUint16(buf[hdrOff+5:], uint16(content))
	if !p.leaf {
		binary.BigEndian.PutUint32(buf[hdrOff+8:], uint32(p.children[len(p.children)-1].number))
	}
	ptr := hdrOff + hdrLen
	off := content
	for _, c := range cells {
		binary.BigEndian.PutUint16(buf[ptr:], uint16(off))
		copy(buf[off:], c)
		ptr += 2
		off += len(c)
	}
}

// writeHeader fills the 100-byte database header on page 1.
func writeHeader(buf []byte, npages int) {
	copy(buf, "SQLite format 3\x00")
	binary.BigEndian.PutUint16(buf[16:], pageSize)
	buf[18], buf[19] = 1, 1 // legacy (rollback journal) versions
	buf[21], buf[22], buf[23] = 64, 32, 32
	binary.BigEndian.PutUint32(buf[24:], 1) // change counter
	binary.BigEndian.PutUint32(buf[28:], uint32(npages))
	binary.BigEndian.PutUint32(buf[40:], 1) // schema cookie
	binary.BigEndian.PutUint32(buf[44:], 4) // schema format (allows serial types 8/9)
	binary.BigEndian.PutUint32(buf[56:], 1) // UTF-8
	binary.BigEndian.PutUint32(buf[92:], 1) // version-valid-for = change counter
	binary.BigEndian.PutUint32(buf[96:], 3045000)
}

// encodeRecord renders one row in the record format: a header of
// serial-type varints (prefixed by its own length) followed by the
// column bodies.
func encodeRecord(vals []any) ([]byte, error) {
	type col struct {
		serial uint64
		body   []byte
	}
	cols := make([]col, len(vals))
	var scratch [8]byte
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			cols[i] = col{serial: 0}
		case bool:
			if x {
				cols[i] = col{serial: 9}
			} else {
				cols[i] = col{serial: 8}
			}
		case int:
			cols[i] = intCol(int64(x))
		case int64:
			cols[i] = intCol(x)
		case uint64:
			if x > math.MaxInt64 {
				return nil, fmt.Errorf("integer %d overflows SQLite integers", x)
			}
			cols[i] = intCol(int64(x))
		case float64:
			binary.BigEndian.PutUint64(scratch[:], math.Float64bits(x))
			cols[i] = col{serial: 7, body: append([]byte(nil), scratch[:]...)}
		case string:
			cols[i] = col{serial: 13 + 2*uint64(len(x)), body: []byte(x)}
		case []byte:
			cols[i] = col{serial: 12 + 2*uint64(len(x)), body: append([]byte(nil), x...)}
		default:
			return nil, fmt.Errorf("unsupported column type %T", v)
		}
	}
	// The header length varint includes itself, so solve
	// hdrLen = varintLen(hdrLen) + serialLen by iteration (converges
	// in at most two steps: growing hdrLen can only grow its varint).
	serialLen := 0
	for _, c := range cols {
		serialLen += varintLen(c.serial)
	}
	hdrLen := serialLen + 1
	for varintLen(uint64(hdrLen))+serialLen != hdrLen {
		hdrLen = varintLen(uint64(hdrLen)) + serialLen
	}
	out := make([]byte, 0, hdrLen+64)
	var tmp [10]byte
	out = append(out, tmp[:putVarint(tmp[:], uint64(hdrLen))]...)
	for _, c := range cols {
		out = append(out, tmp[:putVarint(tmp[:], c.serial)]...)
	}
	for _, c := range cols {
		out = append(out, c.body...)
	}
	return out, nil
}

// intCol picks the smallest integer serial type holding v.
func intCol(v int64) (c struct {
	serial uint64
	body   []byte
}) {
	switch {
	case v == 0:
		c.serial = 8
		return
	case v == 1:
		c.serial = 9
		return
	}
	var size int
	switch {
	case v >= math.MinInt8 && v <= math.MaxInt8:
		c.serial, size = 1, 1
	case v >= math.MinInt16 && v <= math.MaxInt16:
		c.serial, size = 2, 2
	case v >= -(1<<23) && v < 1<<23:
		c.serial, size = 3, 3
	case v >= math.MinInt32 && v <= math.MaxInt32:
		c.serial, size = 4, 4
	case v >= -(1<<47) && v < 1<<47:
		c.serial, size = 5, 6
	default:
		c.serial, size = 6, 8
	}
	c.body = make([]byte, size)
	for i := size - 1; i >= 0; i-- {
		c.body[i] = byte(v)
		v >>= 8
	}
	return
}

// putVarint writes a SQLite big-endian varint (1-9 bytes) and returns
// its length. Values needing the 9-byte form do not occur here (keys
// and payload lengths are far below 2^56) but are handled anyway.
func putVarint(b []byte, v uint64) int {
	if v <= 0x7f {
		b[0] = byte(v)
		return 1
	}
	if v > 0x00ffffffffffffff {
		b[8] = byte(v)
		v >>= 8
		for i := 7; i >= 0; i-- {
			b[i] = byte(v&0x7f) | 0x80
			v >>= 7
		}
		return 9
	}
	var tmp [8]byte
	n := 0
	for v > 0 {
		tmp[n] = byte(v & 0x7f)
		v >>= 7
		n++
	}
	for i := 0; i < n; i++ {
		c := tmp[n-1-i]
		if i != n-1 {
			c |= 0x80
		}
		b[i] = c
	}
	return n
}

func varintLen(v uint64) int {
	var b [10]byte
	return putVarint(b[:], v)
}
