package traffic

import (
	"fmt"
	"sort"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// Generator drives a network with stochastic packet arrivals. Each
// source node runs an independent arrival process on the event kernel:
// Poisson (exponential interarrivals with rate λ packets/cycle, the
// paper's source model) or Bernoulli (one arrival per cycle with
// probability λ). Every node draws from its own RNG stream, so results
// are reproducible and independent of node count changes elsewhere.
type Generator struct {
	kernel  *sim.Kernel
	net     *noc.Network
	pattern Pattern
	process Process
	rates   []float64
	rngs    []*sim.RNG
	offered uint64
	started bool
}

// Process selects the interarrival model.
type Process int

// Available arrival processes.
const (
	// Poisson uses exponential interarrival times — the paper's
	// "Poisson interarrival distribution ... with variable parameter
	// Lambda".
	Poisson Process = iota
	// Bernoulli flips one coin per cycle per source.
	Bernoulli
)

// NewGenerator builds a generator for net on kernel k with the given
// pattern, per-source rate (packets/cycle) and master seed.
func NewGenerator(k *sim.Kernel, net *noc.Network, p Pattern, proc Process, rate float64, seed uint64) (*Generator, error) {
	if rate < 0 {
		return nil, fmt.Errorf("traffic: negative rate %v", rate)
	}
	n := net.Topology().Nodes()
	g := &Generator{
		kernel:  k,
		net:     net,
		pattern: p,
		process: proc,
		rates:   make([]float64, n),
		rngs:    make([]*sim.RNG, n),
	}
	master := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		g.rates[i] = rate
		g.rngs[i] = master.Split()
	}
	return g, nil
}

// SetRate overrides the packet rate of one source before Start.
func (g *Generator) SetRate(node int, rate float64) {
	if g.started {
		panic("traffic: SetRate after Start")
	}
	g.rates[node] = rate
}

// Rate returns node's configured packet rate.
func (g *Generator) Rate(node int) float64 { return g.rates[node] }

// OfferedPackets returns the number of packets generated so far.
func (g *Generator) OfferedPackets() uint64 { return g.offered }

// OfferedFlitRate returns the configured aggregate offered load in
// flits/cycle (sum of source rates times packet length).
func (g *Generator) OfferedFlitRate() float64 {
	sum := 0.0
	for node, r := range g.rates {
		if _, ok := g.pattern.Destination(node, sim.NewRNG(0)); ok {
			sum += r
		}
	}
	return sum * float64(g.net.Config().PacketLen)
}

// Start schedules the first arrival of every source. Call once, before
// running the kernel.
func (g *Generator) Start() {
	if g.started {
		panic("traffic: generator started twice")
	}
	g.started = true
	for node := range g.rates {
		if g.rates[node] <= 0 {
			continue
		}
		if _, ok := g.pattern.Destination(node, g.rngs[node].Split()); !ok {
			continue // not a source under this pattern
		}
		switch g.process {
		case Poisson:
			g.schedulePoisson(node)
		case Bernoulli:
			g.scheduleBernoulli(node)
		default:
			panic(fmt.Sprintf("traffic: unknown process %d", g.process))
		}
	}
}

func (g *Generator) schedulePoisson(node int) {
	r := g.rngs[node]
	var arrive func()
	arrive = func() {
		g.emit(node, r)
		g.kernel.ScheduleAfter(sim.Time(r.Exp(g.rates[node])), arrive)
	}
	g.kernel.ScheduleAfter(sim.Time(r.Exp(g.rates[node])), arrive)
}

func (g *Generator) scheduleBernoulli(node int) {
	r := g.rngs[node]
	var tick func()
	tick = func() {
		if r.Bernoulli(g.rates[node]) {
			g.emit(node, r)
		}
		g.kernel.ScheduleAfter(1, tick)
	}
	g.kernel.ScheduleAfter(1, tick)
}

func (g *Generator) emit(node int, r *sim.RNG) {
	dst, ok := g.pattern.Destination(node, r)
	if !ok || dst == node {
		return
	}
	g.offered++
	// The source queue is unbounded by default; a bounded queue drops
	// the arrival, which is the open-loop interpretation of a full IP
	// memory.
	_ = g.net.Inject(node, dst)
}

// Trace is a deterministic, replayable record of packet creations.
type Trace struct {
	Events []TraceEvent
}

// TraceEvent is one packet creation.
type TraceEvent struct {
	Cycle    uint64
	Src, Dst int
}

// Record produces a trace of n.Pattern-driven arrivals without running
// a network: useful for replaying identical workloads across topologies
// of the same node count.
func Record(p Pattern, proc Process, rate float64, nodes int, cycles uint64, seed uint64) *Trace {
	tr := &Trace{}
	master := sim.NewRNG(seed)
	for node := 0; node < nodes; node++ {
		r := master.Split()
		if _, ok := p.Destination(node, r.Split()); !ok {
			continue
		}
		switch proc {
		case Poisson:
			t := r.Exp(rate)
			for uint64(t) < cycles {
				if dst, ok := p.Destination(node, r); ok && dst != node {
					tr.Events = append(tr.Events, TraceEvent{Cycle: uint64(t), Src: node, Dst: dst})
				}
				t += r.Exp(rate)
			}
		case Bernoulli:
			for c := uint64(0); c < cycles; c++ {
				if r.Bernoulli(rate) {
					if dst, ok := p.Destination(node, r); ok && dst != node {
						tr.Events = append(tr.Events, TraceEvent{Cycle: c, Src: node, Dst: dst})
					}
				}
			}
		}
	}
	sortTrace(tr.Events)
	return tr
}

// sortTrace orders events by (cycle, src, dst) for deterministic replay.
func sortTrace(ev []TraceEvent) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Replay schedules the trace's events on kernel k against net. Events
// whose endpoints exceed the network size are skipped.
func (t *Trace) Replay(k *sim.Kernel, net *noc.Network) {
	n := net.Topology().Nodes()
	for _, e := range t.Events {
		if e.Src >= n || e.Dst >= n || e.Src == e.Dst {
			continue
		}
		e := e
		k.Schedule(sim.Time(e.Cycle), func() { _ = net.Inject(e.Src, e.Dst) })
	}
}
