package traffic

import (
	"fmt"
	"math"
	"sort"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// Generator drives a network with stochastic packet arrivals. Each
// source node runs an independent arrival process on the event kernel:
// Poisson (exponential interarrivals with rate λ packets/cycle, the
// paper's source model) or Bernoulli (one arrival per cycle with
// probability λ). Every node draws from its own RNG stream, so results
// are reproducible and independent of node count changes elsewhere.
//
// The generator is closure-free on the hot path: it implements
// sim.Handler and schedules (generator, node) pairs through the
// kernel's pooled event records, and Poisson arrivals are batched — one
// kernel event emits every arrival of a source that lands in the same
// clock cycle (see fire), so a saturated run pays O(sources with work)
// events per cycle instead of O(arrivals). Batched and unbatched
// emission produce the identical packet stream (same per-source RNG
// draw order, same injection cycles, same per-queue order), proven by
// the determinism tests.
type Generator struct {
	kernel  *sim.Kernel
	net     *noc.Network
	pattern Pattern
	process Process
	rates   []float64
	rngs    []sim.RNG // per-source streams, one backing array
	// isSource caches pattern membership per node, hoisted to
	// construction so rate queries never re-probe the pattern (the seed
	// OfferedFlitRate allocated a throwaway RNG per node per call).
	isSource []bool
	// next is the pre-drawn arrival horizon: next[node] is the time of
	// the node's next Poisson arrival, maintained across batched
	// emissions in a reusable buffer instead of a captured closure each.
	next    []sim.Time
	offered uint64
	started bool
	batch   bool
}

// Process selects the interarrival model.
type Process int

// Available arrival processes.
const (
	// Poisson uses exponential interarrival times — the paper's
	// "Poisson interarrival distribution ... with variable parameter
	// Lambda".
	Poisson Process = iota
	// Bernoulli flips one coin per cycle per source.
	Bernoulli
)

// NewGenerator builds a generator for net on kernel k with the given
// pattern, per-source rate (packets/cycle) and master seed.
func NewGenerator(k *sim.Kernel, net *noc.Network, p Pattern, proc Process, rate float64, seed uint64) (*Generator, error) {
	return RenewGenerator(nil, k, net, p, proc, rate, seed)
}

// RenewGenerator is NewGenerator reusing a previous run's generator
// when one is supplied and its node count matches: the per-source rate,
// RNG and arrival-horizon slices are re-initialised in place instead of
// reallocated, so a warm workspace re-arms its traffic for the next
// replication without touching the allocator. A renewed generator is
// draw-for-draw identical to a fresh one (proven by the determinism
// tests); prev may be nil or mismatched, in which case a fresh
// generator is built.
func RenewGenerator(prev *Generator, k *sim.Kernel, net *noc.Network, p Pattern, proc Process, rate float64, seed uint64) (*Generator, error) {
	if rate < 0 {
		return nil, fmt.Errorf("traffic: negative rate %v", rate)
	}
	n := net.Topology().Nodes()
	g := prev
	if g == nil || len(g.rates) != n {
		g = &Generator{
			rates:    make([]float64, n),
			rngs:     make([]sim.RNG, n),
			isSource: make([]bool, n),
			next:     make([]sim.Time, n),
		}
	}
	g.kernel, g.net = k, net
	g.pattern, g.process = p, proc
	g.offered = 0
	g.started = false
	g.batch = true
	var master, probe sim.RNG
	master.Seed(seed)
	probe.Seed(0)
	for i := 0; i < n; i++ {
		g.rates[i] = rate
		master.SplitInto(&g.rngs[i])
		g.next[i] = 0
		// Source membership is structural for every Pattern (it never
		// depends on the probe's draws), so one shared probe suffices.
		_, g.isSource[i] = p.Destination(i, &probe)
	}
	return g, nil
}

// SetRate overrides the packet rate of one source before Start.
func (g *Generator) SetRate(node int, rate float64) {
	if g.started {
		panic("traffic: SetRate after Start")
	}
	g.rates[node] = rate
}

// Rate returns node's configured packet rate.
func (g *Generator) Rate(node int) float64 { return g.rates[node] }

// OfferedPackets returns the number of packets generated so far.
func (g *Generator) OfferedPackets() uint64 { return g.offered }

// OfferedFlitRate returns the configured aggregate offered load in
// flits/cycle (sum of source rates times packet length).
func (g *Generator) OfferedFlitRate() float64 {
	sum := 0.0
	for node, r := range g.rates {
		if g.isSource[node] {
			sum += r
		}
	}
	return sum * float64(g.net.Config().PacketLen)
}

// SetBatching toggles same-cycle arrival batching before Start. Both
// modes emit the identical packet stream; the unbatched mode pays one
// kernel event per arrival and exists as the reference the determinism
// tests compare against.
func (g *Generator) SetBatching(on bool) {
	if g.started {
		panic("traffic: SetBatching after Start")
	}
	g.batch = on
}

// Start schedules the first arrival of every source. Call once, before
// running the kernel.
func (g *Generator) Start() {
	if g.started {
		panic("traffic: generator started twice")
	}
	g.started = true
	now := g.kernel.Now()
	for node := range g.rates {
		if g.rates[node] <= 0 {
			continue
		}
		var probe sim.RNG
		g.rngs[node].SplitInto(&probe)
		if _, ok := g.pattern.Destination(node, &probe); !ok {
			continue // not a source under this pattern
		}
		switch g.process {
		case Poisson:
			g.next[node] = now + sim.Time(g.rngs[node].Exp(g.rates[node]))
			g.kernel.ScheduleEvent(g.next[node], 0, g, node)
		case Bernoulli:
			g.kernel.ScheduleEvent(now+1, 0, g, node)
		default:
			panic(fmt.Sprintf("traffic: unknown process %d", g.process))
		}
	}
}

// arrivalCycle maps an event time to the clock cycle whose pipeline
// step first observes it: ticks fire at integer times after same-time
// ordinary events (sim.TickPriority), so an arrival at time t is seen
// by — and injected during — cycle ceil(t).
func arrivalCycle(t sim.Time) uint64 { return uint64(math.Ceil(float64(t))) }

// Fire implements sim.Handler: one event per source, dispatched by the
// configured process.
func (g *Generator) Fire(node int) {
	r := &g.rngs[node]
	switch g.process {
	case Poisson:
		// Emit the due arrival, then every pre-drawn follow-up landing in
		// the same cycle: the network cannot observe intra-cycle arrival
		// times (no tick runs in between, and same-source packets keep
		// their queue order), so one kernel event stands in for all of
		// them. The destination draw stays interleaved with the
		// interarrival draw exactly as in unbatched emission — pre-drawing
		// times ahead of destinations would reorder the RNG stream.
		t := g.next[node]
		cycle := arrivalCycle(t)
		for {
			g.emit(node, r)
			t += sim.Time(r.Exp(g.rates[node]))
			if !g.batch || arrivalCycle(t) != cycle {
				break
			}
		}
		g.next[node] = t
		g.kernel.ScheduleEvent(t, 0, g, node)
	case Bernoulli:
		// One coin per cycle per source: every cycle must draw, so there
		// is nothing to batch — but the event record is still pooled.
		if r.Bernoulli(g.rates[node]) {
			g.emit(node, r)
		}
		g.kernel.ScheduleEvent(g.kernel.Now()+1, 0, g, node)
	}
}

func (g *Generator) emit(node int, r *sim.RNG) {
	dst, ok := g.pattern.Destination(node, r)
	if !ok || dst == node {
		return
	}
	g.offered++
	// The source queue is unbounded by default; a bounded queue drops
	// the arrival, which is the open-loop interpretation of a full IP
	// memory.
	_ = g.net.Inject(node, dst)
}

// Trace is a deterministic, replayable record of packet creations.
type Trace struct {
	Events []TraceEvent
}

// TraceEvent is one packet creation.
type TraceEvent struct {
	Cycle    uint64
	Src, Dst int
}

// Record produces a trace of n.Pattern-driven arrivals without running
// a network: useful for replaying identical workloads across topologies
// of the same node count.
func Record(p Pattern, proc Process, rate float64, nodes int, cycles uint64, seed uint64) *Trace {
	tr := &Trace{}
	master := sim.NewRNG(seed)
	for node := 0; node < nodes; node++ {
		r := master.Split()
		if _, ok := p.Destination(node, r.Split()); !ok {
			continue
		}
		switch proc {
		case Poisson:
			t := r.Exp(rate)
			for uint64(t) < cycles {
				if dst, ok := p.Destination(node, r); ok && dst != node {
					tr.Events = append(tr.Events, TraceEvent{Cycle: uint64(t), Src: node, Dst: dst})
				}
				t += r.Exp(rate)
			}
		case Bernoulli:
			for c := uint64(0); c < cycles; c++ {
				if r.Bernoulli(rate) {
					if dst, ok := p.Destination(node, r); ok && dst != node {
						tr.Events = append(tr.Events, TraceEvent{Cycle: c, Src: node, Dst: dst})
					}
				}
			}
		}
	}
	sortTrace(tr.Events)
	return tr
}

// sortTrace orders events by (cycle, src, dst) for deterministic replay.
func sortTrace(ev []TraceEvent) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// traceReplay injects trace events by index — the closure-free handler
// behind Trace.Replay.
type traceReplay struct {
	trace *Trace
	net   *noc.Network
}

// Fire implements sim.Handler: inject trace event i.
func (tr *traceReplay) Fire(i int) {
	e := tr.trace.Events[i]
	_ = tr.net.Inject(e.Src, e.Dst)
}

// Replay schedules the trace's events on kernel k against net. Events
// whose endpoints exceed the network size are skipped.
func (t *Trace) Replay(k *sim.Kernel, net *noc.Network) {
	n := net.Topology().Nodes()
	tr := &traceReplay{trace: t, net: net}
	for i, e := range t.Events {
		if e.Src >= n || e.Dst >= n || e.Src == e.Dst {
			continue
		}
		k.ScheduleEvent(sim.Time(e.Cycle), 0, tr, i)
	}
}
