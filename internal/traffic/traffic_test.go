package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

func TestUniformPattern(t *testing.T) {
	u := Uniform{N: 8}
	r := sim.NewRNG(1)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		d, ok := u.Destination(3, r)
		if !ok {
			t.Fatal("uniform node not a source")
		}
		if d == 3 {
			t.Fatal("uniform chose self")
		}
		counts[d]++
	}
	for d, c := range counts {
		if d == 3 {
			continue
		}
		if c < 800 || c > 1500 {
			t.Fatalf("uniform dest %d frequency %d implausible", d, c)
		}
	}
	if u.Sources(8) != 8 {
		t.Fatal("uniform sources")
	}
	if _, ok := (Uniform{N: 1}).Destination(0, r); ok {
		t.Fatal("1-node uniform should have no sources")
	}
}

func TestHotSpotSingle(t *testing.T) {
	h := HotSpot{Targets: []int{3}, N: 8}
	r := sim.NewRNG(2)
	if _, ok := h.Destination(3, r); ok {
		t.Fatal("hotspot target sends")
	}
	for src := 0; src < 8; src++ {
		if src == 3 {
			continue
		}
		d, ok := h.Destination(src, r)
		if !ok || d != 3 {
			t.Fatalf("src %d -> %d,%v", src, d, ok)
		}
	}
	if h.Sources(8) != 7 {
		t.Fatalf("sources = %d", h.Sources(8))
	}
	if h.Name() == "" {
		t.Fatal("name")
	}
}

func TestHotSpotDouble(t *testing.T) {
	h := HotSpot{Targets: []int{0, 4}, N: 8}
	r := sim.NewRNG(3)
	c0, c4 := 0, 0
	for i := 0; i < 2000; i++ {
		d, ok := h.Destination(2, r)
		if !ok {
			t.Fatal("source refused")
		}
		switch d {
		case 0:
			c0++
		case 4:
			c4++
		default:
			t.Fatalf("unexpected destination %d", d)
		}
	}
	if c0 < 800 || c4 < 800 {
		t.Fatalf("unbalanced targets: %d/%d", c0, c4)
	}
	if h.Sources(8) != 6 {
		t.Fatal("sources")
	}
}

func TestHotSpotEmpty(t *testing.T) {
	h := HotSpot{Targets: nil, N: 8}
	if _, ok := h.Destination(1, sim.NewRNG(1)); ok {
		t.Fatal("empty hotspot produced a destination")
	}
}

func TestPermutationValidation(t *testing.T) {
	if _, err := NewPermutation("bad", []int{0, 5}); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
	p, err := NewPermutation("id+fixed", []int{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Destination(2, nil); ok {
		t.Fatal("fixed point should be silent")
	}
	if d, ok := p.Destination(0, nil); !ok || d != 1 {
		t.Fatal("partner lookup")
	}
	if p.Sources(3) != 2 {
		t.Fatal("sources")
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement(8)
	for i := 0; i < 8; i++ {
		d, ok := p.Destination(i, nil)
		if !ok || d != 7-i {
			t.Fatalf("complement(%d) = %d,%v", i, d, ok)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := topology.MustMesh(3, 3)
	p, err := Transpose(m)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 = (1,0) -> (0,1) = node 3.
	if d, _ := p.Destination(1, nil); d != 3 {
		t.Fatalf("transpose(1) = %d", d)
	}
	// Diagonal nodes are silent.
	if _, ok := p.Destination(4, nil); ok {
		t.Fatal("diagonal node sends")
	}
	if _, err := Transpose(topology.MustMesh(2, 4)); err == nil {
		t.Fatal("non-square transpose accepted")
	}
}

func TestNeighborRing(t *testing.T) {
	p := NeighborRing(6, 1)
	for i := 0; i < 6; i++ {
		d, ok := p.Destination(i, nil)
		if !ok || d != (i+1)%6 {
			t.Fatalf("neighbor(%d) = %d", i, d)
		}
	}
}

func TestBitReverse(t *testing.T) {
	p := BitReverse(8)
	// 3 bits: 1=001 -> 100=4.
	if d, _ := p.Destination(1, nil); d != 4 {
		t.Fatalf("bitrev(1) = %d", d)
	}
	if d, _ := p.Destination(6, nil); d != 3 { // 110 -> 011
		t.Fatalf("bitrev(6) = %d", d)
	}
	// Non-power-of-two sizes keep out-of-range partners silent.
	p = BitReverse(6)
	if _, ok := p.Destination(3, nil); ok { // 011 -> 110 = 6 >= 6 -> self
		t.Fatal("out-of-range partner should be silent")
	}
}

// buildNet wires a spidergon network for generator tests.
func buildNet(t *testing.T, n int) *noc.Network {
	t.Helper()
	s := topology.MustSpidergon(n)
	net, err := noc.NewNetwork(s, routing.NewSpidergonRouting(s), noc.DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGeneratorPoissonRate(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	const rate = 0.01 // packets/cycle/node, low load
	g, err := NewGenerator(k, net, Uniform{N: 8}, Poisson, rate, 42)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	const horizon = 50000
	k.RunUntil(horizon)
	got := float64(g.OfferedPackets()) / float64(horizon) / 8
	if math.Abs(got-rate) > 0.15*rate {
		t.Fatalf("offered rate %v, want ≈ %v", got, rate)
	}
	// Low load: everything delivered promptly.
	if net.EjectedPackets() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestGeneratorBernoulliRate(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	const rate = 0.02
	g, err := NewGenerator(k, net, Uniform{N: 8}, Bernoulli, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	const horizon = 30000
	k.RunUntil(horizon)
	got := float64(g.OfferedPackets()) / float64(horizon) / 8
	if math.Abs(got-rate) > 0.15*rate {
		t.Fatalf("offered rate %v, want ≈ %v", got, rate)
	}
}

func TestGeneratorHotspotTargetsSilent(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	g, err := NewGenerator(k, net, HotSpot{Targets: []int{5}, N: 8}, Poisson, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(20000)
	if g.OfferedPackets() == 0 {
		t.Fatal("no traffic")
	}
	// All delivered packets went to node 5; mean hops must be > 0 and
	// all ejections happened (measured by the collector at node 5 only).
	if net.Collector().PacketsEjected() == 0 {
		t.Fatal("hotspot received nothing")
	}
}

func TestGeneratorInvalidRate(t *testing.T) {
	net := buildNet(t, 8)
	if _, err := NewGenerator(sim.NewKernel(), net, Uniform{N: 8}, Poisson, -1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestGeneratorSetRateAndZeroRateSilence(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	g, err := NewGenerator(k, net, Uniform{N: 8}, Poisson, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		g.SetRate(i, 0) // only node 0 transmits
	}
	if g.Rate(0) != 0.05 || g.Rate(3) != 0 {
		t.Fatal("rate accessor")
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(5000)
	if g.OfferedPackets() == 0 {
		t.Fatal("node 0 generated nothing")
	}
	// All injected packets originate at node 0: verify via created
	// packets == offered and network consistency.
	if net.CreatedPackets() != g.OfferedPackets() {
		t.Fatalf("created %d != offered %d", net.CreatedPackets(), g.OfferedPackets())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() uint64 {
		net := buildNet(t, 12)
		k := sim.NewKernel()
		g, _ := NewGenerator(k, net, Uniform{N: 12}, Poisson, 0.03, 99)
		g.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(10000)
		return g.OfferedPackets()*1000003 + net.EjectedPackets()
	}
	if run() != run() {
		t.Fatal("generator not deterministic")
	}
}

func TestGeneratorStartTwicePanics(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	g, _ := NewGenerator(k, net, Uniform{N: 8}, Poisson, 0.01, 1)
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	g.Start()
}

func TestOfferedFlitRate(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	g, _ := NewGenerator(k, net, HotSpot{Targets: []int{0}, N: 8}, Poisson, 0.05, 1)
	// 7 sources * 0.05 packets/cycle * 6 flits = 2.1 flits/cycle.
	if got := g.OfferedFlitRate(); math.Abs(got-2.1) > 1e-9 {
		t.Fatalf("offered flit rate = %v", got)
	}
}

func TestTraceRecordReplayDeterministic(t *testing.T) {
	tr1 := Record(Uniform{N: 8}, Poisson, 0.05, 8, 2000, 5)
	tr2 := Record(Uniform{N: 8}, Poisson, 0.05, 8, 2000, 5)
	if len(tr1.Events) == 0 {
		t.Fatal("empty trace")
	}
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatal("trace lengths differ")
	}
	for i := range tr1.Events {
		if tr1.Events[i] != tr2.Events[i] {
			t.Fatalf("trace event %d differs", i)
		}
	}
	// Events sorted by cycle.
	for i := 1; i < len(tr1.Events); i++ {
		if tr1.Events[i].Cycle < tr1.Events[i-1].Cycle {
			t.Fatal("trace not sorted")
		}
	}
}

func TestTraceReplayDelivers(t *testing.T) {
	tr := Record(Uniform{N: 8}, Poisson, 0.02, 8, 3000, 9)
	net := buildNet(t, 8)
	k := sim.NewKernel()
	tr.Replay(k, net)
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(3000 + 2000)
	if net.CreatedPackets() != uint64(len(tr.Events)) {
		t.Fatalf("created %d != trace %d", net.CreatedPackets(), len(tr.Events))
	}
	if net.EjectedPackets() != net.CreatedPackets() {
		t.Fatalf("delivered %d of %d", net.EjectedPackets(), net.CreatedPackets())
	}
}

// Property: uniform destinations are always in range and never self.
func TestPropertyUniformValid(t *testing.T) {
	f := func(seed uint64, nRaw, sRaw uint8) bool {
		n := 2 + int(nRaw)%30
		src := int(sRaw) % n
		u := Uniform{N: n}
		r := sim.NewRNG(seed)
		for i := 0; i < 20; i++ {
			d, ok := u.Destination(src, r)
			if !ok || d == src || d < 0 || d >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
