package traffic

import (
	"fmt"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
)

// This file models "specific traffic patterns originated by common
// applications" — the extension the paper's future-work section calls
// for. Two SoC-typical workloads are provided: closed-loop
// master/slave (request-reply, the shape of CPU-to-memory-controller
// traffic that motivates the hot-spot scenarios) and on/off bursty
// streaming (the shape of DMA and media pipelines).

// RequestReply drives closed-loop master/slave traffic: each master
// generates Poisson requests to a uniformly chosen slave; when a
// request is delivered, the slave immediately enqueues a reply to the
// requesting master. Round-trip latency (request creation to reply
// ejection) is recorded per transaction.
//
// The generator owns the network's OnEject callback; do not install
// another one while it is active.
type RequestReply struct {
	kernel  *sim.Kernel
	net     *noc.Network
	masters []int
	slaves  []int
	rate    float64
	rngs    []*sim.RNG // per-master streams, indexed by node
	next    []sim.Time // pre-drawn next-request horizon per master node
	batch   bool

	isSlave   map[int]bool
	isMaster  map[int]bool
	pending   map[uint64]uint64 // reply packet ID -> request creation cycle
	roundTrip stats.Summary
	requests  uint64
	replies   uint64
	started   bool
}

// NewRequestReply builds the generator. Masters and slaves must be
// disjoint, non-empty node sets; rate is requests/cycle per master.
func NewRequestReply(k *sim.Kernel, net *noc.Network, masters, slaves []int, rate float64, seed uint64) (*RequestReply, error) {
	if len(masters) == 0 || len(slaves) == 0 {
		return nil, fmt.Errorf("traffic: request-reply needs masters and slaves")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: request-reply rate %v <= 0", rate)
	}
	n := net.Topology().Nodes()
	rr := &RequestReply{
		kernel:   k,
		net:      net,
		masters:  masters,
		slaves:   slaves,
		rate:     rate,
		rngs:     make([]*sim.RNG, n),
		next:     make([]sim.Time, n),
		batch:    true,
		isSlave:  make(map[int]bool),
		isMaster: make(map[int]bool),
		pending:  make(map[uint64]uint64),
	}
	for _, s := range slaves {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("traffic: slave %d out of range", s)
		}
		rr.isSlave[s] = true
	}
	master := sim.NewRNG(seed)
	for _, m := range masters {
		if m < 0 || m >= n {
			return nil, fmt.Errorf("traffic: master %d out of range", m)
		}
		if rr.isSlave[m] {
			return nil, fmt.Errorf("traffic: node %d is both master and slave", m)
		}
		rr.isMaster[m] = true
		rr.rngs[m] = master.Split()
	}
	return rr, nil
}

// SetBatching toggles same-cycle request batching before Start; both
// modes emit the identical request stream (see Generator.SetBatching).
func (rr *RequestReply) SetBatching(on bool) {
	if rr.started {
		panic("traffic: SetBatching after Start")
	}
	rr.batch = on
}

// Start installs the reply hook and schedules the first request of
// every master.
func (rr *RequestReply) Start() {
	if rr.started {
		panic("traffic: request-reply started twice")
	}
	rr.started = true
	rr.net.OnEject(rr.onEject)
	now := rr.kernel.Now()
	for _, m := range rr.masters {
		rr.next[m] = now + sim.Time(rr.rngs[m].Exp(rr.rate))
		rr.kernel.ScheduleEvent(rr.next[m], 0, rr, m)
	}
}

// Fire implements sim.Handler on the masters' request streams: like
// Generator, it emits the due request plus every follow-up landing in
// the same cycle from one pooled kernel event (replies ride the
// ejection callback inside ticks and need no events of their own).
func (rr *RequestReply) Fire(master int) {
	r := rr.rngs[master]
	t := rr.next[master]
	cycle := arrivalCycle(t)
	for {
		rr.sendRequest(master, r)
		t += sim.Time(r.Exp(rr.rate))
		if !rr.batch || arrivalCycle(t) != cycle {
			break
		}
	}
	rr.next[master] = t
	rr.kernel.ScheduleEvent(t, 0, rr, master)
}

func (rr *RequestReply) sendRequest(master int, r *sim.RNG) {
	slave := rr.slaves[0]
	if len(rr.slaves) > 1 {
		slave = rr.slaves[r.Intn(len(rr.slaves))]
	}
	if _, err := rr.net.InjectPacket(master, slave); err == nil {
		rr.requests++
	}
}

// onEject reacts to deliveries: requests arriving at a slave trigger a
// reply; replies arriving at a master complete a transaction.
func (rr *RequestReply) onEject(p *noc.Packet) {
	switch {
	case rr.isSlave[p.Dst] && rr.isMaster[p.Src]:
		reply, err := rr.net.InjectPacket(p.Dst, p.Src)
		if err != nil {
			return
		}
		rr.replies++
		rr.pending[reply.ID] = p.CreatedCycle
	case rr.isMaster[p.Dst]:
		if created, ok := rr.pending[p.ID]; ok {
			delete(rr.pending, p.ID)
			rr.roundTrip.Add(float64(rr.net.Cycle() - created))
		}
	}
}

// Requests returns the number of requests generated.
func (rr *RequestReply) Requests() uint64 { return rr.requests }

// Replies returns the number of replies generated.
func (rr *RequestReply) Replies() uint64 { return rr.replies }

// CompletedTransactions returns the number of measured round trips.
func (rr *RequestReply) CompletedTransactions() uint64 { return rr.roundTrip.Count() }

// RoundTrip returns the round-trip latency summary (cycles).
func (rr *RequestReply) RoundTrip() *stats.Summary { return &rr.roundTrip }

// OnOff is a two-state Markov-modulated source: in the ON state it
// emits packets as a Poisson process with PeakRate; sojourn times in
// ON and OFF are exponential with the given means. Mean rate is
// PeakRate · OnMean/(OnMean+OffMean). Streaming and DMA traffic is
// bursty in exactly this way, which stresses buffers far more than a
// smooth Poisson flow of equal mean.
type OnOff struct {
	// PeakRate is packets/cycle while ON.
	PeakRate float64
	// OnMean and OffMean are the mean sojourn times in cycles.
	OnMean, OffMean float64
}

// MeanRate returns the long-run packet rate of the source.
func (o OnOff) MeanRate() float64 {
	return o.PeakRate * o.OnMean / (o.OnMean + o.OffMean)
}

// Validate reports the first invalid parameter.
func (o OnOff) Validate() error {
	if o.PeakRate <= 0 || o.OnMean <= 0 || o.OffMean < 0 {
		return fmt.Errorf("traffic: invalid on/off parameters %+v", o)
	}
	return nil
}

// OnOffGenerator drives every source node of a pattern with an
// independent OnOff process. Like Generator, it is closure-free (one
// pooled kernel event per source) and batches same-cycle arrivals
// within a burst.
type OnOffGenerator struct {
	kernel  *sim.Kernel
	net     *noc.Network
	pattern Pattern
	shape   OnOff
	rngs    []*sim.RNG
	state   []onOffState
	offered uint64
	started bool
	batch   bool
}

// onOffState is one source's Markov state: whether the node is inside a
// burst, when the burst ends, and the pre-drawn next arrival time.
type onOffState struct {
	on   bool
	end  sim.Time // burst end (valid while on)
	next sim.Time // next arrival time (valid while on)
}

// NewOnOffGenerator builds the generator over net for the pattern's
// sources.
func NewOnOffGenerator(k *sim.Kernel, net *noc.Network, p Pattern, shape OnOff, seed uint64) (*OnOffGenerator, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	n := net.Topology().Nodes()
	g := &OnOffGenerator{kernel: k, net: net, pattern: p, shape: shape,
		rngs: make([]*sim.RNG, n), state: make([]onOffState, n), batch: true}
	master := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		g.rngs[i] = master.Split()
	}
	return g, nil
}

// OfferedPackets returns the packets generated so far.
func (g *OnOffGenerator) OfferedPackets() uint64 { return g.offered }

// SetBatching toggles same-cycle arrival batching before Start; both
// modes emit the identical packet stream (see Generator.SetBatching).
func (g *OnOffGenerator) SetBatching(on bool) {
	if g.started {
		panic("traffic: SetBatching after Start")
	}
	g.batch = on
}

// Start schedules the burst processes. Sources begin in the OFF state.
func (g *OnOffGenerator) Start() {
	if g.started {
		panic("traffic: on/off generator started twice")
	}
	g.started = true
	for node := range g.rngs {
		if _, ok := g.pattern.Destination(node, g.rngs[node].Split()); !ok {
			continue
		}
		// Wait out an OFF sojourn; the event fires at burst start.
		off := sim.Time(g.rngs[node].Exp(1 / g.shape.OffMean))
		g.kernel.ScheduleEvent(g.kernel.Now()+off, 0, g, node)
	}
}

// Fire implements sim.Handler: an event for an OFF node opens a burst
// (drawing its duration and first arrival); an event for an ON node
// emits the due arrival plus every same-cycle follow-up, transitioning
// back to OFF when the pre-drawn burst end is crossed. All scheduling
// uses the arrival's own absolute time, so batched emission keeps the
// exact event times of the unbatched chain.
func (g *OnOffGenerator) Fire(node int) {
	r := g.rngs[node]
	st := &g.state[node]
	if !st.on {
		st.on = true
		st.end = g.kernel.Now() + sim.Time(r.Exp(1/g.shape.OnMean))
		st.next = g.kernel.Now() + sim.Time(r.Exp(g.shape.PeakRate))
		g.kernel.ScheduleEvent(st.next, 0, g, node)
		return
	}
	t := st.next
	cycle := arrivalCycle(t)
	for {
		if t >= st.end {
			// Burst over: enter OFF, waking again at burst start.
			st.on = false
			off := sim.Time(r.Exp(1 / g.shape.OffMean))
			g.kernel.ScheduleEvent(t+off, 0, g, node)
			return
		}
		if dst, ok := g.pattern.Destination(node, r); ok && dst != node {
			g.offered++
			_ = g.net.Inject(node, dst)
		}
		t += sim.Time(r.Exp(g.shape.PeakRate))
		if !g.batch || arrivalCycle(t) != cycle {
			break
		}
	}
	st.next = t
	g.kernel.ScheduleEvent(t, 0, g, node)
}
