package traffic

import (
	"fmt"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// netSummary captures everything observable about a driven network —
// counters, per-channel traversals, buffer occupancy, and the latency
// distribution down to its quantiles. Any difference in the injected
// packet stream (count, timing, destination, or per-queue order) shows
// up here.
func netSummary(net *noc.Network) string {
	col := net.Collector()
	return fmt.Sprintf("cycle=%d created=%d injected=%d ejected=%d queued=%d inflight=%d links=%v lat=%v p50=%v p95=%v hops=%v blocked=%d",
		net.Cycle(), net.CreatedPackets(), net.InjectedPackets(), net.EjectedPackets(),
		net.QueuedPackets(), net.InFlightFlits(), net.ChannelTraversals(),
		col.MeanLatency(), col.LatencyQuantile(0.5), col.LatencyQuantile(0.95),
		col.MeanHops(), col.SourceBlockedCycles())
}

// driveGenerator runs one Poisson generator to the horizon and returns
// the network summary plus the offered-packet count.
func driveGenerator(t *testing.T, nodes int, rate float64, seed uint64, batch bool) (string, uint64) {
	t.Helper()
	net := buildNet(t, nodes)
	k := sim.NewKernel()
	g, err := NewGenerator(k, net, Uniform{N: nodes}, Poisson, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBatching(batch)
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(4000)
	return netSummary(net), g.OfferedPackets()
}

// Batched emission must produce the identical packet stream to the
// one-event-per-arrival reference — same seed, same arrivals, same
// cycles, same deliveries — from well below saturation (where batching
// rarely engages) to far past it (where most events carry several
// same-cycle arrivals).
func TestGeneratorBatchedMatchesUnbatched(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
		seed uint64
	}{
		{"low", 0.01, 42},
		{"knee", 0.07, 7},
		{"saturated", 0.6, 99},
		{"deep-saturation", 2.5, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched, offB := driveGenerator(t, 16, tc.rate, tc.seed, true)
			plain, offP := driveGenerator(t, 16, tc.rate, tc.seed, false)
			if offB != offP {
				t.Fatalf("offered packets differ: batched %d, unbatched %d", offB, offP)
			}
			if offB == 0 {
				t.Fatal("degenerate run: nothing offered")
			}
			if batched != plain {
				t.Fatalf("packet streams diverged:\nbatched:   %s\nunbatched: %s", batched, plain)
			}
		})
	}
}

// Past saturation batching must actually collapse events: the kernel
// should process far fewer events than arrivals.
func TestGeneratorBatchingCollapsesEvents(t *testing.T) {
	run := func(batch bool) (events, offered uint64) {
		net := buildNet(t, 16)
		k := sim.NewKernel()
		g, err := NewGenerator(k, net, Uniform{N: 16}, Poisson, 2.0, 5)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBatching(batch)
		g.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(2000)
		return k.Processed(), g.OfferedPackets()
	}
	evB, offB := run(true)
	evP, offP := run(false)
	if offB != offP {
		t.Fatalf("offered differ: %d vs %d", offB, offP)
	}
	// λ=2 packets/cycle/source means ~2 arrivals per event when batched.
	if evB*3 > evP*2 {
		t.Fatalf("batching saved too little: %d events batched vs %d unbatched (%d arrivals)", evB, evP, offB)
	}
}

// The Start-time RNG draw order is part of the stream contract: a
// generator must offer the same packets the standalone Record pre-draw
// produces for the same seed (Record is the unbatched reference
// implementation that never touches a kernel).
func TestGeneratorMatchesRecordedOfferCount(t *testing.T) {
	const (
		nodes   = 12
		rate    = 0.05
		seed    = 1234
		horizon = 3000
	)
	tr := Record(Uniform{N: nodes}, Poisson, rate, nodes, horizon, seed)

	net := buildNet(t, nodes)
	k := sim.NewKernel()
	g, err := NewGenerator(k, net, Uniform{N: nodes}, Poisson, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(horizon)
	// Record cuts at arrival time < horizon, the live generator at event
	// dispatch <= horizon; the counts may differ by at most the final
	// arrival per source.
	diff := int(g.OfferedPackets()) - len(tr.Events)
	if diff < 0 {
		diff = -diff
	}
	if diff > nodes {
		t.Fatalf("generator offered %d packets, Record pre-drew %d", g.OfferedPackets(), len(tr.Events))
	}
}

// OnOff and RequestReply share the batched handler path; batched and
// unbatched emission must produce the identical streams, at a bursty
// peak rate high enough that batching engages within bursts.
func TestAppGeneratorsBatchedMatchUnbatched(t *testing.T) {
	runOnOff := func(batch bool) string {
		net := buildNet(t, 16)
		k := sim.NewKernel()
		g, err := NewOnOffGenerator(k, net, Uniform{N: 16}, OnOff{PeakRate: 2.5, OnMean: 40, OffMean: 120}, 11)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBatching(batch)
		g.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(5000)
		return fmt.Sprintf("off=%d %s", g.OfferedPackets(), netSummary(net))
	}
	if a, b := runOnOff(true), runOnOff(false); a != b {
		t.Fatalf("on/off streams diverged:\nbatched:   %s\nunbatched: %s", a, b)
	}

	runRR := func(batch bool) string {
		net := buildNet(t, 16)
		k := sim.NewKernel()
		rr, err := NewRequestReply(k, net, []int{0, 1, 2, 3}, []int{8, 9}, 1.2, 17)
		if err != nil {
			t.Fatal(err)
		}
		rr.SetBatching(batch)
		rr.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(5000)
		return fmt.Sprintf("req=%d rep=%d done=%d rt=%v %s",
			rr.Requests(), rr.Replies(), rr.CompletedTransactions(), rr.RoundTrip().Mean(), netSummary(net))
	}
	if a, b := runRR(true), runRR(false); a != b {
		t.Fatalf("request-reply streams diverged:\nbatched:   %s\nunbatched: %s", a, b)
	}
}
