// Package traffic generates the offered load for the NoC simulations:
// destination patterns (uniform, single and double hot-spot — the
// paper's three scenarios — plus the classic permutation patterns) and
// injection processes (Poisson, as in the paper, and Bernoulli),
// driven through the discrete-event kernel so arrivals fall at
// fractional times between clock ticks exactly as in an OMNeT++ model.
package traffic

import (
	"fmt"

	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// Pattern chooses a destination for each generated packet.
type Pattern interface {
	// Name identifies the pattern, e.g. "uniform" or "hotspot[3]".
	Name() string
	// Destination returns the destination node for a packet created at
	// src. ok is false when src is not a traffic source under this
	// pattern (e.g. hot-spot targets do not send).
	Destination(src int, r *sim.RNG) (dst int, ok bool)
	// Sources returns the number of sending nodes under this pattern
	// in a network of n nodes.
	Sources(n int) int
}

// Uniform sends from every node to a uniformly random other node — the
// paper's "homogeneous sources/destinations scenario": "all the nodes
// behave like sources and can be addressed as destination for packets,
// with uniform probability distribution".
type Uniform struct {
	// N is the number of nodes.
	N int
}

// Name returns "uniform".
func (u Uniform) Name() string { return "uniform" }

// Destination draws uniformly among the other N-1 nodes.
func (u Uniform) Destination(src int, r *sim.RNG) (int, bool) {
	if u.N < 2 {
		return 0, false
	}
	d := r.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d, true
}

// Sources returns n: every node sends.
func (u Uniform) Sources(n int) int { return n }

// HotSpot sends every packet to one of a fixed set of target nodes —
// the paper's single (one target) and double (two targets) hot-spot
// scenarios. Targets do not generate traffic; every other node does,
// picking uniformly among the targets.
type HotSpot struct {
	Targets []int
	N       int
}

// Name returns "hotspot[t0,t1,...]".
func (h HotSpot) Name() string { return fmt.Sprintf("hotspot%v", h.Targets) }

// Destination sends to a uniformly chosen target; targets themselves
// are silent.
func (h HotSpot) Destination(src int, r *sim.RNG) (int, bool) {
	for _, t := range h.Targets {
		if src == t {
			return 0, false
		}
	}
	if len(h.Targets) == 0 {
		return 0, false
	}
	if len(h.Targets) == 1 {
		return h.Targets[0], true
	}
	return h.Targets[r.Intn(len(h.Targets))], true
}

// Sources returns n minus the number of (in-range) targets.
func (h HotSpot) Sources(n int) int {
	s := n
	for _, t := range h.Targets {
		if t >= 0 && t < n {
			s--
		}
	}
	return s
}

// Permutation sends every packet from node i to a fixed partner π(i).
// Nodes whose partner is themselves are silent.
type Permutation struct {
	name string
	perm []int
}

// NewPermutation builds a fixed-partner pattern; perm must map every
// node to a node in range.
func NewPermutation(name string, perm []int) (*Permutation, error) {
	for i, p := range perm {
		if p < 0 || p >= len(perm) {
			return nil, fmt.Errorf("traffic: permutation %s maps %d to out-of-range %d", name, i, p)
		}
	}
	return &Permutation{name: name, perm: perm}, nil
}

// Name returns the permutation's name.
func (p *Permutation) Name() string { return p.name }

// Destination returns the fixed partner of src.
func (p *Permutation) Destination(src int, r *sim.RNG) (int, bool) {
	if src < 0 || src >= len(p.perm) || p.perm[src] == src {
		return 0, false
	}
	return p.perm[src], true
}

// Sources counts nodes with a partner other than themselves.
func (p *Permutation) Sources(n int) int {
	s := 0
	for i, d := range p.perm {
		if i < n && d != i {
			s++
		}
	}
	return s
}

// BitComplement returns the permutation i -> complement of i's bits
// within the smallest power of two covering n (out-of-range partners
// fall back to n-1-i, keeping the pattern total).
func BitComplement(n int) *Permutation {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	p, _ := NewPermutation("bit-complement", perm)
	return p
}

// Transpose returns the mesh transpose permutation (x,y) -> (y,x) for a
// square mesh; non-square meshes get an error.
func Transpose(m *topology.Mesh) (*Permutation, error) {
	if m.Cols() != m.Rows() || m.Irregular() {
		return nil, fmt.Errorf("traffic: transpose needs a full square mesh, got %s", m.Name())
	}
	perm := make([]int, m.Nodes())
	for id := range perm {
		x, y := m.Coord(id)
		t, _ := m.NodeAt(y, x)
		perm[id] = t
	}
	return NewPermutation("transpose", perm)
}

// NeighborRing returns the permutation i -> (i+stride) mod n, a
// nearest-neighbour pattern on ring-like topologies.
func NeighborRing(n, stride int) *Permutation {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = ((i+stride)%n + n) % n
	}
	p, _ := NewPermutation(fmt.Sprintf("neighbor+%d", stride), perm)
	return p
}

// BitReverse returns the bit-reversal permutation over the number of
// bits needed for n-1; partners that land out of range stay put
// (silent).
func BitReverse(n int) *Permutation {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	perm := make([]int, n)
	for i := range perm {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		if r < n {
			perm[i] = r
		} else {
			perm[i] = i
		}
	}
	p, _ := NewPermutation("bit-reverse", perm)
	return p
}
