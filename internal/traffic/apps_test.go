package traffic

import (
	"math"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

func buildMeshNet(t *testing.T, cols, rows int) *noc.Network {
	t.Helper()
	m := topology.MustMesh(cols, rows)
	net, err := noc.NewNetwork(m, routing.NewMeshXY(m), noc.DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRequestReplyValidation(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	if _, err := NewRequestReply(k, net, nil, []int{0}, 0.01, 1); err == nil {
		t.Fatal("no masters accepted")
	}
	if _, err := NewRequestReply(k, net, []int{1}, nil, 0.01, 1); err == nil {
		t.Fatal("no slaves accepted")
	}
	if _, err := NewRequestReply(k, net, []int{1}, []int{1}, 0.01, 1); err == nil {
		t.Fatal("overlapping master/slave accepted")
	}
	if _, err := NewRequestReply(k, net, []int{1}, []int{0}, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewRequestReply(k, net, []int{99}, []int{0}, 0.01, 1); err == nil {
		t.Fatal("out-of-range master accepted")
	}
	if _, err := NewRequestReply(k, net, []int{1}, []int{99}, 0.01, 1); err == nil {
		t.Fatal("out-of-range slave accepted")
	}
}

func TestRequestReplyTransactions(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	// Nodes 1..7 are masters, node 0 is the memory-controller slave —
	// the closed-loop version of the paper's hot-spot scenario.
	masters := []int{1, 2, 3, 4, 5, 6, 7}
	rr, err := NewRequestReply(k, net, masters, []int{0}, 0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(20000)
	if rr.Requests() == 0 {
		t.Fatal("no requests")
	}
	if rr.Replies() == 0 {
		t.Fatal("no replies")
	}
	if rr.Replies() > rr.Requests() {
		t.Fatalf("replies %d exceed requests %d", rr.Replies(), rr.Requests())
	}
	done := rr.CompletedTransactions()
	if done == 0 {
		t.Fatal("no completed round trips")
	}
	// Round trip must exceed twice the one-way floor (1 hop minimum +
	// serialization each way).
	if mean := rr.RoundTrip().Mean(); mean < 14 {
		t.Fatalf("round trip mean %v below physical floor", mean)
	}
	// Low load: nearly all requests complete by the horizon.
	if float64(done) < 0.9*float64(rr.Requests()) {
		t.Fatalf("only %d of %d transactions completed", done, rr.Requests())
	}
}

func TestRequestReplyDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		net := buildNet(t, 8)
		k := sim.NewKernel()
		rr, err := NewRequestReply(k, net, []int{1, 2, 3}, []int{0, 4}, 0.01, 9)
		if err != nil {
			t.Fatal(err)
		}
		rr.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(8000)
		return rr.CompletedTransactions(), rr.RoundTrip().Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatal("request-reply not deterministic")
	}
}

func TestRequestReplyStartTwicePanics(t *testing.T) {
	net := buildNet(t, 8)
	k := sim.NewKernel()
	rr, _ := NewRequestReply(k, net, []int{1}, []int{0}, 0.01, 1)
	rr.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	rr.Start()
}

func TestOnOffValidation(t *testing.T) {
	bad := []OnOff{
		{PeakRate: 0, OnMean: 10, OffMean: 10},
		{PeakRate: 0.1, OnMean: 0, OffMean: 10},
		{PeakRate: 0.1, OnMean: 10, OffMean: -1},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("bad shape %d validated", i)
		}
	}
	good := OnOff{PeakRate: 0.2, OnMean: 50, OffMean: 150}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.MeanRate(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("mean rate = %v, want 0.05", got)
	}
}

func TestOnOffGeneratorMeanRate(t *testing.T) {
	net := buildMeshNet(t, 4, 4)
	k := sim.NewKernel()
	shape := OnOff{PeakRate: 0.08, OnMean: 100, OffMean: 300} // mean 0.02
	g, err := NewOnOffGenerator(k, net, Uniform{N: 16}, shape, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	const horizon = 120000
	k.RunUntil(horizon)
	got := float64(g.OfferedPackets()) / horizon / 16
	want := shape.MeanRate()
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("offered rate %v, want ≈ %v", got, want)
	}
}

func TestOnOffGeneratorRejectsBadShape(t *testing.T) {
	net := buildMeshNet(t, 2, 2)
	if _, err := NewOnOffGenerator(sim.NewKernel(), net, Uniform{N: 4}, OnOff{}, 1); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestOnOffBurstierThanPoisson(t *testing.T) {
	// Same mean rate, same network: the bursty source produces a higher
	// p95 latency than the smooth Poisson source.
	mean := 0.02
	runPoisson := func() float64 {
		net := buildMeshNet(t, 4, 4)
		k := sim.NewKernel()
		g, err := NewGenerator(k, net, Uniform{N: 16}, Poisson, mean, 7)
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(60000)
		return net.Collector().LatencyQuantile(0.95)
	}
	runBursty := func() float64 {
		net := buildMeshNet(t, 4, 4)
		k := sim.NewKernel()
		shape := OnOff{PeakRate: 0.2, OnMean: 60, OffMean: 540} // mean 0.02
		g, err := NewOnOffGenerator(k, net, Uniform{N: 16}, shape, 7)
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(60000)
		return net.Collector().LatencyQuantile(0.95)
	}
	smooth, bursty := runPoisson(), runBursty()
	if bursty <= smooth {
		t.Fatalf("bursty p95 %v not above smooth p95 %v", bursty, smooth)
	}
}

func TestOnOffStartTwicePanics(t *testing.T) {
	net := buildMeshNet(t, 2, 2)
	k := sim.NewKernel()
	g, _ := NewOnOffGenerator(k, net, Uniform{N: 4}, OnOff{PeakRate: 0.1, OnMean: 10, OffMean: 10}, 1)
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	g.Start()
}
