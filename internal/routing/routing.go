// Package routing implements the deterministic routing algorithms the
// paper assigns to each topology — shortest-direction for the Ring,
// Across-first for the Spidergon, dimension-order (XY) for the 2D Mesh —
// plus a table-driven algorithm for irregular topologies and a
// dimension-order algorithm for the torus extension.
//
// Deadlock avoidance follows the paper's buffer architecture: Ring and
// Spidergon channels carry two virtual channels operated as a dateline
// scheme (a packet starts on VC 0 and moves to VC 1 on the channel that
// crosses the ring's dateline), while the mesh needs a single buffer
// because XY routing is turn-restricted. The package also provides a
// channel-dependency-graph checker that proves deadlock freedom of any
// deterministic algorithm on any topology by exhaustive path
// enumeration.
package routing

import (
	"fmt"

	"gonoc/internal/topology"
)

// Decision is one routing step: the direction of the output channel to
// take from the current node, and the virtual channel to occupy on it.
type Decision struct {
	Dir topology.Direction
	VC  int
}

// Algorithm is a deterministic, incremental (per-hop) routing function.
//
// Route is evaluated at every node a packet's head flit visits,
// including the source. cur is the current node, dst the destination
// (cur != dst), and vc the virtual channel the packet currently
// occupies — pass 0 at the source, then feed back the VC of the
// previous Decision. The returned Decision names an output channel that
// must exist at cur.
type Algorithm interface {
	// Name identifies the algorithm, e.g. "xy" or "across-first".
	Name() string
	// VCs returns the number of virtual channels the algorithm
	// requires on every network channel (1 or 2 for the paper's
	// topologies).
	VCs() int
	// Route returns the next hop from cur toward dst.
	Route(cur, dst, vc int) Decision
}

// Path walks the algorithm from src to dst on t and returns the node
// sequence, inclusive. It returns an error if the algorithm names a
// non-existent channel, exceeds 4·N hops (livelock), or revisits a
// (node, vc) state.
func Path(a Algorithm, t topology.Topology, src, dst int) ([]int, error) {
	if src == dst {
		return []int{src}, nil
	}
	limit := 4 * t.Nodes()
	path := []int{src}
	cur, vc := src, 0
	seen := map[[2]int]bool{{src, 0}: true}
	for cur != dst {
		if len(path) > limit {
			return nil, fmt.Errorf("routing: %s exceeded %d hops from %d to %d", a.Name(), limit, src, dst)
		}
		d := a.Route(cur, dst, vc)
		next, ok := t.Neighbor(cur, d.Dir)
		if !ok {
			return nil, fmt.Errorf("routing: %s at node %d toward %d chose missing direction %v", a.Name(), cur, dst, d.Dir)
		}
		if d.VC < 0 || d.VC >= a.VCs() {
			return nil, fmt.Errorf("routing: %s chose vc %d outside 0..%d", a.Name(), d.VC, a.VCs()-1)
		}
		cur, vc = next, d.VC
		state := [2]int{cur, vc}
		if cur != dst && seen[state] {
			return nil, fmt.Errorf("routing: %s revisits node %d vc %d en route %d->%d", a.Name(), cur, vc, src, dst)
		}
		seen[state] = true
		path = append(path, cur)
	}
	return path, nil
}

// HopCount returns the number of hops the algorithm takes from src to
// dst, or an error from Path.
func HopCount(a Algorithm, t topology.Topology, src, dst int) (int, error) {
	p, err := Path(a, t, src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// CheckConnected verifies the algorithm delivers every (src, dst) pair
// on t, returning the first failure.
func CheckConnected(a Algorithm, t topology.Topology) error {
	n := t.Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if _, err := Path(a, t, s, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckMinimal verifies the algorithm's path length equals the BFS
// shortest-path distance for every pair. All three of the paper's
// routing schemes are minimal on their topologies.
func CheckMinimal(a Algorithm, t topology.Topology) error {
	n := t.Nodes()
	for s := 0; s < n; s++ {
		dist := topology.BFS(t, s)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			hops, err := HopCount(a, t, s, d)
			if err != nil {
				return err
			}
			if hops != dist[d] {
				return fmt.Errorf("routing: %s takes %d hops %d->%d, shortest is %d", a.Name(), hops, s, d, dist[d])
			}
		}
	}
	return nil
}
