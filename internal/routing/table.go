package routing

import (
	"fmt"

	"gonoc/internal/topology"
)

// TableRouting is the paper's "table-driven" option: a per-node
// next-hop table computed offline (here by breadth-first search from
// every destination) and looked up per hop. It routes minimally on any
// connected topology, including arbitrary irregular meshes, at the cost
// of N² table entries and no inherent deadlock guarantee — check an
// instance with CheckDeadlockFree before trusting it in a wormhole
// network.
type TableRouting struct {
	name string
	vcs  int
	// next[cur][dst] is the direction to take; DirInvalid on diagonal.
	next [][]topology.Direction
}

// NewTableRouting computes minimal next-hop tables for t with the given
// number of virtual channels (packets stay on VC 0; extra VCs are
// available to the network for other purposes). Ties between equal-cost
// next hops resolve to the lowest channel ID, so tables are
// deterministic. It returns an error if t is disconnected.
func NewTableRouting(t topology.Topology, vcs int) (*TableRouting, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("routing: table routing needs at least 1 vc, got %d", vcs)
	}
	n := t.Nodes()
	tr := &TableRouting{
		name: "table-" + t.Name(),
		vcs:  vcs,
		next: make([][]topology.Direction, n),
	}
	for cur := 0; cur < n; cur++ {
		tr.next[cur] = make([]topology.Direction, n)
	}
	// One BFS per destination over the reversed graph gives, for every
	// node, its distance to dst; the best next hop from cur is any
	// neighbour one step closer. Build the reverse adjacency once.
	rin := make([][]topology.Channel, n)
	for _, c := range t.Channels() {
		rin[c.Dst] = append(rin[c.Dst], c)
	}
	for dst := 0; dst < n; dst++ {
		distTo := bfsToward(t, dst, rin)
		for cur := 0; cur < n; cur++ {
			if cur == dst {
				tr.next[cur][dst] = topology.DirInvalid
				continue
			}
			if distTo[cur] < 0 {
				return nil, fmt.Errorf("routing: %s cannot reach %d from %d", t.Name(), dst, cur)
			}
			for _, c := range t.Out(cur) {
				if distTo[c.Dst] == distTo[cur]-1 {
					tr.next[cur][dst] = c.Dir
					break // channels scanned in ID order: deterministic
				}
			}
		}
	}
	return tr, nil
}

// bfsToward returns each node's distance TO dst, walking reverse edges.
func bfsToward(t topology.Topology, dst int, rin [][]topology.Channel) []int {
	n := t.Nodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range rin[v] {
			if dist[c.Src] < 0 {
				dist[c.Src] = dist[v] + 1
				queue = append(queue, c.Src)
			}
		}
	}
	return dist
}

// Name returns "table-<topology>".
func (a *TableRouting) Name() string { return a.name }

// VCs returns the VC count supplied at construction.
func (a *TableRouting) VCs() int { return a.vcs }

// Route looks up the next hop; packets remain on VC 0.
func (a *TableRouting) Route(cur, dst, vc int) Decision {
	return Decision{Dir: a.next[cur][dst], VC: 0}
}
