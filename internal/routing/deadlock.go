package routing

import (
	"fmt"

	"gonoc/internal/topology"
)

// This file implements the classical channel-dependency-graph (CDG)
// analysis of Dally & Seitz: a deterministic wormhole routing function
// is deadlock-free iff the graph whose vertices are (channel, virtual
// channel) resources and whose edges are the "holds A, waits for B"
// relations induced by routed paths is acyclic. Because all algorithms
// in this package are deterministic, the exact dependency set is
// enumerable by walking every (src, dst) path.

// resource identifies one virtual channel of one physical channel.
type resource struct {
	channel int
	vc      int
}

// DependencyGraph is the channel dependency graph of an algorithm on a
// topology.
type DependencyGraph struct {
	topo  topology.Topology
	alg   Algorithm
	edges map[resource]map[resource]bool
}

// BuildDependencyGraph enumerates all source/destination pairs, walks
// each routed path, and records a dependency from every resource to its
// successor on the path. It returns an error if any path fails to
// route.
func BuildDependencyGraph(a Algorithm, t topology.Topology) (*DependencyGraph, error) {
	g := &DependencyGraph{
		topo:  t,
		alg:   a,
		edges: make(map[resource]map[resource]bool),
	}
	n := t.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if err := g.addPath(src, dst); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// addPath walks one routed path, recording resource-to-resource edges.
func (g *DependencyGraph) addPath(src, dst int) error {
	limit := 4 * g.topo.Nodes()
	cur, vc := src, 0
	var prev *resource
	for hops := 0; cur != dst; hops++ {
		if hops > limit {
			return fmt.Errorf("routing: livelock enumerating %d->%d with %s", src, dst, g.alg.Name())
		}
		d := g.alg.Route(cur, dst, vc)
		next, ok := g.topo.Neighbor(cur, d.Dir)
		if !ok {
			return fmt.Errorf("routing: %s chose missing direction %v at %d toward %d", g.alg.Name(), d.Dir, cur, dst)
		}
		ch, _ := topology.ChannelBetween(g.topo, cur, next)
		r := resource{channel: ch.ID, vc: d.VC}
		if prev != nil {
			m, ok := g.edges[*prev]
			if !ok {
				m = make(map[resource]bool)
				g.edges[*prev] = m
			}
			m[r] = true
		}
		prev = &r
		cur, vc = next, d.VC
	}
	return nil
}

// Resources returns the number of distinct (channel, vc) resources that
// appear in the graph.
func (g *DependencyGraph) Resources() int {
	seen := make(map[resource]bool)
	for from, tos := range g.edges {
		seen[from] = true
		for to := range tos {
			seen[to] = true
		}
	}
	return len(seen)
}

// Edges returns the number of dependency edges.
func (g *DependencyGraph) Edges() int {
	n := 0
	for _, tos := range g.edges {
		n += len(tos)
	}
	return n
}

// FindCycle returns a dependency cycle as a sequence of (channel, vc)
// descriptions, or nil when the graph is acyclic. The cycle, if any, is
// a concrete deadlock witness: a set of packets each holding one
// resource and waiting for the next would block forever.
func (g *DependencyGraph) FindCycle() []string {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS stack
		black = 2 // fully explored
	)
	color := make(map[resource]int)
	var stack []resource
	var cycle []resource

	var dfs func(r resource) bool
	dfs = func(r resource) bool {
		color[r] = grey
		stack = append(stack, r)
		for next := range g.edges[r] {
			switch color[next] {
			case white:
				if dfs(next) {
					return true
				}
			case grey:
				// Found a back edge: extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append([]resource{stack[i]}, cycle...)
					if stack[i] == next {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[r] = black
		return false
	}

	for from := range g.edges {
		if color[from] == white {
			if dfs(from) {
				break
			}
		}
	}
	if cycle == nil {
		return nil
	}
	out := make([]string, len(cycle))
	chans := g.topo.Channels()
	for i, r := range cycle {
		out[i] = fmt.Sprintf("%v@vc%d", chans[r.channel], r.vc)
	}
	return out
}

// CheckDeadlockFree builds the dependency graph of a on t and returns an
// error describing a cycle if one exists.
func CheckDeadlockFree(a Algorithm, t topology.Topology) error {
	g, err := BuildDependencyGraph(a, t)
	if err != nil {
		return err
	}
	if cyc := g.FindCycle(); cyc != nil {
		return fmt.Errorf("routing: %s on %s has a channel dependency cycle: %v", a.Name(), t.Name(), cyc)
	}
	return nil
}
