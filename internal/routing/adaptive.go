package routing

import (
	"fmt"

	"gonoc/internal/topology"
)

// The paper lists "adaptive" among the routing families for NoCs and
// defers "analysis of routing protocols" to future work. This file
// supplies that extension: minimally adaptive routing under a
// turn-model restriction, with an exhaustive all-candidates dependency
// check proving deadlock freedom.

// CongestionView is what a router exposes to an adaptive algorithm at
// decision time: occupancy of the local output queues. The noc package
// implements it; tests use synthetic views.
type CongestionView interface {
	// OutputOccupancy returns the queued flits (plus one if the queue
	// is owned by an in-flight worm) for the output queue in direction
	// d, virtual channel vc; missing outputs report over-capacity.
	OutputOccupancy(d topology.Direction, vc int) int
	// OutputFree reports whether a new head flit could be accepted
	// into that output queue right now.
	OutputFree(d topology.Direction, vc int) bool
}

// Adaptive is a routing algorithm that may choose among several legal
// next hops based on local congestion. Route (from Algorithm) must
// return a fixed default candidate so the algorithm also works in
// deterministic contexts.
type Adaptive interface {
	Algorithm
	// Candidates returns every legal decision at (cur, dst, vc), in
	// deterministic preference order. Must be non-empty for cur != dst.
	Candidates(cur, dst, vc int) []Decision
	// Choose picks one candidate given the local congestion view.
	Choose(cur, dst, vc int, view CongestionView) Decision
}

// MeshWestFirst is the west-first turn model (Glass & Ni) on a full 2D
// mesh: packets heading west travel fully west first (no adaptivity),
// while packets heading east or straight north/south may choose
// adaptively among the minimal directions {east, north, south}. The
// model forbids the two turns into west, which removes both abstract
// cycles, so a single buffer per channel suffices — like XY, but with
// congestion-responsive path diversity for eastbound traffic.
type MeshWestFirst struct {
	mesh *topology.Mesh
}

// NewMeshWestFirst returns west-first adaptive routing for the full
// mesh m; irregular meshes are rejected.
func NewMeshWestFirst(m *topology.Mesh) (*MeshWestFirst, error) {
	if m.Irregular() {
		return nil, fmt.Errorf("routing: west-first unsupported on irregular mesh %s", m.Name())
	}
	return &MeshWestFirst{mesh: m}, nil
}

// Name returns "west-first".
func (a *MeshWestFirst) Name() string { return "west-first" }

// VCs returns 1: the turn model needs no virtual channels.
func (a *MeshWestFirst) VCs() int { return 1 }

// Candidates returns the minimal directions permitted by the west-first
// turn rule, preferring the dimension with more remaining distance.
func (a *MeshWestFirst) Candidates(cur, dst, vc int) []Decision {
	m := a.mesh
	x, y := m.Coord(cur)
	dx, dy := m.Coord(dst)
	if dx < x {
		// West traffic is fully deterministic: west first, then Y.
		return []Decision{{Dir: topology.DirWest, VC: 0}}
	}
	var out []Decision
	ew := dx - x
	var ns int
	var nsDir topology.Direction
	if dy > y {
		ns, nsDir = dy-y, topology.DirSouth
	} else if dy < y {
		ns, nsDir = y-dy, topology.DirNorth
	}
	// Preference order: longer remaining dimension first, so the
	// default (deterministic) path balances the two dimensions.
	if ew >= ns && ew > 0 {
		out = append(out, Decision{Dir: topology.DirEast, VC: 0})
	}
	if ns > 0 {
		out = append(out, Decision{Dir: nsDir, VC: 0})
	}
	if ew > 0 && ew < ns {
		out = append(out, Decision{Dir: topology.DirEast, VC: 0})
	}
	return out
}

// Route returns the first candidate (deterministic default).
func (a *MeshWestFirst) Route(cur, dst, vc int) Decision {
	return a.Candidates(cur, dst, vc)[0]
}

// Choose picks the least-occupied candidate output queue, breaking
// ties in preference order.
func (a *MeshWestFirst) Choose(cur, dst, vc int, view CongestionView) Decision {
	cands := a.Candidates(cur, dst, vc)
	best := cands[0]
	bestOcc := view.OutputOccupancy(best.Dir, best.VC)
	for _, c := range cands[1:] {
		if occ := view.OutputOccupancy(c.Dir, c.VC); occ < bestOcc {
			best, bestOcc = c, occ
		}
	}
	return best
}

// CheckDeadlockFreeAdaptive builds the dependency graph over EVERY
// candidate branch an adaptive algorithm might take (not just the
// deterministic default) and reports a cycle if one exists. The state
// space is (node, vc) per (src, dst) pair, explored exhaustively.
func CheckDeadlockFreeAdaptive(a Adaptive, t topology.Topology) error {
	g := &DependencyGraph{
		topo:  t,
		alg:   a,
		edges: make(map[resource]map[resource]bool),
	}
	n := t.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if err := addAdaptivePaths(g, a, t, src, dst); err != nil {
				return err
			}
		}
	}
	if cyc := g.FindCycle(); cyc != nil {
		return fmt.Errorf("routing: %s on %s has a channel dependency cycle: %v", a.Name(), t.Name(), cyc)
	}
	return nil
}

// adaptiveState is one exploration state: the packet sits at node
// having arrived over resource prev (nil at the source) on VC vc.
type adaptiveState struct {
	node int
	vc   int
	prev resource
	src  bool // prev is unset
}

// addAdaptivePaths walks every candidate branch from src to dst,
// recording dependencies between consecutive resources. Visited states
// are pruned, so termination is guaranteed even for diverging rules.
func addAdaptivePaths(g *DependencyGraph, a Adaptive, t topology.Topology, src, dst int) error {
	limit := 4 * t.Nodes()
	type queued struct {
		s     adaptiveState
		depth int
	}
	seen := map[adaptiveState]bool{}
	start := adaptiveState{node: src, vc: 0, src: true}
	queue := []queued{{s: start}}
	seen[start] = true
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if q.s.node == dst {
			continue
		}
		if q.depth > limit {
			return fmt.Errorf("routing: %s livelocks enumerating %d->%d", a.Name(), src, dst)
		}
		cands := a.Candidates(q.s.node, dst, q.s.vc)
		if len(cands) == 0 {
			return fmt.Errorf("routing: %s has no candidates at %d toward %d", a.Name(), q.s.node, dst)
		}
		for _, d := range cands {
			next, ok := t.Neighbor(q.s.node, d.Dir)
			if !ok {
				return fmt.Errorf("routing: %s names missing direction %v at %d", a.Name(), d.Dir, q.s.node)
			}
			ch, _ := topology.ChannelBetween(t, q.s.node, next)
			r := resource{channel: ch.ID, vc: d.VC}
			if !q.s.src {
				m, ok := g.edges[q.s.prev]
				if !ok {
					m = make(map[resource]bool)
					g.edges[q.s.prev] = m
				}
				m[r] = true
			}
			ns := adaptiveState{node: next, vc: d.VC, prev: r}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, queued{s: ns, depth: q.depth + 1})
			}
		}
	}
	return nil
}
