package routing

import (
	"strings"
	"testing"
	"testing/quick"

	"gonoc/internal/topology"
)

func TestRingRoutingMinimalAndConnected(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 12, 17, 24} {
		r := topology.MustRing(n)
		a := NewRingRouting(r)
		if err := CheckMinimal(a, r); err != nil {
			t.Fatalf("ring-%d: %v", n, err)
		}
	}
}

func TestRingRoutingTieBreaksClockwise(t *testing.T) {
	r := topology.MustRing(8)
	a := NewRingRouting(r)
	// 0 -> 4 is an exact tie; the rule picks clockwise.
	d := a.Route(0, 4, 0)
	if d.Dir != topology.DirClockwise {
		t.Fatalf("tie broke to %v", d.Dir)
	}
}

func TestRingDatelineVCSwitch(t *testing.T) {
	r := topology.MustRing(8)
	a := NewRingRouting(r)
	// Clockwise across the 7->0 boundary switches to VC 1.
	d := a.Route(7, 2, 0)
	if d.Dir != topology.DirClockwise || d.VC != 1 {
		t.Fatalf("dateline cw decision = %+v", d)
	}
	// Counterclockwise across 0->7 switches to VC 1.
	d = a.Route(0, 6, 0)
	if d.Dir != topology.DirCounterClockwise || d.VC != 1 {
		t.Fatalf("dateline ccw decision = %+v", d)
	}
	// VC 1 is sticky once set.
	d = a.Route(1, 3, 1)
	if d.VC != 1 {
		t.Fatalf("vc1 not sticky: %+v", d)
	}
	// Ordinary hops keep VC 0.
	d = a.Route(2, 5, 0)
	if d.VC != 0 {
		t.Fatalf("ordinary hop moved to vc %d", d.VC)
	}
}

func TestRingRoutingDeadlockFree(t *testing.T) {
	for _, n := range []int{4, 8, 13, 16} {
		r := topology.MustRing(n)
		if err := CheckDeadlockFree(NewRingRouting(r), r); err != nil {
			t.Fatalf("ring-%d: %v", n, err)
		}
	}
}

// A single-VC ring MUST show a dependency cycle — this validates that
// the checker actually detects deadlock, and documents why the paper's
// ring needs its second output buffer.
func TestSingleVCRingHasCycle(t *testing.T) {
	r := topology.MustRing(8)
	a := &singleVCRing{ring: r}
	err := CheckDeadlockFree(a, r)
	if err == nil {
		t.Fatal("single-VC ring reported deadlock-free")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// singleVCRing routes like RingRouting but without the dateline.
type singleVCRing struct{ ring *topology.Ring }

func (a *singleVCRing) Name() string { return "ring-novc" }
func (a *singleVCRing) VCs() int     { return 1 }
func (a *singleVCRing) Route(cur, dst, vc int) Decision {
	n := a.ring.Nodes()
	cw := ringCW(n, cur, dst)
	dir := topology.DirClockwise
	if n-cw < cw {
		dir = topology.DirCounterClockwise
	}
	return Decision{Dir: dir, VC: 0}
}

func TestSpidergonRoutingMinimal(t *testing.T) {
	for _, n := range []int{4, 6, 8, 12, 16, 20, 30, 32} {
		s := topology.MustSpidergon(n)
		a := NewSpidergonRouting(s)
		if err := CheckMinimal(a, s); err != nil {
			t.Fatalf("spidergon-%d: %v", n, err)
		}
	}
}

func TestSpidergonAcrossFirstSemantics(t *testing.T) {
	s := topology.MustSpidergon(16)
	a := NewSpidergonRouting(s)
	// 0 -> 8 is opposite: across, then done.
	p, err := Path(a, s, 0, 8)
	if err != nil || len(p) != 2 || p[1] != 8 {
		t.Fatalf("opposite path = %v, %v", p, err)
	}
	// 0 -> 7: ring distance 7 > 4, so across to 8 then ccw to 7.
	p, err = Path(a, s, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 8 {
		t.Fatalf("across-first not taken: %v", p)
	}
	// After the across hop the across link must never appear again.
	for i := 1; i+1 < len(p); i++ {
		ch, _ := topology.ChannelBetween(s, p[i], p[i+1])
		if ch.Dir == topology.DirAcross {
			t.Fatalf("across taken twice in %v", p)
		}
	}
	// 0 -> 4: ring distance exactly N/4 = 4; the rule keeps the ring.
	p, err = Path(a, s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 1 {
		t.Fatalf("boundary distance should stay on ring: %v", p)
	}
}

func TestSpidergonDirectionMaintained(t *testing.T) {
	// Once on the ring, the direction never flips.
	s := topology.MustSpidergon(20)
	a := NewSpidergonRouting(s)
	for src := 0; src < 20; src++ {
		for dst := 0; dst < 20; dst++ {
			if src == dst {
				continue
			}
			p, err := Path(a, s, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			sawCW, sawCCW := false, false
			for i := 0; i+1 < len(p); i++ {
				ch, _ := topology.ChannelBetween(s, p[i], p[i+1])
				switch ch.Dir {
				case topology.DirClockwise:
					sawCW = true
				case topology.DirCounterClockwise:
					sawCCW = true
				}
			}
			if sawCW && sawCCW {
				t.Fatalf("path %v mixes ring directions", p)
			}
		}
	}
}

func TestSpidergonRoutingDeadlockFree(t *testing.T) {
	for _, n := range []int{8, 12, 16, 24} {
		s := topology.MustSpidergon(n)
		if err := CheckDeadlockFree(NewSpidergonRouting(s), s); err != nil {
			t.Fatalf("spidergon-%d: %v", n, err)
		}
	}
}

func TestMeshXYMinimalAndDeadlockFree(t *testing.T) {
	for _, d := range []struct{ c, r int }{{2, 4}, {4, 6}, {3, 3}, {5, 4}, {1, 6}, {8, 2}} {
		m := topology.MustMesh(d.c, d.r)
		a := NewMeshXY(m)
		if err := CheckMinimal(a, m); err != nil {
			t.Fatalf("mesh %dx%d: %v", d.c, d.r, err)
		}
		if err := CheckDeadlockFree(a, m); err != nil {
			t.Fatalf("mesh %dx%d: %v", d.c, d.r, err)
		}
	}
}

func TestMeshXYPathShape(t *testing.T) {
	m := topology.MustMesh(4, 4)
	a := NewMeshXY(m)
	// 0 (0,0) -> 15 (3,3): all X moves then all Y moves.
	p, err := Path(a, m, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 7, 11, 15}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestMeshXYIrregularMinimalDeadlockFree(t *testing.T) {
	for _, n := range []int{5, 7, 10, 11, 13, 14, 18, 23, 27} {
		m := topology.MustIrregularMesh(n)
		a := NewMeshXY(m)
		if err := CheckConnected(a, m); err != nil {
			t.Fatalf("imesh-%d: %v", n, err)
		}
		if err := CheckMinimal(a, m); err != nil {
			t.Fatalf("imesh-%d: %v", n, err)
		}
		if err := CheckDeadlockFree(a, m); err != nil {
			t.Fatalf("imesh-%d: %v", n, err)
		}
	}
}

func TestMeshXYNorthEscape(t *testing.T) {
	// imesh-13 is 4 cols, 3 full rows + node 12 at (0,3).
	m := topology.MustIrregularMesh(13)
	a := NewMeshXY(m)
	// From 12, destination column 3 (node 11 at (3,2)): must escape
	// north first because (1,3) does not exist.
	d := a.Route(12, 11, 0)
	if d.Dir != topology.DirNorth {
		t.Fatalf("escape decision = %+v", d)
	}
	p, err := Path(a, m, 12, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(p)-1 != topology.BFS(m, 12)[11] {
		t.Fatalf("escape path %v not minimal", p)
	}
}

func TestMeshYX(t *testing.T) {
	m := topology.MustMesh(4, 4)
	a, err := NewMeshYX(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMinimal(a, m); err != nil {
		t.Fatal(err)
	}
	if err := CheckDeadlockFree(a, m); err != nil {
		t.Fatal(err)
	}
	// YX goes vertical first.
	p, _ := Path(a, m, 0, 15)
	if p[1] != 4 {
		t.Fatalf("yx path = %v", p)
	}
	if _, err := NewMeshYX(topology.MustIrregularMesh(7)); err == nil {
		t.Fatal("yx accepted an irregular mesh")
	}
}

func TestTorusDORMinimalAndDeadlockFree(t *testing.T) {
	for _, d := range []struct{ c, r int }{{3, 3}, {4, 4}, {5, 3}, {4, 6}} {
		tor := topology.MustTorus(d.c, d.r)
		a := NewTorusDOR(tor)
		if err := CheckMinimal(a, tor); err != nil {
			t.Fatalf("torus %dx%d: %v", d.c, d.r, err)
		}
		if err := CheckDeadlockFree(a, tor); err != nil {
			t.Fatalf("torus %dx%d: %v", d.c, d.r, err)
		}
	}
}

func TestTableRoutingMinimalEverywhere(t *testing.T) {
	tops := []topology.Topology{
		topology.MustRing(9),
		topology.MustSpidergon(12),
		topology.MustMesh(3, 4),
		topology.MustIrregularMesh(11),
		topology.MustChordalRing(11, 3),
		topology.MustTorus(3, 4),
	}
	for _, top := range tops {
		a, err := NewTableRouting(top, 1)
		if err != nil {
			t.Fatalf("%s: %v", top.Name(), err)
		}
		if err := CheckMinimal(a, top); err != nil {
			t.Fatalf("%s: %v", top.Name(), err)
		}
	}
}

func TestTableRoutingOnMeshIsDeadlockFree(t *testing.T) {
	// Ties resolve to lowest channel ID = east-first, which yields an
	// XY-like table on a full mesh; the checker should confirm.
	m := topology.MustMesh(4, 4)
	a, err := NewTableRouting(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDeadlockFree(a, m); err != nil {
		t.Fatalf("table on mesh: %v", err)
	}
}

func TestTableRoutingRejectsZeroVCs(t *testing.T) {
	if _, err := NewTableRouting(topology.MustRing(5), 0); err == nil {
		t.Fatal("0 vcs accepted")
	}
}

func TestPathSelfIsTrivial(t *testing.T) {
	r := topology.MustRing(6)
	p, err := Path(NewRingRouting(r), r, 2, 2)
	if err != nil || len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func TestPathDetectsBadAlgorithm(t *testing.T) {
	r := topology.MustRing(6)
	bad := badAlg{}
	if _, err := Path(bad, r, 0, 3); err == nil {
		t.Fatal("missing-direction algorithm not detected")
	}
	if _, err := Path(badVC{}, r, 0, 3); err == nil {
		t.Fatal("out-of-range VC not detected")
	}
	if _, err := Path(loopAlg{}, r, 0, 3); err == nil {
		t.Fatal("looping algorithm not detected")
	}
}

type badAlg struct{}

func (badAlg) Name() string { return "bad" }
func (badAlg) VCs() int     { return 1 }
func (badAlg) Route(cur, dst, vc int) Decision {
	return Decision{Dir: topology.DirEast, VC: 0} // rings have no east
}

type badVC struct{}

func (badVC) Name() string { return "badvc" }
func (badVC) VCs() int     { return 1 }
func (badVC) Route(cur, dst, vc int) Decision {
	return Decision{Dir: topology.DirClockwise, VC: 5}
}

type loopAlg struct{}

func (loopAlg) Name() string { return "loop" }
func (loopAlg) VCs() int     { return 2 }
func (loopAlg) Route(cur, dst, vc int) Decision {
	// Alternate VCs so (node, vc) states don't repeat early, but never
	// make progress toward most destinations: always clockwise, which
	// on a ring does terminate... so use vc to oscillate direction.
	if vc == 0 {
		return Decision{Dir: topology.DirClockwise, VC: 1}
	}
	return Decision{Dir: topology.DirCounterClockwise, VC: 0}
}

func TestDependencyGraphStats(t *testing.T) {
	r := topology.MustRing(8)
	g, err := BuildDependencyGraph(NewRingRouting(r), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Resources() == 0 || g.Edges() == 0 {
		t.Fatalf("degenerate CDG: %d resources %d edges", g.Resources(), g.Edges())
	}
	if g.FindCycle() != nil {
		t.Fatal("dateline ring CDG has a cycle")
	}
}

// Property: spidergon across-first hop count equals the analytic
// distance for random pairs and sizes.
func TestPropertySpidergonHops(t *testing.T) {
	f := func(nRaw, sRaw, dRaw uint8) bool {
		n := 6 + 2*(int(nRaw)%14)
		s := topology.MustSpidergon(n)
		a := NewSpidergonRouting(s)
		src, dst := int(sRaw)%n, int(dRaw)%n
		if src == dst {
			return true
		}
		h, err := HopCount(a, s, src, dst)
		return err == nil && h == s.Distance(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: XY on random full meshes always routes in exactly the
// Manhattan distance with at most one X->Y turn.
func TestPropertyMeshXYOneTurn(t *testing.T) {
	f := func(cRaw, rRaw, sRaw, dRaw uint8) bool {
		c, r := 2+int(cRaw)%6, 2+int(rRaw)%6
		m := topology.MustMesh(c, r)
		n := m.Nodes()
		src, dst := int(sRaw)%n, int(dRaw)%n
		if src == dst {
			return true
		}
		a := NewMeshXY(m)
		p, err := Path(a, m, src, dst)
		if err != nil || len(p)-1 != m.Distance(src, dst) {
			return false
		}
		turns := 0
		lastWasX := true
		for i := 0; i+1 < len(p); i++ {
			ch, _ := topology.ChannelBetween(m, p[i], p[i+1])
			isX := ch.Dir == topology.DirEast || ch.Dir == topology.DirWest
			if i > 0 && lastWasX != isX {
				turns++
			}
			lastWasX = isX
		}
		return turns <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
