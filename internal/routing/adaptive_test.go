package routing

import (
	"testing"

	"gonoc/internal/topology"
)

// fakeView is a synthetic congestion view for unit tests.
type fakeView struct {
	occ map[topology.Direction]int
}

func (v fakeView) OutputOccupancy(d topology.Direction, vc int) int {
	if o, ok := v.occ[d]; ok {
		return o
	}
	return 99
}

func (v fakeView) OutputFree(d topology.Direction, vc int) bool {
	return v.OutputOccupancy(d, vc) == 0
}

func mustWestFirst(t *testing.T, cols, rows int) (*MeshWestFirst, *topology.Mesh) {
	t.Helper()
	m := topology.MustMesh(cols, rows)
	a, err := NewMeshWestFirst(m)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestWestFirstRejectsIrregular(t *testing.T) {
	if _, err := NewMeshWestFirst(topology.MustIrregularMesh(7)); err == nil {
		t.Fatal("irregular mesh accepted")
	}
}

func TestWestFirstDeterministicDefaultMinimal(t *testing.T) {
	a, m := mustWestFirst(t, 4, 4)
	if err := CheckMinimal(a, m); err != nil {
		t.Fatal(err)
	}
	if err := CheckConnected(a, m); err != nil {
		t.Fatal(err)
	}
}

func TestWestFirstWestboundDeterministic(t *testing.T) {
	a, m := mustWestFirst(t, 4, 4)
	_ = m
	// From 7=(3,1) to 4=(0,1): pure west; a single candidate at each hop.
	c := a.Candidates(7, 4, 0)
	if len(c) != 1 || c[0].Dir != topology.DirWest {
		t.Fatalf("westbound candidates = %v", c)
	}
	// Southwest destination: still west first.
	c = a.Candidates(7, 12, 0) // (3,1) -> (0,3)
	if len(c) != 1 || c[0].Dir != topology.DirWest {
		t.Fatalf("southwest candidates = %v", c)
	}
}

func TestWestFirstEastboundAdaptive(t *testing.T) {
	a, _ := mustWestFirst(t, 4, 4)
	// From 0=(0,0) to 15=(3,3): east and south both minimal.
	c := a.Candidates(0, 15, 0)
	if len(c) != 2 {
		t.Fatalf("eastbound candidates = %v", c)
	}
	// Congestion steers: free south, busy east -> south.
	d := a.Choose(0, 15, 0, fakeView{occ: map[topology.Direction]int{
		topology.DirEast: 3, topology.DirSouth: 0,
	}})
	if d.Dir != topology.DirSouth {
		t.Fatalf("choose under east congestion = %v", d)
	}
	// Equal congestion: preference order (balanced dimensions: east
	// and south both distance 3; east preferred at ties by order).
	d = a.Choose(0, 15, 0, fakeView{occ: map[topology.Direction]int{
		topology.DirEast: 1, topology.DirSouth: 1,
	}})
	if d.Dir != c[0].Dir {
		t.Fatalf("tie-break not preference order: %v vs %v", d, c[0])
	}
}

func TestWestFirstCandidatePreferenceBalances(t *testing.T) {
	a, _ := mustWestFirst(t, 6, 6)
	// (0,0) -> (1,4): ns=4 > ew=1, so the first candidate is south.
	dst, _ := topology.MustMesh(6, 6).NodeAt(1, 4)
	c := a.Candidates(0, dst, 0)
	if c[0].Dir != topology.DirSouth {
		t.Fatalf("preference = %v, want south first", c)
	}
}

func TestWestFirstDeadlockFreeAllBranches(t *testing.T) {
	for _, d := range []struct{ c, r int }{{3, 3}, {4, 4}, {4, 6}, {2, 5}} {
		a, m := mustWestFirst(t, d.c, d.r)
		if err := CheckDeadlockFreeAdaptive(a, m); err != nil {
			t.Fatalf("%dx%d: %v", d.c, d.r, err)
		}
	}
}

// A fully adaptive (unrestricted minimal) mesh router is NOT deadlock
// free; the all-branches checker must find the cycle that west-first
// removes.
type unrestrictedMinimal struct{ mesh *topology.Mesh }

func (a *unrestrictedMinimal) Name() string { return "minimal-any" }
func (a *unrestrictedMinimal) VCs() int     { return 1 }
func (a *unrestrictedMinimal) Candidates(cur, dst, vc int) []Decision {
	m := a.mesh
	x, y := m.Coord(cur)
	dx, dy := m.Coord(dst)
	var out []Decision
	if dx > x {
		out = append(out, Decision{Dir: topology.DirEast, VC: 0})
	}
	if dx < x {
		out = append(out, Decision{Dir: topology.DirWest, VC: 0})
	}
	if dy > y {
		out = append(out, Decision{Dir: topology.DirSouth, VC: 0})
	}
	if dy < y {
		out = append(out, Decision{Dir: topology.DirNorth, VC: 0})
	}
	return out
}
func (a *unrestrictedMinimal) Route(cur, dst, vc int) Decision {
	return a.Candidates(cur, dst, vc)[0]
}
func (a *unrestrictedMinimal) Choose(cur, dst, vc int, view CongestionView) Decision {
	return a.Route(cur, dst, vc)
}

func TestUnrestrictedMinimalHasCycle(t *testing.T) {
	m := topology.MustMesh(3, 3)
	a := &unrestrictedMinimal{mesh: m}
	if err := CheckDeadlockFreeAdaptive(a, m); err == nil {
		t.Fatal("unrestricted minimal adaptive reported deadlock-free")
	}
}

func TestAdaptiveCheckerCatchesMissingCandidates(t *testing.T) {
	m := topology.MustMesh(3, 3)
	if err := CheckDeadlockFreeAdaptive(&noCandidates{}, m); err == nil {
		t.Fatal("empty candidate set not reported")
	}
}

type noCandidates struct{}

func (noCandidates) Name() string                                     { return "none" }
func (noCandidates) VCs() int                                         { return 1 }
func (noCandidates) Candidates(cur, dst, vc int) []Decision           { return nil }
func (noCandidates) Route(cur, dst, vc int) Decision                  { return Decision{} }
func (noCandidates) Choose(c, d, v int, view CongestionView) Decision { return Decision{} }
