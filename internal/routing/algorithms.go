package routing

import (
	"fmt"

	"gonoc/internal/topology"
)

// RingRouting is the paper's ring strategy: "clockwise or
// counterclockwise direction is taken from the source to the target
// node, depending on the shortest path direction", with the clockwise
// direction breaking exact ties deterministically. Two virtual channels
// with a dateline between nodes N-1 and 0 make the scheme deadlock-free.
type RingRouting struct {
	ring *topology.Ring
}

// NewRingRouting returns the shortest-direction algorithm for r.
func NewRingRouting(r *topology.Ring) *RingRouting { return &RingRouting{ring: r} }

// Name returns "ring-shortest".
func (a *RingRouting) Name() string { return "ring-shortest" }

// VCs returns 2: the paper's pair of output buffers per ring link.
func (a *RingRouting) VCs() int { return 2 }

// Route moves one hop along the shorter ring direction, switching to
// VC 1 when the hop crosses the dateline of its direction.
func (a *RingRouting) Route(cur, dst, vc int) Decision {
	n := a.ring.Nodes()
	cw := a.ring.ClockwiseDistance(cur, dst)
	dir := topology.DirClockwise
	if ccw := n - cw; ccw < cw {
		dir = topology.DirCounterClockwise
	}
	return Decision{Dir: dir, VC: ringVC(n, cur, dir, vc)}
}

// ringVC applies the dateline rule shared by ring and Spidergon ring
// channels: a clockwise hop from node N-1 to 0, or a counterclockwise
// hop from node 0 to N-1, moves the packet to VC 1. A packet never
// crosses its direction's dateline twice (paths are shorter than the
// ring), so the VC-1 channel dependency chain is acyclic.
func ringVC(n, cur int, dir topology.Direction, vc int) int {
	if dir == topology.DirClockwise && cur == n-1 {
		return 1
	}
	if dir == topology.DirCounterClockwise && cur == 0 {
		return 1
	}
	return vc
}

// SpidergonRouting is the paper's Across-first scheme: "first, if the
// target node for a packet is at distance D > N/4 on the external ring
// ... then the across link is traversed first, to reach the opposite
// node. Second, clockwise or counterclockwise direction is taken and
// maintained, depending on the target's position."
//
// The rule is evaluated per hop but is self-stabilising: after one
// across hop the remaining ring distance is strictly below N/4, so the
// across link is never chosen again and the "first" semantics hold
// without per-packet state.
type SpidergonRouting struct {
	sg *topology.Spidergon
}

// NewSpidergonRouting returns the Across-first algorithm for s.
func NewSpidergonRouting(s *topology.Spidergon) *SpidergonRouting {
	return &SpidergonRouting{sg: s}
}

// Name returns "across-first".
func (a *SpidergonRouting) Name() string { return "across-first" }

// VCs returns 2, as for the ring.
func (a *SpidergonRouting) VCs() int { return 2 }

// Route takes the across link when the ring distance exceeds N/4
// (restarting on VC 0, since the across hop begins a fresh ring
// traversal), otherwise the shorter ring direction under the dateline
// discipline.
func (a *SpidergonRouting) Route(cur, dst, vc int) Decision {
	n := a.sg.Nodes()
	ringD := a.sg.RingDistance(cur, dst)
	// Strict inequality: at exactly N/4 the ring path ties the across
	// path, and the paper's rule ("distance D > N/4") keeps the ring.
	if 4*ringD > n {
		return Decision{Dir: topology.DirAcross, VC: 0}
	}
	cw := ringCW(n, cur, dst)
	dir := topology.DirClockwise
	if ccw := n - cw; ccw < cw {
		dir = topology.DirCounterClockwise
	}
	return Decision{Dir: dir, VC: ringVC(n, cur, dir, vc)}
}

func ringCW(n, from, to int) int { return ((to-from)%n + n) % n }

// MeshXY is dimension-order routing for the mesh family: "flits from
// the source node migrate along the X (horizontal link) nodes up to the
// column of the target, then along the Y (vertical link) nodes up to
// the target node." XY is deadlock-free with a single buffer per
// channel because it never turns from Y back to X.
//
// On an irregular mesh (partial last row) pure XY can be impossible:
// a packet in the partial row may need a column that does not exist in
// that row. MeshXY then escapes north first (always minimal, since the
// partial row is the bottom row) and resumes XY. The escape introduces
// north→X turns only out of row rows-2, which cannot close a dependency
// cycle; TestMeshXYDeadlockFreeIrregular proves this exhaustively via
// the dependency-graph checker.
type MeshXY struct {
	mesh *topology.Mesh
}

// NewMeshXY returns dimension-order routing for m.
func NewMeshXY(m *topology.Mesh) *MeshXY { return &MeshXY{mesh: m} }

// Name returns "xy".
func (a *MeshXY) Name() string { return "xy" }

// VCs returns 1: the paper's single output buffer per mesh link.
func (a *MeshXY) VCs() int { return 1 }

// Route performs one XY step with the irregular-mesh north escape.
func (a *MeshXY) Route(cur, dst, vc int) Decision {
	m := a.mesh
	x, y := m.Coord(cur)
	dx, dy := m.Coord(dst)
	if m.Irregular() && y == m.Rows()-1 && dy != y {
		// Leaving the partial bottom row: go north before X so the X
		// traversal happens in a full row. (dy < y always holds here.)
		return Decision{Dir: topology.DirNorth, VC: 0}
	}
	switch {
	case x < dx:
		return Decision{Dir: topology.DirEast, VC: 0}
	case x > dx:
		return Decision{Dir: topology.DirWest, VC: 0}
	case y < dy:
		return Decision{Dir: topology.DirSouth, VC: 0}
	default:
		return Decision{Dir: topology.DirNorth, VC: 0}
	}
}

// MeshYX is the YX-order twin of MeshXY, used by the design-space
// experiments to quantify the (absence of) sensitivity to dimension
// order. It does not support irregular meshes.
type MeshYX struct {
	mesh *topology.Mesh
}

// NewMeshYX returns YX dimension-order routing for a full mesh m; it
// returns an error for irregular meshes, where the south-escape dual of
// the XY fix does not exist (the missing nodes are in the bottom row).
func NewMeshYX(m *topology.Mesh) (*MeshYX, error) {
	if m.Irregular() {
		return nil, fmt.Errorf("routing: yx routing unsupported on irregular mesh %s", m.Name())
	}
	return &MeshYX{mesh: m}, nil
}

// Name returns "yx".
func (a *MeshYX) Name() string { return "yx" }

// VCs returns 1.
func (a *MeshYX) VCs() int { return 1 }

// Route performs one YX step: vertical first, then horizontal.
func (a *MeshYX) Route(cur, dst, vc int) Decision {
	m := a.mesh
	x, y := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch {
	case y < dy:
		return Decision{Dir: topology.DirSouth, VC: 0}
	case y > dy:
		return Decision{Dir: topology.DirNorth, VC: 0}
	case x < dx:
		return Decision{Dir: topology.DirEast, VC: 0}
	default:
		return Decision{Dir: topology.DirWest, VC: 0}
	}
}

// TorusDOR is dimension-order routing on the 2D torus extension:
// X first with wraparound along the shorter way, then Y. Each dimension
// behaves as a ring and needs the dateline discipline; because Route is
// stateless and only sees the fed-back VC, the X and Y datelines use
// disjoint VC classes — X hops occupy VCs {0,1}, Y hops {2,3} — so a
// VC 1 inherited from an X wraparound can never masquerade as a crossed
// Y dateline.
type TorusDOR struct {
	torus *topology.Torus
}

// NewTorusDOR returns dimension-order routing for t.
func NewTorusDOR(t *topology.Torus) *TorusDOR { return &TorusDOR{torus: t} }

// Name returns "torus-dor".
func (a *TorusDOR) Name() string { return "torus-dor" }

// VCs returns 4: a dateline pair per dimension.
func (a *TorusDOR) VCs() int { return 4 }

// Route performs one dimension-order step. Wrapping hops move to the
// high VC of their dimension's pair; the first Y hop (recognisable by a
// fed-back VC below 2) restarts on the Y pair's low VC.
func (a *TorusDOR) Route(cur, dst, vc int) Decision {
	t := a.torus
	cols, rows := t.Cols(), t.Rows()
	x, y := t.Coord(cur)
	dx, dy := t.Coord(dst)
	if x != dx {
		fwd := ((dx-x)%cols + cols) % cols // eastward distance
		dir := topology.DirEast
		wrap := x == cols-1
		if back := cols - fwd; back < fwd {
			dir = topology.DirWest
			wrap = x == 0
		}
		next := vc
		if wrap {
			next = 1
		}
		return Decision{Dir: dir, VC: next}
	}
	fwd := ((dy-y)%rows + rows) % rows // southward distance
	dir := topology.DirSouth
	wrap := y == rows-1
	if back := rows - fwd; back < fwd {
		dir = topology.DirNorth
		wrap = y == 0
	}
	next := vc
	if next < 2 {
		next = 2 // entering the Y dimension
	}
	if wrap {
		next = 3
	}
	return Decision{Dir: dir, VC: next}
}
