// Package prof arms the optional -cpuprofile/-memprofile outputs of
// the command-line tools, so hot-path work in any simulation run is
// measurable with go tool pprof without editing code. When a heap
// profile is requested the package also prints an end-of-run allocation
// summary to stderr — total heap objects and bytes allocated across the
// run — giving an at-a-glance read on the zero-allocation hot path
// without opening the profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// cpuActive tracks whether a Start-initiated CPU profile is currently
// running. Hot paths that would attach pprof goroutine labels (the
// parallel engine's phase attribution) consult it so that an unprofiled
// run pays a single atomic load instead of label bookkeeping.
var cpuActive atomic.Bool

// CPUProfileActive reports whether a CPU profile started by Start is
// still running (its stop function has not been called yet). Label
// producers sample it at setup time, so a profile must be armed before
// the instrumented subsystem starts — which is how the CLIs order it.
func CPUProfileActive() bool { return cpuActive.Load() }

// Start begins the requested profiles (empty paths disable each). The
// returned stop function ends the CPU profile, writes the heap profile,
// and prints the allocation summary; call it once, before a normal
// exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
		cpuActive.Store(true)
	}
	var before runtime.MemStats
	if memPath != "" {
		runtime.ReadMemStats(&before)
	}
	return func() error {
		if cpuFile != nil {
			cpuActive.Store(false)
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			fmt.Fprintf(os.Stderr, "# alloc: %d heap objects, %s allocated, %d GC cycles (run total; see %s for the live profile)\n",
				after.Mallocs-before.Mallocs,
				fmtBytes(after.TotalAlloc-before.TotalAlloc),
				after.NumGC-before.NumGC, memPath)
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// fmtBytes renders a byte count with a binary unit prefix.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
