// Package prof arms the optional -cpuprofile/-memprofile outputs of
// the command-line tools, so hot-path work in any simulation run is
// measurable with go tool pprof without editing code.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles (empty paths disable each). The
// returned stop function ends the CPU profile and writes the heap
// profile; call it once, before a normal exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
