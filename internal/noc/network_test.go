package noc

import (
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// newRingNet builds a small ring network with paper-default config.
func newRingNet(t *testing.T, n int) *Network {
	t.Helper()
	r := topology.MustRing(n)
	net, err := NewNetwork(r, routing.NewRingRouting(r), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newSpidergonNet(t *testing.T, n int, cfg Config) *Network {
	t.Helper()
	s := topology.MustSpidergon(n)
	net, err := NewNetwork(s, routing.NewSpidergonRouting(s), cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newMeshNet(t *testing.T, c, r int, cfg Config) *Network {
	t.Helper()
	m := topology.MustMesh(c, r)
	net, err := NewNetwork(m, routing.NewMeshXY(m), cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{PacketLen: 0, OutBufCap: 3, InBufCap: 1, SinkRate: 1, InjectRate: 1},
		{PacketLen: 6, OutBufCap: 0, InBufCap: 1, SinkRate: 1, InjectRate: 1},
		{PacketLen: 6, OutBufCap: 3, InBufCap: 0, SinkRate: 1, InjectRate: 1},
		{PacketLen: 6, OutBufCap: 3, InBufCap: 1, SinkRate: 0, InjectRate: 1},
		{PacketLen: 6, OutBufCap: 3, InBufCap: 1, SinkRate: 1, InjectRate: 0},
		{PacketLen: 6, OutBufCap: 3, InBufCap: 1, SinkRate: 1, InjectRate: 1, SourceQueueCap: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.PacketLen != 6 {
		t.Error("paper uses 6-flit packets")
	}
	if c.OutBufCap != 3 {
		t.Error("paper uses 3-flit output buffers")
	}
	if c.InBufCap != 1 {
		t.Error("paper uses 1-flit input buffers")
	}
}

func TestFlitRoles(t *testing.T) {
	p := &Packet{Len: 3}
	head := &Flit{Pkt: p, Seq: 0}
	body := &Flit{Pkt: p, Seq: 1}
	tail := &Flit{Pkt: p, Seq: 2}
	if !head.IsHead() || head.IsTail() {
		t.Error("head flit roles")
	}
	if body.IsHead() || body.IsTail() {
		t.Error("body flit roles")
	}
	if tail.IsHead() || !tail.IsTail() {
		t.Error("tail flit roles")
	}
	single := &Flit{Pkt: &Packet{Len: 1}, Seq: 0}
	if !single.IsHead() || !single.IsTail() {
		t.Error("single-flit packet roles")
	}
	if head.String() == "" || tail.String() == "" || p.String() == "" {
		t.Error("string rendering empty")
	}
}

func TestInjectValidation(t *testing.T) {
	net := newRingNet(t, 8)
	if err := net.Inject(0, 0); err == nil {
		t.Error("self-injection accepted")
	}
	if err := net.Inject(-1, 3); err == nil {
		t.Error("negative source accepted")
	}
	if err := net.Inject(0, 8); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := net.Inject(0, 3); err != nil {
		t.Errorf("valid injection refused: %v", err)
	}
}

func TestSourceQueueBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SourceQueueCap = 2
	r := topology.MustRing(8)
	net, err := NewNetwork(r, routing.NewRingRouting(r), cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, 3); err != ErrSourceQueueFull {
		t.Fatalf("third inject: %v, want ErrSourceQueueFull", err)
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	net := newRingNet(t, 8)
	if err := net.Inject(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.Drain(200); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != 1 {
		t.Fatalf("ejected = %d", net.EjectedPackets())
	}
	col := net.Collector()
	if col.PacketsEjected() != 1 {
		t.Fatal("collector missed the packet")
	}
	if col.MeanHops() != 3 {
		t.Fatalf("hops = %v, want 3", col.MeanHops())
	}
}

// Latency lower bound: a lone packet's latency is
// injection wait (1: head leaves NI in cycle of creation) +
// hops link traversals + per-hop switch stages + serialization of the
// remaining flits at the sink. Just assert the exact value once to pin
// the pipeline timing, then assert the analytic lower bound holds
// elsewhere.
func TestLonePacketLatencyPinned(t *testing.T) {
	net := newRingNet(t, 8)
	if err := net.Inject(0, 1); err != nil { // 1 hop
		t.Fatal(err)
	}
	if err := net.Drain(100); err != nil {
		t.Fatal(err)
	}
	lat := net.Collector().MeanLatency()
	// Cycle 0: head injected into outVC. Cycle 1: head crosses link.
	// Cycle 2: head ejected; flit k ejected at cycle 2+k; tail (k=5)
	// at cycle 7. Latency = 7 - 0 = 7.
	if lat != 7 {
		t.Fatalf("lone packet latency = %v, want 7", lat)
	}
}

func TestLatencyLowerBound(t *testing.T) {
	// For any single packet: latency >= hops + packetLen (pipeline depth
	// + serialization).
	for _, hops := range []int{1, 2, 3, 4} {
		net := newRingNet(t, 10)
		if err := net.Inject(0, hops); err != nil {
			t.Fatal(err)
		}
		if err := net.Drain(300); err != nil {
			t.Fatal(err)
		}
		lat := net.Collector().MeanLatency()
		if lat < float64(hops+6) {
			t.Fatalf("hops=%d latency %v below bound %d", hops, lat, hops+6)
		}
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	// Two packets from different sources to the same next-hop channel:
	// their flits must not interleave within an output queue. We can't
	// observe queues directly, but interleaving would corrupt switching
	// state and panic or mis-deliver; drive the scenario hard and check
	// conservation and delivery.
	net := newSpidergonNet(t, 8, DefaultConfig())
	for i := 0; i < 20; i++ {
		if err := net.Inject(1, 3); err != nil {
			t.Fatal(err)
		}
		if err := net.Inject(0, 3); err != nil {
			t.Fatal(err)
		}
		net.Step()
	}
	if err := net.Drain(5000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != 40 {
		t.Fatalf("ejected %d of 40", net.EjectedPackets())
	}
}

func TestHopsMatchRoutingDistance(t *testing.T) {
	s := topology.MustSpidergon(12)
	alg := routing.NewSpidergonRouting(s)
	for src := 0; src < 12; src++ {
		for dst := 0; dst < 12; dst++ {
			if src == dst {
				continue
			}
			net, err := NewNetwork(s, alg, DefaultConfig(), stats.NewCollector(0))
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Inject(src, dst); err != nil {
				t.Fatal(err)
			}
			if err := net.Drain(500); err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			want := float64(s.Distance(src, dst))
			if got := net.Collector().MeanHops(); got != want {
				t.Fatalf("%d->%d hops = %v, want %v", src, dst, got, want)
			}
		}
	}
}

func TestConservationUnderLoad(t *testing.T) {
	net := newMeshNet(t, 4, 4, DefaultConfig())
	rng := newTestRNG(42)
	for cycle := 0; cycle < 500; cycle++ {
		for node := 0; node < 16; node++ {
			if rng.next()%10 == 0 { // ~0.1 packets/node/cycle: saturating
				dst := int(rng.next() % 16)
				if dst != node {
					if err := net.Inject(node, dst); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		net.Step()
		if cycle%100 == 0 {
			if err := net.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := net.Drain(20000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != net.CreatedPackets() {
		t.Fatalf("created %d != ejected %d", net.CreatedPackets(), net.EjectedPackets())
	}
}

// testRNG is a tiny deterministic generator private to the tests (the
// real simulations use internal/sim's RNG; this avoids the dependency).
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }
func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func TestNoDeadlockRingSaturated(t *testing.T) {
	testNoDeadlock(t, func() *Network { return newRingNet(t, 8) }, 8)
}

func TestNoDeadlockSpidergonSaturated(t *testing.T) {
	testNoDeadlock(t, func() *Network { return newSpidergonNet(t, 12, DefaultConfig()) }, 12)
}

func TestNoDeadlockMeshSaturated(t *testing.T) {
	testNoDeadlock(t, func() *Network { return newMeshNet(t, 4, 3, DefaultConfig()) }, 12)
}

// testNoDeadlock floods every node with uniform random traffic far past
// saturation and asserts the network keeps making progress and fully
// drains afterwards — the runtime counterpart of the CDG proof.
func testNoDeadlock(t *testing.T, mk func() *Network, n int) {
	t.Helper()
	net := mk()
	rng := newTestRNG(7)
	for cycle := 0; cycle < 2000; cycle++ {
		for node := 0; node < n; node++ {
			if rng.next()%4 == 0 { // 0.25 packets/cycle/node: far beyond capacity
				dst := int(rng.next() % uint64(n))
				if dst != node {
					_ = net.Inject(node, dst)
				}
			}
		}
		net.Step()
		if net.IdleCycles() > 100 && net.InFlightFlits() > 0 {
			t.Fatalf("no flit movement for %d cycles with %d flits in flight: deadlock",
				net.IdleCycles(), net.InFlightFlits())
		}
	}
	if err := net.Drain(200000); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotSaturatesAtSinkRate(t *testing.T) {
	// Figure 6's central claim: with one hot-spot destination the
	// absorbed throughput caps at the sink consumption rate (1
	// flit/cycle), regardless of topology.
	for _, mk := range []func() *Network{
		func() *Network { return newRingNet(t, 8) },
		func() *Network { return newSpidergonNet(t, 8, DefaultConfig()) },
		func() *Network { return newMeshNet(t, 2, 4, DefaultConfig()) },
	} {
		net := mk()
		rng := newTestRNG(99)
		const hotspot = 3
		cfg := net.Config()
		_ = cfg
		for cycle := 0; cycle < 4000; cycle++ {
			for node := 0; node < 8; node++ {
				if node == hotspot {
					continue
				}
				if rng.next()%12 == 0 { // heavy offered load
					_ = net.Inject(node, hotspot)
				}
			}
			net.Step()
		}
		tput := net.Collector().Throughput()
		if tput > 1.0001 {
			t.Fatalf("%s: hotspot throughput %v exceeds sink rate", net.Topology().Name(), tput)
		}
		if tput < 0.9 {
			t.Fatalf("%s: hotspot throughput %v far below saturation", net.Topology().Name(), tput)
		}
	}
}

func TestSinkRateTwoDoublesHotspotCeiling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SinkRate = 2
	net := newSpidergonNet(t, 8, cfg)
	rng := newTestRNG(5)
	const hotspot = 0
	for cycle := 0; cycle < 4000; cycle++ {
		for node := 1; node < 8; node++ {
			if rng.next()%6 == 0 {
				_ = net.Inject(node, hotspot)
			}
		}
		net.Step()
	}
	tput := net.Collector().Throughput()
	if tput < 1.2 {
		t.Fatalf("throughput %v did not exceed single-port ceiling with SinkRate=2", tput)
	}
	if tput > 2.0001 {
		t.Fatalf("throughput %v exceeds doubled sink rate", tput)
	}
}

func TestInjectionRateLimited(t *testing.T) {
	// One source, far destination, unlimited appetite: accepted rate
	// can't exceed InjectRate=1 flit/cycle. AcceptedRate books a whole
	// packet at head injection, so allow one packet of slack over the
	// window.
	net := newRingNet(t, 8)
	for i := 0; i < 400; i++ {
		_ = net.Inject(0, 4)
	}
	const cycles = 2000
	net.StepN(cycles)
	limit := 1.0 + float64(net.Config().PacketLen)/cycles
	if acc := net.Collector().AcceptedRate(); acc > limit {
		t.Fatalf("accepted rate %v exceeds injection port bandwidth", acc)
	}
}

func TestBackpressureBlocksSource(t *testing.T) {
	// Saturate one path; the collector must record source-blocked
	// cycles.
	net := newRingNet(t, 8)
	for i := 0; i < 50; i++ {
		_ = net.Inject(0, 4)
		_ = net.Inject(1, 4) // shares the clockwise path, contends
	}
	net.StepN(300)
	if net.Collector().SourceBlockedCycles() == 0 {
		t.Fatal("no source-blocked cycles under contention")
	}
	if err := net.Drain(20000); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		net := newSpidergonNet(t, 12, DefaultConfig())
		rng := newTestRNG(123)
		for cycle := 0; cycle < 800; cycle++ {
			for node := 0; node < 12; node++ {
				if rng.next()%9 == 0 {
					dst := int(rng.next() % 12)
					if dst != node {
						_ = net.Inject(node, dst)
					}
				}
			}
			net.Step()
		}
		return net.EjectedPackets(), net.Collector().MeanLatency()
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, l1, e2, l2)
	}
}

func TestPacketLenOneWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketLen = 1
	net := newSpidergonNet(t, 8, cfg)
	for i := 0; i < 30; i++ {
		_ = net.Inject(0, 5)
		_ = net.Inject(2, 6)
	}
	if err := net.Drain(5000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != 60 {
		t.Fatalf("ejected %d of 60 single-flit packets", net.EjectedPackets())
	}
}

func TestQueuedAndInFlightAccounting(t *testing.T) {
	net := newRingNet(t, 8)
	for i := 0; i < 5; i++ {
		_ = net.Inject(0, 4)
	}
	if net.QueuedPackets() != 5 {
		t.Fatalf("queued = %d", net.QueuedPackets())
	}
	if net.InFlightFlits() != 0 {
		t.Fatal("flits in flight before any step")
	}
	net.Step()
	if net.InFlightFlits() == 0 {
		t.Fatal("no flit entered the network after a step")
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestMeshXYNetworkAllPairs(t *testing.T) {
	// Deliver one packet between every pair on a 4x6 mesh (the paper's
	// 24-node mesh) and verify hop counts equal Manhattan distances.
	m := topology.MustMesh(4, 6)
	alg := routing.NewMeshXY(m)
	net, err := NewNetwork(m, alg, DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for src := 0; src < 24; src++ {
		for dst := 0; dst < 24; dst++ {
			if src == dst {
				continue
			}
			_ = net.Inject(src, dst)
			want++
		}
	}
	if err := net.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	if int(net.EjectedPackets()) != want {
		t.Fatalf("delivered %d of %d", net.EjectedPackets(), want)
	}
	gotMean := net.Collector().MeanHops()
	wantMean := topology.AverageDistance(m)
	if diff := gotMean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean hops %v != E[D] %v", gotMean, wantMean)
	}
}

func TestIrregularMeshNetworkDelivers(t *testing.T) {
	m := topology.MustIrregularMesh(13)
	net, err := NewNetwork(m, routing.NewMeshXY(m), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 13; src++ {
		for dst := 0; dst < 13; dst++ {
			if src != dst {
				_ = net.Inject(src, dst)
			}
		}
	}
	if err := net.Drain(500000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != 13*12 {
		t.Fatalf("delivered %d of %d", net.EjectedPackets(), 13*12)
	}
}

func TestNilCollectorRejected(t *testing.T) {
	r := topology.MustRing(8)
	if _, err := NewNetwork(r, routing.NewRingRouting(r), DefaultConfig(), nil); err == nil {
		t.Fatal("nil collector accepted")
	}
}

func TestAccessors(t *testing.T) {
	net := newRingNet(t, 8)
	if net.Topology().Nodes() != 8 {
		t.Error("topology accessor")
	}
	if net.Algorithm().Name() != "ring-shortest" {
		t.Error("algorithm accessor")
	}
	if net.Config().PacketLen != 6 {
		t.Error("config accessor")
	}
	if net.Cycle() != 0 {
		t.Error("initial cycle")
	}
	net.StepN(5)
	if net.Cycle() != 5 {
		t.Error("cycle after StepN")
	}
}
