package noc

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// This file is the domain-decomposed parallel engine behind
// Network.Step: EngineParallel splits the routers into a fixed set of
// contiguous shards and executes each pipeline phase shard-parallel
// with a barrier between phases, producing results bit-identical to
// EngineActive (and hence EngineSweep) at every shard count.
//
// The decomposition exploits the phase structure of the cycle: the
// ejection, switch-traversal and injection phases only ever touch the
// state of one router/NI (input slots, own output queues, own source
// queue), so shards can run them concurrently with no coordination at
// all; only the link phase crosses routers (upstream output queue →
// downstream input slot). Determinism follows the same discipline the
// activity-driven engine established for arbitration:
//
//   - Shard assignment is a pure function of router index and shard
//     count — contiguous ranges [s·N/K, (s+1)·N/K) — never of goroutine
//     scheduling. Concatenating the shards in index order reproduces
//     the serial engines' ascending-node iteration order exactly.
//   - Each shard drains its own bitmap worklists (a private worklists
//     value, so no two shards share a bitmap word) in ascending node
//     order, with the same cycle-derived round-robin pointers.
//   - Cross-shard effects are buffered per shard and applied in
//     canonical router-index order at a barrier: link traversals into
//     another shard's router defer the input-slot push and its mask
//     bookkeeping; ejection completions (statistics, the OnEject
//     callback — which may inject new packets into any shard — and the
//     arena recycle) defer to the barrier after the ejection phase;
//     injection statistics defer to the end of the cycle. Within each
//     buffer, records are appended in ascending node order, so the
//     shard-order replay is exactly the serial engine's order.
//
// The packet arena needs no sharding: every lease and recycle — the
// lease inside InjectPacket (generator events run between cycles;
// OnEject replies run in the ejection replay) and the recycle at tail
// ejection (also in the replay) — already happens in the serial
// sections at the barriers, so arena growth and the free stack are
// only ever touched single-threaded and the conservation accounting
// holds verbatim. The per-record fields shards do write concurrently —
// recv during ejection (each packet's flits eject at its unique
// destination shard), injected during injection (each packet injects at
// its unique source shard), hops and the per-flit lastMove stamps
// during link traversal (each flit lives in exactly one queue) — are
// distinct word-sized array elements, and the barriers' atomics order
// them, so the engine stays race-clean. The deferred record buffers
// keep their backing arrays across cycles and runs, so the parallel
// engine adds no steady-state allocations of its own.
//
// Execution uses one worker goroutine per shard beyond the first (the
// caller's goroutine runs shard 0). Workers park on a channel between
// cycles — an idle or reset network burns no CPU — and synchronize
// through two atomics within a cycle: seq releases the next span,
// pending counts shards still in the current one. Both are
// acquire/release pairs, so all cross-shard memory movement is ordered
// (and the engine is clean under the race detector). The spin loops
// yield to the scheduler after a short budget, which keeps the engine
// live (if slow) even at GOMAXPROCS=1.

// parShard is one domain of the decomposition: a contiguous router
// range, its private phase worklists, per-cycle scratch counters, and
// the deferred-effect buffers replayed at the barriers.
type parShard struct {
	idx    int // shard index (== position in Network.shards)
	lo, hi int // owned router range [lo, hi)
	wl     worklists

	visits uint64 // worklist visits this cycle, merged at cycle end
	moved  bool   // any flit progress this cycle, merged at cycle end

	// ej holds this cycle's fully ejected packets (arena indices) in
	// pop order; the barrier after the ejection phase replays them
	// (statistics, OnEject, arena recycle) in shard order == ascending
	// node order.
	ej []int32
	// stats holds this cycle's injection-phase collector events in
	// visit order, replayed at cycle end.
	stats []statRecord
	// xpush holds this cycle's link traversals into other shards'
	// routers, applied at cycle end in shard order.
	xpush []pushRecord

	// pad keeps neighbouring shards' hot scratch fields off one cache
	// line (the structs live in one slice).
	_ [64]byte
}

// statRecord is one deferred injection-phase collector event: a packet
// acceptance (injected, with its flit count) or a source-blocked cycle.
type statRecord struct {
	injected bool
	flits    int
}

// pushRecord is one deferred cross-shard link traversal: flit handle h
// arrives in input port p, virtual channel vc, of router node.
type pushRecord struct {
	node int
	p    *inPort
	vc   int
	h    flitH
}

// parRun is the worker group of a running parallel network: one parked
// goroutine per shard beyond shard 0, released once per cycle through
// its start channel and paced through the cycle's spans by seq/pending.
type parRun struct {
	start   []chan struct{} // one per worker (shards[1:]), buffered 1
	seq     atomic.Uint64   // span sequence; incremented to release a span
	pending atomic.Int64    // shards still inside the current span
	spin    int             // busy-spin budget before yielding
}

// defaultShards picks the shard count when none was configured: the
// machine's parallelism, bounded by the network size. Results are
// bit-identical at every count, so the default only affects speed.
func defaultShards(nodes int) int {
	k := runtime.GOMAXPROCS(0)
	if k > nodes {
		k = nodes
	}
	if k < 1 {
		k = 1
	}
	return k
}

// SetShards configures the domain width of EngineParallel: k contiguous
// router shards (clamped to [1, nodes]). Calling it while the parallel
// engine is active rebuilds the decomposition in place — mid-run is
// fine, results do not depend on the shard count; otherwise the value
// is stored for the next SetEngine(EngineParallel).
func (n *Network) SetShards(k int) {
	nodes := n.topo.Nodes()
	if k < 1 {
		k = 1
	}
	if k > nodes {
		k = nodes
	}
	if k == n.shardCount {
		return
	}
	n.shardCount = k
	if n.engine == EngineParallel {
		n.StopWorkers()
		n.buildShards()
		n.rebuildParallelSets()
	}
}

// Shards returns the configured shard count (0 when never configured).
func (n *Network) Shards() int { return n.shardCount }

// buildShards (re)allocates the shard array for the configured count,
// with ranges [s·N/K, (s+1)·N/K) and the inverse lookup table. An
// already-built decomposition of the same width is kept — its worklist
// bitmaps and deferred-buffer capacity stay warm across workspace
// reuse (the caller re-derives the worklist contents either way).
func (n *Network) buildShards() {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if len(n.shards) == k && len(n.shardOf) == nodes {
		return
	}
	n.shards = make([]parShard, k)
	if cap(n.shardOf) < nodes {
		n.shardOf = make([]int32, nodes)
	}
	n.shardOf = n.shardOf[:nodes]
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.idx = s
		sh.lo, sh.hi = s*nodes/k, (s+1)*nodes/k
		sh.wl = newWorklists(nodes)
		for v := sh.lo; v < sh.hi; v++ {
			n.shardOf[v] = int32(s)
		}
	}
}

// rebuildParallelSets recomputes the slot masks and distributes every
// node's worklist membership to its owning shard — the parallel
// counterpart of rebuildActiveSets, run on engine entry and whenever
// the decomposition changes.
func (n *Network) rebuildParallelSets() {
	for i := range n.shards {
		n.shards[i].wl.clear()
	}
	n.rebuildWorklists(func(node int) *worklists { return &n.shards[n.shardOf[node]].wl })
}

// resetShards clears the per-shard worklists and scratch during
// Network.Reset, keeping the shard geometry and the deferred buffers'
// backing arrays, and parks the worker group (a reset network may next
// run under a different engine, or not at all).
func (n *Network) resetShards() {
	n.StopWorkers()
	for i := range n.shards {
		s := &n.shards[i]
		s.wl.clear()
		s.visits, s.moved = 0, false
		s.clearScratch()
	}
}

// clearScratch empties the deferred buffers, keeping capacity (the
// records are plain integers and port pointers into long-lived router
// structures, so no references need dropping).
func (s *parShard) clearScratch() {
	s.ej = s.ej[:0]
	s.stats = s.stats[:0]
	s.xpush = s.xpush[:0]
}

// startWorkers launches the worker group: one goroutine per shard
// beyond shard 0. Workers are lazy — the first parallel Step starts
// them — and park between cycles, so they cost nothing while the
// network idles between runs.
func (n *Network) startWorkers() {
	k := len(n.shards)
	pr := &parRun{start: make([]chan struct{}, k-1)}
	if runtime.GOMAXPROCS(0) > 1 {
		// With real parallelism a span ends within microseconds; spin
		// briefly before yielding. On a single P spinning only delays
		// the goroutine that would end the wait.
		pr.spin = 4096
	}
	for i := range pr.start {
		pr.start[i] = make(chan struct{}, 1)
	}
	for i := 1; i < k; i++ {
		go n.shardWorker(i, pr)
	}
	n.pr = pr
}

// StopWorkers terminates the parallel engine's worker goroutines (a
// no-op when none are running). It is called automatically by Reset,
// SetShards and any engine switch; call it directly when discarding a
// network that stepped under EngineParallel, so no parked goroutine
// pins the network in memory. The network remains fully usable — the
// next parallel Step restarts the group.
func (n *Network) StopWorkers() {
	if n.pr == nil {
		return
	}
	for _, c := range n.pr.start {
		close(c)
	}
	n.pr = nil
}

// shardWorker is the per-shard goroutine: released once per cycle, it
// runs the three spans of its shard, announcing each completion on
// pending and waiting on seq for the next span's release.
func (n *Network) shardWorker(i int, pr *parRun) {
	s := &n.shards[i]
	for range pr.start[i-1] {
		seq := pr.seq.Load()
		n.parEject(s)
		pr.pending.Add(-1)
		seq = pr.waitSeq(seq)
		n.parSwitchInject(s)
		pr.pending.Add(-1)
		pr.waitSeq(seq)
		n.parLink(s)
		pr.pending.Add(-1)
	}
}

// waitSeq spins until the span sequence moves past last, yielding to
// the scheduler once the spin budget is spent.
func (pr *parRun) waitSeq(last uint64) uint64 {
	for i := 0; ; i++ {
		if v := pr.seq.Load(); v != last {
			return v
		}
		if i >= pr.spin {
			runtime.Gosched()
		}
	}
}

// awaitShards blocks until every shard finished the current span.
func (n *Network) awaitShards() {
	pr := n.pr
	for i := 0; pr.pending.Load() != 0; i++ {
		if i >= pr.spin {
			runtime.Gosched()
		}
	}
}

// releaseSpan opens the next span for the workers: pending is re-armed
// first, then the seq bump publishes it (workers load seq with acquire
// semantics, so they observe the reset counter and every serial-section
// write that preceded the bump — including arena growth from leases in
// the serial sections).
func (n *Network) releaseSpan() {
	pr := n.pr
	pr.pending.Store(int64(len(n.shards) - 1))
	pr.seq.Add(1)
}

// stepParallel advances one cycle under the domain decomposition:
//
//	span A   (parallel) ejection phase, completions deferred
//	barrier  (serial)   ejection replay: stats → OnEject → recycle
//	span B   (parallel) switch traversal + injection, stats deferred
//	barrier
//	span C   (parallel) link traversal, cross-shard arrivals deferred
//	barrier  (serial)   cross-shard applies, stats replay, cycle close
//
// The spans need no finer interleaving control: phases A and B touch
// only shard-local state, and C's only cross-shard reads (downstream
// input-slot occupancy) are stable for the whole span because each
// input port has exactly one upstream writer and all pops happened in
// earlier phases.
func (n *Network) stepParallel() {
	n.moved = false
	if len(n.shards) == 1 {
		// Degenerate single-shard decomposition: same machinery minus
		// the workers — still exercises the deferred-replay paths.
		s := &n.shards[0]
		n.parEject(s)
		n.replayEjections()
		n.parSwitchInject(s)
		n.parLink(s)
		n.finishParallelCycle()
		return
	}
	if n.pr == nil {
		n.startWorkers()
	}
	pr := n.pr
	n.releaseSpan()
	for _, c := range pr.start {
		c <- struct{}{}
	}
	n.parEject(&n.shards[0])
	n.awaitShards()
	n.replayEjections()
	n.releaseSpan()
	n.parSwitchInject(&n.shards[0])
	n.awaitShards()
	n.releaseSpan()
	n.parLink(&n.shards[0])
	n.awaitShards()
	n.finishParallelCycle()
}

// parEject mirrors activeEject over one shard's ejection worklist,
// deferring every tail-ejection completion: the pops, mask updates and
// per-packet receive accounting are shard-local (a packet's flits all
// eject at its unique destination), while statistics, the OnEject
// callback and the arena recycle run in the serial replay.
func (n *Network) parEject(s *parShard) {
	vcs := n.alg.VCs()
	a := &n.arena
	tail := a.pktLen - 1
	s.wl.ej.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			return
		}
		slots := np * vcs
		rrEj := int(n.modTab[slots])
		for k := 0; k < slots && budget > 0; k++ {
			sl := rrEj + k
			if sl >= slots {
				sl -= slots
			}
			p := r.in[sl/vcs]
			vc := sl % vcs
			if !r.ejOcc.test(p.slotBase + vc) {
				continue
			}
			for budget > 0 && !p.empty(vc) && a.dst[p.head(vc).pkt()] == int32(r.node) {
				h := n.inPop(&s.wl, node, r, p, vc)
				pi := h.pkt()
				n.telEj[node]++
				budget--
				s.moved = true
				a.recv[pi]++
				if h.seq() == tail {
					s.ej = append(s.ej, pi)
				}
			}
		}
	})
}

// replayEjections applies the deferred ejection completions in shard
// order — which, shards being contiguous and each buffer append-ordered
// by the ascending-node walk, is exactly the serial engines' ejection
// order. Statistics, the OnEject callback (whose reply injections may
// lease from the arena and land in any shard's source worklist) and the
// recycle therefore interleave precisely as in EngineActive.
func (n *Network) replayEjections() {
	a := &n.arena
	for i := range n.shards {
		s := &n.shards[i]
		for _, pi := range s.ej {
			n.ejected++
			n.col.PacketEjected(n.cycle, a.created[pi], a.injected[pi], a.pktLen, int(a.hops[pi]))
			if n.onEject != nil {
				n.materializePacket(&n.ejView, pi)
				n.onEject(&n.ejView)
			}
			n.recyclePacket(pi)
		}
		s.ej = s.ej[:0]
	}
}

// parSwitchInject runs the switch-traversal and injection phases over
// one shard. Fusing them into one span is sound because both phases
// read and write only the state of the visited router and its NI — the
// serial engines' global phase boundary orders nothing that two
// different routers could observe.
func (n *Network) parSwitchInject(s *parShard) {
	vcs := n.alg.VCs()
	s.wl.sw.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		np := len(r.in)
		rrIn := int(n.modTab[np])
		for k := 0; k < np; k++ {
			p := r.in[(rrIn+k)%np]
			occ := r.inOcc.port(p.slotBase, vcs) &^ r.ejOcc.port(p.slotBase, vcs)
			if occ == 0 {
				continue
			}
			if n.switchPort(&s.wl, r, p, occ, vcs) {
				s.moved = true
			}
		}
	})
	n.parInject(s)
}

// parInject mirrors activeInject over one shard's sources, deferring
// the collector events (packet acceptances, source-blocked cycles) to
// the end-of-cycle replay; everything else — source queue, worm state,
// the output-queue pushes, the packet's injection stamp (its source is
// unique to this shard) — is local to the shard.
func (n *Network) parInject(s *parShard) {
	a := &n.arena
	s.wl.ni.forEach(func(node int) {
		q := n.nis[node]
		r := n.routers[node]
		s.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending < 0 {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pi := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pi, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %s",
						n.alg.Name(), d.Dir, node, n.pktString(pi)))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc) {
					ovc.owner = pi
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					s.stats = append(s.stats, statRecord{})
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				s.stats = append(s.stats, statRecord{})
				break
			}
			h := mkFlit(pi, q.nextSeq, q.route.vc)
			a.lastMove[a.flitIndex(h)] = n.cycle + 1
			n.outPush(&s.wl, node, r, q.route.port, q.route.vc, h)
			n.telInj[node]++
			s.moved = true
			q.nextSeq++
			budget--
			if h.seq() == 0 {
				a.injected[pi] = n.cycle
				s.stats = append(s.stats, statRecord{injected: true, flits: a.pktLen})
			}
			if h.seq() == a.pktLen-1 {
				ovc.owner = -1
				q.sending = -1
				q.route = routeEntry{}
			}
		}
		if q.sending < 0 && q.queue.len() == 0 {
			s.wl.ni.remove(node)
		}
	})
}

// parLink mirrors activeLink over one shard's link worklist. Arrivals
// into a router of the same shard are applied directly (the serial
// order within a shard is the serial engines' order); arrivals into
// another shard are deferred to the end-of-cycle replay, which applies
// them in canonical router-index order. Both paths are
// decision-equivalent to the serial engines: an input port has exactly
// one upstream output port, so the occupancy this phase reads cannot be
// changed by any other shard during the span.
func (n *Network) parLink(s *parShard) {
	vcs := n.alg.VCs()
	rrVC := int(n.modTab[vcs]) // every port has alg.VCs() queues
	s.wl.out.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		for _, op := range r.out {
			occ := r.outOcc.port(op.slotBase, vcs)
			if occ == 0 {
				continue
			}
			n.parLinkPort(s, node, r, op, occ, vcs, rrVC)
		}
	})
}

// parLinkPort mirrors linkPort with the cross-shard deferral.
func (n *Network) parLinkPort(s *parShard, node int, r *router, op *outPort, occ uint64, vcs, rr int) {
	a := &n.arena
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		h := v.head()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&s.wl, node, r, op, vi)
		a.lastMove[fi] = n.cycle + 1
		if h.seq() == 0 {
			a.hops[h.pkt()]++
		}
		n.linkFlits[op.ch.ID]++
		if dst := op.ch.Dst; int(n.shardOf[dst]) == s.idx {
			n.inPush(&s.wl, dst, op.peerRouter, ip, vi, h)
		} else {
			s.xpush = append(s.xpush, pushRecord{node: dst, p: ip, vc: vi, h: h})
		}
		s.moved = true
		return // one flit per physical link per cycle
	}
}

// finishParallelCycle is the end-of-cycle serial section: apply the
// cross-shard link arrivals in canonical order, replay the deferred
// injection statistics, merge the per-shard scratch counters, and close
// the cycle exactly as stepActive does.
func (n *Network) finishParallelCycle() {
	for i := range n.shards {
		s := &n.shards[i]
		for _, rec := range s.xpush {
			wl := &n.shards[n.shardOf[rec.node]].wl
			n.inPush(wl, rec.node, n.routers[rec.node], rec.p, rec.vc, rec.h)
		}
		s.xpush = s.xpush[:0]
	}
	for i := range n.shards {
		s := &n.shards[i]
		for _, st := range s.stats {
			if st.injected {
				n.injected++
				n.col.PacketInjected(n.cycle, st.flits)
			} else {
				n.col.SourceBlocked(n.cycle)
			}
		}
		s.stats = s.stats[:0]
		if s.moved {
			n.moved = true
			s.moved = false
		}
		n.visits += s.visits
		s.visits = 0
	}
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
	for _, d := range n.modDivs {
		v := n.modTab[d] + 1
		if v == uint32(d) {
			v = 0
		}
		n.modTab[d] = v
	}
}

// checkParallelInvariants proves the cross-shard bookkeeping the
// parallel engine adds on top of the per-node worklist invariants: the
// shard ranges tile the node space as the pure assignment function
// dictates, no shard's worklists hold a node outside its range (a
// foreign member would be drained by the wrong goroutine), and — at
// every cycle boundary — the deferred-effect buffers are empty and the
// scratch counters merged, so no packet, credit or statistic is parked
// between shards. Together with CheckConservation's global packet and
// arena accounting this proves cross-shard conservation: every flit
// that left one shard's output queue arrived in the owning shard's
// input bookkeeping the same cycle.
func (n *Network) checkParallelInvariants() error {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if k < 1 || len(n.shards) != k {
		return fmt.Errorf("noc: parallel engine with %d shards configured but %d built", k, len(n.shards))
	}
	for i := range n.shards {
		s := &n.shards[i]
		if s.lo != i*nodes/k || s.hi != (i+1)*nodes/k {
			return fmt.Errorf("noc: shard %d covers [%d,%d), want [%d,%d)", i, s.lo, s.hi, i*nodes/k, (i+1)*nodes/k)
		}
		for _, set := range []struct {
			name string
			s    *activeSet
		}{{"ejection", &s.wl.ej}, {"switch", &s.wl.sw}, {"link", &s.wl.out}, {"injection", &s.wl.ni}} {
			bad := -1
			set.s.forEach(func(v int) {
				if (v < s.lo || v >= s.hi) && bad < 0 {
					bad = v
				}
			})
			if bad >= 0 {
				return fmt.Errorf("noc: node %d on shard %d's %s worklist but owned by shard %d",
					bad, i, set.name, n.shardOf[bad])
			}
		}
		if len(s.ej) != 0 || len(s.stats) != 0 || len(s.xpush) != 0 {
			return fmt.Errorf("noc: shard %d holds unreplayed deferred effects at a cycle boundary (%d ejections, %d stats, %d link arrivals)",
				i, len(s.ej), len(s.stats), len(s.xpush))
		}
		if s.visits != 0 || s.moved {
			return fmt.Errorf("noc: shard %d scratch counters not merged at a cycle boundary", i)
		}
	}
	for v := 0; v < nodes; v++ {
		if want := ((v+1)*k - 1) / nodes; int(n.shardOf[v]) != want {
			return fmt.Errorf("noc: shardOf[%d] = %d, want %d", v, n.shardOf[v], want)
		}
	}
	return nil
}
