package noc

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"gonoc/internal/prof"
)

// This file is the domain-decomposed parallel engine behind
// Network.Step: EngineParallel splits the routers into a fixed set of
// contiguous shards and executes the whole cycle — ejection, switch
// traversal + injection, link traversal — as ONE fused shard-local pass
// per worker, meeting a single barrier per cycle, while producing
// results bit-identical to EngineActive (and hence EngineSweep) at
// every shard count.
//
// The fusion rests on the conservative-PDES lookahead of the model: a
// cross-shard effect (a link traversal into another shard's input
// buffer) is not acted on by the receiving router until the NEXT
// cycle's phases, so it can be delivered through a mailbox without
// changing any decision taken this cycle. Within a shard the fused pass
// keeps the serial phase order (all ejections, then all switch+inject,
// then all links over the shard's routers), so every shard-local read a
// phase performs sees exactly the state the serial engine would.
// Between shards, three couplings remain and each is resolved without a
// mid-cycle barrier:
//
//   - Cross-shard link DECISION: the only foreign state the link phase
//     reads is the downstream input slot's occupancy. Each input slot
//     has exactly ONE upstream writer (its channel), so during a cycle
//     its occupancy can only shrink (the owner pops, nobody else
//     pushes) until this very port pushes. The engine therefore keeps
//     per-(port,VC) CREDIT counters on every boundary port
//     (outPort.credits), snapshotted from the downstream buffers at
//     each barrier (refreshBoundaryCredits): a positive credit proves
//     the slot still has room at the serial decision point, so the
//     flit departs speculatively on the spot; a zero credit means only
//     the owner's pops this cycle can have made room, so the port
//     synchronizes point-to-point — it waits (parRun.awaitPops) until
//     the downstream shard publishes that all its pops of the pass are
//     done (popsDone, stored between its switch+inject and link
//     phases) and then re-reads exact occupancy, which is precisely
//     the check the serial link sweep performs. Both outcomes
//     reproduce the serial decision bit-exactly, and neither involves
//     the serial section: the cycle-end replay of deferred boundary
//     ports that predated credits is gone (SerialReplayVisits is
//     retired at 0 and gated there). The two outcomes are counted by
//     the SpeculativeDeliveries and CreditDefers perf counters.
//   - Cross-shard link DELIVERY: the departing flit is appended to a
//     per-shard-pair mailbox (outbox, one writer and one reader per
//     pair, preallocated). The RECEIVING shard drains its inboxes
//     itself at the end of its own pass — after every sender published
//     linkDone, so each mailbox is complete and has exactly one
//     concurrent reader — in canonical ascending sender-shard order.
//     Draining within the same cycle (rather than at the top of the
//     next) keeps the cycle-boundary state bit-identical for every
//     observer (fingerprints, telemetry, conservation, Drain) and
//     keeps Reset trivial: no flit is ever parked in a mailbox across
//     a barrier. The serial section never touches mailboxes.
//   - Ejection completions: statistics and the arena recycle are
//     deferred per shard and replayed in canonical order at the barrier.
//     Without an OnEject callback this is unobservable mid-cycle (no
//     lease or collector event happens between the ejection and the
//     barrier), so the fused single-barrier cycle applies. WITH a
//     callback, replies must inject the same cycle (serial engines run
//     OnEject before the injection phase), so the engine falls back to
//     a two-barrier cycle: an ejection span, a barrier replaying the
//     completions (stats → OnEject → recycle), then a fused
//     switch+inject+link span and the cycle-end barrier. The barriers
//     perf counter records which shape ran.
//
// The cycle-end serial section is thereby reduced to the ejection
// completions, the deferred injection statistics, the scratch-counter
// merge and the credit refresh — the Amdahl serial fraction the
// CreditDefers counter tracks the residue of.
//
// Determinism follows the same discipline as before: shard assignment
// is a pure function of router index and shard count (contiguous ranges
// [s·N/K, (s+1)·N/K)), each shard drains its own bitmap worklists in
// ascending node order with cycle-derived round-robin pointers, and
// every deferred buffer is appended in ascending node order and
// replayed (or drained) in ascending shard order — exactly the serial
// engines' iteration order. The credit decision is a pure function of
// simulation state (never of timing): whether a port holds a credit
// depends only on the previous barrier's buffer occupancy, and the
// zero-credit wait always resolves to the same exact occupancy read,
// so SpeculativeDeliveries and CreditDefers are deterministic counters
// fit for the perf gate. The boundary-port list of each shard (bports)
// and its inbound-sender list (senders) are precomputed at SetShards
// time in canonical order.
//
// The packet arena needs no sharding: every lease and recycle happens
// in the serial sections at the barriers (generator events run between
// cycles; OnEject replies run in the ejection replay), so arena growth
// and the free stack are only ever touched single-threaded. The
// per-record fields shards write concurrently — recv during ejection,
// injected during injection, hops and lastMove during link traversal —
// are distinct word-sized array elements owned by exactly one shard at
// any time, and the barrier atomics (plus the popsDone/linkDone
// publishes, which order a shard's pops and mailbox appends before any
// foreign read) order them, so the engine stays race-clean.
//
// Synchronization is a generation (sense-reversing) barrier: the
// coordinator publishes the pass kind, re-arms a countdown and bumps an
// atomic generation; workers spin on the generation with a budget
// derived from GOMAXPROCS and the shard count (zero — straight to
// Gosched — on a single P), yield for a while, then park on a buffered
// wake channel with a publish-then-recheck handshake so no release can
// be lost. The intra-pass popsDone/linkDone waits spin with the same
// budget but never park: every shard publishes both marks
// unconditionally on every pass before it can itself wait, so the
// waits are deadlock-free and bounded by the pass length. An idle or
// reset network burns no CPU; StopWorkers joins the goroutines, so no
// worker can outlive its network.
//
// When a CPU profile is armed (prof.CPUProfileActive at worker start),
// the engine attaches pprof goroutine labels phase=fused-pass /
// barrier-wait / serial-replay around the respective spans, so `go
// tool pprof -tags` attributes samples to the parallel fraction, the
// synchronization overhead and the residual serial section directly.
// Unprofiled runs skip the labels entirely (nil-context check).

// parShard is one domain of the decomposition: a contiguous router
// range, its private phase worklists, per-cycle scratch counters, the
// deferred-effect buffers, and the precomputed boundary geometry.
type parShard struct {
	idx    int // shard index (== position in Network.shards)
	lo, hi int // owned router range [lo, hi)
	wl     worklists

	visits  uint64 // worklist visits this cycle, merged at cycle end
	specs   uint64 // speculative (credit-backed) cross-shard deliveries this cycle
	cdefers uint64 // zero-credit synchronized link decisions this cycle
	moved   bool   // any flit progress this cycle, merged at cycle end

	// ej holds this cycle's fully ejected packets (arena indices) in
	// pop order; the barrier replays them (statistics, OnEject, arena
	// recycle) in shard order == ascending node order.
	ej []int32
	// stats holds this cycle's injection-phase collector events in
	// visit order, replayed at cycle end.
	stats []statRecord

	// bports lists this shard's cross-shard output ports in canonical
	// (ascending node, port) order — precomputed by buildShards, so
	// neither the per-cycle code nor the invariant checker re-derives
	// the cut geometry.
	bports []bport
	// senders lists, ascending, the shards that own at least one
	// boundary port INTO this shard — the only mailboxes the
	// end-of-pass drain must wait for and read.
	senders []int32
	// outbox[t] is the mailbox of cross-shard link deliveries into
	// shard t this cycle: written only by this shard during its fused
	// pass, drained only by shard t at the end of t's pass (after this
	// shard published linkDone). Preallocated small (initialMailboxCap)
	// and grown on demand up to at most one record per boundary port;
	// the backing arrays persist across cycles and runs, so the steady
	// state appends without allocating.
	outbox [][]pushRecord

	// pad keeps neighbouring shards' hot scratch fields off one cache
	// line (the structs live in one slice).
	_ [64]byte
}

// bport names one cross-shard output port: the owning router and the
// port itself (whose ch/peer/peerRouter fields carry the rest).
type bport struct {
	node int32
	op   *outPort
}

// initialMailboxCap is the preallocated capacity of each per-shard-pair
// mailbox. Deliberately smaller than the worst case (one record per
// boundary port per cycle): a first burst grows the slice once and the
// high-water backing array is kept forever after, which the
// mailbox-growth tests pin down.
const initialMailboxCap = 4

// statRecord is one deferred injection-phase collector event: a packet
// acceptance (injected, with its flit count) or a source-blocked cycle.
type statRecord struct {
	injected bool
	flits    int
}

// pushRecord is one cross-shard link traversal in flight between a
// sender's link phase and the receiver's end-of-pass drain: flit handle
// h arrives in input port p, virtual channel vc, of router node.
type pushRecord struct {
	node int
	p    *inPort
	vc   int
	h    flitH
}

// Pass kinds a barrier release carries (parRun.mode).
const (
	passFused = iota // ejection + switch/inject + link in one pass
	passEject        // ejection only (OnEject cycles)
	passRest         // switch/inject + link (OnEject cycles)
)

// parRun is the worker group of a running parallel network: one
// goroutine per shard beyond shard 0, released through a generation
// barrier once (or, with an OnEject callback, twice) per cycle, plus
// the per-shard intra-pass progress marks the credit discipline
// synchronizes on.
type parRun struct {
	gen     atomic.Uint64 // release generation; bumped to open a pass
	pending atomic.Int64  // workers still inside the released pass
	stop    atomic.Bool   // set before the final bump to terminate
	mode    int           // pass kind, published before the gen bump
	spin    int           // busy-spin budget before yielding

	// popsDone[s] carries the generation of the last pass in which
	// shard s finished every input-buffer pop (ejection and switch);
	// published between the switch+inject and link phases. A
	// zero-credit boundary port waits for the destination shard's mark
	// before re-reading exact occupancy.
	popsDone []atomic.Uint64
	// linkDone[s] carries the generation of the last pass in which
	// shard s finished its link phase (and hence every mailbox append);
	// receivers wait for their senders' marks before draining.
	linkDone []atomic.Uint64

	parked []atomic.Bool   // worker w blocked (or blocking) on wake[w]
	wake   []chan struct{} // buffered(1) wake tokens, one per worker
	wg     sync.WaitGroup  // joined by StopWorkers

	// Phase-attribution label contexts, non-nil only when a CPU profile
	// was armed when the worker group started (prof.CPUProfileActive);
	// setLabel is a no-op otherwise, so unprofiled runs pay one nil
	// check per transition.
	labelPass   context.Context
	labelWait   context.Context
	labelSerial context.Context
	labelNone   context.Context
}

// setLabel switches the calling goroutine's pprof labels to ctx when
// phase attribution is armed. On the coordinator this temporarily
// replaces the caller's own labels during Step; stepParallel restores
// the empty set before returning.
func (pr *parRun) setLabel(ctx context.Context) {
	if ctx != nil {
		pprof.SetGoroutineLabels(ctx)
	}
}

// yieldBudget is how many runtime.Gosched rounds a worker inserts
// between spinning and parking: long enough that back-to-back cycles
// on a busy machine never pay the park/wake channel round-trip, short
// enough that an idle gap parks quickly.
const yieldBudget = 64

// spinBudget derives the busy-spin budget from the machine parallelism
// and the worker-group width: with shards ≤ procs every worker owns a
// P and a pass ends within microseconds, so the full budget applies;
// oversubscribed groups scale it down (a spinning worker is stealing
// the P of the one that would end the wait); a single P spins not at
// all and goes straight to Gosched. Parallelism is the smaller of
// GOMAXPROCS and the physical core count: GOMAXPROCS above NumCPU
// creates runnable threads the OS must time-slice onto the same cores,
// and a waiter that busy-spins there burns the publisher's quantum —
// each intra-pass handoff then costs an OS reschedule instead of
// nanoseconds, which under the race detector compounds into a crawl.
func spinBudget(shards int) int {
	const base = 4096
	p := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < p {
		p = c
	}
	if p <= 1 {
		return 0
	}
	b := base * p / shards
	if b > base {
		b = base
	}
	return b
}

// defaultShards picks the shard count when none was configured:
// min(GOMAXPROCS, routers/4), at least 1. The nodes/4 floor keeps
// shards from shrinking below the size where the per-cycle barrier
// costs more than the shard's phase work; a result of 1 means the
// network is too small to decompose profitably and callers collapse to
// the serial engine. Results are bit-identical at every count, so the
// default only affects speed.
func defaultShards(nodes int) int {
	k := runtime.GOMAXPROCS(0)
	if q := nodes / 4; k > q {
		k = q
	}
	if k < 1 {
		k = 1
	}
	return k
}

// SetShards configures the domain width of EngineParallel: k contiguous
// router shards (clamped to [1, nodes]); k <= 0 selects the automatic
// width (defaultShards). Calling it while the parallel engine is active
// rebuilds the decomposition in place — mid-run is fine, results do not
// depend on the shard count; otherwise the value is stored for the next
// SetEngine(EngineParallel).
func (n *Network) SetShards(k int) {
	nodes := n.topo.Nodes()
	if k <= 0 {
		k = defaultShards(nodes)
	}
	if k > nodes {
		k = nodes
	}
	if k == n.shardCount {
		return
	}
	n.shardCount = k
	if n.engine == EngineParallel {
		n.StopWorkers()
		n.buildShards()
		n.rebuildParallelSets()
	}
}

// Shards returns the configured shard count (0 when never configured).
func (n *Network) Shards() int { return n.shardCount }

// buildShards (re)allocates the shard array for the configured count,
// with ranges [s·N/K, (s+1)·N/K), the inverse lookup table, each
// shard's canonical boundary-port and sender lists, the per-pair
// mailboxes and the boundary ports' credit arrays. An already-built
// decomposition of the same width is kept — its worklist bitmaps,
// boundary lists and mailbox capacity stay warm across workspace reuse
// (the caller re-derives the worklist contents either way).
func (n *Network) buildShards() {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if len(n.shards) == k && len(n.shardOf) == nodes {
		return
	}
	n.shards = make([]parShard, k)
	if cap(n.shardOf) < nodes {
		n.shardOf = make([]int32, nodes)
	}
	n.shardOf = n.shardOf[:nodes]
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.idx = s
		sh.lo, sh.hi = s*nodes/k, (s+1)*nodes/k
		sh.wl = newWorklists(nodes)
		for v := sh.lo; v < sh.hi; v++ {
			n.shardOf[v] = int32(s)
		}
	}
	// Second pass (shardOf must be complete): precompute the canonical
	// boundary-port lists, size the mailboxes and allocate the credit
	// counters on every cross-shard port.
	vcs := n.alg.VCs()
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.outbox = make([][]pushRecord, k)
		for v := sh.lo; v < sh.hi; v++ {
			for _, op := range n.routers[v].out {
				if int(n.shardOf[op.ch.Dst]) != s {
					sh.bports = append(sh.bports, bport{node: int32(v), op: op})
				}
			}
		}
		for _, bp := range sh.bports {
			t := n.shardOf[bp.op.ch.Dst]
			if sh.outbox[t] == nil {
				sh.outbox[t] = make([]pushRecord, 0, initialMailboxCap)
			}
			if bp.op.credits == nil {
				bp.op.credits = make([]int16, vcs)
			}
		}
	}
	// Third pass (every outbox allocated): each shard's ascending list
	// of inbound senders — the mailboxes its end-of-pass drain reads.
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.senders = sh.senders[:0]
		for u := 0; u < k; u++ {
			if u != s && n.shards[u].outbox[s] != nil {
				sh.senders = append(sh.senders, int32(u))
			}
		}
	}
}

// rebuildParallelSets recomputes the slot masks, distributes every
// node's worklist membership to its owning shard, and refreshes the
// boundary credits — the parallel counterpart of rebuildActiveSets,
// run on engine entry and whenever the decomposition changes.
func (n *Network) rebuildParallelSets() {
	for i := range n.shards {
		n.shards[i].wl.clear()
	}
	n.rebuildWorklists(func(node int) *worklists { return &n.shards[n.shardOf[node]].wl })
	n.refreshBoundaryCredits()
}

// resetShards clears the per-shard worklists and scratch and restores
// the boundary credits during Network.Reset (which has just emptied
// every buffer), keeping the shard geometry and the deferred buffers'
// backing arrays, and parks the worker group (a reset network may next
// run under a different engine, or not at all). Mailboxes are empty at
// every cycle boundary — the receiving shard drained them inside the
// pass — so no in-flight flit can be stranded here.
func (n *Network) resetShards() {
	n.StopWorkers()
	for i := range n.shards {
		s := &n.shards[i]
		s.wl.clear()
		s.visits, s.specs, s.cdefers, s.moved = 0, 0, 0, false
		s.clearScratch()
	}
	n.refreshBoundaryCredits()
}

// clearScratch empties the deferred buffers, keeping capacity (the
// records are plain integers and port pointers into long-lived router
// structures, so no references need dropping).
func (s *parShard) clearScratch() {
	s.ej = s.ej[:0]
	s.stats = s.stats[:0]
	for t := range s.outbox {
		s.outbox[t] = s.outbox[t][:0]
	}
}

// startWorkers launches the worker group: one goroutine per shard
// beyond shard 0. Workers are lazy — the first parallel Step starts
// them — and park between cycles, so they cost nothing while the
// network idles between runs. Phase-attribution labels are armed here
// iff a CPU profile is already running, so the CLIs' profile-then-run
// order picks them up and unprofiled runs skip the label machinery.
func (n *Network) startWorkers() {
	k := len(n.shards)
	pr := &parRun{
		spin:     spinBudget(k),
		parked:   make([]atomic.Bool, k-1),
		wake:     make([]chan struct{}, k-1),
		popsDone: make([]atomic.Uint64, k),
		linkDone: make([]atomic.Uint64, k),
	}
	if prof.CPUProfileActive() {
		pr.labelPass = pprof.WithLabels(context.Background(), pprof.Labels("phase", "fused-pass"))
		pr.labelWait = pprof.WithLabels(context.Background(), pprof.Labels("phase", "barrier-wait"))
		pr.labelSerial = pprof.WithLabels(context.Background(), pprof.Labels("phase", "serial-replay"))
		pr.labelNone = context.Background()
	}
	for i := range pr.wake {
		pr.wake[i] = make(chan struct{}, 1)
	}
	pr.wg.Add(k - 1)
	for i := 1; i < k; i++ {
		go n.shardWorker(i, pr)
	}
	n.pr = pr
}

// StopWorkers terminates the parallel engine's worker goroutines and
// joins them (a no-op when none are running): when it returns, no
// goroutine of the group exists, parked or otherwise. It is called
// automatically by Reset, SetShards and any engine switch; call it
// directly when discarding a network that stepped under EngineParallel.
// The network remains fully usable — the next parallel Step restarts
// the group.
func (n *Network) StopWorkers() {
	pr := n.pr
	if pr == nil {
		return
	}
	pr.stop.Store(true)
	pr.gen.Add(1)
	for w := range pr.wake {
		select {
		case pr.wake[w] <- struct{}{}:
		default: // a token is already pending; the worker will wake
		}
	}
	pr.wg.Wait()
	n.pr = nil
}

// shardWorker is the per-shard goroutine: it waits on the generation
// barrier, runs the released pass over its shard, announces completion
// on pending, and exits when the stop flag accompanies a release.
func (n *Network) shardWorker(i int, pr *parRun) {
	defer pr.wg.Done()
	s := &n.shards[i]
	last := uint64(0)
	for {
		pr.setLabel(pr.labelWait)
		g := pr.awaitRelease(i-1, last)
		if pr.stop.Load() {
			return
		}
		last = g
		pr.setLabel(pr.labelPass)
		switch pr.mode {
		case passFused:
			n.runFusedPass(s, g)
		case passEject:
			n.parEject(s)
		default: // passRest
			n.runRestPass(s, g)
		}
		pr.pending.Add(-1)
	}
}

// awaitRelease blocks worker w until the generation moves past last:
// spin for the budget, yield for a while, then park on the wake channel.
// The park publishes intent (parked[w]) and RE-CHECKS the generation
// before blocking, so a release that raced the publish is never missed;
// the coordinator's wake tokens are buffered, so a token sent to a
// worker that un-parked itself is consumed (and discarded by the
// re-check loop) on the next park instead of deadlocking anyone.
func (pr *parRun) awaitRelease(w int, last uint64) uint64 {
	spin := 0
	for {
		if g := pr.gen.Load(); g != last {
			return g
		}
		spin++
		switch {
		case spin <= pr.spin:
			// busy wait
		case spin <= pr.spin+yieldBudget:
			runtime.Gosched()
		default:
			pr.parked[w].Store(true)
			if g := pr.gen.Load(); g != last {
				pr.parked[w].Store(false)
				return g
			}
			<-pr.wake[w]
			pr.parked[w].Store(false)
			spin = 0
		}
	}
}

// release opens a pass for the workers and returns its generation: the
// pass kind is published first, pending re-armed, then the generation
// bump releases spinning workers (the atomic bump orders every
// serial-section write before it, arena growth from leases included)
// and parked workers get a wake token.
func (pr *parRun) release(mode, workers int) uint64 {
	pr.mode = mode
	pr.pending.Store(int64(workers))
	g := pr.gen.Add(1)
	for w := range pr.parked {
		if pr.parked[w].Load() {
			select {
			case pr.wake[w] <- struct{}{}:
			default:
			}
		}
	}
	return g
}

// await blocks the coordinator until every worker finished the pass.
func (pr *parRun) await() {
	for spin := 0; pr.pending.Load() != 0; spin++ {
		if spin >= pr.spin {
			runtime.Gosched()
		}
	}
}

// awaitPops blocks until shard t has published its pops-done mark for
// pass generation g — a point-to-point wait a zero-credit boundary
// port pays before re-reading exact downstream occupancy. It never
// parks: t publishes the mark unconditionally partway through the same
// pass the waiter is in, so the wait is bounded by t's pass prefix.
func (pr *parRun) awaitPops(t int, g uint64) {
	for spin := 0; pr.popsDone[t].Load() < g; spin++ {
		if spin >= pr.spin {
			runtime.Gosched()
		}
	}
}

// awaitLink blocks until shard u has published its link-done mark for
// pass generation g, after which u's mailbox appends of this pass are
// complete (and ordered before the load). Receivers call it for each
// inbound sender before draining; every shard publishes its own mark
// before waiting on anyone, so the waits cannot cycle.
func (pr *parRun) awaitLink(u int, g uint64) {
	for spin := 0; pr.linkDone[u].Load() < g; spin++ {
		if spin >= pr.spin {
			runtime.Gosched()
		}
	}
}

// runFusedPass executes one shard's full single-barrier cycle body.
func (n *Network) runFusedPass(s *parShard, g uint64) {
	n.parEject(s)
	n.runRestPass(s, g)
}

// runRestPass executes the switch+inject and link phases of one shard's
// pass, publishing the credit-discipline progress marks at the required
// points — popsDone after the last input-buffer pop of the pass,
// linkDone after the last mailbox append — and finally draining the
// shard's own inboxes (complete once every sender's linkDone is in).
func (n *Network) runRestPass(s *parShard, g uint64) {
	n.parSwitchInject(s)
	pr := n.pr
	pr.popsDone[s.idx].Store(g)
	n.parLink(s, g)
	pr.linkDone[s.idx].Store(g)
	n.drainInboxes(s, g)
}

// stepParallel advances one cycle under the domain decomposition. The
// common shape (no OnEject callback) is the single-barrier fused cycle:
//
//	fused pass (parallel)  ejection → switch+inject → link → inbox
//	                       drain per shard; ejection/stat completions
//	                       deferred, cross-shard deliveries resolved
//	                       in-pass by the credit discipline
//	barrier     (serial)   ejection replay, stats replay, cycle close,
//	                       credit refresh
//
// With an OnEject callback the replies must inject the same cycle, so
// the ejection span splits off and the cycle pays a second barrier:
//
//	ejection pass (parallel) → barrier: replay (stats → OnEject →
//	recycle) → switch+inject+link+drain pass (parallel) → barrier:
//	cycle-end serial section as above
func (n *Network) stepParallel() {
	n.moved = false
	if len(n.shards) == 1 {
		// Degenerate single-shard decomposition: same machinery minus
		// the workers, barriers and credit waits (no port crosses a
		// shard boundary) — still exercises the pass and replay code.
		s := &n.shards[0]
		n.parEject(s)
		n.replayEjections()
		n.parSwitchInject(s)
		n.parLink(s, 0)
		n.finishParallelCycle()
		return
	}
	if n.pr == nil {
		n.startWorkers()
	}
	pr := n.pr
	workers := len(n.shards) - 1
	s0 := &n.shards[0]
	if n.onEject == nil {
		g := pr.release(passFused, workers)
		pr.setLabel(pr.labelPass)
		n.runFusedPass(s0, g)
		pr.setLabel(pr.labelWait)
		pr.await()
		n.barriers++
		pr.setLabel(pr.labelSerial)
		n.replayEjections()
	} else {
		pr.release(passEject, workers)
		pr.setLabel(pr.labelPass)
		n.parEject(s0)
		pr.setLabel(pr.labelWait)
		pr.await()
		n.barriers++
		pr.setLabel(pr.labelSerial)
		n.replayEjections()
		g := pr.release(passRest, workers)
		pr.setLabel(pr.labelPass)
		n.runRestPass(s0, g)
		pr.setLabel(pr.labelWait)
		pr.await()
		n.barriers++
		pr.setLabel(pr.labelSerial)
	}
	n.finishParallelCycle()
	pr.setLabel(pr.labelNone)
}

// parEject mirrors activeEject over one shard's ejection worklist,
// deferring every tail-ejection completion: the pops, mask updates and
// per-packet receive accounting are shard-local (a packet's flits all
// eject at its unique destination), while statistics, the OnEject
// callback and the arena recycle run in the serial replay.
func (n *Network) parEject(s *parShard) {
	vcs := n.alg.VCs()
	a := &n.arena
	tail := a.pktLen - 1
	s.wl.ej.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			return
		}
		slots := np * vcs
		rrEj := int(n.modTab[slots])
		for k := 0; k < slots && budget > 0; k++ {
			sl := rrEj + k
			if sl >= slots {
				sl -= slots
			}
			p := r.in[sl/vcs]
			vc := sl % vcs
			if !r.ejOcc.test(p.slotBase + vc) {
				continue
			}
			for budget > 0 && !p.empty(vc) && a.dst[p.head(vc).pkt()] == int32(r.node) {
				h := n.inPop(&s.wl, node, r, p, vc)
				pi := h.pkt()
				n.telEj[node]++
				budget--
				s.moved = true
				a.recv[pi]++
				if h.seq() == tail {
					s.ej = append(s.ej, pi)
				}
			}
		}
	})
}

// replayEjections applies the deferred ejection completions in shard
// order — which, shards being contiguous and each buffer append-ordered
// by the ascending-node walk, is exactly the serial engines' ejection
// order. Statistics, the OnEject callback (whose reply injections may
// lease from the arena and land in any shard's source worklist) and the
// recycle therefore interleave precisely as in EngineActive. In the
// fused (callback-free) cycle this runs at the cycle-end barrier: no
// lease, recycle or collector event can occur between a tail ejection
// and the barrier, so deferring the completions there is unobservable.
func (n *Network) replayEjections() {
	a := &n.arena
	for i := range n.shards {
		s := &n.shards[i]
		for _, pi := range s.ej {
			n.ejected++
			n.col.PacketEjected(n.cycle, a.created[pi], a.injected[pi], a.pktLen, int(a.hops[pi]))
			if n.onEject != nil {
				n.materializePacket(&n.ejView, pi)
				n.onEject(&n.ejView)
			}
			n.recyclePacket(pi)
		}
		s.ej = s.ej[:0]
	}
}

// parSwitchInject runs the switch-traversal and injection phases over
// one shard. Fusing them into one span is sound because both phases
// read and write only the state of the visited router and its NI — the
// serial engines' global phase boundary orders nothing that two
// different routers could observe.
func (n *Network) parSwitchInject(s *parShard) {
	vcs := n.alg.VCs()
	s.wl.sw.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		np := len(r.in)
		rrIn := int(n.modTab[np])
		for k := 0; k < np; k++ {
			p := r.in[(rrIn+k)%np]
			occ := r.inOcc.port(p.slotBase, vcs) &^ r.ejOcc.port(p.slotBase, vcs)
			if occ == 0 {
				continue
			}
			if n.switchPort(&s.wl, r, p, occ, vcs) {
				s.moved = true
			}
		}
	})
	n.parInject(s)
}

// parInject mirrors activeInject over one shard's sources, deferring
// the collector events (packet acceptances, source-blocked cycles) to
// the end-of-cycle replay; everything else — source queue, worm state,
// the output-queue pushes, the packet's injection stamp (its source is
// unique to this shard) — is local to the shard.
func (n *Network) parInject(s *parShard) {
	a := &n.arena
	s.wl.ni.forEach(func(node int) {
		q := n.nis[node]
		r := n.routers[node]
		s.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending < 0 {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pi := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pi, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %s",
						n.alg.Name(), d.Dir, node, n.pktString(pi)))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc) {
					ovc.owner = pi
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					s.stats = append(s.stats, statRecord{})
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				s.stats = append(s.stats, statRecord{})
				break
			}
			h := mkFlit(pi, q.nextSeq, q.route.vc)
			a.lastMove[a.flitIndex(h)] = n.cycle + 1
			n.outPush(&s.wl, node, r, q.route.port, q.route.vc, h)
			n.telInj[node]++
			s.moved = true
			q.nextSeq++
			budget--
			if h.seq() == 0 {
				a.injected[pi] = n.cycle
				s.stats = append(s.stats, statRecord{injected: true, flits: a.pktLen})
			}
			if h.seq() == a.pktLen-1 {
				ovc.owner = -1
				q.sending = -1
				q.route = routeEntry{}
			}
		}
		if q.sending < 0 && q.queue.len() == 0 {
			s.wl.ni.remove(node)
		}
	})
}

// parLink mirrors activeLink over one shard's link worklist. Arrivals
// into a router of the same shard are applied directly with exact
// occupancy checks (all of this shard's pops already ran in the fused
// pass, and no other shard pushes into this shard's input slots).
// Cross-shard arrivals use the credit discipline of parLinkPort.
func (n *Network) parLink(s *parShard, g uint64) {
	vcs := n.alg.VCs()
	rrVC := int(n.modTab[vcs]) // every port has alg.VCs() queues
	s.wl.out.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		for _, op := range r.out {
			occ := r.outOcc.port(op.slotBase, vcs)
			if occ == 0 {
				continue
			}
			n.parLinkPort(s, node, r, op, occ, vcs, rrVC, g)
		}
	})
}

// parLinkPort mirrors linkPort under the fused pass. For a same-shard
// destination the downstream fullness read is exact (see parLink). For
// a cross-shard destination the decision consults the cycle-start
// credit counter (outPort.credits[vc]): a positive count proves the
// slot still has room at the serial decision point (its occupancy can
// only have shrunk — the single producer is this port), so the flit
// departs on the spot; a zero count means the owner's pops this cycle
// decide, so the port waits for the downstream shard's popsDone mark
// and re-reads exact occupancy — the identical check the serial link
// sweep performs, now resolved inside the pass instead of a cycle-end
// serial replay. Either way the delivery itself travels through the
// pair mailbox (pushing into a foreign shard's bookkeeping directly
// would race with its own pass) and is drained by the receiving shard
// at the end of its pass. Both outcomes reproduce the serial
// round-robin decision exactly.
func (n *Network) parLinkPort(s *parShard, node int, r *router, op *outPort, occ uint64, vcs, rr int, g uint64) {
	a := &n.arena
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		h := v.head()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		dst := op.ch.Dst
		if t := int(n.shardOf[dst]); t != s.idx {
			if op.credits[vi] > 0 {
				op.credits[vi]--
				s.specs++
			} else {
				s.cdefers++
				n.pr.awaitPops(t, g)
				if op.peer.full(vi, n.cfg.InBufCap) {
					continue
				}
			}
			n.outPop(&s.wl, node, r, op, vi)
			a.lastMove[fi] = n.cycle + 1
			if h.seq() == 0 {
				a.hops[h.pkt()]++
			}
			n.linkFlits[op.ch.ID]++
			s.outbox[t] = append(s.outbox[t], pushRecord{node: dst, p: op.peer, vc: vi, h: h})
			s.moved = true
			return // one flit per physical link per cycle
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&s.wl, node, r, op, vi)
		a.lastMove[fi] = n.cycle + 1
		if h.seq() == 0 {
			a.hops[h.pkt()]++
		}
		n.linkFlits[op.ch.ID]++
		n.inPush(&s.wl, dst, op.peerRouter, ip, vi, h)
		s.moved = true
		return // one flit per physical link per cycle
	}
}

// drainInboxes applies the cross-shard arrivals addressed to this shard
// at the end of its own pass, in canonical ascending sender-shard
// order, once every sender's linkDone mark proves its mailbox complete.
// The pushes run against the shard's own routers and worklists (single
// writer), and a boundary port of ANOTHER shard still mid-decision
// cannot observe them: the only slot such a port examines is one this
// very drain can never touch, because its sole producer is that port
// itself and same-cycle records from it would require the port to have
// already decided. Emptying the mailboxes inside the pass keeps every
// cycle-boundary observer (fingerprints, telemetry, conservation,
// Reset) oblivious to the mailbox mechanism.
func (n *Network) drainInboxes(s *parShard, g uint64) {
	if len(s.senders) == 0 {
		return
	}
	pr := n.pr
	for _, u := range s.senders {
		pr.awaitLink(int(u), g)
	}
	for _, u := range s.senders {
		src := &n.shards[u]
		box := src.outbox[s.idx]
		for _, rec := range box {
			n.inPush(&s.wl, rec.node, n.routers[rec.node], rec.p, rec.vc, rec.h)
		}
		src.outbox[s.idx] = box[:0]
	}
}

// refreshBoundaryCredits recomputes every boundary port's per-VC credit
// counters from the downstream buffers. It runs in the serial section
// at each cycle close (and on any rebuild), after all pops and drains —
// i.e. at exactly the instant the next cycle's speculation treats as
// "cycle start", so credits[vc] == free slots of peer.bufs[vc] holds at
// every cycle boundary (an invariant CheckConservation enforces).
func (n *Network) refreshBoundaryCredits() {
	bufCap := n.cfg.InBufCap
	for i := range n.shards {
		s := &n.shards[i]
		for _, bp := range s.bports {
			ip := bp.op.peer
			for vc := range ip.bufs {
				bp.op.credits[vc] = int16(bufCap - ip.bufs[vc].len())
			}
		}
	}
}

// finishParallelCycle is the end-of-cycle serial section — all that
// remains of it after the credit discipline moved the boundary-port
// decisions and the mailbox applies into the passes: replay the
// deferred injection statistics, merge the per-shard scratch counters,
// close the cycle exactly as stepActive does, and refresh the boundary
// credits for the next cycle's speculation.
func (n *Network) finishParallelCycle() {
	for i := range n.shards {
		s := &n.shards[i]
		for _, st := range s.stats {
			if st.injected {
				n.injected++
				n.col.PacketInjected(n.cycle, st.flits)
			} else {
				n.col.SourceBlocked(n.cycle)
			}
		}
		s.stats = s.stats[:0]
		if s.moved {
			n.moved = true
			s.moved = false
		}
		n.visits += s.visits
		s.visits = 0
		n.specs += s.specs
		s.specs = 0
		n.cdefers += s.cdefers
		s.cdefers = 0
	}
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
	for _, d := range n.modDivs {
		v := n.modTab[d] + 1
		if v == uint32(d) {
			v = 0
		}
		n.modTab[d] = v
	}
	n.refreshBoundaryCredits()
}

// checkParallelInvariants proves the cross-shard bookkeeping the
// parallel engine adds on top of the per-node worklist invariants: the
// shard ranges tile the node space as the pure assignment function
// dictates, no shard's worklists hold a node outside its range (a
// foreign member would be drained by the wrong goroutine), the
// precomputed boundary-port lists name exactly the cross-shard output
// ports in canonical order with credit counters that match the
// downstream buffers (no counter negative — no overdraft — and none
// stale), the sender lists name exactly the shards with inbound
// boundary ports, and — at every cycle boundary — the deferred-effect
// buffers and every per-pair mailbox are empty (each receiving shard
// drained its inboxes inside the pass) and the scratch counters are
// merged, so no packet, credit or statistic is parked between shards.
// Together with CheckConservation's global packet and arena accounting
// this proves cross-shard conservation: every flit that left one
// shard's output queue arrived in the owning shard's input bookkeeping
// the same cycle.
func (n *Network) checkParallelInvariants() error {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if k < 1 || len(n.shards) != k {
		return fmt.Errorf("noc: parallel engine with %d shards configured but %d built", k, len(n.shards))
	}
	for i := range n.shards {
		s := &n.shards[i]
		if s.lo != i*nodes/k || s.hi != (i+1)*nodes/k {
			return fmt.Errorf("noc: shard %d covers [%d,%d), want [%d,%d)", i, s.lo, s.hi, i*nodes/k, (i+1)*nodes/k)
		}
		for _, set := range []struct {
			name string
			s    *activeSet
		}{{"ejection", &s.wl.ej}, {"switch", &s.wl.sw}, {"link", &s.wl.out}, {"injection", &s.wl.ni}} {
			bad := -1
			set.s.forEach(func(v int) {
				if (v < s.lo || v >= s.hi) && bad < 0 {
					bad = v
				}
			})
			if bad >= 0 {
				return fmt.Errorf("noc: node %d on shard %d's %s worklist but owned by shard %d",
					bad, i, set.name, n.shardOf[bad])
			}
		}
		if len(s.ej) != 0 || len(s.stats) != 0 {
			return fmt.Errorf("noc: shard %d holds unreplayed deferred effects at a cycle boundary (%d ejections, %d stats)",
				i, len(s.ej), len(s.stats))
		}
		if len(s.outbox) != k {
			return fmt.Errorf("noc: shard %d has %d mailboxes for %d shards", i, len(s.outbox), k)
		}
		for t := range s.outbox {
			if len(s.outbox[t]) != 0 {
				return fmt.Errorf("noc: shard %d->%d mailbox holds %d undrained link arrivals at a cycle boundary",
					i, t, len(s.outbox[t]))
			}
		}
		// The boundary-port list must be exactly the shard's cross-shard
		// output ports in canonical (ascending node, port) order, and
		// each credit counter must equal the buffer-derived free-slot
		// count — a negative counter would mean speculation overdrew the
		// downstream buffer, a stale one would let the next cycle
		// speculate wrongly.
		bi := 0
		for v := s.lo; v < s.hi; v++ {
			for _, op := range n.routers[v].out {
				if int(n.shardOf[op.ch.Dst]) == i {
					continue
				}
				if bi >= len(s.bports) || s.bports[bi].op != op || int(s.bports[bi].node) != v {
					return fmt.Errorf("noc: shard %d boundary-port list out of order or incomplete at node %d", i, v)
				}
				ip := op.peer
				if len(op.credits) < len(ip.bufs) {
					return fmt.Errorf("noc: boundary port %d->%d has %d credit counters for %d VCs",
						v, op.ch.Dst, len(op.credits), len(ip.bufs))
				}
				for vc := range ip.bufs {
					c := int(op.credits[vc])
					if c < 0 {
						return fmt.Errorf("noc: boundary port %d->%d VC %d credit overdraft (%d)",
							v, op.ch.Dst, vc, c)
					}
					if want := n.cfg.InBufCap - ip.bufs[vc].len(); c != want {
						return fmt.Errorf("noc: boundary port %d->%d VC %d holds %d credits, downstream buffer has %d free slots",
							v, op.ch.Dst, vc, c, want)
					}
				}
				bi++
			}
		}
		if bi != len(s.bports) {
			return fmt.Errorf("noc: shard %d lists %d boundary ports, geometry has %d", i, len(s.bports), bi)
		}
		// The sender list must name exactly the shards with at least one
		// boundary port into this shard, ascending — the end-of-pass
		// drain reads only these mailboxes, so a missing sender would
		// strand its deliveries.
		si := 0
		for u := 0; u < k; u++ {
			if u == i {
				continue
			}
			has := false
			for _, bp := range n.shards[u].bports {
				if int(n.shardOf[bp.op.ch.Dst]) == i {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			if si >= len(s.senders) || int(s.senders[si]) != u {
				return fmt.Errorf("noc: shard %d sender list out of order or incomplete at sender %d", i, u)
			}
			si++
		}
		if si != len(s.senders) {
			return fmt.Errorf("noc: shard %d lists %d senders, geometry has %d", i, len(s.senders), si)
		}
		if s.visits != 0 || s.specs != 0 || s.cdefers != 0 || s.moved {
			return fmt.Errorf("noc: shard %d scratch counters not merged at a cycle boundary", i)
		}
	}
	for v := 0; v < nodes; v++ {
		if want := ((v+1)*k - 1) / nodes; int(n.shardOf[v]) != want {
			return fmt.Errorf("noc: shardOf[%d] = %d, want %d", v, n.shardOf[v], want)
		}
	}
	return nil
}
