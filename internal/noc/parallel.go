package noc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the domain-decomposed parallel engine behind
// Network.Step: EngineParallel splits the routers into a fixed set of
// contiguous shards and executes the whole cycle — ejection, switch
// traversal + injection, link traversal — as ONE fused shard-local pass
// per worker, meeting a single barrier per cycle, while producing
// results bit-identical to EngineActive (and hence EngineSweep) at
// every shard count.
//
// The fusion rests on the conservative-PDES lookahead of the model: a
// cross-shard effect (a link traversal into another shard's input
// buffer) is not acted on by the receiving router until the NEXT
// cycle's phases, so it can be deferred to a cycle-end mailbox without
// changing any decision taken this cycle. Within a shard the fused pass
// keeps the serial phase order (all ejections, then all switch+inject,
// then all links over the shard's routers), so every shard-local read a
// phase performs sees exactly the state the serial engine would.
// Between shards, three couplings remain and each is resolved without a
// mid-cycle barrier:
//
//   - Cross-shard link DELIVERY: the receiving slot is written into a
//     per-shard-pair mailbox (outbox, one writer and one reader per
//     pair, preallocated) and applied in canonical router order by the
//     serial section at the barrier.
//   - Cross-shard link DECISION: the only foreign state the link phase
//     reads is the downstream input slot's fullness. Each input slot has
//     exactly ONE upstream writer (its channel), so during a cycle its
//     occupancy can only shrink (the owner pops, nobody else pushes)
//     until this very port pushes. The engine therefore keeps a
//     per-boundary-port snapshot of the downstream per-VC fullness taken
//     at the previous barrier (outPort.downFull): snapshot says
//     not-full ⇒ still not-full at the serial decision point, deliver
//     speculatively; snapshot says full ⇒ the owner's pops this cycle
//     may or may not have made room, so the WHOLE port's round-robin
//     scan is deferred to the barrier, where it re-runs against exact
//     post-pop state (replayBoundaryPort — counted by the
//     serial-replay-visits perf counter). Both outcomes reproduce the
//     serial decision exactly; with one-flit input buffers (the paper's
//     default) the full-at-start case is common under load, which is
//     why the replay-visit count is a gated perf metric.
//   - Ejection completions: statistics and the arena recycle are
//     deferred per shard and replayed in canonical order at the barrier.
//     Without an OnEject callback this is unobservable mid-cycle (no
//     lease or collector event happens between the ejection and the
//     barrier), so the fused single-barrier cycle applies. WITH a
//     callback, replies must inject the same cycle (serial engines run
//     OnEject before the injection phase), so the engine falls back to
//     a two-barrier cycle: an ejection span, a barrier replaying the
//     completions (stats → OnEject → recycle), then a fused
//     switch+inject+link span and the cycle-end barrier. The barriers
//     perf counter records which shape ran.
//
// Determinism follows the same discipline as before: shard assignment
// is a pure function of router index and shard count (contiguous ranges
// [s·N/K, (s+1)·N/K)), each shard drains its own bitmap worklists in
// ascending node order with cycle-derived round-robin pointers, and
// every deferred buffer is appended in ascending node order and
// replayed in shard order — exactly the serial engines' iteration
// order. The boundary-port list of each shard (bports) is precomputed
// at SetShards time in that same canonical order; the serial section
// only walks records that exist instead of re-deriving the geometry.
//
// The packet arena needs no sharding: every lease and recycle happens
// in the serial sections at the barriers (generator events run between
// cycles; OnEject replies run in the ejection replay), so arena growth
// and the free stack are only ever touched single-threaded. The
// per-record fields shards write concurrently — recv during ejection,
// injected during injection, hops and lastMove during link traversal —
// are distinct word-sized array elements owned by exactly one shard at
// any time, and the barrier atomics order them, so the engine stays
// race-clean.
//
// Synchronization is a generation (sense-reversing) barrier: the
// coordinator publishes the pass kind, re-arms a countdown and bumps an
// atomic generation; workers spin on the generation with a budget
// derived from GOMAXPROCS and the shard count (zero — straight to
// Gosched — on a single P), yield for a while, then park on a buffered
// wake channel with a publish-then-recheck handshake so no release can
// be lost. An idle or reset network burns no CPU; StopWorkers joins the
// goroutines, so no worker can outlive its network.

// parShard is one domain of the decomposition: a contiguous router
// range, its private phase worklists, per-cycle scratch counters, the
// deferred-effect buffers replayed at the barrier, and the precomputed
// boundary-port geometry.
type parShard struct {
	idx    int // shard index (== position in Network.shards)
	lo, hi int // owned router range [lo, hi)
	wl     worklists

	visits uint64 // worklist visits this cycle, merged at cycle end
	moved  bool   // any flit progress this cycle, merged at cycle end

	// ej holds this cycle's fully ejected packets (arena indices) in
	// pop order; the barrier replays them (statistics, OnEject, arena
	// recycle) in shard order == ascending node order.
	ej []int32
	// stats holds this cycle's injection-phase collector events in
	// visit order, replayed at cycle end.
	stats []statRecord

	// bports lists this shard's cross-shard output ports in canonical
	// (ascending node, port) order — precomputed by buildShards, so the
	// per-cycle serial section never re-derives the cut geometry.
	bports []bport
	// outbox[t] is the mailbox of speculative link deliveries into
	// shard t this cycle: written only by this shard during its fused
	// pass, read only by the serial section at the barrier. Preallocated
	// small (initialMailboxCap) and grown on demand up to at most one
	// record per boundary port; the backing arrays persist across cycles
	// and runs, so the steady state appends without allocating.
	outbox [][]pushRecord
	// defers lists the boundary ports whose link decision could not be
	// taken speculatively this cycle (downstream snapshot full); the
	// barrier replays each with exact occupancy, in append == canonical
	// order.
	defers []bport

	// pad keeps neighbouring shards' hot scratch fields off one cache
	// line (the structs live in one slice).
	_ [64]byte
}

// bport names one cross-shard output port: the owning router and the
// port itself (whose ch/peer/peerRouter fields carry the rest).
type bport struct {
	node int32
	op   *outPort
}

// initialMailboxCap is the preallocated capacity of each per-shard-pair
// mailbox. Deliberately smaller than the worst case (one record per
// boundary port per cycle): a first burst grows the slice once and the
// high-water backing array is kept forever after, which the
// mailbox-growth tests pin down.
const initialMailboxCap = 4

// statRecord is one deferred injection-phase collector event: a packet
// acceptance (injected, with its flit count) or a source-blocked cycle.
type statRecord struct {
	injected bool
	flits    int
}

// pushRecord is one deferred cross-shard link traversal: flit handle h
// arrives in input port p, virtual channel vc, of router node.
type pushRecord struct {
	node int
	p    *inPort
	vc   int
	h    flitH
}

// Pass kinds a barrier release carries (parRun.mode).
const (
	passFused = iota // ejection + switch/inject + link in one pass
	passEject        // ejection only (OnEject cycles)
	passRest         // switch/inject + link (OnEject cycles)
)

// parRun is the worker group of a running parallel network: one
// goroutine per shard beyond shard 0, released through a generation
// barrier once (or, with an OnEject callback, twice) per cycle.
type parRun struct {
	gen     atomic.Uint64 // release generation; bumped to open a pass
	pending atomic.Int64  // workers still inside the released pass
	stop    atomic.Bool   // set before the final bump to terminate
	mode    int           // pass kind, published before the gen bump
	spin    int           // busy-spin budget before yielding

	parked []atomic.Bool   // worker w blocked (or blocking) on wake[w]
	wake   []chan struct{} // buffered(1) wake tokens, one per worker
	wg     sync.WaitGroup  // joined by StopWorkers
}

// yieldBudget is how many runtime.Gosched rounds a worker inserts
// between spinning and parking: long enough that back-to-back cycles
// on a busy machine never pay the park/wake channel round-trip, short
// enough that an idle gap parks quickly.
const yieldBudget = 64

// spinBudget derives the busy-spin budget from the machine parallelism
// and the worker-group width: with shards ≤ GOMAXPROCS every worker
// owns a P and a pass ends within microseconds, so the full budget
// applies; oversubscribed groups scale it down (a spinning worker is
// stealing the P of the one that would end the wait); a single P spins
// not at all and goes straight to Gosched.
func spinBudget(shards int) int {
	const base = 4096
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		return 0
	}
	b := base * p / shards
	if b > base {
		b = base
	}
	return b
}

// defaultShards picks the shard count when none was configured:
// min(GOMAXPROCS, routers/4), at least 1. The nodes/4 floor keeps
// shards from shrinking below the size where the per-cycle barrier
// costs more than the shard's phase work; a result of 1 means the
// network is too small to decompose profitably and callers collapse to
// the serial engine. Results are bit-identical at every count, so the
// default only affects speed.
func defaultShards(nodes int) int {
	k := runtime.GOMAXPROCS(0)
	if q := nodes / 4; k > q {
		k = q
	}
	if k < 1 {
		k = 1
	}
	return k
}

// SetShards configures the domain width of EngineParallel: k contiguous
// router shards (clamped to [1, nodes]); k <= 0 selects the automatic
// width (defaultShards). Calling it while the parallel engine is active
// rebuilds the decomposition in place — mid-run is fine, results do not
// depend on the shard count; otherwise the value is stored for the next
// SetEngine(EngineParallel).
func (n *Network) SetShards(k int) {
	nodes := n.topo.Nodes()
	if k <= 0 {
		k = defaultShards(nodes)
	}
	if k > nodes {
		k = nodes
	}
	if k == n.shardCount {
		return
	}
	n.shardCount = k
	if n.engine == EngineParallel {
		n.StopWorkers()
		n.buildShards()
		n.rebuildParallelSets()
	}
}

// Shards returns the configured shard count (0 when never configured).
func (n *Network) Shards() int { return n.shardCount }

// buildShards (re)allocates the shard array for the configured count,
// with ranges [s·N/K, (s+1)·N/K), the inverse lookup table, each
// shard's canonical boundary-port list and the per-pair mailboxes. An
// already-built decomposition of the same width is kept — its worklist
// bitmaps, boundary lists and mailbox capacity stay warm across
// workspace reuse (the caller re-derives the worklist contents either
// way).
func (n *Network) buildShards() {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if len(n.shards) == k && len(n.shardOf) == nodes {
		return
	}
	n.shards = make([]parShard, k)
	if cap(n.shardOf) < nodes {
		n.shardOf = make([]int32, nodes)
	}
	n.shardOf = n.shardOf[:nodes]
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.idx = s
		sh.lo, sh.hi = s*nodes/k, (s+1)*nodes/k
		sh.wl = newWorklists(nodes)
		for v := sh.lo; v < sh.hi; v++ {
			n.shardOf[v] = int32(s)
		}
	}
	// Second pass (shardOf must be complete): precompute the canonical
	// boundary-port lists and size the mailboxes.
	for s := 0; s < k; s++ {
		sh := &n.shards[s]
		sh.outbox = make([][]pushRecord, k)
		for v := sh.lo; v < sh.hi; v++ {
			for _, op := range n.routers[v].out {
				if int(n.shardOf[op.ch.Dst]) != s {
					sh.bports = append(sh.bports, bport{node: int32(v), op: op})
				}
			}
		}
		for _, bp := range sh.bports {
			t := n.shardOf[bp.op.ch.Dst]
			if sh.outbox[t] == nil {
				sh.outbox[t] = make([]pushRecord, 0, initialMailboxCap)
			}
		}
	}
}

// rebuildParallelSets recomputes the slot masks, distributes every
// node's worklist membership to its owning shard, and refreshes the
// boundary snapshots — the parallel counterpart of rebuildActiveSets,
// run on engine entry and whenever the decomposition changes.
func (n *Network) rebuildParallelSets() {
	for i := range n.shards {
		n.shards[i].wl.clear()
	}
	n.rebuildWorklists(func(node int) *worklists { return &n.shards[n.shardOf[node]].wl })
	n.refreshBoundarySnapshots()
}

// resetShards clears the per-shard worklists, scratch and boundary
// snapshots during Network.Reset (which has just emptied every buffer),
// keeping the shard geometry and the deferred buffers' backing arrays,
// and parks the worker group (a reset network may next run under a
// different engine, or not at all).
func (n *Network) resetShards() {
	n.StopWorkers()
	for i := range n.shards {
		s := &n.shards[i]
		s.wl.clear()
		s.visits, s.moved = 0, false
		s.clearScratch()
		for _, bp := range s.bports {
			bp.op.downFull = 0
		}
	}
}

// clearScratch empties the deferred buffers, keeping capacity (the
// records are plain integers and port pointers into long-lived router
// structures, so no references need dropping).
func (s *parShard) clearScratch() {
	s.ej = s.ej[:0]
	s.stats = s.stats[:0]
	s.defers = s.defers[:0]
	for t := range s.outbox {
		s.outbox[t] = s.outbox[t][:0]
	}
}

// startWorkers launches the worker group: one goroutine per shard
// beyond shard 0. Workers are lazy — the first parallel Step starts
// them — and park between cycles, so they cost nothing while the
// network idles between runs.
func (n *Network) startWorkers() {
	k := len(n.shards)
	pr := &parRun{
		spin:   spinBudget(k),
		parked: make([]atomic.Bool, k-1),
		wake:   make([]chan struct{}, k-1),
	}
	for i := range pr.wake {
		pr.wake[i] = make(chan struct{}, 1)
	}
	pr.wg.Add(k - 1)
	for i := 1; i < k; i++ {
		go n.shardWorker(i, pr)
	}
	n.pr = pr
}

// StopWorkers terminates the parallel engine's worker goroutines and
// joins them (a no-op when none are running): when it returns, no
// goroutine of the group exists, parked or otherwise. It is called
// automatically by Reset, SetShards and any engine switch; call it
// directly when discarding a network that stepped under EngineParallel.
// The network remains fully usable — the next parallel Step restarts
// the group.
func (n *Network) StopWorkers() {
	pr := n.pr
	if pr == nil {
		return
	}
	pr.stop.Store(true)
	pr.gen.Add(1)
	for w := range pr.wake {
		select {
		case pr.wake[w] <- struct{}{}:
		default: // a token is already pending; the worker will wake
		}
	}
	pr.wg.Wait()
	n.pr = nil
}

// shardWorker is the per-shard goroutine: it waits on the generation
// barrier, runs the released pass over its shard, announces completion
// on pending, and exits when the stop flag accompanies a release.
func (n *Network) shardWorker(i int, pr *parRun) {
	defer pr.wg.Done()
	s := &n.shards[i]
	last := uint64(0)
	for {
		g := pr.awaitRelease(i-1, last)
		if pr.stop.Load() {
			return
		}
		last = g
		switch pr.mode {
		case passFused:
			n.parEject(s)
			n.parSwitchInject(s)
			n.parLink(s)
		case passEject:
			n.parEject(s)
		default: // passRest
			n.parSwitchInject(s)
			n.parLink(s)
		}
		pr.pending.Add(-1)
	}
}

// awaitRelease blocks worker w until the generation moves past last:
// spin for the budget, yield for a while, then park on the wake channel.
// The park publishes intent (parked[w]) and RE-CHECKS the generation
// before blocking, so a release that raced the publish is never missed;
// the coordinator's wake tokens are buffered, so a token sent to a
// worker that un-parked itself is consumed (and discarded by the
// re-check loop) on the next park instead of deadlocking anyone.
func (pr *parRun) awaitRelease(w int, last uint64) uint64 {
	spin := 0
	for {
		if g := pr.gen.Load(); g != last {
			return g
		}
		spin++
		switch {
		case spin <= pr.spin:
			// busy wait
		case spin <= pr.spin+yieldBudget:
			runtime.Gosched()
		default:
			pr.parked[w].Store(true)
			if g := pr.gen.Load(); g != last {
				pr.parked[w].Store(false)
				return g
			}
			<-pr.wake[w]
			pr.parked[w].Store(false)
			spin = 0
		}
	}
}

// release opens a pass for the workers: the pass kind is published
// first, pending re-armed, then the generation bump releases spinning
// workers (the atomic bump orders every serial-section write before it,
// arena growth from leases included) and parked workers get a wake
// token.
func (pr *parRun) release(mode, workers int) {
	pr.mode = mode
	pr.pending.Store(int64(workers))
	pr.gen.Add(1)
	for w := range pr.parked {
		if pr.parked[w].Load() {
			select {
			case pr.wake[w] <- struct{}{}:
			default:
			}
		}
	}
}

// await blocks the coordinator until every worker finished the pass.
func (pr *parRun) await() {
	for spin := 0; pr.pending.Load() != 0; spin++ {
		if spin >= pr.spin {
			runtime.Gosched()
		}
	}
}

// stepParallel advances one cycle under the domain decomposition. The
// common shape (no OnEject callback) is the single-barrier fused cycle:
//
//	fused pass (parallel)  ejection → switch+inject → link per shard;
//	                       ejection/stat completions and cross-shard
//	                       deliveries deferred, undecidable boundary
//	                       ports queued for replay
//	barrier     (serial)   ejection replay, deferred boundary-port
//	                       replays, mailbox applies, stats replay,
//	                       cycle close, snapshot refresh
//
// With an OnEject callback the replies must inject the same cycle, so
// the ejection span splits off and the cycle pays a second barrier:
//
//	ejection pass (parallel) → barrier: replay (stats → OnEject →
//	recycle) → fused switch+inject+link pass (parallel) → barrier:
//	cycle-end serial section as above
func (n *Network) stepParallel() {
	n.moved = false
	if len(n.shards) == 1 {
		// Degenerate single-shard decomposition: same machinery minus
		// the workers and barriers — still exercises the deferred-replay
		// paths.
		s := &n.shards[0]
		n.parEject(s)
		n.replayEjections()
		n.parSwitchInject(s)
		n.parLink(s)
		n.finishParallelCycle()
		return
	}
	if n.pr == nil {
		n.startWorkers()
	}
	pr := n.pr
	workers := len(n.shards) - 1
	s0 := &n.shards[0]
	if n.onEject == nil {
		pr.release(passFused, workers)
		n.parEject(s0)
		n.parSwitchInject(s0)
		n.parLink(s0)
		pr.await()
		n.barriers++
		n.replayEjections()
	} else {
		pr.release(passEject, workers)
		n.parEject(s0)
		pr.await()
		n.barriers++
		n.replayEjections()
		pr.release(passRest, workers)
		n.parSwitchInject(s0)
		n.parLink(s0)
		pr.await()
		n.barriers++
	}
	n.finishParallelCycle()
}

// parEject mirrors activeEject over one shard's ejection worklist,
// deferring every tail-ejection completion: the pops, mask updates and
// per-packet receive accounting are shard-local (a packet's flits all
// eject at its unique destination), while statistics, the OnEject
// callback and the arena recycle run in the serial replay.
func (n *Network) parEject(s *parShard) {
	vcs := n.alg.VCs()
	a := &n.arena
	tail := a.pktLen - 1
	s.wl.ej.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			return
		}
		slots := np * vcs
		rrEj := int(n.modTab[slots])
		for k := 0; k < slots && budget > 0; k++ {
			sl := rrEj + k
			if sl >= slots {
				sl -= slots
			}
			p := r.in[sl/vcs]
			vc := sl % vcs
			if !r.ejOcc.test(p.slotBase + vc) {
				continue
			}
			for budget > 0 && !p.empty(vc) && a.dst[p.head(vc).pkt()] == int32(r.node) {
				h := n.inPop(&s.wl, node, r, p, vc)
				pi := h.pkt()
				n.telEj[node]++
				budget--
				s.moved = true
				a.recv[pi]++
				if h.seq() == tail {
					s.ej = append(s.ej, pi)
				}
			}
		}
	})
}

// replayEjections applies the deferred ejection completions in shard
// order — which, shards being contiguous and each buffer append-ordered
// by the ascending-node walk, is exactly the serial engines' ejection
// order. Statistics, the OnEject callback (whose reply injections may
// lease from the arena and land in any shard's source worklist) and the
// recycle therefore interleave precisely as in EngineActive. In the
// fused (callback-free) cycle this runs at the cycle-end barrier: no
// lease, recycle or collector event can occur between a tail ejection
// and the barrier, so deferring the completions there is unobservable.
func (n *Network) replayEjections() {
	a := &n.arena
	for i := range n.shards {
		s := &n.shards[i]
		for _, pi := range s.ej {
			n.ejected++
			n.col.PacketEjected(n.cycle, a.created[pi], a.injected[pi], a.pktLen, int(a.hops[pi]))
			if n.onEject != nil {
				n.materializePacket(&n.ejView, pi)
				n.onEject(&n.ejView)
			}
			n.recyclePacket(pi)
		}
		s.ej = s.ej[:0]
	}
}

// parSwitchInject runs the switch-traversal and injection phases over
// one shard. Fusing them into one span is sound because both phases
// read and write only the state of the visited router and its NI — the
// serial engines' global phase boundary orders nothing that two
// different routers could observe.
func (n *Network) parSwitchInject(s *parShard) {
	vcs := n.alg.VCs()
	s.wl.sw.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		np := len(r.in)
		rrIn := int(n.modTab[np])
		for k := 0; k < np; k++ {
			p := r.in[(rrIn+k)%np]
			occ := r.inOcc.port(p.slotBase, vcs) &^ r.ejOcc.port(p.slotBase, vcs)
			if occ == 0 {
				continue
			}
			if n.switchPort(&s.wl, r, p, occ, vcs) {
				s.moved = true
			}
		}
	})
	n.parInject(s)
}

// parInject mirrors activeInject over one shard's sources, deferring
// the collector events (packet acceptances, source-blocked cycles) to
// the end-of-cycle replay; everything else — source queue, worm state,
// the output-queue pushes, the packet's injection stamp (its source is
// unique to this shard) — is local to the shard.
func (n *Network) parInject(s *parShard) {
	a := &n.arena
	s.wl.ni.forEach(func(node int) {
		q := n.nis[node]
		r := n.routers[node]
		s.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending < 0 {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pi := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pi, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %s",
						n.alg.Name(), d.Dir, node, n.pktString(pi)))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc) {
					ovc.owner = pi
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					s.stats = append(s.stats, statRecord{})
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				s.stats = append(s.stats, statRecord{})
				break
			}
			h := mkFlit(pi, q.nextSeq, q.route.vc)
			a.lastMove[a.flitIndex(h)] = n.cycle + 1
			n.outPush(&s.wl, node, r, q.route.port, q.route.vc, h)
			n.telInj[node]++
			s.moved = true
			q.nextSeq++
			budget--
			if h.seq() == 0 {
				a.injected[pi] = n.cycle
				s.stats = append(s.stats, statRecord{injected: true, flits: a.pktLen})
			}
			if h.seq() == a.pktLen-1 {
				ovc.owner = -1
				q.sending = -1
				q.route = routeEntry{}
			}
		}
		if q.sending < 0 && q.queue.len() == 0 {
			s.wl.ni.remove(node)
		}
	})
}

// parLink mirrors activeLink over one shard's link worklist. Arrivals
// into a router of the same shard are applied directly with exact
// occupancy checks (all of this shard's pops already ran in the fused
// pass, and no other shard pushes into this shard's input slots).
// Cross-shard arrivals use the speculative snapshot discipline of
// parLinkPort.
func (n *Network) parLink(s *parShard) {
	vcs := n.alg.VCs()
	rrVC := int(n.modTab[vcs]) // every port has alg.VCs() queues
	s.wl.out.forEach(func(node int) {
		r := n.routers[node]
		s.visits++
		for _, op := range r.out {
			occ := r.outOcc.port(op.slotBase, vcs)
			if occ == 0 {
				continue
			}
			n.parLinkPort(s, node, r, op, occ, vcs, rrVC)
		}
	})
}

// parLinkPort mirrors linkPort under the fused pass. For a same-shard
// destination the downstream fullness read is exact (see parLink). For
// a cross-shard destination the decision consults the cycle-start
// snapshot (outPort.downFull): a clear bit proves the slot still has
// room at the serial decision point (its occupancy can only have
// shrunk — the single producer is this port), so the flit is delivered
// speculatively into the pair mailbox; a set bit means the owner's
// pops this cycle decide, so the whole port defers to the barrier's
// exact replay. Both reproduce the serial round-robin outcome exactly.
func (n *Network) parLinkPort(s *parShard, node int, r *router, op *outPort, occ uint64, vcs, rr int) {
	a := &n.arena
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		h := v.head()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		dst := op.ch.Dst
		if t := int(n.shardOf[dst]); t != s.idx {
			if op.downFull&(1<<uint(vi)) != 0 {
				// Undecidable locally: the slot was full when the cycle
				// started and only its owner knows whether this cycle's
				// pops made room. Defer the whole port (nothing was
				// popped, so the barrier replay re-runs the identical
				// round-robin scan against exact state).
				s.defers = append(s.defers, bport{node: int32(node), op: op})
				return
			}
			n.outPop(&s.wl, node, r, op, vi)
			a.lastMove[fi] = n.cycle + 1
			if h.seq() == 0 {
				a.hops[h.pkt()]++
			}
			n.linkFlits[op.ch.ID]++
			s.outbox[t] = append(s.outbox[t], pushRecord{node: dst, p: op.peer, vc: vi, h: h})
			s.moved = true
			return // one flit per physical link per cycle
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&s.wl, node, r, op, vi)
		a.lastMove[fi] = n.cycle + 1
		if h.seq() == 0 {
			a.hops[h.pkt()]++
		}
		n.linkFlits[op.ch.ID]++
		n.inPush(&s.wl, dst, op.peerRouter, ip, vi, h)
		s.moved = true
		return // one flit per physical link per cycle
	}
}

// replayDeferredLinks re-runs, in canonical order, the round-robin scan
// of every boundary port whose decision was deferred, now against exact
// downstream occupancy (all shards' pops are done; the only producer of
// each examined slot is the deferred port itself, which moved nothing).
// Link decisions are pairwise independent — each reads its own output
// queue and its unique downstream slot — so replaying them after the
// barrier instead of inside the serial engine's link sweep changes no
// outcome.
func (n *Network) replayDeferredLinks() {
	vcs := n.alg.VCs()
	rr := int(n.modTab[vcs])
	for i := range n.shards {
		s := &n.shards[i]
		for _, bp := range s.defers {
			n.sreplays++
			n.replayBoundaryPort(s, int(bp.node), bp.op, vcs, rr)
		}
		s.defers = s.defers[:0]
	}
}

// replayBoundaryPort is the exact (serial-section) form of parLinkPort
// for one deferred port, pushing straight into the owning shard's
// worklists.
func (n *Network) replayBoundaryPort(s *parShard, node int, op *outPort, vcs, rr int) {
	a := &n.arena
	r := n.routers[node]
	occ := r.outOcc.port(op.slotBase, vcs)
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		h := v.head()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&s.wl, node, r, op, vi)
		a.lastMove[fi] = n.cycle + 1
		if h.seq() == 0 {
			a.hops[h.pkt()]++
		}
		n.linkFlits[op.ch.ID]++
		dst := op.ch.Dst
		n.inPush(&n.shards[n.shardOf[dst]].wl, dst, op.peerRouter, ip, vi, h)
		n.moved = true
		return // one flit per physical link per cycle
	}
}

// refreshBoundarySnapshots recomputes every boundary port's downstream
// per-VC fullness snapshot from the buffers. It runs in the serial
// section at each cycle close (and on any rebuild), after all pops,
// mailbox applies and deferred replays — i.e. at exactly the instant
// the next cycle's speculation treats as "cycle start".
func (n *Network) refreshBoundarySnapshots() {
	bufCap := n.cfg.InBufCap
	for i := range n.shards {
		s := &n.shards[i]
		for _, bp := range s.bports {
			ip := bp.op.peer
			var full uint64
			for vc := range ip.bufs {
				if ip.bufs[vc].len() >= bufCap {
					full |= 1 << uint(vc)
				}
			}
			bp.op.downFull = full
		}
	}
}

// finishParallelCycle is the end-of-cycle serial section: replay the
// deferred boundary-port decisions exactly, apply the speculative
// cross-shard arrivals from the per-pair mailboxes in canonical order,
// replay the deferred injection statistics, merge the per-shard scratch
// counters, close the cycle exactly as stepActive does, and refresh the
// boundary snapshots for the next cycle's speculation.
func (n *Network) finishParallelCycle() {
	n.replayDeferredLinks()
	for t := range n.shards {
		wl := &n.shards[t].wl
		for i := range n.shards {
			s := &n.shards[i]
			box := s.outbox[t]
			for _, rec := range box {
				n.inPush(wl, rec.node, n.routers[rec.node], rec.p, rec.vc, rec.h)
			}
			s.outbox[t] = box[:0]
		}
	}
	for i := range n.shards {
		s := &n.shards[i]
		for _, st := range s.stats {
			if st.injected {
				n.injected++
				n.col.PacketInjected(n.cycle, st.flits)
			} else {
				n.col.SourceBlocked(n.cycle)
			}
		}
		s.stats = s.stats[:0]
		if s.moved {
			n.moved = true
			s.moved = false
		}
		n.visits += s.visits
		s.visits = 0
	}
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
	for _, d := range n.modDivs {
		v := n.modTab[d] + 1
		if v == uint32(d) {
			v = 0
		}
		n.modTab[d] = v
	}
	n.refreshBoundarySnapshots()
}

// checkParallelInvariants proves the cross-shard bookkeeping the
// parallel engine adds on top of the per-node worklist invariants: the
// shard ranges tile the node space as the pure assignment function
// dictates, no shard's worklists hold a node outside its range (a
// foreign member would be drained by the wrong goroutine), the
// precomputed boundary-port lists name exactly the cross-shard output
// ports in canonical order with downstream snapshots that match the
// buffers, and — at every cycle boundary — the deferred-effect buffers
// and every per-pair mailbox are empty and the scratch counters merged,
// so no packet, credit or statistic is parked between shards. Together
// with CheckConservation's global packet and arena accounting this
// proves cross-shard conservation: every flit that left one shard's
// output queue arrived in the owning shard's input bookkeeping the same
// cycle.
func (n *Network) checkParallelInvariants() error {
	nodes := n.topo.Nodes()
	k := n.shardCount
	if k < 1 || len(n.shards) != k {
		return fmt.Errorf("noc: parallel engine with %d shards configured but %d built", k, len(n.shards))
	}
	for i := range n.shards {
		s := &n.shards[i]
		if s.lo != i*nodes/k || s.hi != (i+1)*nodes/k {
			return fmt.Errorf("noc: shard %d covers [%d,%d), want [%d,%d)", i, s.lo, s.hi, i*nodes/k, (i+1)*nodes/k)
		}
		for _, set := range []struct {
			name string
			s    *activeSet
		}{{"ejection", &s.wl.ej}, {"switch", &s.wl.sw}, {"link", &s.wl.out}, {"injection", &s.wl.ni}} {
			bad := -1
			set.s.forEach(func(v int) {
				if (v < s.lo || v >= s.hi) && bad < 0 {
					bad = v
				}
			})
			if bad >= 0 {
				return fmt.Errorf("noc: node %d on shard %d's %s worklist but owned by shard %d",
					bad, i, set.name, n.shardOf[bad])
			}
		}
		if len(s.ej) != 0 || len(s.stats) != 0 || len(s.defers) != 0 {
			return fmt.Errorf("noc: shard %d holds unreplayed deferred effects at a cycle boundary (%d ejections, %d stats, %d deferred link ports)",
				i, len(s.ej), len(s.stats), len(s.defers))
		}
		if len(s.outbox) != k {
			return fmt.Errorf("noc: shard %d has %d mailboxes for %d shards", i, len(s.outbox), k)
		}
		for t := range s.outbox {
			if len(s.outbox[t]) != 0 {
				return fmt.Errorf("noc: shard %d->%d mailbox holds %d undelivered link arrivals at a cycle boundary",
					i, t, len(s.outbox[t]))
			}
		}
		// The boundary-port list must be exactly the shard's cross-shard
		// output ports in canonical (ascending node, port) order, and
		// each snapshot must equal the buffer-derived fullness — a stale
		// snapshot would let the next cycle speculate wrongly.
		bi := 0
		for v := s.lo; v < s.hi; v++ {
			for _, op := range n.routers[v].out {
				if int(n.shardOf[op.ch.Dst]) == i {
					continue
				}
				if bi >= len(s.bports) || s.bports[bi].op != op || int(s.bports[bi].node) != v {
					return fmt.Errorf("noc: shard %d boundary-port list out of order or incomplete at node %d", i, v)
				}
				ip := op.peer
				var full uint64
				for vc := range ip.bufs {
					if ip.bufs[vc].len() >= n.cfg.InBufCap {
						full |= 1 << uint(vc)
					}
				}
				if op.downFull != full {
					return fmt.Errorf("noc: boundary port %d->%d snapshot %#x disagrees with downstream buffers %#x",
						v, op.ch.Dst, op.downFull, full)
				}
				bi++
			}
		}
		if bi != len(s.bports) {
			return fmt.Errorf("noc: shard %d lists %d boundary ports, geometry has %d", i, len(s.bports), bi)
		}
		if s.visits != 0 || s.moved {
			return fmt.Errorf("noc: shard %d scratch counters not merged at a cycle boundary", i)
		}
	}
	for v := 0; v < nodes; v++ {
		if want := ((v+1)*k - 1) / nodes; int(n.shardOf[v]) != want {
			return fmt.Errorf("noc: shardOf[%d] = %d, want %d", v, n.shardOf[v], want)
		}
	}
	return nil
}
