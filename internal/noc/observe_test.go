package noc

import (
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

func TestChannelTraversalCounts(t *testing.T) {
	// One packet 0 -> 2 on a ring: 6 flits over channels 0->1 and 1->2.
	net := newRingNet(t, 8)
	if err := net.Inject(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Drain(200); err != nil {
		t.Fatal(err)
	}
	tr := net.ChannelTraversals()
	c01, _ := topology.ChannelBetween(net.Topology(), 0, 1)
	c12, _ := topology.ChannelBetween(net.Topology(), 1, 2)
	if tr[c01.ID] != 6 || tr[c12.ID] != 6 {
		t.Fatalf("traversals = %d,%d, want 6,6", tr[c01.ID], tr[c12.ID])
	}
	// No other channel moved a flit.
	total := uint64(0)
	for _, v := range tr {
		total += v
	}
	if total != 12 {
		t.Fatalf("total traversals = %d, want 12", total)
	}
}

func TestChannelUtilizationBounds(t *testing.T) {
	net := newSpidergonNet(t, 8, DefaultConfig())
	rng := newTestRNG(3)
	for c := 0; c < 1000; c++ {
		if rng.next()%5 == 0 {
			src, dst := int(rng.next()%8), int(rng.next()%8)
			if src != dst {
				_ = net.Inject(src, dst)
			}
		}
		net.Step()
	}
	for id, u := range net.ChannelUtilization() {
		if u < 0 || u > 1 {
			t.Fatalf("channel %d utilisation %v out of [0,1]", id, u)
		}
	}
	s := net.Utilization()
	if s.Max < s.Mean || s.Mean <= 0 {
		t.Fatalf("summary inconsistent: %+v", s)
	}
	if s.P90 < s.P50 {
		t.Fatalf("quantiles inverted: %+v", s)
	}
}

func TestHotspotConcentratesUtilization(t *testing.T) {
	// Under hot-spot traffic the max channel (into the target) carries
	// far more than the mean — the paper's destination bottleneck made
	// visible per link.
	net := newSpidergonNet(t, 12, DefaultConfig())
	rng := newTestRNG(7)
	const target = 5
	for c := 0; c < 4000; c++ {
		for node := 0; node < 12; node++ {
			if node != target && rng.next()%40 == 0 {
				_ = net.Inject(node, target)
			}
		}
		net.Step()
	}
	s := net.Utilization()
	if s.Max < 3*s.Mean {
		t.Fatalf("no concentration: max %v vs mean %v", s.Max, s.Mean)
	}
	if s.MaxChannel.Dst != target {
		t.Fatalf("hottest channel %v does not enter the hot-spot", s.MaxChannel)
	}
}

func TestOnEjectCallback(t *testing.T) {
	net := newRingNet(t, 8)
	var seen []uint64
	net.OnEject(func(p *Packet) { seen = append(seen, p.ID) })
	_ = net.Inject(0, 3)
	_ = net.Inject(1, 5)
	if err := net.Drain(500); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("callback ran %d times", len(seen))
	}
	net.OnEject(nil) // clearing must not panic on next ejection
	_ = net.Inject(0, 3)
	if err := net.Drain(500); err != nil {
		t.Fatal(err)
	}
}

func TestOnEjectCanInjectReplies(t *testing.T) {
	// Request-reply through the callback: every delivered packet to
	// node 3 triggers a reply to its source.
	net := newSpidergonNet(t, 8, DefaultConfig())
	replies := 0
	net.OnEject(func(p *Packet) {
		if p.Dst == 3 && p.Src != 3 {
			replies++
			if err := net.Inject(3, p.Src); err != nil {
				t.Errorf("reply injection: %v", err)
			}
		}
	})
	for i := 0; i < 10; i++ {
		_ = net.Inject(0, 3)
	}
	if err := net.Drain(5000); err != nil {
		t.Fatal(err)
	}
	if replies != 10 {
		t.Fatalf("replies = %d", replies)
	}
	if net.EjectedPackets() != 20 { // 10 requests + 10 replies
		t.Fatalf("ejected = %d, want 20", net.EjectedPackets())
	}
}

func TestOccupancySnapshot(t *testing.T) {
	net := newRingNet(t, 8)
	for i := 0; i < 5; i++ {
		_ = net.Inject(0, 4)
	}
	net.StepN(3)
	occ := net.OccupancySnapshot()
	total := 0
	for _, v := range occ {
		total += v
	}
	if total != net.InFlightFlits() {
		t.Fatalf("snapshot sum %d != in-flight %d", total, net.InFlightFlits())
	}
}

func TestAdaptiveWestFirstNetwork(t *testing.T) {
	// End-to-end: west-first adaptive routing on a mesh network
	// delivers everything, never deadlocks, and under a skewed load
	// spreads eastbound traffic across both minimal dimensions.
	m := topology.MustMesh(4, 4)
	alg, err := routing.NewMeshWestFirst(m)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(m, alg, DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRNG(11)
	for c := 0; c < 3000; c++ {
		for node := 0; node < 16; node++ {
			if rng.next()%20 == 0 {
				dst := int(rng.next() % 16)
				if dst != node {
					_ = net.Inject(node, dst)
				}
			}
		}
		net.Step()
		if net.IdleCycles() > 100 && net.InFlightFlits() > 0 {
			t.Fatal("adaptive mesh deadlocked")
		}
	}
	if err := net.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != net.CreatedPackets() {
		t.Fatalf("delivered %d of %d", net.EjectedPackets(), net.CreatedPackets())
	}
}

func TestAdaptiveSpreadsLoadVsXY(t *testing.T) {
	// Heavy corner-to-corner eastbound flow: adaptive west-first should
	// use at least as many distinct channels as deterministic XY.
	run := func(adaptive bool) int {
		m := topology.MustMesh(4, 4)
		var alg routing.Algorithm
		if adaptive {
			a, err := routing.NewMeshWestFirst(m)
			if err != nil {
				t.Fatal(err)
			}
			alg = a
		} else {
			alg = routing.NewMeshXY(m)
		}
		net, err := NewNetwork(m, alg, DefaultConfig(), stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2000; c++ {
			_ = net.Inject(0, 15)
			_ = net.Inject(1, 15)
			net.Step()
		}
		used := 0
		for _, v := range net.ChannelTraversals() {
			if v > 0 {
				used++
			}
		}
		return used
	}
	xy, wf := run(false), run(true)
	if wf < xy {
		t.Fatalf("adaptive used %d channels, xy used %d", wf, xy)
	}
}
