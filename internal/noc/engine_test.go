package noc

import (
	"fmt"
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// enginePair builds two identical networks, one per engine, over a
// 16-node spidergon (or the given topology).
func enginePair(t *testing.T, topo topology.Topology, alg routing.Algorithm, cfg Config) (active, sweep *Network) {
	t.Helper()
	var err error
	active, err = NewNetwork(topo, alg, cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err = NewNetwork(topo, alg, cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	sweep.SetEngine(EngineSweep)
	return active, sweep
}

// stateFingerprint summarises everything observable about a network at
// one cycle boundary: the packet counters, per-channel traversals, and
// per-node buffer occupancy.
func stateFingerprint(n *Network) string {
	return fmt.Sprintf("cycle=%d created=%d injected=%d ejected=%d queued=%d inflight=%d idle=%d links=%v occ=%v",
		n.Cycle(), n.CreatedPackets(), n.InjectedPackets(), n.EjectedPackets(),
		n.QueuedPackets(), n.InFlightFlits(), n.IdleCycles(), n.ChannelTraversals(), n.OccupancySnapshot())
}

// The active engine must track the sweep reference cycle for cycle,
// not just at the end of a run: any divergence in arbitration order
// shows up in the buffer occupancy fingerprint the same cycle it
// happens.
func TestEnginesAgreeCycleByCycle(t *testing.T) {
	s := topology.MustSpidergon(16)
	a, b := enginePair(t, s, routing.NewSpidergonRouting(s), DefaultConfig())
	rng := sim.NewRNG(7)
	for cycle := 0; cycle < 4000; cycle++ {
		if rng.Bernoulli(0.3) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				if err := a.Inject(src, dst); err != nil {
					t.Fatal(err)
				}
				if err := b.Inject(src, dst); err != nil {
					t.Fatal(err)
				}
			}
		}
		a.Step()
		b.Step()
		if fa, fb := stateFingerprint(a), stateFingerprint(b); fa != fb {
			t.Fatalf("engines diverged at cycle %d:\nactive: %s\nsweep:  %s", cycle, fa, fb)
		}
		// The worklist-load gauge must agree with the sweep engine's
		// buffer walk at every instant.
		if na, nb := a.ActiveNodes(), b.ActiveNodes(); na != nb {
			t.Fatalf("cycle %d: ActiveNodes %d (active) vs %d (sweep)", cycle, na, nb)
		}
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if err := b.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if fa, fb := stateFingerprint(a), stateFingerprint(b); fa != fb {
		t.Fatalf("engines diverged after drain:\nactive: %s\nsweep:  %s", fa, fb)
	}
}

// Fuzz-style equivalence: random topologies, switching modes, buffer
// geometries, interface rates and injection streams must never
// separate the two engines. Each trial also proves the worklist
// invariants via CheckConservation.
func TestEnginesAgreeRandomized(t *testing.T) {
	master := sim.NewRNG(42)
	for trial := 0; trial < 12; trial++ {
		rng := master.Split()
		var topo topology.Topology
		var alg routing.Algorithm
		switch rng.Intn(3) {
		case 0:
			r := topology.MustRing(8 + 2*rng.Intn(5))
			topo, alg = r, routing.NewRingRouting(r)
		case 1:
			s := topology.MustSpidergon(8 + 4*rng.Intn(3))
			topo, alg = s, routing.NewSpidergonRouting(s)
		default:
			m := topology.MustMesh(3+rng.Intn(2), 3+rng.Intn(2))
			topo, alg = m, routing.NewMeshXY(m)
		}
		cfg := DefaultConfig()
		cfg.PacketLen = 2 + rng.Intn(6)
		cfg.OutBufCap = 1 + rng.Intn(6)
		cfg.SinkRate = 1 + rng.Intn(2)
		cfg.InjectRate = 1 + rng.Intn(2)
		if rng.Bernoulli(0.5) {
			cfg.Switching = VirtualCutThrough
			if cfg.OutBufCap < cfg.PacketLen {
				cfg.OutBufCap = cfg.PacketLen
			}
		}
		name := fmt.Sprintf("trial %d (%s, %v)", trial, topo.Name(), cfg)
		a, b := enginePair(t, topo, alg, cfg)
		n := topo.Nodes()
		rate := 0.05 + 0.4*rng.Float64()
		for cycle := 0; cycle < 1500; cycle++ {
			if rng.Bernoulli(rate) {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src != dst {
					_ = a.Inject(src, dst)
					_ = b.Inject(src, dst)
				}
			}
			a.Step()
			b.Step()
		}
		if fa, fb := stateFingerprint(a), stateFingerprint(b); fa != fb {
			t.Fatalf("%s: engines diverged:\nactive: %s\nsweep:  %s", name, fa, fb)
		}
		if err := a.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// SkipTo must be exactly equivalent to stepping an idle network: both
// engines, fast-forwarded across a quiescent gap, must agree with a
// twin that stepped through it — round-robin pointers included (the
// injections after the gap land differently if any pointer drifts).
func TestSkipToMatchesIdleStepping(t *testing.T) {
	for _, eng := range []Engine{EngineActive, EngineSweep, EngineParallel} {
		s := topology.MustSpidergon(16)
		skip, step := enginePair(t, s, routing.NewSpidergonRouting(s), DefaultConfig())
		if eng == EngineParallel {
			skip.SetShards(3)
			step.SetShards(3)
			defer skip.StopWorkers()
			defer step.StopWorkers()
		}
		skip.SetEngine(eng)
		step.SetEngine(eng)
		load := func(n *Network) {
			for i := 0; i < 5; i++ {
				if err := n.Inject(i, i+7); err != nil {
					t.Fatal(err)
				}
			}
			for c := 0; c < 200; c++ {
				n.Step()
			}
			if !n.Quiescent() {
				t.Fatal("network failed to drain before the gap")
			}
		}
		load(skip)
		load(step)
		skip.SkipTo(skip.Cycle() + 777)
		for c := 0; c < 777; c++ {
			step.Step()
		}
		load(skip)
		load(step)
		if fa, fb := stateFingerprint(skip), stateFingerprint(step); fa != fb {
			t.Fatalf("%v: SkipTo diverged from idle stepping:\nskip: %s\nstep: %s", eng, fa, fb)
		}
	}
}

// The worklist invariant checker must actually catch a stranded flit.
func TestCheckActiveInvariantsCatchesStranding(t *testing.T) {
	s := topology.MustSpidergon(16)
	net, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, 5); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		net.Step()
	}
	if net.InFlightFlits() == 0 {
		t.Fatal("expected in-flight flits")
	}
	// Knock every router off the worklists behind the engine's back.
	net.wl.ej.clear()
	net.wl.sw.clear()
	net.wl.out.clear()
	if err := net.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a stranded flit")
	}
}
