package noc

import (
	"sort"

	"gonoc/internal/topology"
)

// This file adds the observability surface of the network: per-channel
// utilisation counters, queue-occupancy snapshots, and the ejection
// callback that closed-loop (request/reply) traffic models hook into.

// OnEject registers fn to run whenever a packet's tail flit is consumed
// at its destination, after statistics are recorded. Callbacks may
// inject new packets (e.g. replies); they run inside Step, in ejection
// order. The packet is recycled onto the network's freelist when the
// callback returns, so callbacks must copy out any fields they need
// (ID, endpoints, cycles) rather than retain the *Packet. Passing nil
// clears the callback.
func (n *Network) OnEject(fn func(p *Packet)) { n.onEject = fn }

// ChannelTraversals returns, indexed by channel ID, the number of flit
// link traversals since construction (warm-up included; divide by
// Cycle() for utilisation, or use ChannelUtilization).
func (n *Network) ChannelTraversals() []uint64 {
	out := make([]uint64, len(n.linkFlits))
	copy(out, n.linkFlits)
	return out
}

// ChannelUtilization returns per-channel flits/cycle since
// construction — each channel moves at most one flit per cycle, so
// values are in [0, 1].
func (n *Network) ChannelUtilization() []float64 {
	out := make([]float64, len(n.linkFlits))
	if n.cycle == 0 {
		return out
	}
	for i, c := range n.linkFlits {
		out[i] = float64(c) / float64(n.cycle)
	}
	return out
}

// UtilizationSummary describes the channel load distribution of a run.
type UtilizationSummary struct {
	// Mean and Max are flits/cycle over all channels.
	Mean, Max float64
	// MaxChannel is the channel achieving Max.
	MaxChannel topology.Channel
	// P50 and P90 are utilisation quantiles across channels.
	P50, P90 float64
}

// Utilization summarises the channel load distribution: under hot-spot
// traffic the maximum concentrates on the target's incoming links
// while the mean stays low — the imbalance behind Figures 6-9.
func (n *Network) Utilization() UtilizationSummary {
	u := n.ChannelUtilization()
	if len(u) == 0 {
		return UtilizationSummary{}
	}
	var s UtilizationSummary
	maxI := 0
	sum := 0.0
	for i, v := range u {
		sum += v
		if v > u[maxI] {
			maxI = i
		}
	}
	s.Mean = sum / float64(len(u))
	s.Max = u[maxI]
	s.MaxChannel = n.topo.Channels()[maxI]
	sorted := make([]float64, len(u))
	copy(sorted, u)
	sort.Float64s(sorted)
	s.P50 = sorted[len(sorted)/2]
	s.P90 = sorted[(len(sorted)*9)/10]
	return s
}

// PerfStats is the engine's deterministic work accounting: how many
// worklist (or sweep) visits the phase loops performed and how many
// idle cycles were fast-forwarded. Both counters are pure functions of
// the scenario — independent of wall clock, host, and parallelism — so
// the perf-regression gate (make bench-check) can compare them against
// a committed baseline without cross-machine noise.
type PerfStats struct {
	// Engine names the Step implementation that produced the counters.
	Engine string
	// RouterVisits counts per-phase router/source visits: the sweep
	// engine pays 4×N every cycle, the active engine only for nodes
	// holding work.
	RouterVisits uint64
	// SkippedCycles counts cycles advanced by SkipTo instead of Step.
	SkippedCycles uint64
	// LiveStateBytes is the resident footprint of the live simulation
	// state at sampling time (see Network.LiveStateBytes). Length-based
	// and allocator-independent, so it is gateable like the counters.
	LiveStateBytes uint64
	// Barriers counts worker-group barriers crossed by the parallel
	// engine: one per multi-shard cycle in the fused single-barrier
	// shape, two when an OnEject callback forces the ejection split,
	// zero for the serial engines and the single-shard decomposition.
	// Deterministic, so the perf gate pins the synchronization budget.
	Barriers uint64
	// SerialReplayVisits counts cross-shard boundary ports whose link
	// decision was replayed in the cycle-end serial section. Retired by
	// the credit discipline — every boundary decision now resolves
	// inside the pass, so this stays 0 — but kept (and gated at 0 in
	// bench-baseline.json) as a strict regression guard: any future
	// change that reintroduces serial replay fails the perf gate.
	SerialReplayVisits uint64
	// SpeculativeDeliveries counts cross-shard flits delivered on an
	// unexpired cycle-start credit — the fraction of boundary traffic
	// that required no synchronization at all. Deterministic: whether a
	// port holds a credit depends only on the previous barrier's buffer
	// occupancy, never on timing.
	SpeculativeDeliveries uint64
	// CreditDefers counts zero-credit boundary link decisions: the port
	// waited for the downstream shard's pops-done mark and re-read
	// exact occupancy inside the pass. The deterministic measure of
	// residual cross-shard coupling (successor of SerialReplayVisits).
	CreditDefers uint64
}

// Perf returns the engine work counters accumulated so far.
func (n *Network) Perf() PerfStats {
	return PerfStats{
		Engine:                n.engine.String(),
		RouterVisits:          n.visits,
		SkippedCycles:         n.skipped,
		LiveStateBytes:        n.LiveStateBytes(),
		Barriers:              n.barriers,
		SerialReplayVisits:    n.sreplays,
		SpeculativeDeliveries: n.specs,
		CreditDefers:          n.cdefers,
	}
}

// ActiveNodes reports how many routers currently hold buffered flits
// (input or output side) — the instantaneous worklist load the active
// engine's cycle cost is proportional to. The sweep engine does not
// maintain the occupancy masks, so it falls back to walking the
// buffers.
func (n *Network) ActiveNodes() int {
	c := 0
	for _, r := range n.routers {
		if n.engine == EngineSweep {
			if r.bufferedFlits() > 0 {
				c++
			}
			continue
		}
		if r.inOcc.any() || r.outOcc.any() {
			c++
		}
	}
	return c
}

// TelemetryView exposes the network's telemetry probe counters: Occ is
// the flits currently resident in each router's buffers, Inj/Ej the
// cumulative flits injected by / ejected at each node since
// construction (or Reset), and Link the cumulative flit traversals per
// channel ID. The slices alias live network state — read them only
// between Step calls (e.g. from a ticker phase) and never mutate or
// retain them across a Reset. All four are maintained incrementally by
// every engine, so reading them costs nothing beyond the loads.
type TelemetryView struct {
	Occ  []int32
	Inj  []uint64
	Ej   []uint64
	Link []uint64
}

// Telemetry returns the live probe counters; see TelemetryView.
func (n *Network) Telemetry() TelemetryView {
	return TelemetryView{Occ: n.telOcc, Inj: n.telInj, Ej: n.telEj, Link: n.linkFlits}
}

// OccupancySnapshot counts the flits currently buffered per node.
func (n *Network) OccupancySnapshot() []int {
	out := make([]int, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.bufferedFlits()
	}
	return out
}

// congestionView adapts one router to the routing.CongestionView
// contract without importing the routing package (the noc package
// defines the method set structurally).
type congestionView struct {
	r   *router
	cap int
}

// OutputOccupancy returns the number of flits queued in the output
// queue for direction d, virtual channel vc, plus one if the queue is
// currently owned by an in-progress worm (it cannot accept a new head
// even when short). Missing directions report a full queue.
func (v congestionView) OutputOccupancy(d topology.Direction, vc int) int {
	op := v.r.outPortByDir(d)
	if op == nil || vc < 0 || vc >= len(op.vcs) {
		return v.cap + 1
	}
	q := op.vcs[vc]
	occ := q.q.len()
	if q.owner >= 0 {
		occ++
	}
	return occ
}

// OutputFree reports whether a new head flit could be accepted into
// the output queue for direction d, vc right now.
func (v congestionView) OutputFree(d topology.Direction, vc int) bool {
	op := v.r.outPortByDir(d)
	if op == nil || vc < 0 || vc >= len(op.vcs) {
		return false
	}
	q := op.vcs[vc]
	return q.owner < 0 && !q.full(v.cap)
}

// LiveStateBytes reports the resident bytes of the network's live
// simulation state: the packet arena (records, per-flit stamps and the
// free stack), every router's buffered flit handles and per-slot
// bookkeeping (masks, switching entries), and the NI source queues. It
// counts live lengths, not backing capacities, so the figure is a
// deterministic function of the scenario — independent of allocator
// growth policy and Go version — and the perf gate tracks it per router
// as live-bytes/router: the memory-compactness counterpart of the
// visits/cycle work counter, pinning the footprint win of the
// handle-based arena layout against regressions.
func (n *Network) LiveStateBytes() uint64 {
	const (
		handleBytes = 8 // flitH
		indexBytes  = 4 // int32 arena index
	)
	b := n.arena.bytes()
	for _, r := range n.routers {
		for _, p := range r.in {
			for i := range p.bufs {
				b += p.bufs[i].bytes(handleBytes)
			}
			// Per-VC switching entries (flag + port pointer + VC, padded).
			b += uint64(len(p.route)) * 24
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				b += v.q.bytes(handleBytes)
			}
		}
		b += uint64(len(r.inOcc)+len(r.ejOcc)+len(r.outOcc)) * 8
	}
	for _, s := range n.nis {
		b += s.queue.bytes(indexBytes)
	}
	return b
}
