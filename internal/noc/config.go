package noc

import "fmt"

// Switching selects the flow-control discipline. The paper adopts
// wormhole ("the most generally adopted switching scheme") and argues
// it trades off against virtual cut-through and packet (store-and-
// forward) switching; this model implements all three so the trade-off
// is measurable.
type Switching int

// Switching modes.
const (
	// Wormhole forwards flits as soon as the next output queue has one
	// free slot; a blocked worm stalls in place across routers.
	Wormhole Switching = iota
	// VirtualCutThrough forwards like wormhole but admits a packet to
	// an output queue only when the whole packet fits, so a blocked
	// packet always collapses into one router. Requires
	// OutBufCap >= PacketLen.
	VirtualCutThrough
	// StoreAndForward additionally holds every packet until its tail
	// has fully arrived in the local output queue before the head may
	// traverse the link. Requires OutBufCap >= PacketLen.
	StoreAndForward
)

// String returns the conventional name of the mode.
func (s Switching) String() string {
	switch s {
	case Wormhole:
		return "wormhole"
	case VirtualCutThrough:
		return "vct"
	case StoreAndForward:
		return "saf"
	default:
		return fmt.Sprintf("switching(%d)", int(s))
	}
}

// Config carries the buffer geometry and interface rates of the node
// model (figure 4 of the paper). The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// PacketLen is the constant packet size in flits. The paper uses 6.
	PacketLen int
	// OutBufCap is the capacity, in flits, of each output queue
	// (virtual channel). The paper uses 3 ("all output buffers may
	// contain up to three-flits").
	OutBufCap int
	// InBufCap is the capacity of the per-link input buffer. The paper
	// uses 1 ("incoming links have a one-flit buffer").
	InBufCap int
	// SinkRate is the number of flits the destination IP consumes per
	// cycle through its network interface. 1 models the single
	// ejection port whose saturation the paper identifies as the
	// hot-spot bottleneck.
	SinkRate int
	// InjectRate is the number of flits the source IP can push into
	// the network per cycle; 1 models a single injection port.
	InjectRate int
	// SourceQueueCap bounds the IP-memory source queue in packets;
	// 0 means unbounded (the paper's sources are open-loop Poisson,
	// so their queues grow without bound past saturation).
	SourceQueueCap int
	// Switching selects the flow-control discipline (default
	// Wormhole, as in the paper).
	Switching Switching
}

// DefaultConfig returns the paper's parameters: 6-flit packets, 3-flit
// output queues, 1-flit input buffers, and 1-flit/cycle interfaces.
func DefaultConfig() Config {
	return Config{
		PacketLen:  6,
		OutBufCap:  3,
		InBufCap:   1,
		SinkRate:   1,
		InjectRate: 1,
	}
}

// Validate returns an error describing the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.PacketLen < 1:
		return fmt.Errorf("noc: packet length %d < 1", c.PacketLen)
	case c.OutBufCap < 1:
		return fmt.Errorf("noc: output buffer capacity %d < 1", c.OutBufCap)
	case c.InBufCap < 1:
		return fmt.Errorf("noc: input buffer capacity %d < 1", c.InBufCap)
	case c.SinkRate < 1:
		return fmt.Errorf("noc: sink rate %d < 1", c.SinkRate)
	case c.InjectRate < 1:
		return fmt.Errorf("noc: inject rate %d < 1", c.InjectRate)
	case c.SourceQueueCap < 0:
		return fmt.Errorf("noc: source queue capacity %d < 0", c.SourceQueueCap)
	case c.Switching != Wormhole && c.Switching != VirtualCutThrough && c.Switching != StoreAndForward:
		return fmt.Errorf("noc: unknown switching mode %d", int(c.Switching))
	case c.Switching != Wormhole && c.OutBufCap < c.PacketLen:
		return fmt.Errorf("noc: %v switching needs output buffers >= packet length (%d < %d)",
			c.Switching, c.OutBufCap, c.PacketLen)
	default:
		return nil
	}
}
