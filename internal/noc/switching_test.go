package noc

import (
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

func switchingNet(t *testing.T, mode Switching, outBuf int) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Switching = mode
	cfg.OutBufCap = outBuf
	r := topology.MustRing(10)
	net, err := NewNetwork(r, routing.NewRingRouting(r), cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSwitchingString(t *testing.T) {
	if Wormhole.String() != "wormhole" || VirtualCutThrough.String() != "vct" ||
		StoreAndForward.String() != "saf" {
		t.Fatal("switching names")
	}
	if Switching(9).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}

func TestSwitchingValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Switching = VirtualCutThrough // OutBufCap 3 < PacketLen 6
	if cfg.Validate() == nil {
		t.Fatal("VCT with small buffers validated")
	}
	cfg.OutBufCap = 6
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Switching = Switching(42)
	if cfg.Validate() == nil {
		t.Fatal("unknown mode validated")
	}
}

func TestAllModesDeliver(t *testing.T) {
	for _, mode := range []Switching{Wormhole, VirtualCutThrough, StoreAndForward} {
		net := switchingNet(t, mode, 6)
		rng := newTestRNG(21)
		for c := 0; c < 1500; c++ {
			for node := 0; node < 10; node++ {
				if rng.next()%30 == 0 {
					dst := int(rng.next() % 10)
					if dst != node {
						_ = net.Inject(node, dst)
					}
				}
			}
			net.Step()
		}
		if err := net.Drain(100000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if net.EjectedPackets() != net.CreatedPackets() {
			t.Fatalf("%v: delivered %d of %d", mode, net.EjectedPackets(), net.CreatedPackets())
		}
	}
}

// The classical switching result: wormhole and cut-through latency is
// distance + serialization; store-and-forward pays serialization at
// every hop, so its latency grows like hops × packet length.
func TestStoreAndForwardLatencyPenalty(t *testing.T) {
	lat := func(mode Switching) float64 {
		net := switchingNet(t, mode, 6)
		if err := net.Inject(0, 5); err != nil { // 5 hops
			t.Fatal(err)
		}
		if err := net.Drain(1000); err != nil {
			t.Fatal(err)
		}
		return net.Collector().MeanLatency()
	}
	wh := lat(Wormhole)
	vct := lat(VirtualCutThrough)
	saf := lat(StoreAndForward)
	// Unloaded, VCT == wormhole exactly.
	if vct != wh {
		t.Fatalf("unloaded VCT latency %v != wormhole %v", vct, wh)
	}
	// SAF pays ~packetLen per hop: over 5 hops at least 3x wormhole's
	// pipeline latency.
	if saf < 2*wh {
		t.Fatalf("SAF latency %v not clearly above wormhole %v", saf, wh)
	}
	// And the penalty scales with distance: compare 1 hop vs 5 hops.
	one := func(mode Switching) float64 {
		net := switchingNet(t, mode, 6)
		_ = net.Inject(0, 1)
		if err := net.Drain(1000); err != nil {
			t.Fatal(err)
		}
		return net.Collector().MeanLatency()
	}
	if (saf - one(StoreAndForward)) < 3*(wh-one(Wormhole)) {
		t.Fatalf("SAF per-hop penalty not visible: saf %v vs wh %v", saf, wh)
	}
}

// VCT keeps blocked packets inside a single router: under a hot-spot
// jam, wormhole worms straddle multiple routers while VCT packets
// collapse into one queue. Observable difference: with per-packet
// admission VCT needs fewer occupied routers for the same in-flight
// flit count.
func TestVCTCollapsesBlockedPackets(t *testing.T) {
	spread := func(mode Switching) (occupiedRouters int) {
		net := switchingNet(t, mode, 12)
		// Jam the path 0 -> 5 with traffic from several sources.
		for i := 0; i < 30; i++ {
			_ = net.Inject(0, 5)
			_ = net.Inject(1, 5)
			_ = net.Inject(2, 5)
		}
		net.StepN(60)
		for _, occ := range net.OccupancySnapshot() {
			if occ > 0 {
				occupiedRouters++
			}
		}
		return occupiedRouters
	}
	if vct, wh := spread(VirtualCutThrough), spread(Wormhole); vct > wh {
		t.Fatalf("VCT spread %d routers > wormhole %d", vct, wh)
	}
}

func TestSAFTailResidencyRule(t *testing.T) {
	// A store-and-forward head must not cross the link before its tail
	// entered the queue: with a 1-cycle-per-flit injection port, the
	// head waits at least PacketLen-1 extra cycles at the source.
	net := switchingNet(t, StoreAndForward, 6)
	_ = net.Inject(0, 1)
	// After 3 cycles the head has not yet traversed (tail not resident:
	// only ~3 flits injected).
	net.StepN(3)
	if net.Collector().FlitsEjected() != 0 {
		t.Fatal("flit reached sink before the packet was stored")
	}
	hopsDone := func() bool {
		tr := net.ChannelTraversals()
		for _, v := range tr {
			if v > 0 {
				return true
			}
		}
		return false
	}
	if hopsDone() {
		t.Fatal("head departed before tail was resident")
	}
	// By cycle 7 the packet is stored and may depart.
	net.StepN(5)
	if !hopsDone() {
		t.Fatal("stored packet never departed")
	}
	if err := net.Drain(100); err != nil {
		t.Fatal(err)
	}
}
