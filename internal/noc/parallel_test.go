package noc

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// parallelShardCounts is the matrix every parallel test sweeps: the
// degenerate single shard, even splits, and prime counts that do not
// divide the node counts used (so ranges have mixed sizes, down to
// single-router shards at 13-of-16).
var parallelShardCounts = []int{1, 2, 3, 4, 7, 13}

// newParallelNet builds a parallel-engine network with k shards over
// the given fabric, registering worker cleanup with the test.
func newParallelNet(t *testing.T, topo topology.Topology, alg routing.Algorithm, cfg Config, k int) *Network {
	t.Helper()
	n, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	n.SetShards(k)
	n.SetEngine(EngineParallel)
	if n.Engine() != EngineParallel {
		t.Fatal("parallel engine not selected")
	}
	t.Cleanup(n.StopWorkers)
	return n
}

// The parallel engine must track the activity-driven reference cycle
// for cycle at every shard count — any arbitration divergence, worklist
// slip or mis-ordered cross-shard replay shows up in the buffer
// occupancy fingerprint the same cycle it happens. The deterministic
// work counters must match too: the shards visit exactly the nodes the
// serial worklists would.
func TestParallelAgreesCycleByCycle(t *testing.T) {
	for _, k := range parallelShardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			s := topology.MustSpidergon(16)
			ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
			if err != nil {
				t.Fatal(err)
			}
			par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), k)
			rng := sim.NewRNG(7)
			for cycle := 0; cycle < 3000; cycle++ {
				if rng.Bernoulli(0.35) {
					src, dst := rng.Intn(16), rng.Intn(16)
					if src != dst {
						if err := ref.Inject(src, dst); err != nil {
							t.Fatal(err)
						}
						if err := par.Inject(src, dst); err != nil {
							t.Fatal(err)
						}
					}
				}
				ref.Step()
				par.Step()
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d:\nactive:   %s\nparallel: %s", cycle, fa, fb)
				}
				if na, nb := ref.ActiveNodes(), par.ActiveNodes(); na != nb {
					t.Fatalf("cycle %d: ActiveNodes %d (active) vs %d (parallel)", cycle, na, nb)
				}
			}
			if err := par.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if ref.Perf().RouterVisits != par.Perf().RouterVisits {
				t.Fatalf("worklist visits diverged: active %d, parallel %d",
					ref.Perf().RouterVisits, par.Perf().RouterVisits)
			}
			if err := ref.Drain(10000); err != nil {
				t.Fatal(err)
			}
			if err := par.Drain(10000); err != nil {
				t.Fatal(err)
			}
			if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
				t.Fatalf("engines diverged after drain:\nactive:   %s\nparallel: %s", fa, fb)
			}
		})
	}
}

// Fuzz-style equivalence for the parallel engine: random topologies,
// switching modes, buffer geometries, interface rates, injection
// streams and shard counts must never separate it from the
// activity-driven engine. Each trial also proves the worklist and
// cross-shard invariants via CheckConservation.
func TestParallelAgreesRandomized(t *testing.T) {
	master := sim.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		rng := master.Split()
		var topo topology.Topology
		var alg routing.Algorithm
		switch rng.Intn(3) {
		case 0:
			r := topology.MustRing(8 + 2*rng.Intn(5))
			topo, alg = r, routing.NewRingRouting(r)
		case 1:
			s := topology.MustSpidergon(8 + 4*rng.Intn(3))
			topo, alg = s, routing.NewSpidergonRouting(s)
		default:
			m := topology.MustMesh(3+rng.Intn(2), 3+rng.Intn(2))
			topo, alg = m, routing.NewMeshXY(m)
		}
		cfg := DefaultConfig()
		cfg.PacketLen = 2 + rng.Intn(6)
		cfg.OutBufCap = 1 + rng.Intn(6)
		cfg.SinkRate = 1 + rng.Intn(2)
		cfg.InjectRate = 1 + rng.Intn(2)
		if rng.Bernoulli(0.5) {
			cfg.Switching = VirtualCutThrough
			if cfg.OutBufCap < cfg.PacketLen {
				cfg.OutBufCap = cfg.PacketLen
			}
		}
		shards := 1 + rng.Intn(8)
		name := fmt.Sprintf("trial %d (%s, %v, %d shards)", trial, topo.Name(), cfg, shards)
		ref, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		par := newParallelNet(t, topo, alg, cfg, shards)
		n := topo.Nodes()
		rate := 0.05 + 0.4*rng.Float64()
		for cycle := 0; cycle < 1200; cycle++ {
			if rng.Bernoulli(rate) {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src != dst {
					_ = ref.Inject(src, dst)
					_ = par.Inject(src, dst)
				}
			}
			ref.Step()
			par.Step()
		}
		if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
			t.Fatalf("%s: engines diverged:\nactive:   %s\nparallel: %s", name, fa, fb)
		}
		if err := ref.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := par.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Closed-loop traffic is the sharpest test of the deferred ejection
// replay: OnEject fires inside Step and injects replies whose packet
// IDs, pool leases and source-worklist entries must interleave with the
// recycles exactly as under the serial engine — across shards.
func TestParallelOnEjectReplies(t *testing.T) {
	for _, k := range parallelShardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			s := topology.MustSpidergon(16)
			ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
			if err != nil {
				t.Fatal(err)
			}
			par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), k)
			// Every delivered request triggers one reply until the budget
			// drains; both networks see the identical callback logic.
			reply := func(n *Network, budget *int) func(p *Packet) {
				return func(p *Packet) {
					if *budget <= 0 || p.Src == p.Dst {
						return
					}
					*budget--
					_ = n.Inject(p.Dst, p.Src)
				}
			}
			budRef, budPar := 400, 400
			ref.OnEject(reply(ref, &budRef))
			par.OnEject(reply(par, &budPar))
			rng := sim.NewRNG(12)
			for cycle := 0; cycle < 2500; cycle++ {
				if cycle < 600 && rng.Bernoulli(0.3) {
					src, dst := rng.Intn(16), rng.Intn(16)
					if src != dst {
						_ = ref.Inject(src, dst)
						_ = par.Inject(src, dst)
					}
				}
				ref.Step()
				par.Step()
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d:\nactive:   %s\nparallel: %s", cycle, fa, fb)
				}
			}
			if budRef != budPar {
				t.Fatalf("reply budgets diverged: active %d, parallel %d", budRef, budPar)
			}
			if err := par.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if err := ref.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Reset must return a parallel network to a state bit-identical to a
// fresh one (with its workers parked), so campaign workspaces can reuse
// it across replications.
func TestParallelResetReplaysIdentically(t *testing.T) {
	s := topology.MustSpidergon(16)
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	run := func() string {
		rng := sim.NewRNG(5)
		for cycle := 0; cycle < 800; cycle++ {
			if rng.Bernoulli(0.3) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = par.Inject(src, dst)
				}
			}
			par.Step()
		}
		return stateFingerprint(par)
	}
	first := run()
	if err := par.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	par.Reset()
	par.SetEngine(EngineParallel) // Reset keeps the engine; rebuild worklists
	if second := run(); second != first {
		t.Fatalf("post-Reset replay diverged:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// The cross-shard invariant checker must actually catch the failure
// modes it claims to: a stranded node (off every shard worklist), a
// node enrolled in a foreign shard's worklist, and deferred effects
// left unreplayed at a cycle boundary.
func TestParallelInvariantsCatchCorruption(t *testing.T) {
	build := func() *Network {
		s := topology.MustSpidergon(16)
		par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
		if err := par.Inject(0, 9); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			par.Step()
		}
		if par.InFlightFlits() == 0 {
			t.Fatal("expected in-flight flits")
		}
		return par
	}

	par := build()
	for i := range par.shards {
		par.shards[i].wl.ej.clear()
		par.shards[i].wl.sw.clear()
		par.shards[i].wl.out.clear()
	}
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a stranded flit")
	}

	par = build()
	par.shards[0].wl.ni.add(15) // node 15 belongs to shard 3
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a foreign worklist member")
	}

	par = build()
	par.shards[2].stats = append(par.shards[2].stats, statRecord{})
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed an unreplayed deferred effect")
	}

	par = build()
	par.shards[0].outbox[1] = append(par.shards[0].outbox[1], pushRecord{})
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed an undelivered mailbox record")
	}

	par = build()
	par.shards[1].cdefers = 1
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed an unmerged credit-defer scratch counter")
	}

	par = build()
	if len(par.shards[0].bports) == 0 {
		t.Fatal("expected cross-shard boundary ports on shard 0")
	}
	par.shards[0].bports[0].op.credits[0]++
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a stale boundary credit counter")
	}

	par = build()
	par.shards[0].bports[0].op.credits[0] = -1
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a credit overdraft")
	}

	par = build()
	if len(par.shards[1].senders) == 0 {
		t.Fatal("expected inbound senders on shard 1")
	}
	par.shards[1].senders = par.shards[1].senders[:len(par.shards[1].senders)-1]
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a truncated sender list")
	}
}

// The synchronization budget is the tentpole's gated claim: an open-loop
// multi-shard cycle costs exactly ONE barrier, an OnEject cycle exactly
// two (the ejection split), and the single-shard decomposition none.
// SerialReplayVisits must stay zero now that the credit discipline
// resolves every boundary decision inside the pass.
func TestParallelBarrierCounters(t *testing.T) {
	s := topology.MustSpidergon(16)
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	rng := sim.NewRNG(3)
	const open = 500
	for c := 0; c < open; c++ {
		if rng.Bernoulli(0.3) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				_ = par.Inject(src, dst)
			}
		}
		par.Step()
	}
	if got := par.Perf().Barriers; got != open {
		t.Fatalf("open-loop barriers = %d over %d cycles, want exactly 1/cycle", got, open)
	}
	par.OnEject(func(*Packet) {})
	const closed = 200
	for c := 0; c < closed; c++ {
		par.Step()
	}
	if got := par.Perf().Barriers; got != open+2*closed {
		t.Fatalf("barriers = %d after %d OnEject cycles, want %d (2/cycle under the ejection split)",
			got, closed, open+2*closed)
	}

	single := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 1)
	_ = single.Inject(0, 9)
	for c := 0; c < 50; c++ {
		single.Step()
	}
	if got := single.Perf().Barriers; got != 0 {
		t.Fatalf("single-shard decomposition crossed %d barriers, want 0", got)
	}
}

// spinBudget must collapse to zero (straight to Gosched) on a single P,
// grant the full budget when every worker can own a P, and scale down
// with oversubscription.
func TestSpinBudget(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	if got := spinBudget(4); got != 0 {
		t.Fatalf("spinBudget(4) at GOMAXPROCS=1 = %d, want 0", got)
	}
	runtime.GOMAXPROCS(8)
	if runtime.NumCPU() < 8 {
		// Raising GOMAXPROCS past the physical core count must not
		// re-enable spinning: the surplus Ps are time-sliced onto the
		// same cores, so a busy waiter steals the quantum of the worker
		// that would end the wait. NumCPU clamps the parallelism.
		want := spinBudgetAt(min(runtime.NumCPU(), 8), 4)
		if got := spinBudget(4); got != want {
			t.Fatalf("spinBudget(4) at GOMAXPROCS=8 on %d CPUs = %d, want %d (NumCPU-clamped)",
				runtime.NumCPU(), got, want)
		}
		return
	}
	if got := spinBudget(4); got != 4096 {
		t.Fatalf("spinBudget(4) at GOMAXPROCS=8 = %d, want the full 4096", got)
	}
	if got := spinBudget(8); got != 4096 {
		t.Fatalf("spinBudget(8) at GOMAXPROCS=8 = %d, want 4096", got)
	}
	if got := spinBudget(16); got != 2048 {
		t.Fatalf("spinBudget(16) at GOMAXPROCS=8 = %d, want 2048", got)
	}
}

// spinBudgetAt mirrors spinBudget's formula for a given effective
// parallelism, so the clamp assertion states the expected value
// explicitly instead of re-calling the function under test.
func spinBudgetAt(p, shards int) int {
	if p <= 1 {
		return 0
	}
	b := 4096 * p / shards
	if b > 4096 {
		b = 4096
	}
	return b
}

// With a single P, a worker that exhausts its (zero) spin budget must
// yield and park rather than busy-wait — otherwise the coordinator
// never runs and the cycle deadlocks. Driving a 4-shard network to
// completion under GOMAXPROCS=1, bit-identical to the reference, is the
// progress proof; the go test timeout is the failure detector.
func TestParallelProgressAtGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	s := topology.MustSpidergon(16)
	ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	rng := sim.NewRNG(21)
	for cycle := 0; cycle < 600; cycle++ {
		if rng.Bernoulli(0.3) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				_ = ref.Inject(src, dst)
				_ = par.Inject(src, dst)
			}
		}
		ref.Step()
		par.Step()
	}
	if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
		t.Fatalf("engines diverged under GOMAXPROCS=1:\nactive:   %s\nparallel: %s", fa, fb)
	}
	if par.pr == nil {
		t.Fatal("multi-shard stepping never started the worker group")
	}
	if par.pr.spin != 0 {
		t.Fatalf("worker spin budget = %d under GOMAXPROCS=1, want 0", par.pr.spin)
	}
	if err := par.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// Shard-count edges: a request beyond the router count clamps to one
// router per shard, and non-positive requests select the automatic
// width (min(GOMAXPROCS, routers/4)) — all mid-run, all bit-identical.
func TestSetShardsClampAndAuto(t *testing.T) {
	s := topology.MustSpidergon(16)
	ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	rng := sim.NewRNG(17)
	drive := func(cycles int) {
		for c := 0; c < cycles; c++ {
			if rng.Bernoulli(0.3) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = ref.Inject(src, dst)
					_ = par.Inject(src, dst)
				}
			}
			ref.Step()
			par.Step()
		}
		if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
			t.Fatalf("engines diverged at %d shards:\nactive:   %s\nparallel: %s", par.Shards(), fa, fb)
		}
		if err := par.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
	drive(300)
	par.SetShards(64) // > routers: clamp to one router per shard
	if got := par.Shards(); got != 16 {
		t.Fatalf("SetShards(64) on 16 routers = %d shards, want 16", got)
	}
	drive(300)
	par.SetShards(0) // automatic width
	want := runtime.GOMAXPROCS(0)
	if q := 16 / 4; want > q {
		want = q
	}
	if want < 1 {
		want = 1
	}
	if got := par.Shards(); got != want {
		t.Fatalf("SetShards(0) = %d shards, want auto width %d", got, want)
	}
	drive(300)
	par.SetShards(-3) // any non-positive request means auto
	if got := par.Shards(); got != want {
		t.Fatalf("SetShards(-3) = %d shards, want auto width %d", got, want)
	}
	drive(300)
}

// waitGoroutines polls until the goroutine count falls back to the
// baseline: StopWorkers joins the group, but the counter includes exit
// epilogues, so a short grace window keeps the check robust.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still running, baseline %d — parked workers leaked",
				runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// StopWorkers must JOIN the worker group: directly, via mid-run Reset,
// and across restart cycles, no parked worker may outlive its network.
func TestStopWorkersLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := topology.MustSpidergon(16)
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	rng := sim.NewRNG(8)
	drive := func(cycles int) {
		for c := 0; c < cycles; c++ {
			if rng.Bernoulli(0.4) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = par.Inject(src, dst)
				}
			}
			par.Step()
		}
	}
	drive(100)
	if par.pr == nil {
		t.Fatal("worker group never started")
	}
	par.StopWorkers()
	if par.pr != nil {
		t.Fatal("StopWorkers left the group registered")
	}
	waitGoroutines(t, baseline)

	drive(100) // stepping restarts the group transparently
	if par.pr == nil {
		t.Fatal("worker group did not restart after StopWorkers")
	}
	par.Reset() // mid-run reset parks and joins via resetShards
	waitGoroutines(t, baseline)
	par.SetEngine(EngineParallel) // Reset keeps the engine; rebuild worklists
	drive(100)
	par.StopWorkers()
	waitGoroutines(t, baseline)
}

// A burst of cross-shard deliveries must grow the per-pair mailboxes
// past their deliberately small initial capacity exactly once — after
// the high-water mark is established, the fused cycle (mailbox appends,
// credit decrements, injections from the pool) runs allocation-free.
func TestMailboxBurstGrowthAndSteadyState(t *testing.T) {
	m := topology.MustMesh(8, 8)
	cfg := DefaultConfig()
	// Roomy downstream input buffers keep the cycle-start credits
	// positive, so cross-cut traffic lands in the mailboxes on the
	// speculative path instead of the zero-credit defer path.
	cfg.InBufCap = 4
	net, err := NewNetwork(m, routing.NewMeshXY(m), cfg, stats.NewCollector(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	net.SetPooling(true)
	net.SetShards(2) // cut between rows 3 and 4: 8 links per direction
	net.SetEngine(EngineParallel)
	t.Cleanup(net.StopWorkers)
	cycle := 0
	tick := func() {
		// One top-half→bottom-half packet per cycle: every flit must
		// cross the 8-link cut, keeping it busy but sustainable.
		src := (cycle*5 + 3) % 32
		dst := 32 + (cycle*11+7)%32
		if err := net.Inject(src, dst); err != nil {
			t.Fatal(err)
		}
		net.Step()
		cycle++
	}
	for cycle < 2000 {
		tick()
	}
	grown := 0
	for i := range net.shards {
		for _, box := range net.shards[i].outbox {
			if cap(box) > initialMailboxCap {
				grown++
			}
		}
	}
	if grown == 0 {
		t.Fatalf("no mailbox grew past its initial capacity %d — burst not exercised", initialMailboxCap)
	}
	if allocs := testing.AllocsPerRun(300, tick); allocs != 0 {
		t.Fatalf("steady-state fused parallel cycle allocates %v per cycle", allocs)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// FuzzCrossShardMailbox drives random fabrics, switching modes, loads
// and shard counts (including counts past the router count) through the
// fused engine, holding it to fingerprint equality with EngineActive
// and to the conservation + mailbox invariants.
func FuzzCrossShardMailbox(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint8(40))
	f.Add(uint64(7), uint8(1), uint8(3), uint8(80))
	f.Add(uint64(42), uint8(2), uint8(13), uint8(120))
	f.Add(uint64(9), uint8(1), uint8(7), uint8(200))
	f.Add(uint64(64), uint8(0), uint8(30), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, topoSel, shardSel, rateByte uint8) {
		rng := sim.NewRNG(seed)
		var topo topology.Topology
		var alg routing.Algorithm
		switch topoSel % 3 {
		case 0:
			r := topology.MustRing(8 + 2*rng.Intn(5))
			topo, alg = r, routing.NewRingRouting(r)
		case 1:
			s := topology.MustSpidergon(8 + 4*rng.Intn(3))
			topo, alg = s, routing.NewSpidergonRouting(s)
		default:
			m := topology.MustMesh(4, 4)
			topo, alg = m, routing.NewMeshXY(m)
		}
		cfg := DefaultConfig()
		cfg.PacketLen = 2 + rng.Intn(5)
		cfg.OutBufCap = 1 + rng.Intn(4)
		cfg.InBufCap = 1 + rng.Intn(3)
		if seed%2 == 0 {
			cfg.Switching = VirtualCutThrough
			if cfg.OutBufCap < cfg.PacketLen {
				cfg.OutBufCap = cfg.PacketLen
			}
		}
		shards := 1 + int(shardSel)%20 // may exceed the router count: clamps
		ref, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		par := newParallelNet(t, topo, alg, cfg, shards)
		nodes := topo.Nodes()
		rate := 0.05 + 0.5*float64(rateByte)/255
		for cycle := 0; cycle < 600; cycle++ {
			if rng.Bernoulli(rate) {
				src, dst := rng.Intn(nodes), rng.Intn(nodes)
				if src != dst {
					_ = ref.Inject(src, dst)
					_ = par.Inject(src, dst)
				}
			}
			ref.Step()
			par.Step()
			if cycle%50 == 0 {
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d (%d shards):\nactive:   %s\nparallel: %s",
						cycle, par.Shards(), fa, fb)
				}
			}
		}
		if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
			t.Fatalf("engines diverged (%d shards):\nactive:   %s\nparallel: %s", par.Shards(), fa, fb)
		}
		if err := ref.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if err := par.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestParallelZeroCreditStorm saturates the cross-shard cut with the
// tightest possible downstream buffers (InBufCap 1, the default): every
// boundary port holds at most one cycle-start credit, so sustained
// cross-cut worms exhaust credits constantly and the engine lives on
// the zero-credit defer path (point-to-point pops-done wait + exact
// re-read). The storm must stay bit-identical to the serial reference,
// record a substantial CreditDefers count, keep SerialReplayVisits at
// zero, and still cross exactly one barrier per cycle.
func TestParallelZeroCreditStorm(t *testing.T) {
	m := topology.MustMesh(8, 8)
	cfg := DefaultConfig() // InBufCap 1: single-credit boundary ports
	ref, err := NewNetwork(m, routing.NewMeshXY(m), cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	par := newParallelNet(t, m, routing.NewMeshXY(m), cfg, 4)
	const cycles = 1500
	for cycle := 0; cycle < cycles; cycle++ {
		// Four packets per cycle, every one forced across shard cuts:
		// column-aligned src/dst pairs so XY routing sends whole worms
		// straight through the row boundaries in both directions.
		for k := 0; k < 4; k++ {
			col := (cycle*7 + k*3) % 8
			src := col + 8*(k%4)     // rows 0..3 (upper shards)
			dst := col + 8*(7-(k%4)) // rows 7..4 (lower shards)
			_ = ref.Inject(src, dst)
			_ = par.Inject(src, dst)
		}
		ref.Step()
		par.Step()
		if cycle%250 == 0 {
			if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
				t.Fatalf("storm diverged at cycle %d:\nactive:   %s\nparallel: %s", cycle, fa, fb)
			}
		}
	}
	if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
		t.Fatalf("storm diverged:\nactive:   %s\nparallel: %s", fa, fb)
	}
	perf := par.Perf()
	if perf.CreditDefers == 0 {
		t.Fatal("zero-credit storm recorded no CreditDefers — the defer path was never exercised")
	}
	if perf.SpeculativeDeliveries == 0 {
		t.Fatal("storm recorded no speculative deliveries — credits never granted")
	}
	if perf.SerialReplayVisits != 0 {
		t.Fatalf("SerialReplayVisits = %d, want 0 (retired by the credit discipline)", perf.SerialReplayVisits)
	}
	if perf.Barriers != cycles {
		t.Fatalf("barriers = %d over %d cycles, want exactly 1/cycle under storm", perf.Barriers, cycles)
	}
	if err := par.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// FuzzCreditSnapshot drives random fabrics and loads through the
// credit-based engine with deliberately tight, fuzzed buffer depths,
// holding it to (a) fingerprint equality with the serial reference, (b)
// the credit conservation invariants — snapshot credits equal free
// downstream slots at every cycle boundary, no overdraft, mailboxes
// drained — via CheckConservation at every probe, and (c) a permanently
// zero SerialReplayVisits counter.
func FuzzCreditSnapshot(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(2), uint8(230))
	f.Add(uint64(3), uint8(0), uint8(4), uint8(255))
	f.Add(uint64(11), uint8(2), uint8(7), uint8(90))
	f.Add(uint64(23), uint8(1), uint8(13), uint8(160))
	f.Add(uint64(5), uint8(2), uint8(3), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, topoSel, shardSel, rateByte uint8) {
		rng := sim.NewRNG(seed)
		var topo topology.Topology
		var alg routing.Algorithm
		switch topoSel % 3 {
		case 0:
			r := topology.MustRing(8 + 2*rng.Intn(5))
			topo, alg = r, routing.NewRingRouting(r)
		case 1:
			s := topology.MustSpidergon(8 + 4*rng.Intn(3))
			topo, alg = s, routing.NewSpidergonRouting(s)
		default:
			m := topology.MustMesh(4, 4)
			topo, alg = m, routing.NewMeshXY(m)
		}
		cfg := DefaultConfig()
		cfg.PacketLen = 2 + rng.Intn(6)
		cfg.OutBufCap = 1 + rng.Intn(3)
		cfg.InBufCap = 1 + rng.Intn(2) // 1-2 slots: credits expire fast
		if seed%3 == 0 {
			cfg.Switching = VirtualCutThrough
			if cfg.OutBufCap < cfg.PacketLen {
				cfg.OutBufCap = cfg.PacketLen
			}
		}
		shards := 1 + int(shardSel)%16
		ref, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		par := newParallelNet(t, topo, alg, cfg, shards)
		nodes := topo.Nodes()
		rate := 0.2 + 0.8*float64(rateByte)/255 // hot: starve the credits
		for cycle := 0; cycle < 500; cycle++ {
			if rng.Bernoulli(rate) {
				src, dst := rng.Intn(nodes), rng.Intn(nodes)
				if src != dst {
					_ = ref.Inject(src, dst)
					_ = par.Inject(src, dst)
				}
			}
			ref.Step()
			par.Step()
			if cycle%100 == 0 {
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d (%d shards):\nactive:   %s\nparallel: %s",
						cycle, par.Shards(), fa, fb)
				}
				if err := par.CheckConservation(); err != nil {
					t.Fatalf("credit invariants violated at cycle %d: %v", cycle, err)
				}
			}
		}
		if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
			t.Fatalf("engines diverged (%d shards):\nactive:   %s\nparallel: %s", par.Shards(), fa, fb)
		}
		if got := par.Perf().SerialReplayVisits; got != 0 {
			t.Fatalf("SerialReplayVisits = %d, want 0", got)
		}
		if err := par.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	})
}
