package noc

import (
	"fmt"
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// parallelShardCounts is the matrix every parallel test sweeps: the
// degenerate single shard, even splits, and a count that does not
// divide the node counts used (so ranges have mixed sizes).
var parallelShardCounts = []int{1, 2, 4, 7}

// newParallelNet builds a parallel-engine network with k shards over
// the given fabric, registering worker cleanup with the test.
func newParallelNet(t *testing.T, topo topology.Topology, alg routing.Algorithm, cfg Config, k int) *Network {
	t.Helper()
	n, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	n.SetShards(k)
	n.SetEngine(EngineParallel)
	if n.Engine() != EngineParallel {
		t.Fatal("parallel engine not selected")
	}
	t.Cleanup(n.StopWorkers)
	return n
}

// The parallel engine must track the activity-driven reference cycle
// for cycle at every shard count — any arbitration divergence, worklist
// slip or mis-ordered cross-shard replay shows up in the buffer
// occupancy fingerprint the same cycle it happens. The deterministic
// work counters must match too: the shards visit exactly the nodes the
// serial worklists would.
func TestParallelAgreesCycleByCycle(t *testing.T) {
	for _, k := range parallelShardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			s := topology.MustSpidergon(16)
			ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
			if err != nil {
				t.Fatal(err)
			}
			par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), k)
			rng := sim.NewRNG(7)
			for cycle := 0; cycle < 3000; cycle++ {
				if rng.Bernoulli(0.35) {
					src, dst := rng.Intn(16), rng.Intn(16)
					if src != dst {
						if err := ref.Inject(src, dst); err != nil {
							t.Fatal(err)
						}
						if err := par.Inject(src, dst); err != nil {
							t.Fatal(err)
						}
					}
				}
				ref.Step()
				par.Step()
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d:\nactive:   %s\nparallel: %s", cycle, fa, fb)
				}
				if na, nb := ref.ActiveNodes(), par.ActiveNodes(); na != nb {
					t.Fatalf("cycle %d: ActiveNodes %d (active) vs %d (parallel)", cycle, na, nb)
				}
			}
			if err := par.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if ref.Perf().RouterVisits != par.Perf().RouterVisits {
				t.Fatalf("worklist visits diverged: active %d, parallel %d",
					ref.Perf().RouterVisits, par.Perf().RouterVisits)
			}
			if err := ref.Drain(10000); err != nil {
				t.Fatal(err)
			}
			if err := par.Drain(10000); err != nil {
				t.Fatal(err)
			}
			if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
				t.Fatalf("engines diverged after drain:\nactive:   %s\nparallel: %s", fa, fb)
			}
		})
	}
}

// Fuzz-style equivalence for the parallel engine: random topologies,
// switching modes, buffer geometries, interface rates, injection
// streams and shard counts must never separate it from the
// activity-driven engine. Each trial also proves the worklist and
// cross-shard invariants via CheckConservation.
func TestParallelAgreesRandomized(t *testing.T) {
	master := sim.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		rng := master.Split()
		var topo topology.Topology
		var alg routing.Algorithm
		switch rng.Intn(3) {
		case 0:
			r := topology.MustRing(8 + 2*rng.Intn(5))
			topo, alg = r, routing.NewRingRouting(r)
		case 1:
			s := topology.MustSpidergon(8 + 4*rng.Intn(3))
			topo, alg = s, routing.NewSpidergonRouting(s)
		default:
			m := topology.MustMesh(3+rng.Intn(2), 3+rng.Intn(2))
			topo, alg = m, routing.NewMeshXY(m)
		}
		cfg := DefaultConfig()
		cfg.PacketLen = 2 + rng.Intn(6)
		cfg.OutBufCap = 1 + rng.Intn(6)
		cfg.SinkRate = 1 + rng.Intn(2)
		cfg.InjectRate = 1 + rng.Intn(2)
		if rng.Bernoulli(0.5) {
			cfg.Switching = VirtualCutThrough
			if cfg.OutBufCap < cfg.PacketLen {
				cfg.OutBufCap = cfg.PacketLen
			}
		}
		shards := 1 + rng.Intn(8)
		name := fmt.Sprintf("trial %d (%s, %v, %d shards)", trial, topo.Name(), cfg, shards)
		ref, err := NewNetwork(topo, alg, cfg, stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		par := newParallelNet(t, topo, alg, cfg, shards)
		n := topo.Nodes()
		rate := 0.05 + 0.4*rng.Float64()
		for cycle := 0; cycle < 1200; cycle++ {
			if rng.Bernoulli(rate) {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src != dst {
					_ = ref.Inject(src, dst)
					_ = par.Inject(src, dst)
				}
			}
			ref.Step()
			par.Step()
		}
		if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
			t.Fatalf("%s: engines diverged:\nactive:   %s\nparallel: %s", name, fa, fb)
		}
		if err := ref.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := par.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Closed-loop traffic is the sharpest test of the deferred ejection
// replay: OnEject fires inside Step and injects replies whose packet
// IDs, pool leases and source-worklist entries must interleave with the
// recycles exactly as under the serial engine — across shards.
func TestParallelOnEjectReplies(t *testing.T) {
	for _, k := range parallelShardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			s := topology.MustSpidergon(16)
			ref, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
			if err != nil {
				t.Fatal(err)
			}
			par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), k)
			// Every delivered request triggers one reply until the budget
			// drains; both networks see the identical callback logic.
			reply := func(n *Network, budget *int) func(p *Packet) {
				return func(p *Packet) {
					if *budget <= 0 || p.Src == p.Dst {
						return
					}
					*budget--
					_ = n.Inject(p.Dst, p.Src)
				}
			}
			budRef, budPar := 400, 400
			ref.OnEject(reply(ref, &budRef))
			par.OnEject(reply(par, &budPar))
			rng := sim.NewRNG(12)
			for cycle := 0; cycle < 2500; cycle++ {
				if cycle < 600 && rng.Bernoulli(0.3) {
					src, dst := rng.Intn(16), rng.Intn(16)
					if src != dst {
						_ = ref.Inject(src, dst)
						_ = par.Inject(src, dst)
					}
				}
				ref.Step()
				par.Step()
				if fa, fb := stateFingerprint(ref), stateFingerprint(par); fa != fb {
					t.Fatalf("engines diverged at cycle %d:\nactive:   %s\nparallel: %s", cycle, fa, fb)
				}
			}
			if budRef != budPar {
				t.Fatalf("reply budgets diverged: active %d, parallel %d", budRef, budPar)
			}
			if err := par.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if err := ref.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Reset must return a parallel network to a state bit-identical to a
// fresh one (with its workers parked), so campaign workspaces can reuse
// it across replications.
func TestParallelResetReplaysIdentically(t *testing.T) {
	s := topology.MustSpidergon(16)
	par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
	run := func() string {
		rng := sim.NewRNG(5)
		for cycle := 0; cycle < 800; cycle++ {
			if rng.Bernoulli(0.3) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = par.Inject(src, dst)
				}
			}
			par.Step()
		}
		return stateFingerprint(par)
	}
	first := run()
	if err := par.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	par.Reset()
	par.SetEngine(EngineParallel) // Reset keeps the engine; rebuild worklists
	if second := run(); second != first {
		t.Fatalf("post-Reset replay diverged:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// The cross-shard invariant checker must actually catch the failure
// modes it claims to: a stranded node (off every shard worklist), a
// node enrolled in a foreign shard's worklist, and deferred effects
// left unreplayed at a cycle boundary.
func TestParallelInvariantsCatchCorruption(t *testing.T) {
	build := func() *Network {
		s := topology.MustSpidergon(16)
		par := newParallelNet(t, s, routing.NewSpidergonRouting(s), DefaultConfig(), 4)
		if err := par.Inject(0, 9); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			par.Step()
		}
		if par.InFlightFlits() == 0 {
			t.Fatal("expected in-flight flits")
		}
		return par
	}

	par := build()
	for i := range par.shards {
		par.shards[i].wl.ej.clear()
		par.shards[i].wl.sw.clear()
		par.shards[i].wl.out.clear()
	}
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a stranded flit")
	}

	par = build()
	par.shards[0].wl.ni.add(15) // node 15 belongs to shard 3
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed a foreign worklist member")
	}

	par = build()
	par.shards[2].stats = append(par.shards[2].stats, statRecord{})
	if err := par.CheckConservation(); err == nil {
		t.Fatal("conservation check missed an unreplayed deferred effect")
	}
}
