package noc

// This file is the struct-of-arrays packet arena and the packed flit
// handle — the pointer-free representation behind the hot path. Every
// packet leased by InjectPacket is one index into parallel field
// slices; every flit in a router buffer is one 64-bit handle word
// packing (packet index, sequence number, VC tag). The phase drains in
// active.go/parallel.go therefore walk dense arrays of integers: no
// *Packet or *Flit is ever chased (or allocated) inside a cycle. The
// exported Packet/Flit structs survive as materialized views at the
// observer boundary (flit.go, observe.go).

// Handle field widths. The VC tag sits in the low bits so retagging a
// flit at switch traversal is one masked or; the packet index occupies
// the top 38 bits, far beyond any reachable live population.
const (
	vcBits  = 6
	seqBits = 20
	vcMask  = 1<<vcBits - 1
	seqMask = 1<<seqBits - 1

	// MaxVCs and MaxPacketLen bound the geometry a network can be built
	// with, so every (vc, seq) pair fits its handle field; NewNetwork
	// rejects anything larger. Both sit orders of magnitude above the
	// paper's parameters (2 VCs, 6-flit packets).
	MaxVCs       = 1 << vcBits
	MaxPacketLen = 1 << seqBits
)

// flitH is a flit handle: the packed (packet index, seq, VC) word the
// router buffers store in place of a *Flit. Packet length is constant
// per network (Config.PacketLen), so the handle needs no tail bit —
// seq == PacketLen-1 identifies the tail — and the flit's stage-advance
// stamp lives at the dense index pkt*PacketLen+seq of the arena's
// lastMove array.
type flitH uint64

// mkFlit packs a handle.
func mkFlit(pkt int32, seq, vc int) flitH {
	return flitH(uint64(pkt)<<(vcBits+seqBits) | uint64(seq)<<vcBits | uint64(vc))
}

// pkt returns the arena index of the flit's packet.
func (h flitH) pkt() int32 { return int32(h >> (vcBits + seqBits)) }

// seq returns the flit's 0-based position within its packet.
func (h flitH) seq() int { return int(h>>vcBits) & seqMask }

// vc returns the virtual-channel tag the flit currently carries.
func (h flitH) vc() int { return int(h) & vcMask }

// withVC returns the handle retagged to travel on vc (the switch stage
// moves a flit onto the output VC its worm won).
func (h flitH) withVC(vc int) flitH { return h&^vcMask | flitH(vc) }

// packetArena holds every packet record of a network in parallel field
// slices, indexed by the handle's packet index. Records are leased and
// recycled through freeStack (the index-stack successor of the old
// *Packet freelist); with pooling off the arena instead grows
// monotonically — index reuse changes allocator traffic only, never
// results, but the monotonic mode keeps the two runs trivially
// comparable record for record.
type packetArena struct {
	// pktLen is the constant Config.PacketLen of the owning network;
	// per-record length storage would duplicate it PacketLen-fold.
	pktLen int

	id       []uint64 // unique per network, in creation order
	src, dst []int32  // endpoint node ids
	created  []uint64 // cycle the IP generated the packet
	injected []uint64 // cycle the head flit left the source queue
	hops     []int32  // link traversals of the head flit
	recv     []int32  // flits consumed at the destination so far
	free     []bool   // resident on freeStack (not leased)

	// lastMove[p*pktLen+s] is the cycle flit (p, s) last advanced a
	// pipeline stage — the one-stage-per-cycle stamp, stored densely so
	// the per-flit state the phase drains touch most is one contiguous
	// array.
	lastMove []uint64

	// freeStack holds the indices of recycled records, leased LIFO.
	freeStack []int32
}

// len returns the number of records ever allocated (the population
// high-water mark of the current pooling regime).
func (a *packetArena) len() int { return len(a.id) }

// grow appends one zeroed record and its lastMove window, returning its
// index. Growth allocates; the steady state of a pooled run leases from
// freeStack instead.
func (a *packetArena) grow() int32 {
	idx := len(a.id)
	a.id = append(a.id, 0)
	a.src = append(a.src, 0)
	a.dst = append(a.dst, 0)
	a.created = append(a.created, 0)
	a.injected = append(a.injected, 0)
	a.hops = append(a.hops, 0)
	a.recv = append(a.recv, 0)
	a.free = append(a.free, false)
	if n := len(a.lastMove) + a.pktLen; n <= cap(a.lastMove) {
		a.lastMove = a.lastMove[:n]
	} else {
		a.lastMove = append(a.lastMove, make([]uint64, a.pktLen)...)
	}
	return int32(idx)
}

// flitIndex returns h's position in lastMove.
func (a *packetArena) flitIndex(h flitH) int { return int(h.pkt())*a.pktLen + h.seq() }

// truncate drops every record and the free stack, keeping the backing
// arrays. Used when pooling is (re)disabled and by Reset in the
// unpooled regime, where records are never reused; the next run grows
// into the warm capacity.
func (a *packetArena) truncate() {
	a.id = a.id[:0]
	a.src = a.src[:0]
	a.dst = a.dst[:0]
	a.created = a.created[:0]
	a.injected = a.injected[:0]
	a.hops = a.hops[:0]
	a.recv = a.recv[:0]
	a.free = a.free[:0]
	a.lastMove = a.lastMove[:0]
	a.freeStack = a.freeStack[:0]
}

// bytes reports the resident bytes of the arena's record slices and
// free stack at the current population (lengths, not capacities, so
// the figure is a pure function of the scenario, independent of the
// allocator's growth policy).
func (a *packetArena) bytes() uint64 {
	const recBytes = 8 + 4 + 4 + 8 + 8 + 4 + 4 + 1 // id,src,dst,created,injected,hops,recv,free
	return uint64(a.len())*(recBytes+uint64(a.pktLen)*8) + uint64(len(a.freeStack))*4
}

// materializePacket fills the exported view v from record pi. Views are
// built only at the observer boundary (OnEject, InjectPacket), never
// inside the phase drains.
func (n *Network) materializePacket(v *Packet, pi int32) {
	a := &n.arena
	v.ID = a.id[pi]
	v.Src, v.Dst = int(a.src[pi]), int(a.dst[pi])
	v.Len = a.pktLen
	v.CreatedCycle = a.created[pi]
	v.InjectedCycle = a.injected[pi]
	v.Hops = int(a.hops[pi])
}

// pktString renders record pi like Packet.String, for panics and
// conservation errors (cold paths only).
func (n *Network) pktString(pi int32) string {
	n.materializePacket(&n.errView, pi)
	return n.errView.String()
}
