package noc

import (
	"strings"
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// poolNet builds a spidergon network for pool tests.
func poolNet(t *testing.T, pooling bool) *Network {
	t.Helper()
	s := topology.MustSpidergon(16)
	net, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	net.SetPooling(pooling)
	return net
}

// drive injects a deterministic random stream for the given cycles.
func drive(t *testing.T, net *Network, cycles int, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	for c := 0; c < cycles; c++ {
		if rng.Bernoulli(0.4) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				if err := net.Inject(src, dst); err != nil {
					t.Fatal(err)
				}
			}
		}
		net.Step()
	}
}

// Every ejected packet must return to the pool, and a drained network
// must hold its whole population there: created == pool size, with the
// conservation check (which now includes the pool accounting) clean.
func TestPoolRecyclesEveryEjectedPacket(t *testing.T) {
	net := poolNet(t, true)
	drive(t, net, 2000, 3)
	if err := net.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if net.EjectedPackets() != net.CreatedPackets() {
		t.Fatalf("drained network: %d created, %d ejected", net.CreatedPackets(), net.EjectedPackets())
	}
	// Leases recycle one for one with ejections; after drain every
	// distinct packet structure sits on the pool.
	if net.recycled != net.EjectedPackets() {
		t.Fatalf("%d ejections but %d recycles", net.EjectedPackets(), net.recycled)
	}
	if net.PoolSize() == 0 {
		t.Fatal("empty pool after a drained run")
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// The pool must actually bound the packet population: a long run leases
// recycled packets instead of growing the heap, so distinct packet
// structures stay near the in-flight high-water mark, far below the
// created count.
func TestPoolBoundsPacketPopulation(t *testing.T) {
	net := poolNet(t, true)
	drive(t, net, 6000, 5)
	if err := net.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if net.CreatedPackets() < 1000 {
		t.Fatalf("degenerate run: only %d packets", net.CreatedPackets())
	}
	// After drain the pool holds every distinct packet ever allocated;
	// with recycling the population is far smaller than the creations.
	if distinct := net.PoolSize(); distinct >= int(net.CreatedPackets())/4 {
		t.Fatalf("pool population %d not bounded vs %d creations — recycling is not reusing",
			distinct, net.CreatedPackets())
	}
}

// The conservation checker must flag a leaked packet (ejected without a
// recycle).
func TestCheckConservationCatchesPoolLeak(t *testing.T) {
	net := poolNet(t, true)
	drive(t, net, 1000, 7)
	if err := net.Drain(10000); err != nil {
		t.Fatal(err)
	}
	// Forge a leak behind the engine's back.
	net.recycled--
	err := net.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "leak") {
		t.Fatalf("pool leak not caught: %v", err)
	}
}

// The conservation checker must flag double frees in both observable
// forms: a pool entry appearing twice, and a pooled (free) packet still
// referenced by a live queue or buffer.
func TestCheckConservationCatchesDoubleFree(t *testing.T) {
	net := poolNet(t, true)
	drive(t, net, 1000, 9)
	if err := net.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if net.PoolSize() == 0 {
		t.Fatal("empty pool after a loaded run")
	}

	// A duplicated free-stack entry.
	dup := net.arena.freeStack[0]
	net.arena.freeStack = append(net.arena.freeStack, dup)
	err := net.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "double free") {
		t.Fatalf("duplicate free-stack entry not caught: %v", err)
	}
	net.arena.freeStack = net.arena.freeStack[:len(net.arena.freeStack)-1]

	// A free-marked packet still queued at a source.
	if err := net.Inject(0, 5); err != nil {
		t.Fatal(err)
	}
	queued := net.nis[0].queue.head()
	net.arena.free[queued] = true
	err = net.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "double free") {
		t.Fatalf("free packet in a live queue not caught: %v", err)
	}
	net.arena.free[queued] = false

	// A free-stack entry missing its free mark.
	net.arena.free[net.arena.freeStack[0]] = false
	err = net.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "free mark") {
		t.Fatalf("leased packet on the free stack not caught: %v", err)
	}
	net.arena.free[net.arena.freeStack[0]] = true
}

// Recycling the same lease twice is an engine bug and must panic rather
// than corrupt the pool.
func TestDoubleRecyclePanics(t *testing.T) {
	net := poolNet(t, true)
	if err := net.Inject(0, 5); err != nil {
		t.Fatal(err)
	}
	pi := net.nis[0].queue.head()
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle did not panic")
		}
	}()
	net.recyclePacket(pi)
	net.recyclePacket(pi)
}

// SetPooling is a construction/Reset-time decision: retoggling with
// packets outstanding would break the accounting and must panic.
func TestSetPoolingMidRunPanics(t *testing.T) {
	net := poolNet(t, true)
	if err := net.Inject(0, 5); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPooling with packets outstanding did not panic")
		}
	}()
	net.SetPooling(false)
}

// Pool on and pool off must be indistinguishable cycle for cycle: same
// injections, same fingerprints throughout, under both engines.
func TestPoolOnOffBitIdentical(t *testing.T) {
	for _, eng := range []Engine{EngineActive, EngineSweep} {
		pooled := poolNet(t, true)
		bare := poolNet(t, false)
		pooled.SetEngine(eng)
		bare.SetEngine(eng)
		rng := sim.NewRNG(21)
		for c := 0; c < 3000; c++ {
			if rng.Bernoulli(0.35) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = pooled.Inject(src, dst)
					_ = bare.Inject(src, dst)
				}
			}
			pooled.Step()
			bare.Step()
			if fp, fb := stateFingerprint(pooled), stateFingerprint(bare); fp != fb {
				t.Fatalf("%v: pooling diverged at cycle %d:\npooled: %s\nbare:   %s", eng, c, fp, fb)
			}
		}
		if err := pooled.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if err := bare.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}

// Reset must reclaim every in-flight and queued packet into the pool
// and leave the network running the next workload exactly like a fresh
// twin with a cold pool.
func TestResetReclaimsAndReplaysIdentically(t *testing.T) {
	reused := poolNet(t, true)
	// First workload, stopped mid-flight so buffers and queues are full.
	drive(t, reused, 1500, 31)
	if reused.InFlightFlits() == 0 && reused.QueuedPackets() == 0 {
		t.Fatal("first workload left nothing in flight")
	}
	// Every packet structure is either pooled or live (one struct per
	// outstanding lease); Reset must reclaim the live ones, so the pool
	// afterwards holds the whole population.
	population := uint64(reused.PoolSize()) + reused.CreatedPackets() - reused.EjectedPackets()
	reused.Reset()
	if got := uint64(reused.PoolSize()); got != population {
		t.Fatalf("Reset reclaimed to a pool of %d packets, want the full population of %d", got, population)
	}
	if reused.Cycle() != 0 || reused.CreatedPackets() != 0 || reused.InFlightFlits() != 0 {
		t.Fatal("Reset left residual state")
	}

	fresh := poolNet(t, true)
	drive(t, reused, 2000, 77)
	drive(t, fresh, 2000, 77)
	if fr, ff := stateFingerprint(reused), stateFingerprint(fresh); fr != ff {
		t.Fatalf("reset network diverged from fresh twin:\nreset: %s\nfresh: %s", fr, ff)
	}
	if err := reused.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
