package noc

// slotMask is a multi-word bitmap over one router's flattened
// (port, VC) buffer slots — the successor of the single-uint64 masks
// that capped a router at 64 slots and forced high-degree × high-VC
// networks onto the sweep engine. Ports are laid out at a power-of-two
// stride ≥ the VC count (Network.stride), so a port's bits never
// straddle a word boundary: extracting one port's occupancy is a single
// shift-and-mask regardless of how many words the router needs. The
// round-robin arbitration moduli keep using the logical (unstrided)
// slot counts, so arbitration is bit-identical to the packed layout.
type slotMask []uint64

// newSlotMask returns a mask covering n stride-spaced slot bits.
func newSlotMask(n int) slotMask { return make(slotMask, (n+63)/64) }

func (m slotMask) set(i int)      { m[i>>6] |= 1 << (uint(i) & 63) }
func (m slotMask) clearBit(i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

func (m slotMask) test(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// any reports whether any slot bit is set.
func (m slotMask) any() bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// anyOutside reports whether m holds a bit that ej does not — the
// "transit head present" test (inOcc minus ejOcc) of the switch stage.
func (m slotMask) anyOutside(ej slotMask) bool {
	for i, w := range m {
		if w&^ej[i] != 0 {
			return true
		}
	}
	return false
}

// port extracts the width occupancy bits of the port based at bit
// `base` into the low bits of one word. base is a multiple of the
// power-of-two stride, so the bits never cross a word.
func (m slotMask) port(base, width int) uint64 {
	return m[base>>6] >> (uint(base) & 63) & (1<<uint(width) - 1)
}

// zero clears the mask in place.
func (m slotMask) zero() {
	for i := range m {
		m[i] = 0
	}
}

// resizeMask returns m resized to cover n slot bits and zeroed,
// reusing the backing array when it is wide enough — the scratch-mask
// idiom of the invariant checks.
func resizeMask(m slotMask, n int) slotMask {
	words := (n + 63) / 64
	if cap(m) < words {
		return newSlotMask(n)
	}
	m = m[:words]
	m.zero()
	return m
}

// eq reports word-wise equality with o (same geometry assumed).
func (m slotMask) eq(o slotMask) bool {
	for i, w := range m {
		if w != o[i] {
			return false
		}
	}
	return true
}
