package noc

import (
	"fmt"
	"math/bits"
)

// This file is the activity-driven simulation core: the default engine
// behind Network.Step. Instead of sweeping every router × port × VC in
// all four phases each cycle (the reference engine in network.go, kept
// as EngineSweep for cross-checking), each phase drains an incremental
// worklist at two granularities: bitmap active sets over nodes select
// which routers/sources a phase visits at all, and per-router
// slot-occupancy masks (router.inOcc/ejOcc/outOcc, one bit per
// flattened port × VC slot) select which slots a visit touches — both
// updated exactly where flits move, so a cycle's cost is proportional
// to in-flight work, not network size. Determinism is preserved by
// construction: sets drain in ascending node order (the reference
// engine's iteration order), slots in the reference round-robin order,
// and the per-cycle round-robin pointers, which the reference engine
// advances unconditionally once per cycle, are derived from the cycle
// counter instead of stored, so skipping an idle router (or
// fast-forwarding whole idle cycles via SkipTo) cannot perturb
// arbitration. The cross-engine golden tests assert bit-identical
// Results against EngineSweep for every scenario class.

// Engine selects the implementation behind Network.Step.
type Engine int

const (
	// EngineActive is the activity-driven engine (the default): phases
	// visit only routers with buffered flits and sources with pending
	// packets.
	EngineActive Engine = iota
	// EngineSweep is the reference engine: every phase scans all
	// routers. It is retained as the golden oracle for equivalence
	// tests and as a debugging fallback.
	EngineSweep
	// EngineParallel is the domain-decomposed engine (parallel.go): the
	// routers are split into contiguous shards and each pipeline phase
	// runs shard-parallel between deterministic barriers, producing
	// results bit-identical to EngineActive at every shard count.
	EngineParallel
)

// String returns the engine's conventional name.
func (e Engine) String() string {
	switch e {
	case EngineActive:
		return "active"
	case EngineSweep:
		return "sweep"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// activeSet is a fixed-capacity bitmap of node indices, drained in
// ascending order so worklist scheduling cannot reorder arbitration.
type activeSet struct {
	words []uint64
}

func newActiveSet(n int) activeSet {
	return activeSet{words: make([]uint64, (n+63)/64)}
}

func (s *activeSet) add(i int)    { s.words[i>>6] |= 1 << (uint(i) & 63) }
func (s *activeSet) remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

func (s *activeSet) has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *activeSet) clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// forEach visits the members in ascending order. fn may remove the
// member currently being visited and may add or remove members of
// *other* sets; inserting new members into this set mid-iteration is
// not supported (no phase needs it — each phase only retires its own
// worklist entries and feeds the worklists of later phases).
func (s *activeSet) forEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			fn(base + b)
		}
	}
}

// worklists is one complete set of phase worklists: the ejection,
// switch, link and injection active sets. The active engine keeps a
// single network-wide set (Network.wl); the parallel engine keeps one
// per shard, each covering only the shard's contiguous router range, so
// two shards never write the same bitmap word concurrently.
type worklists struct {
	ej  activeSet // routers with a locally-destined input head
	sw  activeSet // routers with a transit input head
	out activeSet // routers with non-empty output queues
	ni  activeSet // sources with pending packets
}

func newWorklists(n int) worklists {
	return worklists{ej: newActiveSet(n), sw: newActiveSet(n), out: newActiveSet(n), ni: newActiveSet(n)}
}

func (w *worklists) clear() {
	w.ej.clear()
	w.sw.clear()
	w.out.clear()
	w.ni.clear()
}

// markSource enrolls src in the injection worklist that owns it: the
// shard's under the parallel engine, the network-wide one otherwise
// (the sweep engine ignores the sets, so the stray add is harmless and
// keeps InjectPacket branch-free on the engine).
func (n *Network) markSource(src int) {
	if n.engine == EngineParallel {
		n.shards[n.shardOf[src]].wl.ni.add(src)
		return
	}
	n.wl.ni.add(src)
}

// --- worklist maintenance, called wherever the active and parallel
// engines move a flit, against the worklists that own the touched
// router (wl). The sweep engine bypasses these (it pops/pushes the
// buffers directly); SetEngine rebuilds all masks and sets.

// refreshInSets recomputes node's membership in the ejection and
// switch worklists from its input-slot masks: the ejection stage wants
// routers with a locally-destined head anywhere, the switch stage
// routers with a transit head (non-empty slot whose head travels on).
func (n *Network) refreshInSets(wl *worklists, node int, r *router) {
	if r.ejOcc != 0 {
		wl.ej.add(node)
	} else {
		wl.ej.remove(node)
	}
	if r.inOcc&^r.ejOcc != 0 {
		wl.sw.add(node)
	} else {
		wl.sw.remove(node)
	}
}

// inPop removes the head of p's vc slot, re-deriving the slot's
// occupancy and head-locality bits from the newly exposed head.
func (n *Network) inPop(wl *worklists, node int, r *router, p *inPort, vc int) *Flit {
	f := p.pop(vc)
	n.telOcc[node]--
	bit := uint64(1) << uint(p.slotBase+vc)
	switch {
	case p.bufs[vc].len() == 0:
		r.inOcc &^= bit
		r.ejOcc &^= bit
	case p.head(vc).Pkt.Dst == r.node:
		r.ejOcc |= bit
	default:
		r.ejOcc &^= bit
	}
	n.refreshInSets(wl, node, r)
	return f
}

// inPush appends f to p's vc slot of the downstream router.
func (n *Network) inPush(wl *worklists, node int, r *router, p *inPort, vc int, f *Flit) {
	wasEmpty := p.bufs[vc].len() == 0
	p.push(vc, f)
	n.telOcc[node]++
	bit := uint64(1) << uint(p.slotBase+vc)
	r.inOcc |= bit
	if wasEmpty && f.Pkt.Dst == r.node {
		r.ejOcc |= bit
	}
	n.refreshInSets(wl, node, r)
}

// outPush appends f to the output queue (op, vc) of node's router.
func (n *Network) outPush(wl *worklists, node int, r *router, op *outPort, vc int, f *Flit) {
	op.vcs[vc].push(f)
	n.telOcc[node]++
	r.outOcc |= 1 << uint(op.slotBase+vc)
	wl.out.add(node)
}

// outPop removes the head of the output queue (op, vc), retiring the
// slot — and, when the router's last output drains, the router — from
// the link worklist.
func (n *Network) outPop(wl *worklists, node int, r *router, op *outPort, vc int) *Flit {
	v := op.vcs[vc]
	f := v.pop()
	n.telOcc[node]--
	if v.empty() {
		r.outOcc &^= 1 << uint(op.slotBase+vc)
		if r.outOcc == 0 {
			wl.out.remove(node)
		}
	}
	return f
}

// stepActive advances one cycle visiting only active routers/sources.
// Phase bodies mirror the reference engine (network.go) statement for
// statement; the only differences are worklist iteration, mask
// maintenance, and cycle-derived round-robin pointers.
func (n *Network) stepActive() {
	n.moved = false
	n.activeEject()
	n.activeSwitch()
	n.activeInject()
	n.activeLink()
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
	// Advance cycle % d for every registered round-robin divisor by
	// increment — cheaper than one division per visited router.
	for _, d := range n.modDivs {
		v := n.modTab[d] + 1
		if v == uint32(d) {
			v = 0
		}
		n.modTab[d] = v
	}
}

// activeEject mirrors ejectPhase over routers holding locally-destined
// input heads, touching only the slots whose bit is set in ejOcc.
// rrEj is derived: the reference advances it by one every cycle for
// every router, so during cycle c it equals c mod slots.
func (n *Network) activeEject() {
	vcs := n.alg.VCs()
	n.wl.ej.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			return
		}
		slots := np * vcs
		rrEj := int(n.modTab[slots])
		for k := 0; k < slots && budget > 0; k++ {
			s := rrEj + k
			if s >= slots {
				s -= slots
			}
			if r.ejOcc&(1<<uint(s)) == 0 {
				continue
			}
			p := r.in[s/vcs]
			vc := s % vcs
			for budget > 0 && !p.empty(vc) && p.head(vc).Pkt.Dst == r.node {
				f := n.inPop(&n.wl, node, r, p, vc)
				n.telEj[node]++
				budget--
				n.moved = true
				f.Pkt.recv++
				if f.IsTail() {
					n.ejected++
					n.col.PacketEjected(n.cycle, f.Pkt.CreatedCycle, f.Pkt.InjectedCycle, f.Pkt.Len, f.Pkt.Hops)
					if n.onEject != nil {
						n.onEject(f.Pkt)
					}
					n.recyclePacket(f.Pkt)
				}
			}
		}
	})
}

// activeSwitch mirrors switchPhase over routers holding transit heads,
// visiting only the occupied transit slots (inOcc minus the locally
// destined heads, which wait for the ejection stage) in the reference
// port order: rotated by rrIn, derived like rrEj. The rotation is the
// mask split at the rrIn slot boundary — high part first.
func (n *Network) activeSwitch() {
	vcs := n.alg.VCs()
	n.wl.sw.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		rrIn := int(n.modTab[len(r.in)])
		m := r.inOcc &^ r.ejOcc
		hi := m &^ (1<<uint(rrIn*vcs) - 1)
		for _, part := range [2]uint64{hi, m ^ hi} {
			for part != 0 {
				p := r.slotIn[bits.TrailingZeros64(part)]
				occ := part >> uint(p.slotBase)
				part &^= (1<<uint(vcs) - 1) << uint(p.slotBase)
				n.switchPort(r, p, occ, vcs)
			}
		}
	})
}

// switchPort runs the reference per-port VC arbitration over the
// occupied transit slots of one input port (occ holds the port's VC
// occupancy in its low bits): first movable flit in rrVC order wins
// the port's crossbar input for this cycle.
func (n *Network) switchPort(r *router, p *inPort, occ uint64, vcs int) {
	for j := 0; j < vcs; j++ {
		inVC := (p.rrVC + j) % vcs
		if occ&(1<<uint(inVC)) == 0 {
			continue
		}
		f := p.head(inVC)
		if f.lastMove >= n.cycle+1 {
			continue // already advanced this cycle
		}
		entry := &p.route[inVC]
		if f.IsHead() {
			d := n.route(r, f.Pkt, inVC)
			op := r.outPortByDir(d.Dir)
			if op == nil {
				panic(fmt.Sprintf("noc: %s chose missing direction %v at node %d for %v",
					n.alg.Name(), d.Dir, r.node, f.Pkt))
			}
			ovc := op.vcs[d.VC]
			if !n.canAdmit(ovc, f.Pkt) {
				continue // allocation denied; retry next cycle
			}
			ovc.owner = f.Pkt
			*entry = routeEntry{active: true, port: op, vc: d.VC}
		} else if !entry.active {
			panic(fmt.Sprintf("noc: body flit %v at node %d without switching state", f, r.node))
		}
		ovc := entry.port.vcs[entry.vc]
		if ovc.owner != f.Pkt || ovc.full(n.cfg.OutBufCap) {
			continue // space denied; retry next cycle
		}
		n.inPop(&n.wl, r.node, r, p, inVC)
		f.VC = entry.vc
		f.lastMove = n.cycle + 1
		n.outPush(&n.wl, r.node, r, entry.port, entry.vc, f)
		n.moved = true
		if f.IsTail() {
			ovc.owner = nil
			entry.active = false
		}
		p.rrVC = (inVC + 1) % vcs
		return // one flit per input port per cycle
	}
}

// activeInject mirrors injectPhase over sources with pending packets,
// retiring a source once its IP memory and in-progress worm drain.
func (n *Network) activeInject() {
	n.wl.ni.forEach(func(node int) {
		q := n.nis[node]
		r := n.routers[node]
		n.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending == nil {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pkt := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pkt, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %v",
						n.alg.Name(), d.Dir, node, pkt))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc, pkt) {
					ovc.owner = pkt
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					n.col.SourceBlocked(n.cycle)
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				n.col.SourceBlocked(n.cycle)
				break
			}
			f := &pkt.flits[q.nextSeq]
			f.VC = q.route.vc
			f.lastMove = n.cycle + 1
			n.outPush(&n.wl, node, r, q.route.port, q.route.vc, f)
			n.telInj[node]++
			n.moved = true
			q.nextSeq++
			budget--
			if f.IsHead() {
				pkt.InjectedCycle = n.cycle
				n.injected++
				n.col.PacketInjected(n.cycle, pkt.Len)
			}
			if f.IsTail() {
				ovc.owner = nil
				q.sending = nil
				q.route = routeEntry{}
			}
		}
		if q.sending == nil && q.queue.len() == 0 {
			n.wl.ni.remove(node)
		}
	})
}

// activeLink mirrors linkPhase over routers holding output flits,
// visiting only the occupied output slots (port order is ascending,
// as in the reference) and feeding the downstream routers' input
// worklists. op.rr is derived like the other round-robin pointers.
func (n *Network) activeLink() {
	vcs := n.alg.VCs()
	rrVC := int(n.modTab[vcs]) // every port has alg.VCs() queues
	n.wl.out.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		m := r.outOcc
		for m != 0 {
			op := r.slotOut[bits.TrailingZeros64(m)]
			occ := m >> uint(op.slotBase)
			m &^= (1<<uint(vcs) - 1) << uint(op.slotBase)
			n.linkPort(node, r, op, occ, vcs, rrVC)
		}
	})
}

// linkPort runs the reference per-link VC arbitration over one output
// port's occupied queues (occ holds the port's VC occupancy in its low
// bits): the first departable head in rr order traverses the link.
func (n *Network) linkPort(node int, r *router, op *outPort, occ uint64, vcs, rr int) {
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		f := v.head()
		if f.lastMove >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&n.wl, node, r, op, vi)
		f.lastMove = n.cycle + 1
		if f.IsHead() {
			f.Pkt.Hops++
		}
		n.linkFlits[op.ch.ID]++
		n.inPush(&n.wl, op.ch.Dst, op.peerRouter, ip, vi, f)
		n.moved = true
		return // one flit per physical link per cycle
	}
}

// SetEngine selects the implementation behind Step. Switching is legal
// at any point: the worklists are rebuilt from the buffers, so a
// network mid-simulation carries its state over exactly. On the rare
// network whose per-router slot count exceeds one mask word the
// request for EngineActive or EngineParallel is ignored and the sweep
// fallback stays in force (check Engine); results are identical either
// way. Leaving EngineParallel stops its worker goroutines.
func (n *Network) SetEngine(e Engine) {
	switch e {
	case EngineActive:
		if !n.maskable {
			return
		}
		n.StopWorkers()
		n.rebuildActiveSets()
	case EngineParallel:
		if !n.maskable {
			return
		}
		n.StopWorkers()
		if n.shardCount == 0 {
			n.shardCount = defaultShards(n.topo.Nodes())
		}
		n.buildShards()
		n.rebuildParallelSets()
	case EngineSweep:
		n.StopWorkers()
	default:
		panic(fmt.Sprintf("noc: unknown engine %d", int(e)))
	}
	n.engine = e
}

// Engine returns the engine currently driving Step.
func (n *Network) Engine() Engine { return n.engine }

// rebuildWorklists recomputes the slot masks from the ground truth in
// the buffers and re-enrolls every node in the worklists chosen by
// wlFor — the network-wide set for the active engine, the owning
// shard's for the parallel engine.
func (n *Network) rebuildWorklists(wlFor func(node int) *worklists) {
	n.rebuildModTab()
	for node, r := range n.routers {
		wl := wlFor(node)
		r.inOcc, r.ejOcc, r.outOcc = 0, 0, 0
		for _, p := range r.in {
			for vc := range p.bufs {
				if p.bufs[vc].len() == 0 {
					continue
				}
				bit := uint64(1) << uint(p.slotBase+vc)
				r.inOcc |= bit
				if p.head(vc).Pkt.Dst == r.node {
					r.ejOcc |= bit
				}
			}
		}
		for _, op := range r.out {
			for vc, v := range op.vcs {
				if !v.empty() {
					r.outOcc |= 1 << uint(op.slotBase+vc)
				}
			}
		}
		n.refreshInSets(wl, node, r)
		if r.outOcc != 0 {
			wl.out.add(node)
		}
		s := n.nis[node]
		if s.sending != nil || s.queue.len() > 0 {
			wl.ni.add(node)
		}
	}
}

// rebuildActiveSets recomputes the masks and the network-wide worklists
// from the buffers. The sweep engine does not maintain them, so a
// switch back to the active engine starts here.
func (n *Network) rebuildActiveSets() {
	n.wl.clear()
	n.rebuildWorklists(func(int) *worklists { return &n.wl })
}

// checkActiveInvariants verifies that no buffered flit or pending
// packet has fallen off its worklist (which would strand it forever)
// and that the incremental slot masks match the buffers. Under the
// parallel engine the worklist that must hold each node is the owning
// shard's, and the cross-shard bookkeeping is additionally proven by
// checkParallelInvariants. It participates in CheckConservation, so
// every conservation-checked run also proves the worklist bookkeeping.
func (n *Network) checkActiveInvariants() error {
	if n.engine != EngineActive && n.engine != EngineParallel {
		return nil
	}
	if n.engine == EngineParallel {
		if err := n.checkParallelInvariants(); err != nil {
			return err
		}
	}
	wlFor := func(int) *worklists { return &n.wl }
	if n.engine == EngineParallel {
		wlFor = func(node int) *worklists { return &n.shards[n.shardOf[node]].wl }
	}
	for node, r := range n.routers {
		wl := wlFor(node)
		var inOcc, ejOcc, outOcc uint64
		for _, p := range r.in {
			for vc := range p.bufs {
				if p.bufs[vc].len() == 0 {
					continue
				}
				bit := uint64(1) << uint(p.slotBase+vc)
				inOcc |= bit
				if p.head(vc).Pkt.Dst == r.node {
					ejOcc |= bit
				}
			}
		}
		for _, op := range r.out {
			for vc, v := range op.vcs {
				if !v.empty() {
					outOcc |= 1 << uint(op.slotBase+vc)
				}
			}
		}
		if inOcc != r.inOcc || ejOcc != r.ejOcc || outOcc != r.outOcc {
			return fmt.Errorf("noc: node %d slot masks (in %b, ej %b, out %b) disagree with buffers (in %b, ej %b, out %b)",
				node, r.inOcc, r.ejOcc, r.outOcc, inOcc, ejOcc, outOcc)
		}
		if ejOcc != 0 && !wl.ej.has(node) {
			return fmt.Errorf("noc: node %d holds ejectable flits but is off the ejection worklist", node)
		}
		if inOcc&^ejOcc != 0 && !wl.sw.has(node) {
			return fmt.Errorf("noc: node %d holds transit flits but is off the switch worklist", node)
		}
		if outOcc != 0 && !wl.out.has(node) {
			return fmt.Errorf("noc: node %d holds output flits but is off the link worklist", node)
		}
		s := n.nis[node]
		if (s.sending != nil || s.queue.len() > 0) && !wl.ni.has(node) {
			return fmt.Errorf("noc: source %d has pending packets but is off the injection worklist", node)
		}
	}
	return nil
}

// rebuildModTab re-derives cycle % d for every registered divisor
// after a discontinuous cycle change (SkipTo, engine switch).
func (n *Network) rebuildModTab() {
	for _, d := range n.modDivs {
		n.modTab[d] = uint32(n.cycle % uint64(d))
	}
}

// Quiescent reports whether the network holds no traffic at all — no
// queued, partially injected, in-flight, or partially ejected packets.
// Every created packet is queued, resident, or fully ejected
// (CheckConservation), so created == ejected is exact and O(1); the
// idle fast-forward in core.Run gates on it every cycle.
func (n *Network) Quiescent() bool { return n.created == n.ejected }

// SkipTo advances the cycle counter to the given cycle without
// simulating the intervening cycles. It is only legal while the
// network is quiescent: with no flit anywhere and no packet pending, a
// cycle moves nothing, touches no statistics, and — because the
// round-robin pointers are derived from the cycle counter — leaves
// arbitration state exactly as if it had been stepped. Earlier or
// current targets are a no-op.
func (n *Network) SkipTo(cycle uint64) {
	if cycle <= n.cycle {
		return
	}
	if !n.Quiescent() {
		panic(fmt.Sprintf("noc: SkipTo(%d) on a non-quiescent network at cycle %d", cycle, n.cycle))
	}
	delta := cycle - n.cycle
	n.skipped += delta
	n.cycle = cycle
	n.rebuildModTab()
	if n.engine == EngineSweep {
		// The sweep engine stores its round-robin pointers and advances
		// them once per cycle even when idle; replay the skipped
		// advances so the two engines stay interchangeable.
		for _, r := range n.routers {
			if np := len(r.in); np > 0 {
				vcs := n.alg.VCs()
				r.rrEj = (r.rrEj + int(delta%uint64(np*vcs))) % (np * vcs)
				r.rrIn = (r.rrIn + int(delta%uint64(np))) % np
			}
			for _, op := range r.out {
				nv := len(op.vcs)
				op.rr = (op.rr + int(delta%uint64(nv))) % nv
			}
		}
	}
}
