package noc

import (
	"fmt"
	"math/bits"
)

// This file is the activity-driven simulation core: the default engine
// behind Network.Step. Instead of sweeping every router × port × VC in
// all four phases each cycle (the reference engine in network.go, kept
// as EngineSweep for cross-checking), each phase drains an incremental
// worklist at two granularities: bitmap active sets over nodes select
// which routers/sources a phase visits at all, and per-router
// slot-occupancy masks (router.inOcc/ejOcc/outOcc, one bit per strided
// port × VC slot, see mask.go) select which slots a visit touches —
// both updated exactly where flits move, so a cycle's cost is
// proportional to in-flight work, not network size. Determinism is
// preserved by construction: sets drain in ascending node order (the
// reference engine's iteration order), ports in the reference rotated
// order with per-port mask extraction, slots in the reference
// round-robin order, and the per-cycle round-robin pointers, which the
// reference engine advances unconditionally once per cycle, are derived
// from the cycle counter instead of stored, so skipping an idle router
// (or fast-forwarding whole idle cycles via SkipTo) cannot perturb
// arbitration. The cross-engine golden tests assert bit-identical
// Results against EngineSweep for every scenario class.

// Engine selects the implementation behind Network.Step.
type Engine int

const (
	// EngineActive is the activity-driven engine (the default): phases
	// visit only routers with buffered flits and sources with pending
	// packets.
	EngineActive Engine = iota
	// EngineSweep is the reference engine: every phase scans all
	// routers. It is retained as the golden oracle for equivalence
	// tests and as a debugging fallback.
	EngineSweep
	// EngineParallel is the domain-decomposed engine (parallel.go): the
	// routers are split into contiguous shards and each pipeline phase
	// runs shard-parallel between deterministic barriers, producing
	// results bit-identical to EngineActive at every shard count.
	EngineParallel
)

// String returns the engine's conventional name.
func (e Engine) String() string {
	switch e {
	case EngineActive:
		return "active"
	case EngineSweep:
		return "sweep"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// activeSet is a fixed-capacity bitmap of node indices, drained in
// ascending order so worklist scheduling cannot reorder arbitration.
type activeSet struct {
	words []uint64
}

func newActiveSet(n int) activeSet {
	return activeSet{words: make([]uint64, (n+63)/64)}
}

func (s *activeSet) add(i int)    { s.words[i>>6] |= 1 << (uint(i) & 63) }
func (s *activeSet) remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

func (s *activeSet) has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *activeSet) clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// forEach visits the members in ascending order. fn may remove the
// member currently being visited and may add or remove members of
// *other* sets; inserting new members into this set mid-iteration is
// not supported (no phase needs it — each phase only retires its own
// worklist entries and feeds the worklists of later phases).
func (s *activeSet) forEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			fn(base + b)
		}
	}
}

// worklists is one complete set of phase worklists: the ejection,
// switch, link and injection active sets. The active engine keeps a
// single network-wide set (Network.wl); the parallel engine keeps one
// per shard, each covering only the shard's contiguous router range, so
// two shards never write the same bitmap word concurrently.
type worklists struct {
	ej  activeSet // routers with a locally-destined input head
	sw  activeSet // routers with a transit input head
	out activeSet // routers with non-empty output queues
	ni  activeSet // sources with pending packets
}

func newWorklists(n int) worklists {
	return worklists{ej: newActiveSet(n), sw: newActiveSet(n), out: newActiveSet(n), ni: newActiveSet(n)}
}

func (w *worklists) clear() {
	w.ej.clear()
	w.sw.clear()
	w.out.clear()
	w.ni.clear()
}

// markSource enrolls src in the injection worklist that owns it: the
// shard's under the parallel engine, the network-wide one otherwise
// (the sweep engine ignores the sets, so the stray add is harmless and
// keeps InjectPacket branch-free on the engine).
func (n *Network) markSource(src int) {
	if n.engine == EngineParallel {
		n.shards[n.shardOf[src]].wl.ni.add(src)
		return
	}
	n.wl.ni.add(src)
}

// --- worklist maintenance, called wherever the active and parallel
// engines move a flit, against the worklists that own the touched
// router (wl). The sweep engine bypasses these (it pops/pushes the
// buffers directly); SetEngine rebuilds all masks and sets.

// refreshInSets recomputes node's membership in the ejection and
// switch worklists from its input-slot masks: the ejection stage wants
// routers with a locally-destined head anywhere, the switch stage
// routers with a transit head (non-empty slot whose head travels on).
func (n *Network) refreshInSets(wl *worklists, node int, r *router) {
	if r.ejOcc.any() {
		wl.ej.add(node)
	} else {
		wl.ej.remove(node)
	}
	if r.inOcc.anyOutside(r.ejOcc) {
		wl.sw.add(node)
	} else {
		wl.sw.remove(node)
	}
}

// inPop removes the head of p's vc slot, re-deriving the slot's
// occupancy and head-locality bits from the newly exposed head.
func (n *Network) inPop(wl *worklists, node int, r *router, p *inPort, vc int) flitH {
	h := p.pop(vc)
	n.telOcc[node]--
	bit := p.slotBase + vc
	switch {
	case p.bufs[vc].len() == 0:
		r.inOcc.clearBit(bit)
		r.ejOcc.clearBit(bit)
	case n.arena.dst[p.head(vc).pkt()] == int32(r.node):
		r.ejOcc.set(bit)
	default:
		r.ejOcc.clearBit(bit)
	}
	n.refreshInSets(wl, node, r)
	return h
}

// inPush appends h to p's vc slot of the downstream router. Under
// EngineParallel it is called concurrently by the shard passes — for
// same-shard link deliveries and for the end-of-pass inbox drains —
// but always with node owned by the calling shard and wl that shard's
// own worklists, so every write (buffer, masks, telemetry counters,
// worklist bitmaps) has a single writer per cycle.
func (n *Network) inPush(wl *worklists, node int, r *router, p *inPort, vc int, h flitH) {
	wasEmpty := p.bufs[vc].len() == 0
	p.push(vc, h)
	n.telOcc[node]++
	bit := p.slotBase + vc
	r.inOcc.set(bit)
	if wasEmpty && n.arena.dst[h.pkt()] == int32(r.node) {
		r.ejOcc.set(bit)
	}
	n.refreshInSets(wl, node, r)
}

// outPush appends h to the output queue (op, vc) of node's router.
func (n *Network) outPush(wl *worklists, node int, r *router, op *outPort, vc int, h flitH) {
	op.vcs[vc].push(h)
	n.telOcc[node]++
	r.outOcc.set(op.slotBase + vc)
	wl.out.add(node)
}

// outPop removes the head of the output queue (op, vc), retiring the
// slot — and, when the router's last output drains, the router — from
// the link worklist.
func (n *Network) outPop(wl *worklists, node int, r *router, op *outPort, vc int) flitH {
	v := op.vcs[vc]
	h := v.pop()
	n.telOcc[node]--
	if v.empty() {
		r.outOcc.clearBit(op.slotBase + vc)
		if !r.outOcc.any() {
			wl.out.remove(node)
		}
	}
	return h
}

// stepActive advances one cycle visiting only active routers/sources.
// Phase bodies mirror the reference engine (network.go) statement for
// statement; the only differences are worklist iteration, mask
// maintenance, and cycle-derived round-robin pointers.
func (n *Network) stepActive() {
	n.moved = false
	n.activeEject()
	n.activeSwitch()
	n.activeInject()
	n.activeLink()
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
	// Advance cycle % d for every registered round-robin divisor by
	// increment — cheaper than one division per visited router.
	for _, d := range n.modDivs {
		v := n.modTab[d] + 1
		if v == uint32(d) {
			v = 0
		}
		n.modTab[d] = v
	}
}

// activeEject mirrors ejectPhase over routers holding locally-destined
// input heads, touching only the slots whose bit is set in ejOcc.
// rrEj is derived: the reference advances it by one every cycle for
// every router, so during cycle c it equals c mod slots. The rotation
// runs over logical slot indices (port × VCs + vc, the reference
// modulus); each maps to its strided mask bit for the occupancy test.
func (n *Network) activeEject() {
	vcs := n.alg.VCs()
	a := &n.arena
	tail := a.pktLen - 1
	n.wl.ej.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			return
		}
		slots := np * vcs
		rrEj := int(n.modTab[slots])
		for k := 0; k < slots && budget > 0; k++ {
			s := rrEj + k
			if s >= slots {
				s -= slots
			}
			p := r.in[s/vcs]
			vc := s % vcs
			if !r.ejOcc.test(p.slotBase + vc) {
				continue
			}
			for budget > 0 && !p.empty(vc) && a.dst[p.head(vc).pkt()] == int32(r.node) {
				h := n.inPop(&n.wl, node, r, p, vc)
				pi := h.pkt()
				n.telEj[node]++
				budget--
				n.moved = true
				a.recv[pi]++
				if h.seq() == tail {
					n.ejected++
					n.col.PacketEjected(n.cycle, a.created[pi], a.injected[pi], a.pktLen, int(a.hops[pi]))
					if n.onEject != nil {
						n.materializePacket(&n.ejView, pi)
						n.onEject(&n.ejView)
					}
					n.recyclePacket(pi)
				}
			}
		}
	})
}

// activeSwitch mirrors switchPhase over routers holding transit heads,
// visiting the ports in the reference rotated order (rrIn derived like
// rrEj) and extracting each port's transit occupancy (inOcc minus the
// locally destined heads, which wait for the ejection stage) from the
// strided masks in one shift; ports with no transit head are skipped.
func (n *Network) activeSwitch() {
	vcs := n.alg.VCs()
	n.wl.sw.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		np := len(r.in)
		rrIn := int(n.modTab[np])
		for k := 0; k < np; k++ {
			p := r.in[(rrIn+k)%np]
			occ := r.inOcc.port(p.slotBase, vcs) &^ r.ejOcc.port(p.slotBase, vcs)
			if occ == 0 {
				continue
			}
			if n.switchPort(&n.wl, r, p, occ, vcs) {
				n.moved = true
			}
		}
	})
}

// switchPort runs the reference per-port VC arbitration over the
// occupied transit slots of one input port (occ holds the port's VC
// occupancy in its low bits): first movable flit in rrVC order wins
// the port's crossbar input for this cycle. It maintains the masks and
// the given worklists (the caller's shard worklists under the parallel
// engine), and reports whether a flit moved.
func (n *Network) switchPort(wl *worklists, r *router, p *inPort, occ uint64, vcs int) bool {
	a := &n.arena
	for j := 0; j < vcs; j++ {
		inVC := (p.rrVC + j) % vcs
		if occ&(1<<uint(inVC)) == 0 {
			continue
		}
		h := p.head(inVC)
		pi := h.pkt()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue // already advanced this cycle
		}
		entry := &p.route[inVC]
		if h.seq() == 0 {
			d := n.route(r, pi, inVC)
			op := r.outPortByDir(d.Dir)
			if op == nil {
				panic(fmt.Sprintf("noc: %s chose missing direction %v at node %d for %s",
					n.alg.Name(), d.Dir, r.node, n.pktString(pi)))
			}
			ovc := op.vcs[d.VC]
			if !n.canAdmit(ovc) {
				continue // allocation denied; retry next cycle
			}
			ovc.owner = pi
			*entry = routeEntry{active: true, port: op, vc: d.VC}
		} else if !entry.active {
			panic(fmt.Sprintf("noc: body flit %s at node %d without switching state", n.flitString(h), r.node))
		}
		ovc := entry.port.vcs[entry.vc]
		if ovc.owner != pi || ovc.full(n.cfg.OutBufCap) {
			continue // space denied; retry next cycle
		}
		n.inPop(wl, r.node, r, p, inVC)
		h = h.withVC(entry.vc)
		a.lastMove[fi] = n.cycle + 1
		n.outPush(wl, r.node, r, entry.port, entry.vc, h)
		if h.seq() == a.pktLen-1 {
			ovc.owner = -1
			entry.active = false
		}
		p.rrVC = (inVC + 1) % vcs
		return true // one flit per input port per cycle
	}
	return false
}

// activeInject mirrors injectPhase over sources with pending packets,
// retiring a source once its IP memory and in-progress worm drain.
func (n *Network) activeInject() {
	a := &n.arena
	n.wl.ni.forEach(func(node int) {
		q := n.nis[node]
		r := n.routers[node]
		n.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending < 0 {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pi := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pi, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %s",
						n.alg.Name(), d.Dir, node, n.pktString(pi)))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc) {
					ovc.owner = pi
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					n.col.SourceBlocked(n.cycle)
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				n.col.SourceBlocked(n.cycle)
				break
			}
			h := mkFlit(pi, q.nextSeq, q.route.vc)
			a.lastMove[a.flitIndex(h)] = n.cycle + 1
			n.outPush(&n.wl, node, r, q.route.port, q.route.vc, h)
			n.telInj[node]++
			n.moved = true
			q.nextSeq++
			budget--
			if h.seq() == 0 {
				a.injected[pi] = n.cycle
				n.injected++
				n.col.PacketInjected(n.cycle, a.pktLen)
			}
			if h.seq() == a.pktLen-1 {
				ovc.owner = -1
				q.sending = -1
				q.route = routeEntry{}
			}
		}
		if q.sending < 0 && q.queue.len() == 0 {
			n.wl.ni.remove(node)
		}
	})
}

// activeLink mirrors linkPhase over routers holding output flits,
// visiting the output ports in the reference ascending order and
// extracting each port's occupancy from the strided mask; empty ports
// are skipped. op.rr is derived like the other round-robin pointers.
func (n *Network) activeLink() {
	vcs := n.alg.VCs()
	rrVC := int(n.modTab[vcs]) // every port has alg.VCs() queues
	n.wl.out.forEach(func(node int) {
		r := n.routers[node]
		n.visits++
		for _, op := range r.out {
			occ := r.outOcc.port(op.slotBase, vcs)
			if occ == 0 {
				continue
			}
			n.linkPort(node, r, op, occ, vcs, rrVC)
		}
	})
}

// linkPort runs the reference per-link VC arbitration over one output
// port's occupied queues (occ holds the port's VC occupancy in its low
// bits): the first departable head in rr order traverses the link.
func (n *Network) linkPort(node int, r *router, op *outPort, occ uint64, vcs, rr int) {
	a := &n.arena
	for k := 0; k < vcs; k++ {
		vi := rr + k
		if vi >= vcs {
			vi -= vcs
		}
		if occ&(1<<uint(vi)) == 0 {
			continue
		}
		v := op.vcs[vi]
		h := v.head()
		fi := a.flitIndex(h)
		if a.lastMove[fi] >= n.cycle+1 {
			continue
		}
		if !n.canDepart(v) {
			continue
		}
		ip := op.peer
		if ip.full(vi, n.cfg.InBufCap) {
			continue
		}
		n.outPop(&n.wl, node, r, op, vi)
		a.lastMove[fi] = n.cycle + 1
		if h.seq() == 0 {
			a.hops[h.pkt()]++
		}
		n.linkFlits[op.ch.ID]++
		n.inPush(&n.wl, op.ch.Dst, op.peerRouter, ip, vi, h)
		n.moved = true
		return // one flit per physical link per cycle
	}
}

// SetEngine selects the implementation behind Step. Switching is legal
// at any point: the worklists are rebuilt from the buffers, so a
// network mid-simulation carries its state over exactly. Leaving
// EngineParallel stops its worker goroutines.
func (n *Network) SetEngine(e Engine) {
	switch e {
	case EngineActive:
		n.StopWorkers()
		n.rebuildActiveSets()
	case EngineParallel:
		n.StopWorkers()
		if n.shardCount == 0 {
			n.shardCount = defaultShards(n.topo.Nodes())
		}
		n.buildShards()
		n.rebuildParallelSets()
	case EngineSweep:
		n.StopWorkers()
	default:
		panic(fmt.Sprintf("noc: unknown engine %d", int(e)))
	}
	n.engine = e
}

// Engine returns the engine currently driving Step.
func (n *Network) Engine() Engine { return n.engine }

// rebuildWorklists recomputes the slot masks from the ground truth in
// the buffers and re-enrolls every node in the worklists chosen by
// wlFor — the network-wide set for the active engine, the owning
// shard's for the parallel engine.
func (n *Network) rebuildWorklists(wlFor func(node int) *worklists) {
	n.rebuildModTab()
	for node, r := range n.routers {
		wl := wlFor(node)
		r.inOcc.zero()
		r.ejOcc.zero()
		r.outOcc.zero()
		for _, p := range r.in {
			for vc := range p.bufs {
				if p.bufs[vc].len() == 0 {
					continue
				}
				bit := p.slotBase + vc
				r.inOcc.set(bit)
				if n.arena.dst[p.head(vc).pkt()] == int32(r.node) {
					r.ejOcc.set(bit)
				}
			}
		}
		for _, op := range r.out {
			for vc, v := range op.vcs {
				if !v.empty() {
					r.outOcc.set(op.slotBase + vc)
				}
			}
		}
		n.refreshInSets(wl, node, r)
		if r.outOcc.any() {
			wl.out.add(node)
		}
		s := n.nis[node]
		if s.sending >= 0 || s.queue.len() > 0 {
			wl.ni.add(node)
		}
	}
}

// rebuildActiveSets recomputes the masks and the network-wide worklists
// from the buffers. The sweep engine does not maintain them, so a
// switch back to the active engine starts here.
func (n *Network) rebuildActiveSets() {
	n.wl.clear()
	n.rebuildWorklists(func(int) *worklists { return &n.wl })
}

// checkActiveInvariants verifies that no buffered flit or pending
// packet has fallen off its worklist (which would strand it forever)
// and that the incremental slot masks match the buffers. Under the
// parallel engine the worklist that must hold each node is the owning
// shard's, and the cross-shard bookkeeping is additionally proven by
// checkParallelInvariants. It participates in CheckConservation, so
// every conservation-checked run also proves the worklist bookkeeping.
func (n *Network) checkActiveInvariants() error {
	if n.engine != EngineActive && n.engine != EngineParallel {
		return nil
	}
	if n.engine == EngineParallel {
		if err := n.checkParallelInvariants(); err != nil {
			return err
		}
	}
	wlFor := func(int) *worklists { return &n.wl }
	if n.engine == EngineParallel {
		wlFor = func(node int) *worklists { return &n.shards[n.shardOf[node]].wl }
	}
	for node, r := range n.routers {
		wl := wlFor(node)
		// Rebuild into the network-owned scratch masks: conservation
		// runs once per replication and must stay allocation-free on a
		// warm workspace, like the rest of the check.
		n.invIn = resizeMask(n.invIn, len(r.in)*n.stride)
		n.invEj = resizeMask(n.invEj, len(r.in)*n.stride)
		n.invOut = resizeMask(n.invOut, len(r.out)*n.stride)
		inOcc, ejOcc, outOcc := n.invIn, n.invEj, n.invOut
		var hasEj, hasTransit bool
		for _, p := range r.in {
			for vc := range p.bufs {
				if p.bufs[vc].len() == 0 {
					continue
				}
				bit := p.slotBase + vc
				inOcc.set(bit)
				if n.arena.dst[p.head(vc).pkt()] == int32(r.node) {
					ejOcc.set(bit)
					hasEj = true
				} else {
					hasTransit = true
				}
			}
		}
		var hasOut bool
		for _, op := range r.out {
			for vc, v := range op.vcs {
				if !v.empty() {
					outOcc.set(op.slotBase + vc)
					hasOut = true
				}
			}
		}
		if !inOcc.eq(r.inOcc) || !ejOcc.eq(r.ejOcc) || !outOcc.eq(r.outOcc) {
			return fmt.Errorf("noc: node %d slot masks (in %v, ej %v, out %v) disagree with buffers (in %v, ej %v, out %v)",
				node, r.inOcc, r.ejOcc, r.outOcc, inOcc, ejOcc, outOcc)
		}
		if hasEj && !wl.ej.has(node) {
			return fmt.Errorf("noc: node %d holds ejectable flits but is off the ejection worklist", node)
		}
		if hasTransit && !wl.sw.has(node) {
			return fmt.Errorf("noc: node %d holds transit flits but is off the switch worklist", node)
		}
		if hasOut && !wl.out.has(node) {
			return fmt.Errorf("noc: node %d holds output flits but is off the link worklist", node)
		}
		s := n.nis[node]
		if (s.sending >= 0 || s.queue.len() > 0) && !wl.ni.has(node) {
			return fmt.Errorf("noc: source %d has pending packets but is off the injection worklist", node)
		}
	}
	return nil
}

// rebuildModTab re-derives cycle % d for every registered divisor
// after a discontinuous cycle change (SkipTo, engine switch).
func (n *Network) rebuildModTab() {
	for _, d := range n.modDivs {
		n.modTab[d] = uint32(n.cycle % uint64(d))
	}
}

// Quiescent reports whether the network holds no traffic at all — no
// queued, partially injected, in-flight, or partially ejected packets.
// Every created packet is queued, resident, or fully ejected
// (CheckConservation), so created == ejected is exact and O(1); the
// idle fast-forward in core.Run gates on it every cycle.
func (n *Network) Quiescent() bool { return n.created == n.ejected }

// SkipTo advances the cycle counter to the given cycle without
// simulating the intervening cycles. It is only legal while the
// network is quiescent: with no flit anywhere and no packet pending, a
// cycle moves nothing, touches no statistics, and — because the
// round-robin pointers are derived from the cycle counter — leaves
// arbitration state exactly as if it had been stepped. Earlier or
// current targets are a no-op.
func (n *Network) SkipTo(cycle uint64) {
	if cycle <= n.cycle {
		return
	}
	if !n.Quiescent() {
		panic(fmt.Sprintf("noc: SkipTo(%d) on a non-quiescent network at cycle %d", cycle, n.cycle))
	}
	delta := cycle - n.cycle
	n.skipped += delta
	n.cycle = cycle
	n.rebuildModTab()
	if n.engine == EngineSweep {
		// The sweep engine stores its round-robin pointers and advances
		// them once per cycle even when idle; replay the skipped
		// advances so the two engines stay interchangeable.
		for _, r := range n.routers {
			if np := len(r.in); np > 0 {
				vcs := n.alg.VCs()
				r.rrEj = (r.rrEj + int(delta%uint64(np*vcs))) % (np * vcs)
				r.rrIn = (r.rrIn + int(delta%uint64(np))) % np
			}
			for _, op := range r.out {
				nv := len(op.vcs)
				op.rr = (op.rr + int(delta%uint64(nv))) % nv
			}
		}
	}
}
