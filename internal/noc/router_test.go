package noc

import (
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

func TestOutVCQueueFIFO(t *testing.T) {
	v := &outVC{owner: -1}
	for i := 0; i < 3; i++ {
		v.push(mkFlit(0, i, 0))
	}
	if v.empty() || !v.full(3) {
		t.Fatal("fill state wrong")
	}
	for i := 0; i < 3; i++ {
		h := v.pop()
		if h.seq() != i {
			t.Fatalf("pop order: got seq %d at position %d", h.seq(), i)
		}
	}
	if !v.empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestOutVCFullRespectsCapacity(t *testing.T) {
	v := &outVC{owner: -1}
	for i := 0; i < 2; i++ {
		v.push(mkFlit(0, i, 0))
	}
	if v.full(3) {
		t.Fatal("2 of 3 reported full")
	}
	if !v.full(2) {
		t.Fatal("2 of 2 not full")
	}
}

func TestInPortPerVCSlots(t *testing.T) {
	ch := topology.Channel{ID: 0, Src: 0, Dst: 1, Dir: topology.DirClockwise}
	p := &inPort{ch: ch, bufs: make([]fifo[flitH], 2), route: make([]routeEntry, 2)}
	p.push(0, mkFlit(0, 0, 0))
	p.push(1, mkFlit(0, 1, 1))
	if p.empty(0) || p.empty(1) {
		t.Fatal("slots empty after push")
	}
	if p.buffered() != 2 {
		t.Fatalf("buffered = %d", p.buffered())
	}
	if p.full(0, 1) != true || p.full(0, 2) != false {
		t.Fatal("full computation")
	}
	h := p.pop(0)
	if h.seq() != 0 || !p.empty(0) || p.empty(1) {
		t.Fatal("pop affected wrong slot")
	}
}

func TestRouterConstruction(t *testing.T) {
	s := topology.MustSpidergon(8)
	r := newRouter(3, s, 2, 2)
	if len(r.in) != 3 || len(r.out) != 3 {
		t.Fatalf("ports: %d in, %d out", len(r.in), len(r.out))
	}
	for _, op := range r.out {
		if len(op.vcs) != 2 {
			t.Fatal("vc count")
		}
	}
	if r.outPortByDir(topology.DirAcross) == nil {
		t.Fatal("across port missing")
	}
	if r.outPortByDir(topology.DirEast) != nil {
		t.Fatal("phantom east port")
	}
	// Input port lookup by channel id.
	in := s.In(3)
	for _, c := range in {
		if r.inPortByChannel(c.ID) == nil {
			t.Fatalf("input port for channel %v missing", c)
		}
	}
	if r.inPortByChannel(9999) != nil {
		t.Fatal("phantom input port")
	}
	if r.bufferedFlits() != 0 {
		t.Fatal("fresh router holds flits")
	}
}

func TestCongestionViewBounds(t *testing.T) {
	s := topology.MustSpidergon(8)
	r := newRouter(0, s, 2, 2)
	v := congestionView{r: r, cap: 3}
	if occ := v.OutputOccupancy(topology.DirClockwise, 0); occ != 0 {
		t.Fatalf("fresh occupancy = %d", occ)
	}
	if !v.OutputFree(topology.DirClockwise, 0) {
		t.Fatal("fresh queue not free")
	}
	// Missing direction and out-of-range VC report busy.
	if occ := v.OutputOccupancy(topology.DirEast, 0); occ <= 3 {
		t.Fatal("missing direction not over-capacity")
	}
	if v.OutputFree(topology.DirClockwise, 5) {
		t.Fatal("out-of-range vc reported free")
	}
	// Owned queues count the reservation.
	op := r.outPortByDir(topology.DirClockwise)
	op.vcs[0].owner = 1
	if occ := v.OutputOccupancy(topology.DirClockwise, 0); occ != 1 {
		t.Fatalf("owned occupancy = %d", occ)
	}
	if v.OutputFree(topology.DirClockwise, 0) {
		t.Fatal("owned queue reported free")
	}
}

func TestNoDeadlockVCTAndSAFSaturated(t *testing.T) {
	for _, mode := range []Switching{VirtualCutThrough, StoreAndForward} {
		cfg := DefaultConfig()
		cfg.Switching = mode
		cfg.OutBufCap = 6
		s := topology.MustSpidergon(10)
		net, err := NewNetwork(s, mustSpidergonAlg(t, 10), cfg, newCol())
		if err != nil {
			t.Fatal(err)
		}
		rng := newTestRNG(13)
		for c := 0; c < 1500; c++ {
			for node := 0; node < 10; node++ {
				if rng.next()%4 == 0 {
					dst := int(rng.next() % 10)
					if dst != node {
						_ = net.Inject(node, dst)
					}
				}
			}
			net.Step()
			if net.IdleCycles() > 200 && net.InFlightFlits() > 0 {
				t.Fatalf("%v deadlocked", mode)
			}
		}
		if err := net.Drain(300000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

// mustSpidergonAlg and newCol are small helpers for switching tests.
func mustSpidergonAlg(t *testing.T, n int) routing.Algorithm {
	t.Helper()
	return routing.NewSpidergonRouting(topology.MustSpidergon(n))
}

func newCol() *stats.Collector { return stats.NewCollector(0) }
