// Package noc is a cycle-accurate model of the wormhole-switched
// Network-on-Chip the paper simulates in OMNeT++: packets of constant
// flit count are injected by per-node IPs with Poisson interarrivals,
// head flits are routed hop by hop, body flits follow the path the head
// opened, and the paper's exact buffer architecture is reproduced —
// one-flit input buffers per incoming link, a configurable number of
// output queues (virtual channels) per outgoing link with three-flit
// capacity, and a network interface whose sink consumes flits FIFO.
//
// The model is synchronous: Network.Step advances one clock cycle, in
// which every flit moves at most one pipeline stage (ejection, switch
// traversal, injection, link traversal). All arbitration is round-robin
// and all iteration orders are fixed, so simulations are deterministic.
//
// # Engines
//
// Three interchangeable engines implement Step. The default
// activity-driven engine (active.go) drains per-phase worklists —
// bitmap active sets over routers and sources, updated exactly where
// flits move — so a cycle costs time proportional to in-flight work
// rather than network size, and a fully quiescent network can
// fast-forward across idle cycles via SkipTo. EngineParallel
// (parallel.go) runs ejection, switch+inject and link as ONE fused
// shard-local pass over contiguous router shards with a single
// sense-reversing barrier per cycle (two only when an OnEject
// callback forces the ejection span to split off). Cross-shard link
// decisions resolve inside the pass through per-(port,VC) credit
// counters snapshotted at each barrier: a positive credit proves
// downstream room and the flit travels speculatively through a
// per-shard-pair mailbox; a spent credit waits point-to-point for the
// downstream shard's pops-done mark and re-reads exact occupancy.
// Each shard drains its inbound mailboxes at the end of its own pass
// in canonical sender order, so cycle-boundary state is bit-identical
// to the serial engines and the barrier's serial section only merges
// counters and refreshes credits — it never replays a link decision
// or moves a flit. EngineSweep is the original scan-everything
// reference; the cross-engine tests prove all three produce
// bit-identical results for every scenario class.
//
// # Arena and handle layout
//
// The hot path is pointer-free. Packet state lives in a
// struct-of-arrays arena (arena.go): parallel slices for ID, endpoints,
// creation/injection cycles, hop and receive counts, indexed by a small
// integer. A flit is a 64-bit handle packing (packet index, sequence
// number, VC tag); since the packet length is constant per network,
// seq == PacketLen-1 identifies the tail without any per-packet length
// field, and the flit's one-stage-per-cycle stamp lives at the dense
// index pkt*PacketLen+seq of one shared lastMove array. Router input
// slots, output VC queues and the NI source queues store these handle
// words (and packet indices) directly, so the per-phase drains are
// linear scans over dense integer arrays — no heap object is chased or
// allocated inside a cycle. The freelist of recycled packets is an
// index stack on the arena; with pooling off the arena grows
// monotonically instead, which changes allocator traffic but never
// results.
//
// Per-router slot-occupancy masks (mask.go) are multi-word bitmaps with
// a power-of-two per-port stride, so any degree × VC product is
// supported by every engine (the old single-word masks forced large
// routers onto the sweep engine).
//
// # Observer views
//
// The exported Packet and Flit structs are materialized views over the
// arena, built only at the observer boundary: the OnEject callback
// receives a *Packet filled from the ejected record, and InjectPacket
// returns one for the new lease. The views are scratch structs owned by
// the network — valid until the callback returns (or the next
// InjectPacket call); observers copy fields out rather than retain the
// pointer, exactly as the recycling contract already required. Nested
// use works: an OnEject callback may call InjectPacket and still read
// its own packet afterwards, because ejection and injection materialize
// into separate scratch views.
package noc
