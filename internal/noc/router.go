package noc

import (
	"gonoc/internal/topology"
)

// outVC is one output queue of a physical output channel — the paper's
// "multiple output queues for each physical link". It is a FIFO of
// flits with an ownership discipline guaranteeing that the flits of two
// packets never interleave within the queue: owner is the packet whose
// worm is currently entering, set when its head flit is accepted and
// cleared when its tail flit is accepted (trailing packets then queue
// strictly behind).
type outVC struct {
	q     []*Flit
	owner *Packet
}

func (v *outVC) full(cap int) bool { return len(v.q) >= cap }
func (v *outVC) empty() bool       { return len(v.q) == 0 }
func (v *outVC) head() *Flit       { return v.q[0] }

func (v *outVC) push(f *Flit) { v.q = append(v.q, f) }

func (v *outVC) pop() *Flit {
	f := v.q[0]
	copy(v.q, v.q[1:])
	v.q[len(v.q)-1] = nil
	v.q = v.q[:len(v.q)-1]
	return f
}

// outPort is one physical output channel with its VC queues and the
// round-robin pointer arbitrating them onto the link.
type outPort struct {
	ch  topology.Channel
	vcs []*outVC
	rr  int // next VC to consider for link traversal
}

// routeEntry is the switching state the head flit configures: flits of
// the owning packet arriving on one (input port, VC tag) are forwarded
// to the assigned output queue — the paper's "pre-configured switching
// functions on the output queue of the channel belonging to the path
// opened by the head flit".
type routeEntry struct {
	active bool
	port   *outPort
	vc     int
}

// inPort is one incoming link. The receive buffering is one FIFO slot
// set per virtual channel (capacity Config.InBufCap flits each, 1 in
// the paper): virtual-channel flow control demultiplexes arriving flits
// by their VC tag into per-VC slots. A single slot shared by both VCs
// would re-couple them through head-of-line blocking and void the
// dateline deadlock proof: a blocked VC-0 flit occupying the shared
// slot stops VC-1 traffic behind it, letting the dependency chain
// re-enter VC 0 past the dateline and close a cycle.
type inPort struct {
	ch    topology.Channel
	bufs  [][]*Flit    // per-VC receive slots
	route []routeEntry // per-VC switching state
	rrVC  int          // round-robin VC pointer for the switch stage
}

func (p *inPort) full(vc, cap int) bool { return len(p.bufs[vc]) >= cap }
func (p *inPort) empty(vc int) bool     { return len(p.bufs[vc]) == 0 }
func (p *inPort) head(vc int) *Flit     { return p.bufs[vc][0] }

func (p *inPort) push(vc int, f *Flit) { p.bufs[vc] = append(p.bufs[vc], f) }

func (p *inPort) pop(vc int) *Flit {
	b := p.bufs[vc]
	f := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	p.bufs[vc] = b[:len(b)-1]
	return f
}

// buffered counts flits across all VC slots of the port.
func (p *inPort) buffered() int {
	n := 0
	for _, b := range p.bufs {
		n += len(b)
	}
	return n
}

// router is the switching element of one node.
type router struct {
	node int
	in   []*inPort  // indexed like topology.In(node)
	out  []*outPort // indexed like topology.Out(node)
	rrIn int        // round-robin start for switch allocation
	rrEj int        // round-robin start for the ejection port
}

func newRouter(node int, t topology.Topology, vcs int) *router {
	r := &router{node: node}
	for _, c := range t.In(node) {
		r.in = append(r.in, &inPort{ch: c, bufs: make([][]*Flit, vcs), route: make([]routeEntry, vcs)})
	}
	for _, c := range t.Out(node) {
		op := &outPort{ch: c}
		for v := 0; v < vcs; v++ {
			op.vcs = append(op.vcs, &outVC{})
		}
		r.out = append(r.out, op)
	}
	return r
}

// outPortByDir returns the output port in the given direction, or nil.
func (r *router) outPortByDir(d topology.Direction) *outPort {
	for _, p := range r.out {
		if p.ch.Dir == d {
			return p
		}
	}
	return nil
}

// inPortByChannel returns the input port for channel id, or nil.
func (r *router) inPortByChannel(id int) *inPort {
	for _, p := range r.in {
		if p.ch.ID == id {
			return p
		}
	}
	return nil
}

// bufferedFlits counts flits resident in this router's buffers.
func (r *router) bufferedFlits() int {
	n := 0
	for _, p := range r.in {
		n += p.buffered()
	}
	for _, p := range r.out {
		for _, v := range p.vcs {
			n += len(v.q)
		}
	}
	return n
}
