package noc

import (
	"gonoc/internal/topology"
)

// fifo is a head-index queue: pop returns the head in O(1) without
// shifting the remaining elements (the seed implementation copied the
// whole backing slice on every pop). The backing slice is reset when
// the queue drains and compacted once the dead prefix crosses a
// threshold, so steady-state push/pop traffic cannot grow it without
// bound.
type fifo[T any] struct {
	items []T
	start int
}

// compactAt is the minimum dead prefix before a fifo considers sliding
// the live elements down; compaction additionally waits until the dead
// prefix covers at least half the backing array, so each compaction
// moves no more elements than the pops that earned it — amortized O(1)
// even for the unbounded NI source queue past saturation.
const compactAt = 32

func (q *fifo[T]) len() int { return len(q.items) - q.start }
func (q *fifo[T]) head() T  { return q.items[q.start] }
func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.items[q.start]
	q.items[q.start] = zero
	q.start++
	switch {
	case q.start == len(q.items):
		q.items = q.items[:0]
		q.start = 0
	case q.start >= compactAt && q.start*2 >= len(q.items):
		n := copy(q.items, q.items[q.start:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = zero
		}
		q.items = q.items[:n]
		q.start = 0
	}
	return v
}

// live returns the queued elements in FIFO order. The slice aliases the
// queue; callers must not retain it across a push or pop.
func (q *fifo[T]) live() []T { return q.items[q.start:] }

// reset empties the queue, zeroing the live elements (dropping their
// references) but keeping the backing array for reuse.
func (q *fifo[T]) reset() {
	var zero T
	for i := q.start; i < len(q.items); i++ {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	q.start = 0
}

// bytes reports the resident bytes of the queue's live span at elemSize
// bytes per element (length-based, so the figure is deterministic).
func (q *fifo[T]) bytes(elemSize int) uint64 { return uint64(q.len() * elemSize) }

// outVC is one output queue of a physical output channel — the paper's
// "multiple output queues for each physical link". It is a FIFO of
// flit handles with an ownership discipline guaranteeing that the flits
// of two packets never interleave within the queue: owner is the arena
// index of the packet whose worm is currently entering (-1 when none),
// set when its head flit is accepted and cleared when its tail flit is
// accepted (trailing packets then queue strictly behind).
type outVC struct {
	q     fifo[flitH]
	owner int32
}

func (v *outVC) full(cap int) bool { return v.q.len() >= cap }
func (v *outVC) empty() bool       { return v.q.len() == 0 }
func (v *outVC) head() flitH       { return v.q.head() }
func (v *outVC) push(h flitH)      { v.q.push(h) }
func (v *outVC) pop() flitH        { return v.q.pop() }

// flits returns the queued handles in FIFO order (see fifo.live).
func (v *outVC) flits() []flitH { return v.q.live() }

// outPort is one physical output channel with its VC queues and the
// round-robin pointer arbitrating them onto the link.
type outPort struct {
	ch       topology.Channel
	vcs      []*outVC
	rr       int // next VC to consider for link traversal
	slotBase int // bit index of vcs[0] in the router's strided slot masks

	// peer and peerRouter cache the downstream input port and router of
	// the channel (resolved once by NewNetwork), sparing the active
	// engine a per-traversal lookup.
	peer       *inPort
	peerRouter *router

	// credits is the parallel engine's cycle-start credit snapshot of
	// the downstream input port: credits[vc] counts the free slots of
	// peer.bufs[vc] at the last barrier (refreshBoundaryCredits).
	// Maintained — and allocated — only on cross-shard ports. A positive
	// count proves the slot still has room at the serial decision point
	// mid-cycle (this port is the slot's only producer, so its occupancy
	// can only shrink until this port pushes), licensing speculative
	// delivery; a zero count makes the port synchronize on the
	// downstream shard's pop completion and re-read exact occupancy.
	credits []int16
}

// routeEntry is the switching state the head flit configures: flits of
// the owning packet arriving on one (input port, VC tag) are forwarded
// to the assigned output queue — the paper's "pre-configured switching
// functions on the output queue of the channel belonging to the path
// opened by the head flit".
type routeEntry struct {
	active bool
	port   *outPort
	vc     int
}

// inPort is one incoming link. The receive buffering is one FIFO slot
// set per virtual channel (capacity Config.InBufCap flits each, 1 in
// the paper): virtual-channel flow control demultiplexes arriving flits
// by their VC tag into per-VC slots. A single slot shared by both VCs
// would re-couple them through head-of-line blocking and void the
// dateline deadlock proof: a blocked VC-0 flit occupying the shared
// slot stops VC-1 traffic behind it, letting the dependency chain
// re-enter VC 0 past the dateline and close a cycle.
type inPort struct {
	ch       topology.Channel
	bufs     []fifo[flitH] // per-VC receive slots
	route    []routeEntry  // per-VC switching state
	rrVC     int           // round-robin VC pointer for the switch stage
	slotBase int           // bit index of bufs[0] in the router's strided slot masks
}

func (p *inPort) full(vc, cap int) bool { return p.bufs[vc].len() >= cap }
func (p *inPort) empty(vc int) bool     { return p.bufs[vc].len() == 0 }
func (p *inPort) head(vc int) flitH     { return p.bufs[vc].head() }
func (p *inPort) push(vc int, h flitH)  { p.bufs[vc].push(h) }
func (p *inPort) pop(vc int) flitH      { return p.bufs[vc].pop() }

// buffered counts flits across all VC slots of the port.
func (p *inPort) buffered() int {
	n := 0
	for i := range p.bufs {
		n += p.bufs[i].len()
	}
	return n
}

// router is the switching element of one node.
type router struct {
	node int
	in   []*inPort  // indexed like topology.In(node)
	out  []*outPort // indexed like topology.Out(node)
	rrIn int        // round-robin start for switch allocation
	rrEj int        // round-robin start for the ejection port

	// Slot-occupancy masks for the activity-driven engine, one bit per
	// strided (port, VC) slot (see slotMask for the layout). inOcc
	// marks non-empty input slots; ejOcc the subset whose head flit is
	// destined to this node (so the switch stage skips them and the
	// ejection stage finds them without scanning); outOcc marks
	// non-empty output queues. The sweep engine ignores them; SetEngine
	// rebuilds them from the buffers.
	inOcc  slotMask
	ejOcc  slotMask
	outOcc slotMask

	// byDir maps a routing direction to its output port (nil when the
	// node has no channel that way); Direction is a small dense enum,
	// so a flat table replaces the linear scan on every routing
	// decision.
	byDir [topology.DirCount]*outPort
}

// newRouter builds one node's switching element with a flattened slot
// layout: the port structs, the per-VC receive slots, the switching
// entries, and all output VC queues of the node each live in a single
// contiguous block, so the per-cycle phase walks touch a handful of
// cache lines per router instead of one heap object per slot. stride is
// the power-of-two mask stride ports are spaced at (Network.stride).
func newRouter(node int, t topology.Topology, vcs, stride int) *router {
	r := &router{node: node}
	ins, outs := t.In(node), t.Out(node)
	inBlock := make([]inPort, len(ins))
	bufBlock := make([]fifo[flitH], len(ins)*vcs)
	routeBlock := make([]routeEntry, len(ins)*vcs)
	r.in = make([]*inPort, len(ins))
	for i, c := range ins {
		inBlock[i] = inPort{ch: c, bufs: bufBlock[i*vcs : (i+1)*vcs], route: routeBlock[i*vcs : (i+1)*vcs], slotBase: i * stride}
		r.in[i] = &inBlock[i]
	}
	outBlock := make([]outPort, len(outs))
	vcBlock := make([]outVC, len(outs)*vcs)
	r.out = make([]*outPort, len(outs))
	for i, c := range outs {
		op := &outBlock[i]
		op.ch = c
		op.slotBase = i * stride
		op.vcs = make([]*outVC, vcs)
		for v := 0; v < vcs; v++ {
			ov := &vcBlock[i*vcs+v]
			ov.owner = -1
			op.vcs[v] = ov
		}
		r.out[i] = op
		if int(c.Dir) < len(r.byDir) && r.byDir[c.Dir] == nil {
			r.byDir[c.Dir] = op // first match, like the scan it replaces
		}
	}
	r.inOcc = newSlotMask(len(ins) * stride)
	r.ejOcc = newSlotMask(len(ins) * stride)
	r.outOcc = newSlotMask(len(outs) * stride)
	return r
}

// outPortByDir returns the output port in the given direction, or nil.
func (r *router) outPortByDir(d topology.Direction) *outPort {
	if int(d) < len(r.byDir) {
		return r.byDir[d]
	}
	return nil
}

// inPortByChannel returns the input port for channel id, or nil.
func (r *router) inPortByChannel(id int) *inPort {
	for _, p := range r.in {
		if p.ch.ID == id {
			return p
		}
	}
	return nil
}

// bufferedFlits counts flits resident in this router's buffers.
func (r *router) bufferedFlits() int {
	n := 0
	for _, p := range r.in {
		n += p.buffered()
	}
	for _, p := range r.out {
		for _, v := range p.vcs {
			n += v.q.len()
		}
	}
	return n
}
