// Package noc is a cycle-accurate model of the wormhole-switched
// Network-on-Chip the paper simulates in OMNeT++: packets of constant
// flit count are injected by per-node IPs with Poisson interarrivals,
// head flits are routed hop by hop, body flits follow the path the head
// opened, and the paper's exact buffer architecture is reproduced —
// one-flit input buffers per incoming link, a configurable number of
// output queues (virtual channels) per outgoing link with three-flit
// capacity, and a network interface whose sink consumes flits FIFO.
//
// The model is synchronous: Network.Step advances one clock cycle, in
// which every flit moves at most one pipeline stage (ejection, switch
// traversal, injection, link traversal). All arbitration is round-robin
// and all iteration orders are fixed, so simulations are deterministic.
//
// Two interchangeable engines implement Step. The default
// activity-driven engine (active.go) drains per-phase worklists —
// bitmap active sets over routers and sources, updated exactly where
// flits move — so a cycle costs time proportional to in-flight work
// rather than network size, and a fully quiescent network can
// fast-forward across idle cycles via SkipTo. EngineSweep is the
// original scan-everything reference; the cross-engine tests prove the
// two produce bit-identical results for every scenario class.
package noc

import "fmt"

// Packet is one application message, split into Len flits for
// transmission (the paper uses constant 6-flit packets).
type Packet struct {
	// ID is unique per network, in creation order.
	ID uint64
	// Src and Dst are node ids.
	Src, Dst int
	// Len is the number of flits.
	Len int
	// CreatedCycle is when the IP generated the packet.
	CreatedCycle uint64
	// InjectedCycle is when the head flit entered the network (left
	// the IP source queue); meaningful once injected.
	InjectedCycle uint64
	// Hops counts link traversals of the head flit.
	Hops int

	recv  int    // flits consumed at the destination so far
	flits []Flit // backing storage for all of the packet's flits
	free  bool   // resident on the network's packet pool (not leased)
}

// String renders a compact identification of the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d %d->%d len=%d", p.ID, p.Src, p.Dst, p.Len)
}

// Flit is the unit of flow control: packets travel as a head flit
// followed by body flits and a tail flit (a 1-flit packet's single flit
// is both head and tail).
type Flit struct {
	// Pkt is the packet this flit belongs to.
	Pkt *Packet
	// Seq is the flit's 0-based position within the packet.
	Seq int
	// VC is the virtual-channel tag of the channel the flit currently
	// occupies; receivers demultiplex switching state by it.
	VC int

	lastMove uint64 // cycle of the flit's last stage advance
}

// IsHead reports whether this is the packet's head flit.
func (f *Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether this is the packet's tail flit.
func (f *Flit) IsTail() bool { return f.Seq == f.Pkt.Len-1 }

// String renders the flit with its packet and role.
func (f *Flit) String() string {
	role := "body"
	if f.IsHead() {
		role = "head"
	}
	if f.IsTail() {
		if f.IsHead() {
			role = "head+tail"
		} else {
			role = "tail"
		}
	}
	return fmt.Sprintf("%v flit %d (%s) vc%d", f.Pkt, f.Seq, role, f.VC)
}
