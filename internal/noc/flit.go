package noc

import "fmt"

// Packet describes one application message, split into Len flits for
// transmission (the paper uses constant 6-flit packets). Values of this
// type are materialized views over the packet arena (see the package
// documentation): the engine keeps packet state in struct-of-arrays
// records and builds a Packet only at the observer boundary — the
// OnEject callback argument and InjectPacket's return value. A view is
// valid until the callback returns (or the next InjectPacket call);
// copy fields out rather than retaining the pointer.
type Packet struct {
	// ID is unique per network, in creation order.
	ID uint64
	// Src and Dst are node ids.
	Src, Dst int
	// Len is the number of flits.
	Len int
	// CreatedCycle is when the IP generated the packet.
	CreatedCycle uint64
	// InjectedCycle is when the head flit entered the network (left
	// the IP source queue); meaningful once injected.
	InjectedCycle uint64
	// Hops counts link traversals of the head flit.
	Hops int
}

// String renders a compact identification of the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d %d->%d len=%d", p.ID, p.Src, p.Dst, p.Len)
}

// Flit is the unit of flow control: packets travel as a head flit
// followed by body flits and a tail flit (a 1-flit packet's single flit
// is both head and tail). Like Packet it is a boundary view: inside the
// engine a flit is a packed 64-bit handle (arena.go), and this struct
// exists for observers, tests and diagnostics.
type Flit struct {
	// Pkt is the packet this flit belongs to.
	Pkt *Packet
	// Seq is the flit's 0-based position within the packet.
	Seq int
	// VC is the virtual-channel tag of the channel the flit currently
	// occupies; receivers demultiplex switching state by it.
	VC int
}

// IsHead reports whether this is the packet's head flit.
func (f *Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether this is the packet's tail flit.
func (f *Flit) IsTail() bool { return f.Seq == f.Pkt.Len-1 }

// String renders the flit with its packet and role.
func (f *Flit) String() string {
	role := "body"
	if f.IsHead() {
		role = "head"
	}
	if f.IsTail() {
		if f.IsHead() {
			role = "head+tail"
		} else {
			role = "tail"
		}
	}
	return fmt.Sprintf("%v flit %d (%s) vc%d", f.Pkt, f.Seq, role, f.VC)
}
