package noc

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// Handle packing must round-trip every field at its boundary values,
// and retagging must touch only the VC bits — the switch stage relies
// on withVC preserving (pkt, seq) exactly.
func TestFlitHandleRoundTrip(t *testing.T) {
	pkts := []int32{0, 1, 63, math.MaxInt32}
	seqs := []int{0, 1, MaxPacketLen - 1}
	vcs := []int{0, 1, MaxVCs - 1}
	for _, p := range pkts {
		for _, s := range seqs {
			for _, v := range vcs {
				h := mkFlit(p, s, v)
				if h.pkt() != p || h.seq() != s || h.vc() != v {
					t.Fatalf("mkFlit(%d,%d,%d) unpacked to (%d,%d,%d)",
						p, s, v, h.pkt(), h.seq(), h.vc())
				}
				for _, nv := range vcs {
					r := h.withVC(nv)
					if r.pkt() != p || r.seq() != s || r.vc() != nv {
						t.Fatalf("withVC(%d) corrupted (%d,%d,%d) to (%d,%d,%d)",
							nv, p, s, v, r.pkt(), r.seq(), r.vc())
					}
				}
			}
		}
	}
}

// inflatedVCs wraps a routing algorithm, inflating its declared VC
// count so the network provisions more virtual channels (and wider
// slot masks) than the decisions ever use. Geometry-only: routing
// behaviour is unchanged.
type inflatedVCs struct {
	routing.Algorithm
	vcs int
}

func (w inflatedVCs) VCs() int { return w.vcs }

// Geometry past the handle's field widths must be rejected at
// construction, not corrupt handles at runtime.
func TestNewNetworkRejectsOversizedGeometry(t *testing.T) {
	s := topology.MustSpidergon(8)
	alg := routing.NewSpidergonRouting(s)
	if _, err := NewNetwork(s, inflatedVCs{alg, MaxVCs + 1}, DefaultConfig(), stats.NewCollector(0)); err == nil {
		t.Fatalf("VCs=%d accepted past MaxVCs", MaxVCs+1)
	}
	cfg := DefaultConfig()
	cfg.PacketLen = MaxPacketLen + 1
	if _, err := NewNetwork(s, alg, cfg, stats.NewCollector(0)); err == nil {
		t.Fatalf("PacketLen=%d accepted past MaxPacketLen", MaxPacketLen+1)
	}
}

// With enough VCs the per-router occupancy masks span multiple words
// (the seed's engine was limited to 64 slots — one word — per router).
// All three engines must agree cycle for cycle on such a fabric, at
// every shard count, proving the multi-word set/clear/port extraction
// and the cross-word worklist retirement.
func TestMultiWordMasksCrossEngine(t *testing.T) {
	const vcs = 17 // stride rounds to 32; 4-port mesh routers span 128 mask bits
	build := func() *Network {
		m := topology.MustMesh(4, 4)
		n, err := NewNetwork(m, inflatedVCs{routing.NewMeshXY(m), vcs}, DefaultConfig(), stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	ref := build()
	ref.SetEngine(EngineSweep)
	// The test must actually exercise multi-word masks: an interior
	// mesh node has 4 input ports, so its mask is 4*32 = 128 bits.
	multi := false
	for _, r := range ref.routers {
		if len(r.inOcc) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("geometry fits one mask word — test is vacuous")
	}

	nets := []*Network{ref, build()} // sweep + active
	for _, k := range parallelShardCounts {
		nets = append(nets, newParallelNet(t, topology.MustMesh(4, 4),
			inflatedVCs{routing.NewMeshXY(topology.MustMesh(4, 4)), vcs}, DefaultConfig(), k))
	}
	rng := sim.NewRNG(17)
	for cycle := 0; cycle < 2500; cycle++ {
		if rng.Bernoulli(0.4) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				for _, n := range nets {
					if err := n.Inject(src, dst); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		want := ""
		for i, n := range nets {
			n.Step()
			fp := stateFingerprint(n)
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Fatalf("engine %d diverged at cycle %d:\nsweep: %s\ngot:   %s", i, cycle, want, fp)
			}
		}
	}
	for i, n := range nets {
		if err := n.CheckConservation(); err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		if err := n.Drain(20000); err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
}

// arenaResetTrial drives a random prefix workload, Resets mid-flight
// (buffers and queues full), optionally flips pooling, then replays a
// second workload and demands bit-identity with a fresh twin that
// never saw the prefix — the recycled arena and free stack must be
// indistinguishable from cold ones.
func arenaResetTrial(t *testing.T, seed uint64, prefixCycles int, poolPrefix, poolReplay bool) {
	t.Helper()
	build := func(pooling bool) *Network {
		s := topology.MustSpidergon(16)
		n, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		n.SetPooling(pooling)
		return n
	}
	run := func(n *Network, cycles int, seed uint64) {
		rng := sim.NewRNG(seed)
		for c := 0; c < cycles; c++ {
			if rng.Bernoulli(0.4) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					if err := n.Inject(src, dst); err != nil {
						t.Fatal(err)
					}
				}
			}
			n.Step()
		}
	}

	reused := build(poolPrefix)
	run(reused, prefixCycles, seed)
	reused.Reset()
	if poolReplay != poolPrefix {
		reused.SetPooling(poolReplay) // legal: Reset cleared the accounting
	}
	if err := reused.CheckConservation(); err != nil {
		t.Fatalf("post-Reset conservation: %v", err)
	}

	fresh := build(poolReplay)
	run(reused, 1500, seed^0x9e3779b97f4a7c15)
	run(fresh, 1500, seed^0x9e3779b97f4a7c15)
	if fr, ff := stateFingerprint(reused), stateFingerprint(fresh); fr != ff {
		t.Fatalf("recycled arena diverged from fresh twin:\nreused: %s\nfresh:  %s", fr, ff)
	}
	for _, n := range []*Network{reused, fresh} {
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(20000); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}

// Directed sweep of the Reset-recycling property over the pooling
// on/off square — the always-run counterpart of the fuzz target below.
func TestArenaRecycleAcrossReset(t *testing.T) {
	for _, pp := range []bool{true, false} {
		for _, pr := range []bool{true, false} {
			t.Run(fmt.Sprintf("prefixPool=%v,replayPool=%v", pp, pr), func(t *testing.T) {
				arenaResetTrial(t, 41, 1200, pp, pr)
			})
		}
	}
}

// FuzzArenaRecycleAcrossReset lets the fuzzer vary the prefix length
// (so Reset lands at arbitrary in-flight populations, including empty)
// and the pooling transitions, hunting for a reclaim path that leaks,
// double-frees, or perturbs the replay.
func FuzzArenaRecycleAcrossReset(f *testing.F) {
	f.Add(uint64(1), uint16(0), true, true)
	f.Add(uint64(7), uint16(300), true, false)
	f.Add(uint64(13), uint16(999), false, true)
	f.Add(uint64(99), uint16(1700), false, false)
	f.Fuzz(func(t *testing.T, seed uint64, prefix uint16, poolPrefix, poolReplay bool) {
		arenaResetTrial(t, seed, int(prefix)%2000, poolPrefix, poolReplay)
	})
}

// The handle-based inject→eject path must run allocation-free in the
// steady state: leases pop the free stack, buffers push handle words,
// ejection materializes into the network's scratch view. The drive is
// fully deterministic (fixed inject cadence), so the arena and queue
// high-water marks are established during warm-up and the measured
// window reuses them — any allocation here is a hot-path regression,
// not noise.
func TestHandlePathZeroAllocSteadyState(t *testing.T) {
	s := topology.MustSpidergon(16)
	// A warm-up horizon beyond any cycle this test reaches keeps the
	// collector outside its measurement window, so its sample-buffer
	// appends (a deliberate measurement-time cost) never fire.
	net, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	net.SetPooling(true)
	cycle := 0
	tick := func() {
		if cycle%3 == 0 {
			src, dst := (cycle*7)%16, (cycle*13+5)%16
			if src != dst {
				if err := net.Inject(src, dst); err != nil {
					t.Fatal(err)
				}
			}
		}
		net.Step()
		cycle++
	}
	for cycle < 3000 {
		tick()
	}
	if net.EjectedPackets() == 0 {
		t.Fatal("warm-up ejected nothing — cadence broken")
	}
	if allocs := testing.AllocsPerRun(500, tick); allocs != 0 {
		t.Fatalf("steady-state inject→eject path allocates %v per cycle", allocs)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// LiveStateBytes must be a pure function of simulation state: equal
// across engines at identical fingerprints, strictly larger when flits
// are resident than when empty, and exactly reproducible when the same
// workload replays on a Reset network (the figure the perf gate pins).
func TestLiveStateBytesDeterministic(t *testing.T) {
	build := func() *Network {
		s := topology.MustSpidergon(16)
		n, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	drive := func(n *Network) {
		rng := sim.NewRNG(23)
		for c := 0; c < 1000; c++ {
			if rng.Bernoulli(0.4) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					_ = n.Inject(src, dst)
				}
			}
			n.Step()
		}
	}
	a, b := build(), build()
	b.SetEngine(EngineSweep)
	empty := a.LiveStateBytes()
	drive(a)
	drive(b)
	if a.LiveStateBytes() != b.LiveStateBytes() {
		t.Fatalf("engines disagree on live bytes: active %d, sweep %d",
			a.LiveStateBytes(), b.LiveStateBytes())
	}
	loaded := a.LiveStateBytes()
	if loaded <= empty {
		t.Fatalf("loaded network reports %d bytes, empty %d", loaded, empty)
	}
	// Replay on the recycled arena: identical state must yield the
	// identical byte count (same population high-water, same residency).
	a.Reset()
	drive(a)
	if got := a.LiveStateBytes(); got != loaded {
		t.Fatalf("replayed live bytes %d != first run %d", got, loaded)
	}
}

// The conservation checker must reject structurally invalid handles —
// a corrupted word in a buffer names a packet, sequence or VC outside
// the arena geometry and must be called out, not walked off the end.
func TestCheckConservationCatchesInvalidHandle(t *testing.T) {
	s := topology.MustSpidergon(16)
	net, err := NewNetwork(s, routing.NewSpidergonRouting(s), DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, 9); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		net.Step()
	}
	var bad *fifo[flitH]
	for _, r := range net.routers {
		for _, op := range r.out {
			for _, v := range op.vcs {
				if !v.empty() {
					bad = &v.q
				}
			}
		}
		for _, p := range r.in {
			for i := range p.bufs {
				if p.bufs[i].len() > 0 {
					bad = &p.bufs[i]
				}
			}
		}
	}
	if bad == nil {
		t.Fatal("no buffered flit to corrupt")
	}
	good := bad.pop()
	bad.push(mkFlit(good.pkt()+1000, good.seq(), good.vc())) // packet index past the arena
	err = net.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "invalid flit handle") {
		t.Fatalf("corrupted handle not caught: %v", err)
	}
}
