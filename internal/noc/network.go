package noc

import (
	"fmt"
	"sort"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// Network is a complete cycle-accurate NoC: a router per node, a
// network interface per node, and the wiring given by the topology and
// routing algorithm. Drive it by calling Inject for each generated
// packet and Step once per clock cycle.
type Network struct {
	topo topology.Topology
	alg  routing.Algorithm
	cfg  Config
	col  *stats.Collector

	routers []*router
	nis     []*ni

	cycle        uint64
	nextPktID    uint64
	created      uint64
	ejected      uint64
	injected     uint64
	lastActivity uint64
	moved        bool // any flit progress in the current cycle

	// engine selects the Step implementation (see active.go and
	// parallel.go); the activity-driven worklists belong to
	// EngineActive (the parallel engine keeps one worklists set per
	// shard instead). The per-slot occupancy masks live on each router.
	engine   Engine
	maskable bool      // every router's slots fit a 64-bit mask
	wl       worklists // EngineActive's global phase worklists
	visits   uint64    // per-phase router/source worklist visits
	skipped  uint64    // cycles fast-forwarded by SkipTo

	// Domain decomposition state of EngineParallel (parallel.go):
	// shards own contiguous router ranges (shardOf is the inverse
	// table), pr is the running worker group, shardCount the configured
	// width.
	shards     []parShard
	shardOf    []int32
	shardCount int
	pr         *parRun
	// modTab[d] == cycle % d for every registered round-robin divisor
	// d (modDivs), maintained by increment instead of division.
	modDivs []int
	modTab  []uint32

	// pool is the packet/flit freelist: every fully ejected packet
	// returns here (after the ejection observers run) and InjectPacket
	// leases from it before allocating, so the steady state of a run —
	// and of every following run after Reset — creates packets without
	// touching the allocator. recycled counts returns to the pool;
	// CheckConservation proves recycled == ejected (no leak) and that no
	// pooled packet is still buffered (no double-free).
	pool     []*Packet
	pooling  bool
	recycled uint64

	// linkFlits counts flit traversals per channel ID.
	linkFlits []uint64
	// Telemetry probe counters, maintained by every engine exactly where
	// flits move (so they cost one array increment, never an allocation):
	// telOcc is the number of flits resident in each router's buffers,
	// telInj/telEj the cumulative flits injected by / ejected at each
	// node. Under EngineParallel each element is written only by the
	// shard owning its node (or in the serial sections), so the probes
	// stay race-clean. telemetry.Recorder samples them through
	// Telemetry() once per cycle.
	telOcc []int32
	telInj []uint64
	telEj  []uint64
	// consSeen and poolSeen are the reusable scratch maps of
	// CheckConservation: campaign replications re-verify one network per
	// run, so the maps live here (cleared per check) instead of being
	// reallocated every call.
	consSeen map[uint64]bool
	poolSeen map[*Packet]bool
	// onEject, when set, runs for every fully consumed packet.
	onEject func(p *Packet)
	// adaptive is non-nil when the algorithm supports congestion-aware
	// choice.
	adaptive routing.Adaptive
}

// ni is the per-node network interface: the IP-memory source queue, the
// current outgoing worm's switching state, and packet-reassembly
// accounting for the sink side.
type ni struct {
	node    int
	queue   fifo[*Packet] // IP memory, FIFO
	sending *Packet       // packet currently being injected flit by flit
	nextSeq int           // next flit index of sending
	route   routeEntry    // output assignment of sending's worm
	vc      int           // routing VC state of sending's head path start
}

// NewNetwork builds a network over t using algorithm a, buffer/interface
// geometry cfg and collector col (which must be non-nil; use a
// collector with warm-up 0 to measure everything).
func NewNetwork(t topology.Topology, a routing.Algorithm, cfg Config, col *stats.Collector) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if col == nil {
		return nil, fmt.Errorf("noc: nil collector")
	}
	if a.VCs() < 1 {
		return nil, fmt.Errorf("noc: algorithm %s declares %d VCs", a.Name(), a.VCs())
	}
	n := &Network{topo: t, alg: a, cfg: cfg, col: col, pooling: true}
	n.linkFlits = make([]uint64, len(t.Channels()))
	n.telOcc = make([]int32, t.Nodes())
	n.telInj = make([]uint64, t.Nodes())
	n.telEj = make([]uint64, t.Nodes())
	if aa, ok := a.(routing.Adaptive); ok {
		n.adaptive = aa
	}
	nis := make([]ni, t.Nodes())
	n.maskable = true
	for v := 0; v < t.Nodes(); v++ {
		r := newRouter(v, t, a.VCs())
		if len(r.in)*a.VCs() > 64 || len(r.out)*a.VCs() > 64 {
			n.maskable = false
		}
		n.routers = append(n.routers, r)
		nis[v].node = v
		n.nis = append(n.nis, &nis[v])
	}
	n.wl = newWorklists(t.Nodes())
	if !n.maskable {
		// Degree × VC counts beyond one mask word (no paper topology
		// comes close) fall back to the reference engine.
		n.engine = EngineSweep
	}
	// Resolve each output channel's downstream port once, and register
	// the round-robin divisors (per-router slot and port counts) with
	// the incremental modulo table the active engine derives its
	// rotation pointers from.
	seen := make(map[int]bool)
	addDiv := func(d int) {
		if d > 0 && !seen[d] {
			seen[d] = true
			n.modDivs = append(n.modDivs, d)
		}
	}
	addDiv(a.VCs())
	for _, r := range n.routers {
		for _, op := range r.out {
			op.peerRouter = n.routers[op.ch.Dst]
			op.peer = op.peerRouter.inPortByChannel(op.ch.ID)
			if op.peer == nil {
				return nil, fmt.Errorf("noc: channel %d has no input port at node %d", op.ch.ID, op.ch.Dst)
			}
		}
		addDiv(len(r.in))
		addDiv(len(r.in) * a.VCs())
	}
	sort.Ints(n.modDivs)
	n.modTab = make([]uint32, n.modDivs[len(n.modDivs)-1]+1)
	return n, nil
}

// Topology returns the network's interconnect graph.
func (n *Network) Topology() topology.Topology { return n.topo }

// Algorithm returns the routing algorithm in use.
func (n *Network) Algorithm() routing.Algorithm { return n.alg }

// Config returns the buffer/interface geometry.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the number of completed cycles.
func (n *Network) Cycle() uint64 { return n.cycle }

// Collector returns the attached statistics collector.
func (n *Network) Collector() *stats.Collector { return n.col }

// Inject creates a packet from src to dst in src's IP memory at the
// current cycle. It returns an error for invalid endpoints, and
// ErrSourceQueueFull when a bounded source queue is at capacity.
func (n *Network) Inject(src, dst int) error {
	_, err := n.InjectPacket(src, dst)
	return err
}

// InjectPacket is Inject returning the created packet, so closed-loop
// traffic models (request/reply) can correlate deliveries.
func (n *Network) InjectPacket(src, dst int) (*Packet, error) {
	if src < 0 || src >= n.topo.Nodes() || dst < 0 || dst >= n.topo.Nodes() {
		return nil, fmt.Errorf("noc: inject %d->%d out of range", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("noc: inject with src == dst == %d", src)
	}
	q := n.nis[src]
	if n.cfg.SourceQueueCap > 0 && q.queue.len() >= n.cfg.SourceQueueCap {
		return nil, ErrSourceQueueFull
	}
	p := n.leasePacket(src, dst)
	n.nextPktID++
	n.created++
	q.queue.push(p)
	n.markSource(src)
	return p, nil
}

// leasePacket draws a packet from the freelist, falling back to a fresh
// allocation while the pool warms up (or when pooling is off). All of
// the packet's flits share one backing array; injection hands out
// interior pointers instead of making a fresh allocation per flit, and
// a recycled packet reuses the array outright.
func (n *Network) leasePacket(src, dst int) *Packet {
	var p *Packet
	if k := len(n.pool); n.pooling && k > 0 {
		p = n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
		p.free = false
		p.InjectedCycle = 0
		p.Hops = 0
		p.recv = 0
	} else {
		p = &Packet{flits: make([]Flit, n.cfg.PacketLen)}
	}
	p.ID = n.nextPktID
	p.Src, p.Dst = src, dst
	p.Len = n.cfg.PacketLen
	p.CreatedCycle = n.cycle
	for i := range p.flits {
		p.flits[i] = Flit{Pkt: p, Seq: i}
	}
	return p
}

// recyclePacket returns a fully consumed packet to the freelist. It
// runs at tail ejection, after statistics and the OnEject observers —
// which therefore must not retain the *Packet past their return. A
// second recycle of the same lease is always an accounting bug and
// panics rather than corrupting the pool.
func (n *Network) recyclePacket(p *Packet) {
	if !n.pooling {
		return
	}
	if p.free {
		panic(fmt.Sprintf("noc: double recycle of %v", p))
	}
	p.free = true
	n.recycled++
	n.pool = append(n.pool, p)
}

// PoolSize returns the number of packets currently resident on the
// freelist.
func (n *Network) PoolSize() int { return len(n.pool) }

// SetPooling enables or disables the packet freelist. The default is
// enabled; the two modes are result-equivalent bit for bit (proven by
// the golden pool-on/pool-off tests), so the toggle changes allocator
// traffic, never results. It must be called before any packet exists —
// on a freshly built or Reset network — because the conservation
// accounting assumes one mode per run.
func (n *Network) SetPooling(on bool) {
	if n.created != 0 {
		panic("noc: SetPooling on a network that already created packets")
	}
	n.pooling = on
	if !on {
		n.pool = nil
	}
}

// Pooling reports whether the packet freelist is enabled.
func (n *Network) Pooling() bool { return n.pooling }

// ErrSourceQueueFull reports an Inject refused by a bounded source queue.
var ErrSourceQueueFull = fmt.Errorf("noc: source queue full")

// route computes the next-hop decision for pkt's head at router r,
// consulting local congestion when the algorithm is adaptive.
func (n *Network) route(r *router, pkt *Packet, vc int) routing.Decision {
	if n.adaptive != nil {
		return n.adaptive.Choose(r.node, pkt.Dst, vc, congestionView{r: r, cap: n.cfg.OutBufCap})
	}
	return n.alg.Route(r.node, pkt.Dst, vc)
}

// canAdmit reports whether a new packet's head may be admitted to the
// output queue: wormhole needs one free slot; cut-through and
// store-and-forward reserve space for the whole packet, so a blocked
// packet never straddles routers.
func (n *Network) canAdmit(q *outVC, pkt *Packet) bool {
	if q.owner != nil {
		return false
	}
	if n.cfg.Switching == Wormhole {
		return !q.full(n.cfg.OutBufCap)
	}
	return n.cfg.OutBufCap-q.q.len() >= pkt.Len
}

// canDepart reports whether the flit at the head of the output queue
// may traverse the link. Store-and-forward additionally requires the
// packet's tail flit to be resident in the same queue.
func (n *Network) canDepart(q *outVC) bool {
	if n.cfg.Switching != StoreAndForward {
		return true
	}
	head := q.head()
	if head.IsTail() {
		return true
	}
	for _, f := range q.flits()[1:] {
		if f.Pkt == head.Pkt && f.IsTail() {
			return true
		}
	}
	return false
}

// Step advances the network one clock cycle. The four phases — sink
// ejection, switch traversal, source injection, link traversal — each
// move a flit at most one stage, and a per-flit cycle stamp prevents a
// flit from advancing through two stages in one cycle. The default
// engine visits only active routers and sources (active.go); the
// parallel engine (parallel.go) executes the same phases shard-parallel
// with deterministic barriers; the sweep engine below scans everything
// and serves as the golden reference both are tested against.
func (n *Network) Step() {
	switch n.engine {
	case EngineSweep:
		n.stepSweep()
	case EngineParallel:
		n.stepParallel()
	default:
		n.stepActive()
	}
}

// stepSweep is the reference per-cycle sweep over all routers.
func (n *Network) stepSweep() {
	n.moved = false
	n.ejectPhase()
	n.switchPhase()
	n.injectPhase()
	n.linkPhase()
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
}

// StepN advances the network k cycles.
func (n *Network) StepN(k int) {
	for i := 0; i < k; i++ {
		n.Step()
	}
}

// ejectPhase consumes up to SinkRate flits per node from input-slot
// heads destined to that node, round-robin across (input port, VC)
// slots. The paper's destination IP consumes flits in FIFO order
// through a single ejection port — the bottleneck of the hot-spot
// scenarios.
func (n *Network) ejectPhase() {
	vcs := n.alg.VCs()
	for _, r := range n.routers {
		n.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			continue
		}
		slots := np * vcs
		for k := 0; k < slots && budget > 0; k++ {
			s := (r.rrEj + k) % slots
			p := r.in[s/vcs]
			vc := s % vcs
			for budget > 0 && !p.empty(vc) && p.head(vc).Pkt.Dst == r.node {
				f := p.pop(vc)
				n.telOcc[r.node]--
				n.telEj[r.node]++
				budget--
				n.moved = true
				f.Pkt.recv++
				if f.IsTail() {
					n.ejected++
					n.col.PacketEjected(n.cycle, f.Pkt.CreatedCycle, f.Pkt.InjectedCycle, f.Pkt.Len, f.Pkt.Hops)
					if n.onEject != nil {
						n.onEject(f.Pkt)
					}
					n.recyclePacket(f.Pkt)
				}
			}
		}
		r.rrEj = (r.rrEj + 1) % slots
	}
}

// switchPhase moves flits from input slots to output queues. Head
// flits run the routing function and must win the output queue
// (ownership + space); body flits follow their packet's switching
// entry. One flit per input port per cycle (the crossbar input port is
// shared by the port's VC slots, arbitrated round-robin).
func (n *Network) switchPhase() {
	vcs := n.alg.VCs()
	for _, r := range n.routers {
		n.visits++
		np := len(r.in)
		for k := 0; k < np; k++ {
			p := r.in[(r.rrIn+k)%np]
			for j := 0; j < vcs; j++ {
				inVC := (p.rrVC + j) % vcs
				if p.empty(inVC) {
					continue
				}
				f := p.head(inVC)
				if f.lastMove >= n.cycle+1 {
					continue // already advanced this cycle
				}
				if f.Pkt.Dst == r.node {
					continue // waits for the ejection phase
				}
				entry := &p.route[inVC]
				if f.IsHead() {
					// Heads route afresh on every attempt (adaptive
					// algorithms re-evaluate congestion) and commit
					// switching state only when the output queue is won.
					d := n.route(r, f.Pkt, inVC)
					op := r.outPortByDir(d.Dir)
					if op == nil {
						panic(fmt.Sprintf("noc: %s chose missing direction %v at node %d for %v",
							n.alg.Name(), d.Dir, r.node, f.Pkt))
					}
					ovc := op.vcs[d.VC]
					if !n.canAdmit(ovc, f.Pkt) {
						continue // allocation denied; retry next cycle
					}
					ovc.owner = f.Pkt
					*entry = routeEntry{active: true, port: op, vc: d.VC}
				} else if !entry.active {
					panic(fmt.Sprintf("noc: body flit %v at node %d without switching state", f, r.node))
				}
				ovc := entry.port.vcs[entry.vc]
				if ovc.owner != f.Pkt || ovc.full(n.cfg.OutBufCap) {
					continue // space denied; retry next cycle
				}
				p.pop(inVC)
				f.VC = entry.vc
				f.lastMove = n.cycle + 1
				ovc.push(f)
				n.moved = true
				if f.IsTail() {
					ovc.owner = nil
					entry.active = false
				}
				p.rrVC = (inVC + 1) % vcs
				break // one flit per input port per cycle
			}
		}
		r.rrIn = (r.rrIn + 1) % np
	}
}

// injectPhase lets each NI push up to InjectRate flits of its current
// packet into the local router's output queues, opening the worm with a
// routing decision on the head flit. A blocked ready flit is recorded
// as a source-blocked cycle.
func (n *Network) injectPhase() {
	for node, q := range n.nis {
		r := n.routers[node]
		n.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending == nil {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pkt := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pkt, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %v",
						n.alg.Name(), d.Dir, node, pkt))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc, pkt) {
					ovc.owner = pkt
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					n.col.SourceBlocked(n.cycle)
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				n.col.SourceBlocked(n.cycle)
				break
			}
			f := &pkt.flits[q.nextSeq]
			f.VC = q.route.vc
			f.lastMove = n.cycle + 1
			ovc.push(f)
			n.telOcc[node]++
			n.telInj[node]++
			n.moved = true
			q.nextSeq++
			budget--
			if f.IsHead() {
				pkt.InjectedCycle = n.cycle
				n.injected++
				n.col.PacketInjected(n.cycle, pkt.Len)
			}
			if f.IsTail() {
				ovc.owner = nil
				q.sending = nil
				q.route = routeEntry{}
			}
		}
	}
}

// linkPhase forwards one flit per physical link from the head of an
// output queue (round-robin across that port's VCs) into the matching
// downstream per-VC input slot, provided the slot has room and the flit
// has not already advanced this cycle.
func (n *Network) linkPhase() {
	for _, r := range n.routers {
		n.visits++
		for _, op := range r.out {
			nv := len(op.vcs)
			sent := false
			for k := 0; k < nv && !sent; k++ {
				vi := (op.rr + k) % nv
				v := op.vcs[vi]
				if v.empty() {
					continue
				}
				f := v.head()
				if f.lastMove >= n.cycle+1 {
					continue
				}
				if !n.canDepart(v) {
					continue
				}
				ip := op.peer
				if ip.full(vi, n.cfg.InBufCap) {
					continue
				}
				v.pop()
				n.telOcc[r.node]--
				f.lastMove = n.cycle + 1
				if f.IsHead() {
					f.Pkt.Hops++
				}
				n.linkFlits[op.ch.ID]++
				ip.push(vi, f)
				n.telOcc[op.ch.Dst]++
				n.moved = true
				sent = true
			}
			op.rr = (op.rr + 1) % nv
		}
	}
}

// CreatedPackets returns the number of packets created by Inject.
func (n *Network) CreatedPackets() uint64 { return n.created }

// EjectedPackets returns the number of packets fully consumed at sinks.
func (n *Network) EjectedPackets() uint64 { return n.ejected }

// InjectedPackets returns the number of packets whose head flit entered
// the network.
func (n *Network) InjectedPackets() uint64 { return n.injected }

// QueuedPackets returns the number of packets waiting in IP source
// queues (including each NI's partially injected packet).
func (n *Network) QueuedPackets() int {
	q := 0
	for _, s := range n.nis {
		q += s.queue.len()
		if s.sending != nil {
			q++
		}
	}
	return q
}

// InFlightFlits returns the number of flits resident in router buffers.
func (n *Network) InFlightFlits() int {
	f := 0
	for _, r := range n.routers {
		f += r.bufferedFlits()
	}
	return f
}

// IdleCycles returns how many cycles have elapsed since any flit moved.
// With traffic pending, a large value indicates deadlock (the tests'
// watchdog asserts this never happens for the paper's configurations).
func (n *Network) IdleCycles() uint64 {
	if n.cycle == 0 {
		return 0
	}
	return n.cycle - 1 - n.lastActivity
}

// CheckConservation verifies no flit was lost or duplicated: every
// created packet is queued, in flight, or fully ejected, and in-flight
// flit counts match packet bookkeeping. Under the active engine it
// additionally proves the worklist bookkeeping: every buffered flit and
// pending packet is reachable from its phase's active set (a flit off
// its worklist would be stranded forever). With pooling enabled it also
// proves the freelist accounting: every fully ejected packet was
// recycled exactly once (no leak), the pool holds only distinct packets
// marked free, and no live buffer or queue references a pooled packet
// (no double-free). It returns nil when consistent.
func (n *Network) CheckConservation() error {
	if err := n.checkActiveInvariants(); err != nil {
		return err
	}
	inFlight := uint64(0)
	for _, s := range n.nis {
		if s.sending != nil {
			inFlight++ // partially injected packet
		}
	}
	// Count distinct packets with flits in buffers that are fully
	// injected but not ejected. Walk buffers and collect into the
	// network-owned scratch map (conservation runs once per replication;
	// reusing the map keeps the check allocation-free on a warm
	// workspace).
	if n.consSeen == nil {
		n.consSeen = make(map[uint64]bool)
	}
	clear(n.consSeen)
	seen := n.consSeen
	note := func(f *Flit) error {
		if f.Pkt.free {
			return fmt.Errorf("noc: pooled packet %v still buffered (double free)", f.Pkt)
		}
		seen[f.Pkt.ID] = true
		return nil
	}
	for _, r := range n.routers {
		for _, p := range r.in {
			for i := range p.bufs {
				for _, f := range p.bufs[i].live() {
					if err := note(f); err != nil {
						return err
					}
				}
			}
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				for _, f := range v.flits() {
					if err := note(f); err != nil {
						return err
					}
				}
			}
		}
		// The telemetry occupancy probe is maintained incrementally by
		// every engine; prove it against the buffer ground truth so a
		// missed increment cannot silently skew captures.
		if got, want := n.telOcc[r.node], int32(r.bufferedFlits()); got != want {
			return fmt.Errorf("noc: node %d telemetry occupancy %d disagrees with buffered flits %d", r.node, got, want)
		}
	}
	queued := uint64(0)
	for _, s := range n.nis {
		queued += uint64(s.queue.len())
		for _, p := range s.queue.live() {
			if p.free {
				return fmt.Errorf("noc: pooled packet %v still queued at source %d (double free)", p, s.node)
			}
		}
		if s.sending != nil {
			if s.sending.free {
				return fmt.Errorf("noc: pooled packet %v mid-injection at source %d (double free)", s.sending, s.node)
			}
			delete(seen, s.sending.ID) // counted as sending already
		}
	}
	netResident := uint64(len(seen)) + inFlight
	total := queued + netResident + n.ejected
	if total < n.created {
		return fmt.Errorf("noc: conservation violated: created %d, accounted %d (queued %d, resident %d, ejected %d)",
			n.created, total, queued, netResident, n.ejected)
	}
	// Packets partially ejected still have flits in the network and are
	// counted in netResident, so the total can exceed created only if a
	// packet is double-counted — which the sets above preclude; an
	// overshoot therefore also indicates a bug.
	if total > n.created {
		return fmt.Errorf("noc: conservation violated (overcount): created %d, accounted %d", n.created, total)
	}
	return n.checkPool()
}

// checkPool proves the freelist accounting under pooling: recycles
// mirror ejections one for one and the pool contains exactly the
// recycled-minus-releeased population, each entry distinct and marked
// free. (Buffer and queue walks in CheckConservation already rejected
// any free packet still live.)
func (n *Network) checkPool() error {
	if !n.pooling {
		return nil
	}
	if n.recycled != n.ejected {
		return fmt.Errorf("noc: pool leak: %d packets ejected but %d recycled", n.ejected, n.recycled)
	}
	if n.poolSeen == nil {
		n.poolSeen = make(map[*Packet]bool, len(n.pool))
	}
	clear(n.poolSeen)
	distinct := n.poolSeen
	for _, p := range n.pool {
		switch {
		case p == nil:
			return fmt.Errorf("noc: nil entry on the packet pool")
		case !p.free:
			return fmt.Errorf("noc: pool holds leased packet %v (missing free mark)", p)
		case distinct[p]:
			return fmt.Errorf("noc: packet %v pooled twice (double free)", p)
		}
		distinct[p] = true
	}
	return nil
}

// Reset returns the network to its just-constructed state — empty
// buffers and queues, zeroed counters and round-robin pointers, no
// ejection callback — while keeping every allocated structure: the
// routers, the per-slot buffer arrays, and above all the packet pool,
// to which all in-flight and queued packets are reclaimed first. A
// reset network therefore runs the next scenario bit for bit like a
// freshly built one but with a warm freelist, which is what lets a
// campaign reuse one network across replications instead of rebuilding
// it per run. The engine selection is preserved; pooling may be
// retoggled afterwards (created is back to zero).
func (n *Network) Reset() {
	for _, r := range n.routers {
		for _, p := range r.in {
			for vc := range p.bufs {
				for _, f := range p.bufs[vc].live() {
					n.reclaim(f.Pkt)
				}
				p.bufs[vc].reset()
				p.route[vc] = routeEntry{}
			}
			p.rrVC = 0
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				for _, f := range v.q.live() {
					n.reclaim(f.Pkt)
				}
				v.q.reset()
				v.owner = nil
			}
			op.rr = 0
		}
		r.rrIn, r.rrEj = 0, 0
		r.inOcc, r.ejOcc, r.outOcc = 0, 0, 0
	}
	for _, s := range n.nis {
		for _, p := range s.queue.live() {
			n.reclaim(p)
		}
		s.queue.reset()
		if s.sending != nil {
			n.reclaim(s.sending)
			s.sending = nil
		}
		s.nextSeq, s.vc = 0, 0
		s.route = routeEntry{}
	}
	for i := range n.linkFlits {
		n.linkFlits[i] = 0
	}
	for i := range n.telOcc {
		n.telOcc[i] = 0
		n.telInj[i] = 0
		n.telEj[i] = 0
	}
	n.cycle, n.nextPktID = 0, 0
	n.created, n.ejected, n.injected, n.recycled = 0, 0, 0, 0
	n.lastActivity, n.moved = 0, false
	n.visits, n.skipped = 0, 0
	n.onEject = nil
	n.wl.clear()
	n.resetShards()
	n.rebuildModTab()
}

// reclaim returns a still-live packet to the pool during Reset. A worm
// spread across several buffers reaches reclaim once per flit; the free
// mark deduplicates. Without pooling the packet is simply dropped.
func (n *Network) reclaim(p *Packet) {
	if !n.pooling || p.free {
		return
	}
	p.free = true
	n.pool = append(n.pool, p)
}

// Drain runs the network without new injections until all traffic is
// delivered or maxCycles elapse; it returns an error in the latter case
// or if conservation fails. Useful in tests: a network that cannot
// drain is deadlocked.
func (n *Network) Drain(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if n.QueuedPackets() == 0 && n.InFlightFlits() == 0 {
			return n.CheckConservation()
		}
		n.Step()
	}
	if n.QueuedPackets() == 0 && n.InFlightFlits() == 0 {
		return n.CheckConservation()
	}
	return fmt.Errorf("noc: failed to drain after %d cycles: %d queued packets, %d in-flight flits",
		maxCycles, n.QueuedPackets(), n.InFlightFlits())
}
