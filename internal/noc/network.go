package noc

import (
	"fmt"
	"math/bits"
	"sort"

	"gonoc/internal/routing"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// Network is a complete cycle-accurate NoC: a router per node, a
// network interface per node, and the wiring given by the topology and
// routing algorithm. Drive it by calling Inject for each generated
// packet and Step once per clock cycle.
type Network struct {
	topo topology.Topology
	alg  routing.Algorithm
	cfg  Config
	col  *stats.Collector

	routers []*router
	nis     []*ni

	// arena holds every packet record (struct-of-arrays, see arena.go);
	// router buffers and NI queues reference it through packed flit
	// handles and packet indices. stride is the power-of-two spacing of
	// ports within the slot-occupancy masks (≥ the VC count).
	arena  packetArena
	stride int

	// ejView, injView and errView are the scratch Packet views
	// materialized at the observer boundary: ejView for OnEject, injView
	// for InjectPacket's return, errView for diagnostics. They are
	// separate so a callback that injects (request/reply traffic) can
	// still read its own packet afterwards.
	ejView  Packet
	injView Packet
	errView Packet

	cycle        uint64
	nextPktID    uint64
	created      uint64
	ejected      uint64
	injected     uint64
	lastActivity uint64
	moved        bool // any flit progress in the current cycle

	// engine selects the Step implementation (see active.go and
	// parallel.go); the activity-driven worklists belong to
	// EngineActive (the parallel engine keeps one worklists set per
	// shard instead). The per-slot occupancy masks live on each router.
	engine   Engine
	wl       worklists // EngineActive's global phase worklists
	visits   uint64    // per-phase router/source worklist visits
	skipped  uint64    // cycles fast-forwarded by SkipTo
	barriers uint64    // parallel-engine worker barriers crossed
	sreplays uint64    // boundary ports replayed in the serial section (retired: always 0 since credits)
	specs    uint64    // cross-shard flits delivered speculatively on credit
	cdefers  uint64    // zero-credit link decisions synchronized in-pass

	// Domain decomposition state of EngineParallel (parallel.go):
	// shards own contiguous router ranges (shardOf is the inverse
	// table), pr is the running worker group, shardCount the configured
	// width.
	shards     []parShard
	shardOf    []int32
	shardCount int
	pr         *parRun
	// modTab[d] == cycle % d for every registered round-robin divisor
	// d (modDivs), maintained by increment instead of division.
	modDivs []int
	modTab  []uint32

	// pooling selects the freelist regime of the arena: enabled, every
	// fully ejected packet's record returns to the index stack (after
	// the ejection observers run) and InjectPacket leases from it, so
	// the steady state of a run — and of every following run after
	// Reset — creates packets without touching the allocator. Disabled,
	// the arena grows monotonically. recycled counts returns to the
	// stack; CheckConservation proves recycled == ejected (no leak) and
	// that no free record is still referenced by a live handle (no
	// double-free).
	pooling  bool
	recycled uint64

	// linkFlits counts flit traversals per channel ID.
	linkFlits []uint64
	// Telemetry probe counters, maintained by every engine exactly where
	// flits move (so they cost one array increment, never an allocation):
	// telOcc is the number of flits resident in each router's buffers,
	// telInj/telEj the cumulative flits injected by / ejected at each
	// node. Under EngineParallel each element is written only by the
	// shard owning its node (or in the serial sections), so the probes
	// stay race-clean. telemetry.Recorder samples them through
	// Telemetry() once per cycle.
	telOcc []int32
	telInj []uint64
	telEj  []uint64
	// consScratch and poolScratch are the reusable scratch bitmaps of
	// CheckConservation, one bit per arena record: campaign replications
	// re-verify one network per run, so the bitmaps live here (cleared
	// per check) instead of being reallocated every call.
	consScratch []uint64
	poolScratch []uint64
	// invIn/invEj/invOut are the reusable scratch masks of the worklist
	// invariant check (checkActiveInvariants rebuilds each router's
	// occupancy from the buffers into these instead of allocating).
	invIn, invEj, invOut slotMask
	// onEject, when set, runs for every fully consumed packet.
	onEject func(p *Packet)
	// adaptive is non-nil when the algorithm supports congestion-aware
	// choice.
	adaptive routing.Adaptive
}

// ni is the per-node network interface: the IP-memory source queue, the
// current outgoing worm's switching state, and packet-reassembly
// accounting for the sink side. Queued packets are arena indices;
// sending is -1 when no packet is mid-injection.
type ni struct {
	node    int
	queue   fifo[int32] // IP memory, FIFO, by arena index
	sending int32       // packet currently being injected flit by flit
	nextSeq int         // next flit index of sending
	route   routeEntry  // output assignment of sending's worm
	vc      int         // routing VC state of sending's head path start
}

// NewNetwork builds a network over t using algorithm a, buffer/interface
// geometry cfg and collector col (which must be non-nil; use a
// collector with warm-up 0 to measure everything).
func NewNetwork(t topology.Topology, a routing.Algorithm, cfg Config, col *stats.Collector) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if col == nil {
		return nil, fmt.Errorf("noc: nil collector")
	}
	if a.VCs() < 1 {
		return nil, fmt.Errorf("noc: algorithm %s declares %d VCs", a.Name(), a.VCs())
	}
	if a.VCs() > MaxVCs {
		return nil, fmt.Errorf("noc: algorithm %s declares %d VCs, handle limit is %d", a.Name(), a.VCs(), MaxVCs)
	}
	if cfg.PacketLen > MaxPacketLen {
		return nil, fmt.Errorf("noc: packet length %d exceeds handle limit %d", cfg.PacketLen, MaxPacketLen)
	}
	n := &Network{topo: t, alg: a, cfg: cfg, col: col, pooling: true}
	n.arena.pktLen = cfg.PacketLen
	// Ports are spaced at the next power of two ≥ the VC count inside
	// the slot masks, so no port's bits straddle a mask word.
	n.stride = 1 << bits.Len(uint(a.VCs()-1))
	n.linkFlits = make([]uint64, len(t.Channels()))
	n.telOcc = make([]int32, t.Nodes())
	n.telInj = make([]uint64, t.Nodes())
	n.telEj = make([]uint64, t.Nodes())
	if aa, ok := a.(routing.Adaptive); ok {
		n.adaptive = aa
	}
	nis := make([]ni, t.Nodes())
	for v := 0; v < t.Nodes(); v++ {
		n.routers = append(n.routers, newRouter(v, t, a.VCs(), n.stride))
		nis[v].node = v
		nis[v].sending = -1
		n.nis = append(n.nis, &nis[v])
	}
	n.wl = newWorklists(t.Nodes())
	// Resolve each output channel's downstream port once, and register
	// the round-robin divisors (per-router slot and port counts) with
	// the incremental modulo table the active engine derives its
	// rotation pointers from.
	seen := make(map[int]bool)
	addDiv := func(d int) {
		if d > 0 && !seen[d] {
			seen[d] = true
			n.modDivs = append(n.modDivs, d)
		}
	}
	addDiv(a.VCs())
	for _, r := range n.routers {
		for _, op := range r.out {
			op.peerRouter = n.routers[op.ch.Dst]
			op.peer = op.peerRouter.inPortByChannel(op.ch.ID)
			if op.peer == nil {
				return nil, fmt.Errorf("noc: channel %d has no input port at node %d", op.ch.ID, op.ch.Dst)
			}
		}
		addDiv(len(r.in))
		addDiv(len(r.in) * a.VCs())
	}
	sort.Ints(n.modDivs)
	n.modTab = make([]uint32, n.modDivs[len(n.modDivs)-1]+1)
	return n, nil
}

// Topology returns the network's interconnect graph.
func (n *Network) Topology() topology.Topology { return n.topo }

// Algorithm returns the routing algorithm in use.
func (n *Network) Algorithm() routing.Algorithm { return n.alg }

// Config returns the buffer/interface geometry.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the number of completed cycles.
func (n *Network) Cycle() uint64 { return n.cycle }

// Collector returns the attached statistics collector.
func (n *Network) Collector() *stats.Collector { return n.col }

// Inject creates a packet from src to dst in src's IP memory at the
// current cycle. It returns an error for invalid endpoints, and
// ErrSourceQueueFull when a bounded source queue is at capacity.
func (n *Network) Inject(src, dst int) error {
	_, err := n.InjectPacket(src, dst)
	return err
}

// InjectPacket is Inject returning a view of the created packet, so
// closed-loop traffic models (request/reply) can correlate deliveries.
// The view is the network's scratch struct, overwritten by the next
// InjectPacket call — copy fields out rather than retain the pointer.
func (n *Network) InjectPacket(src, dst int) (*Packet, error) {
	if src < 0 || src >= n.topo.Nodes() || dst < 0 || dst >= n.topo.Nodes() {
		return nil, fmt.Errorf("noc: inject %d->%d out of range", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("noc: inject with src == dst == %d", src)
	}
	q := n.nis[src]
	if n.cfg.SourceQueueCap > 0 && q.queue.len() >= n.cfg.SourceQueueCap {
		return nil, ErrSourceQueueFull
	}
	pi := n.leasePacket(src, dst)
	n.nextPktID++
	n.created++
	q.queue.push(pi)
	n.markSource(src)
	n.materializePacket(&n.injView, pi)
	return &n.injView, nil
}

// leasePacket draws a record from the arena's free stack, falling back
// to arena growth while the stack warms up (or always, when pooling is
// off), and initializes it for the new packet. The flit stamps of the
// record's lastMove window are cleared so a recycled record starts
// indistinguishable from a fresh one.
func (n *Network) leasePacket(src, dst int) int32 {
	a := &n.arena
	var pi int32
	if k := len(a.freeStack); n.pooling && k > 0 {
		pi = a.freeStack[k-1]
		a.freeStack = a.freeStack[:k-1]
		a.free[pi] = false
		a.injected[pi] = 0
		a.hops[pi] = 0
		a.recv[pi] = 0
	} else {
		pi = a.grow()
	}
	a.id[pi] = n.nextPktID
	a.src[pi], a.dst[pi] = int32(src), int32(dst)
	a.created[pi] = n.cycle
	lm := a.lastMove[int(pi)*a.pktLen : (int(pi)+1)*a.pktLen]
	for i := range lm {
		lm[i] = 0
	}
	return pi
}

// recyclePacket returns a fully consumed packet's record to the free
// stack. It runs at tail ejection, after statistics and the OnEject
// observers — which therefore must not retain the packet view past
// their return. A second recycle of the same lease is always an
// accounting bug and panics rather than corrupting the arena.
func (n *Network) recyclePacket(pi int32) {
	if !n.pooling {
		return
	}
	a := &n.arena
	if a.free[pi] {
		panic(fmt.Sprintf("noc: double recycle of %s", n.pktString(pi)))
	}
	a.free[pi] = true
	n.recycled++
	a.freeStack = append(a.freeStack, pi)
}

// PoolSize returns the number of packet records currently resident on
// the arena's free stack.
func (n *Network) PoolSize() int { return len(n.arena.freeStack) }

// SetPooling enables or disables record recycling. The default is
// enabled; the two modes are result-equivalent bit for bit (proven by
// the golden pool-on/pool-off tests), so the toggle changes allocator
// traffic, never results. It must be called before any packet exists —
// on a freshly built or Reset network — because the conservation
// accounting assumes one regime per run. Disabling drops the arena
// population (capacity is kept).
func (n *Network) SetPooling(on bool) {
	if n.created != 0 {
		panic("noc: SetPooling on a network that already created packets")
	}
	n.pooling = on
	if !on {
		n.arena.truncate()
	}
}

// Pooling reports whether packet-record recycling is enabled.
func (n *Network) Pooling() bool { return n.pooling }

// ErrSourceQueueFull reports an Inject refused by a bounded source queue.
var ErrSourceQueueFull = fmt.Errorf("noc: source queue full")

// route computes the next-hop decision for packet pi's head at router
// r, consulting local congestion when the algorithm is adaptive.
func (n *Network) route(r *router, pi int32, vc int) routing.Decision {
	dst := int(n.arena.dst[pi])
	if n.adaptive != nil {
		return n.adaptive.Choose(r.node, dst, vc, congestionView{r: r, cap: n.cfg.OutBufCap})
	}
	return n.alg.Route(r.node, dst, vc)
}

// canAdmit reports whether a new packet's head may be admitted to the
// output queue: wormhole needs one free slot; cut-through and
// store-and-forward reserve space for the whole packet, so a blocked
// packet never straddles routers.
func (n *Network) canAdmit(q *outVC) bool {
	if q.owner >= 0 {
		return false
	}
	if n.cfg.Switching == Wormhole {
		return !q.full(n.cfg.OutBufCap)
	}
	return n.cfg.OutBufCap-q.q.len() >= n.cfg.PacketLen
}

// canDepart reports whether the flit at the head of the output queue
// may traverse the link. Store-and-forward additionally requires the
// packet's tail flit to be resident in the same queue.
func (n *Network) canDepart(q *outVC) bool {
	if n.cfg.Switching != StoreAndForward {
		return true
	}
	head := q.head()
	tail := n.cfg.PacketLen - 1
	if head.seq() == tail {
		return true
	}
	hp := head.pkt()
	for _, h := range q.flits()[1:] {
		if h.pkt() == hp && h.seq() == tail {
			return true
		}
	}
	return false
}

// Step advances the network one clock cycle. The four phases — sink
// ejection, switch traversal, source injection, link traversal — each
// move a flit at most one stage, and a per-flit cycle stamp prevents a
// flit from advancing through two stages in one cycle. The default
// engine visits only active routers and sources (active.go); the
// parallel engine (parallel.go) executes the same phases shard-parallel
// with deterministic barriers; the sweep engine below scans everything
// and serves as the golden reference both are tested against.
func (n *Network) Step() {
	switch n.engine {
	case EngineSweep:
		n.stepSweep()
	case EngineParallel:
		n.stepParallel()
	default:
		n.stepActive()
	}
}

// stepSweep is the reference per-cycle sweep over all routers.
func (n *Network) stepSweep() {
	n.moved = false
	n.ejectPhase()
	n.switchPhase()
	n.injectPhase()
	n.linkPhase()
	if n.moved {
		n.lastActivity = n.cycle
	}
	n.cycle++
}

// StepN advances the network k cycles.
func (n *Network) StepN(k int) {
	for i := 0; i < k; i++ {
		n.Step()
	}
}

// ejectPhase consumes up to SinkRate flits per node from input-slot
// heads destined to that node, round-robin across (input port, VC)
// slots. The paper's destination IP consumes flits in FIFO order
// through a single ejection port — the bottleneck of the hot-spot
// scenarios.
func (n *Network) ejectPhase() {
	vcs := n.alg.VCs()
	a := &n.arena
	tail := a.pktLen - 1
	for _, r := range n.routers {
		n.visits++
		budget := n.cfg.SinkRate
		np := len(r.in)
		if np == 0 {
			continue
		}
		slots := np * vcs
		for k := 0; k < slots && budget > 0; k++ {
			s := (r.rrEj + k) % slots
			p := r.in[s/vcs]
			vc := s % vcs
			for budget > 0 && !p.empty(vc) && a.dst[p.head(vc).pkt()] == int32(r.node) {
				h := p.pop(vc)
				pi := h.pkt()
				n.telOcc[r.node]--
				n.telEj[r.node]++
				budget--
				n.moved = true
				a.recv[pi]++
				if h.seq() == tail {
					n.ejected++
					n.col.PacketEjected(n.cycle, a.created[pi], a.injected[pi], a.pktLen, int(a.hops[pi]))
					if n.onEject != nil {
						n.materializePacket(&n.ejView, pi)
						n.onEject(&n.ejView)
					}
					n.recyclePacket(pi)
				}
			}
		}
		r.rrEj = (r.rrEj + 1) % slots
	}
}

// switchPhase moves flits from input slots to output queues. Head
// flits run the routing function and must win the output queue
// (ownership + space); body flits follow their packet's switching
// entry. One flit per input port per cycle (the crossbar input port is
// shared by the port's VC slots, arbitrated round-robin).
func (n *Network) switchPhase() {
	vcs := n.alg.VCs()
	a := &n.arena
	for _, r := range n.routers {
		n.visits++
		np := len(r.in)
		for k := 0; k < np; k++ {
			p := r.in[(r.rrIn+k)%np]
			for j := 0; j < vcs; j++ {
				inVC := (p.rrVC + j) % vcs
				if p.empty(inVC) {
					continue
				}
				h := p.head(inVC)
				pi := h.pkt()
				fi := a.flitIndex(h)
				if a.lastMove[fi] >= n.cycle+1 {
					continue // already advanced this cycle
				}
				if a.dst[pi] == int32(r.node) {
					continue // waits for the ejection phase
				}
				entry := &p.route[inVC]
				if h.seq() == 0 {
					// Heads route afresh on every attempt (adaptive
					// algorithms re-evaluate congestion) and commit
					// switching state only when the output queue is won.
					d := n.route(r, pi, inVC)
					op := r.outPortByDir(d.Dir)
					if op == nil {
						panic(fmt.Sprintf("noc: %s chose missing direction %v at node %d for %s",
							n.alg.Name(), d.Dir, r.node, n.pktString(pi)))
					}
					ovc := op.vcs[d.VC]
					if !n.canAdmit(ovc) {
						continue // allocation denied; retry next cycle
					}
					ovc.owner = pi
					*entry = routeEntry{active: true, port: op, vc: d.VC}
				} else if !entry.active {
					panic(fmt.Sprintf("noc: body flit %s at node %d without switching state", n.flitString(h), r.node))
				}
				ovc := entry.port.vcs[entry.vc]
				if ovc.owner != pi || ovc.full(n.cfg.OutBufCap) {
					continue // space denied; retry next cycle
				}
				p.pop(inVC)
				h = h.withVC(entry.vc)
				a.lastMove[fi] = n.cycle + 1
				ovc.push(h)
				n.moved = true
				if h.seq() == a.pktLen-1 {
					ovc.owner = -1
					entry.active = false
				}
				p.rrVC = (inVC + 1) % vcs
				break // one flit per input port per cycle
			}
		}
		r.rrIn = (r.rrIn + 1) % np
	}
}

// injectPhase lets each NI push up to InjectRate flits of its current
// packet into the local router's output queues, opening the worm with a
// routing decision on the head flit. A blocked ready flit is recorded
// as a source-blocked cycle.
func (n *Network) injectPhase() {
	a := &n.arena
	for node, q := range n.nis {
		r := n.routers[node]
		n.visits++
		budget := n.cfg.InjectRate
		for budget > 0 {
			if q.sending < 0 {
				if q.queue.len() == 0 {
					break
				}
				q.sending = q.queue.pop()
				q.nextSeq = 0
				q.vc = 0
				q.route = routeEntry{}
			}
			pi := q.sending
			if q.nextSeq == 0 && !q.route.active {
				d := n.route(r, pi, 0)
				op := r.outPortByDir(d.Dir)
				if op == nil {
					panic(fmt.Sprintf("noc: %s chose missing direction %v at source %d for %s",
						n.alg.Name(), d.Dir, node, n.pktString(pi)))
				}
				ovc := op.vcs[d.VC]
				if n.canAdmit(ovc) {
					ovc.owner = pi
					q.route = routeEntry{active: true, port: op, vc: d.VC}
				} else {
					n.col.SourceBlocked(n.cycle)
					break
				}
			}
			ovc := q.route.port.vcs[q.route.vc]
			if ovc.full(n.cfg.OutBufCap) {
				n.col.SourceBlocked(n.cycle)
				break
			}
			h := mkFlit(pi, q.nextSeq, q.route.vc)
			a.lastMove[a.flitIndex(h)] = n.cycle + 1
			ovc.push(h)
			n.telOcc[node]++
			n.telInj[node]++
			n.moved = true
			q.nextSeq++
			budget--
			if h.seq() == 0 {
				a.injected[pi] = n.cycle
				n.injected++
				n.col.PacketInjected(n.cycle, a.pktLen)
			}
			if h.seq() == a.pktLen-1 {
				ovc.owner = -1
				q.sending = -1
				q.route = routeEntry{}
			}
		}
	}
}

// linkPhase forwards one flit per physical link from the head of an
// output queue (round-robin across that port's VCs) into the matching
// downstream per-VC input slot, provided the slot has room and the flit
// has not already advanced this cycle.
func (n *Network) linkPhase() {
	a := &n.arena
	for _, r := range n.routers {
		n.visits++
		for _, op := range r.out {
			nv := len(op.vcs)
			sent := false
			for k := 0; k < nv && !sent; k++ {
				vi := (op.rr + k) % nv
				v := op.vcs[vi]
				if v.empty() {
					continue
				}
				h := v.head()
				fi := a.flitIndex(h)
				if a.lastMove[fi] >= n.cycle+1 {
					continue
				}
				if !n.canDepart(v) {
					continue
				}
				ip := op.peer
				if ip.full(vi, n.cfg.InBufCap) {
					continue
				}
				v.pop()
				n.telOcc[r.node]--
				a.lastMove[fi] = n.cycle + 1
				if h.seq() == 0 {
					a.hops[h.pkt()]++
				}
				n.linkFlits[op.ch.ID]++
				ip.push(vi, h)
				n.telOcc[op.ch.Dst]++
				n.moved = true
				sent = true
			}
			op.rr = (op.rr + 1) % nv
		}
	}
}

// CreatedPackets returns the number of packets created by Inject.
func (n *Network) CreatedPackets() uint64 { return n.created }

// EjectedPackets returns the number of packets fully consumed at sinks.
func (n *Network) EjectedPackets() uint64 { return n.ejected }

// InjectedPackets returns the number of packets whose head flit entered
// the network.
func (n *Network) InjectedPackets() uint64 { return n.injected }

// QueuedPackets returns the number of packets waiting in IP source
// queues (including each NI's partially injected packet).
func (n *Network) QueuedPackets() int {
	q := 0
	for _, s := range n.nis {
		q += s.queue.len()
		if s.sending >= 0 {
			q++
		}
	}
	return q
}

// InFlightFlits returns the number of flits resident in router buffers.
func (n *Network) InFlightFlits() int {
	f := 0
	for _, r := range n.routers {
		f += r.bufferedFlits()
	}
	return f
}

// IdleCycles returns how many cycles have elapsed since any flit moved.
// With traffic pending, a large value indicates deadlock (the tests'
// watchdog asserts this never happens for the paper's configurations).
func (n *Network) IdleCycles() uint64 {
	if n.cycle == 0 {
		return 0
	}
	return n.cycle - 1 - n.lastActivity
}

// CheckConservation verifies no flit was lost or duplicated: every
// created packet is queued, in flight, or fully ejected, and in-flight
// flit counts match packet bookkeeping. Under the active engine it
// additionally proves the worklist bookkeeping: every buffered flit and
// pending packet is reachable from its phase's active set (a flit off
// its worklist would be stranded forever). The arena invariants are
// proven alongside: every buffered handle is valid (packet index in
// range, seq within the packet, VC within the algorithm's range), no
// live handle references a free record, and — with pooling enabled —
// the free stack holds distinct free-marked records that tile the arena
// exactly with the live population (arena == free + created − ejected);
// without pooling the arena must have grown monotonically (one record
// per created packet, empty free stack). It returns nil when
// consistent.
func (n *Network) CheckConservation() error {
	// Structural handle validity comes first: every later check (the
	// worklist invariant rebuild in particular) dereferences arena
	// fields through buffered handles, so a corrupt word must surface
	// as a diagnostic here rather than an out-of-range panic there.
	if err := n.checkHandles(); err != nil {
		return err
	}
	if err := n.checkActiveInvariants(); err != nil {
		return err
	}
	a := &n.arena
	inFlight := uint64(0)
	for _, s := range n.nis {
		if s.sending >= 0 {
			inFlight++ // partially injected packet
		}
	}
	// Count distinct packets with flits in buffers that are fully
	// injected but not ejected. Walk buffers and collect into the
	// network-owned scratch bitmap over arena indices (conservation runs
	// once per replication; reusing it keeps the check allocation-free
	// on a warm workspace).
	words := (a.len() + 63) / 64
	if cap(n.consScratch) < words {
		n.consScratch = make([]uint64, words)
	}
	n.consScratch = n.consScratch[:words]
	for i := range n.consScratch {
		n.consScratch[i] = 0
	}
	seen := n.consScratch
	distinct := uint64(0)
	vcs := n.alg.VCs()
	note := func(h flitH) error {
		pi := h.pkt()
		if pi < 0 || int(pi) >= a.len() || h.seq() >= a.pktLen || h.vc() >= vcs {
			return fmt.Errorf("noc: invalid flit handle %#x buffered (arena %d records, packet len %d, %d VCs)",
				uint64(h), a.len(), a.pktLen, vcs)
		}
		if a.free[pi] {
			return fmt.Errorf("noc: pooled packet %s still buffered (double free)", n.pktString(pi))
		}
		if w, b := pi>>6, uint(pi)&63; seen[w]&(1<<b) == 0 {
			seen[w] |= 1 << b
			distinct++
		}
		return nil
	}
	for _, r := range n.routers {
		for _, p := range r.in {
			for i := range p.bufs {
				for _, h := range p.bufs[i].live() {
					if err := note(h); err != nil {
						return err
					}
				}
			}
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				for _, h := range v.flits() {
					if err := note(h); err != nil {
						return err
					}
				}
			}
		}
		// The telemetry occupancy probe is maintained incrementally by
		// every engine; prove it against the buffer ground truth so a
		// missed increment cannot silently skew captures.
		if got, want := n.telOcc[r.node], int32(r.bufferedFlits()); got != want {
			return fmt.Errorf("noc: node %d telemetry occupancy %d disagrees with buffered flits %d", r.node, got, want)
		}
	}
	queued := uint64(0)
	for _, s := range n.nis {
		queued += uint64(s.queue.len())
		for _, pi := range s.queue.live() {
			if a.free[pi] {
				return fmt.Errorf("noc: pooled packet %s still queued at source %d (double free)", n.pktString(pi), s.node)
			}
		}
		if s.sending >= 0 {
			if a.free[s.sending] {
				return fmt.Errorf("noc: pooled packet %s mid-injection at source %d (double free)", n.pktString(s.sending), s.node)
			}
			// Counted as sending already; drop its buffered-flit mark.
			if w, b := s.sending>>6, uint(s.sending)&63; seen[w]&(1<<b) != 0 {
				seen[w] &^= 1 << b
				distinct--
			}
		}
	}
	netResident := distinct + inFlight
	total := queued + netResident + n.ejected
	if total < n.created {
		return fmt.Errorf("noc: conservation violated: created %d, accounted %d (queued %d, resident %d, ejected %d)",
			n.created, total, queued, netResident, n.ejected)
	}
	// Packets partially ejected still have flits in the network and are
	// counted in netResident, so the total can exceed created only if a
	// packet is double-counted — which the sets above preclude; an
	// overshoot therefore also indicates a bug.
	if total > n.created {
		return fmt.Errorf("noc: conservation violated (overcount): created %d, accounted %d", n.created, total)
	}
	return n.checkPool()
}

// checkHandles walks every router buffer validating that each stored
// handle names a packet inside the arena, a sequence inside the packet
// and a VC inside the algorithm's range.
func (n *Network) checkHandles() error {
	a := &n.arena
	vcs := n.alg.VCs()
	valid := func(h flitH) error {
		if pi := h.pkt(); pi < 0 || int(pi) >= a.len() || h.seq() >= a.pktLen || h.vc() >= vcs {
			return fmt.Errorf("noc: invalid flit handle %#x buffered (arena %d records, packet len %d, %d VCs)",
				uint64(h), a.len(), a.pktLen, vcs)
		}
		return nil
	}
	for _, r := range n.routers {
		for _, p := range r.in {
			for i := range p.bufs {
				for _, h := range p.bufs[i].live() {
					if err := valid(h); err != nil {
						return err
					}
				}
			}
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				for _, h := range v.flits() {
					if err := valid(h); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// checkPool proves the arena's freelist accounting. Under pooling:
// recycles mirror ejections one for one, the free stack holds exactly
// the recycled-minus-releeased records — each index in range, distinct
// and marked free (the buffer and queue walks in CheckConservation
// already rejected any free record still live) — and the free stack
// plus the live lease population tile the arena record range exactly.
// Without pooling the free stack must be empty and the arena grown one
// record per created packet.
func (n *Network) checkPool() error {
	a := &n.arena
	if !n.pooling {
		if len(a.freeStack) != 0 {
			return fmt.Errorf("noc: pooling disabled but %d records on the free stack", len(a.freeStack))
		}
		if uint64(a.len()) != n.created {
			return fmt.Errorf("noc: pooling disabled but arena holds %d records for %d created packets", a.len(), n.created)
		}
		return nil
	}
	if n.recycled != n.ejected {
		return fmt.Errorf("noc: pool leak: %d packets ejected but %d recycled", n.ejected, n.recycled)
	}
	words := (a.len() + 63) / 64
	if cap(n.poolScratch) < words {
		n.poolScratch = make([]uint64, words)
	}
	n.poolScratch = n.poolScratch[:words]
	for i := range n.poolScratch {
		n.poolScratch[i] = 0
	}
	distinct := n.poolScratch
	for _, pi := range a.freeStack {
		switch {
		case pi < 0 || int(pi) >= a.len():
			return fmt.Errorf("noc: free-stack index %d outside the arena (%d records)", pi, a.len())
		case !a.free[pi]:
			return fmt.Errorf("noc: free stack holds leased packet %s (missing free mark)", n.pktString(pi))
		case distinct[pi>>6]&(1<<(uint(pi)&63)) != 0:
			return fmt.Errorf("noc: packet %s pooled twice (double free)", n.pktString(pi))
		}
		distinct[pi>>6] |= 1 << (uint(pi) & 63)
	}
	if live := n.created - n.ejected; uint64(a.len()) != uint64(len(a.freeStack))+live {
		return fmt.Errorf("noc: arena partition violated: %d records != %d free + %d live leases",
			a.len(), len(a.freeStack), live)
	}
	return nil
}

// Reset returns the network to its just-constructed state — empty
// buffers and queues, zeroed counters and round-robin pointers, no
// ejection callback — while keeping every allocated structure: the
// routers, the per-slot buffer arrays, and above all the packet arena,
// to which all in-flight and queued packets' records are reclaimed
// first (without pooling the arena population is dropped instead, its
// capacity kept). A reset network therefore runs the next scenario bit
// for bit like a freshly built one but with a warm freelist, which is
// what lets a campaign reuse one network across replications instead of
// rebuilding it per run. The engine selection is preserved; pooling may
// be retoggled afterwards (created is back to zero).
func (n *Network) Reset() {
	for _, r := range n.routers {
		for _, p := range r.in {
			for vc := range p.bufs {
				for _, h := range p.bufs[vc].live() {
					n.reclaim(h.pkt())
				}
				p.bufs[vc].reset()
				p.route[vc] = routeEntry{}
			}
			p.rrVC = 0
		}
		for _, op := range r.out {
			for _, v := range op.vcs {
				for _, h := range v.q.live() {
					n.reclaim(h.pkt())
				}
				v.q.reset()
				v.owner = -1
			}
			op.rr = 0
		}
		r.rrIn, r.rrEj = 0, 0
		r.inOcc.zero()
		r.ejOcc.zero()
		r.outOcc.zero()
	}
	for _, s := range n.nis {
		for _, pi := range s.queue.live() {
			n.reclaim(pi)
		}
		s.queue.reset()
		if s.sending >= 0 {
			n.reclaim(s.sending)
			s.sending = -1
		}
		s.nextSeq, s.vc = 0, 0
		s.route = routeEntry{}
	}
	if !n.pooling {
		n.arena.truncate()
	}
	for i := range n.linkFlits {
		n.linkFlits[i] = 0
	}
	for i := range n.telOcc {
		n.telOcc[i] = 0
		n.telInj[i] = 0
		n.telEj[i] = 0
	}
	n.cycle, n.nextPktID = 0, 0
	n.created, n.ejected, n.injected, n.recycled = 0, 0, 0, 0
	n.lastActivity, n.moved = 0, false
	n.visits, n.skipped = 0, 0
	n.barriers, n.sreplays = 0, 0
	n.specs, n.cdefers = 0, 0
	n.onEject = nil
	n.wl.clear()
	n.resetShards()
	n.rebuildModTab()
}

// reclaim returns a still-live packet record to the free stack during
// Reset. A worm spread across several buffers reaches reclaim once per
// flit; the free mark deduplicates. Without pooling the record is
// simply dropped (the arena is truncated by Reset).
func (n *Network) reclaim(pi int32) {
	a := &n.arena
	if !n.pooling || a.free[pi] {
		return
	}
	a.free[pi] = true
	a.freeStack = append(a.freeStack, pi)
}

// flitString renders handle h like Flit.String, for panics and
// conservation errors (cold paths only).
func (n *Network) flitString(h flitH) string {
	n.materializePacket(&n.errView, h.pkt())
	f := Flit{Pkt: &n.errView, Seq: h.seq(), VC: h.vc()}
	return f.String()
}

// Drain runs the network without new injections until all traffic is
// delivered or maxCycles elapse; it returns an error in the latter case
// or if conservation fails. Useful in tests: a network that cannot
// drain is deadlocked.
func (n *Network) Drain(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if n.QueuedPackets() == 0 && n.InFlightFlits() == 0 {
			return n.CheckConservation()
		}
		n.Step()
	}
	if n.QueuedPackets() == 0 && n.InFlightFlits() == 0 {
		return n.CheckConservation()
	}
	return fmt.Errorf("noc: failed to drain after %d cycles: %d queued packets, %d in-flight flits",
		maxCycles, n.QueuedPackets(), n.InFlightFlits())
}
