package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"gonoc/internal/analysis"
)

// cacheKeyVersion tags the canonical encoding. Bump it whenever the
// encoding below or the semantics of any hashed field change, so stale
// cache entries from older binaries can never be mistaken for current
// results.
const cacheKeyVersion = "gonoc-scenario-v1"

// CacheKey returns the content-addressed identity of the scenario: a
// hex digest over the normalized specification, seed included. Two
// scenarios with equal keys run the identical simulation bit for bit,
// so a result store may replay a cached Result instead of re-running.
//
// Normalization resolves the spec choices that do not change the
// simulation: unset mesh/torus dimensions collapse to the ideal
// factorisation Build would pick anyway. Everything else — including
// the hot-spot target order, which steers per-packet RNG draws — is
// hashed literally.
func (s Scenario) CacheKey() string {
	var b strings.Builder
	b.WriteString(cacheKeyVersion)
	cols, rows := s.normalizedDims()
	fmt.Fprintf(&b, "|topo=%s|n=%d|cols=%d|rows=%d", s.Topo, s.Nodes, cols, rows)
	fmt.Fprintf(&b, "|traffic=%s|hotspots=%v|perm=%s", s.Traffic, s.HotSpots, s.Permutation)
	fmt.Fprintf(&b, "|lambda=%x|routing=%s|process=%d", s.Lambda, s.Routing, int(s.Process))
	fmt.Fprintf(&b, "|warmup=%d|measure=%d|seed=%d", s.Warmup, s.Measure, s.Seed)
	c := s.Config
	fmt.Fprintf(&b, "|plen=%d|outbuf=%d|inbuf=%d|sink=%d|inject=%d|srcq=%d|switch=%d",
		c.PacketLen, c.OutBufCap, c.InBufCap, c.SinkRate, c.InjectRate, c.SourceQueueCap, int(c.Switching))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// normalizedDims resolves the mesh/torus dimension choice Build would
// make for unset Cols/Rows, so the identity keys below hash what is
// actually simulated. CacheKey and networkKey share it: the two must
// normalize identically or a Workspace could reuse a network whose
// geometry differs from what Build constructs.
func (s Scenario) normalizedDims() (cols, rows int) {
	cols, rows = s.Cols, s.Rows
	if (s.Topo == Mesh || s.Topo == Torus) && (cols <= 0 || rows <= 0) {
		cols, rows = analysis.IdealMeshDims(s.Nodes)
	}
	return cols, rows
}

// networkKey identifies the scenario fields a built noc.Network depends
// on — interconnect, routing and buffer geometry, with mesh/torus
// dimensions normalized exactly as in CacheKey (shared helper). Two
// scenarios with equal networkKeys can run on the same (Reset) network;
// traffic, rates, seeds and horizons deliberately stay out, which is
// what lets a Workspace reuse one network across every replication and
// rate point of a campaign curve.
func (s Scenario) networkKey() string {
	cols, rows := s.normalizedDims()
	c := s.Config
	return fmt.Sprintf("%s|%d|%d|%d|%s|%d|%d|%d|%d|%d|%d|%d",
		s.Topo, s.Nodes, cols, rows, s.Routing,
		c.PacketLen, c.OutBufCap, c.InBufCap, c.SinkRate, c.InjectRate, c.SourceQueueCap, int(c.Switching))
}
