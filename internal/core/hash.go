package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"gonoc/internal/analysis"
)

// cacheKeyVersion tags the canonical encoding. Bump it whenever the
// encoding below or the semantics of any hashed field change, so stale
// cache entries from older binaries can never be mistaken for current
// results.
const cacheKeyVersion = "gonoc-scenario-v1"

// CacheKey returns the content-addressed identity of the scenario: a
// hex digest over the normalized specification, seed included. Two
// scenarios with equal keys run the identical simulation bit for bit,
// so a result store may replay a cached Result instead of re-running.
//
// Normalization resolves the spec choices that do not change the
// simulation: unset mesh/torus dimensions collapse to the ideal
// factorisation Build would pick anyway. Everything else — including
// the hot-spot target order, which steers per-packet RNG draws — is
// hashed literally.
func (s Scenario) CacheKey() string {
	var b strings.Builder
	b.WriteString(cacheKeyVersion)
	cols, rows := s.Cols, s.Rows
	if (s.Topo == Mesh || s.Topo == Torus) && (cols <= 0 || rows <= 0) {
		cols, rows = analysis.IdealMeshDims(s.Nodes)
	}
	fmt.Fprintf(&b, "|topo=%s|n=%d|cols=%d|rows=%d", s.Topo, s.Nodes, cols, rows)
	fmt.Fprintf(&b, "|traffic=%s|hotspots=%v|perm=%s", s.Traffic, s.HotSpots, s.Permutation)
	fmt.Fprintf(&b, "|lambda=%x|routing=%s|process=%d", s.Lambda, s.Routing, int(s.Process))
	fmt.Fprintf(&b, "|warmup=%d|measure=%d|seed=%d", s.Warmup, s.Measure, s.Seed)
	c := s.Config
	fmt.Fprintf(&b, "|plen=%d|outbuf=%d|inbuf=%d|sink=%d|inject=%d|srcq=%d|switch=%d",
		c.PacketLen, c.OutBufCap, c.InBufCap, c.SinkRate, c.InjectRate, c.SourceQueueCap, int(c.Switching))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}
