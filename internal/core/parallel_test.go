package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// matrixShardCounts mirrors the noc-level matrix: the degenerate single
// shard, even splits, and prime counts that do not divide 16 nodes
// (13-of-16 yields single-router shards). -1 exercises the automatic
// width selection (min(GOMAXPROCS, routers/4), collapsing to the serial
// engine when that is 1) through the same bit-identity proof.
var matrixShardCounts = []int{1, 2, 3, 4, 7, 13, -1}

// runParallelShards executes s under the activity-driven engine and
// under the domain-decomposed engine at every matrix shard count, and
// fails unless all Results are bit-identical — struct equality and
// serialized JSON both. StepParallel is the third knob documented as
// result-neutral (after Engine and NoPool); this helper is the proof.
func runParallelShards(t *testing.T, s Scenario) Result {
	t.Helper()
	s.Engine = noc.EngineActive
	s.StepParallel = 0
	got, err := Run(s)
	if err != nil {
		t.Fatalf("%s [active]: %v", s.Label(), err)
	}
	for _, k := range matrixShardCounts {
		s.StepParallel = k
		want, err := Run(s)
		if err != nil {
			t.Fatalf("%s [parallel/%d]: %v", s.Label(), k, err)
		}
		// The engine knob itself is the only permitted difference.
		want.Scenario.StepParallel = got.Scenario.StepParallel
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: parallel/%d disagrees with active:\nactive:   %+v\nparallel: %+v", s.Label(), k, got, want)
		}
		var ga, gp bytes.Buffer
		if err := WriteResultJSON(&ga, got); err != nil {
			t.Fatal(err)
		}
		if err := WriteResultJSON(&gp, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ga.Bytes(), gp.Bytes()) {
			t.Fatalf("%s: serialized results differ for parallel/%d", s.Label(), k)
		}
	}
	return got
}

// The golden parallel matrix: the paper's three topologies at a load
// below the knee, at the knee, and past saturation, under both wormhole
// and virtual cut-through, at shard counts {1, 2, 3, 4, 7, 13} plus the
// automatic width. Run output — every field of Result, hence every
// figure the exp stack derives from it — must be unchanged by the
// domain decomposition.
func TestGoldenParallelMatrix(t *testing.T) {
	type load struct {
		name   string
		lambda float64
	}
	loads := []load{
		{"low", 0.01},       // ~0.06 flits/cycle/source: mostly idle
		{"knee", 0.05},      // near the throughput flattening
		{"saturated", 0.15}, // well past saturation
	}
	for _, topo := range []TopologyKind{Ring, Spidergon, Mesh} {
		for _, ld := range loads {
			for _, sw := range []noc.Switching{noc.Wormhole, noc.VirtualCutThrough} {
				s := NewScenario(topo, 16, UniformTraffic, ld.lambda)
				s.Warmup, s.Measure = 200, 1200
				s.Config.Switching = sw
				if sw != noc.Wormhole {
					s.Config.OutBufCap = s.Config.PacketLen
				}
				t.Run(string(topo)+"/"+ld.name+"/"+sw.String(), func(t *testing.T) {
					r := runParallelShards(t, s)
					if ld.name != "low" && r.EjectedPackets == 0 {
						t.Fatal("degenerate run: nothing ejected")
					}
				})
			}
		}
	}
	// Hot-spot traffic exercises the ejection-port bottleneck across an
	// uneven shard split.
	hs := NewScenario(Spidergon, 16, HotSpotTraffic, 0.03)
	hs.HotSpots = []int{5}
	hs.Warmup, hs.Measure = 200, 1200
	t.Run("spidergon/hotspot", func(t *testing.T) { runParallelShards(t, hs) })
}

// Fuzz-style scenario equivalence for the parallel engine: random draws
// over the full scenario space (topology family, node count, traffic,
// switching, interface rates, arrival process, shard count) must keep
// it bit-identical to the activity-driven engine.
func TestGoldenParallelRandomScenarios(t *testing.T) {
	rng := sim.NewRNG(777)
	topos := []TopologyKind{Ring, Spidergon, Mesh, Torus}
	for trial := 0; trial < 8; trial++ {
		s := NewScenario(topos[rng.Intn(len(topos))], 8+4*rng.Intn(3), UniformTraffic, 0.005+0.08*rng.Float64())
		if s.Topo == Spidergon && s.Nodes%4 != 0 {
			s.Nodes = 16
		}
		if s.Topo == Torus && s.Nodes < 9 {
			s.Nodes = 12 // 2x4 torus is invalid; 3x4 is the smallest here
		}
		if rng.Bernoulli(0.3) {
			s.Traffic = HotSpotTraffic
			s.HotSpots = []int{rng.Intn(s.Nodes)}
		}
		if rng.Bernoulli(0.3) {
			s.Process = 1 // Bernoulli arrivals: a kernel event every cycle
		}
		if rng.Bernoulli(0.4) {
			s.Config.Switching = noc.VirtualCutThrough
			s.Config.OutBufCap = s.Config.PacketLen
		}
		s.Config.SinkRate = 1 + rng.Intn(2)
		s.Config.InjectRate = 1 + rng.Intn(2)
		s.Warmup = 100 + 50*rng.Uint64()%200
		s.Measure = 400 + rng.Uint64()%800
		s.Seed = rng.Uint64()

		s.Engine = noc.EngineActive
		got, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d [active]: %v", trial, err)
		}
		k := 1 + rng.Intn(8)
		s.StepParallel = k
		want, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d [parallel/%d]: %v", trial, k, err)
		}
		want.Scenario.StepParallel = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%s, %d shards): results diverged:\nactive:   %+v\nparallel: %+v",
				trial, s.Label(), k, got, want)
		}
	}
}

// A parallel-engine run on a warm workspace must match a fresh run bit
// for bit — the workspace reuses the network (with its shard structures
// and packet pool), the kernel, the collector and the renewed traffic
// generator across replications.
func TestParallelWorkspaceReuse(t *testing.T) {
	s := NewScenario(Mesh, 16, UniformTraffic, 0.05)
	s.Warmup, s.Measure = 200, 1200
	s.StepParallel = 4
	fresh, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	for rep := 0; rep < 3; rep++ {
		got, err := ws.Run(s)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("rep %d diverged from fresh run:\nfresh: %+v\nwarm:  %+v", rep, fresh, got)
		}
	}
	// Changing the shard count between replications must not change
	// results either.
	for _, k := range matrixShardCounts {
		s.StepParallel = k
		got, err := ws.Run(s)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		got.Scenario.StepParallel = fresh.Scenario.StepParallel
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("shards=%d diverged on a warm workspace", k)
		}
	}
	// Nor must switching back to the serial engines on the same
	// workspace (the network re-enrolls its worklists either way).
	for _, eng := range []noc.Engine{noc.EngineActive, noc.EngineSweep} {
		s.StepParallel = 0
		s.Engine = eng
		got, err := ws.Run(s)
		if err != nil {
			t.Fatalf("%v after parallel: %v", eng, err)
		}
		got.Scenario.StepParallel = fresh.Scenario.StepParallel
		got.Scenario.Engine = fresh.Scenario.Engine
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("%v after parallel diverged on a warm workspace", eng)
		}
	}
}

// StepParallel must not leak into the content-addressed identity or the
// serialized scenario: a cached serial result is valid for a parallel
// re-run and vice versa.
func TestStepParallelExcludedFromCacheKey(t *testing.T) {
	a := NewScenario(Mesh, 16, UniformTraffic, 0.05)
	b := a
	b.StepParallel = 7
	b.Engine = noc.EngineSweep
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("StepParallel/Engine changed the scenario cache key")
	}
	if fmt.Sprintf("%v", a.networkKey()) != fmt.Sprintf("%v", b.networkKey()) {
		t.Fatal("StepParallel/Engine changed the network key")
	}
}
