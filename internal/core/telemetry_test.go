package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/telemetry"
)

// resultJSON renders a result for equality checks (Result holds slice
// fields, so == does not apply; the JSON form covers every serialized
// index).
func resultJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// telemetryScenario is a small mesh near its knee: enough traffic that
// every probe series moves, small enough that the capture matrix tests
// stay fast.
func telemetryScenario() Scenario {
	s := NewScenario(Mesh, 16, UniformTraffic, 0.03)
	s.Warmup = 100
	s.Measure = 1200
	s.Seed = 7
	return s
}

// captureRun executes s with telemetry into a buffer and returns the
// raw stream plus the run's result.
func captureRun(t *testing.T, s Scenario, chunkLen int) ([]byte, telemetry.Stats, Result) {
	t.Helper()
	var buf bytes.Buffer
	var st telemetry.Stats
	s.Telemetry = &telemetry.Options{W: &buf, ChunkLen: chunkLen, Stats: &st}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st, r
}

// TestTelemetryParallelBitIdentity is the capture half of the parallel
// determinism contract: the byte stream must be identical between the
// serial active engine and the domain-decomposed engine at every shard
// count — including shard counts that do not divide the node count.
// The CI race job runs this under -race, which also proves the
// per-shard probe counters never race.
func TestTelemetryParallelBitIdentity(t *testing.T) {
	s := telemetryScenario()
	want, st, res := captureRun(t, s, 64)
	if st.Samples == 0 || st.Chunks < 2 {
		t.Fatalf("degenerate reference capture: %+v", st)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		sp := s
		sp.StepParallel = shards
		got, gotSt, gotRes := captureRun(t, sp, 64)
		if !bytes.Equal(want, got) {
			t.Errorf("shards=%d: capture differs from serial (%d vs %d bytes)", shards, len(got), len(want))
		}
		if gotSt != st {
			t.Errorf("shards=%d: stats %+v != serial %+v", shards, gotSt, st)
		}
		if resultJSON(t, gotRes) != resultJSON(t, res) {
			t.Errorf("shards=%d: result differs from serial", shards)
		}
	}
}

// TestTelemetryRingWraparound proves chunking is invisible to the
// decoded values: the same run captured at chunk lengths that wrap the
// ring many times, once, and never decodes to identical samples.
func TestTelemetryRingWraparound(t *testing.T) {
	s := telemetryScenario()
	ref, _, _ := captureRun(t, s, 7) // wraps ~190 times, final chunk partial
	refCap, err := telemetry.Decode(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []int{1, 64, 4096} {
		raw, st, _ := captureRun(t, s, cl)
		c, err := telemetry.Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("chunklen=%d: %v", cl, err)
		}
		if c.Samples() != refCap.Samples() {
			t.Fatalf("chunklen=%d: %d samples, want %d", cl, c.Samples(), refCap.Samples())
		}
		want := (uint64(c.Samples()) + uint64(cl) - 1) / uint64(cl)
		if st.Chunks != want {
			t.Errorf("chunklen=%d: %d chunks, want %d", cl, st.Chunks, want)
		}
		for i := 0; i < c.Samples(); i++ {
			if !equalRows(c.Row(i), refCap.Row(i)) {
				t.Fatalf("chunklen=%d: sample %d differs", cl, i)
			}
		}
	}
}

func equalRows(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTelemetryGapElision pins the fast-forward contract: the active
// engine elides quiescent cycles from the capture (no samples), the
// sweep engine ticks and samples every cycle — and on the cycles both
// did sample, the rows must agree exactly.
func TestTelemetryGapElision(t *testing.T) {
	// A near-idle spidergon leaves long quiescent gaps between packets.
	s := NewScenario(Spidergon, 16, UniformTraffic, 0.0008)
	s.Warmup = 0
	s.Measure = 4000
	s.Seed = 3

	sa := s
	sa.Engine = noc.EngineActive
	rawA, stA, _ := captureRun(t, sa, 64)

	ss := s
	ss.Engine = noc.EngineSweep
	rawS, stS, _ := captureRun(t, ss, 64)

	if stA.Samples >= stS.Samples {
		t.Fatalf("active engine elided nothing: %d samples vs sweep's %d", stA.Samples, stS.Samples)
	}
	if stS.Samples != s.Measure+1 {
		t.Fatalf("sweep sampled %d cycles, want %d", stS.Samples, s.Measure+1)
	}
	ca, err := telemetry.Decode(bytes.NewReader(rawA))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := telemetry.Decode(bytes.NewReader(rawS))
	if err != nil {
		t.Fatal(err)
	}
	// Sweep samples cycle c at row index c; every active sample must
	// match it. Gap cycles are absent from the active capture by
	// construction (strictly increasing cycle column checked too).
	prev := uint64(0)
	for i := 0; i < ca.Samples(); i++ {
		cyc := ca.Cycle(i)
		if i > 0 && cyc <= prev {
			t.Fatalf("active capture cycle column not strictly increasing at sample %d", i)
		}
		prev = cyc
		if cyc >= uint64(cs.Samples()) {
			t.Fatalf("active sample %d at cycle %d beyond sweep capture", i, cyc)
		}
		if cs.Cycle(int(cyc)) != cyc {
			t.Fatalf("sweep capture row %d holds cycle %d", cyc, cs.Cycle(int(cyc)))
		}
		if !equalRows(ca.Row(i), cs.Row(int(cyc))) {
			t.Fatalf("cycle %d: active and sweep rows differ", cyc)
		}
	}
}

// TestTelemetryResetMidCapture reruns a warmed workspace — Network.
// Reset zeroes the probe counters between captures — and demands the
// second capture be byte-identical to a cold one.
func TestTelemetryResetMidCapture(t *testing.T) {
	s := telemetryScenario()
	cold, coldSt, coldRes := captureRun(t, s, 64)

	var w Workspace
	var streams [2][]byte
	for i := range streams {
		var buf bytes.Buffer
		var st telemetry.Stats
		sc := s
		sc.Telemetry = &telemetry.Options{W: &buf, ChunkLen: 64, Stats: &st}
		r, err := w.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if resultJSON(t, r) != resultJSON(t, coldRes) {
			t.Fatalf("workspace run %d result differs from cold run", i)
		}
		if st != coldSt {
			t.Fatalf("workspace run %d stats %+v, cold %+v", i, st, coldSt)
		}
		streams[i] = buf.Bytes()
	}
	for i, got := range streams {
		if !bytes.Equal(cold, got) {
			t.Fatalf("workspace capture %d differs from cold capture", i)
		}
	}
}

// TestTelemetryObserverNeutral pins capture as a pure observer: result
// and deterministic engine work counters are bit-identical with
// telemetry on and off.
func TestTelemetryObserverNeutral(t *testing.T) {
	s := telemetryScenario()
	plain, plainPerf, err := RunPerf(s)
	if err != nil {
		t.Fatal(err)
	}
	_, _, withTel := captureRun(t, s, 64)
	st := s
	var buf bytes.Buffer
	st.Telemetry = &telemetry.Options{W: &buf}
	_, telPerf, err := RunPerf(st)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, withTel) != resultJSON(t, plain) {
		t.Error("telemetry-on result differs from telemetry-off")
	}
	if telPerf != plainPerf {
		t.Errorf("telemetry-on perf counters %+v differ from telemetry-off %+v", telPerf, plainPerf)
	}
}
