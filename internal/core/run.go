package core

import (
	"fmt"
	"math"

	"gonoc/internal/analysis"
	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/traffic"
)

// Result carries the measured performance indexes of one scenario run —
// the quantities plotted in the paper's Figures 5 through 11.
type Result struct {
	// Scenario is the configuration that produced this result.
	Scenario Scenario
	// TopologyName is the concrete instance, e.g. "mesh-4x6".
	TopologyName string
	// Sources is the number of transmitting nodes.
	Sources int

	// OfferedFlitRate is the configured aggregate load (flits/cycle);
	// OfferedPerSource the per-source share.
	OfferedFlitRate  float64
	OfferedPerSource float64

	// Throughput is absorbed flits/cycle over the measurement window
	// (the paper's NoC throughput index); PerNode divides by N.
	Throughput        float64
	ThroughputPerNode float64
	// PacketRate is absorbed packets/cycle.
	PacketRate float64
	// AcceptedFlitRate is injected flits/cycle (drops below offered at
	// saturation).
	AcceptedFlitRate float64

	// MeanLatency is creation-to-ejection in cycles; quantiles of the
	// same distribution follow. MeanNetLatency excludes source queueing.
	MeanLatency    float64
	P50Latency     float64
	P95Latency     float64
	MeanNetLatency float64

	// MeanHops is the observed average routed distance (Figure 5).
	MeanHops float64

	// Raw counters.
	InjectedPackets uint64
	EjectedPackets  uint64
	SourceBlocked   uint64

	// LinkTraversals is the total flit-link events of the whole run
	// (warm-up included); MeanLinkUtil and MaxLinkUtil are per-channel
	// flits/cycle over the same span.
	LinkTraversals uint64
	MeanLinkUtil   float64
	MaxLinkUtil    float64

	// EnergyPerPacket estimates delivery energy per packet under the
	// default cost model at the observed mean hop count; TotalEnergy
	// multiplies by the ejected packet count.
	EnergyPerPacket float64
	TotalEnergy     float64
}

// Run executes the scenario to completion and returns its measurements.
// Equal scenarios produce equal results, bit for bit.
func Run(s Scenario) (Result, error) {
	r, _, err := RunPerf(s)
	return r, err
}

// RunPerf is Run additionally returning the engine's deterministic
// work counters — worklist visits and fast-forwarded cycles. The
// counters are a pure function of the scenario (no wall-clock input),
// which is what lets the perf-regression gate compare them against a
// committed baseline across machines.
func RunPerf(s Scenario) (Result, noc.PerfStats, error) {
	if err := s.Validate(); err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	topo, alg, err := s.Build()
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	pattern, err := s.Pattern()
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	col := stats.NewCollector(s.Warmup)
	net, err := noc.NewNetwork(topo, alg, s.Config, col)
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	kernel := sim.NewKernel()
	gen, err := traffic.NewGenerator(kernel, net, pattern, s.Process, s.Lambda, s.Seed)
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	gen.Start()
	net.SetEngine(s.Engine)
	ticker := sim.NewTicker(kernel, 1)
	ticker.OnTick(func(uint64) { net.Step() })
	total := sim.Time(s.Warmup + s.Measure)
	if net.Engine() == noc.EngineActive {
		// Idle fast-forward: when the network is fully quiescent, the
		// next flit movement can only follow the next generator event,
		// so the cycles up to the tick that first observes it are
		// no-ops — skip them instead of paying one kernel event each.
		// The reference engine deliberately keeps the plain 1-cycle
		// ticker so the golden tests compare against seed behaviour.
		ticker.OnPace(func(_ uint64, next sim.Time) sim.Time {
			if !net.Quiescent() {
				return next
			}
			arrival := kernel.NextEventTime()
			if arrival <= next {
				return next
			}
			// An event at time t (integer or fractional) is first seen
			// by the tick at ceil(t): same-time ordinary events run
			// before the tick (TickPriority).
			wake := sim.Time(math.Ceil(float64(arrival)))
			if wake > total+1 {
				wake = total + 1 // nothing left inside the horizon
			}
			net.SkipTo(uint64(wake))
			return wake
		})
	}
	ticker.Start()
	kernel.RunUntil(total)
	// A run that fast-forwarded past the horizon stops short of the
	// final cycle count; align it so cycle-normalized observables
	// (link utilisation) match the reference engine exactly.
	net.SkipTo(uint64(total) + 1)

	if err := net.CheckConservation(); err != nil {
		return Result{}, net.Perf(), fmt.Errorf("core: %s: %w", s.Label(), err)
	}

	sources := pattern.Sources(s.Nodes)
	r := Result{
		Scenario:          s,
		TopologyName:      topo.Name(),
		Sources:           sources,
		OfferedFlitRate:   gen.OfferedFlitRate(),
		Throughput:        col.Throughput(),
		ThroughputPerNode: col.ThroughputPerNode(s.Nodes),
		PacketRate:        col.PacketThroughput(),
		AcceptedFlitRate:  col.AcceptedRate(),
		MeanLatency:       col.MeanLatency(),
		P50Latency:        col.LatencyQuantile(0.5),
		P95Latency:        col.LatencyQuantile(0.95),
		MeanNetLatency:    col.MeanNetworkLatency(),
		MeanHops:          col.MeanHops(),
		InjectedPackets:   col.PacketsInjected(),
		EjectedPackets:    col.PacketsEjected(),
		SourceBlocked:     col.SourceBlockedCycles(),
	}
	if sources > 0 {
		r.OfferedPerSource = r.OfferedFlitRate / float64(sources)
	}
	for _, v := range net.ChannelTraversals() {
		r.LinkTraversals += v
	}
	u := net.Utilization()
	r.MeanLinkUtil, r.MaxLinkUtil = u.Mean, u.Max
	cm := analysis.DefaultCostModel()
	r.EnergyPerPacket = cm.MeanPacketEnergy(r.MeanHops, s.Config.PacketLen)
	r.TotalEnergy = r.EnergyPerPacket * float64(r.EjectedPackets)
	return r, net.Perf(), nil
}

// Batch execution lives in internal/exp: every multi-scenario run in
// the module — sweeps, figures, campaigns — goes through exp.Campaign
// and its runner, which adds replication, caching, sharding and
// confidence intervals on top of the single-scenario Run above. The
// seed's Sweep/SweepScenarios helpers are retired in its favour.
