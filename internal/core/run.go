package core

import (
	"fmt"
	"math"

	"gonoc/internal/analysis"
	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/telemetry"
	"gonoc/internal/traffic"
)

// Result carries the measured performance indexes of one scenario run —
// the quantities plotted in the paper's Figures 5 through 11.
type Result struct {
	// Scenario is the configuration that produced this result.
	Scenario Scenario
	// TopologyName is the concrete instance, e.g. "mesh-4x6".
	TopologyName string
	// Sources is the number of transmitting nodes.
	Sources int

	// OfferedFlitRate is the configured aggregate load (flits/cycle);
	// OfferedPerSource the per-source share.
	OfferedFlitRate  float64
	OfferedPerSource float64

	// Throughput is absorbed flits/cycle over the measurement window
	// (the paper's NoC throughput index); PerNode divides by N.
	Throughput        float64
	ThroughputPerNode float64
	// PacketRate is absorbed packets/cycle.
	PacketRate float64
	// AcceptedFlitRate is injected flits/cycle (drops below offered at
	// saturation).
	AcceptedFlitRate float64

	// MeanLatency is creation-to-ejection in cycles; quantiles of the
	// same distribution follow. MeanNetLatency excludes source queueing.
	MeanLatency    float64
	P50Latency     float64
	P95Latency     float64
	MeanNetLatency float64

	// MeanHops is the observed average routed distance (Figure 5).
	MeanHops float64

	// Raw counters.
	InjectedPackets uint64
	EjectedPackets  uint64
	SourceBlocked   uint64

	// LinkTraversals is the total flit-link events of the whole run
	// (warm-up included); MeanLinkUtil and MaxLinkUtil are per-channel
	// flits/cycle over the same span.
	LinkTraversals uint64
	MeanLinkUtil   float64
	MaxLinkUtil    float64

	// EnergyPerPacket estimates delivery energy per packet under the
	// default cost model at the observed mean hop count; TotalEnergy
	// multiplies by the ejected packet count.
	EnergyPerPacket float64
	TotalEnergy     float64
}

// Run executes the scenario to completion and returns its measurements.
// Equal scenarios produce equal results, bit for bit.
func Run(s Scenario) (Result, error) {
	r, _, err := RunPerf(s)
	return r, err
}

// RunPerf is Run additionally returning the engine's deterministic
// work counters — worklist visits and fast-forwarded cycles. The
// counters are a pure function of the scenario (no wall-clock input),
// which is what lets the perf-regression gate compare them against a
// committed baseline across machines.
func RunPerf(s Scenario) (Result, noc.PerfStats, error) {
	var w Workspace
	return w.RunPerf(s)
}

// Workspace owns the reusable heavy state of scenario execution: the
// built network (with its packet pool), the event kernel (with its
// pooled event records) and the statistics collector (with its sample
// buffers). Consecutive Run calls whose scenarios share a networkKey —
// every replication and rate point of a campaign curve — reset this
// state instead of rebuilding it, so a warmed workspace executes a run
// without allocator traffic on the packet path. A workspace run is
// result-equivalent bit for bit to a fresh core.Run (proven by the
// workspace golden tests); the zero value is ready to use and is not
// safe for concurrent use.
type Workspace struct {
	key    string
	net    *noc.Network
	col    *stats.Collector
	kernel *sim.Kernel
	// gen is the reusable traffic generator: its per-source rate, RNG
	// and arrival-horizon slices are re-seeded in place per run
	// (traffic.RenewGenerator), so replications do not pay one
	// allocation per node for fresh streams.
	gen *traffic.Generator
	// rec is the reusable telemetry recorder; its ring and encode
	// buffers are sized by the capture spec, so telemetry-on
	// replications reuse them instead of reallocating per run.
	rec *telemetry.Recorder
}

// Run executes the scenario on the workspace; see RunPerf.
func (w *Workspace) Run(s Scenario) (Result, error) {
	r, _, err := w.RunPerf(s)
	return r, err
}

// RunPerf executes the scenario, reusing the workspace's network,
// kernel and collector when the scenario's network geometry matches the
// previous run's.
func (w *Workspace) RunPerf(s Scenario) (Result, noc.PerfStats, error) {
	if err := s.Validate(); err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	pattern, err := s.Pattern()
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	key := s.networkKey()
	if w.net != nil && w.key == key {
		w.net.Reset()
		w.col.Reset(s.Warmup)
		w.kernel.Reset()
	} else {
		topo, alg, err := s.Build()
		if err != nil {
			return Result{}, noc.PerfStats{}, err
		}
		w.col = stats.NewCollector(s.Warmup)
		w.net, err = noc.NewNetwork(topo, alg, s.Config, w.col)
		if err != nil {
			w.key, w.net = "", nil
			return Result{}, noc.PerfStats{}, err
		}
		w.kernel = sim.NewKernel()
	}
	// The cached network is poisoned until this run completes cleanly: a
	// failed run (a conservation violation in particular) can leave
	// corruption — e.g. in the packet pool — that Reset does not repair,
	// so an errored workspace rebuilds on its next use instead of
	// reusing.
	w.key = ""
	net, col, kernel := w.net, w.col, w.kernel
	net.SetPooling(!s.NoPool)
	gen, err := traffic.RenewGenerator(w.gen, kernel, net, pattern, s.Process, s.Lambda, s.Seed)
	if err != nil {
		return Result{}, noc.PerfStats{}, err
	}
	w.gen = gen
	gen.Start()
	switch {
	case s.StepParallel > 0:
		net.SetShards(s.StepParallel)
		net.SetEngine(noc.EngineParallel)
	case s.StepParallel < 0:
		// Auto width: let the network pick from GOMAXPROCS and its
		// router count. A pick of 1 means the network is too small to
		// decompose profitably — collapse to the configured serial
		// engine (identical results, no worker group).
		net.SetShards(0)
		if net.Shards() > 1 {
			net.SetEngine(noc.EngineParallel)
		} else {
			net.SetEngine(s.Engine)
		}
	default:
		net.SetEngine(s.Engine)
	}
	// The parallel engine's shard workers park between cycles but hold
	// the network; stop them when the run ends (error paths included) so
	// a workspace dropped by its pool cannot leak the group.
	defer net.StopWorkers()
	ticker := sim.NewTicker(kernel, 1)
	ticker.OnTick(func(uint64) { net.Step() })
	var rec *telemetry.Recorder
	if s.Telemetry != nil && s.Telemetry.W != nil {
		cl := s.Telemetry.ChunkLen
		if cl <= 0 {
			cl = telemetry.DefaultChunkLen
		}
		spec := telemetry.Spec{Nodes: s.Nodes, Links: len(net.Topology().Channels()), ChunkLen: cl}
		if w.rec == nil || w.rec.Spec() != spec {
			r, err := telemetry.NewRecorder(spec)
			if err != nil {
				return Result{}, noc.PerfStats{}, err
			}
			w.rec = r
		}
		rec = w.rec
		if err := rec.Start(s.Telemetry.W); err != nil {
			return Result{}, noc.PerfStats{}, fmt.Errorf("core: %s: telemetry: %w", s.Label(), err)
		}
		// Sampling is a second tick phase: it runs after Step each
		// ticked cycle, so every engine samples identical post-cycle
		// state. Cycles elided by idle fast-forward emit no sample.
		ticker.OnTick(func(uint64) {
			tv := net.Telemetry()
			rec.Sample(net.Cycle()-1, tv.Occ, tv.Inj, tv.Ej, tv.Link)
		})
	}
	total := sim.Time(s.Warmup + s.Measure)
	if eng := net.Engine(); eng == noc.EngineActive || eng == noc.EngineParallel {
		// Idle fast-forward: when the network is fully quiescent, the
		// next flit movement can only follow the next generator event,
		// so the cycles up to the tick that first observes it are
		// no-ops — skip them instead of paying one kernel event each.
		// The reference engine deliberately keeps the plain 1-cycle
		// ticker so the golden tests compare against seed behaviour.
		ticker.OnPace(func(_ uint64, next sim.Time) sim.Time {
			if !net.Quiescent() {
				return next
			}
			arrival := kernel.NextEventTime()
			if arrival <= next {
				return next
			}
			// An event at time t (integer or fractional) is first seen
			// by the tick at ceil(t): same-time ordinary events run
			// before the tick (TickPriority).
			wake := sim.Time(math.Ceil(float64(arrival)))
			if wake > total+1 {
				wake = total + 1 // nothing left inside the horizon
			}
			net.SkipTo(uint64(wake))
			return wake
		})
	}
	ticker.Start()
	kernel.RunUntil(total)
	// A run that fast-forwarded past the horizon stops short of the
	// final cycle count; align it so cycle-normalized observables
	// (link utilisation) match the reference engine exactly.
	net.SkipTo(uint64(total) + 1)
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return Result{}, net.Perf(), fmt.Errorf("core: %s: telemetry: %w", s.Label(), err)
		}
		if s.Telemetry.Stats != nil {
			*s.Telemetry.Stats = rec.Stats()
		}
	}

	if err := net.CheckConservation(); err != nil {
		return Result{}, net.Perf(), fmt.Errorf("core: %s: %w", s.Label(), err)
	}

	sources := pattern.Sources(s.Nodes)
	r := Result{
		Scenario:          s,
		TopologyName:      net.Topology().Name(),
		Sources:           sources,
		OfferedFlitRate:   gen.OfferedFlitRate(),
		Throughput:        col.Throughput(),
		ThroughputPerNode: col.ThroughputPerNode(s.Nodes),
		PacketRate:        col.PacketThroughput(),
		AcceptedFlitRate:  col.AcceptedRate(),
		MeanLatency:       col.MeanLatency(),
		P50Latency:        col.LatencyQuantile(0.5),
		P95Latency:        col.LatencyQuantile(0.95),
		MeanNetLatency:    col.MeanNetworkLatency(),
		MeanHops:          col.MeanHops(),
		InjectedPackets:   col.PacketsInjected(),
		EjectedPackets:    col.PacketsEjected(),
		SourceBlocked:     col.SourceBlockedCycles(),
	}
	if sources > 0 {
		r.OfferedPerSource = r.OfferedFlitRate / float64(sources)
	}
	for _, v := range net.ChannelTraversals() {
		r.LinkTraversals += v
	}
	u := net.Utilization()
	r.MeanLinkUtil, r.MaxLinkUtil = u.Mean, u.Max
	cm := analysis.DefaultCostModel()
	r.EnergyPerPacket = cm.MeanPacketEnergy(r.MeanHops, s.Config.PacketLen)
	r.TotalEnergy = r.EnergyPerPacket * float64(r.EjectedPackets)
	w.key = key // clean run: the network is reusable again
	return r, net.Perf(), nil
}

// Batch execution lives in internal/exp: every multi-scenario run in
// the module — sweeps, figures, campaigns — goes through exp.Campaign
// and its runner, which adds replication, caching, sharding and
// confidence intervals on top of the single-scenario Run above. The
// seed's Sweep/SweepScenarios helpers are retired in its favour.
