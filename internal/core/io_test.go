package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := NewScenario(Mesh, 24, HotSpotTraffic, 0.004)
	s.HotSpots = []int{0, 13}
	s.Routing = "west-first"
	s.Cols, s.Rows = 4, 6
	data, err := MarshalScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topo != s.Topo || got.Nodes != s.Nodes || got.Lambda != s.Lambda ||
		got.Routing != s.Routing || len(got.HotSpots) != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestUnmarshalScenarioAppliesDefaults(t *testing.T) {
	// A file specifying only the topology inherits everything else.
	got, err := UnmarshalScenario([]byte(`{"Topo":"ring","Nodes":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.PacketLen != 6 || got.Warmup == 0 || got.Measure == 0 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if got.Topo != Ring || got.Nodes != 8 {
		t.Fatal("explicit fields lost")
	}
}

func TestUnmarshalScenarioValidates(t *testing.T) {
	if _, err := UnmarshalScenario([]byte(`{"Topo":"spidergon","Nodes":9}`)); err == nil {
		t.Fatal("odd spidergon passed validation")
	}
	if _, err := UnmarshalScenario([]byte(`{nonsense`)); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestReadScenariosSingleAndList(t *testing.T) {
	one, err := ReadScenarios([]byte(`  {"Topo":"ring","Nodes":8}`))
	if err != nil || len(one) != 1 {
		t.Fatalf("single: %v %v", one, err)
	}
	many, err := ReadScenarios([]byte(`[
		{"Topo":"ring","Nodes":8},
		{"Topo":"mesh","Nodes":16}
	]`))
	if err != nil || len(many) != 2 {
		t.Fatalf("list: %v %v", many, err)
	}
	if many[1].Topo != Mesh {
		t.Fatal("list order lost")
	}
	if _, err := ReadScenarios([]byte(`[{"Topo":"spidergon","Nodes":9}]`)); err == nil {
		t.Fatal("invalid element accepted")
	}
	if _, err := ReadScenarios([]byte(`[broken`)); err == nil {
		t.Fatal("broken list accepted")
	}
}

func TestWriteResultJSON(t *testing.T) {
	s := NewScenario(Ring, 8, UniformTraffic, 0.005)
	s.Warmup, s.Measure = 100, 1500
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Throughput", "MeanLatency", "EnergyPerPacket", "TopologyName"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("result json missing %q:\n%s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "ring-8") {
		t.Fatal("topology name missing")
	}
}

func TestFindSaturationHotspot(t *testing.T) {
	// The measured hot-spot saturation must land near the analytic
	// λ_sat = 1/(7·6) packets/cycle for an 8-node, 1-sink scenario.
	base := NewScenario(Spidergon, 8, HotSpotTraffic, 0)
	base.HotSpots = []int{0}
	base.Warmup, base.Measure = 400, 5000
	got, err := FindSaturation(base, 0.1, 0.08, 8)
	if err != nil {
		t.Fatal(err)
	}
	analytic := 1.0 / 42.0
	if got < 0.5*analytic || got > 1.4*analytic {
		t.Fatalf("measured saturation %v far from analytic %v", got, analytic)
	}
}

func TestFindSaturationCapReturnsHi(t *testing.T) {
	// A trivially light cap sustains: the search returns the cap.
	base := NewScenario(Spidergon, 8, UniformTraffic, 0)
	base.Warmup, base.Measure = 200, 2000
	got, err := FindSaturation(base, 0.001, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.001 {
		t.Fatalf("cap not returned: %v", got)
	}
}

func TestFindSaturationValidation(t *testing.T) {
	base := NewScenario(Spidergon, 8, UniformTraffic, 0)
	if _, err := FindSaturation(base, 0, 0.1, 4); err == nil {
		t.Fatal("zero hi accepted")
	}
	if _, err := FindSaturation(base, 0.1, 0, 4); err == nil {
		t.Fatal("zero tol accepted")
	}
	if _, err := FindSaturation(base, 0.1, 0.1, 0); err == nil {
		t.Fatal("zero iters accepted")
	}
	bad := NewScenario(Spidergon, 9, UniformTraffic, 0)
	if _, err := FindSaturation(bad, 0.1, 0.1, 2); err == nil {
		t.Fatal("invalid base scenario accepted")
	}
}

func TestFirstNonSpace(t *testing.T) {
	if firstNonSpace([]byte("   [1]")) != '[' {
		t.Fatal("bracket")
	}
	if firstNonSpace([]byte("\n\t {")) != '{' {
		t.Fatal("brace")
	}
	if firstNonSpace([]byte("  ")) != 0 {
		t.Fatal("empty")
	}
}
