package core

import (
	"math"
	"strings"
	"testing"

	"gonoc/internal/analysis"
	"gonoc/internal/stats"
	"gonoc/internal/traffic"
)

func TestScenarioValidate(t *testing.T) {
	good := NewScenario(Spidergon, 8, UniformTraffic, 0.01)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []Scenario{
		func() Scenario { s := good; s.Nodes = 1; return s }(),
		func() Scenario { s := good; s.Lambda = -0.1; return s }(),
		func() Scenario { s := good; s.Measure = 0; return s }(),
		func() Scenario { s := good; s.Config.PacketLen = 0; return s }(),
		func() Scenario { s := good; s.Topo = "hypercube"; return s }(),
		func() Scenario { s := good; s.Traffic = HotSpotTraffic; return s }(), // no targets
		func() Scenario {
			s := good
			s.Traffic = HotSpotTraffic
			s.HotSpots = []int{99}
			return s
		}(),
		func() Scenario { s := good; s.Topo = Spidergon; s.Nodes = 9; return s }(),
		func() Scenario { s := good; s.Topo = Mesh; s.Cols = 3; s.Rows = 2; return s }(), // 6 != 8
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid scenario %s accepted", i, s.Label())
		}
	}
}

func TestScenarioBuildKinds(t *testing.T) {
	for _, kind := range []TopologyKind{Ring, Spidergon, Mesh, IrregularMesh, FactorMesh} {
		s := NewScenario(kind, 12, UniformTraffic, 0.01)
		topo, alg, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if topo.Nodes() != 12 {
			t.Fatalf("%s: %d nodes", kind, topo.Nodes())
		}
		if alg.VCs() < 1 {
			t.Fatalf("%s: no VCs", kind)
		}
	}
	s := NewScenario(Torus, 12, UniformTraffic, 0.01)
	s.Cols, s.Rows = 4, 3
	if _, _, err := s.Build(); err != nil {
		t.Fatalf("torus: %v", err)
	}
}

func TestScenarioLabel(t *testing.T) {
	s := NewScenario(Ring, 8, UniformTraffic, 0.02)
	if !strings.Contains(s.Label(), "ring-8") {
		t.Fatalf("label = %q", s.Label())
	}
}

func TestRunLowLoadDeliversEverything(t *testing.T) {
	s := NewScenario(Spidergon, 8, UniformTraffic, 0.005)
	s.Warmup, s.Measure = 500, 5000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EjectedPackets == 0 {
		t.Fatal("nothing delivered")
	}
	// At 0.03 flits/cycle/source the network is far from saturation:
	// throughput ≈ offered.
	if math.Abs(r.Throughput-r.OfferedFlitRate) > 0.25*r.OfferedFlitRate {
		t.Fatalf("throughput %v far from offered %v at low load", r.Throughput, r.OfferedFlitRate)
	}
	// Latency must exceed the no-contention floor: hops + packetlen.
	if r.MeanLatency < r.MeanHops+float64(s.Config.PacketLen) {
		t.Fatalf("latency %v below physical floor", r.MeanLatency)
	}
	if r.Sources != 8 {
		t.Fatalf("sources = %d", r.Sources)
	}
}

func TestRunDeterministic(t *testing.T) {
	s := NewScenario(Mesh, 8, UniformTraffic, 0.01)
	s.Warmup, s.Measure = 200, 3000
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.MeanLatency != b.MeanLatency ||
		a.EjectedPackets != b.EjectedPackets {
		t.Fatal("identical scenarios produced different results")
	}
	s.Seed = 999
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.EjectedPackets == a.EjectedPackets && c.MeanLatency == a.MeanLatency {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	s := NewScenario(Spidergon, 7, UniformTraffic, 0.01) // odd spidergon
	if _, err := Run(s); err == nil {
		t.Fatal("invalid scenario ran")
	}
}

// The paper's Figure 5: simulated mean hops track the analytic E[D]
// within stochastic noise, for all three topologies at 8 and 16 nodes.
func TestFig5SimMatchesAnalytic(t *testing.T) {
	for _, tc := range []struct {
		kind TopologyKind
		n    int
		an   float64
	}{
		{Ring, 8, analysis.RingAvgDistanceExact(8)},
		{Ring, 16, analysis.RingAvgDistanceExact(16)},
		{Spidergon, 8, analysis.SpidergonAvgDistanceExact(8)},
		{Spidergon, 16, analysis.SpidergonAvgDistanceExact(16)},
		{Mesh, 8, analysis.MeshAvgDistanceExact(2, 4)},
		{Mesh, 16, analysis.MeshAvgDistanceExact(4, 4)},
	} {
		s := NewScenario(tc.kind, tc.n, UniformTraffic, 0.008)
		s.Warmup, s.Measure = 500, 8000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.MeanHops-tc.an) > 0.12*tc.an {
			t.Errorf("%s-%d: sim hops %v vs analytic %v", tc.kind, tc.n, r.MeanHops, tc.an)
		}
	}
}

// The paper's central hot-spot result (Figure 6): at saturation the
// throughput equals the sink rate — 1 flit/cycle — for every topology,
// "no differences with respect to the implemented topology".
func TestHotspotThroughputTopologyIndependent(t *testing.T) {
	var got []float64
	for _, kind := range []TopologyKind{Ring, Spidergon, Mesh} {
		s := NewScenario(kind, 8, HotSpotTraffic, 0)
		s.HotSpots = []int{SingleHotspot(kind, 8, false, 0, 0)}
		// 1.5x the saturation rate.
		s.Lambda = 1.5 * analysis.HotspotSaturationLambda(1, 1, 7, 6)
		s.Warmup, s.Measure = 1000, 10000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput < 0.93 || r.Throughput > 1.001 {
			t.Fatalf("%s: saturated hotspot throughput %v, want ≈ 1", kind, r.Throughput)
		}
		got = append(got, r.Throughput)
	}
	// Across topologies the saturated values agree within a few percent.
	for i := 1; i < len(got); i++ {
		if math.Abs(got[i]-got[0]) > 0.05 {
			t.Fatalf("topology-dependent hotspot saturation: %v", got)
		}
	}
}

// Below saturation, hot-spot throughput equals offered load (the linear
// absorption regime of Figure 6).
func TestHotspotLinearRegime(t *testing.T) {
	s := NewScenario(Spidergon, 16, HotSpotTraffic, 0)
	s.HotSpots = []int{0}
	lamSat := analysis.HotspotSaturationLambda(1, 1, 15, 6)
	s.Lambda = 0.5 * lamSat
	s.Warmup, s.Measure = 1000, 20000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-r.OfferedFlitRate) > 0.1*r.OfferedFlitRate {
		t.Fatalf("sub-saturation throughput %v != offered %v", r.Throughput, r.OfferedFlitRate)
	}
}

// Latency rises sharply past hot-spot saturation (Figure 7).
func TestHotspotLatencyKnee(t *testing.T) {
	lamSat := analysis.HotspotSaturationLambda(1, 1, 7, 6)
	lat := func(frac float64) float64 {
		s := NewScenario(Spidergon, 8, HotSpotTraffic, frac*lamSat)
		s.HotSpots = []int{0}
		s.Warmup, s.Measure = 1000, 10000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanLatency
	}
	low, high := lat(0.4), lat(1.4)
	if high < 3*low {
		t.Fatalf("no latency knee: %.1f at 0.4λsat vs %.1f at 1.4λsat", low, high)
	}
}

// Double hot-spot: aggregate saturation doubles to ≈ 2 flits/cycle
// (Figure 8) and conclusions match the single-target case.
func TestDoubleHotspotSaturation(t *testing.T) {
	for _, kind := range []TopologyKind{Spidergon, Mesh} {
		targets, err := DoubleHotspots(kind, 8, PlacementA, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScenario(kind, 8, HotSpotTraffic, 0)
		s.HotSpots = targets
		s.Lambda = 1.5 * analysis.HotspotSaturationLambda(2, 1, 6, 6)
		s.Warmup, s.Measure = 1000, 10000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput < 1.7 || r.Throughput > 2.001 {
			t.Fatalf("%s: double hotspot saturation %v, want ≈ 2", kind, r.Throughput)
		}
	}
}

// The paper's Figure 10 ordering: under uniform traffic at high load,
// Ring is worst; Spidergon and Mesh clearly outperform it.
func TestUniformOrderingRingWorst(t *testing.T) {
	tput := map[TopologyKind]float64{}
	for _, kind := range []TopologyKind{Ring, Spidergon, Mesh} {
		s := NewScenario(kind, 16, UniformTraffic, 0.4/6) // 0.4 flits/cycle/source
		s.Warmup, s.Measure = 1000, 10000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		tput[kind] = r.Throughput
	}
	if tput[Ring] >= tput[Spidergon] || tput[Ring] >= tput[Mesh] {
		t.Fatalf("ring not worst under uniform load: %v", tput)
	}
}

// Ring saturates first: its latency at a moderate uniform load exceeds
// the others' (Figure 11).
func TestUniformRingSaturatesFirst(t *testing.T) {
	lat := map[TopologyKind]float64{}
	for _, kind := range []TopologyKind{Ring, Spidergon, Mesh} {
		s := NewScenario(kind, 16, UniformTraffic, 0.3/6)
		s.Warmup, s.Measure = 1000, 10000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		lat[kind] = r.MeanLatency
	}
	if lat[Ring] <= lat[Spidergon] || lat[Ring] <= lat[Mesh] {
		t.Fatalf("ring latency not worst: %v", lat)
	}
}

// Sweep-style batches are exercised in internal/exp: the campaign
// runner is the module's single batch execution path.

func TestMeshCenterMatchesPaper(t *testing.T) {
	// Paper: node 5 (1-based) on the 2x4 mesh, node 14 (1-based) on 4x6.
	if got := MeshCenter(2, 4); got != 4 {
		t.Fatalf("center(2x4) = %d, want 4 (paper's node 5)", got)
	}
	if got := MeshCenter(4, 6); got != 13 {
		t.Fatalf("center(4x6) = %d, want 13 (paper's node 14)", got)
	}
}

func TestDoubleHotspotPlacements(t *testing.T) {
	for _, tc := range []struct {
		kind TopologyKind
		p    Placement
		want []int
	}{
		{Ring, PlacementA, []int{0, 4}},
		{Ring, PlacementB, []int{0, 6}},
		{Spidergon, PlacementA, []int{0, 4}},
		{Mesh, PlacementA, []int{0, 7}},
		{Mesh, PlacementB, []int{0, 4}},
		{Mesh, PlacementC, []int{4, 5}},
	} {
		got, err := DoubleHotspots(tc.kind, 8, tc.p, 0, 0)
		if err != nil {
			t.Fatalf("%s/%c: %v", tc.kind, tc.p, err)
		}
		if len(got) != 2 || got[0] != tc.want[0] || got[1] != tc.want[1] {
			t.Fatalf("%s/%c: %v, want %v", tc.kind, tc.p, got, tc.want)
		}
	}
	if _, err := DoubleHotspots(Ring, 8, PlacementC, 0, 0); err == nil {
		t.Fatal("placement C on ring accepted")
	}
	if _, err := DoubleHotspots("bogus", 8, PlacementA, 0, 0); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestTableTextAndCSV(t *testing.T) {
	tab := &Table{Title: "demo", XName: "x"}
	s1 := &stats.Series{Name: "a"}
	s1.Append(1, 10)
	s1.Append(2, 20)
	s2 := &stats.Series{Name: "b"}
	s2.Append(2, 200)
	s2.Append(3, 300)
	tab.Add(s1)
	tab.Add(s2)
	text := tab.Text()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "a") {
		t.Fatalf("text rendering:\n%s", text)
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 4 { // x in {1,2,3}
		t.Fatalf("csv rows: %v", lines)
	}
	if lines[1] != "1,10," {
		t.Fatalf("csv row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,200" {
		t.Fatalf("csv row 2 = %q", lines[2])
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape(`plain`) != `plain` {
		t.Fatal("plain escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Fatal("comma not quoted")
	}
	if csvEscape(`say "hi"`) != `"say ""hi"""` {
		t.Fatal("quotes not doubled")
	}
}

func TestFig2Shapes(t *testing.T) {
	tab := Fig2Diameter(4, 48)
	if len(tab.Series) != 5 {
		t.Fatalf("series count %d", len(tab.Series))
	}
	// Spidergon ND stays at or below the real meshes up to 45 nodes.
	var sg, imesh *stats.Series
	for _, s := range tab.Series {
		switch s.Name {
		case "spidergon":
			sg = s
		case "real-mesh-irregular":
			imesh = s
		}
	}
	for i, x := range sg.X {
		if x > 45 {
			break
		}
		if ix, ok := imesh.YAt(x); ok {
			if sg.Y[i] > ix {
				t.Fatalf("N=%v: spidergon ND %v above irregular mesh %v", x, sg.Y[i], ix)
			}
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	tab := Fig3AvgDistance(8, 48)
	var ring, sg *stats.Series
	for _, s := range tab.Series {
		switch s.Name {
		case "ring":
			ring = s
		case "spidergon":
			sg = s
		}
	}
	for _, x := range sg.X {
		ry, ok := ring.YAt(x)
		if !ok {
			continue
		}
		sy, _ := sg.YAt(x)
		if sy >= ry {
			t.Fatalf("N=%v: spidergon E[D] %v not below ring %v", x, sy, ry)
		}
	}
}

func TestRunBernoulliProcess(t *testing.T) {
	s := NewScenario(Ring, 8, UniformTraffic, 0.01)
	s.Process = traffic.Bernoulli
	s.Warmup, s.Measure = 200, 3000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EjectedPackets == 0 {
		t.Fatal("bernoulli run delivered nothing")
	}
}
