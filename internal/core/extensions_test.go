package core

import (
	"math"
	"strings"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/stats"
)

func TestRoutingOverrideBuild(t *testing.T) {
	for _, override := range []string{"", "xy", "yx", "west-first", "table"} {
		s := NewScenario(Mesh, 16, UniformTraffic, 0.01)
		s.Routing = override
		if _, _, err := s.Build(); err != nil {
			t.Fatalf("override %q: %v", override, err)
		}
	}
	s := NewScenario(Mesh, 16, UniformTraffic, 0.01)
	s.Routing = "hyperspace"
	if _, _, err := s.Build(); err == nil {
		t.Fatal("bogus override accepted")
	}
	s = NewScenario(Ring, 8, UniformTraffic, 0.01)
	s.Routing = "xy"
	if _, _, err := s.Build(); err == nil {
		t.Fatal("override on ring accepted")
	}
	s = NewScenario(IrregularMesh, 13, UniformTraffic, 0.01)
	s.Routing = "yx"
	if _, _, err := s.Build(); err == nil {
		t.Fatal("yx on irregular mesh accepted")
	}
	s.Routing = "table"
	if _, _, err := s.Build(); err != nil {
		t.Fatalf("table on irregular mesh: %v", err)
	}
}

func TestRoutingOverridesRunEquivalently(t *testing.T) {
	// XY, YX, west-first and table routing are all minimal on a full
	// mesh: under light uniform load their mean hop counts agree and
	// everything is delivered.
	var hops []float64
	for _, override := range []string{"", "yx", "west-first", "table"} {
		s := NewScenario(Mesh, 16, UniformTraffic, 0.005)
		s.Routing = override
		s.Warmup, s.Measure = 500, 6000
		r, err := Run(s)
		if err != nil {
			t.Fatalf("%q: %v", override, err)
		}
		if r.EjectedPackets == 0 {
			t.Fatalf("%q: nothing delivered", override)
		}
		hops = append(hops, r.MeanHops)
	}
	for i := 1; i < len(hops); i++ {
		if math.Abs(hops[i]-hops[0]) > 0.15*hops[0] {
			t.Fatalf("hop counts diverge across minimal algorithms: %v", hops)
		}
	}
}

func TestAdaptiveBeatsXYUnderSkewedLoad(t *testing.T) {
	// Transpose-like skewed traffic concentrates XY paths; west-first
	// spreads eastbound traffic, so its saturated throughput is at
	// least XY's.
	run := func(override string) float64 {
		s := NewScenario(Mesh, 16, HotSpotTraffic, 0)
		s.HotSpots = []int{15}
		s.Lambda = 2.0 * 1.0 / (15.0 * 6.0)
		s.Routing = override
		s.Warmup, s.Measure = 500, 6000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	xy, wf := run(""), run("west-first")
	if wf < 0.95*xy {
		t.Fatalf("west-first %v clearly below xy %v", wf, xy)
	}
}

func TestResultCostAndUtilizationFields(t *testing.T) {
	s := NewScenario(Spidergon, 8, UniformTraffic, 0.01)
	s.Warmup, s.Measure = 200, 4000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkTraversals == 0 {
		t.Fatal("no link traversals recorded")
	}
	if r.MeanLinkUtil <= 0 || r.MaxLinkUtil < r.MeanLinkUtil || r.MaxLinkUtil > 1 {
		t.Fatalf("utilisation fields inconsistent: mean %v max %v", r.MeanLinkUtil, r.MaxLinkUtil)
	}
	// Energy per packet = 6 * (hops*1 + (hops+1)*1.5) under defaults.
	want := 6 * (r.MeanHops + (r.MeanHops+1)*1.5)
	if math.Abs(r.EnergyPerPacket-want) > 1e-9 {
		t.Fatalf("energy per packet %v, want %v", r.EnergyPerPacket, want)
	}
	if r.TotalEnergy != r.EnergyPerPacket*float64(r.EjectedPackets) {
		t.Fatal("total energy inconsistent")
	}
}

func TestEnergyOrderingRingWorst(t *testing.T) {
	// Uniform traffic: ring's higher hop count costs more energy per
	// packet than spidergon's at equal N — the paper's energy argument.
	energy := map[TopologyKind]float64{}
	for _, kind := range []TopologyKind{Ring, Spidergon} {
		s := NewScenario(kind, 16, UniformTraffic, 0.01)
		s.Warmup, s.Measure = 300, 4000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		energy[kind] = r.EnergyPerPacket
	}
	if energy[Ring] <= energy[Spidergon] {
		t.Fatalf("ring energy %v not above spidergon %v", energy[Ring], energy[Spidergon])
	}
}

func TestSwitchingModesInScenario(t *testing.T) {
	// VCT matches wormhole at light load; SAF is slower. All deliver.
	lat := map[noc.Switching]float64{}
	for _, mode := range []noc.Switching{noc.Wormhole, noc.VirtualCutThrough, noc.StoreAndForward} {
		s := NewScenario(Spidergon, 16, UniformTraffic, 0.004)
		s.Config.Switching = mode
		s.Config.OutBufCap = 6
		s.Warmup, s.Measure = 300, 6000
		r, err := Run(s)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.EjectedPackets == 0 {
			t.Fatalf("%v: nothing delivered", mode)
		}
		lat[mode] = r.MeanLatency
	}
	if math.Abs(lat[noc.Wormhole]-lat[noc.VirtualCutThrough]) > 0.15*lat[noc.Wormhole] {
		t.Fatalf("light-load VCT %v far from wormhole %v", lat[noc.VirtualCutThrough], lat[noc.Wormhole])
	}
	if lat[noc.StoreAndForward] < 1.5*lat[noc.Wormhole] {
		t.Fatalf("SAF latency %v not clearly above wormhole %v", lat[noc.StoreAndForward], lat[noc.Wormhole])
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	tab := &Table{Title: "plot-demo", XName: "load"}
	a := &stats.Series{Name: "alpha"}
	b := &stats.Series{Name: "beta"}
	for i := 0; i < 10; i++ {
		a.Append(float64(i), float64(i*i))
		b.Append(float64(i), float64(10-i))
	}
	tab.Add(a)
	tab.Add(b)
	out := tab.Plot(40, 10)
	for _, want := range []string{"plot-demo", "alpha", "beta", "x: load", "o", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	tab := &Table{Title: "empty", XName: "x"}
	if !strings.Contains(tab.Plot(40, 10), "no data") {
		t.Fatal("empty plot should say so")
	}
	// Single point: bounds degenerate but must not panic.
	s := &stats.Series{Name: "pt"}
	s.Append(1, 1)
	tab.Add(s)
	if out := tab.Plot(5, 3); out == "" { // tiny sizes clamp up
		t.Fatal("degenerate plot empty")
	}
}

func TestPlotClampsTinySizes(t *testing.T) {
	tab := &Table{Title: "t", XName: "x"}
	s := &stats.Series{Name: "s"}
	s.Append(0, 0)
	s.Append(1, 1)
	tab.Add(s)
	out := tab.Plot(1, 1)
	if !strings.Contains(out, "t") {
		t.Fatal("clamped plot broken")
	}
}

func TestPermutationTrafficKinds(t *testing.T) {
	for _, perm := range []string{"bit-complement", "bit-reverse", "neighbor"} {
		s := NewScenario(Spidergon, 16, PermutationTraffic, 0.01)
		s.Permutation = perm
		s.Warmup, s.Measure = 200, 3000
		r, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", perm, err)
		}
		if r.EjectedPackets == 0 {
			t.Fatalf("%s: nothing delivered", perm)
		}
	}
	// Transpose runs on a square mesh and every delivered packet took
	// the |x-y| exchange path.
	s := NewScenario(Mesh, 16, PermutationTraffic, 0.01)
	s.Permutation = "transpose"
	s.Warmup, s.Measure = 200, 3000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EjectedPackets == 0 {
		t.Fatal("transpose delivered nothing")
	}
	// Transpose on a non-square mesh is rejected.
	s = NewScenario(Mesh, 8, PermutationTraffic, 0.01)
	s.Permutation = "transpose"
	if err := s.Validate(); err == nil {
		t.Fatal("transpose on 2x4 accepted")
	}
	// Unknown permutation rejected.
	s = NewScenario(Ring, 8, PermutationTraffic, 0.01)
	s.Permutation = "mystery"
	if err := s.Validate(); err == nil {
		t.Fatal("unknown permutation accepted")
	}
}

func TestBitComplementStressesBisection(t *testing.T) {
	// Bit-complement pairs opposite halves, forcing every packet across
	// the bisection: the ring suffers far more than the spidergon,
	// whose across links serve exactly this pattern.
	tput := map[TopologyKind]float64{}
	for _, kind := range []TopologyKind{Ring, Spidergon} {
		s := NewScenario(kind, 16, PermutationTraffic, 0.05)
		s.Permutation = "bit-complement"
		s.Warmup, s.Measure = 500, 5000
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		tput[kind] = r.Throughput
	}
	if tput[Spidergon] <= tput[Ring] {
		t.Fatalf("spidergon %v not above ring %v on bit-complement", tput[Spidergon], tput[Ring])
	}
}
