package core

import (
	"reflect"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// A workspace run must be bit-identical to a fresh core.Run, across a
// mixed sequence that exercises every reuse transition: same geometry
// (network Reset), rate and seed changes (Reset + new generator), a
// topology change (rebuild), and a return to a previous geometry
// (rebuild again — the workspace caches one network, not a set).
func TestWorkspaceMatchesFreshRuns(t *testing.T) {
	mk := func(topo TopologyKind, nodes int, lambda float64, seed uint64) Scenario {
		s := NewScenario(topo, nodes, UniformTraffic, lambda)
		s.Warmup, s.Measure = 200, 1500
		s.Seed = seed
		return s
	}
	seq := []Scenario{
		mk(Spidergon, 16, 0.02, 1),
		mk(Spidergon, 16, 0.02, 2), // replication: seed change only
		mk(Spidergon, 16, 0.08, 2), // rate change, same network
		mk(Mesh, 16, 0.03, 1),      // geometry change: rebuild
		mk(Spidergon, 16, 0.02, 1), // back again: rebuild, same result
	}
	// A hot-spot pattern over the same geometry reuses the network too.
	hs := mk(Spidergon, 16, 0.03, 5)
	hs.Traffic = HotSpotTraffic
	hs.HotSpots = []int{5}
	seq = append(seq, hs, mk(Spidergon, 16, 0.02, 1))

	var ws Workspace
	for i, s := range seq {
		got, err := ws.Run(s)
		if err != nil {
			t.Fatalf("step %d %s [workspace]: %v", i, s.Label(), err)
		}
		want, err := Run(s)
		if err != nil {
			t.Fatalf("step %d %s [fresh]: %v", i, s.Label(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d %s: workspace diverged from fresh run:\nworkspace: %+v\nfresh:     %+v",
				i, s.Label(), got, want)
		}
	}
}

// Workspace reuse must also hold under the sweep engine, with pooling
// off, and for Bernoulli arrivals — the non-default paths.
func TestWorkspaceMatchesFreshRunsVariants(t *testing.T) {
	base := NewScenario(Ring, 12, UniformTraffic, 0.04)
	base.Warmup, base.Measure = 150, 1200

	variants := make([]Scenario, 0, 4)
	s := base
	s.Engine = noc.EngineSweep
	variants = append(variants, s)
	s = base
	s.NoPool = true
	variants = append(variants, s)
	s = base
	s.Process = 1 // Bernoulli
	variants = append(variants, s)
	s = base
	s.Config.Switching = noc.VirtualCutThrough
	s.Config.OutBufCap = s.Config.PacketLen
	variants = append(variants, s)

	var ws Workspace
	for round := 0; round < 2; round++ { // second round hits the reuse path
		for i, v := range variants {
			got, err := ws.Run(v)
			if err != nil {
				t.Fatalf("round %d variant %d: %v", round, i, err)
			}
			want, err := Run(v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d variant %d (%s): workspace diverged from fresh run", round, i, v.Label())
			}
		}
	}
}

// The whole point of the workspace: a repeated run on a warmed
// workspace must not rebuild the network. Observable via the packet
// pool — after the first run the pool is warm, and a Reset-based rerun
// leases from it instead of allocating (verified indirectly: results
// equal and the workspace survives many rounds without error), plus
// directly via the networkKey stability below.
func TestWorkspaceReusesNetworkAcrossReplications(t *testing.T) {
	s := NewScenario(Spidergon, 16, UniformTraffic, 0.05)
	s.Warmup, s.Measure = 100, 800
	var keys []string
	for seed := uint64(1); seed <= 4; seed++ {
		v := s
		v.Seed = seed
		keys = append(keys, v.networkKey())
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("replications map to different network keys: %q vs %q", keys[0], k)
		}
	}
	if a, b := s.networkKey(), NewScenario(Mesh, 16, UniformTraffic, 0.05).networkKey(); a == b {
		t.Fatal("distinct geometries share a network key")
	}
}

// Fuzz-style reuse sequences: random walks over rate, seed, engine,
// shard count and pooling — replayed on one workspace — must stay bit
// for bit equal to fresh runs. The pooling flips are the packet
// arena's hardest reuse transition (Reset must truncate the record
// population when pooling is off and retain it when on), and the
// engine/shard flips exercise worklist rebuilds over a recycled arena.
func TestWorkspaceReuseRandomizedSequences(t *testing.T) {
	master := sim.NewRNG(1234)
	for trial := 0; trial < 4; trial++ {
		rng := master.Split()
		var ws Workspace
		for step := 0; step < 6; step++ {
			s := NewScenario(Spidergon, 16, UniformTraffic, 0.01+0.08*rng.Float64())
			s.Warmup, s.Measure = 100, uint64(400+rng.Intn(800))
			s.Seed = rng.Uint64()
			s.NoPool = rng.Bernoulli(0.4)
			switch rng.Intn(4) {
			case 0:
				s.Engine = noc.EngineSweep
			case 1:
				s.StepParallel = 1 + rng.Intn(4)
			}
			got, err := ws.Run(s)
			if err != nil {
				t.Fatalf("trial %d step %d %s [workspace]: %v", trial, step, s.Label(), err)
			}
			want, err := Run(s)
			if err != nil {
				t.Fatalf("trial %d step %d %s [fresh]: %v", trial, step, s.Label(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d step %d %s: workspace diverged from fresh run", trial, step, s.Label())
			}
		}
	}
}
