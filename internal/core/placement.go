package core

import (
	"fmt"

	"gonoc/internal/analysis"
)

// This file encodes the hot-spot target placements of Section 3.1.2 of
// the paper (translated from its 1-based to this module's 0-based node
// numbering).
//
// For the 2D mesh: "scenario A is with 2 targets on the opposite
// corners (nodes 1 and N), scenario B is with one target in the corner
// (node 1) and the second one in the middle (node 5 with 2*4=8 mesh and
// node 14 with 4*6=24 mesh), and scenario [C] is with both targets in
// the middle (nodes 5 and 6 with 2*4=8 mesh, and nodes 14 and 15 with
// 4*6=24 mesh)".
//
// For Ring and Spidergon: "scenario A is with two targets in opposition
// (North-South position) on the ring, and scenario B is with two
// targets in North and West positions".

// Placement selects a double-hot-spot target arrangement.
type Placement rune

// The paper's placements. PlacementC applies to meshes only.
const (
	PlacementA Placement = 'A'
	PlacementB Placement = 'B'
	PlacementC Placement = 'C'
)

// MeshCenter returns the 0-based id of the paper's "middle" node of a
// cols×rows mesh: node 5 on the 2×4 mesh and node 14 on the 4×6 mesh
// (1-based), i.e. (cols/2-1, rows/2).
func MeshCenter(cols, rows int) int {
	x := cols/2 - 1
	if x < 0 {
		x = 0
	}
	return rows/2*cols + x
}

// DoubleHotspots returns the two target nodes for the given topology
// kind, node count and placement. For meshes, cols/rows may be zero to
// use the balanced factorisation.
func DoubleHotspots(kind TopologyKind, n int, p Placement, cols, rows int) ([]int, error) {
	switch kind {
	case Ring, Spidergon:
		switch p {
		case PlacementA:
			// North-South opposition.
			return []int{0, n / 2}, nil
		case PlacementB:
			// North and West: three quarters of the way clockwise.
			return []int{0, 3 * n / 4}, nil
		default:
			return nil, fmt.Errorf("core: placement %c undefined for %s", p, kind)
		}
	case Mesh, FactorMesh, IrregularMesh, Torus:
		if cols <= 0 || rows <= 0 {
			cols, rows = analysis.IdealMeshDims(n)
		}
		center := MeshCenter(cols, rows)
		switch p {
		case PlacementA:
			return []int{0, n - 1}, nil
		case PlacementB:
			return []int{0, center}, nil
		case PlacementC:
			if center+1 >= n {
				return nil, fmt.Errorf("core: mesh too small for placement C")
			}
			return []int{center, center + 1}, nil
		default:
			return nil, fmt.Errorf("core: placement %c undefined for %s", p, kind)
		}
	default:
		return nil, fmt.Errorf("core: unknown topology kind %q", kind)
	}
}

// SingleHotspot returns the paper's single-target choice: node 0 for the
// vertex-symmetric ring and Spidergon ("in symmetric Ring and Spidergon
// this would not have difference") and, for meshes, either the corner
// (center=false) or the middle node (center=true) — the paper examines
// both since mesh results depend on placement.
func SingleHotspot(kind TopologyKind, n int, center bool, cols, rows int) int {
	switch kind {
	case Mesh, FactorMesh, IrregularMesh, Torus:
		if !center {
			return 0
		}
		if cols <= 0 || rows <= 0 {
			cols, rows = analysis.IdealMeshDims(n)
		}
		return MeshCenter(cols, rows)
	default:
		return 0
	}
}
