package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gonoc/internal/stats"
)

// Table is a figure regenerated as data: a shared abscissa (node count
// or injection rate) and one series per topology/configuration, exactly
// the curves of the paper's plots.
type Table struct {
	// Title names the figure, e.g. "Figure 6: NoC throughput, one hot-spot".
	Title string
	// XName labels the abscissa, e.g. "N" or "lambda (flits/cycle)".
	XName string
	// Series holds one named curve per column.
	Series []*stats.Series
}

// Add appends a series.
func (t *Table) Add(s *stats.Series) { t.Series = append(t.Series, s) }

// xUnion returns the sorted union of all series' x values.
func (t *Table) xUnion() []float64 {
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			seen[x] = true
		}
	}
	xs := make([]float64, 0, len(seen))
	for x := range seen {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// fmtCell renders a numeric cell; NaN and missing render as "-".
func fmtCell(v float64, ok bool) string {
	if !ok || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// Text renders the table as aligned columns for terminal output. A
// series carrying confidence intervals (built from replicated runs)
// gets a second "±ci95" column directly after its value column.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	headers := []string{t.XName}
	for _, s := range t.Series {
		headers = append(headers, s.Name)
		if s.HasCI() {
			headers = append(headers, "±ci95")
		}
	}
	xs := t.xUnion()
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, headers)
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.4g", x)}
		for _, s := range t.Series {
			y, ok := s.YAt(x)
			row = append(row, fmtCell(y, ok))
			if s.HasCI() {
				ci, ok := s.CIAt(x)
				row = append(row, fmtCell(ci, ok))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row. A
// series carrying confidence intervals gets a "<name>_ci95" column
// directly after its value column.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XName))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
		if s.HasCI() {
			b.WriteByte(',')
			b.WriteString(csvEscape(s.Name + "_ci95"))
		}
	}
	b.WriteByte('\n')
	for _, x := range t.xUnion() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok && !math.IsNaN(y) {
				fmt.Fprintf(&b, "%g", y)
			}
			if s.HasCI() {
				b.WriteByte(',')
				if ci, ok := s.CIAt(x); ok && !math.IsNaN(ci) {
					fmt.Fprintf(&b, "%g", ci)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func names(series []*stats.Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
