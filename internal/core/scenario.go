// Package core packages the paper's study as a library: simulation
// scenarios (topology × traffic × injection rate), a deterministic
// runner with warm-up handling, parallel parameter sweeps, the paper's
// hot-spot placements, and generators that rebuild every figure of the
// evaluation section as a table.
package core

import (
	"fmt"

	"gonoc/internal/analysis"
	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/telemetry"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// TopologyKind selects the interconnect family of a scenario.
type TopologyKind string

// Topology families available to scenarios. Ring, Spidergon and Mesh
// are the paper's subjects; IrregularMesh is its "real mesh";
// FactorMesh and Torus are extensions.
const (
	Ring          TopologyKind = "ring"
	Spidergon     TopologyKind = "spidergon"
	Mesh          TopologyKind = "mesh"
	IrregularMesh TopologyKind = "imesh"
	FactorMesh    TopologyKind = "fmesh"
	Torus         TopologyKind = "torus"
)

// TrafficKind selects the destination pattern of a scenario.
type TrafficKind string

// Traffic patterns: the paper's homogeneous uniform scenario and the
// hot-spot scenarios (HotSpots lists the targets), plus fixed
// permutation workloads (Permutation names the pattern).
const (
	UniformTraffic     TrafficKind = "uniform"
	HotSpotTraffic     TrafficKind = "hotspot"
	PermutationTraffic TrafficKind = "permutation"
)

// Scenario is one fully specified simulation: build it with the
// defaults from NewScenario and adjust fields before calling Run.
type Scenario struct {
	// Topo and Nodes select the interconnect. For Mesh, Cols/Rows may
	// pin exact dimensions; otherwise the most balanced factorisation
	// of Nodes is used.
	Topo  TopologyKind
	Nodes int
	Cols  int
	Rows  int

	// Traffic selects the destination pattern; HotSpots lists target
	// nodes for HotSpotTraffic; Permutation names the pattern for
	// PermutationTraffic: "bit-complement", "bit-reverse",
	// "neighbor" (ring successor) or "transpose" (square meshes).
	Traffic     TrafficKind
	HotSpots    []int
	Permutation string

	// Lambda is the per-source packet injection rate (packets/cycle);
	// multiply by Config.PacketLen for the paper's flits/cycle axis.
	Lambda float64
	// Routing optionally overrides the topology's default algorithm:
	// "" (default), "yx" or "west-first" (full meshes), or "table"
	// (mesh family, including irregular meshes).
	Routing string
	// Process selects Poisson (paper) or Bernoulli arrivals.
	Process traffic.Process

	// Warmup cycles are simulated but excluded from measurement;
	// Measure cycles follow.
	Warmup  uint64
	Measure uint64

	// Seed makes the run reproducible.
	Seed uint64

	// Config is the node geometry (buffers, packet length, port rates).
	Config noc.Config

	// Engine selects the Step implementation: the default
	// activity-driven engine or the reference sweep engine. The two are
	// result-equivalent bit for bit (proven by the cross-engine golden
	// tests), so Engine is excluded from the cache key and from the
	// serialized scenario — it changes how fast a result is computed,
	// never what it is.
	Engine noc.Engine `json:"-"`

	// NoPool disables the network's packet/flit freelist for this run.
	// Like Engine it is excluded from the cache key and serialization:
	// pooled and unpooled runs are result-equivalent bit for bit (proven
	// by the golden pool-on/pool-off tests), the toggle only changes
	// allocator traffic. It exists for those golden tests and as a
	// debugging fallback.
	NoPool bool `json:"-"`

	// StepParallel, when positive, runs Network.Step domain-decomposed
	// across that many router shards (noc.EngineParallel), overriding
	// Engine; when negative, the shard count is chosen automatically
	// (min(GOMAXPROCS, routers/4), collapsing to the serial engine when
	// that is 1). Zero keeps the configured serial engine — campaigns
	// default to spending the machine on scenario-level parallelism.
	// Like Engine it is excluded from the cache key and the serialized
	// scenario: the parallel engine is bit-identical to the serial ones
	// at every shard count (proven by the golden parallel matrix), so
	// the knob changes wall-clock time, never results. Use it for lone
	// long-running points — near and past saturation — where
	// campaign-level parallelism has nothing left to parallelize.
	StepParallel int `json:"-"`

	// Telemetry, when non-nil with a writer, streams a per-cycle
	// capture of the network's probe counters (occupancy, per-node
	// injection/ejection, link traversals) to Telemetry.W in the
	// chunked delta format of internal/telemetry. Like Engine it is
	// excluded from the cache key and serialization: capture observes
	// the run without perturbing it — results and engine work counters
	// are bit-identical with telemetry on or off, and the capture
	// itself is bit-identical across engines and shard counts (proven
	// by the telemetry golden tests). Ticked cycles emit one sample
	// each; cycles elided by idle fast-forward emit none, which the
	// cycle series records as a delta gap.
	Telemetry *telemetry.Options `json:"-"`
}

// NewScenario returns a scenario with the paper's defaults: Poisson
// arrivals, 6-flit packets, 3-flit output buffers, 1-flit input
// buffers, 1000 warm-up and 10000 measured cycles.
func NewScenario(topo TopologyKind, nodes int, tk TrafficKind, lambda float64) Scenario {
	return Scenario{
		Topo:    topo,
		Nodes:   nodes,
		Traffic: tk,
		Lambda:  lambda,
		Process: traffic.Poisson,
		Warmup:  1000,
		Measure: 10000,
		Seed:    1,
		Config:  noc.DefaultConfig(),
	}
}

// Build constructs the topology and routing algorithm of the scenario.
func (s Scenario) Build() (topology.Topology, routing.Algorithm, error) {
	if s.Routing != "" && s.Topo != Mesh && s.Topo != IrregularMesh && s.Topo != FactorMesh {
		return nil, nil, fmt.Errorf("core: routing override %q only applies to the mesh family", s.Routing)
	}
	switch s.Topo {
	case Ring:
		r, err := topology.NewRing(s.Nodes)
		if err != nil {
			return nil, nil, err
		}
		return r, routing.NewRingRouting(r), nil
	case Spidergon:
		sg, err := topology.NewSpidergon(s.Nodes)
		if err != nil {
			return nil, nil, err
		}
		return sg, routing.NewSpidergonRouting(sg), nil
	case Mesh:
		cols, rows := s.Cols, s.Rows
		if cols <= 0 || rows <= 0 {
			cols, rows = analysis.IdealMeshDims(s.Nodes)
		}
		if cols*rows != s.Nodes {
			return nil, nil, fmt.Errorf("core: mesh %dx%d does not cover %d nodes", cols, rows, s.Nodes)
		}
		m, err := topology.NewMesh(cols, rows)
		if err != nil {
			return nil, nil, err
		}
		return meshWithRouting(m, s.Routing)
	case IrregularMesh:
		m, err := topology.NewIrregularMesh(s.Nodes)
		if err != nil {
			return nil, nil, err
		}
		return meshWithRouting(m, s.Routing)
	case FactorMesh:
		m, err := topology.NewFactorMesh(s.Nodes)
		if err != nil {
			return nil, nil, err
		}
		return meshWithRouting(m, s.Routing)
	case Torus:
		cols, rows := s.Cols, s.Rows
		if cols <= 0 || rows <= 0 {
			cols, rows = analysis.IdealMeshDims(s.Nodes)
		}
		if cols*rows != s.Nodes {
			return nil, nil, fmt.Errorf("core: torus %dx%d does not cover %d nodes", cols, rows, s.Nodes)
		}
		tr, err := topology.NewTorus(cols, rows)
		if err != nil {
			return nil, nil, err
		}
		return tr, routing.NewTorusDOR(tr), nil
	default:
		return nil, nil, fmt.Errorf("core: unknown topology kind %q", s.Topo)
	}
}

// meshWithRouting resolves the Routing override on the mesh family.
func meshWithRouting(m *topology.Mesh, override string) (topology.Topology, routing.Algorithm, error) {
	switch override {
	case "", "xy":
		return m, routing.NewMeshXY(m), nil
	case "yx":
		a, err := routing.NewMeshYX(m)
		if err != nil {
			return nil, nil, err
		}
		return m, a, nil
	case "west-first":
		a, err := routing.NewMeshWestFirst(m)
		if err != nil {
			return nil, nil, err
		}
		return m, a, nil
	case "table":
		a, err := routing.NewTableRouting(m, 1)
		if err != nil {
			return nil, nil, err
		}
		return m, a, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown mesh routing override %q", override)
	}
}

// Pattern constructs the scenario's destination pattern.
func (s Scenario) Pattern() (traffic.Pattern, error) {
	switch s.Traffic {
	case UniformTraffic:
		return traffic.Uniform{N: s.Nodes}, nil
	case HotSpotTraffic:
		if len(s.HotSpots) == 0 {
			return nil, fmt.Errorf("core: hotspot traffic without targets")
		}
		for _, h := range s.HotSpots {
			if h < 0 || h >= s.Nodes {
				return nil, fmt.Errorf("core: hotspot target %d out of range", h)
			}
		}
		return traffic.HotSpot{Targets: s.HotSpots, N: s.Nodes}, nil
	case PermutationTraffic:
		switch s.Permutation {
		case "bit-complement":
			return traffic.BitComplement(s.Nodes), nil
		case "bit-reverse":
			return traffic.BitReverse(s.Nodes), nil
		case "neighbor":
			return traffic.NeighborRing(s.Nodes, 1), nil
		case "transpose":
			cols, rows := s.Cols, s.Rows
			if cols <= 0 || rows <= 0 {
				cols, rows = analysis.IdealMeshDims(s.Nodes)
			}
			m, err := topology.NewMesh(cols, rows)
			if err != nil {
				return nil, err
			}
			return traffic.Transpose(m)
		default:
			return nil, fmt.Errorf("core: unknown permutation %q", s.Permutation)
		}
	default:
		return nil, fmt.Errorf("core: unknown traffic kind %q", s.Traffic)
	}
}

// Validate returns the first configuration error of the scenario.
func (s Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("core: %d nodes", s.Nodes)
	}
	if s.Lambda < 0 {
		return fmt.Errorf("core: negative lambda %v", s.Lambda)
	}
	if s.Measure == 0 {
		return fmt.Errorf("core: zero measurement window")
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if _, err := s.Pattern(); err != nil {
		return err
	}
	_, _, err := s.Build()
	return err
}

// Label renders a short scenario identifier for tables and logs.
func (s Scenario) Label() string {
	return fmt.Sprintf("%s-%d/%s λ=%.4g", s.Topo, s.Nodes, s.Traffic, s.Lambda)
}
