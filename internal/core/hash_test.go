package core

import "testing"

// Cache keys are deterministic, sensitive to every run-relevant field,
// and normalize spec choices that cannot change the simulation.
func TestCacheKeyStableAndSensitive(t *testing.T) {
	base := NewScenario(Mesh, 16, UniformTraffic, 0.01)
	if base.CacheKey() != base.CacheKey() {
		t.Fatal("key not deterministic")
	}
	mutations := map[string]func(*Scenario){
		"seed":    func(s *Scenario) { s.Seed++ },
		"lambda":  func(s *Scenario) { s.Lambda *= 2 },
		"nodes":   func(s *Scenario) { s.Nodes = 24 },
		"topo":    func(s *Scenario) { s.Topo = Ring },
		"traffic": func(s *Scenario) { s.Traffic = HotSpotTraffic; s.HotSpots = []int{0} },
		"warmup":  func(s *Scenario) { s.Warmup += 100 },
		"measure": func(s *Scenario) { s.Measure += 100 },
		"routing": func(s *Scenario) { s.Routing = "yx" },
		"packet":  func(s *Scenario) { s.Config.PacketLen++ },
		"outbuf":  func(s *Scenario) { s.Config.OutBufCap++ },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if s.CacheKey() == base.CacheKey() {
			t.Errorf("%s change did not change the key", name)
		}
	}
	// Hot-spot target order steers RNG draws, so it must be hashed
	// literally, not canonicalised away.
	a, b := base, base
	a.Traffic, b.Traffic = HotSpotTraffic, HotSpotTraffic
	a.HotSpots, b.HotSpots = []int{1, 5}, []int{5, 1}
	if a.CacheKey() == b.CacheKey() {
		t.Error("hot-spot order collapsed")
	}
}

// Unset mesh dimensions normalize to the ideal factorisation Build
// picks, so the implicit and explicit spellings share one cache entry.
func TestCacheKeyNormalizesMeshDims(t *testing.T) {
	implicit := NewScenario(Mesh, 24, UniformTraffic, 0.01)
	explicit := implicit
	explicit.Cols, explicit.Rows = 4, 6 // IdealMeshDims(24)
	if implicit.CacheKey() != explicit.CacheKey() {
		t.Fatal("ideal mesh dims not normalized")
	}
	other := implicit
	other.Cols, other.Rows = 2, 12
	if other.CacheKey() == implicit.CacheKey() {
		t.Fatal("distinct geometry shares a key")
	}
}
