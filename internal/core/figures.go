package core

import (
	"context"
	"fmt"

	"gonoc/internal/analysis"
	"gonoc/internal/noc"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// FigureOpts parameterises the figure regenerators. Zero-value fields
// fall back to the defaults of DefaultFigureOpts, which match the
// paper's ranges (8–32 nodes, loads from well below to well past
// saturation).
type FigureOpts struct {
	// Sizes lists the node counts N simulated for Figures 5-11.
	Sizes []int
	// LoadFractions, for the hot-spot figures, are multiples of the
	// analytic saturation rate λ_sat = k·sink/(sources·flits) at which
	// each curve is sampled.
	LoadFractions []float64
	// UniformFlitRates, for the homogeneous figures, are per-source
	// injection rates in flits/cycle (the paper's x axis) sampled
	// identically for every topology.
	UniformFlitRates []float64
	// Warmup and Measure are the per-run cycle counts.
	Warmup, Measure uint64
	// Seed derives all run seeds.
	Seed uint64
	// Parallel bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Parallel int
}

// sweep runs the figure's scenario batch on the shared worker pool with
// the options' parallelism.
func (o FigureOpts) sweep(scenarios []Scenario) ([]Result, error) {
	return SweepScenariosParallel(context.Background(), scenarios, o.Parallel)
}

// DefaultFigureOpts returns the ranges used by cmd/nocfigs: the paper's
// node counts and a load grid spanning 0.2×–1.6× saturation.
func DefaultFigureOpts() FigureOpts {
	return FigureOpts{
		Sizes:            []int{8, 16, 24, 32},
		LoadFractions:    []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6},
		UniformFlitRates: []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5},
		Warmup:           2000,
		Measure:          20000,
		Seed:             1,
	}
}

func (o FigureOpts) withDefaults() FigureOpts {
	d := DefaultFigureOpts()
	if len(o.Sizes) == 0 {
		o.Sizes = d.Sizes
	}
	if len(o.LoadFractions) == 0 {
		o.LoadFractions = d.LoadFractions
	}
	if len(o.UniformFlitRates) == 0 {
		o.UniformFlitRates = d.UniformFlitRates
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Fig2Diameter regenerates Figure 2: network diameter ND versus node
// count for Ring, Spidergon, the ideal √N×√N mesh, and the two "real
// mesh" constructions (balanced factorisation and irregular mesh).
func Fig2Diameter(minN, maxN int) *Table {
	t := &Table{Title: "Figure 2: network diameter ND vs number of nodes N", XName: "N"}
	ring := &stats.Series{Name: "ring"}
	sg := &stats.Series{Name: "spidergon"}
	ideal := &stats.Series{Name: "ideal-mesh"}
	fmesh := &stats.Series{Name: "real-mesh-factor"}
	imesh := &stats.Series{Name: "real-mesh-irregular"}
	for n := minN; n <= maxN; n++ {
		x := float64(n)
		if n >= 3 {
			ring.Append(x, float64(analysis.RingDiameter(n)))
		}
		if n >= 4 && n%2 == 0 {
			sg.Append(x, float64(analysis.SpidergonDiameter(n)))
		}
		ideal.Append(x, analysis.IdealSquareDiameter(n))
		if n >= 2 {
			fmesh.Append(x, float64(topology.Diameter(topology.MustFactorMesh(n))))
			imesh.Append(x, float64(topology.Diameter(topology.MustIrregularMesh(n))))
		}
	}
	t.Add(ring)
	t.Add(ideal)
	t.Add(fmesh)
	t.Add(imesh)
	t.Add(sg)
	return t
}

// Fig3AvgDistance regenerates Figure 3: average network distance E[D]
// versus node count for the same five topology families. Exact
// (ordered-pair) averages are used throughout; the paper's
// N-denominator convention differs by the factor (N-1)/N.
func Fig3AvgDistance(minN, maxN int) *Table {
	t := &Table{Title: "Figure 3: average network distance E[D] vs number of nodes N", XName: "N"}
	ring := &stats.Series{Name: "ring"}
	sg := &stats.Series{Name: "spidergon"}
	ideal := &stats.Series{Name: "ideal-mesh"}
	fmesh := &stats.Series{Name: "real-mesh-factor"}
	imesh := &stats.Series{Name: "real-mesh-irregular"}
	for n := minN; n <= maxN; n++ {
		x := float64(n)
		if n >= 3 {
			ring.Append(x, analysis.RingAvgDistanceExact(n))
		}
		if n >= 8 && n%2 == 0 {
			sg.Append(x, analysis.SpidergonAvgDistanceExact(n))
		}
		ideal.Append(x, analysis.IdealSquareAvgDistance(n))
		if n >= 2 {
			fmesh.Append(x, topology.AverageDistance(topology.MustFactorMesh(n)))
			imesh.Append(x, topology.AverageDistance(topology.MustIrregularMesh(n)))
		}
	}
	t.Add(ring)
	t.Add(ideal)
	t.Add(fmesh)
	t.Add(imesh)
	t.Add(sg)
	return t
}

// topoSet is the trio the paper simulates.
var topoSet = []TopologyKind{Ring, Spidergon, Mesh}

// evenSize rounds n up to even (spidergon requires it) so one size list
// serves all topologies.
func evenSize(n int) int {
	if n%2 == 1 {
		return n + 1
	}
	return n
}

// Fig5Validation regenerates Figure 5: the analytically estimated
// average distance against the simulation-measured mean hop count,
// under light uniform traffic, for each topology and size.
func Fig5Validation(o FigureOpts) (*Table, error) {
	o = o.withDefaults()
	t := &Table{Title: "Figure 5: analytical and simulation-based average network distances (hops)", XName: "N"}
	series := map[string]*stats.Series{}
	for _, kind := range topoSet {
		series["analytic-"+string(kind)] = &stats.Series{Name: "analytic-" + string(kind)}
		series["sim-"+string(kind)] = &stats.Series{Name: "sim-" + string(kind)}
	}
	var scenarios []Scenario
	var meta []struct {
		kind TopologyKind
		n    int
	}
	for _, rawN := range o.Sizes {
		n := evenSize(rawN)
		for _, kind := range topoSet {
			s := NewScenario(kind, n, UniformTraffic, 0.01)
			s.Warmup, s.Measure, s.Seed = o.Warmup, o.Measure, o.Seed
			scenarios = append(scenarios, s)
			meta = append(meta, struct {
				kind TopologyKind
				n    int
			}{kind, n})
		}
	}
	results, err := o.sweep(scenarios)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		kind, n := meta[i].kind, meta[i].n
		series["sim-"+string(kind)].Append(float64(n), r.MeanHops)
		var an float64
		switch kind {
		case Ring:
			an = analysis.RingAvgDistanceExact(n)
		case Spidergon:
			an = analysis.SpidergonAvgDistanceExact(n)
		case Mesh:
			cols, rows := analysis.IdealMeshDims(n)
			an = analysis.MeshAvgDistanceExact(cols, rows)
		}
		series["analytic-"+string(kind)].Append(float64(n), an)
	}
	for _, kind := range topoSet {
		t.Add(series["analytic-"+string(kind)])
	}
	for _, kind := range topoSet {
		t.Add(series["sim-"+string(kind)])
	}
	return t, nil
}

// hotspotScenarios builds the load sweep for one topology/size/target
// set; x values are per-source offered flit rates.
func hotspotScenarios(kind TopologyKind, n int, targets []int, o FigureOpts) ([]Scenario, []float64) {
	var scenarios []Scenario
	var xs []float64
	sources := n - len(targets)
	packetLen := noc.DefaultConfig().PacketLen
	lamSat := analysis.HotspotSaturationLambda(len(targets), 1, sources, packetLen)
	for _, f := range o.LoadFractions {
		lambda := f * lamSat
		s := NewScenario(kind, n, HotSpotTraffic, lambda)
		s.HotSpots = targets
		s.Warmup, s.Measure, s.Seed = o.Warmup, o.Measure, o.Seed
		scenarios = append(scenarios, s)
		xs = append(xs, lambda*float64(s.Config.PacketLen))
	}
	return scenarios, xs
}

// Fig6HotspotThroughput regenerates Figure 6: aggregate NoC throughput
// versus injection rate with a single hot-spot destination. Mesh curves
// come in corner- and center-target variants, since the paper samples
// "different points on the Mesh topology".
func Fig6HotspotThroughput(o FigureOpts) (*Table, error) {
	return hotspotFigure(o, 1, "Figure 6: NoC throughput, one hot-spot destination node", false)
}

// Fig7HotspotLatency regenerates Figure 7: mean packet latency under a
// single hot-spot destination.
func Fig7HotspotLatency(o FigureOpts) (*Table, error) {
	return hotspotFigure(o, 1, "Figure 7: NoC latency, one hot-spot destination node", true)
}

// Fig8DoubleHotspotThroughput regenerates Figure 8: throughput with two
// hot-spot destinations across the paper's placements.
func Fig8DoubleHotspotThroughput(o FigureOpts) (*Table, error) {
	return hotspotFigure(o, 2, "Figure 8: NoC throughput, two hot-spot destination nodes", false)
}

// Fig9DoubleHotspotLatency regenerates Figure 9: latency with two
// hot-spot destinations.
func Fig9DoubleHotspotLatency(o FigureOpts) (*Table, error) {
	return hotspotFigure(o, 2, "Figure 9: NoC latency, two hot-spot destination nodes", true)
}

// hotspotFigure runs the single- or double-hot-spot grid and returns
// throughput or latency curves.
func hotspotFigure(o FigureOpts, k int, title string, latency bool) (*Table, error) {
	o = o.withDefaults()
	t := &Table{Title: title, XName: "injection rate (flits/cycle/source)"}
	type curve struct {
		name      string
		scenarios []Scenario
		xs        []float64
	}
	var curves []curve
	for _, rawN := range o.Sizes {
		n := evenSize(rawN)
		for _, kind := range topoSet {
			variants := hotspotVariants(kind, n, k)
			for _, v := range variants {
				sc, xs := hotspotScenarios(kind, n, v.targets, o)
				curves = append(curves, curve{
					name:      fmt.Sprintf("%s-%d%s", kind, n, v.suffix),
					scenarios: sc,
					xs:        xs,
				})
			}
		}
	}
	var all []Scenario
	for _, c := range curves {
		all = append(all, c.scenarios...)
	}
	results, err := o.sweep(all)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, c := range curves {
		s := &stats.Series{Name: c.name}
		for i := range c.scenarios {
			r := results[idx]
			idx++
			y := r.Throughput
			if latency {
				y = r.MeanLatency
			}
			s.Append(c.xs[i], y)
		}
		t.Add(s)
	}
	return t, nil
}

// hotspotVariant names one target placement for a topology.
type hotspotVariant struct {
	suffix  string
	targets []int
}

// hotspotVariants enumerates the paper's placements: for k=1, ring and
// spidergon use node 0 (symmetric), the mesh is sampled at corner and
// center; for k=2 the §3.1.2 scenarios A/B (and C on meshes).
func hotspotVariants(kind TopologyKind, n, k int) []hotspotVariant {
	if k == 1 {
		if kind == Mesh || kind == FactorMesh || kind == IrregularMesh || kind == Torus {
			return []hotspotVariant{
				{suffix: "-corner", targets: []int{SingleHotspot(kind, n, false, 0, 0)}},
				{suffix: "-center", targets: []int{SingleHotspot(kind, n, true, 0, 0)}},
			}
		}
		return []hotspotVariant{{suffix: "", targets: []int{0}}}
	}
	placements := []Placement{PlacementA, PlacementB}
	if kind == Mesh || kind == FactorMesh || kind == IrregularMesh || kind == Torus {
		placements = append(placements, PlacementC)
	}
	var out []hotspotVariant
	for _, p := range placements {
		targets, err := DoubleHotspots(kind, n, p, 0, 0)
		if err != nil {
			continue
		}
		out = append(out, hotspotVariant{suffix: fmt.Sprintf("-%c", p), targets: targets})
	}
	return out
}

// Fig10UniformThroughput regenerates Figure 10: aggregate throughput
// under the homogeneous uniform scenario, sampled at identical
// injection rates for every topology.
func Fig10UniformThroughput(o FigureOpts) (*Table, error) {
	return uniformFigure(o, "Figure 10: NoC throughput, homogeneous sources and destinations", false)
}

// Fig11UniformLatency regenerates Figure 11: mean latency under the
// homogeneous uniform scenario.
func Fig11UniformLatency(o FigureOpts) (*Table, error) {
	return uniformFigure(o, "Figure 11: NoC latency, homogeneous sources and destinations", true)
}

func uniformFigure(o FigureOpts, title string, latency bool) (*Table, error) {
	o = o.withDefaults()
	t := &Table{Title: title, XName: "injection rate (flits/cycle/source)"}
	type curve struct {
		name      string
		scenarios []Scenario
		xs        []float64
	}
	var curves []curve
	for _, rawN := range o.Sizes {
		n := evenSize(rawN)
		for _, kind := range topoSet {
			var sc []Scenario
			var xs []float64
			for _, flitRate := range o.UniformFlitRates {
				s := NewScenario(kind, n, UniformTraffic, 0)
				s.Lambda = flitRate / float64(s.Config.PacketLen)
				s.Warmup, s.Measure, s.Seed = o.Warmup, o.Measure, o.Seed
				sc = append(sc, s)
				xs = append(xs, flitRate)
			}
			curves = append(curves, curve{name: fmt.Sprintf("%s-%d", kind, n), scenarios: sc, xs: xs})
		}
	}
	var all []Scenario
	for _, c := range curves {
		all = append(all, c.scenarios...)
	}
	results, err := o.sweep(all)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, c := range curves {
		s := &stats.Series{Name: c.name}
		for i := range c.scenarios {
			r := results[idx]
			idx++
			y := r.Throughput
			if latency {
				y = r.MeanLatency
			}
			s.Append(c.xs[i], y)
		}
		t.Add(s)
	}
	return t, nil
}
