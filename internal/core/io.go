package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON encoding of scenarios and results, so runs can be scripted and
// archived: nocsim -json emits a Result document, and scenario files
// can drive batch experiments.

// MarshalScenario renders s as indented JSON.
func MarshalScenario(s Scenario) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// UnmarshalScenario parses a scenario from JSON, filling unset fields
// with NewScenario defaults (so a file may specify only what differs).
func UnmarshalScenario(data []byte) (Scenario, error) {
	base := NewScenario(Spidergon, 16, UniformTraffic, 0.01)
	if err := json.Unmarshal(data, &base); err != nil {
		return Scenario{}, fmt.Errorf("core: parsing scenario: %w", err)
	}
	if err := base.Validate(); err != nil {
		return Scenario{}, err
	}
	return base, nil
}

// WriteResultJSON writes r as indented JSON to w.
func WriteResultJSON(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScenarios parses a JSON document holding either one scenario
// object or an array of them.
func ReadScenarios(data []byte) ([]Scenario, error) {
	trimmed := firstNonSpace(data)
	if trimmed == '[' {
		var raw []json.RawMessage
		if err := json.Unmarshal(data, &raw); err != nil {
			return nil, fmt.Errorf("core: parsing scenario list: %w", err)
		}
		out := make([]Scenario, 0, len(raw))
		for i, r := range raw {
			s, err := UnmarshalScenario(r)
			if err != nil {
				return nil, fmt.Errorf("core: scenario %d: %w", i, err)
			}
			out = append(out, s)
		}
		return out, nil
	}
	s, err := UnmarshalScenario(data)
	if err != nil {
		return nil, err
	}
	return []Scenario{s}, nil
}

func firstNonSpace(data []byte) byte {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		default:
			return b
		}
	}
	return 0
}

// FindSaturation locates the measured saturation rate of a scenario
// family: the largest per-source λ (packets/cycle) at which accepted
// load still tracks offered load within tol (e.g. 0.05 = 5%). It
// bisects between 0 and hi over `iters` refinements, running one
// simulation per probe, and returns the bracketing rate. The measured
// knee is the empirical counterpart of the analytic bounds in package
// analysis, and locates the latency walls of Figures 7, 9 and 11.
func FindSaturation(base Scenario, hi float64, tol float64, iters int) (float64, error) {
	if hi <= 0 || tol <= 0 || iters < 1 {
		return 0, fmt.Errorf("core: invalid saturation search parameters")
	}
	sustains := func(lambda float64) (bool, error) {
		s := base
		s.Lambda = lambda
		r, err := Run(s)
		if err != nil {
			return false, err
		}
		if r.OfferedFlitRate == 0 {
			return true, nil
		}
		return r.Throughput >= (1-tol)*r.OfferedFlitRate, nil
	}
	lo := 0.0
	// If even hi sustains, report hi (caller chose the cap).
	ok, err := sustains(hi)
	if err != nil {
		return 0, err
	}
	if ok {
		return hi, nil
	}
	cur := hi
	for i := 0; i < iters; i++ {
		mid := (lo + cur) / 2
		ok, err := sustains(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			cur = mid
		}
	}
	return lo, nil
}
