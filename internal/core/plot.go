package core

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the table as an ASCII scatter chart — a terminal stand-in
// for the paper's figures. Each series is drawn with its own glyph;
// overlapping points show the glyph of the last series drawn (the
// legend lists them in draw order). Width and height are the plot-area
// dimensions in characters.
func (t *Table) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	glyphs := []byte("ox+*#@%&$~^=")

	// Data bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range t.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return t.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-cy][cx] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	yLabelW := 10
	for r := 0; r < height; r++ {
		// Label the top, middle and bottom rows with y values.
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.4g", yLabelW, maxY)
		case height / 2:
			label = fmt.Sprintf("%*.4g", yLabelW, (minY+maxY)/2)
		case height - 1:
			label = fmt.Sprintf("%*.4g", yLabelW, minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", yLabelW), width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%s  x: %s\n", strings.Repeat(" ", yLabelW), t.XName)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", yLabelW), glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
