package core

import (
	"bytes"
	"reflect"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/sim"
)

// runBothEngines executes s under the activity-driven engine (with its
// idle fast-forward) and under the reference sweep engine — each with
// the packet pool enabled and disabled — and fails the test unless all
// four Results are bit-identical — struct equality and serialized JSON
// both. Engine and pooling are the two knobs documented as
// result-neutral; this helper is the proof backing that claim for
// every golden and randomized scenario.
func runBothEngines(t *testing.T, s Scenario) Result {
	t.Helper()
	s.Engine = noc.EngineActive
	s.NoPool = false
	got, err := Run(s)
	if err != nil {
		t.Fatalf("%s [active]: %v", s.Label(), err)
	}
	for _, v := range []struct {
		name   string
		engine noc.Engine
		noPool bool
	}{
		{"sweep", noc.EngineSweep, false},
		{"active/no-pool", noc.EngineActive, true},
		{"sweep/no-pool", noc.EngineSweep, true},
	} {
		s.Engine = v.engine
		s.NoPool = v.noPool
		want, err := Run(s)
		if err != nil {
			t.Fatalf("%s [%s]: %v", s.Label(), v.name, err)
		}
		// The engine/pooling choice itself is the only permitted
		// difference.
		want.Scenario.Engine = got.Scenario.Engine
		want.Scenario.NoPool = got.Scenario.NoPool
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %s disagrees with active/pooled:\nactive: %+v\nother:  %+v", s.Label(), v.name, got, want)
		}
		var ga, gs bytes.Buffer
		if err := WriteResultJSON(&ga, got); err != nil {
			t.Fatal(err)
		}
		if err := WriteResultJSON(&gs, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ga.Bytes(), gs.Bytes()) {
			t.Fatalf("%s: serialized results differ for %s", s.Label(), v.name)
		}
	}
	return got
}

// The golden cross-engine matrix: the paper's three topologies at a
// load below the knee, at the knee, and past saturation, under both
// wormhole and virtual cut-through. Run output — every field of
// Result, hence every figure the exp stack derives from it — must be
// unchanged by the activity-driven refactor.
func TestGoldenCrossEngineMatrix(t *testing.T) {
	type load struct {
		name   string
		lambda float64
	}
	loads := []load{
		{"low", 0.01},       // ~0.06 flits/cycle/source: mostly idle
		{"knee", 0.05},      // near the throughput flattening
		{"saturated", 0.15}, // well past saturation
	}
	for _, topo := range []TopologyKind{Ring, Spidergon, Mesh} {
		for _, ld := range loads {
			for _, sw := range []noc.Switching{noc.Wormhole, noc.VirtualCutThrough} {
				s := NewScenario(topo, 16, UniformTraffic, ld.lambda)
				s.Warmup, s.Measure = 200, 1500
				s.Config.Switching = sw
				if sw != noc.Wormhole {
					s.Config.OutBufCap = s.Config.PacketLen
				}
				t.Run(string(topo)+"/"+ld.name+"/"+sw.String(), func(t *testing.T) {
					r := runBothEngines(t, s)
					if ld.name != "low" && r.EjectedPackets == 0 {
						t.Fatal("degenerate run: nothing ejected")
					}
				})
			}
		}
	}
	// Hot-spot traffic exercises the ejection-port bottleneck paths.
	hs := NewScenario(Spidergon, 16, HotSpotTraffic, 0.03)
	hs.HotSpots = []int{5}
	hs.Warmup, hs.Measure = 200, 1500
	t.Run("spidergon/hotspot", func(t *testing.T) { runBothEngines(t, hs) })
}

// Fuzz-style scenario equivalence: random draws over the full scenario
// space (topology family, node count, traffic, switching, interface
// rates, arrival process) must keep the engines bit-identical.
func TestGoldenCrossEngineRandomScenarios(t *testing.T) {
	rng := sim.NewRNG(2026)
	topos := []TopologyKind{Ring, Spidergon, Mesh, Torus}
	for trial := 0; trial < 10; trial++ {
		s := NewScenario(topos[rng.Intn(len(topos))], 8+4*rng.Intn(3), UniformTraffic, 0.005+0.08*rng.Float64())
		if s.Topo == Spidergon && s.Nodes%4 != 0 {
			s.Nodes = 16
		}
		if rng.Bernoulli(0.3) {
			s.Traffic = HotSpotTraffic
			s.HotSpots = []int{rng.Intn(s.Nodes)}
		}
		if rng.Bernoulli(0.3) {
			s.Process = 1 // Bernoulli arrivals: a kernel event every cycle
		}
		if rng.Bernoulli(0.4) {
			s.Config.Switching = noc.VirtualCutThrough
			s.Config.OutBufCap = s.Config.PacketLen
		}
		s.Config.SinkRate = 1 + rng.Intn(2)
		s.Config.InjectRate = 1 + rng.Intn(2)
		s.Warmup = 100 + 50*rng.Uint64()%200
		s.Measure = 500 + rng.Uint64()%1000
		s.Seed = rng.Uint64()
		runBothEngines(t, s)
	}
}

// The fast-forward must actually fire at low load (the whole point of
// the refactor) and never at saturation.
func TestIdleFastForwardEngages(t *testing.T) {
	s := NewScenario(Spidergon, 16, UniformTraffic, 0.0005)
	s.Warmup, s.Measure = 0, 20000
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	_, perf, err := RunPerf(s)
	if err != nil {
		t.Fatal(err)
	}
	if perf.SkippedCycles < 10000 {
		t.Fatalf("expected most of the %d cycles skipped at near-zero load, got %d", s.Measure, perf.SkippedCycles)
	}

	sat := NewScenario(Spidergon, 16, UniformTraffic, 0.15)
	sat.Warmup, sat.Measure = 100, 2000
	_, perf, err = RunPerf(sat)
	if err != nil {
		t.Fatal(err)
	}
	// Only the startup gap before the first arrival may be skipped.
	if perf.SkippedCycles > 10 {
		t.Fatalf("fast-forward fired %d cycles at saturation", perf.SkippedCycles)
	}
}
