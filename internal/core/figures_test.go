package core

import (
	"math"
	"strings"
	"testing"

	"gonoc/internal/stats"
)

// smallOpts keeps per-test figure generation fast.
func smallOpts() FigureOpts {
	return FigureOpts{
		Sizes:            []int{8},
		LoadFractions:    []float64{0.5, 1.5},
		UniformFlitRates: []float64{0.1, 0.4},
		Warmup:           300,
		Measure:          3000,
		Seed:             1,
	}
}

func TestFig7LatencyRisesPastSaturation(t *testing.T) {
	tab, err := Fig7HotspotLatency(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		if s.Len() != 2 {
			t.Fatalf("%s: %d points", s.Name, s.Len())
		}
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: latency did not rise past saturation (%v -> %v)",
				s.Name, s.Y[0], s.Y[1])
		}
		// Past saturation the queueing delay dominates: at least 3x.
		if s.Y[1] < 3*s.Y[0] {
			t.Fatalf("%s: latency knee too soft (%v -> %v)", s.Name, s.Y[0], s.Y[1])
		}
	}
}

func TestFig8DoubleHotspotCurves(t *testing.T) {
	tab, err := Fig8DoubleHotspotThroughput(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ring A,B + spidergon A,B + mesh A,B,C = 7 curves at N=8.
	if len(tab.Series) != 7 {
		t.Fatalf("series = %d: %v", len(tab.Series), names(tab.Series))
	}
	// Saturated value ≈ 2 flits/cycle for every placement, except the
	// ring's asymmetric placement B where the low-bisection fabric
	// (not the sinks) caps slightly lower — a real effect the 8-node
	// ring exhibits at ~1.65.
	for _, s := range tab.Series {
		last := s.Y[len(s.Y)-1]
		lo := 1.6 // short measurement window; full-scale runs reach ~1.95
		if s.Name == "ring-8-B" {
			lo = 1.5
		}
		if last < lo || last > 2.01 {
			t.Fatalf("%s: saturated double-hotspot throughput %v", s.Name, last)
		}
	}
}

func TestFig9DoubleHotspotLatencyKnee(t *testing.T) {
	tab, err := Fig9DoubleHotspotLatency(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: no latency rise", s.Name)
		}
	}
}

func TestFig11RingWorstAtHighLoad(t *testing.T) {
	o := smallOpts()
	o.Sizes = []int{16}
	o.UniformFlitRates = []float64{0.4}
	tab, err := Fig11UniformLatency(o)
	if err != nil {
		t.Fatal(err)
	}
	var ring, sg, mesh float64
	for _, s := range tab.Series {
		switch {
		case strings.HasPrefix(s.Name, "ring"):
			ring = s.Y[0]
		case strings.HasPrefix(s.Name, "spidergon"):
			sg = s.Y[0]
		case strings.HasPrefix(s.Name, "mesh"):
			mesh = s.Y[0]
		}
	}
	if ring <= sg || ring <= mesh {
		t.Fatalf("ring latency %v not worst (sg %v, mesh %v)", ring, sg, mesh)
	}
}

func TestFig2CSVRoundTrip(t *testing.T) {
	tab := Fig2Diameter(8, 16)
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+(16-8+1) {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "N,") {
		t.Fatalf("csv header %q", lines[0])
	}
	// Every data row has the same number of commas as the header.
	want := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != want {
			t.Fatalf("ragged csv row %q", l)
		}
	}
}

func TestFigureOptsDefaults(t *testing.T) {
	var zero FigureOpts
	d := zero.withDefaults()
	if len(d.Sizes) == 0 || len(d.LoadFractions) == 0 || len(d.UniformFlitRates) == 0 {
		t.Fatal("defaults missing")
	}
	if d.Warmup == 0 || d.Measure == 0 || d.Seed == 0 {
		t.Fatal("default cycles/seed missing")
	}
	// Explicit values survive.
	o := FigureOpts{Sizes: []int{10}, Warmup: 7}.withDefaults()
	if o.Sizes[0] != 10 || o.Warmup != 7 {
		t.Fatal("explicit values overwritten")
	}
}

func TestFig5AnalyticColumnsMatchFormulas(t *testing.T) {
	// The analytic columns do not require simulation correctness; they
	// must equal the closed forms exactly.
	o := smallOpts()
	tab, err := Fig5Validation(o)
	if err != nil {
		t.Fatal(err)
	}
	var an *stats.Series
	for _, s := range tab.Series {
		if s.Name == "analytic-spidergon" {
			an = s
		}
	}
	y, ok := an.YAt(8)
	if !ok || math.Abs(y-11.0/7.0) > 1e-9 { // SpidergonPathSum(8)/7
		t.Fatalf("analytic spidergon E[D](8) = %v", y)
	}
}

func TestHotspotFigureUsesSaturationGrid(t *testing.T) {
	// x values of a hotspot curve are fractions of λ_sat in flits/cycle:
	// for N=8, k=1: λ_sat = 1/42 pkts/cycle -> 1/7 flits/cycle.
	o := smallOpts()
	tab, err := Fig6HotspotThroughput(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Series[0]
	want0 := 0.5 / 7.0
	if math.Abs(s.X[0]-want0) > 1e-9 {
		t.Fatalf("first x = %v, want %v", s.X[0], want0)
	}
}
