package core

import (
	"strings"
	"testing"
)

func TestFig2CSVRoundTrip(t *testing.T) {
	tab := Fig2Diameter(8, 16)
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+(16-8+1) {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "N,") {
		t.Fatalf("csv header %q", lines[0])
	}
	// Every data row has the same number of commas as the header.
	want := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != want {
			t.Fatalf("ragged csv row %q", l)
		}
	}
}
