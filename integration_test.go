package gonoc

// Cross-module integration tests: invariants that only hold when the
// kernel, topologies, routing, network model, traffic and experiment
// layers agree with each other.

import (
	"math"
	"testing"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// The same recorded trace replayed on Ring, Spidergon and Mesh of equal
// size delivers exactly the same packet population; topology changes
// latency, never correctness.
func TestTraceReplayAcrossTopologies(t *testing.T) {
	const n = 12
	tr := traffic.Record(traffic.Uniform{N: n}, traffic.Poisson, 0.02, n, 3000, 77)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	type build struct {
		name string
		mk   func() (*noc.Network, error)
	}
	builds := []build{
		{"ring", func() (*noc.Network, error) {
			r := topology.MustRing(n)
			return noc.NewNetwork(r, routing.NewRingRouting(r), noc.DefaultConfig(), stats.NewCollector(0))
		}},
		{"spidergon", func() (*noc.Network, error) {
			s := topology.MustSpidergon(n)
			return noc.NewNetwork(s, routing.NewSpidergonRouting(s), noc.DefaultConfig(), stats.NewCollector(0))
		}},
		{"mesh", func() (*noc.Network, error) {
			m := topology.MustMesh(3, 4)
			return noc.NewNetwork(m, routing.NewMeshXY(m), noc.DefaultConfig(), stats.NewCollector(0))
		}},
	}
	var latencies []float64
	for _, b := range builds {
		net, err := b.mk()
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		tr.Replay(k, net)
		tick := sim.NewTicker(k, 1)
		tick.OnTick(func(uint64) { net.Step() })
		tick.Start()
		k.RunUntil(3000 + 3000)
		if net.CreatedPackets() != uint64(len(tr.Events)) {
			t.Fatalf("%s: created %d, trace %d", b.name, net.CreatedPackets(), len(tr.Events))
		}
		if net.EjectedPackets() != net.CreatedPackets() {
			t.Fatalf("%s: delivered %d of %d", b.name, net.EjectedPackets(), net.CreatedPackets())
		}
		latencies = append(latencies, net.Collector().MeanLatency())
	}
	// Identical workload: ring latency >= spidergon latency (longer
	// average paths at 12 nodes).
	if latencies[0] < latencies[1] {
		t.Fatalf("ring latency %v below spidergon %v on identical trace", latencies[0], latencies[1])
	}
}

// The routing-layer path length (static analysis) agrees with the
// network-layer hop measurement (dynamic) for every pair on every
// studied topology.
func TestStaticAndDynamicHopCountsAgree(t *testing.T) {
	type inst struct {
		top topology.Topology
		alg routing.Algorithm
	}
	sg := topology.MustSpidergon(10)
	m := topology.MustIrregularMesh(11)
	insts := []inst{
		{sg, routing.NewSpidergonRouting(sg)},
		{m, routing.NewMeshXY(m)},
	}
	for _, in := range insts {
		n := in.top.Nodes()
		net, err := noc.NewNetwork(in.top, in.alg, noc.DefaultConfig(), stats.NewCollector(0))
		if err != nil {
			t.Fatal(err)
		}
		pairHops := make(map[[2]int]int)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				h, err := routing.HopCount(in.alg, in.top, s, d)
				if err != nil {
					t.Fatal(err)
				}
				pairHops[[2]int{s, d}] = h
				_ = net.Inject(s, d)
			}
		}
		if err := net.Drain(500000); err != nil {
			t.Fatal(err)
		}
		// Mean hops over all pairs must equal the static mean exactly.
		sum := 0
		for _, h := range pairHops {
			sum += h
		}
		staticMean := float64(sum) / float64(len(pairHops))
		if diff := math.Abs(net.Collector().MeanHops() - staticMean); diff > 1e-9 {
			t.Fatalf("%s: dynamic mean hops %v != static %v",
				in.top.Name(), net.Collector().MeanHops(), staticMean)
		}
	}
}

// The analytic uniform saturation bound is an upper bound on measured
// per-node throughput for every topology, and measured saturation
// reaches a reasonable fraction of it.
func TestSaturationBoundsBracketMeasurement(t *testing.T) {
	for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh} {
		s := core.NewScenario(kind, 16, core.UniformTraffic, 0.2) // far beyond saturation
		s.Warmup, s.Measure = 500, 6000
		r, err := core.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		topo, _, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		bound := analysis.UniformSaturationBound(topo)
		got := r.ThroughputPerNode
		if got > bound*1.02 {
			t.Fatalf("%s: measured per-node throughput %v exceeds analytic bound %v", kind, got, bound)
		}
		// Wormhole with the paper's shallow buffers reaches roughly a
		// third to a half of the idealised channel-capacity bound.
		if got < 0.3*bound {
			t.Fatalf("%s: measured %v below 30%% of bound %v — simulator leaving capacity unused", kind, got, bound)
		}
	}
}

// Deterministic end-to-end: full scenario pipeline, twice, bit-equal
// across every reported field that is derived from simulation.
func TestEndToEndDeterminismFullPipeline(t *testing.T) {
	mk := func() core.Result {
		s := core.NewScenario(core.Spidergon, 16, core.HotSpotTraffic, 0.004)
		s.HotSpots = []int{0, 8}
		s.Warmup, s.Measure, s.Seed = 400, 5000, 31
		r, err := core.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	if a.Throughput != b.Throughput || a.MeanLatency != b.MeanLatency ||
		a.LinkTraversals != b.LinkTraversals || a.EjectedPackets != b.EjectedPackets ||
		a.P95Latency != b.P95Latency {
		t.Fatalf("pipeline not deterministic:\n%+v\n%+v", a, b)
	}
}

// Energy accounting consistency: the cost model applied to observed
// traversal counts matches the per-packet estimate within the warm-up
// skew (traversals include warm-up, packets don't).
func TestEnergyAccountingConsistency(t *testing.T) {
	s := core.NewScenario(core.Mesh, 16, core.UniformTraffic, 0.01)
	s.Warmup, s.Measure = 0, 8000
	r, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	cm := analysis.DefaultCostModel()
	// Aggregate from observed traversals + injected flits.
	flitsInjected := uint64(r.Scenario.Config.PacketLen) * r.InjectedPackets
	aggregate := cm.TrafficEnergy(r.LinkTraversals, flitsInjected)
	// Per-packet estimate scaled up. In-flight packets at the horizon
	// cause a small deficit; allow 10%.
	if r.TotalEnergy > aggregate*1.1 || r.TotalEnergy < aggregate*0.7 {
		t.Fatalf("energy estimates diverge: per-packet total %v vs aggregate %v", r.TotalEnergy, aggregate)
	}
}

// A saturated hot-spot run respects global conservation all the way
// through the experiment layer: injected >= ejected, and blocked-source
// cycles appear once the offered load exceeds capacity.
func TestSaturatedHotspotBookkeeping(t *testing.T) {
	s := core.NewScenario(core.Ring, 8, core.HotSpotTraffic, 0)
	s.HotSpots = []int{0}
	s.Lambda = 3 * analysis.HotspotSaturationLambda(1, 1, 7, 6)
	s.Warmup, s.Measure = 500, 6000
	r, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EjectedPackets > r.InjectedPackets {
		t.Fatal("ejected more than injected")
	}
	if r.SourceBlocked == 0 {
		t.Fatal("no source blocking at 3x saturation")
	}
	if r.AcceptedFlitRate >= r.OfferedFlitRate {
		t.Fatalf("accepted %v not below offered %v at 3x saturation",
			r.AcceptedFlitRate, r.OfferedFlitRate)
	}
}
