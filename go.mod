module gonoc

go 1.24
