// Package gonoc is a cycle-accurate Network-on-Chip simulation and
// analysis library reproducing Bononi & Concer, "Simulation and
// Analysis of Network on Chip Architectures: Ring, Spidergon and 2D
// Mesh" (DATE 2006).
//
// The library lives under internal/: topology models (ring, Spidergon,
// mesh family, torus, chordal ring), routing algorithms with a
// channel-dependency-graph deadlock checker, a wormhole-switched
// flit-level network model, Poisson/hot-spot/uniform traffic
// generation, an experiment layer (internal/core) that regenerates
// every figure of the paper, and a campaign layer (internal/exp) that
// expands crossed parameter grids — topology × size × traffic ×
// injection rate × replications — onto a cancellable worker pool and
// streams per-run and mean/CI95 summary records to JSONL/CSV sinks,
// byte-identically at any parallelism. See README.md for a tour and
// EXPERIMENTS.md for paper-versus-measured results; bench_test.go in
// this directory holds one benchmark per paper figure.
package gonoc
