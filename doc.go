// Package gonoc is a cycle-accurate Network-on-Chip simulation and
// analysis library reproducing Bononi & Concer, "Simulation and
// Analysis of Network on Chip Architectures: Ring, Spidergon and 2D
// Mesh" (DATE 2006).
//
// The library lives under internal/: topology models (ring, Spidergon,
// mesh family, torus, chordal ring), routing algorithms with a
// channel-dependency-graph deadlock checker, a wormhole-switched
// flit-level network model, Poisson/hot-spot/uniform traffic
// generation, a scenario layer (internal/core) with the deterministic
// single-run engine and content-addressed scenario keys, and the
// experiment stack (internal/exp) every batch run goes through.
//
// The simulation core is activity-driven: each pipeline phase drains
// bitmap worklists over routers and per-router slot-occupancy masks,
// updated exactly where flits move, so a cycle costs time proportional
// to in-flight work rather than network size, and core.Run
// fast-forwards the clock across fully quiescent gaps between Poisson
// arrivals via the kernel's next-event peek. The steady state is also
// allocation-free, and pooled by default: the network recycles packets
// and their flit arrays through a conservation-checked freelist, the
// kernel pools its event records behind the closure-free
// handler-scheduling API (sim.Handler), generators batch all same-cycle
// arrivals of a source into one event, and campaigns reuse one
// network/kernel/collector workspace across replications. A
// domain-decomposed parallel engine (noc.EngineParallel, exposed as
// -step-parallel and exp.Runner.StepShards) additionally runs each
// Step's phases across contiguous router shards with deterministic
// barriers, so a lone saturation point can use the whole machine. The
// original scan-everything engine is retained (noc.EngineSweep) and
// golden cross-engine tests prove engines (parallel included, at every
// shard count), pooling modes and workspace reuse all produce
// bit-identical Results; a tracked perf gate
// (bench-baseline.json + cmd/benchgate, `make bench-check`) fails CI
// when deterministic work counters or steady-state allocs/packet
// regress beyond tolerance. The experiment stack:
// campaigns expand crossed parameter grids — topology × size × traffic
// × injection rate × replications — onto a cancellable worker pool and
// stream per-run and mean/CI95 summary records to JSONL/CSV sinks,
// byte-identically at any parallelism, with a JSONL result cache
// (re-runs are free, interrupted runs resume), deterministic sharding
// whose merged streams equal the unsharded output, variance-aware
// adaptive replication, saturation-knee grid refinement, and the
// regenerators for the paper's simulated figures (5-11) with CI95
// columns. Observability rides on top without disturbing any of it:
// internal/telemetry captures every simulated cycle (occupancy,
// per-router injection/ejection, link utilization) through a
// preallocated ring with delta/varint chunk encoding — allocation-free
// in steady state, bit-identical across engines and shard counts,
// decoded by cmd/noctsd — and exp.SQLiteSink archives campaign results
// as a real SQLite database written dependency-free by
// internal/sqlitefile. See README.md for a tour and EXPERIMENTS.md for
// the paper-versus-measured methodology; bench_test.go in this
// directory holds one benchmark per paper figure.
package gonoc
