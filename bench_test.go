package gonoc

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index), plus micro-benchmarks of the substrates the
// figures run on. The figure benches use reduced cycle counts so the
// full suite stays tractable; cmd/nocfigs regenerates the figures at
// publication scale.

import (
	"context"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/exp"
	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/telemetry"
	"gonoc/internal/topology"
)

// benchOpts are the reduced settings shared by the figure benchmarks.
// One replication keeps the benches comparable with the seed numbers;
// cmd/nocfigs defaults to three for real CI95 columns.
func benchOpts() exp.FigureOpts {
	return exp.FigureOpts{
		Sizes:            []int{8},
		LoadFractions:    []float64{0.5, 1.25},
		UniformFlitRates: []float64{0.1, 0.4},
		Warmup:           300,
		Measure:          2500,
		Seed:             1,
		Reps:             1,
	}
}

// BenchmarkFig2Diameter regenerates Figure 2 (network diameter vs N).
func BenchmarkFig2Diameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := core.Fig2Diameter(4, 64)
		if len(t.Series) != 5 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig3AvgDistance regenerates Figure 3 (E[D] vs N).
func BenchmarkFig3AvgDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := core.Fig3AvgDistance(4, 64)
		if len(t.Series) != 5 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig5Validation regenerates Figure 5 (analytic vs simulated
// average distance).
func BenchmarkFig5Validation(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5Validation(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6HotspotThroughput regenerates Figure 6 (throughput, one
// hot-spot destination).
func BenchmarkFig6HotspotThroughput(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6HotspotThroughput(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7HotspotLatency regenerates Figure 7 (latency, one
// hot-spot destination).
func BenchmarkFig7HotspotLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7HotspotLatency(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8DoubleHotspotThroughput regenerates Figure 8
// (throughput, two hot-spot destinations, placements A/B/C).
func BenchmarkFig8DoubleHotspotThroughput(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8DoubleHotspotThroughput(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9DoubleHotspotLatency regenerates Figure 9 (latency, two
// hot-spot destinations).
func BenchmarkFig9DoubleHotspotLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9DoubleHotspotLatency(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10UniformThroughput regenerates Figure 10 (throughput,
// homogeneous uniform traffic).
func BenchmarkFig10UniformThroughput(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10UniformThroughput(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11UniformLatency regenerates Figure 11 (latency,
// homogeneous uniform traffic).
func BenchmarkFig11UniformLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11UniformLatency(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkCounts verifies and times the Section-2 link-count
// table (2N ring, 3N spidergon, 2(m-1)n+2(n-1)m mesh) across sizes.
func BenchmarkLinkCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 4; n <= 64; n += 2 {
			if topology.LinkCount(topology.MustRing(n)) != analysis.LinkCountRing(n) {
				b.Fatal("ring link count")
			}
			if topology.LinkCount(topology.MustSpidergon(n)) != analysis.LinkCountSpidergon(n) {
				b.Fatal("spidergon link count")
			}
			c, r := analysis.IdealMeshDims(n)
			if topology.LinkCount(topology.MustMesh(c, r)) != analysis.LinkCountMesh(c, r) {
				b.Fatal("mesh link count")
			}
		}
	}
}

// BenchmarkAblationBuffers sweeps the output queue depth (the buffer
// tuning the paper reports as having "marginal impact on the peak
// performances") and reports saturated throughput per depth.
func BenchmarkAblationBuffers(b *testing.B) {
	for _, depth := range []int{1, 3, 6} {
		depth := depth
		b.Run(benchName("outbuf", depth), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				s := core.NewScenario(core.Spidergon, 16, core.UniformTraffic, 0.4/6)
				s.Config.OutBufCap = depth
				s.Warmup, s.Measure = 300, 2500
				r, err := core.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				tput = r.Throughput
			}
			b.ReportMetric(tput, "flits/cycle")
		})
	}
}

// BenchmarkAblationPacketLen sweeps the packet length at constant flit
// load — the paper's packet-format axis.
func BenchmarkAblationPacketLen(b *testing.B) {
	for _, plen := range []int{2, 6, 12} {
		plen := plen
		b.Run(benchName("flits", plen), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := core.NewScenario(core.Spidergon, 16, core.UniformTraffic, 0)
				s.Config.PacketLen = plen
				s.Lambda = 0.3 / float64(plen)
				s.Warmup, s.Measure = 300, 2500
				r, err := core.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				lat = r.MeanLatency
			}
			b.ReportMetric(lat, "cycles/packet")
		})
	}
}

// BenchmarkAblationSwitching compares the three switching disciplines
// of Section 2's design discussion (wormhole vs virtual cut-through vs
// store-and-forward) at equal load and reports mean latency.
func BenchmarkAblationSwitching(b *testing.B) {
	for _, mode := range []noc.Switching{noc.Wormhole, noc.VirtualCutThrough, noc.StoreAndForward} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := core.NewScenario(core.Spidergon, 16, core.UniformTraffic, 0.02)
				s.Config.Switching = mode
				s.Config.OutBufCap = 6
				s.Warmup, s.Measure = 300, 2500
				r, err := core.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				lat = r.MeanLatency
			}
			b.ReportMetric(lat, "cycles/packet")
		})
	}
}

// BenchmarkAblationRouting compares deterministic XY against west-first
// adaptive routing on a hot-spotted mesh and reports throughput.
func BenchmarkAblationRouting(b *testing.B) {
	for _, override := range []string{"xy", "west-first", "table"} {
		override := override
		b.Run(override, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				s := core.NewScenario(core.Mesh, 16, core.HotSpotTraffic, 2.0/(15.0*6.0))
				s.HotSpots = []int{15}
				s.Routing = override
				s.Warmup, s.Measure = 300, 2500
				r, err := core.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				tput = r.Throughput
			}
			b.ReportMetric(tput, "flits/cycle")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- engine benchmarks and the perf-regression gate ---

// engineScenario is the perf-gate workload: a mesh-8x8 uniform sweep
// point at the given fraction of the analytic saturation bound.
func engineScenario(frac float64) core.Scenario {
	topo := topology.MustMesh(8, 8)
	bound := analysis.UniformSaturationBound(topo) // flits/cycle/source
	s := core.NewScenario(core.Mesh, 64, core.UniformTraffic, frac*bound/6)
	s.Warmup, s.Measure = 300, 3000
	return s
}

// BenchmarkEngineMesh8x8 compares the activity-driven engine (with its
// idle fast-forward) against the reference sweep engine on the paper's
// largest mesh, below saturation and past it. The low-load ratio is
// the headline number of the activity-driven refactor; the saturated
// pair guards against a regression when every router is busy.
func BenchmarkEngineMesh8x8(b *testing.B) {
	loads := []struct {
		name string
		frac float64
	}{{"low15", 0.15}, {"low25", 0.25}, {"saturated", 1.5}}
	for _, load := range loads {
		for _, eng := range []noc.Engine{noc.EngineActive, noc.EngineSweep} {
			s := engineScenario(load.frac)
			s.Engine = eng
			b.Run(load.name+"/"+eng.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPerfGate feeds the tracked perf-regression gate
// (bench-baseline.json + cmd/benchgate, run by `make bench-check`).
// The gated metrics are deterministic work counters — worklist visits
// per simulated cycle, the fraction of cycles actually ticked (not
// fast-forwarded), and steady-state allocator traffic per delivered
// packet — so the gate is immune to host speed and CI noise: a >15%
// regression means the active sets, the idle fast-forward, or the
// zero-allocation hot path (packet pool, pooled kernel events, batched
// generator arrivals, workspace reuse) genuinely lost ground, not that
// the runner was slow.
func BenchmarkPerfGate(b *testing.B) {
	loads := []struct {
		name   string
		frac   float64
		shards int
	}{
		{"idle", 0, 0},
		{"low", 0.25, 0},
		{"knee", 0.9, 0},
		{"saturated", 1.5, 0},
		// The parallel point runs the knee workload domain-decomposed
		// across 4 router shards. Its gated counters must equal the
		// serial knee's (the shards visit exactly the same worklists);
		// the wall-clock speedup over the serial engine is reported
		// alongside but deliberately NOT gated — it depends on the
		// host's core count, which the deterministic gate must not.
		{"knee-parallel", 0.9, 4},
		// The telemetry point re-runs the knee with per-cycle capture
		// streaming to io.Discard: its work and allocation counters
		// must match the plain knee's baselines (capture is free on
		// the hot path), and the encoded telemetry bytes per simulated
		// cycle is itself a gated deterministic counter — the encoding
		// getting fatter is a regression the gate catches.
		{"knee-telemetry", 0.9, 0},
	}
	for _, load := range loads {
		s := engineScenario(load.frac)
		s.StepParallel = load.shards
		var telStats telemetry.Stats
		if load.name == "knee-telemetry" {
			s.Telemetry = &telemetry.Options{W: io.Discard, Stats: &telStats}
		}
		if load.frac == 0 {
			// The idle point gates the fast-forward itself: traffic so
			// sparse the network fully drains between arrivals, so most
			// cycles are skipped and ticked-frac sits far below 1 — a
			// broken fast-forward drives it to 1.0 and trips the gate
			// (at the other points ticked-frac ~1 and only visits/cycle
			// has headroom).
			s = core.NewScenario(core.Spidergon, 16, core.UniformTraffic, 0.0005)
			s.Warmup, s.Measure = 0, 20000
		}
		b.Run(load.name, func(b *testing.B) {
			// One workspace across iterations: the first run warms the
			// packet pool and event records, later runs reuse them — the
			// steady state of a campaign, which is what the allocation
			// metrics below gate.
			var ws core.Workspace
			var perf noc.PerfStats
			for i := 0; i < b.N; i++ {
				var err error
				if _, perf, err = ws.RunPerf(s); err != nil {
					b.Fatal(err)
				}
			}
			cycles := float64(s.Warmup + s.Measure + 1)
			b.ReportMetric(float64(perf.RouterVisits)/cycles, "visits/cycle")
			b.ReportMetric((cycles-float64(perf.SkippedCycles))/cycles, "ticked-frac")
			// Live simulation-state footprint per router at end of run:
			// arena records and stamps at the population high-water mark
			// plus buffer/mask/queue residency. Length-based, so exactly
			// reproducible across hosts and Go versions — gated like the
			// work counters, pinning the compactness of the handle-based
			// arena layout.
			b.ReportMetric(float64(perf.LiveStateBytes)/float64(s.Nodes), "live-bytes/router")
			if s.Telemetry != nil {
				b.ReportMetric(float64(telStats.Bytes)/cycles, "telemetry-bytes/cycle")
			}
			if load.shards > 0 {
				// The fused engine's synchronization budget, normalized
				// by ticked (non-fast-forwarded) cycles: exactly one
				// barrier per multi-shard cycle without an OnEject
				// callback, and a replay-visits count gated at zero —
				// the credit discipline resolves every boundary link
				// decision inside the pass (speculatively on a cycle-
				// start credit, or via a point-to-point pops-done wait
				// on credit exhaustion), so any nonzero replay count is
				// a reintroduced serial section. The credit split
				// itself (speculative deliveries vs zero-credit defers
				// per cycle) is reported and gated too: all are
				// deterministic work counters, so the gate pins them
				// where wall-clock speedup would be host noise.
				ticked := cycles - float64(perf.SkippedCycles)
				b.ReportMetric(float64(perf.Barriers)/ticked, "barriers/cycle")
				b.ReportMetric(float64(perf.SerialReplayVisits)/ticked, "replay-visits/cycle")
				b.ReportMetric(float64(perf.SpeculativeDeliveries)/ticked, "spec-deliveries/cycle")
				b.ReportMetric(float64(perf.CreditDefers)/ticked, "credit-defers/cycle")
			}

			// Steady-state allocation metrics: one further run on the
			// warmed workspace, bracketed by exact allocator counters
			// (runtime.MemStats.Mallocs/TotalAlloc, not sampled). The
			// simulation is single-threaded and deterministic, so the
			// counts are reproducible across hosts like the work counters
			// above; the settling GC keeps collector scavenging out of
			// the bracket.
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			res, _, err := ws.RunPerf(s)
			if err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			pkts := float64(res.EjectedPackets)
			if pkts == 0 {
				b.Fatal("degenerate gate point: nothing ejected")
			}
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/pkts, "allocs/packet")
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/pkts, "bytes/packet")

			if load.shards > 0 {
				// Report-only wall metric: the measured intra-scenario
				// speedup of the parallel engine over the serial active
				// engine on this host (best of three warmed runs each).
				// On a single-core runner this sits at or below 1; on a
				// machine with >= shards cores the target is >= 2x at 4
				// shards. The gate ignores it — see bench-baseline.json.
				// Off the benchmark clock: these seven extra runs must
				// not inflate the bench's own ns/op.
				b.StopTimer()
				defer b.StartTimer()
				serial := s
				serial.StepParallel = 0
				var wsSerial core.Workspace
				if _, _, err := wsSerial.RunPerf(serial); err != nil {
					b.Fatal(err)
				}
				best := func(ws *core.Workspace, sc core.Scenario) time.Duration {
					bestDur := time.Duration(math.MaxInt64)
					for i := 0; i < 3; i++ {
						t0 := time.Now()
						if _, _, err := ws.RunPerf(sc); err != nil {
							b.Fatal(err)
						}
						if d := time.Since(t0); d < bestDur {
							bestDur = d
						}
					}
					return bestDur
				}
				serialDur := best(&wsSerial, serial)
				parDur := best(&ws, s)
				b.ReportMetric(float64(load.shards), "shards")
				b.ReportMetric(serialDur.Seconds()/parDur.Seconds(), "speedup")
				// Raw best-of-3 wall times plus the host parallelism that
				// produced them, so bench-speedup.json archives enough to
				// interpret the speedup figure (and to diff wall-time
				// across commits on the same runner). All report-only.
				b.ReportMetric(float64(serialDur.Nanoseconds()), "serial-wall-ns")
				b.ReportMetric(float64(parDur.Nanoseconds()), "parallel-wall-ns")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
				b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
			}
		})
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkNetworkStep measures the per-cycle cost of a loaded 16-node
// Spidergon network.
func BenchmarkNetworkStep(b *testing.B) {
	s := topology.MustSpidergon(16)
	net, err := noc.NewNetwork(s, routing.NewSpidergonRouting(s), noc.DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			src := rng.Intn(16)
			dst := rng.Intn(16)
			if src != dst {
				_ = net.Inject(src, dst)
			}
		}
		net.Step()
	}
}

// BenchmarkKernelSchedule measures event scheduling + dispatch.
func BenchmarkKernelSchedule(b *testing.B) {
	k := sim.NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleAfter(1, func() {})
		k.Step()
	}
}

// BenchmarkRoutingDecision measures one across-first routing decision.
func BenchmarkRoutingDecision(b *testing.B) {
	s := topology.MustSpidergon(32)
	a := routing.NewSpidergonRouting(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Route(i%32, (i+11)%32, 0)
	}
}

// BenchmarkBFSDiameter measures the exact-diameter computation used by
// the analytic figures on the largest studied size.
func BenchmarkBFSDiameter(b *testing.B) {
	m := topology.MustIrregularMesh(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if topology.Diameter(m) < 1 {
			b.Fatal("bad diameter")
		}
	}
}

// BenchmarkDependencyGraph measures the deadlock-freedom proof on a
// 16-node spidergon.
func BenchmarkDependencyGraph(b *testing.B) {
	s := topology.MustSpidergon(16)
	a := routing.NewSpidergonRouting(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := routing.CheckDeadlockFree(a, s); err != nil {
			b.Fatal(err)
		}
	}
}
