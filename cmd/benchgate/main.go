// Command benchgate is the tracked perf-regression gate: it reads a
// `go test -json -bench` stream, extracts the benchmark metrics named
// by a committed baseline file, and fails (exit 1) when any gated
// metric regressed by more than the allowed tolerance.
//
// The committed baseline (bench-baseline.json) tracks *deterministic*
// work counters — worklist visits per simulated cycle and the fraction
// of cycles actually ticked rather than fast-forwarded — which are
// pure functions of the benchmark scenario. Unlike ns/op they are
// identical on every machine, so the same baseline gates a laptop and
// a CI runner without noise margins hiding real regressions. Wall-time
// metrics can still be tracked by adding ns/op entries to a local
// baseline; they are compared the same way.
//
// A second mode maintains the tracked speedup history: -speedup-log
// reads the knee-parallel bench's report-only wall metrics (gomaxprocs,
// numcpu, shards, raw serial/parallel wall times, speedup) from the
// same stream and records one labeled entry in a JSON array file
// (BENCH_speedup.json) — re-running with an existing label replaces
// that record instead of appending — so runs on real multi-core hosts
// accumulate a per-commit speedup trajectory next to the deterministic
// gate. No baseline is consulted in this mode. Adding -speedup-min
// turns the logged run into a wall-clock gate: the freshly measured
// knee speedup must reach the floor, enforced only for labels matching
// -label-prefix (CI passes `-speedup-min 1.05 -label-prefix ci-`) and
// skipped with a notice when the host has fewer cores than shards.
//
// Usage:
//
//	go test -json -bench=PerfGate -benchtime=1x -run='^$' . | benchgate -baseline bench-baseline.json
//	benchgate -baseline bench-baseline.json -input bench-gate.json
//	benchgate -baseline bench-baseline.json -input bench-gate.json -update
//	go test -json -bench='PerfGate/knee-parallel' -benchtime=1x -run='^$' . | benchgate -speedup-log BENCH_speedup.json -label pr8
//	benchgate -speedup-log BENCH_speedup.json -input bench-speedup.json -label ci-abc12345 -speedup-min 1.05 -label-prefix ci-
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed gate specification.
type Baseline struct {
	// Note documents the methodology for readers of the JSON file.
	Note string `json:"note,omitempty"`
	// Tolerance is the allowed relative regression (0.15 = 15%) for
	// entries that do not set their own.
	Tolerance float64 `json:"tolerance"`
	// Entries are the gated (benchmark, metric) pairs. All metrics are
	// lower-is-better.
	Entries []Entry `json:"entries"`
}

// Entry gates one metric of one benchmark.
type Entry struct {
	// Bench names the benchmark, without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix, e.g. "PerfGate/low".
	Bench string `json:"bench"`
	// Metric is the unit string as printed by the benchmark, e.g.
	// "visits/cycle" or "ns/op".
	Metric string `json:"metric"`
	// Value is the baseline measurement.
	Value float64 `json:"value"`
	// Tolerance overrides the file-level tolerance when positive.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// testEvent is the subset of the `go test -json` stream we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts (name, metric->value) from one benchmark result
// line, or ok=false when the line is not one.
func parseBench(line string) (name string, metrics map[string]float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	// name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	name = procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
	metrics = make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	return name, metrics, true
}

// collect reads a `go test -json` stream (or raw bench output) and
// returns metric values keyed by "bench\x00metric". The -json encoder
// splits one benchmark result line across several output events (the
// name flushes before the timings), so the stream's output text is
// reassembled first and parsed line by line.
func collect(r io.Reader) (map[string]float64, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") {
			text.WriteString(line)
			text.WriteByte('\n')
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // foreign line in the stream
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	got := make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		if name, metrics, ok := parseBench(strings.TrimSpace(line)); ok {
			for unit, v := range metrics {
				got[name+"\x00"+unit] = v
			}
		}
	}
	return got, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench-baseline.json", "committed baseline file")
		inputPath    = flag.String("input", "", "bench output (go test -json stream); default stdin")
		update       = flag.Bool("update", false, "rewrite the baseline's values from the observed run")
		speedupLog   = flag.String("speedup-log", "", "append the knee-parallel speedup record to this JSON history instead of gating")
		label        = flag.String("label", "local", "record label for -speedup-log (e.g. the PR or commit)")
		speedupMin   = flag.Float64("speedup-min", 0, "with -speedup-log: fail unless the freshly measured knee speedup reaches this minimum (skipped when the host has fewer cores than shards)")
		labelPrefix  = flag.String("label-prefix", "", "with -speedup-min: enforce the minimum only when the record label starts with this prefix (empty = always)")
	)
	flag.Parse()

	if *speedupLog != "" {
		in := io.Reader(os.Stdin)
		if *inputPath != "" {
			f, err := os.Open(*inputPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		rec, err := appendSpeedup(*speedupLog, *label, in)
		if err != nil {
			fatal(err)
		}
		checkSpeedupMin(rec, *speedupMin, *labelPrefix)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.15
	}

	in := io.Reader(os.Stdin)
	if *inputPath != "" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := collect(in)
	if err != nil {
		fatal(err)
	}

	if *update {
		for i := range base.Entries {
			e := &base.Entries[i]
			v, ok := got[e.Bench+"\x00"+e.Metric]
			if !ok {
				fatal(fmt.Errorf("no observation for %s %s", e.Bench, e.Metric))
			}
			e.Value = v
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*baselinePath, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: %s updated (%d entries)\n", *baselinePath, len(base.Entries))
		return
	}

	results := make([]result, 0, len(base.Entries))
	failed := 0
	for _, e := range base.Entries {
		tol := e.Tolerance
		if tol <= 0 {
			tol = base.Tolerance
		}
		r := result{entry: e, tol: tol}
		if v, ok := got[e.Bench+"\x00"+e.Metric]; !ok {
			r.missing, r.failed = true, true
			r.delta = math.Inf(1)
		} else {
			r.measured = v
			if e.Value != 0 {
				r.delta = v/e.Value - 1
			}
			r.failed = v > e.Value*(1+tol)
		}
		if r.failed {
			failed++
		}
		results = append(results, r)
	}

	if failed == 0 {
		for _, r := range results {
			if r.measured < r.entry.Value*(1-r.tol) {
				fmt.Printf("ok   %-28s %-14s %.6g improved past baseline %.6g — consider -update\n",
					r.entry.Bench, r.entry.Metric, r.measured, r.entry.Value)
				continue
			}
			fmt.Printf("ok   %-28s %-14s %.6g (baseline %.6g, tolerance %.0f%%)\n",
				r.entry.Bench, r.entry.Metric, r.measured, r.entry.Value, r.tol*100)
		}
		fmt.Printf("benchgate: %d metric(s) within tolerance\n", len(base.Entries))
		return
	}

	// On failure, print every gated metric as a table sorted worst
	// first by relative delta, so the triage view shows at a glance
	// which counters moved together (one regressed scenario) versus a
	// single metric drifting on its own.
	sort.SliceStable(results, func(i, j int) bool { return results[i].delta > results[j].delta })
	fmt.Printf("%-4s %-28s %-20s %14s %14s %10s %8s\n",
		"", "benchmark", "metric", "baseline", "measured", "delta", "tol")
	for _, r := range results {
		status := "ok"
		if r.failed {
			status = "FAIL"
		}
		measured, delta := fmt.Sprintf("%.6g", r.measured), fmt.Sprintf("%+.1f%%", r.delta*100)
		if r.missing {
			measured, delta = "missing", "—"
		}
		fmt.Printf("%-4s %-28s %-20s %14.6g %14s %10s %7.0f%%\n",
			status, r.entry.Bench, r.entry.Metric, r.entry.Value, measured, delta, r.tol*100)
	}
	fmt.Printf("benchgate: %d metric(s) regressed\n", failed)
	os.Exit(1)
}

// result is one gated metric's evaluation against its baseline entry.
type result struct {
	entry    Entry
	tol      float64
	measured float64
	// delta is the relative movement vs the baseline (+ is worse; all
	// gated metrics are lower-is-better). Missing metrics sort first.
	delta   float64
	missing bool
	failed  bool
}

// speedupRecord is one entry of the tracked speedup history
// (BENCH_speedup.json): the knee-parallel bench's report-only wall
// metrics plus the host parallelism that produced them. The speedup
// figure is only meaningful relative to gomaxprocs/numcpu, which is why
// they travel together.
type speedupRecord struct {
	Label      string  `json:"label"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`
	Shards     int     `json:"shards"`
	SerialNs   float64 `json:"serial_wall_ns"`
	ParallelNs float64 `json:"parallel_wall_ns"`
	Speedup    float64 `json:"speedup"`
}

// appendSpeedup extracts the knee-parallel wall metrics from a bench
// stream and records them under the given label in the JSON-array
// history at path (created when missing). A re-run with an existing
// label replaces that record in place rather than appending, so
// repeated local runs and per-commit CI re-runs keep the history one
// record per label instead of accreting duplicates.
func appendSpeedup(path, label string, in io.Reader) (speedupRecord, error) {
	got, err := collect(in)
	if err != nil {
		return speedupRecord{}, err
	}
	const bench = "PerfGate/knee-parallel"
	metric := func(unit string) (float64, error) {
		v, ok := got[bench+"\x00"+unit]
		if !ok {
			return 0, fmt.Errorf("no %q metric for %s in the bench stream", unit, bench)
		}
		return v, nil
	}
	rec := speedupRecord{Label: label}
	fields := []struct {
		unit string
		dst  *float64
	}{
		{"serial-wall-ns", &rec.SerialNs},
		{"parallel-wall-ns", &rec.ParallelNs},
		{"speedup", &rec.Speedup},
	}
	for _, f := range fields {
		if *f.dst, err = metric(f.unit); err != nil {
			return speedupRecord{}, err
		}
	}
	ints := []struct {
		unit string
		dst  *int
	}{
		{"gomaxprocs", &rec.GOMAXPROCS},
		{"numcpu", &rec.NumCPU},
		{"shards", &rec.Shards},
	}
	for _, f := range ints {
		v, err := metric(f.unit)
		if err != nil {
			return speedupRecord{}, err
		}
		*f.dst = int(v)
	}

	var history []speedupRecord
	if raw, err := os.ReadFile(path); err == nil {
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &history); err != nil {
				return speedupRecord{}, fmt.Errorf("parsing %s: %w", path, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return speedupRecord{}, err
	}
	verb := "+="
	replaced := false
	for i := range history {
		if history[i].Label == label {
			history[i] = rec
			verb, replaced = "~=", true
			break
		}
	}
	if !replaced {
		history = append(history, rec)
	}
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return speedupRecord{}, err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return speedupRecord{}, err
	}
	fmt.Printf("benchgate: %s %s {label %s, %d shards, gomaxprocs %d, speedup %.3gx} (%d records)\n",
		path, verb, rec.Label, rec.Shards, rec.GOMAXPROCS, rec.Speedup, len(history))
	return rec, nil
}

// checkSpeedupMin enforces the CI wall-clock floor on a freshly
// measured speedup record: when min is positive and the record's label
// carries the enforcement prefix, the measured knee speedup must reach
// it. Hosts with fewer cores than shards skip the check (the parallel
// engine cannot beat serial without the cores, and the deterministic
// counters in the main gate already cover correctness there) — CI
// pins GOMAXPROCS=4 on a 4-core runner, so the check bites exactly
// where the number is meaningful.
func checkSpeedupMin(rec speedupRecord, min float64, prefix string) {
	if min <= 0 || !strings.HasPrefix(rec.Label, prefix) {
		return
	}
	if rec.NumCPU < rec.Shards {
		fmt.Printf("benchgate: speedup gate skipped: %d CPUs < %d shards — wall-clock speedup is not meaningful on this host\n",
			rec.NumCPU, rec.Shards)
		return
	}
	if rec.Speedup < min {
		fmt.Fprintf(os.Stderr,
			"benchgate: knee speedup %.3gx below the %.3gx floor (label %s, %d shards, gomaxprocs %d, numcpu %d)\n",
			rec.Speedup, min, rec.Label, rec.Shards, rec.GOMAXPROCS, rec.NumCPU)
		os.Exit(1)
	}
	fmt.Printf("benchgate: knee speedup %.3gx meets the %.3gx floor\n", rec.Speedup, min)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
