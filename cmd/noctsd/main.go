// Command noctsd decodes per-cycle telemetry captures written by
// nocsim -telemetry (or any core run with Scenario.Telemetry set).
//
// Usage:
//
//	noctsd summary capture.tsd              # deterministic text summary
//	noctsd dump [-from N] [-to N] capture.tsd   # CSV on stdout
//	noctsd slice -from N -to N capture.tsd out.tsd  # re-encode a cycle range
//	noctsd roundtrip capture.tsd            # decode+re-encode, verify byte identity
//
// Cycle ranges are half-open [from, to); -to 0 means "to the end".
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"gonoc/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summary":
		err = summary(args)
	case "dump":
		err = dump(args)
	case "slice":
		err = slice(args)
	case "roundtrip":
		err = roundtrip(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "noctsd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: noctsd summary|dump|slice|roundtrip [flags] <capture> [out]")
	os.Exit(2)
}

func load(path string) (*telemetry.Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.Decode(f)
}

// summary prints a deterministic digest of the capture: the golden
// file diffed by make telemetry-check is exactly this output.
func summary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	c, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	spec := c.Spec()
	fmt.Printf("nodes    %d\n", spec.Nodes)
	fmt.Printf("links    %d\n", spec.Links)
	fmt.Printf("chunklen %d\n", spec.ChunkLen)
	fmt.Printf("samples  %d\n", c.Samples())
	if c.Samples() == 0 {
		return nil
	}
	last := c.Samples() - 1
	fmt.Printf("cycles   %d..%d\n", c.Cycle(0), c.Cycle(last))
	var inj, ej, link, occSum, occMax uint64
	maxAt := [2]uint64{} // cycle, node
	for n := 0; n < spec.Nodes; n++ {
		inj += c.Inj(last, n)
		ej += c.Ej(last, n)
	}
	for l := 0; l < spec.Links; l++ {
		link += c.Link(last, l)
	}
	for i := 0; i < c.Samples(); i++ {
		for n := 0; n < spec.Nodes; n++ {
			o := c.Occ(i, n)
			occSum += o
			if o > occMax {
				occMax = o
				maxAt = [2]uint64{c.Cycle(i), uint64(n)}
			}
		}
	}
	fmt.Printf("injected %d flits\n", inj)
	fmt.Printf("ejected  %d flits\n", ej)
	fmt.Printf("link     %d traversals\n", link)
	fmt.Printf("occ-mean %.6f flits/node/sample\n", float64(occSum)/float64(c.Samples()*spec.Nodes))
	fmt.Printf("occ-max  %d flits (cycle %d, node %d)\n", occMax, maxAt[0], maxAt[1])
	return nil
}

// rangeFlags parses -from/-to and returns the sample index range
// [lo, hi) whose cycles fall inside the half-open cycle range.
func rangeFlags(fs *flag.FlagSet) (from, to *uint64) {
	from = fs.Uint64("from", 0, "first cycle to include")
	to = fs.Uint64("to", 0, "first cycle to exclude (0 = end)")
	return
}

func sampleRange(c *telemetry.Capture, from, to uint64) (int, int) {
	lo := 0
	for lo < c.Samples() && c.Cycle(lo) < from {
		lo++
	}
	hi := c.Samples()
	if to > 0 {
		hi = lo
		for hi < c.Samples() && c.Cycle(hi) < to {
			hi++
		}
	}
	return lo, hi
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	from, to := rangeFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	c, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	spec := c.Spec()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprint(w, "cycle")
	for _, col := range []string{"occ", "inj", "ej"} {
		for n := 0; n < spec.Nodes; n++ {
			fmt.Fprintf(w, ",%s%d", col, n)
		}
	}
	for l := 0; l < spec.Links; l++ {
		fmt.Fprintf(w, ",link%d", l)
	}
	fmt.Fprintln(w)
	lo, hi := sampleRange(c, *from, *to)
	for i := lo; i < hi; i++ {
		row := c.Row(i)
		for j, v := range row {
			if j > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func slice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ExitOnError)
	from, to := rangeFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	c, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	rec, err := telemetry.NewRecorder(c.Spec())
	if err != nil {
		return err
	}
	out, err := os.Create(fs.Arg(1))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(out)
	if err := rec.Start(bw); err != nil {
		return err
	}
	lo, hi := sampleRange(c, *from, *to)
	for i := lo; i < hi; i++ {
		rec.Append(c.Row(i))
	}
	if err := rec.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Fprintf(os.Stderr, "noctsd: sliced %d of %d samples, %d bytes -> %s\n",
		hi-lo, c.Samples(), st.Bytes, fs.Arg(1))
	return nil
}

// roundtrip proves the encoding is lossless and deterministic: a
// decoded capture re-encoded row by row must reproduce the input file
// byte for byte (chunk boundaries are a pure function of the row
// sequence).
func roundtrip(args []string) error {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := telemetry.Decode(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	rec, err := telemetry.NewRecorder(c.Spec())
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := rec.Start(&buf); err != nil {
		return err
	}
	for i := 0; i < c.Samples(); i++ {
		rec.Append(c.Row(i))
	}
	if err := rec.Flush(); err != nil {
		return err
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		return fmt.Errorf("re-encode mismatch: %d bytes in, %d bytes out", len(raw), buf.Len())
	}
	fmt.Printf("roundtrip ok: %d samples, %d bytes\n", c.Samples(), len(raw))
	return nil
}
