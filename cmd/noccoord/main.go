// Command noccoord is the standalone campaign coordinator: it spawns N
// copies of a worker command, leases deterministic campaign shards to
// them over a line-delimited JSON protocol on stdin/stdout, and
// supervises the fleet — per-worker heartbeats with deadline-based
// liveness, crash detection with capped exponential-backoff restarts,
// work-stealing re-leases of straggler shards — while streaming the
// merged, byte-identical unsharded JSONL as shards complete.
//
// Any command speaking the dist worker protocol works; `nocsweep
// -worker <campaign flags>` is the stock one. The worker command
// follows "--":
//
//	noccoord -workers 4 -shards 16 -out merged.jsonl -- \
//	    nocsweep -worker -topo ring,spidergon,mesh -n 16 \
//	             -rates 0.05,0.1,0.2,0.3,0.4 -reps 5
//
// Shard coverage of the merged file is validated (missing or
// overlapping index ranges fail the merge), so a lost shard can never
// silently shorten the output. For the one-command local case, use
// `nocsweep -workers N` instead — it adds graceful degradation to
// in-process execution, which a generic coordinator cannot offer.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gonoc/internal/dist"
)

func main() {
	var (
		workers     = flag.Int("workers", 2, "worker processes to spawn and supervise")
		shards      = flag.Int("shards", 0, "campaign shard count (0 = 4x workers)")
		out         = flag.String("out", "", "write the merged JSONL stream to this file (default stdout)")
		events      = flag.String("events", "", "write the supervision event log to this file (default stderr)")
		heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval")
		deadline    = flag.Duration("deadline", 0, "liveness deadline before a silent worker is killed (0 = 4x heartbeat)")
		maxRestarts = flag.Int("max-restarts", 3, "supervised restarts per worker slot before giving up on it")
		maxAttempts = flag.Int("max-attempts", 4, "leases per shard before the campaign fails")
		stealFactor = flag.Float64("steal-factor", 3, "re-lease a shard once its lease is this multiple of the median completed-shard duration")
	)
	flag.Parse()
	argv := flag.Args()
	if len(argv) == 0 {
		fatal(fmt.Errorf("no worker command; usage: noccoord [flags] -- worker-cmd args..."))
	}
	if *shards <= 0 {
		*shards = 4 * *workers
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	var outW io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			// A close error means the merged file is truncated; exiting
			// 0 would pass the corruption downstream.
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		outW = f
	}
	var evW io.Writer = os.Stderr
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		evW = f
	}

	co, err := dist.New(dist.Options{
		Workers:           *workers,
		Shards:            *shards,
		Heartbeat:         *heartbeat,
		Deadline:          *deadline,
		MaxWorkerRestarts: *maxRestarts,
		MaxShardAttempts:  *maxAttempts,
		StealFactor:       *stealFactor,
		Launch:            &dist.LocalLauncher{Argv: argv, Env: os.Environ(), Stderr: os.Stderr},
		Out:               outW,
		Events:            evW,
	})
	if err != nil {
		fatal(err)
	}
	aggs, err := co.Run(ctx)
	fmt.Fprintf(os.Stderr, "# noccoord: %d shards on %d workers: %d restarts, %d deadline kills, %d steals, %d duplicate completions\n",
		*shards, *workers,
		co.CountEvents(dist.EventRestart), co.CountEvents(dist.EventMiss),
		co.CountEvents(dist.EventSteal), co.CountEvents(dist.EventDuplicate))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "# noccoord: merged %d grid points\n", len(aggs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noccoord:", err)
	os.Exit(1)
}
