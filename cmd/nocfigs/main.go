// Command nocfigs regenerates the tables behind every figure of the
// paper's evaluation (Figures 2, 3, 5, 6, 7, 8, 9, 10, 11). The
// simulated figures (5-11) run as replicated exp.Campaign grids, so
// every table value carries a mean and CI95 half-width column; a
// result cache makes re-runs free and interrupted runs resumable.
//
// Usage:
//
//	nocfigs                          # all figures, text tables
//	nocfigs -fig 6                   # one figure
//	nocfigs -fig 10 -csv             # CSV output (with _ci95 columns)
//	nocfigs -sizes 8,24 -measure 20000 -reps 5
//	nocfigs -cache /tmp/figs -ci-target 0.05
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"gonoc/internal/core"
	"gonoc/internal/exp"
)

// main delegates to realMain so deferred cleanup (signal teardown,
// cache flush/report) runs on every exit path — os.Exit here would
// skip it exactly when an interrupted run most needs the cache closed.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		fig      = flag.Int("fig", 0, "figure number (2,3,5,6,7,8,9,10,11); 0 = all")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plot     = flag.Bool("plot", false, "render an ASCII chart instead of a table")
		sizes    = flag.String("sizes", "", "comma-separated node counts (default 8,16,24,32)")
		warmup   = flag.Uint64("warmup", 0, "warm-up cycles per run (default 2000)")
		measure  = flag.Uint64("measure", 0, "measured cycles per run (default 20000)")
		seed     = flag.Uint64("seed", 0, "master seed (default 1)")
		reps     = flag.Int("reps", 0, "replications per figure point (default 3)")
		minN     = flag.Int("minN", 4, "smallest N for analytic figures 2-3")
		maxN     = flag.Int("maxN", 64, "largest N for analytic figures 2-3")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache", "", "directory for the content-addressed result cache")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication: target CI95/mean ratio (0 = fixed reps)")
		maxReps  = flag.Int("max-reps", 0, "cap on adaptive replications per point (0 = 4x reps)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := exp.FigureOpts{
		Warmup:   *warmup,
		Measure:  *measure,
		Seed:     *seed,
		Reps:     *reps,
		Parallel: *parallel,
		CITarget: *ciTarget,
		MaxReps:  *maxReps,
	}
	if *sizes != "" {
		for _, p := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fail(fmt.Errorf("bad size %q: %v", p, err))
			}
			opts.Sizes = append(opts.Sizes, v)
		}
	}
	if *cacheDir != "" {
		cache, err := exp.OpenFileCache(*cacheDir)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := cache.ReportClose(os.Stderr); err != nil {
				fail(err)
			}
		}()
		opts.Cache = cache
	}

	type genFn func() (*core.Table, error)
	gens := map[int]genFn{
		2:  func() (*core.Table, error) { return core.Fig2Diameter(*minN, *maxN), nil },
		3:  func() (*core.Table, error) { return core.Fig3AvgDistance(*minN, *maxN), nil },
		5:  func() (*core.Table, error) { return exp.Fig5Validation(ctx, opts) },
		6:  func() (*core.Table, error) { return exp.Fig6HotspotThroughput(ctx, opts) },
		7:  func() (*core.Table, error) { return exp.Fig7HotspotLatency(ctx, opts) },
		8:  func() (*core.Table, error) { return exp.Fig8DoubleHotspotThroughput(ctx, opts) },
		9:  func() (*core.Table, error) { return exp.Fig9DoubleHotspotLatency(ctx, opts) },
		10: func() (*core.Table, error) { return exp.Fig10UniformThroughput(ctx, opts) },
		11: func() (*core.Table, error) { return exp.Fig11UniformLatency(ctx, opts) },
	}
	order := []int{2, 3, 5, 6, 7, 8, 9, 10, 11}

	run := func(id int) error {
		gen, ok := gens[id]
		if !ok {
			return fmt.Errorf("no such figure: %d", id)
		}
		t, err := gen()
		if err != nil {
			return err
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		case *plot:
			fmt.Println(t.Plot(72, 20))
		default:
			fmt.Println(t.Text())
		}
		return nil
	}

	if *fig != 0 {
		if err := run(*fig); err != nil {
			return fail(err)
		}
		return 0
	}
	for _, id := range order {
		if err := run(id); err != nil {
			return fail(err)
		}
	}
	return 0
}

// fail reports the error and returns the process exit code, leaving
// deferred cleanup to run — unlike os.Exit.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "nocfigs:", err)
	return 1
}
