// Command nocfigs regenerates the tables behind every figure of the
// paper's evaluation (Figures 2, 3, 5, 6, 7, 8, 9, 10, 11).
//
// Usage:
//
//	nocfigs                  # all figures, text tables
//	nocfigs -fig 6           # one figure
//	nocfigs -fig 10 -csv     # CSV output
//	nocfigs -sizes 8,24 -measure 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gonoc/internal/core"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number (2,3,5,6,7,8,9,10,11); 0 = all")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plot     = flag.Bool("plot", false, "render an ASCII chart instead of a table")
		sizes    = flag.String("sizes", "", "comma-separated node counts (default 8,16,24,32)")
		warmup   = flag.Uint64("warmup", 0, "warm-up cycles per run (default 2000)")
		measure  = flag.Uint64("measure", 0, "measured cycles per run (default 20000)")
		seed     = flag.Uint64("seed", 0, "master seed (default 1)")
		minN     = flag.Int("minN", 4, "smallest N for analytic figures 2-3")
		maxN     = flag.Int("maxN", 64, "largest N for analytic figures 2-3")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := core.FigureOpts{Warmup: *warmup, Measure: *measure, Seed: *seed, Parallel: *parallel}
	if *sizes != "" {
		for _, p := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fatal(fmt.Errorf("bad size %q: %v", p, err))
			}
			opts.Sizes = append(opts.Sizes, v)
		}
	}

	type genFn func() (*core.Table, error)
	gens := map[int]genFn{
		2:  func() (*core.Table, error) { return core.Fig2Diameter(*minN, *maxN), nil },
		3:  func() (*core.Table, error) { return core.Fig3AvgDistance(*minN, *maxN), nil },
		5:  func() (*core.Table, error) { return core.Fig5Validation(opts) },
		6:  func() (*core.Table, error) { return core.Fig6HotspotThroughput(opts) },
		7:  func() (*core.Table, error) { return core.Fig7HotspotLatency(opts) },
		8:  func() (*core.Table, error) { return core.Fig8DoubleHotspotThroughput(opts) },
		9:  func() (*core.Table, error) { return core.Fig9DoubleHotspotLatency(opts) },
		10: func() (*core.Table, error) { return core.Fig10UniformThroughput(opts) },
		11: func() (*core.Table, error) { return core.Fig11UniformLatency(opts) },
	}
	order := []int{2, 3, 5, 6, 7, 8, 9, 10, 11}

	run := func(id int) {
		gen, ok := gens[id]
		if !ok {
			fatal(fmt.Errorf("no such figure: %d", id))
		}
		t, err := gen()
		if err != nil {
			fatal(err)
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		case *plot:
			fmt.Println(t.Plot(72, 20))
		default:
			fmt.Println(t.Text())
		}
	}

	if *fig != 0 {
		run(*fig)
		return
	}
	for _, id := range order {
		run(id)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocfigs:", err)
	os.Exit(1)
}
