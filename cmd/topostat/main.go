// Command topostat prints analytic and graph-theoretic properties of
// the studied topologies over a range of node counts: diameter, average
// distance, link count, bisection, degree range, vertex symmetry — the
// quantities behind Section 2 of the paper.
//
// Usage:
//
//	topostat -n 16                # one size, all topologies
//	topostat -from 8 -to 32       # a range
package main

import (
	"flag"
	"fmt"
	"os"

	"gonoc/internal/analysis"
	"gonoc/internal/topology"
)

func main() {
	var (
		one  = flag.Int("n", 0, "single node count (overrides -from/-to)")
		from = flag.Int("from", 8, "first node count")
		to   = flag.Int("to", 32, "last node count")
	)
	flag.Parse()

	lo, hi := *from, *to
	if *one != 0 {
		lo, hi = *one, *one
	}
	if lo < 4 || hi < lo {
		fmt.Fprintln(os.Stderr, "topostat: need 4 <= from <= to")
		os.Exit(1)
	}

	fmt.Printf("%-6s %-22s %5s %7s %7s %6s %6s %9s\n",
		"N", "topology", "ND", "E[D]", "links", "bisec", "degree", "symmetric")
	for n := lo; n <= hi; n++ {
		row(topology.MustRing(n))
		if n%2 == 0 {
			row(topology.MustSpidergon(n))
		}
		row(topology.MustFactorMesh(n))
		row(topology.MustIrregularMesh(n))
	}
	fmt.Println()
	fmt.Println("paper formulas at the range endpoints:")
	for _, n := range []int{lo, hi} {
		fmt.Printf("  N=%d: ring ND=%d E[D]=%.3f | spidergon ND=%d",
			n, analysis.RingDiameter(n), analysis.RingAvgDistancePaper(n),
			analysis.SpidergonDiameter(evenDown(n)))
		cols, rows := analysis.IdealMeshDims(n)
		fmt.Printf(" | mesh %dx%d ND=%d E[D]=%.3f\n",
			cols, rows, analysis.MeshDiameter(cols, rows), analysis.MeshAvgDistancePaper(cols, rows))
	}
}

func evenDown(n int) int {
	if n%2 == 1 {
		return n - 1
	}
	return n
}

func row(t topology.Topology) {
	deg := fmt.Sprintf("%d-%d", topology.MinDegree(t), topology.MaxDegree(t))
	fmt.Printf("%-6d %-22s %5d %7.3f %7d %6d %6s %9v\n",
		t.Nodes(), t.Name(),
		topology.Diameter(t), topology.AverageDistance(t),
		topology.LinkCount(t), topology.BisectionChannels(t),
		deg, topology.LooksVertexSymmetric(t))
}
